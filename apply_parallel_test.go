package ghba

import (
	"context"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"ghba/internal/trace"
)

// mixedOps builds a deterministic mixed workload over a fresh namespace:
// lookups of populated files interleaved with creates and deletes of new
// ones.
func mixedOps(n int) []Op {
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i%5 == 3:
			ops = append(ops, Op{Kind: OpCreate, Path: "/mix/new" + strconv.Itoa(i)})
		case i%5 == 4:
			// Delete the create from the previous step of this cycle.
			ops = append(ops, Op{Kind: OpDelete, Path: "/mix/new" + strconv.Itoa(i-1)})
		default:
			ops = append(ops, Op{Kind: OpLookup, Path: "/par/f" + strconv.Itoa(i%300)})
		}
	}
	return ops
}

// TestApplyParallelSingleWorkerMatchesSerial pins the mutation engine's
// reproducibility contract, mirroring LookupParallel's: a single-worker
// ApplyParallel is exactly the serial engine driven by worker 0's RNG.
func TestApplyParallelSingleWorkerMatchesSerial(t *testing.T) {
	simA, _ := newParallelSim(t, 300, 1)
	simB, _ := newParallelSim(t, 300, 1)
	ops := mixedOps(1_500)

	parallel, err := ApplyParallel(context.Background(), simA, ops, 1)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(workerSeed(simB.seed, 0)))
	serial := make([]Result, len(ops))
	for i, op := range ops {
		serial[i] = toResult(simB.cluster.ApplyWith(rng, op.record()))
	}

	for i := range parallel {
		if parallel[i] != serial[i] {
			t.Fatalf("op %d diverged: parallel %+v, serial %+v", i, parallel[i], serial[i])
		}
	}
	if simA.FileCount() != simB.FileCount() {
		t.Errorf("file counts diverged: %d vs %d", simA.FileCount(), simB.FileCount())
	}
	if fa, fb := simA.LevelFractions(), simB.LevelFractions(); fa != fb {
		t.Errorf("tally fractions diverged: %v vs %v", fa, fb)
	}
}

// TestApplyParallelManyWorkers checks interleaving-independent properties
// of a concurrent mixed workload: results line up with their ops, creates
// report homes, live deletes report the pre-delete home, and the namespace
// and invariants come out consistent.
func TestApplyParallelManyWorkers(t *testing.T) {
	sim, _ := newParallelSim(t, 300, 1)
	before := sim.FileCount()

	// Disjoint per-index paths so concurrent workers never race on one
	// path's lifecycle; cross-path interleaving is still arbitrary.
	ops := make([]Op, 4_000)
	for i := range ops {
		switch i % 4 {
		case 0:
			ops[i] = Op{Kind: OpCreate, Path: "/mw/c" + strconv.Itoa(i)}
		case 1:
			ops[i] = Op{Kind: OpDelete, Path: "/mw/absent" + strconv.Itoa(i)}
		default:
			ops[i] = Op{Kind: OpLookup, Path: "/par/f" + strconv.Itoa(i%300)}
		}
	}
	results, err := ApplyParallel(context.Background(), sim, ops, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ops) {
		t.Fatalf("got %d results for %d ops", len(results), len(ops))
	}
	creates := 0
	for i, res := range results {
		if res.Path != ops[i].Path {
			t.Fatalf("result %d is for %q, want %q", i, res.Path, ops[i].Path)
		}
		switch ops[i].Kind {
		case OpCreate:
			if !res.Found || res.Home < 0 {
				t.Fatalf("create %d reported %+v", i, res)
			}
			creates++
		case OpDelete:
			if res.Found || res.Home != -1 {
				t.Fatalf("absent delete %d reported %+v", i, res)
			}
		default:
			if !res.Found {
				t.Fatalf("lookup of existing %s missed", res.Path)
			}
		}
	}
	if got, want := sim.FileCount(), before+creates; got != want {
		t.Errorf("file count %d, want %d", got, want)
	}
	if err := sim.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckInvariants(); err != nil {
		t.Fatalf("invariants after parallel mutations: %v", err)
	}
	// Every created file resolves to its reported home.
	for i, res := range results {
		if ops[i].Kind == OpCreate && sim.cluster.HomeOf(res.Path) != res.Home {
			t.Fatalf("created %s homed at %d, lookup truth %d",
				res.Path, res.Home, sim.cluster.HomeOf(res.Path))
		}
	}
}

// TestApplyParallelWithReconfig drives mixed mutations concurrently with
// facade-level reconfiguration — the workload the sharded write path
// exists for.
func TestApplyParallelWithReconfig(t *testing.T) {
	sim, _ := newParallelSim(t, 200, 1)
	ops := make([]Op, 2_000)
	for i := range ops {
		if i%3 == 0 {
			ops[i] = Op{Kind: OpCreate, Path: "/rc/c" + strconv.Itoa(i)}
		} else {
			ops[i] = Op{Kind: OpLookup, Path: "/par/f" + strconv.Itoa(i%200)}
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			id, _, err := sim.AddMDS(context.Background())
			if err != nil {
				t.Errorf("AddMDS: %v", err)
				return
			}
			if err := sim.RemoveMDS(context.Background(), id); err != nil {
				t.Errorf("RemoveMDS(%d): %v", id, err)
				return
			}
		}
	}()
	results, err := ApplyParallel(context.Background(), sim, ops, 4)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	for i, res := range results {
		if ops[i].Kind == OpCreate && !res.Found {
			t.Fatalf("create %s failed during reconfiguration", res.Path)
		}
	}
	if err := sim.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckInvariants(); err != nil {
		t.Fatalf("invariants after churn: %v", err)
	}
}

// TestApplyParallelEdgeCases covers empty input and worker clamping.
func TestApplyParallelEdgeCases(t *testing.T) {
	sim, _ := newParallelSim(t, 10, 1)
	if res, err := ApplyParallel(context.Background(), sim, nil, 4); err != nil || res != nil {
		t.Errorf("empty batch returned %v", res)
	}
	res, err := ApplyParallel(context.Background(), sim, []Op{{Kind: OpLookup, Path: "/par/f1"}}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || !res[0].Found {
		t.Errorf("clamped run returned %+v", res)
	}
	res, err = ApplyParallel(context.Background(), sim, []Op{{Kind: OpCreate, Path: "/edge/c"}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || !res[0].Found {
		t.Errorf("default-worker run returned %+v", res)
	}
}

// TestApplyParallelRecordKinds pins the Op→trace.Record mapping.
func TestApplyParallelRecordKinds(t *testing.T) {
	if (Op{Kind: OpCreate}).record().Op != trace.OpCreate {
		t.Error("OpCreate mapping")
	}
	if (Op{Kind: OpDelete}).record().Op != trace.OpDelete {
		t.Error("OpDelete mapping")
	}
	if (Op{Kind: OpLookup}).record().Op != trace.OpStat {
		t.Error("OpLookup mapping")
	}
}
