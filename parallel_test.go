package ghba

import (
	"context"
	"math/rand"
	"strconv"
	"sync"
	"testing"
)

// newParallelSim builds a populated simulation plus a lookup batch cycling
// through its namespace.
func newParallelSim(t testing.TB, files, lookups int) (*Simulation, []string) {
	t.Helper()
	sim, err := New(Config{NumMDS: 20, ExpectedFilesPerMDS: 2_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]string, files)
	for i := range paths {
		paths[i] = "/par/f" + strconv.Itoa(i)
	}
	if err := sim.CreateAll(context.Background(), paths); err != nil {
		t.Fatal(err)
	}
	batch := make([]string, lookups)
	for i := range batch {
		batch[i] = paths[i%files]
	}
	return sim, batch
}

// TestLookupParallelSingleWorkerMatchesSerial pins the reproducibility
// contract: a single-worker parallel run is exactly the serial engine driven
// by worker 0's RNG. Two identically built simulations — one driven through
// LookupParallel(batch, 1), one serially through the core read path with the
// same derived RNG — must agree on every home, level, and latency, and on
// the aggregate tally fractions.
func TestLookupParallelSingleWorkerMatchesSerial(t *testing.T) {
	simA, batch := newParallelSim(t, 500, 1_500)
	simB, _ := newParallelSim(t, 500, 1_500)

	parallel, err := LookupParallel(context.Background(), simA, batch, 1)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(workerSeed(simB.seed, 0)))
	serial := make([]Result, len(batch))
	for i, p := range batch {
		serial[i] = toResult(simB.cluster.LookupWith(rng, p, -1))
	}

	for i := range parallel {
		if parallel[i] != serial[i] {
			t.Fatalf("lookup %d diverged: parallel %+v, serial %+v",
				i, parallel[i], serial[i])
		}
	}
	fa, fb := simA.LevelFractions(), simB.LevelFractions()
	if fa != fb {
		t.Errorf("tally fractions diverged: %v vs %v", fa, fb)
	}
	if simA.MeanLatency() != simB.MeanLatency() {
		t.Errorf("mean latency diverged: %v vs %v", simA.MeanLatency(), simB.MeanLatency())
	}
}

// TestLookupParallelManyWorkers checks the parallel engine's correctness
// properties that hold regardless of interleaving: every existing file is
// found at its ground-truth home, results line up with their input paths,
// and the tallies account for every lookup.
func TestLookupParallelManyWorkers(t *testing.T) {
	sim, batch := newParallelSim(t, 500, 4_000)
	results, err := LookupParallel(context.Background(), sim, batch, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(batch) {
		t.Fatalf("got %d results for %d paths", len(results), len(batch))
	}
	for i, res := range results {
		if res.Path != batch[i] {
			t.Fatalf("result %d is for %q, want %q", i, res.Path, batch[i])
		}
		if !res.Found {
			t.Fatalf("existing file %s not found", res.Path)
		}
		if truth := sim.cluster.HomeOf(res.Path); res.Home != truth {
			t.Fatalf("%s resolved to %d, truth %d", res.Path, res.Home, truth)
		}
	}
	var sum float64
	for l := 1; l <= 4; l++ {
		sum += sim.LevelFractions()[l]
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("level fractions sum to %f", sum)
	}
}

// TestLookupParallelWithReconfig drives lookups and facade-level
// reconfiguration concurrently, the workload the read/write split exists
// for.
func TestLookupParallelWithReconfig(t *testing.T) {
	sim, batch := newParallelSim(t, 300, 2_000)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			id, _, err := sim.AddMDS(context.Background())
			if err != nil {
				t.Errorf("AddMDS: %v", err)
				return
			}
			if err := sim.RemoveMDS(context.Background(), id); err != nil {
				t.Errorf("RemoveMDS(%d): %v", id, err)
				return
			}
		}
	}()
	results, err := LookupParallel(context.Background(), sim, batch, 4)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	for _, res := range results {
		if !res.Found {
			t.Fatalf("%s lost during reconfiguration", res.Path)
		}
	}
	if err := sim.CheckInvariants(); err != nil {
		t.Fatalf("invariants after parallel churn: %v", err)
	}
}

// TestLookupParallelEdgeCases covers empty input and worker clamping.
func TestLookupParallelEdgeCases(t *testing.T) {
	sim, _ := newParallelSim(t, 10, 10)
	if res, err := LookupParallel(context.Background(), sim, nil, 4); err != nil || res != nil {
		t.Errorf("empty batch returned %v", res)
	}
	// More workers than paths: must clamp, not spawn idle goroutines that
	// index past the batch.
	res, err := LookupParallel(context.Background(), sim, []string{"/par/f1", "/par/f2"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || !res[0].Found || !res[1].Found {
		t.Errorf("clamped run returned %+v", res)
	}
	// workers < 1 selects GOMAXPROCS.
	res, err = LookupParallel(context.Background(), sim, []string{"/par/f3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || !res[0].Found {
		t.Errorf("default-worker run returned %+v", res)
	}
}
