package ghba

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ghba/internal/proto"
)

// startDurablePrototype boots a small durable TCP prototype with retries on.
func startDurablePrototype(t *testing.T, n int) *Prototype {
	t.Helper()
	p, err := StartPrototype(PrototypeConfig{
		Config: Config{
			NumMDS:              n,
			MaxGroupSize:        2,
			ExpectedFilesPerMDS: 1_000,
			Seed:                7,
		},
		DataDir:       t.TempDir(),
		SnapshotEvery: 64,
		RetryAttempts: 4,
		RetryBackoff:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestPrototypeKillRestart drives the facade's crash/recover surface: a
// killed daemon refuses RPCs, RestartMDS recovers its files from the WAL in
// place, and every path still resolves to its ground-truth home.
func TestPrototypeKillRestart(t *testing.T) {
	p := startDurablePrototype(t, 4)
	ctx := context.Background()
	paths := make([]string, 120)
	for i := range paths {
		paths[i] = fmt.Sprintf("/dur/f%d", i)
		if _, err := p.Apply(ctx, Op{Kind: OpCreate, Path: paths[i]}); err != nil {
			t.Fatal(err)
		}
	}
	victim := p.MDSIDs()[1]
	if err := p.KillMDS(victim); err != nil {
		t.Fatal(err)
	}
	rep, err := p.RestartMDS(ctx, victim)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejoined {
		t.Error("in-place restart reported a rejoin")
	}
	if rep.TailLost != 0 {
		t.Errorf("in-process kill lost %d tail files; the page cache should survive", rep.TailLost)
	}
	for _, path := range paths {
		res, err := p.Lookup(ctx, path)
		if err != nil {
			t.Fatalf("lookup %s after restart: %v", path, err)
		}
		if !res.Found || res.Home != p.HomeOf(path) {
			t.Fatalf("lookup %s after restart: got (found=%v home=%d), want home %d",
				path, res.Found, res.Home, p.HomeOf(path))
		}
	}
}

// TestPrototypeFailMDS pins the Reconfigurer contract the facade now
// honours: FailMDS removes a daemon, reports the files lost, and shrinks
// membership.
func TestPrototypeFailMDS(t *testing.T) {
	p := startDurablePrototype(t, 3)
	ctx := context.Background()
	for i := 0; i < 90; i++ {
		if _, err := p.Apply(ctx, Op{Kind: OpCreate, Path: fmt.Sprintf("/fail/f%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	victim := p.MDSIDs()[0]
	homed := 0
	for i := 0; i < 90; i++ {
		if p.HomeOf(fmt.Sprintf("/fail/f%d", i)) == victim {
			homed++
		}
	}
	lost, err := p.FailMDS(ctx, victim)
	if err != nil {
		t.Fatal(err)
	}
	if lost != homed {
		t.Errorf("FailMDS reported %d files lost, ground truth homed %d", lost, homed)
	}
	if got := p.NumMDS(); got != 2 {
		t.Errorf("NumMDS after failover = %d, want 2", got)
	}
	// A failed-over daemon rejoins through RestartMDS and re-claims its log.
	rep, err := p.RestartMDS(ctx, victim)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Rejoined {
		t.Error("restart after failover did not rejoin")
	}
	if rep.FilesReclaimed != lost {
		t.Errorf("reclaimed %d files, want the %d lost", rep.FilesReclaimed, lost)
	}
}

// TestPrototypeDetectorSurface checks the facade detector handle: started,
// queried, stopped — with no kills, every daemon stays alive and no
// failover runs.
func TestPrototypeDetectorSurface(t *testing.T) {
	p := startDurablePrototype(t, 3)
	det := p.StartDetector(proto.DetectorOptions{Interval: 10 * time.Millisecond})
	time.Sleep(60 * time.Millisecond)
	det.Stop()
	if det.Failovers() != 0 {
		t.Errorf("idle detector ran %d failovers", det.Failovers())
	}
	for _, id := range p.MDSIDs() {
		if got := det.State(id); got.String() != "alive" {
			t.Errorf("MDS %d state %v, want alive", id, got)
		}
	}
}
