// Package ghba is the public facade of this repository: a from-scratch Go
// reproduction of "Scalable and Adaptive Metadata Management in Ultra
// Large-scale File Systems" (Hua, Zhu, Jiang, Feng, Tian — ICDCS 2008), the
// G-HBA scheme.
//
// G-HBA organizes N metadata servers (MDS) into groups of at most M and
// routes metadata lookups through a four-level hierarchy of Bloom-filter
// arrays: a replicated LRU array capturing hot files (L1), a per-server
// segment array of ⌊(N−M′)/M′⌋ replicas (L2), a group multicast (L3) and a
// global multicast (L4). Groups reconfigure with light-weight replica
// migration, splitting and merging.
//
// The facade exposes one client surface — the Backend interface — over two
// implementations of the scheme: New builds a Simulation (the in-process
// engine with simulated costs), StartPrototype boots real TCP daemons on
// loopback (the paper's Section 5 setup). Every driver in this module runs
// against either interchangeably.
package ghba

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"ghba/internal/bloom"
	"ghba/internal/core"
	"ghba/internal/mds"
	"ghba/internal/simnet"
	"ghba/internal/trace"
)

// Config describes a G-HBA deployment, for either backend.
type Config struct {
	// NumMDS is the number of metadata servers (the paper's N).
	NumMDS int
	// MaxGroupSize is the maximum servers per group (the paper's M). Zero
	// selects the paper's recommended optimum for NumMDS.
	MaxGroupSize int
	// ExpectedFilesPerMDS sizes each server's Bloom filter. Zero defaults
	// to 50 000.
	ExpectedFilesPerMDS uint64
	// BitsPerFile is the filter ratio m/n. Zero defaults to 16, the ratio
	// G-HBA's memory savings afford (Section 2.3).
	BitsPerFile float64
	// LRUCapacity is the per-home-MDS generation size of the L1 LRU array.
	// Zero derives ExpectedFilesPerMDS/16 (minimum 64).
	LRUCapacity uint64
	// MemoryBudgetBytes caps each server's replica memory; zero means
	// unlimited. See internal/memmodel for the spill model.
	MemoryBudgetBytes uint64
	// ShipBatch is the coalescing ship queue's drain batch: the number of
	// XOR-delta threshold crossings absorbed before dirty origins' replicas
	// ship. 0 or 1 ships at every crossing (the paper's protocol); larger
	// values amortize bursts of creates, with Flush draining the remainder.
	ShipBatch int
	// BlockedFilters selects the cache-line-blocked Bloom filter layout for
	// every filter in the deployment: the first hash picks one 512-bit
	// block and all k probes stay inside it, so a filter probe costs one
	// cache line instead of k. False-positive rates rise slightly versus
	// the classic layout at equal geometry. The default (false) keeps the
	// classic layout, whose wire format and fixed-seed behaviour are
	// byte-identical to earlier releases; the two layouts are distinguished
	// on the wire by a geometry tag and must not be mixed in one
	// deployment.
	BlockedFilters bool
	// Seed makes runs deterministic.
	Seed int64
}

// ConfigError reports one rejected Config field. Use errors.As to
// distinguish misconfiguration from runtime failures.
type ConfigError struct {
	// Field names the offending Config field; Reason says what about its
	// value was rejected.
	Field, Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return "ghba: invalid config: " + e.Field + ": " + e.Reason
}

// validate rejects configurations that would silently misconfigure the
// filter hierarchy rather than letting them degrade at runtime.
func (c Config) validate() error {
	if c.NumMDS < 1 {
		return &ConfigError{Field: "NumMDS", Reason: fmt.Sprintf("must be ≥ 1, got %d", c.NumMDS)}
	}
	if c.MaxGroupSize < 0 {
		return &ConfigError{Field: "MaxGroupSize", Reason: fmt.Sprintf("must be ≥ 0, got %d", c.MaxGroupSize)}
	}
	if c.BitsPerFile < 0 {
		return &ConfigError{Field: "BitsPerFile", Reason: fmt.Sprintf("must be ≥ 0, got %g", c.BitsPerFile)}
	}
	if c.ShipBatch < 0 {
		return &ConfigError{Field: "ShipBatch", Reason: fmt.Sprintf("must be ≥ 0, got %d", c.ShipBatch)}
	}
	if c.MemoryBudgetBytes > 0 {
		// A budget below one replica's footprint cannot hold even the
		// server's own filter: every array probe would spill, which is
		// never what a caller wants from a "budget".
		files := c.ExpectedFilesPerMDS
		if files == 0 {
			files = defaultFilesPerMDS
		}
		bits := c.BitsPerFile
		if bits == 0 {
			bits = defaultBitsPerFile
		}
		filterBytes := uint64(float64(files)*bits+7) / 8
		if c.MemoryBudgetBytes < filterBytes {
			return &ConfigError{
				Field: "MemoryBudgetBytes",
				Reason: fmt.Sprintf("%d bytes cannot hold one %d-byte filter (ExpectedFilesPerMDS=%d × BitsPerFile=%g)",
					c.MemoryBudgetBytes, filterBytes, files, bits),
			}
		}
	}
	return nil
}

// Facade-level sizing defaults shared by both backends.
const (
	defaultFilesPerMDS = 50_000
	defaultBitsPerFile = 16.0
	minLRUCapacity     = 64
	lruCapacityDivisor = 16
)

// nodeConfig derives the per-server filter sizing both backends share.
func (c Config) nodeConfig() mds.Config {
	files := c.ExpectedFilesPerMDS
	if files == 0 {
		files = defaultFilesPerMDS
	}
	bits := c.BitsPerFile
	if bits == 0 {
		bits = defaultBitsPerFile
	}
	lruCap := c.LRUCapacity
	if lruCap == 0 {
		lruCap = files / lruCapacityDivisor
		if lruCap < minLRUCapacity {
			lruCap = minLRUCapacity
		}
	}
	layout := bloom.LayoutClassic
	if c.BlockedFilters {
		layout = bloom.LayoutBlocked
	}
	return mds.Config{
		ExpectedFiles:  files,
		BitsPerFile:    bits,
		LRUCapacity:    lruCap,
		LRUBitsPerFile: bits,
		Layout:         layout,
	}
}

// groupSize resolves MaxGroupSize, defaulting to the paper's optimum.
func (c Config) groupSize() int {
	if c.MaxGroupSize != 0 {
		return c.MaxGroupSize
	}
	return RecommendedGroupSize(c.NumMDS)
}

// Result reports one lookup or mutation outcome.
type Result struct {
	// Path is the operated-on file path.
	Path string
	// Home is the MDS holding the metadata (-1 when not found). For a
	// delete it is the pre-delete home.
	Home int
	// Found reports whether the file exists (for a delete: existed).
	Found bool
	// Level is the hierarchy level that served a lookup: 1 (LRU array),
	// 2 (local segment array), 3 (group multicast), 4 (global multicast).
	// Pure mutations report 0.
	Level int
	// Latency is the end-to-end latency: simulated for the Simulation
	// backend, wall clock over real sockets for the Prototype.
	Latency time.Duration
}

// Simulation is the in-process Backend: the full G-HBA scheme on the
// simulated substrate, with per-operation latency from the cost model.
//
// Lookups are safe to run from many goroutines concurrently (see the
// package-level LookupParallel/ApplyParallel drivers); reconfiguration —
// AddMDS, RemoveMDS, FailMDS — serializes as an exclusive writer against
// in-flight operations.
type Simulation struct {
	cluster *core.Cluster
	seed    int64
}

// New builds a simulation backend from cfg.
func New(cfg Config) (*Simulation, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ccfg := core.DefaultConfig(cfg.NumMDS, cfg.groupSize())
	ccfg.Node = cfg.nodeConfig()
	ccfg.Cost = simnet.DefaultCostModel()
	ccfg.MemoryBudgetBytes = cfg.MemoryBudgetBytes
	ccfg.ShipBatch = cfg.ShipBatch
	ccfg.Seed = cfg.Seed
	cluster, err := core.New(ccfg)
	if err != nil {
		return nil, err
	}
	return &Simulation{cluster: cluster, seed: cfg.Seed}, nil
}

// RecommendedGroupSize returns the group size the paper recommends for a
// system of n servers (Fig 7; roughly √n over the studied range).
func RecommendedGroupSize(n int) int {
	switch {
	case n <= 10:
		return 3
	case n <= 30:
		return 6
	case n <= 60:
		return 7
	case n <= 80:
		return 8
	case n <= 100:
		return 9
	case n <= 150:
		return 11
	default:
		return 13
	}
}

// Name identifies the backend in banners and bench records.
func (s *Simulation) Name() string { return "sim" }

// Seed returns the seed the simulation was built with.
func (s *Simulation) Seed() int64 { return s.seed }

// NumMDS returns the current server count.
func (s *Simulation) NumMDS() int { return s.cluster.NumMDS() }

// NumGroups returns the current group count.
func (s *Simulation) NumGroups() int { return s.cluster.NumGroups() }

// FileCount returns the number of files in the namespace.
func (s *Simulation) FileCount() int { return s.cluster.FileCount() }

// Create homes a new file at a uniformly chosen server and returns its home
// MDS ID. Creating an existing path re-homes it; use Exists to guard.
func (s *Simulation) Create(path string) int { return s.cluster.Create(path) }

// CreateAll bulk-loads paths and synchronizes all replicas afterwards —
// much faster than per-file updates for initial population.
func (s *Simulation) CreateAll(_ context.Context, paths []string) error {
	s.cluster.Populate(func(fn func(string) bool) {
		for _, p := range paths {
			if !fn(p) {
				return
			}
		}
	})
	return nil
}

// Delete removes a file, reporting whether it existed.
func (s *Simulation) Delete(path string) bool { return s.cluster.Delete(path) }

// Exists reports whether path is in the namespace (ground truth).
func (s *Simulation) Exists(path string) bool { return s.cluster.HomeOf(path) >= 0 }

// HomeOf returns path's ground-truth home MDS (-1 when absent).
func (s *Simulation) HomeOf(path string) int { return s.cluster.HomeOf(path) }

// Lookup resolves the home MDS of path, entering the hierarchy at a random
// server drawn from the simulation's internal RNG, as the paper's clients
// do. The context is accepted for interface parity and ignored: the
// simulation never blocks on I/O.
func (s *Simulation) Lookup(_ context.Context, path string) (Result, error) {
	return toResult(s.cluster.Lookup(path, -1)), nil
}

// LookupWith is Lookup with the entry drawn from the caller's RNG — the
// hook the parallel drivers build their determinism contract on.
func (s *Simulation) LookupWith(_ context.Context, rng *rand.Rand, path string) (Result, error) {
	return toResult(s.cluster.LookupWith(rng, path, -1)), nil
}

func toResult(res core.LookupResult) Result {
	return Result{
		Path:    res.Path,
		Home:    res.Home,
		Found:   res.Found,
		Level:   res.Level,
		Latency: res.Latency,
	}
}

// Apply dispatches one mixed-workload operation with randomness drawn from
// the simulation's internal RNG.
func (s *Simulation) Apply(_ context.Context, op Op) (Result, error) {
	return toResult(s.cluster.Apply(op.record())), nil
}

// ApplyWith is Apply with a caller-supplied RNG: a delete's Result reports
// the pre-delete home and existence, a create reports the chosen home with
// Level 0, and a create of an existing path degenerates to a lookup entered
// at the drawn server.
func (s *Simulation) ApplyWith(_ context.Context, rng *rand.Rand, op Op) (Result, error) {
	return toResult(s.cluster.ApplyWith(rng, op.record())), nil
}

// ApplyBatch dispatches ops serially with rng. The simulation has no wire
// rounds to amortize, so its batch path is exactly the serial loop — which
// keeps the cross-backend determinism contract trivially intact.
func (s *Simulation) ApplyBatch(_ context.Context, rng *rand.Rand, ops []Op) ([]Result, error) {
	out := make([]Result, len(ops))
	for i, op := range ops {
		out[i] = toResult(s.cluster.ApplyWith(rng, op.record()))
	}
	return out, nil
}

// LookupBatch resolves paths serially with rng, one entry draw per path in
// path order — the simulation twin of the prototype's batched lookup.
func (s *Simulation) LookupBatch(_ context.Context, rng *rand.Rand, paths []string) ([]Result, error) {
	out := make([]Result, len(paths))
	for i, p := range paths {
		out[i] = toResult(s.cluster.LookupWith(rng, p, -1))
	}
	return out, nil
}

// Flush drains the coalescing ship queue: every server whose filter
// crossed the update threshold since the last drain ships its replicas now.
// A no-op with the default ShipBatch of 1.
func (s *Simulation) Flush(_ context.Context) error {
	s.cluster.Flush()
	return nil
}

// Close implements Backend; the simulation holds no external resources.
func (s *Simulation) Close() error { return nil }

// AddMDS grows the cluster by one server (joining a group with room or
// splitting a full one) and returns the new server's ID along with the
// number of Bloom-filter replicas migrated.
func (s *Simulation) AddMDS(_ context.Context) (id, replicasMigrated int, err error) {
	id, rep, err := s.cluster.AddMDS()
	return id, rep.ReplicasMigrated, err
}

// RemoveMDS retires a server gracefully: its replicas migrate to
// groupmates, its files re-home across survivors, and shrunken groups
// merge.
func (s *Simulation) RemoveMDS(_ context.Context, id int) error {
	_, err := s.cluster.RemoveMDS(id)
	return err
}

// FailMDS simulates a crash (Section 4.5): nothing migrates off the dead
// server — its group re-fetches the lost filter replicas from their
// origins, its own filters are scrubbed everywhere, and the files it homed
// become unavailable until recreated. Returns how many files were lost.
func (s *Simulation) FailMDS(_ context.Context, id int) (filesLost int, err error) {
	rep, err := s.cluster.FailMDS(id)
	return rep.FilesLost, err
}

// MDSIDs returns the current server IDs in ascending order.
func (s *Simulation) MDSIDs() []int { return s.cluster.MDSIDs() }

// LevelFractions returns the share of lookups served at each level
// (indices 1–4; index 0 unused), the statistic behind Fig 13.
func (s *Simulation) LevelFractions() [5]float64 {
	var out [5]float64
	for l := 1; l <= 4; l++ {
		out[l] = s.cluster.Tally().Fraction(l)
	}
	return out
}

// LevelCounts returns the cumulative number of lookups served at each level
// (indices 1–4; index 0 unused). Drivers that interleave warmup and measured
// phases difference two snapshots to attribute hits to one phase.
func (s *Simulation) LevelCounts() [5]uint64 {
	var out [5]uint64
	for l := 1; l <= 4; l++ {
		out[l] = s.cluster.Tally().Count(l)
	}
	return out
}

// ReplicaUpdates returns the number of replica-update messages the
// XOR-delta ship path has sent.
func (s *Simulation) ReplicaUpdates() uint64 {
	return s.cluster.Messages().Get(simnet.MsgReplicaUpdate)
}

// MeanLatency returns the average simulated lookup latency so far.
func (s *Simulation) MeanLatency() time.Duration {
	return s.cluster.OverallLatency().Mean()
}

// CheckInvariants verifies the global-mirror-image invariant across all
// groups; nil means every group independently covers the whole system.
func (s *Simulation) CheckInvariants() error { return s.cluster.CheckInvariants() }

// TraceOp converts a trace operation type to the facade's Op kind; replay
// drivers use it to feed generator records through a Backend.
func TraceOp(rec trace.Record) Op {
	op := Op{Path: rec.Path, At: rec.At}
	switch rec.Op {
	case trace.OpCreate:
		op.Kind = OpCreate
	case trace.OpDelete:
		op.Kind = OpDelete
	default:
		op.Kind = OpLookup
	}
	return op
}
