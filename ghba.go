// Package ghba is the public facade of this repository: a from-scratch Go
// reproduction of "Scalable and Adaptive Metadata Management in Ultra
// Large-scale File Systems" (Hua, Zhu, Jiang, Feng, Tian — ICDCS 2008), the
// G-HBA scheme.
//
// G-HBA organizes N metadata servers (MDS) into groups of at most M and
// routes metadata lookups through a four-level hierarchy of Bloom-filter
// arrays: a replicated LRU array capturing hot files (L1), a per-server
// segment array of ⌊(N−M′)/M′⌋ replicas (L2), a group multicast (L3) and a
// global multicast (L4). Groups reconfigure with light-weight replica
// migration, splitting and merging.
//
// The facade wraps the simulation engine (internal/core) behind a small
// API: build a Simulation, add files, look them up, and reconfigure the
// server population. For the paper's experiments use internal/experiments
// via cmd/ghbabench; for the TCP prototype see internal/proto and cmd/mdsd.
package ghba

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"ghba/internal/core"
	"ghba/internal/mds"
	"ghba/internal/simnet"
	"ghba/internal/trace"
)

// Config describes a simulated G-HBA deployment.
type Config struct {
	// NumMDS is the number of metadata servers (the paper's N).
	NumMDS int
	// MaxGroupSize is the maximum servers per group (the paper's M). Zero
	// selects the paper's recommended optimum for NumMDS.
	MaxGroupSize int
	// ExpectedFilesPerMDS sizes each server's Bloom filter. Zero defaults
	// to 50 000.
	ExpectedFilesPerMDS uint64
	// BitsPerFile is the filter ratio m/n. Zero defaults to 16, the ratio
	// G-HBA's memory savings afford (Section 2.3).
	BitsPerFile float64
	// MemoryBudgetBytes caps each server's replica memory; zero means
	// unlimited. See internal/memmodel for the spill model.
	MemoryBudgetBytes uint64
	// ShipBatch is the coalescing ship queue's drain batch: the number of
	// XOR-delta threshold crossings absorbed before dirty origins' replicas
	// ship. 0 or 1 ships at every crossing (the paper's protocol); larger
	// values amortize bursts of creates, with Flush draining the remainder.
	ShipBatch int
	// Seed makes the simulation deterministic.
	Seed int64
}

// Result reports one lookup.
type Result struct {
	// Path is the queried file path.
	Path string
	// Home is the MDS holding the metadata (-1 when not found).
	Home int
	// Found reports whether the file exists.
	Found bool
	// Level is the hierarchy level that served the query: 1 (LRU array),
	// 2 (local segment array), 3 (group multicast), 4 (global multicast).
	Level int
	// Latency is the simulated end-to-end latency.
	Latency time.Duration
}

// Simulation is a simulated G-HBA metadata cluster.
//
// Lookups are safe to run from many goroutines concurrently (see
// LookupParallel); mutations — Create, Delete, AddMDS, RemoveMDS, FailMDS —
// serialize as exclusive writers against in-flight lookups.
type Simulation struct {
	cluster *core.Cluster
	seed    int64
}

// New builds a simulation from cfg.
func New(cfg Config) (*Simulation, error) {
	if cfg.NumMDS < 1 {
		return nil, fmt.Errorf("ghba: NumMDS must be ≥ 1, got %d", cfg.NumMDS)
	}
	m := cfg.MaxGroupSize
	if m == 0 {
		m = RecommendedGroupSize(cfg.NumMDS)
	}
	files := cfg.ExpectedFilesPerMDS
	if files == 0 {
		files = 50_000
	}
	bits := cfg.BitsPerFile
	if bits == 0 {
		bits = 16
	}
	ccfg := core.DefaultConfig(cfg.NumMDS, m)
	ccfg.Node = mds.Config{
		ExpectedFiles:  files,
		BitsPerFile:    bits,
		LRUCapacity:    files / 16,
		LRUBitsPerFile: bits,
	}
	if ccfg.Node.LRUCapacity == 0 {
		ccfg.Node.LRUCapacity = 64
	}
	ccfg.Cost = simnet.DefaultCostModel()
	ccfg.MemoryBudgetBytes = cfg.MemoryBudgetBytes
	ccfg.ShipBatch = cfg.ShipBatch
	ccfg.Seed = cfg.Seed
	cluster, err := core.New(ccfg)
	if err != nil {
		return nil, err
	}
	return &Simulation{cluster: cluster, seed: cfg.Seed}, nil
}

// RecommendedGroupSize returns the group size the paper recommends for a
// system of n servers (Fig 7; roughly √n over the studied range).
func RecommendedGroupSize(n int) int {
	switch {
	case n <= 10:
		return 3
	case n <= 30:
		return 6
	case n <= 60:
		return 7
	case n <= 80:
		return 8
	case n <= 100:
		return 9
	case n <= 150:
		return 11
	default:
		return 13
	}
}

// NumMDS returns the current server count.
func (s *Simulation) NumMDS() int { return s.cluster.NumMDS() }

// NumGroups returns the current group count.
func (s *Simulation) NumGroups() int { return s.cluster.NumGroups() }

// FileCount returns the number of files in the namespace.
func (s *Simulation) FileCount() int { return s.cluster.FileCount() }

// Create homes a new file at a uniformly chosen server and returns its home
// MDS ID. Creating an existing path re-homes it; use Exists to guard.
func (s *Simulation) Create(path string) int { return s.cluster.Create(path) }

// CreateAll bulk-loads paths and synchronizes all replicas afterwards —
// much faster than per-file updates for initial population.
func (s *Simulation) CreateAll(paths []string) {
	s.cluster.Populate(func(fn func(string) bool) {
		for _, p := range paths {
			if !fn(p) {
				return
			}
		}
	})
}

// Delete removes a file, reporting whether it existed.
func (s *Simulation) Delete(path string) bool { return s.cluster.Delete(path) }

// Exists reports whether path is in the namespace (ground truth).
func (s *Simulation) Exists(path string) bool { return s.cluster.HomeOf(path) >= 0 }

// Lookup resolves the home MDS of path, entering the hierarchy at a random
// server as the paper's clients do. Passing a negative entry lets the
// cluster draw it under a single lock acquisition.
func (s *Simulation) Lookup(path string) Result {
	return toResult(s.cluster.Lookup(path, -1))
}

func toResult(res core.LookupResult) Result {
	return Result{
		Path:    res.Path,
		Home:    res.Home,
		Found:   res.Found,
		Level:   res.Level,
		Latency: res.Latency,
	}
}

// workerSeed derives a deterministic per-worker RNG seed; the shared
// derivation lives in trace.DispatchSeed so every parallel driver agrees.
func workerSeed(seed int64, worker int) int64 {
	return trace.DispatchSeed(seed, worker)
}

// LookupParallel resolves every path using the given number of worker
// goroutines and returns the results in path order. Each worker enters the
// hierarchy at servers drawn from its own seeded RNG, so runs are
// deterministic for a fixed (seed, paths, workers) triple and a
// single-worker run is exactly the serial engine driven by worker 0's RNG.
// workers < 1 selects GOMAXPROCS. Lookups proceed concurrently with each
// other but serialize against reconfiguration, which remains an exclusive
// writer.
func (s *Simulation) LookupParallel(paths []string, workers int) []Result {
	if len(paths) == 0 {
		return nil
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(paths) {
		workers = len(paths)
	}
	results := make([]Result, len(paths))
	chunk := (len(paths) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(paths) {
			break
		}
		hi := lo + chunk
		if hi > len(paths) {
			hi = len(paths)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed(s.seed, w)))
			for i := lo; i < hi; i++ {
				results[i] = toResult(s.cluster.LookupWith(rng, paths[i], -1))
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return results
}

// OpKind identifies one ApplyParallel operation.
type OpKind uint8

// Operation kinds for ApplyParallel.
const (
	// OpLookup resolves a path through the query hierarchy.
	OpLookup OpKind = iota
	// OpCreate homes a new file (an existing path degenerates to a lookup).
	OpCreate
	// OpDelete unlinks a file.
	OpDelete
)

// Op is one operation of a mixed workload for ApplyParallel.
type Op struct {
	Kind OpKind
	Path string
}

// ApplyParallel dispatches a mixed create/delete/lookup workload across the
// given number of worker goroutines and returns the results in input order.
// Each worker draws entry points and home placements from its own seeded
// RNG, following LookupParallel's contract: runs are deterministic for a
// fixed (seed, ops, workers) triple up to the interleaving of workers on
// shared cluster state, and a single-worker run is exactly the serial
// engine driven by worker 0's RNG. Mutations on different servers proceed
// in parallel (the write path is sharded); reconfiguration still serializes
// exclusively against the whole batch. workers < 1 selects GOMAXPROCS.
//
// A delete's Result reports the pre-delete home and whether the path
// existed; a create reports the chosen home with Level 0. Replica shipping
// is coalesced per ShipBatch — call Flush to force pending updates out at a
// quiescent point.
func (s *Simulation) ApplyParallel(ops []Op, workers int) []Result {
	if len(ops) == 0 {
		return nil
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ops) {
		workers = len(ops)
	}
	results := make([]Result, len(ops))
	chunk := (len(ops) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(ops) {
			break
		}
		hi := lo + chunk
		if hi > len(ops) {
			hi = len(ops)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed(s.seed, w)))
			for i := lo; i < hi; i++ {
				results[i] = toResult(s.cluster.ApplyWith(rng, ops[i].record()))
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return results
}

// record converts a facade Op to the trace record the engine dispatches.
func (op Op) record() trace.Record {
	rec := trace.Record{Path: op.Path}
	switch op.Kind {
	case OpCreate:
		rec.Op = trace.OpCreate
	case OpDelete:
		rec.Op = trace.OpDelete
	default:
		rec.Op = trace.OpStat
	}
	return rec
}

// Flush drains the coalescing ship queue: every server whose filter
// crossed the update threshold since the last drain ships its replicas now.
// A no-op with the default ShipBatch of 1.
func (s *Simulation) Flush() { s.cluster.Flush() }

// AddMDS grows the cluster by one server (joining a group with room or
// splitting a full one) and returns the new server's ID along with the
// number of Bloom-filter replicas migrated.
func (s *Simulation) AddMDS() (id, replicasMigrated int, err error) {
	id, rep, err := s.cluster.AddMDS()
	return id, rep.ReplicasMigrated, err
}

// RemoveMDS retires a server gracefully: its replicas migrate to
// groupmates, its files re-home across survivors, and shrunken groups
// merge.
func (s *Simulation) RemoveMDS(id int) error {
	_, err := s.cluster.RemoveMDS(id)
	return err
}

// FailMDS simulates a crash (Section 4.5): nothing migrates off the dead
// server — its group re-fetches the lost filter replicas from their
// origins, its own filters are scrubbed everywhere, and the files it homed
// become unavailable until recreated. Returns how many files were lost.
func (s *Simulation) FailMDS(id int) (filesLost int, err error) {
	rep, err := s.cluster.FailMDS(id)
	return rep.FilesLost, err
}

// MDSIDs returns the current server IDs in ascending order.
func (s *Simulation) MDSIDs() []int { return s.cluster.MDSIDs() }

// LevelFractions returns the share of lookups served at each level
// (indices 1–4; index 0 unused), the statistic behind Fig 13.
func (s *Simulation) LevelFractions() [5]float64 {
	var out [5]float64
	for l := 1; l <= 4; l++ {
		out[l] = s.cluster.Tally().Fraction(l)
	}
	return out
}

// LevelCounts returns the cumulative number of lookups served at each level
// (indices 1–4; index 0 unused). Drivers that interleave warmup and measured
// phases difference two snapshots to attribute hits to one phase.
func (s *Simulation) LevelCounts() [5]uint64 {
	var out [5]uint64
	for l := 1; l <= 4; l++ {
		out[l] = s.cluster.Tally().Count(l)
	}
	return out
}

// MeanLatency returns the average simulated lookup latency so far.
func (s *Simulation) MeanLatency() time.Duration {
	return s.cluster.OverallLatency().Mean()
}

// CheckInvariants verifies the global-mirror-image invariant across all
// groups; nil means every group independently covers the whole system.
func (s *Simulation) CheckInvariants() error { return s.cluster.CheckInvariants() }
