package ghba

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"ghba/internal/proto"
	"ghba/internal/rpcnet"
	"ghba/internal/trace"
)

// PrototypeConfig describes a TCP-backed deployment: the shared Config plus
// the knobs only the networked prototype has.
type PrototypeConfig struct {
	Config

	// Mode selects the scheme: "ghba" (default) or the "hba" baseline.
	Mode string
	// ResidentReplicaLimit is how many replicas fit in one daemon's RAM;
	// holdings beyond it pay DiskPenalty per query. Zero disables.
	ResidentReplicaLimit int
	// DiskPenalty is the emulated disk cost for over-RAM replica arrays.
	DiskPenalty time.Duration
	// CallTimeout is the per-RPC deadline. Zero selects the library
	// default; negative disables deadlines entirely. Per-call contexts
	// tighten (never loosen) this bound.
	CallTimeout time.Duration
	// ObserveBatch is how many confirmed lookups accumulate before the L1
	// observation batch is multicast to every daemon. Zero selects 64; 1
	// multicasts immediately, matching the simulation's per-lookup L1
	// learning.
	ObserveBatch int
	// Transport selects the wire protocol: "mux" (default when empty) for
	// the multiplexed framed protocol — one shared socket per daemon,
	// pipelined request-ID-tagged frames — or "classic" for the original
	// call-per-connection protocol behind per-daemon pools.
	Transport string
	// DataDir, when non-empty, makes every daemon durable: MDS i
	// write-ahead logs its mutations under DataDir/mds-<i> and compacts
	// the log into snapshots, enabling KillMDS/RestartMDS crash-recovery
	// cycles. Empty keeps daemons memory-only, as before.
	DataDir string
	// WALSync selects the daemons' fsync policy: "always" (default),
	// "interval" or "never". Only meaningful with DataDir.
	WALSync string
	// WALSyncInterval bounds the data-loss window under WALSync
	// "interval". Zero selects the library default (100ms).
	WALSyncInterval time.Duration
	// SnapshotEvery is the WAL record count between snapshot compactions
	// at each daemon. Zero selects 4096; negative disables automatic
	// compaction. Only meaningful with DataDir.
	SnapshotEvery int
	// RetryAttempts bounds retry-with-backoff for idempotent RPCs
	// (queries, probes, filter ships — never mutations). Zero or one
	// disables retries; set it when daemons may crash and restart mid-run
	// so lookups ride through the outage instead of failing on the first
	// connection reset.
	RetryAttempts int
	// RetryBackoff is the first retry delay (doubling per attempt, capped
	// at RetryMaxBackoff). Zeros select the library defaults.
	RetryBackoff    time.Duration
	RetryMaxBackoff time.Duration
}

// Prototype is the TCP Backend: N real MDS daemons on loopback ports (the
// paper's Section 5 prototype), driven by a concurrent coordinator over
// pooled connections. Lookups, creates and deletes are genuine socket
// traffic; latencies include the real network stack.
type Prototype struct {
	cluster *proto.Cluster
	seed    int64
}

// StartPrototype boots a TCP cluster from cfg. Callers must Close it.
func StartPrototype(cfg PrototypeConfig) (*Prototype, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	mode := proto.ModeGHBA
	switch cfg.Mode {
	case "", "ghba":
	case "hba":
		mode = proto.ModeHBA
	default:
		return nil, &ConfigError{Field: "Mode", Reason: fmt.Sprintf("want %q or %q, got %q", "ghba", "hba", cfg.Mode)}
	}
	cluster, err := proto.Start(proto.Options{
		N:                    cfg.NumMDS,
		M:                    cfg.groupSize(),
		Mode:                 mode,
		Node:                 cfg.nodeConfig(),
		ResidentReplicaLimit: cfg.ResidentReplicaLimit,
		DiskPenalty:          cfg.DiskPenalty,
		Seed:                 cfg.Seed,
		CallTimeout:          cfg.CallTimeout,
		ShipBatch:            cfg.ShipBatch,
		ObserveBatch:         cfg.ObserveBatch,
		Transport:            cfg.Transport,
		DataDir:              cfg.DataDir,
		WALSync:              cfg.WALSync,
		WALSyncInterval:      cfg.WALSyncInterval,
		SnapshotEvery:        cfg.SnapshotEvery,
		Retry: rpcnet.RetryPolicy{
			Attempts:   cfg.RetryAttempts,
			Backoff:    cfg.RetryBackoff,
			MaxBackoff: cfg.RetryMaxBackoff,
		},
	})
	if err != nil {
		return nil, err
	}
	return &Prototype{cluster: cluster, seed: cfg.Seed}, nil
}

// Name identifies the backend in banners and bench records.
func (p *Prototype) Name() string { return "tcp" }

// Seed returns the seed the prototype was built with.
func (p *Prototype) Seed() int64 { return p.seed }

// NumMDS returns the current daemon count.
func (p *Prototype) NumMDS() int { return p.cluster.NumMDS() }

// MDSIDs returns the current daemon IDs in ascending order.
func (p *Prototype) MDSIDs() []int { return p.cluster.MDSIDs() }

// FileCount returns the number of files in the namespace.
func (p *Prototype) FileCount() int { return p.cluster.FileCount() }

// HomeOf returns path's ground-truth home MDS (-1 when absent).
func (p *Prototype) HomeOf(path string) int { return p.cluster.HomeOf(path) }

// Cluster exposes the underlying prototype coordinator for callers that
// need its extra observability (RPC message counters, reset hooks).
func (p *Prototype) Cluster() *proto.Cluster { return p.cluster }

func protoResult(path string, res proto.LookupResult) Result {
	return Result{
		Path:    path,
		Home:    res.Home,
		Found:   res.Found,
		Level:   res.Level,
		Latency: res.Latency,
	}
}

// Lookup resolves path over real RPCs, entering at a daemon drawn from the
// cluster's internal RNG.
func (p *Prototype) Lookup(ctx context.Context, path string) (Result, error) {
	res, err := p.cluster.Lookup(ctx, path)
	if err != nil {
		return Result{}, err
	}
	return protoResult(path, res), nil
}

// LookupWith is Lookup with the entry drawn from the caller's RNG.
func (p *Prototype) LookupWith(ctx context.Context, rng *rand.Rand, path string) (Result, error) {
	res, err := p.cluster.LookupWith(ctx, rng, path)
	if err != nil {
		return Result{}, err
	}
	return protoResult(path, res), nil
}

// Apply dispatches one mixed-workload operation over the wire: creates home
// files at RNG-chosen daemons (shipping XOR-delta replica updates when the
// home's filter crosses the threshold), deletes unlink, lookups walk the
// hierarchy.
func (p *Prototype) Apply(ctx context.Context, op Op) (Result, error) {
	res, err := p.cluster.Apply(ctx, op.record())
	if err != nil {
		return Result{}, err
	}
	return protoResult(op.Path, res), nil
}

// ApplyWith is Apply with a caller-supplied RNG. The draw pattern matches
// the simulation's exactly, so a fixed-seed trace replays onto identical
// homes on either backend.
func (p *Prototype) ApplyWith(ctx context.Context, rng *rand.Rand, op Op) (Result, error) {
	res, err := p.cluster.ApplyWith(ctx, rng, op.record())
	if err != nil {
		return Result{}, err
	}
	return protoResult(op.Path, res), nil
}

// ApplyBatch dispatches a vector of operations through the batch RPCs: one
// frame carries many paths, so syscalls, frame headers and digest work
// amortize across the vector. The RNG draw pattern matches a serial
// ApplyWith loop over the same ops, so fixed-seed runs home every file
// identically on either path.
func (p *Prototype) ApplyBatch(ctx context.Context, rng *rand.Rand, ops []Op) ([]Result, error) {
	recs := make([]trace.Record, len(ops))
	for i, op := range ops {
		recs[i] = op.record()
	}
	res, err := p.cluster.ApplyBatch(ctx, rng, recs)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(res))
	for i, r := range res {
		out[i] = protoResult(ops[i].Path, r)
	}
	return out, nil
}

// LookupBatch resolves a vector of paths through the batch RPCs, drawing
// each path's entry from rng in path order.
func (p *Prototype) LookupBatch(ctx context.Context, rng *rand.Rand, paths []string) ([]Result, error) {
	res, err := p.cluster.LookupBatch(ctx, rng, paths)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(res))
	for i, r := range res {
		out[i] = protoResult(paths[i], r)
	}
	return out, nil
}

// Transport returns the wire protocol in use ("mux" or "classic").
func (p *Prototype) Transport() string { return p.cluster.Transport() }

// CreateAll bulk-loads paths directly into the daemons (unmeasured) and
// refreshes every replica, like the simulation's populate path.
func (p *Prototype) CreateAll(_ context.Context, paths []string) error {
	p.cluster.Populate(paths)
	return nil
}

// Flush drains the coalescing ship queue over the wire.
func (p *Prototype) Flush(ctx context.Context) error { return p.cluster.Flush(ctx) }

// LevelCounts returns the cumulative lookups served at each level.
func (p *Prototype) LevelCounts() [5]uint64 { return p.cluster.LevelCounts() }

// ReplicaUpdates returns the replica-install messages the XOR-delta ship
// path has sent.
func (p *Prototype) ReplicaUpdates() uint64 { return p.cluster.ReplicaUpdates() }

// Close shuts down every daemon and connection.
func (p *Prototype) Close() error {
	p.cluster.Close()
	return nil
}

// AddMDS boots one new daemon and reconfigures the running cluster over
// real RPCs, returning the new ID and the number of messages the operation
// cost.
func (p *Prototype) AddMDS(ctx context.Context) (id, replicasMigrated int, err error) {
	return p.cluster.AddMDS(ctx)
}

// RemoveMDS is not yet implemented by the TCP prototype.
func (p *Prototype) RemoveMDS(context.Context, int) error { return ErrUnsupported }

// FailMDS removes daemon id as if it had crashed: the daemon is killed,
// survivors repair their replica placement over real RPCs, and the files it
// homed leave the namespace. Returns how many files were lost. The cluster's
// heartbeat detector (StartDetector) invokes the same path automatically on
// a Dead verdict.
func (p *Prototype) FailMDS(ctx context.Context, id int) (int, error) {
	rep, err := p.cluster.FailMDS(ctx, id)
	return rep.FilesLost, err
}

// KillMDS crashes daemon id in place — connections drop, the WAL is
// abandoned mid-stream, membership still names it — the client-visible
// shape of a kill -9. Recover it with RestartMDS, or let a running failure
// detector declare it dead and fail it over.
func (p *Prototype) KillMDS(id int) error { return p.cluster.KillMDS(id) }

// RestartMDS recovers daemon id from its WAL directory (requires DataDir)
// and returns the recovery report: a daemon killed in place restarts within
// its membership slot; one that was failed over rejoins and re-claims the
// files its log preserved.
func (p *Prototype) RestartMDS(ctx context.Context, id int) (proto.RestartReport, error) {
	return p.cluster.RestartMDS(ctx, id)
}

// StartDetector launches the heartbeat failure detector against the
// cluster: probes on a cadence, Alive→Suspect→Dead escalation, automatic
// failover on Dead. Callers must Stop it before Close.
func (p *Prototype) StartDetector(opts proto.DetectorOptions) *proto.Detector {
	return p.cluster.StartDetector(opts)
}
