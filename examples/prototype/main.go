// Prototype: boot a real TCP cluster of MDS daemons (the Section 5
// prototype, scaled to laptop size), run lookups over actual sockets, and
// measure the message cost of adding servers — the Fig 14 / Fig 15 setup.
//
//	go run ./examples/prototype
package main

import (
	"fmt"
	"log"
	"time"

	"ghba/internal/mds"
	"ghba/internal/proto"
)

func main() {
	for _, mode := range []proto.Mode{proto.ModeHBA, proto.ModeGHBA} {
		run(mode)
		fmt.Println()
	}
}

func run(mode proto.Mode) {
	cluster, err := proto.Start(proto.Options{
		N:    12,
		M:    4,
		Mode: mode,
		Node: mds.Config{
			ExpectedFiles:  2_000,
			BitsPerFile:    16,
			LRUCapacity:    256,
			LRUBitsPerFile: 16,
		},
		Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	paths := make([]string, 3_000)
	for i := range paths {
		paths[i] = fmt.Sprintf("/srv/share/d%d/f%d", i%31, i)
	}
	cluster.Populate(paths)
	fmt.Printf("%s: %d daemons on loopback TCP, %d files\n",
		mode, cluster.NumMDS(), len(paths))

	// A few hundred lookups over real sockets.
	cluster.ResetMessages()
	var levels [5]int
	for i := 0; i < 500; i++ {
		res, err := cluster.Lookup(paths[(i*13)%len(paths)])
		if err != nil {
			log.Fatal(err)
		}
		if !res.Found {
			log.Fatalf("lost %s", paths[(i*13)%len(paths)])
		}
		levels[res.Level]++
	}
	fmt.Printf("%s: 500 lookups, levels L1=%d L2=%d L3=%d L4=%d, %d RPCs\n",
		mode, levels[1], levels[2], levels[3], levels[4], cluster.Messages())

	// The same batch through the concurrent driver: 8 workers over the
	// pooled connections, results still in batch order.
	batch := make([]string, 500)
	for i := range batch {
		batch[i] = paths[(i*13)%len(paths)]
	}
	start := time.Now()
	results, err := cluster.LookupParallel(batch, 8)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)
	for i, res := range results {
		if !res.Found {
			log.Fatalf("parallel driver lost %s", batch[i])
		}
	}
	fmt.Printf("%s: %d parallel lookups (8 workers) in %v — %.0f lookups/s\n",
		mode, len(results), wall.Round(time.Millisecond),
		float64(len(results))/wall.Seconds())

	// The Fig 15 measurement: what one MDS insertion costs in messages.
	cluster.ResetMessages()
	id, msgs, err := cluster.AddMDS()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: adding MDS %d cost %d messages\n", mode, id, msgs)
}
