// Prototype: one driver, two backends. The same measurement function runs
// first against the in-process simulation and then against a real TCP
// cluster of MDS daemons (the Section 5 prototype, scaled to laptop size) —
// the point of the unified ghba.Backend API. The TCP run exercises lookups,
// creates and deletes over actual sockets, ships XOR-delta replica updates
// on the wire, and measures the message cost of adding a server (the Fig 14
// / Fig 15 setup).
//
//	go run ./examples/prototype
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ghba"
)

func main() {
	ctx := context.Background()
	cfg := ghba.Config{
		NumMDS:              12,
		MaxGroupSize:        4,
		ExpectedFilesPerMDS: 2_000,
		Seed:                3,
	}

	sim, err := ghba.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	run(ctx, sim)
	fmt.Println()

	tcp, err := ghba.StartPrototype(ghba.PrototypeConfig{Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	run(ctx, tcp)
}

// run drives the identical workload against any backend: populate, serial
// lookups, parallel lookups, a burst of creates and deletes, and one MDS
// insertion.
func run(ctx context.Context, b ghba.Backend) {
	defer b.Close()

	paths := make([]string, 3_000)
	for i := range paths {
		paths[i] = fmt.Sprintf("/srv/share/d%d/f%d", i%31, i)
	}
	if err := b.CreateAll(ctx, paths); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d MDSs, %d files\n", b.Name(), b.NumMDS(), b.FileCount())

	// A few hundred serial lookups.
	levelsBefore := b.LevelCounts()
	for i := 0; i < 500; i++ {
		res, err := b.Lookup(ctx, paths[(i*13)%len(paths)])
		if err != nil {
			log.Fatal(err)
		}
		if !res.Found {
			log.Fatalf("lost %s", paths[(i*13)%len(paths)])
		}
	}
	levels := b.LevelCounts()
	fmt.Printf("%s: 500 lookups, levels L1=%d L2=%d L3=%d L4=%d\n",
		b.Name(), levels[1]-levelsBefore[1], levels[2]-levelsBefore[2],
		levels[3]-levelsBefore[3], levels[4]-levelsBefore[4])

	// The same batch through the concurrent driver: 8 workers, results
	// still in batch order.
	batch := make([]string, 500)
	for i := range batch {
		batch[i] = paths[(i*13)%len(paths)]
	}
	start := time.Now()
	results, err := ghba.LookupParallel(ctx, b, batch, 8)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)
	for i, res := range results {
		if !res.Found {
			log.Fatalf("parallel driver lost %s", batch[i])
		}
	}
	fmt.Printf("%s: %d parallel lookups (8 workers) in %v — %.0f lookups/s\n",
		b.Name(), len(results), wall.Round(time.Millisecond),
		float64(len(results))/wall.Seconds())

	// Mixed mutations through the same API: create a burst, delete half.
	ops := make([]ghba.Op, 0, 300)
	for i := 0; i < 200; i++ {
		ops = append(ops, ghba.Op{Kind: ghba.OpCreate, Path: fmt.Sprintf("/srv/new/f%d", i)})
	}
	for i := 0; i < 100; i++ {
		ops = append(ops, ghba.Op{Kind: ghba.OpDelete, Path: fmt.Sprintf("/srv/new/f%d", i*2)})
	}
	if _, err := ghba.ApplyParallel(ctx, b, ops, 4); err != nil {
		log.Fatal(err)
	}
	if err := b.Flush(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: after 200 creates and 100 deletes: %d files\n", b.Name(), b.FileCount())

	// The Fig 15 measurement: what one MDS insertion costs.
	if r, ok := b.(ghba.Reconfigurer); ok {
		id, msgs, err := r.AddMDS(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: adding MDS %d cost %d messages\n", b.Name(), id, msgs)
	}
}
