// Quickstart: build a simulated G-HBA metadata cluster through the unified
// Backend API, load a namespace, and watch the four-level lookup hierarchy
// resolve queries. Swapping ghba.New for ghba.StartPrototype runs the same
// code against real TCP daemons — see examples/prototype.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"ghba"
)

func main() {
	ctx := context.Background()

	// 30 metadata servers; the group size defaults to the paper's optimum
	// for this system size (M=6).
	sim, err := ghba.New(ghba.Config{
		NumMDS:              30,
		ExpectedFilesPerMDS: 10_000,
		Seed:                42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()
	fmt.Printf("cluster: %d MDSs in %d groups (backend %q)\n",
		sim.NumMDS(), sim.NumGroups(), sim.Name())

	// Load a namespace. CreateAll bulk-loads and synchronizes replicas.
	paths := make([]string, 0, 5_000)
	for d := 0; d < 50; d++ {
		for f := 0; f < 100; f++ {
			paths = append(paths, fmt.Sprintf("/home/user%d/file%d.dat", d, f))
		}
	}
	if err := sim.CreateAll(ctx, paths); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("namespace: %d files\n", sim.FileCount())

	// First lookup of a cold file typically resolves at L2 or L3; repeat
	// lookups hit the L1 LRU array.
	target := "/home/user7/file42.dat"
	for i := 1; i <= 3; i++ {
		res, err := sim.Lookup(ctx, target)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("lookup %d: home=MDS%-3d level=L%d latency=%v\n",
			i, res.Home, res.Level, res.Latency)
	}

	// Lookups of nonexistent files resolve definitively at L4 (global
	// multicast, no false negatives).
	miss, err := sim.Lookup(ctx, "/no/such/file")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("miss:     found=%v level=L%d\n", miss.Found, miss.Level)

	// Mixed mutations flow through Apply: create, find, delete.
	created, err := sim.Apply(ctx, ghba.Op{Kind: ghba.OpCreate, Path: "/tmp/scratch.dat"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created /tmp/scratch.dat at MDS%d\n", created.Home)
	found, _ := sim.Lookup(ctx, "/tmp/scratch.dat")
	fmt.Printf("lookup after create: %v\n", found.Found)
	if _, err := sim.Apply(ctx, ghba.Op{Kind: ghba.OpDelete, Path: "/tmp/scratch.dat"}); err != nil {
		log.Fatal(err)
	}
	gone, _ := sim.Lookup(ctx, "/tmp/scratch.dat")
	fmt.Printf("lookup after delete: %v\n", gone.Found)

	// Replay a few thousand skewed lookups so the level statistics are
	// representative (hot files repeat, as real metadata traffic does).
	for i := 0; i < 5_000; i++ {
		idx := i % len(paths)
		if i%3 != 0 {
			idx %= 200 // hot set
		}
		if _, err := sim.Lookup(ctx, paths[idx]); err != nil {
			log.Fatal(err)
		}
	}

	// Per-level service shares (the Fig 13 statistic).
	fr := sim.LevelFractions()
	fmt.Printf("levels: L1=%.1f%% L2=%.1f%% L3=%.1f%% L4=%.1f%%  mean=%v\n",
		100*fr[1], 100*fr[2], 100*fr[3], 100*fr[4], sim.MeanLatency())
}
