// Dynamic scaling: grow and shrink a G-HBA cluster under a live namespace,
// exercising the paper's light-weight migration, group splitting and group
// merging (Sections 3.1–3.2) while verifying that every file stays
// resolvable and every group keeps a global mirror image.
//
//	go run ./examples/dynamicscale
package main

import (
	"context"
	"fmt"
	"log"

	"ghba"
)

func main() {
	sim, err := ghba.New(ghba.Config{
		NumMDS:              8,
		MaxGroupSize:        4,
		ExpectedFilesPerMDS: 5_000,
		Seed:                7,
	})
	if err != nil {
		log.Fatal(err)
	}

	paths := make([]string, 3_000)
	for i := range paths {
		paths[i] = fmt.Sprintf("/proj/build%d/obj%d.o", i%20, i)
	}
	if err := sim.CreateAll(context.Background(), paths); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("start: %d MDSs, %d groups, %d files\n",
		sim.NumMDS(), sim.NumGroups(), sim.FileCount())

	// Grow by five servers. The 4th addition finds every group full and
	// triggers a split.
	for i := 0; i < 5; i++ {
		id, migrated, err := sim.AddMDS(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("added MDS %-3d migrated %2d replicas → %d groups\n",
			id, migrated, sim.NumGroups())
		mustHold(sim)
	}

	// Shrink by four. Departing servers hand replicas to groupmates and
	// re-home their files; small groups merge back together.
	ids := sim.MDSIDs()
	for _, id := range ids[:4] {
		if err := sim.RemoveMDS(context.Background(), id); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("removed MDS %-3d → %d MDSs in %d groups\n",
			id, sim.NumMDS(), sim.NumGroups())
		mustHold(sim)
	}

	// Every file still resolves after all that churn.
	lost := 0
	for _, p := range paths {
		res, err := sim.Lookup(context.Background(), p)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Found {
			lost++
		}
	}
	fmt.Printf("after churn: %d/%d files resolvable (lost=%d)\n",
		len(paths)-lost, len(paths), lost)
	if lost > 0 {
		log.Fatal("metadata lost during reconfiguration")
	}
}

// mustHold asserts the global-mirror-image invariant after every step.
func mustHold(sim *ghba.Simulation) {
	if err := sim.CheckInvariants(); err != nil {
		log.Fatalf("invariant violated: %v", err)
	}
}
