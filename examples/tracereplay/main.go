// Trace replay: run an intensified HP-like workload (the paper's Section 4
// methodology — TIF sub-traces with disjoint namespaces replayed
// concurrently) against both G-HBA and the HBA baseline under a constrained
// memory budget, reproducing the headline effect of Figs 8–10: HBA's global
// replica array spills to disk and slows down, G-HBA's segment arrays stay
// memory resident.
//
//	go run ./examples/tracereplay
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ghba/internal/core"
	"ghba/internal/experiments"
	"ghba/internal/hba"
	"ghba/internal/mds"
	"ghba/internal/trace"
)

func main() {
	const (
		n     = 20
		m     = 5
		ops   = 30_000
		memMB = 160 // tight budget: HBA's 20 replicas × 24MB spill hard
	)
	profile := trace.HP()
	fmt.Printf("workload: %s ×TIF=2, %d MDSs, %dMB RAM per MDS\n\n",
		profile.Name, n, memMB)

	for _, scheme := range []string{"HBA", "G-HBA"} {
		gen, err := trace.NewGenerator(trace.Config{
			Profile:          profile,
			TIF:              2,
			FilesPerSubtrace: 5_000,
			MeanInterarrival: 50 * time.Microsecond,
			Seed:             1,
		})
		if err != nil {
			log.Fatal(err)
		}

		cfg := core.DefaultConfig(n, m)
		cfg.Node = mds.Config{
			ExpectedFiles:  gen.InitialFileCount()/n*2 + 16,
			BitsPerFile:    16,
			LRUCapacity:    1024,
			LRUBitsPerFile: 16,
		}
		cfg.MemoryBudgetBytes = memMB << 20
		cfg.VirtualReplicaBytes = 24 << 20
		cfg.CacheHitRate = 0.9
		cfg.Seed = 1

		var sys experiments.System
		if scheme == "HBA" {
			c, err := hba.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			sys = experiments.HBASystem(c)
		} else {
			c, err := core.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			sys = experiments.CoreSystem(c)
		}

		if err := experiments.PopulateFromGenerator(sys, gen); err != nil {
			log.Fatal(err)
		}
		points, err := experiments.Replay(context.Background(), sys, gen, ops, ops/5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s", scheme)
		for _, p := range points {
			fmt.Printf("  %6dops→%-10v", p.Ops, p.MeanLatency.Round(10*time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Println("\nG-HBA stays flat while HBA pays for its spilled replica array —")
	fmt.Println("the effect behind Figs 8–10 of the paper.")
}
