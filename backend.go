package ghba

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"ghba/internal/trace"
)

// ErrUnsupported is returned by Reconfigurer operations a backend cannot
// perform (the TCP prototype, for instance, grows but does not yet shrink).
var ErrUnsupported = errors.New("ghba: operation not supported by this backend")

// Backend is the transport-agnostic client surface over a G-HBA metadata
// cluster. Two implementations ship with the repository: Simulation (the
// in-process engine with simulated costs) and Prototype (real TCP daemons
// on loopback, the paper's Section 5 setup). Every driver in this module —
// the replay engines, the benches, the CLIs, the examples — dispatches
// against this interface, so any mixed-workload scenario runs unchanged
// against either backend.
//
// Contexts carry per-call deadlines and cancellation; the simulation
// ignores them (it never blocks on I/O), the prototype threads them down to
// every RPC. Lookups and Applies are safe for concurrent use; backends
// serialize reconfiguration internally as an exclusive writer.
type Backend interface {
	// Name identifies the backend ("sim", "tcp") in banners and records.
	Name() string
	// Seed returns the seed the backend was built with — the base of the
	// per-worker RNG derivation the parallel drivers share.
	Seed() int64
	// NumMDS returns the current server count.
	NumMDS() int
	// MDSIDs returns the current server IDs in ascending order.
	MDSIDs() []int
	// FileCount returns the number of files in the namespace (ground truth).
	FileCount() int
	// Lookup resolves the home MDS of path, entering the hierarchy at a
	// server drawn from the backend's internal RNG.
	Lookup(ctx context.Context, path string) (Result, error)
	// LookupWith is Lookup with the entry drawn from the caller's RNG — the
	// reproducible-concurrency hook every parallel driver builds on.
	LookupWith(ctx context.Context, rng *rand.Rand, path string) (Result, error)
	// Apply dispatches one mixed-workload operation: creates home new
	// files, deletes unlink, lookups walk the query hierarchy.
	Apply(ctx context.Context, op Op) (Result, error)
	// ApplyWith is Apply with a caller-supplied RNG.
	ApplyWith(ctx context.Context, rng *rand.Rand, op Op) (Result, error)
	// CreateAll bulk-loads paths and synchronizes all replicas afterwards —
	// much faster than per-file updates for initial population.
	CreateAll(ctx context.Context, paths []string) error
	// Flush drains the coalescing ship queue at a quiescent point.
	Flush(ctx context.Context) error
	// LevelCounts returns the cumulative lookups served at each hierarchy
	// level (indices 1–4; index 0 unused).
	LevelCounts() [5]uint64
	// Close releases the backend's resources (daemons, sockets). The
	// simulation's Close is a no-op.
	Close() error
}

// BatchApplier is the optional batch half of the backend contract: a
// backend that dispatches a whole vector of operations per call, letting a
// networked transport amortize syscalls, frame headers and digest work
// across the vector. Both shipped backends implement it — the simulation as
// a serial loop (it has no wire rounds to amortize), the prototype through
// the batch RPCs (LookupBatch/ApplyBatch in internal/proto).
type BatchApplier interface {
	// ApplyBatch dispatches ops as one batch with the caller's RNG,
	// returning per-op results in input order. The RNG draw pattern matches
	// a serial ApplyWith loop over the same ops — one draw per create or
	// lookup, none per delete — so fixed-seed runs home every file
	// identically whichever path dispatches them.
	ApplyBatch(ctx context.Context, rng *rand.Rand, ops []Op) ([]Result, error)
	// LookupBatch resolves a vector of paths as one batch, drawing each
	// path's entry from the caller's RNG in path order.
	LookupBatch(ctx context.Context, rng *rand.Rand, paths []string) ([]Result, error)
}

// Reconfigurer is the dynamic-membership half of the backend contract.
// Simulation supports all three operations; Prototype supports AddMDS and
// FailMDS (plus crash/recover cycles via its own KillMDS/RestartMDS) and
// returns ErrUnsupported for graceful RemoveMDS.
type Reconfigurer interface {
	// AddMDS grows the cluster by one server, returning the new ID and the
	// number of Bloom-filter replicas migrated (messages, on the wire).
	AddMDS(ctx context.Context) (id, replicasMigrated int, err error)
	// RemoveMDS retires a server gracefully.
	RemoveMDS(ctx context.Context, id int) error
	// FailMDS simulates a crash, returning how many files were lost.
	FailMDS(ctx context.Context, id int) (filesLost int, err error)
}

// OpKind identifies one Apply operation.
type OpKind uint8

// Operation kinds for Apply/ApplyWith.
const (
	// OpLookup resolves a path through the query hierarchy.
	OpLookup OpKind = iota
	// OpCreate homes a new file (an existing path degenerates to a lookup).
	OpCreate
	// OpDelete unlinks a file.
	OpDelete
)

// Op is one operation of a mixed workload.
type Op struct {
	Kind OpKind
	Path string
	// At is the arrival-time offset driving the simulation's open-loop
	// queue model; the prototype (real sockets, real queueing) ignores it.
	At time.Duration
}

// record converts a facade Op to the trace record the engines dispatch.
func (op Op) record() trace.Record {
	rec := trace.Record{Path: op.Path, At: op.At}
	switch op.Kind {
	case OpCreate:
		rec.Op = trace.OpCreate
	case OpDelete:
		rec.Op = trace.OpDelete
	default:
		rec.Op = trace.OpStat
	}
	return rec
}

// workerSeed derives a deterministic per-worker RNG seed; the shared
// derivation lives in trace.DispatchSeed so every parallel driver agrees.
func workerSeed(seed int64, worker int) int64 {
	return trace.DispatchSeed(seed, worker)
}

// LookupParallel resolves every path against the backend using the given
// number of worker goroutines and returns the results in path order. Each
// worker enters the hierarchy at servers drawn from its own seeded RNG, so
// runs are deterministic for a fixed (backend seed, paths, workers) triple
// and a single-worker run is exactly the serial engine driven by worker 0's
// RNG. workers < 1 selects GOMAXPROCS. A worker's first error stops its
// chunk; other workers finish theirs, and all errors are joined.
func LookupParallel(ctx context.Context, b Backend, paths []string, workers int) ([]Result, error) {
	if len(paths) == 0 {
		return nil, nil
	}
	results := make([]Result, len(paths))
	err := fanOut(len(paths), workers, b.Seed(), func(rng *rand.Rand, i int) error {
		res, err := b.LookupWith(ctx, rng, paths[i])
		if err != nil {
			return fmt.Errorf("lookup %q: %w", paths[i], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// ApplyParallel dispatches a mixed create/delete/lookup workload across the
// given number of worker goroutines and returns the results in input order.
// The determinism contract matches LookupParallel's: runs are reproducible
// for a fixed (backend seed, ops, workers) triple up to the interleaving of
// workers on shared cluster state, and a single-worker run is exactly the
// serial engine driven by worker 0's RNG.
//
// A delete's Result reports the pre-delete home and whether the path
// existed; a create reports the chosen home with Level 0. Replica shipping
// is coalesced per the backend's ShipBatch — call Flush to force pending
// updates out at a quiescent point.
func ApplyParallel(ctx context.Context, b Backend, ops []Op, workers int) ([]Result, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	results := make([]Result, len(ops))
	err := fanOut(len(ops), workers, b.Seed(), func(rng *rand.Rand, i int) error {
		res, err := b.ApplyWith(ctx, rng, ops[i])
		if err != nil {
			return fmt.Errorf("op %d (%q): %w", i, ops[i].Path, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// ApplyParallelBatched is ApplyParallel with each worker dispatching its
// chunk in batchSize vectors through the backend's BatchApplier instead of
// op by op. The chunking, per-worker RNG seeds and within-chunk op order are
// identical to ApplyParallel's, so the determinism contract carries over; a
// backend without batch support (or batchSize ≤ 1) falls back to the per-op
// path.
func ApplyParallelBatched(ctx context.Context, b Backend, ops []Op, workers, batchSize int) ([]Result, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	ba, ok := b.(BatchApplier)
	if !ok || batchSize <= 1 {
		return ApplyParallel(ctx, b, ops, workers)
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ops) {
		workers = len(ops)
	}
	results := make([]Result, len(ops))
	errs := make([]error, workers)
	chunk := (len(ops) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(ops) {
			break
		}
		hi := lo + chunk
		if hi > len(ops) {
			hi = len(ops)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed(b.Seed(), w)))
			for at := lo; at < hi; at += batchSize {
				end := at + batchSize
				if end > hi {
					end = hi
				}
				res, err := ba.ApplyBatch(ctx, rng, ops[at:end])
				if err != nil {
					errs[w] = fmt.Errorf("worker %d, batch at op %d: %w", w, at, err)
					return
				}
				copy(results[at:end], res)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return results, nil
}

// fanOut chunks n items over workers goroutines, handing each worker its
// own deterministically seeded RNG; worker 0's chunk starts at item 0, so a
// one-worker fan-out is the serial loop.
func fanOut(n, workers int, seed int64, do func(rng *rand.Rand, i int) error) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, workers)
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed(seed, w)))
			for i := lo; i < hi; i++ {
				if err := do(rng, i); err != nil {
					errs[w] = fmt.Errorf("worker %d: %w", w, err)
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Interface conformance is pinned at compile time.
var (
	_ Backend      = (*Simulation)(nil)
	_ Backend      = (*Prototype)(nil)
	_ Reconfigurer = (*Simulation)(nil)
	_ Reconfigurer = (*Prototype)(nil)
	_ BatchApplier = (*Simulation)(nil)
	_ BatchApplier = (*Prototype)(nil)
)
