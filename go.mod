module ghba

go 1.24
