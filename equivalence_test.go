package ghba

// Pinned lookup-equivalence test: the digest pipeline must not change a
// single simulated outcome. The fingerprints below were captured from the
// pre-digest lookup path (hash-per-probe, map-backed arrays) under the fixed
// seeds used here; any change to hashing, probe order, unique-hit semantics,
// or message accounting shows up as a fingerprint or tally mismatch.

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"ghba/internal/core"
	"ghba/internal/hba"
	"ghba/internal/simnet"
)

// eqMix folds one lookup outcome into a running FNV-1a fingerprint.
func eqMix(fp uint64, path string, home, level int) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	if fp == 0 {
		fp = offset
	}
	s := path + ":" + strconv.Itoa(home) + ":" + strconv.Itoa(level)
	for i := 0; i < len(s); i++ {
		fp ^= uint64(s[i])
		fp *= prime
	}
	return fp
}

func eqPaths(n int) []string {
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("/eq/dir%d/file%d", i%53, i)
	}
	return paths
}

// TestLookupEquivalenceGHBA pins the full observable outcome of a fixed-seed
// G-HBA run: per-lookup (home, level) fingerprint, per-level tallies, and
// query message counts.
func TestLookupEquivalenceGHBA(t *testing.T) {
	cfg := core.DefaultConfig(24, 6)
	cfg.Seed = 42
	cl, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	paths := eqPaths(2_500)
	cl.Populate(func(fn func(string) bool) {
		for _, p := range paths {
			if !fn(p) {
				return
			}
		}
	})
	rng := rand.New(rand.NewSource(7))
	var fp uint64
	for i := 0; i < 5_000; i++ {
		p := paths[(i*13)%len(paths)]
		if i%10 == 9 {
			p = "/eq/absent" + strconv.Itoa(i)
		}
		res := cl.LookupWith(rng, p, -1)
		fp = eqMix(fp, p, res.Home, res.Level)
	}

	var levels [5]uint64
	for l := 1; l <= 4; l++ {
		levels[l] = cl.Tally().Count(l)
	}
	uni := cl.Messages().Get(simnet.MsgQueryUnicast)
	multi := cl.Messages().Get(simnet.MsgQueryMulticast)

	const (
		wantFP      = uint64(8455129467961161397)
		wantL1      = uint64(2250)
		wantL2      = uint64(368)
		wantL3      = uint64(1882)
		wantL4      = uint64(500)
		wantUnicast = uint64(4416)
		wantMulti   = uint64(23410)
	)
	if fp != wantFP || levels[1] != wantL1 || levels[2] != wantL2 ||
		levels[3] != wantL3 || levels[4] != wantL4 ||
		uni != wantUnicast || multi != wantMulti {
		t.Fatalf("G-HBA equivalence drifted:\n  fp=%d\n  L1=%d L2=%d L3=%d L4=%d\n  unicast=%d multicast=%d",
			fp, levels[1], levels[2], levels[3], levels[4], uni, multi)
	}
}

// TestLookupEquivalenceHBA pins the same outcome for the HBA baseline, whose
// global array is the densest consumer of the digest path.
func TestLookupEquivalenceHBA(t *testing.T) {
	cfg := core.DefaultConfig(24, 6)
	cfg.Seed = 42
	cl, err := hba.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	paths := eqPaths(2_500)
	cl.Populate(func(fn func(string) bool) {
		for _, p := range paths {
			if !fn(p) {
				return
			}
		}
	})
	ids := cl.MDSIDs()
	var fp uint64
	for i := 0; i < 5_000; i++ {
		p := paths[(i*13)%len(paths)]
		if i%10 == 9 {
			p = "/eq/absent" + strconv.Itoa(i)
		}
		res := cl.Lookup(p, ids[i%len(ids)])
		fp = eqMix(fp, p, res.Home, res.Level)
	}

	var levels [5]uint64
	for l := 1; l <= 4; l++ {
		levels[l] = cl.Tally().Count(l)
	}
	uni := cl.Messages().Get(simnet.MsgQueryUnicast)
	multi := cl.Messages().Get(simnet.MsgQueryMulticast)

	const (
		wantFP      = uint64(4359075373836914151)
		wantL1      = uint64(2250)
		wantL2      = uint64(2250)
		wantL4      = uint64(500)
		wantUnicast = uint64(4409)
		wantMulti   = uint64(11500)
	)
	if fp != wantFP || levels[1] != wantL1 || levels[2] != wantL2 ||
		levels[4] != wantL4 || uni != wantUnicast || multi != wantMulti {
		t.Fatalf("HBA equivalence drifted:\n  fp=%d\n  L1=%d L2=%d L4=%d\n  unicast=%d multicast=%d",
			fp, levels[1], levels[2], levels[4], uni, multi)
	}
}
