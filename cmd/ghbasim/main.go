// Command ghbasim replays an intensified synthetic workload against a
// simulated G-HBA cluster (optionally against the HBA baseline) and prints
// hit-rate, latency and message statistics.
//
//	ghbasim -trace HP -n 60 -m 7 -tif 4 -ops 100000
//	ghbasim -trace RES -n 100 -scheme hba -mem-mb 500
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"ghba/internal/analysis"
	"ghba/internal/core"
	"ghba/internal/experiments"
	"ghba/internal/hba"
	"ghba/internal/mds"
	"ghba/internal/trace"
)

func main() {
	var (
		traceName = flag.String("trace", "HP", "workload profile: HP, RES or INS")
		scheme    = flag.String("scheme", "ghba", "scheme: ghba or hba")
		n         = flag.Int("n", 30, "number of metadata servers")
		m         = flag.Int("m", 0, "max group size (0 = paper optimum for n)")
		tif       = flag.Int("tif", 2, "trace intensifying factor")
		files     = flag.Uint64("files", 10_000, "files per sub-trace")
		ops       = flag.Int("ops", 50_000, "operations to replay")
		memMB     = flag.Uint64("mem-mb", 0, "per-MDS memory budget in MB (0 = unlimited)")
		virtMB    = flag.Uint64("virt-mb", 16, "accounted MB per replica at paper scale")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	profile, err := trace.ProfileByName(*traceName)
	exitIf(err)
	if *m == 0 {
		*m = analysis.PaperOptimalM(*n)
	}

	gen, err := trace.NewGenerator(trace.Config{
		Profile:          profile,
		TIF:              *tif,
		FilesPerSubtrace: *files,
		Seed:             *seed,
	})
	exitIf(err)

	perMDS := gen.InitialFileCount()/uint64(*n) + 1
	cfg := core.DefaultConfig(*n, *m)
	cfg.Node = mds.Config{
		ExpectedFiles:  perMDS * 2,
		BitsPerFile:    16,
		LRUCapacity:    1024,
		LRUBitsPerFile: 16,
	}
	cfg.MemoryBudgetBytes = *memMB << 20
	cfg.VirtualReplicaBytes = *virtMB << 20
	cfg.Seed = *seed

	var (
		sys   experiments.System
		stats func()
	)
	switch *scheme {
	case "ghba":
		c, err := core.New(cfg)
		exitIf(err)
		sys = experiments.CoreSystem(c)
		stats = func() { printGHBAStats(c) }
	case "hba":
		c, err := hba.New(cfg)
		exitIf(err)
		sys = experiments.HBASystem(c)
		stats = func() { printHBAStats(c) }
	default:
		exitIf(fmt.Errorf("unknown scheme %q", *scheme))
	}

	fmt.Printf("scheme=%s trace=%s N=%d M=%d TIF=%d files=%d ops=%d mem=%dMB\n",
		sys.Name(), profile.Name, *n, *m, *tif, gen.InitialFileCount(), *ops, *memMB)

	start := time.Now()
	exitIf(experiments.PopulateFromGenerator(sys, gen))
	fmt.Printf("populated %d files in %v\n", gen.InitialFileCount(), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	points, err := experiments.Replay(context.Background(), sys, gen, *ops, *ops/10)
	exitIf(err)
	fmt.Printf("replayed %d ops in %v (wall)\n\n", *ops, time.Since(start).Round(time.Millisecond))
	for _, p := range points {
		fmt.Printf("  after %8d ops: mean latency %v\n", p.Ops, p.MeanLatency.Round(time.Microsecond))
	}
	fmt.Println()
	stats()
}

func printGHBAStats(c *core.Cluster) {
	t := c.Tally()
	fmt.Printf("levels: L1=%.1f%% L2=%.1f%% L3=%.1f%% L4=%.1f%%\n",
		100*t.Fraction(1), 100*t.Fraction(2), 100*t.Fraction(3), 100*t.Fraction(4))
	fmt.Printf("groups=%d messages=%v\n", c.NumGroups(), c.Messages().Snapshot())
	f := c.MeanFootprint()
	fmt.Printf("mean footprint/MDS: local=%dB replicas=%dB lru=%dB idbfa=%dB\n",
		f.LocalFilterBytes, f.ReplicaBytes, f.LRUBytes, f.IDBFABytes)
}

func printHBAStats(c *hba.Cluster) {
	t := c.Tally()
	fmt.Printf("levels: L1=%.1f%% L2=%.1f%% multicast=%.1f%%\n",
		100*t.Fraction(1), 100*t.Fraction(2), 100*t.Fraction(4))
	fmt.Printf("messages=%v\n", c.Messages().Snapshot())
	f := c.Footprint(0)
	fmt.Printf("footprint/MDS: local=%dB replicas=%dB lru=%dB\n",
		f.LocalFilterBytes, f.ReplicaBytes, f.LRUBytes)
}

func exitIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ghbasim:", err)
		os.Exit(1)
	}
}
