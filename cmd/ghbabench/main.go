// Command ghbabench regenerates the tables and figures of the paper's
// evaluation. Each -fig/-table selects one experiment; -all runs everything.
//
//	ghbabench -fig 6          # normalized throughput vs group size
//	ghbabench -fig 8 -ops 120000
//	ghbabench -table 5
//	ghbabench -all
//
// Output is the textual equivalent of the paper's chart: the same series,
// ready to diff against EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"ghba/internal/analysis"
	"ghba/internal/experiments"
	"ghba/internal/trace"
)

func main() {
	var (
		fig    = flag.Int("fig", 0, "figure number to regenerate (6–15)")
		table  = flag.Int("table", 0, "table number to regenerate (3, 4 or 5)")
		all    = flag.Bool("all", false, "regenerate every figure and table")
		ops    = flag.Int("ops", 0, "override the operation count (0 = driver default)")
		n      = flag.Int("n", 0, "override the MDS count where applicable (0 = default)")
		seed   = flag.Int64("seed", 1, "simulation seed")
		protoN = flag.Int("proto-n", 20, "prototype daemon count (figs 14–15)")
	)
	flag.Parse()

	if !*all && *fig == 0 && *table == 0 {
		flag.Usage()
		os.Exit(2)
	}
	run := func(figNo int) bool { return *all || *fig == figNo }
	runTable := func(tableNo int) bool { return *all || *table == tableNo }

	if runTable(3) || runTable(4) {
		out, err := experiments.Tables34(20_000, *seed)
		exitIf(err)
		fmt.Println(out)
	}
	if run(6) {
		for _, nn := range pick(*n, []int{30, 100}) {
			for _, p := range trace.Profiles() {
				cfg := experiments.DefaultFig6Config(p, nn)
				cfg.Seed = *seed
				if *ops > 0 {
					cfg.Ops = *ops
				}
				rows, err := experiments.Fig6(cfg)
				exitIf(err)
				fmt.Println(experiments.FormatFig6(p.Name, nn, rows))
			}
		}
	}
	if run(7) {
		for _, p := range trace.Profiles() {
			cfg := experiments.DefaultFig7Config(p)
			cfg.Seed = *seed
			if *ops > 0 {
				cfg.Ops = *ops
			}
			rows, err := experiments.Fig7(cfg)
			exitIf(err)
			fmt.Println(experiments.FormatFig7(p.Name, rows))
		}
	}
	for figNo := 8; figNo <= 10; figNo++ {
		if !run(figNo) {
			continue
		}
		cfg := experiments.DefaultLatencyFigConfig(figNo)
		cfg.Seed = *seed
		if *ops > 0 {
			cfg.Ops = *ops
			cfg.Interval = *ops / 6
		}
		if *n > 0 {
			cfg.N = *n
			cfg.M = analysis.PaperOptimalM(*n)
		}
		series, err := experiments.LatencyFig(cfg)
		exitIf(err)
		fmt.Println(experiments.FormatLatencyFig(cfg, series))
	}
	if run(11) {
		rows, err := experiments.Fig11([]int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}, *seed)
		exitIf(err)
		fmt.Println(experiments.FormatFig11(rows))
	}
	if run(12) {
		var rows []experiments.Fig12Row
		for _, nn := range pick(*n, []int{30, 100}) {
			for _, p := range trace.Profiles() {
				cfg := experiments.DefaultFig12Config(p, nn)
				cfg.Seed = *seed
				r, err := experiments.Fig12(cfg)
				exitIf(err)
				rows = append(rows, r...)
			}
		}
		fmt.Println(experiments.FormatFig12(rows))
	}
	if run(13) {
		cfg := experiments.DefaultFig13Config()
		cfg.Seed = *seed
		if *ops > 0 {
			cfg.Ops = *ops
		}
		rows, err := experiments.Fig13(cfg)
		exitIf(err)
		fmt.Println(experiments.FormatFig13(rows))
	}
	if run(14) {
		cfg := experiments.DefaultFig14Config()
		cfg.N = *protoN
		cfg.Seed = *seed
		if *ops > 0 {
			cfg.Ops = *ops
			cfg.Interval = *ops / 4
		}
		series, err := experiments.Fig14(cfg)
		exitIf(err)
		fmt.Println(experiments.FormatFig14(cfg, series))
	}
	if run(15) {
		m := 7
		rows, err := experiments.Fig15(*protoN, m, 10, *seed)
		exitIf(err)
		fmt.Println(experiments.FormatFig15(*protoN, m, rows))
	}
	if runTable(5) {
		rows, err := experiments.Table5([]int{20, 40, 60, 80, 100}, 2_000, *seed)
		exitIf(err)
		fmt.Println(experiments.FormatTable5(rows))
	}
}

// pick returns {override} when the override is set, otherwise the defaults.
func pick(override int, defaults []int) []int {
	if override > 0 {
		return []int{override}
	}
	return defaults
}

func exitIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ghbabench:", err)
		os.Exit(1)
	}
}
