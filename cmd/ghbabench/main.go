// Command ghbabench regenerates the tables and figures of the paper's
// evaluation. Each -fig/-table selects one experiment; -all runs everything.
//
//	ghbabench -fig 6          # normalized throughput vs group size
//	ghbabench -fig 8 -ops 120000
//	ghbabench -table 5
//	ghbabench -all
//
// Beyond the paper's figures, -throughput measures the concurrent lookup
// engine itself: it populates a cluster and hammers it with parallel lookup
// workers, reporting wall-clock lookups/sec.
//
//	ghbabench -throughput -workers 8 -lookups 200000 -n 30
//
// -replay measures the concurrent *mutation* pipeline: a mixed
// lookup:create:delete workload replays once through the serial engine and
// once through the parallel one, reporting both wall-clock throughputs and
// the speedup.
//
//	ghbabench -replay -mix 70:20:10 -workers 4 -ops 100000 -n 30
//	ghbabench -replay -backend tcp -ops 20000 -n 12   # same workload, real sockets
//
// -wire measures the wire protocol itself: the same mixed workload replays
// against three identically populated TCP clusters — the classic
// call-per-connection protocol, the multiplexed framed protocol dispatching
// per op, and the multiplexed protocol dispatching -rpcbatch-op vectors
// through the batch RPCs — and reports each phase's throughput, RPC count
// and RPCs/op alongside the speedups over classic.
//
//	ghbabench -wire -files 5000 -workers 4 -ops 20000
//	ghbabench -wire -files 5000 -workers 4 -rpcbatch 256
//
// -recovery measures the durability subsystem: time-to-recover for a
// crashed daemon as a function of its WAL length and snapshot cadence, and
// the lookup latency percentiles of a cluster that keeps serving while one
// daemon crash-restarts under load.
//
//	ghbabench -recovery
//	ghbabench -recovery -files 8000 -lookups 50000 -workers 4
//
// Output is the textual equivalent of the paper's chart: the same series,
// ready to diff against EXPERIMENTS.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ghba"
	"ghba/internal/analysis"
	"ghba/internal/experiments"
	"ghba/internal/trace"
)

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure number to regenerate (6–15)")
		table      = flag.Int("table", 0, "table number to regenerate (3, 4 or 5)")
		all        = flag.Bool("all", false, "regenerate every figure and table")
		ops        = flag.Int("ops", 0, "override the operation count (0 = driver default)")
		n          = flag.Int("n", 0, "override the MDS count where applicable (0 = default)")
		seed       = flag.Int64("seed", 1, "simulation seed")
		protoN     = flag.Int("proto-n", 20, "prototype daemon count (figs 14–15)")
		throughput = flag.Bool("throughput", false, "measure parallel lookup throughput instead of a figure")
		replay     = flag.Bool("replay", false, "measure mixed-workload replay throughput (serial vs parallel) instead of a figure")
		wire       = flag.Bool("wire", false, "measure wire-protocol replay throughput (classic vs mux vs mux+batch) instead of a figure")
		recovery   = flag.Bool("recovery", false, "measure WAL recovery time and lookup p99 during a daemon restart instead of a figure")
		walSync    = flag.String("wal-sync", "always", "WAL fsync policy for -recovery: always, interval or never")
		rpcBatch   = flag.Int("rpcbatch", 0, "ops per batch-RPC vector for -wire's batched phase (0 = default)")
		workers    = flag.Int("workers", 1, "worker goroutines for -throughput / -replay")
		blocked    = flag.Bool("blocked", false, "use cache-line-blocked Bloom filters for -throughput")
		lookups    = flag.Int("lookups", 100_000, "lookup count for -throughput")
		files      = flag.Int("files", 20_000, "namespace size for -throughput / -replay")
		mix        = flag.String("mix", "70:20:10", "lookup:create:delete ratio for -replay")
		shipBatch  = flag.Int("shipbatch", 64, "coalescing ship-queue drain batch for -replay (1 = ship at every threshold crossing)")
		jsonOut    = flag.String("json", "auto", `perf-trajectory JSON path; "auto" selects BENCH_lookup.json / BENCH_replay.json per mode, "none" disables`)
		backend    = flag.String("backend", "sim", "replay backend: sim (in-process engine) or tcp (loopback prototype daemons)")
	)
	flag.Parse()

	if *throughput {
		nn := *n
		if nn == 0 {
			nn = 30
		}
		exitIf(runThroughput(nn, *files, *lookups, *workers, *seed, *blocked, jsonPath(*jsonOut, "BENCH_lookup.json")))
		return
	}
	if *replay {
		nn := *n
		if nn == 0 {
			nn = 30
		}
		exitIf(runReplay(*backend, nn, *files, *ops, *workers, *shipBatch, *seed, *mix, jsonPath(*jsonOut, "BENCH_replay.json")))
		return
	}
	if *wire {
		exitIf(runWire(*n, *files, *ops, *workers, *shipBatch, *rpcBatch, *seed, *mix, jsonPath(*jsonOut, "BENCH_wire.json")))
		return
	}
	if *recovery {
		exitIf(runRecovery(*n, *files, *lookups, *workers, *seed, *walSync, jsonPath(*jsonOut, "BENCH_recovery.json")))
		return
	}

	if !*all && *fig == 0 && *table == 0 {
		flag.Usage()
		os.Exit(2)
	}
	run := func(figNo int) bool { return *all || *fig == figNo }
	runTable := func(tableNo int) bool { return *all || *table == tableNo }

	if runTable(3) || runTable(4) {
		out, err := experiments.Tables34(20_000, *seed)
		exitIf(err)
		fmt.Println(out)
	}
	if run(6) {
		for _, nn := range pick(*n, []int{30, 100}) {
			for _, p := range trace.Profiles() {
				cfg := experiments.DefaultFig6Config(p, nn)
				cfg.Seed = *seed
				if *ops > 0 {
					cfg.Ops = *ops
				}
				rows, err := experiments.Fig6(cfg)
				exitIf(err)
				fmt.Println(experiments.FormatFig6(p.Name, nn, rows))
			}
		}
	}
	if run(7) {
		for _, p := range trace.Profiles() {
			cfg := experiments.DefaultFig7Config(p)
			cfg.Seed = *seed
			if *ops > 0 {
				cfg.Ops = *ops
			}
			rows, err := experiments.Fig7(cfg)
			exitIf(err)
			fmt.Println(experiments.FormatFig7(p.Name, rows))
		}
	}
	for figNo := 8; figNo <= 10; figNo++ {
		if !run(figNo) {
			continue
		}
		cfg := experiments.DefaultLatencyFigConfig(figNo)
		cfg.Seed = *seed
		if *ops > 0 {
			cfg.Ops = *ops
			cfg.Interval = *ops / 6
		}
		if *n > 0 {
			cfg.N = *n
			cfg.M = analysis.PaperOptimalM(*n)
		}
		series, err := experiments.LatencyFig(cfg)
		exitIf(err)
		fmt.Println(experiments.FormatLatencyFig(cfg, series))
	}
	if run(11) {
		rows, err := experiments.Fig11([]int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}, *seed)
		exitIf(err)
		fmt.Println(experiments.FormatFig11(rows))
	}
	if run(12) {
		var rows []experiments.Fig12Row
		for _, nn := range pick(*n, []int{30, 100}) {
			for _, p := range trace.Profiles() {
				cfg := experiments.DefaultFig12Config(p, nn)
				cfg.Seed = *seed
				r, err := experiments.Fig12(cfg)
				exitIf(err)
				rows = append(rows, r...)
			}
		}
		fmt.Println(experiments.FormatFig12(rows))
	}
	if run(13) {
		cfg := experiments.DefaultFig13Config()
		cfg.Seed = *seed
		if *ops > 0 {
			cfg.Ops = *ops
		}
		rows, err := experiments.Fig13(cfg)
		exitIf(err)
		fmt.Println(experiments.FormatFig13(rows))
	}
	if run(14) {
		cfg := experiments.DefaultFig14Config()
		cfg.N = *protoN
		cfg.Seed = *seed
		if *ops > 0 {
			cfg.Ops = *ops
			cfg.Interval = *ops / 4
		}
		series, err := experiments.Fig14(cfg)
		exitIf(err)
		fmt.Println(experiments.FormatFig14(cfg, series))
	}
	if run(15) {
		m := 7
		rows, err := experiments.Fig15(*protoN, m, 10, *seed)
		exitIf(err)
		fmt.Println(experiments.FormatFig15(*protoN, m, rows))
	}
	if runTable(5) {
		rows, err := experiments.Table5([]int{20, 40, 60, 80, 100}, 2_000, *seed)
		exitIf(err)
		fmt.Println(experiments.FormatTable5(rows))
	}
}

// benchRecord is the perf-trajectory datum -throughput emits: one point of
// (configuration, lookups/sec, ns/op, allocs/op) comparable across PRs.
// CPUs records the machine's parallelism so numbers measured on differently
// sized runners are not compared as like for like.
type benchRecord struct {
	Bench         string  `json:"bench"`
	NumMDS        int     `json:"num_mds"`
	Files         int     `json:"files"`
	Lookups       int     `json:"lookups"`
	Workers       int     `json:"workers"`
	Seed          int64   `json:"seed"`
	Layout        string  `json:"layout"`
	CPUs          int     `json:"cpus"`
	LookupsPerSec float64 `json:"lookups_per_sec"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	L1Share       float64 `json:"l1_share"`
	L2Share       float64 `json:"l2_share"`
	L3Share       float64 `json:"l3_share"`
	L4Share       float64 `json:"l4_share"`
}

// runThroughput populates a cluster with files files and resolves lookups
// paths across the given worker count, reporting wall-clock lookups/sec and
// the per-level hit distribution. The path sequence cycles through the
// namespace so the L1 array sees the temporal locality the scheme exploits.
// When jsonOut is non-empty the headline numbers are also written there as
// the perf-trajectory record.
func runThroughput(n, files, lookups, workers int, seed int64, blocked bool, jsonOut string) error {
	sim, err := ghba.New(ghba.Config{
		NumMDS:              n,
		ExpectedFilesPerMDS: uint64(files/n + 1),
		Seed:                seed,
		BlockedFilters:      blocked,
	})
	if err != nil {
		return err
	}
	paths := make([]string, files)
	for i := range paths {
		paths[i] = fmt.Sprintf("/bench/dir%d/file%d", i%97, i)
	}
	if err := sim.CreateAll(context.Background(), paths); err != nil {
		return err
	}

	batch := make([]string, lookups)
	for i := range batch {
		batch[i] = paths[i%len(paths)]
	}

	// Warm the scratch pools and L1 before measuring, then bracket the
	// measured run with allocation and level-tally counters so the record
	// carries the allocs/op and per-level shares of the measured lookups
	// only — not warmup or population noise.
	if _, err := ghba.LookupParallel(context.Background(), sim, batch[:min(len(batch), 4_096)], workers); err != nil {
		return err
	}
	levelsBefore := sim.LevelCounts()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	results, err := ghba.LookupParallel(context.Background(), sim, batch, workers)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	levelsAfter := sim.LevelCounts()

	found := 0
	for _, r := range results {
		if r.Found {
			found++
		}
	}
	var frac [5]float64
	for l := 1; l <= 4; l++ {
		frac[l] = float64(levelsAfter[l]-levelsBefore[l]) / float64(len(results))
	}
	fmt.Printf("Parallel lookup throughput — N=%d M(auto) files=%d seed=%d\n",
		n, files, seed)
	fmt.Printf("  workers        %d\n", workers)
	fmt.Printf("  lookups        %d (%d found)\n", len(results), found)
	fmt.Printf("  wall time      %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput     %.0f lookups/sec\n",
		float64(len(results))/elapsed.Seconds())
	fmt.Printf("  sim latency    %v mean\n", sim.MeanLatency().Round(time.Microsecond))
	fmt.Printf("  level shares   L1=%.3f L2=%.3f L3=%.3f L4=%.3f\n",
		frac[1], frac[2], frac[3], frac[4])

	ops := float64(len(results))
	rec := benchRecord{
		Bench:         "ghbabench-throughput",
		NumMDS:        n,
		Files:         files,
		Lookups:       lookups,
		Workers:       workers,
		Seed:          seed,
		Layout:        layoutName(blocked),
		CPUs:          runtime.NumCPU(),
		LookupsPerSec: ops / elapsed.Seconds(),
		NsPerOp:       float64(elapsed.Nanoseconds()) / ops,
		AllocsPerOp:   float64(after.Mallocs-before.Mallocs) / ops,
		BytesPerOp:    float64(after.TotalAlloc-before.TotalAlloc) / ops,
		L1Share:       frac[1],
		L2Share:       frac[2],
		L3Share:       frac[3],
		L4Share:       frac[4],
	}
	fmt.Printf("  allocs/op      %.3f (%.1f B/op)\n", rec.AllocsPerOp, rec.BytesPerOp)
	if jsonOut == "" {
		return nil
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", jsonOut, err)
	}
	fmt.Printf("  perf record    %s\n", jsonOut)
	return nil
}

// jsonPath resolves the -json flag for one bench mode.
// layoutName names the filter bit layout for the perf record, so blocked and
// classic trajectories are never compared as like for like.
func layoutName(blocked bool) string {
	if blocked {
		return "blocked"
	}
	return "classic"
}

func jsonPath(flagValue, modeDefault string) string {
	switch flagValue {
	case "auto":
		return modeDefault
	case "none", "":
		return ""
	default:
		return flagValue
	}
}

// replayRecord is the perf-trajectory datum -replay emits: serial and
// parallel wall-clock throughput over the same mixed workload, comparable
// across PRs. CPUs records the machine's parallelism so a speedup measured
// on a single-core runner is not misread as a regression.
type replayRecord struct {
	Bench             string  `json:"bench"`
	Backend           string  `json:"backend"`
	NumMDS            int     `json:"num_mds"`
	Files             int     `json:"files"`
	Ops               int     `json:"ops"`
	Workers           int     `json:"workers"`
	Mix               string  `json:"mix"`
	ShipBatch         int     `json:"ship_batch"`
	Seed              int64   `json:"seed"`
	CPUs              int     `json:"cpus"`
	SerialOpsPerSec   float64 `json:"serial_ops_per_sec"`
	ParallelOpsPerSec float64 `json:"parallel_ops_per_sec"`
	Speedup           float64 `json:"speedup"`
	// SerialSimMeanNs is the serial run's simulated mean lookup latency
	// (queue inclusive); the multi-worker run's is not At-ordered and is
	// deliberately omitted.
	SerialSimMeanNs   float64 `json:"serial_sim_mean_ns"`
	Lookups           int     `json:"lookups"`
	Creates           int     `json:"creates"`
	Deletes           int     `json:"deletes"`
	ReplicaUpdateMsgs uint64  `json:"replica_update_msgs"`
	L1Share           float64 `json:"l1_share"`
	L2Share           float64 `json:"l2_share"`
	L3Share           float64 `json:"l3_share"`
	L4Share           float64 `json:"l4_share"`
}

// runReplay drives experiments.ReplayBench and reports serial-versus-
// parallel replay throughput for a mixed workload.
func runReplay(backend string, n, files, ops, workers, shipBatch int, seed int64, mix, jsonOut string) error {
	var l, c, d float64
	if _, err := fmt.Sscanf(mix, "%f:%f:%f", &l, &c, &d); err != nil {
		return fmt.Errorf("parsing -mix %q (want lookup:create:delete, e.g. 70:20:10): %w", mix, err)
	}
	cfg := experiments.DefaultReplayBenchConfig()
	cfg.Backend = backend
	cfg.N = n
	cfg.Files = uint64(files)
	if ops > 0 {
		cfg.Ops = ops
	}
	cfg.Workers = workers
	cfg.Mix = [3]float64{l, c, d}
	cfg.ShipBatch = shipBatch
	cfg.Seed = seed

	res, err := experiments.ReplayBench(cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatReplayBench(res))
	if jsonOut == "" {
		return nil
	}
	rec := replayRecord{
		Bench:             "ghbabench-replay",
		Backend:           backend,
		NumMDS:            cfg.N,
		Files:             files,
		Ops:               cfg.Ops,
		Workers:           cfg.Workers,
		Mix:               mix,
		ShipBatch:         cfg.ShipBatch,
		Seed:              seed,
		CPUs:              runtime.NumCPU(),
		SerialOpsPerSec:   res.Serial.OpsPerSec,
		ParallelOpsPerSec: res.Parallel.OpsPerSec,
		Speedup:           res.Speedup,
		SerialSimMeanNs:   float64(res.Serial.MeanLookupLatency.Nanoseconds()),
		Lookups:           res.Parallel.Lookups,
		Creates:           res.Parallel.Creates,
		Deletes:           res.Parallel.Deletes,
		ReplicaUpdateMsgs: res.ReplicaUpdates,
		L1Share:           res.LevelShares[1],
		L2Share:           res.LevelShares[2],
		L3Share:           res.LevelShares[3],
		L4Share:           res.LevelShares[4],
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", jsonOut, err)
	}
	fmt.Printf("  perf record    %s\n", jsonOut)
	return nil
}

// wirePhaseRecord is one protocol configuration inside a wireRecord.
type wirePhaseRecord struct {
	Name      string            `json:"name"`
	Transport string            `json:"transport"`
	RPCBatch  int               `json:"rpc_batch"`
	OpsPerSec float64           `json:"ops_per_sec"`
	RPCs      uint64            `json:"rpcs"`
	RPCsPerOp float64           `json:"rpcs_per_op"`
	Speedup   float64           `json:"speedup"`
	ByOpcode  map[string]uint64 `json:"by_opcode"`
}

// wireRecord is the perf-trajectory datum -wire emits: the same mixed
// workload replayed over the classic call-per-connection protocol, the
// multiplexed protocol per-op, and the multiplexed protocol through the
// batch RPCs, with per-opcode RPC counts for each phase.
type wireRecord struct {
	Bench            string            `json:"bench"`
	NumMDS           int               `json:"num_mds"`
	GroupSize        int               `json:"group_size"`
	Files            int               `json:"files"`
	Ops              int               `json:"ops"`
	Workers          int               `json:"workers"`
	Mix              string            `json:"mix"`
	ShipBatch        int               `json:"ship_batch"`
	RPCBatch         int               `json:"rpc_batch"`
	Seed             int64             `json:"seed"`
	CPUs             int               `json:"cpus"`
	ClassicOpsPerSec float64           `json:"classic_ops_per_sec"`
	MuxOpsPerSec     float64           `json:"mux_ops_per_sec"`
	BatchedOpsPerSec float64           `json:"batched_ops_per_sec"`
	MuxSpeedup       float64           `json:"mux_speedup"`
	BatchedSpeedup   float64           `json:"batched_speedup"`
	ClassicRPCsPerOp float64           `json:"classic_rpcs_per_op"`
	BatchedRPCsPerOp float64           `json:"batched_rpcs_per_op"`
	RPCReduction     float64           `json:"rpc_reduction"`
	Phases           []wirePhaseRecord `json:"phases"`
}

// runWire drives experiments.WireBench: classic versus mux versus
// mux+batch over one mixed workload, real sockets in every phase.
func runWire(n, files, ops, workers, shipBatch, rpcBatch int, seed int64, mix, jsonOut string) error {
	var l, c, d float64
	if _, err := fmt.Sscanf(mix, "%f:%f:%f", &l, &c, &d); err != nil {
		return fmt.Errorf("parsing -mix %q (want lookup:create:delete, e.g. 70:20:10): %w", mix, err)
	}
	cfg := experiments.DefaultWireBenchConfig()
	if n > 0 {
		cfg.N = n
		cfg.M = analysis.PaperOptimalM(n)
	}
	cfg.Files = uint64(files)
	if ops > 0 {
		cfg.Ops = ops
	}
	cfg.Workers = workers
	cfg.Mix = [3]float64{l, c, d}
	cfg.ShipBatch = shipBatch
	if rpcBatch > 0 {
		cfg.RPCBatch = rpcBatch
	}
	cfg.Seed = seed

	res, err := experiments.WireBench(cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatWireBench(res))
	if jsonOut == "" {
		return nil
	}
	rec := wireRecord{
		Bench:            "ghbabench-wire",
		NumMDS:           res.Config.N,
		GroupSize:        res.Config.M,
		Files:            files,
		Ops:              res.Config.Ops,
		Workers:          res.Config.Workers,
		Mix:              mix,
		ShipBatch:        res.Config.ShipBatch,
		RPCBatch:         res.Config.RPCBatch,
		Seed:             seed,
		CPUs:             runtime.NumCPU(),
		ClassicOpsPerSec: res.Phases[0].Stats.OpsPerSec,
		MuxOpsPerSec:     res.Phases[1].Stats.OpsPerSec,
		BatchedOpsPerSec: res.Phases[2].Stats.OpsPerSec,
		MuxSpeedup:       res.MuxSpeedup,
		BatchedSpeedup:   res.BatchedSpeedup,
		ClassicRPCsPerOp: res.Phases[0].RPCsPerOp,
		BatchedRPCsPerOp: res.Phases[2].RPCsPerOp,
		RPCReduction:     res.RPCReduction,
	}
	for _, p := range res.Phases {
		rec.Phases = append(rec.Phases, wirePhaseRecord{
			Name:      p.Name,
			Transport: p.Transport,
			RPCBatch:  p.RPCBatch,
			OpsPerSec: p.Stats.OpsPerSec,
			RPCs:      p.RPCs,
			RPCsPerOp: p.RPCsPerOp,
			Speedup:   p.Speedup,
			ByOpcode:  p.ByOpcode,
		})
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", jsonOut, err)
	}
	fmt.Printf("  perf record    %s\n", jsonOut)
	return nil
}

// recoveryPointRecord is one (log length, snapshot cadence) → recovery time
// measurement inside a recoveryRecord.
type recoveryPointRecord struct {
	LogRecords    int     `json:"log_records"`
	SnapshotEvery int     `json:"snapshot_every"`
	Replayed      int     `json:"replayed"`
	Files         int     `json:"files"`
	RecoveryNs    float64 `json:"recovery_ns"`
}

// recoveryRecord is the perf-trajectory datum -recovery emits: the
// recovery-time series plus the lookup percentiles of a cluster serving
// through one daemon's crash-restart.
type recoveryRecord struct {
	Bench             string                `json:"bench"`
	NumMDS            int                   `json:"num_mds"`
	Files             int                   `json:"files"`
	Lookups           int                   `json:"lookups"`
	Workers           int                   `json:"workers"`
	WALSync           string                `json:"wal_sync"`
	Seed              int64                 `json:"seed"`
	CPUs              int                   `json:"cpus"`
	Points            []recoveryPointRecord `json:"points"`
	SteadyP50Ns       float64               `json:"steady_p50_ns"`
	SteadyP99Ns       float64               `json:"steady_p99_ns"`
	RestartP99Ns      float64               `json:"restart_p99_ns"`
	RestartWindowNs   float64               `json:"restart_window_ns"`
	RestartRecoveryNs float64               `json:"restart_recovery_ns"`
	LookupErrors      int                   `json:"lookup_errors"`
}

// runRecovery drives experiments.RecoveryBench and reports recovery time
// versus log length and snapshot cadence, plus restart-window lookup p99.
func runRecovery(n, files, lookups, workers int, seed int64, walSync, jsonOut string) error {
	cfg := experiments.DefaultRecoveryBenchConfig()
	if n > 0 {
		cfg.N = n
		cfg.M = analysis.PaperOptimalM(n)
	}
	if files > 0 {
		cfg.Files = files
	}
	if lookups > 0 {
		cfg.Lookups = lookups
	}
	if workers > 0 {
		cfg.Workers = workers
	}
	cfg.WALSync = walSync
	cfg.Seed = seed

	res, err := experiments.RecoveryBench(cfg)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatRecoveryBench(res))
	if jsonOut == "" {
		return nil
	}
	rec := recoveryRecord{
		Bench:             "ghbabench-recovery",
		NumMDS:            cfg.N,
		Files:             cfg.Files,
		Lookups:           res.Lookups,
		Workers:           cfg.Workers,
		WALSync:           walSync,
		Seed:              seed,
		CPUs:              runtime.NumCPU(),
		SteadyP50Ns:       float64(res.SteadyP50.Nanoseconds()),
		SteadyP99Ns:       float64(res.SteadyP99.Nanoseconds()),
		RestartP99Ns:      float64(res.RestartP99.Nanoseconds()),
		RestartWindowNs:   float64(res.RestartWindow.Nanoseconds()),
		RestartRecoveryNs: float64(res.RestartRecovery.Nanoseconds()),
		LookupErrors:      res.LookupErrors,
	}
	for _, p := range res.Points {
		rec.Points = append(rec.Points, recoveryPointRecord{
			LogRecords:    p.LogRecords,
			SnapshotEvery: p.SnapshotEvery,
			Replayed:      p.Replayed,
			Files:         p.Files,
			RecoveryNs:    float64(p.Recovery.Nanoseconds()),
		})
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", jsonOut, err)
	}
	fmt.Printf("  perf record    %s\n", jsonOut)
	return nil
}

// pick returns {override} when the override is set, otherwise the defaults.
func pick(override int, defaults []int) []int {
	if override > 0 {
		return []int{override}
	}
	return defaults
}

func exitIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ghbabench:", err)
		os.Exit(1)
	}
}
