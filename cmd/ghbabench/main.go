// Command ghbabench regenerates the tables and figures of the paper's
// evaluation. Each -fig/-table selects one experiment; -all runs everything.
//
//	ghbabench -fig 6          # normalized throughput vs group size
//	ghbabench -fig 8 -ops 120000
//	ghbabench -table 5
//	ghbabench -all
//
// Beyond the paper's figures, -throughput measures the concurrent lookup
// engine itself: it populates a cluster and hammers it with parallel lookup
// workers, reporting wall-clock lookups/sec.
//
//	ghbabench -throughput -workers 8 -lookups 200000 -n 30
//
// Output is the textual equivalent of the paper's chart: the same series,
// ready to diff against EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ghba"
	"ghba/internal/analysis"
	"ghba/internal/experiments"
	"ghba/internal/trace"
)

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure number to regenerate (6–15)")
		table      = flag.Int("table", 0, "table number to regenerate (3, 4 or 5)")
		all        = flag.Bool("all", false, "regenerate every figure and table")
		ops        = flag.Int("ops", 0, "override the operation count (0 = driver default)")
		n          = flag.Int("n", 0, "override the MDS count where applicable (0 = default)")
		seed       = flag.Int64("seed", 1, "simulation seed")
		protoN     = flag.Int("proto-n", 20, "prototype daemon count (figs 14–15)")
		throughput = flag.Bool("throughput", false, "measure parallel lookup throughput instead of a figure")
		workers    = flag.Int("workers", 1, "lookup worker goroutines for -throughput")
		lookups    = flag.Int("lookups", 100_000, "lookup count for -throughput")
		files      = flag.Int("files", 20_000, "namespace size for -throughput")
		jsonOut    = flag.String("json", "BENCH_lookup.json", "perf-trajectory JSON written by -throughput (empty disables)")
	)
	flag.Parse()

	if *throughput {
		nn := *n
		if nn == 0 {
			nn = 30
		}
		exitIf(runThroughput(nn, *files, *lookups, *workers, *seed, *jsonOut))
		return
	}

	if !*all && *fig == 0 && *table == 0 {
		flag.Usage()
		os.Exit(2)
	}
	run := func(figNo int) bool { return *all || *fig == figNo }
	runTable := func(tableNo int) bool { return *all || *table == tableNo }

	if runTable(3) || runTable(4) {
		out, err := experiments.Tables34(20_000, *seed)
		exitIf(err)
		fmt.Println(out)
	}
	if run(6) {
		for _, nn := range pick(*n, []int{30, 100}) {
			for _, p := range trace.Profiles() {
				cfg := experiments.DefaultFig6Config(p, nn)
				cfg.Seed = *seed
				if *ops > 0 {
					cfg.Ops = *ops
				}
				rows, err := experiments.Fig6(cfg)
				exitIf(err)
				fmt.Println(experiments.FormatFig6(p.Name, nn, rows))
			}
		}
	}
	if run(7) {
		for _, p := range trace.Profiles() {
			cfg := experiments.DefaultFig7Config(p)
			cfg.Seed = *seed
			if *ops > 0 {
				cfg.Ops = *ops
			}
			rows, err := experiments.Fig7(cfg)
			exitIf(err)
			fmt.Println(experiments.FormatFig7(p.Name, rows))
		}
	}
	for figNo := 8; figNo <= 10; figNo++ {
		if !run(figNo) {
			continue
		}
		cfg := experiments.DefaultLatencyFigConfig(figNo)
		cfg.Seed = *seed
		if *ops > 0 {
			cfg.Ops = *ops
			cfg.Interval = *ops / 6
		}
		if *n > 0 {
			cfg.N = *n
			cfg.M = analysis.PaperOptimalM(*n)
		}
		series, err := experiments.LatencyFig(cfg)
		exitIf(err)
		fmt.Println(experiments.FormatLatencyFig(cfg, series))
	}
	if run(11) {
		rows, err := experiments.Fig11([]int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}, *seed)
		exitIf(err)
		fmt.Println(experiments.FormatFig11(rows))
	}
	if run(12) {
		var rows []experiments.Fig12Row
		for _, nn := range pick(*n, []int{30, 100}) {
			for _, p := range trace.Profiles() {
				cfg := experiments.DefaultFig12Config(p, nn)
				cfg.Seed = *seed
				r, err := experiments.Fig12(cfg)
				exitIf(err)
				rows = append(rows, r...)
			}
		}
		fmt.Println(experiments.FormatFig12(rows))
	}
	if run(13) {
		cfg := experiments.DefaultFig13Config()
		cfg.Seed = *seed
		if *ops > 0 {
			cfg.Ops = *ops
		}
		rows, err := experiments.Fig13(cfg)
		exitIf(err)
		fmt.Println(experiments.FormatFig13(rows))
	}
	if run(14) {
		cfg := experiments.DefaultFig14Config()
		cfg.N = *protoN
		cfg.Seed = *seed
		if *ops > 0 {
			cfg.Ops = *ops
			cfg.Interval = *ops / 4
		}
		series, err := experiments.Fig14(cfg)
		exitIf(err)
		fmt.Println(experiments.FormatFig14(cfg, series))
	}
	if run(15) {
		m := 7
		rows, err := experiments.Fig15(*protoN, m, 10, *seed)
		exitIf(err)
		fmt.Println(experiments.FormatFig15(*protoN, m, rows))
	}
	if runTable(5) {
		rows, err := experiments.Table5([]int{20, 40, 60, 80, 100}, 2_000, *seed)
		exitIf(err)
		fmt.Println(experiments.FormatTable5(rows))
	}
}

// benchRecord is the perf-trajectory datum -throughput emits: one point of
// (configuration, lookups/sec, ns/op, allocs/op) comparable across PRs.
type benchRecord struct {
	Bench         string  `json:"bench"`
	NumMDS        int     `json:"num_mds"`
	Files         int     `json:"files"`
	Lookups       int     `json:"lookups"`
	Workers       int     `json:"workers"`
	Seed          int64   `json:"seed"`
	LookupsPerSec float64 `json:"lookups_per_sec"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	L1Share       float64 `json:"l1_share"`
	L2Share       float64 `json:"l2_share"`
	L3Share       float64 `json:"l3_share"`
	L4Share       float64 `json:"l4_share"`
}

// runThroughput populates a cluster with files files and resolves lookups
// paths across the given worker count, reporting wall-clock lookups/sec and
// the per-level hit distribution. The path sequence cycles through the
// namespace so the L1 array sees the temporal locality the scheme exploits.
// When jsonOut is non-empty the headline numbers are also written there as
// the perf-trajectory record.
func runThroughput(n, files, lookups, workers int, seed int64, jsonOut string) error {
	sim, err := ghba.New(ghba.Config{
		NumMDS:              n,
		ExpectedFilesPerMDS: uint64(files/n + 1),
		Seed:                seed,
	})
	if err != nil {
		return err
	}
	paths := make([]string, files)
	for i := range paths {
		paths[i] = fmt.Sprintf("/bench/dir%d/file%d", i%97, i)
	}
	sim.CreateAll(paths)

	batch := make([]string, lookups)
	for i := range batch {
		batch[i] = paths[i%len(paths)]
	}

	// Warm the scratch pools and L1 before measuring, then bracket the
	// measured run with allocation and level-tally counters so the record
	// carries the allocs/op and per-level shares of the measured lookups
	// only — not warmup or population noise.
	sim.LookupParallel(batch[:min(len(batch), 4_096)], workers)
	levelsBefore := sim.LevelCounts()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	results := sim.LookupParallel(batch, workers)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	levelsAfter := sim.LevelCounts()

	found := 0
	for _, r := range results {
		if r.Found {
			found++
		}
	}
	var frac [5]float64
	for l := 1; l <= 4; l++ {
		frac[l] = float64(levelsAfter[l]-levelsBefore[l]) / float64(len(results))
	}
	fmt.Printf("Parallel lookup throughput — N=%d M(auto) files=%d seed=%d\n",
		n, files, seed)
	fmt.Printf("  workers        %d\n", workers)
	fmt.Printf("  lookups        %d (%d found)\n", len(results), found)
	fmt.Printf("  wall time      %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput     %.0f lookups/sec\n",
		float64(len(results))/elapsed.Seconds())
	fmt.Printf("  sim latency    %v mean\n", sim.MeanLatency().Round(time.Microsecond))
	fmt.Printf("  level shares   L1=%.3f L2=%.3f L3=%.3f L4=%.3f\n",
		frac[1], frac[2], frac[3], frac[4])

	ops := float64(len(results))
	rec := benchRecord{
		Bench:         "ghbabench-throughput",
		NumMDS:        n,
		Files:         files,
		Lookups:       lookups,
		Workers:       workers,
		Seed:          seed,
		LookupsPerSec: ops / elapsed.Seconds(),
		NsPerOp:       float64(elapsed.Nanoseconds()) / ops,
		AllocsPerOp:   float64(after.Mallocs-before.Mallocs) / ops,
		BytesPerOp:    float64(after.TotalAlloc-before.TotalAlloc) / ops,
		L1Share:       frac[1],
		L2Share:       frac[2],
		L3Share:       frac[3],
		L4Share:       frac[4],
	}
	fmt.Printf("  allocs/op      %.3f (%.1f B/op)\n", rec.AllocsPerOp, rec.BytesPerOp)
	if jsonOut == "" {
		return nil
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", jsonOut, err)
	}
	fmt.Printf("  perf record    %s\n", jsonOut)
	return nil
}

// pick returns {override} when the override is set, otherwise the defaults.
func pick(override int, defaults []int) []int {
	if override > 0 {
		return []int{override}
	}
	return defaults
}

func exitIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ghbabench:", err)
		os.Exit(1)
	}
}
