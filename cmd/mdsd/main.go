// Command mdsd runs one prototype metadata-server daemon: an MDS node
// behind the rpcnet TCP protocol, the building block of the Section 5
// prototype. Point ghbactl at its address to issue queries.
//
// One listener serves both wire protocols: connections opening with the
// "GMX1" magic speak the multiplexed framed protocol (request-ID-tagged
// frames pipelined over one socket, batch RPC opcodes included); all other
// connections speak the classic one-call-at-a-time protocol, so old clients
// keep working unchanged.
//
// With -data the daemon is durable: mutations are write-ahead logged to the
// given directory and compacted into snapshots, and startup recovers
// whatever state a previous run — cleanly stopped or killed outright — left
// there. A corrupt log (interior damage, missing segments) refuses to start
// and exits non-zero rather than serving silently incomplete metadata; a
// torn tail from a mid-write crash is truncated and reported. Without
// -data the daemon is memory-only, as before.
//
// On SIGINT/SIGTERM the daemon drains: the listener closes, in-flight
// requests finish (bounded by -drain-timeout), a final snapshot compacts
// the WAL, and only then does the process exit.
//
//	mdsd -id 0 -listen 127.0.0.1:7000
//	mdsd -id 1 -listen 127.0.0.1:7001 -files 100000 -bits 16
//	mdsd -id 2 -listen 127.0.0.1:7002 -data /var/lib/mdsd/2 -wal-sync interval
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ghba/internal/mds"
	"ghba/internal/proto"
	"ghba/internal/wal"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		id       = flag.Int("id", 0, "MDS identifier")
		listen   = flag.String("listen", "127.0.0.1:0", "listen address")
		files    = flag.Uint64("files", 50_000, "expected files homed at this MDS")
		bits     = flag.Float64("bits", 16, "Bloom filter bits per file")
		resident = flag.Int("resident", 0, "replicas fitting in RAM (0 = unlimited)")
		penalty  = flag.Duration("disk-penalty", 0, "emulated disk cost for spilled replica arrays")

		dataDir   = flag.String("data", "", "durability directory (WAL + snapshots); empty = memory-only")
		walSync   = flag.String("wal-sync", "always", "WAL fsync policy: always, interval or never")
		walEvery  = flag.Duration("wal-sync-interval", 0, "data-loss bound under -wal-sync interval (0 = 100ms)")
		snapEvery = flag.Int("snapshot-every", 0, "WAL records between snapshot compactions (0 = 4096, <0 disables)")
		drain     = flag.Duration("drain-timeout", 5*time.Second, "max wait for in-flight requests on shutdown")
	)
	flag.Parse()

	cfg := mds.Config{
		ExpectedFiles:  *files,
		BitsPerFile:    *bits,
		LRUCapacity:    *files / 16,
		LRUBitsPerFile: *bits,
	}
	opts := proto.NodeServerOptions{
		ResidentReplicaLimit: *resident,
		DiskPenalty:          *penalty,
		SnapshotEvery:        *snapEvery,
	}

	var node *mds.Node
	if *dataDir == "" {
		var err error
		node, err = mds.NewNode(*id, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdsd:", err)
			return 1
		}
	} else {
		pol, err := wal.ParseSyncPolicy(*walSync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdsd:", err)
			return 2
		}
		var (
			log  *wal.Log
			info mds.RecoveryInfo
		)
		node, log, info, err = mds.Recover(*id, cfg, *dataDir, wal.Options{Sync: pol, SyncEvery: *walEvery})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdsd: recovery from %s failed: %v\n", *dataDir, err)
			return 1
		}
		opts.WAL = log
		fmt.Printf("mdsd: recovered %d files from %s (snapshot seq %d, %d records replayed",
			info.Files, *dataDir, info.SnapshotSeq, info.Replayed)
		if info.Torn {
			fmt.Print(", torn tail truncated")
		}
		fmt.Println(")")
	}

	srv, err := proto.StartNode(node, *listen, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdsd:", err)
		return 1
	}
	fmt.Printf("mdsd: MDS %d serving on %s (files=%d, bits/file=%.0f)\n",
		*id, srv.Addr(), *files, *bits)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	<-stop
	fmt.Println("mdsd: draining")
	// Drain for real: refuse new connections, wait for in-flight requests
	// (bounded), snapshot and close the WAL. A timeout means requests were
	// still running when the bound hit — report it and exit non-zero so
	// orchestration can tell a clean stop from a forced one.
	if err := srv.Shutdown(*drain); err != nil {
		fmt.Fprintln(os.Stderr, "mdsd: shutdown:", err)
		return 1
	}
	fmt.Println("mdsd: stopped")
	return 0
}
