// Command mdsd runs one prototype metadata-server daemon: an MDS node
// behind the rpcnet TCP protocol, the building block of the Section 5
// prototype. Point ghbactl at its address to issue queries.
//
// One listener serves both wire protocols: connections opening with the
// "GMX1" magic speak the multiplexed framed protocol (request-ID-tagged
// frames pipelined over one socket, batch RPC opcodes included); all other
// connections speak the classic one-call-at-a-time protocol, so old clients
// keep working unchanged.
//
//	mdsd -id 0 -listen 127.0.0.1:7000
//	mdsd -id 1 -listen 127.0.0.1:7001 -files 100000 -bits 16
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ghba/internal/mds"
	"ghba/internal/proto"
)

func main() {
	var (
		id       = flag.Int("id", 0, "MDS identifier")
		listen   = flag.String("listen", "127.0.0.1:0", "listen address")
		files    = flag.Uint64("files", 50_000, "expected files homed at this MDS")
		bits     = flag.Float64("bits", 16, "Bloom filter bits per file")
		resident = flag.Int("resident", 0, "replicas fitting in RAM (0 = unlimited)")
		penalty  = flag.Duration("disk-penalty", 0, "emulated disk cost for spilled replica arrays")
	)
	flag.Parse()

	node, err := mds.NewNode(*id, mds.Config{
		ExpectedFiles:  *files,
		BitsPerFile:    *bits,
		LRUCapacity:    *files / 16,
		LRUBitsPerFile: *bits,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdsd:", err)
		os.Exit(1)
	}
	srv, err := proto.StartNode(node, *listen, proto.NodeServerOptions{
		ResidentReplicaLimit: *resident,
		DiskPenalty:          *penalty,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdsd:", err)
		os.Exit(1)
	}
	fmt.Printf("mdsd: MDS %d serving on %s (files=%d, bits/file=%.0f)\n",
		*id, srv.Addr(), *files, *bits)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	<-stop
	fmt.Println("mdsd: shutting down")
	srv.Close()
	// Give in-flight connections a beat to drain before exit.
	time.Sleep(50 * time.Millisecond)
}
