package main_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The dispatch rule in main is load-bearing: anything flag-shaped must route
// to unitchecker (go vet's protocol), while leading driver subcommands are
// intercepted first. Getting it wrong either breaks `go vet -vettool=` or
// makes the binary fork go vet forever. These tests pin the routing by
// exercising the built binary the way each caller does.

var toolBinary string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ghbavet-test-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	toolBinary = filepath.Join(dir, "ghbavet")
	if out, err := exec.Command("go", "build", "-o", toolBinary, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building ghbavet: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// TestListShowsRoster checks that -list names every analyzer in the suite.
func TestListShowsRoster(t *testing.T) {
	out, err := exec.Command(toolBinary, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("-list failed: %v\n%s", err, out)
	}
	for _, name := range []string{
		"lockcheck", "detrand", "ctxflow", "wireguard",
		"lockorder", "snapcheck", "hotalloc",
	} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}

// TestChecksRejectsUnknown checks that a typo in -checks fails fast with a
// diagnostic instead of silently running nothing (or everything).
func TestChecksRejectsUnknown(t *testing.T) {
	cmd := exec.Command(toolBinary, "-checks", "bogus,lockcheck", "./...")
	out, err := cmd.CombinedOutput()
	exit, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("-checks bogus: want nonzero exit, got err=%v\n%s", err, out)
	}
	if exit.ExitCode() != 2 {
		t.Errorf("-checks bogus: exit code = %d, want 2\n%s", exit.ExitCode(), out)
	}
	if !strings.Contains(string(out), "unknown analyzers bogus") {
		t.Errorf("-checks bogus: missing diagnostic in output:\n%s", out)
	}
}

// TestVersionRoutesToUnitchecker checks that go vet's first probe, -V=full,
// reaches unitchecker's flag handling (which prints a version fingerprint
// and exits 0) rather than the re-exec path — re-execing on a flag-shaped
// argument would recurse through go vet without terminating.
func TestVersionRoutesToUnitchecker(t *testing.T) {
	out, err := exec.Command(toolBinary, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("-V=full failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "version") {
		t.Errorf("-V=full: want a version fingerprint, got:\n%s", out)
	}
}

// TestFlagsRoutesToUnitchecker checks the second probe of the vet protocol:
// -flags must yield unitchecker's JSON flag description.
func TestFlagsRoutesToUnitchecker(t *testing.T) {
	out, err := exec.Command(toolBinary, "-flags").CombinedOutput()
	if err != nil {
		t.Fatalf("-flags failed: %v\n%s", err, out)
	}
	if !strings.HasPrefix(strings.TrimSpace(string(out)), "[") {
		t.Errorf("-flags: want JSON flag array, got:\n%s", out)
	}
}
