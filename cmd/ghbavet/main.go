// Command ghbavet runs the repo's custom static-analysis suite (see
// internal/vet): lockcheck, detrand, ctxflow, wireguard, lockorder,
// snapcheck, and hotalloc.
//
// Two modes share one binary:
//
//   - Vet tool: `go vet -vettool=$(which ghbavet) ./...` — go vet drives
//     the analyzers package by package over the unitchecker protocol.
//   - Standalone: `go run ./cmd/ghbavet ./...` — the binary re-executes
//     `go vet -vettool=<self>` on the given patterns, so the two modes
//     cannot drift apart.
//
// Driver subcommands (must come first):
//
//	ghbavet -list                 print the analyzer roster
//	ghbavet -checks a,b [pkgs]    run only the named analyzers
//	ghbavet -lockgraph            print the repo lock graph as DOT and
//	                              fail if it has a cycle
//
// Exit status is non-zero when any analyzer reports a finding.
package main

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"ghba/internal/vet"
	"ghba/internal/vet/lockorder"
	"ghba/internal/vet/srcload"
)

func main() {
	args := os.Args[1:]

	// Driver subcommands are recognized only in the leading position:
	// go vet never puts them there, so the unitchecker dispatch below
	// stays unambiguous.
	if len(args) > 0 {
		switch {
		case args[0] == "-list":
			for _, a := range vet.Analyzers {
				fmt.Printf("%-10s %s\n", a.Name, firstLine(a.Doc))
			}
			return
		case args[0] == "-lockgraph":
			os.Exit(runLockGraph())
		case args[0] == "-checks" || strings.HasPrefix(args[0], "-checks="):
			var val string
			rest := args[1:]
			if v, ok := strings.CutPrefix(args[0], "-checks="); ok {
				val = v
			} else {
				if len(rest) == 0 {
					fmt.Fprintln(os.Stderr, "ghbavet: -checks needs a comma-separated analyzer list")
					os.Exit(2)
				}
				val, rest = rest[0], rest[1:]
			}
			os.Setenv(vet.ChecksEnv, val)
			if _, unknown := vet.Selected(); len(unknown) > 0 {
				fmt.Fprintf(os.Stderr, "ghbavet: unknown analyzers %s (see ghbavet -list)\n", strings.Join(unknown, ", "))
				os.Exit(2)
			}
			runGoVet(rest) // env carries the subset into the vettool child
			return
		}
	}

	// go vet drives the tool with flags only: `-V=full` for the version
	// fingerprint, `-flags` to enumerate analyzer flags, then
	// `-flag... <unit>.cfg` per package. A human passes package patterns.
	// Anything flag-shaped therefore belongs to unitchecker — routing it
	// to the re-exec path instead would recurse through go vet forever.
	for _, arg := range args {
		if strings.HasPrefix(arg, "-") || strings.HasSuffix(arg, ".cfg") {
			selected, _ := vet.Selected() // parent validated any subset
			unitchecker.Main(selected...) // exits
		}
	}
	runGoVet(args)
}

func runGoVet(args []string) {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ghbavet: locating own binary: %v\n", err)
		os.Exit(2)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		var exit *exec.ExitError
		if errors.As(err, &exit) {
			os.Exit(exit.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "ghbavet: running go vet: %v\n", err)
		os.Exit(2)
	}
	os.Exit(0)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// runLockGraph loads the engine packages in one process, runs lockorder
// over them with a shared fact store, merges the per-package graphs, and
// prints the result as DOT. Exit status 1 means the graph has a cycle.
func runLockGraph() int {
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ghbavet: %v\n", err)
		return 2
	}
	resolve := srcload.ModuleResolver("ghba", root)
	loader := srcload.NewLoader(func(path string) (string, bool) {
		if dir, ok := resolve(path); ok {
			return dir, true
		}
		dir := filepath.Join(root, "vendor", filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	})
	runner := srcload.NewRunner(loader.Fset)

	pkgs, err := enginePackages(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ghbavet: %v\n", err)
		return 2
	}
	var edges []lockorder.Edge
	for _, path := range pkgs {
		p, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ghbavet: %v\n", err)
			return 2
		}
		_, res, err := runner.Run(lockorder.Analyzer, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ghbavet: %v\n", err)
			return 2
		}
		if g, ok := res.(*lockorder.Graph); ok && g != nil {
			edges = append(edges, g.Edges...)
		}
	}

	edges = dedupEdges(edges)
	fmt.Println("digraph lockorder {")
	fmt.Println("\trankdir=LR;")
	fmt.Println("\tnode [shape=box, fontname=\"monospace\"];")
	for _, e := range edges {
		fmt.Printf("\t%q -> %q [label=%q];\n", e.From, e.To, e.Pos)
	}
	fmt.Println("}")

	nodes := make(map[string]bool)
	graph := make(map[string][]string)
	for _, e := range edges {
		nodes[e.From], nodes[e.To] = true, true
		graph[e.From] = append(graph[e.From], e.To)
	}
	if cyc := findCycle(graph); cyc != nil {
		fmt.Fprintf(os.Stderr, "ghbavet: lock graph has a cycle: %s\n", strings.Join(cyc, " -> "))
		return 1
	}
	fmt.Fprintf(os.Stderr, "ghbavet: lock graph: %d classes, %d edges, acyclic\n", len(nodes), len(edges))
	return 0
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// enginePackages lists the root package and everything under internal/
// except internal/vet itself (the analysis layer holds no engine locks
// and would drag the vendored analysis framework into the load).
func enginePackages(root string) ([]string, error) {
	var pkgs []string
	if hasGoFiles(root) {
		pkgs = append(pkgs, "ghba")
	}
	base := filepath.Join(root, "internal")
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") {
			return filepath.SkipDir
		}
		if path == filepath.Join(base, "vet") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			pkgs = append(pkgs, "ghba/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(pkgs)
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

func dedupEdges(edges []lockorder.Edge) []lockorder.Edge {
	seen := make(map[[2]string]bool)
	var out []lockorder.Edge
	for _, e := range edges {
		key := [2]string{e.From, e.To}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// findCycle returns one cycle as a node path, or nil.
func findCycle(graph map[string][]string) []string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var stack []string
	var cycle []string
	var visit func(n string) bool
	visit = func(n string) bool {
		color[n] = gray
		stack = append(stack, n)
		next := append([]string(nil), graph[n]...)
		sort.Strings(next)
		for _, m := range next {
			switch color[m] {
			case white:
				if visit(m) {
					return true
				}
			case gray:
				for i, s := range stack {
					if s == m {
						cycle = append(append([]string(nil), stack[i:]...), m)
						return true
					}
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
		return false
	}
	var nodes []string
	for n := range graph {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		if color[n] == white && visit(n) {
			return cycle
		}
	}
	return nil
}
