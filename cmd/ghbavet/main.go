// Command ghbavet runs the repo's custom static-analysis suite (see
// internal/vet): lockcheck, detrand, ctxflow, and wireguard.
//
// Two modes share one binary:
//
//   - Vet tool: `go vet -vettool=$(which ghbavet) ./...` — go vet drives
//     the analyzers package by package over the unitchecker protocol.
//   - Standalone: `go run ./cmd/ghbavet ./...` — the binary re-executes
//     `go vet -vettool=<self>` on the given patterns, so the two modes
//     cannot drift apart.
//
// Exit status is non-zero when any analyzer reports a finding.
package main

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"ghba/internal/vet"
	"golang.org/x/tools/go/analysis/unitchecker"
)

func main() {
	// go vet drives the tool with flags only: `-V=full` for the version
	// fingerprint, `-flags` to enumerate analyzer flags, then
	// `-flag... <unit>.cfg` per package. A human passes package patterns.
	// Anything flag-shaped therefore belongs to unitchecker — routing it
	// to the re-exec path instead would recurse through go vet forever.
	for _, arg := range os.Args[1:] {
		if strings.HasPrefix(arg, "-") || strings.HasSuffix(arg, ".cfg") {
			unitchecker.Main(vet.Analyzers...) // exits
		}
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ghbavet: locating own binary: %v\n", err)
		os.Exit(2)
	}
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		var exit *exec.ExitError
		if errors.As(err, &exit) {
			os.Exit(exit.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "ghbavet: running go vet: %v\n", err)
		os.Exit(2)
	}
}
