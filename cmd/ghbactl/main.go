// Command ghbactl drives an in-process prototype cluster for demonstrations
// and smoke tests: it boots N MDS daemons on loopback TCP, populates a
// namespace, replays lookups, and reports latency, level and message
// statistics.
//
//	ghbactl -n 20 -m 7 -files 10000 -ops 2000
//	ghbactl -mode hba -n 20 -add 5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ghba/internal/mds"
	"ghba/internal/proto"
)

func main() {
	var (
		n       = flag.Int("n", 12, "number of MDS daemons")
		m       = flag.Int("m", 4, "max group size (G-HBA mode)")
		mode    = flag.String("mode", "ghba", "scheme: ghba or hba")
		files   = flag.Int("files", 5_000, "namespace size")
		ops     = flag.Int("ops", 1_000, "lookups to issue")
		adds    = flag.Int("add", 0, "MDS insertions to perform after the lookups")
		seed    = flag.Int64("seed", 1, "random seed")
		resid   = flag.Int("resident", 0, "replicas fitting in RAM (0 = unlimited)")
		penalty = flag.Duration("disk-penalty", 0, "emulated disk cost when over the resident limit")
	)
	flag.Parse()

	var pmode proto.Mode
	switch *mode {
	case "ghba":
		pmode = proto.ModeGHBA
	case "hba":
		pmode = proto.ModeHBA
	default:
		fmt.Fprintf(os.Stderr, "ghbactl: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	per := uint64(*files / *n)
	cluster, err := proto.Start(proto.Options{
		N:    *n,
		M:    *m,
		Mode: pmode,
		Node: mds.Config{
			ExpectedFiles:  per*2 + 16,
			BitsPerFile:    16,
			LRUCapacity:    512,
			LRUBitsPerFile: 16,
		},
		ResidentReplicaLimit: *resid,
		DiskPenalty:          *penalty,
		Seed:                 *seed,
	})
	exitIf(err)
	defer cluster.Close()
	fmt.Printf("ghbactl: %s cluster of %d daemons up\n", cluster.Mode(), cluster.NumMDS())

	paths := make([]string, *files)
	for i := range paths {
		paths[i] = fmt.Sprintf("/vol/d%d/f%d", i%97, i)
	}
	cluster.Populate(paths)
	fmt.Printf("ghbactl: populated %d files\n", len(paths))

	levels := map[int]int{}
	var total time.Duration
	start := time.Now()
	for i := 0; i < *ops; i++ {
		res, err := cluster.Lookup(paths[(i*31)%len(paths)])
		exitIf(err)
		if !res.Found {
			exitIf(fmt.Errorf("lost file %s", paths[(i*31)%len(paths)]))
		}
		levels[res.Level]++
		total += res.Latency
	}
	wall := time.Since(start)
	fmt.Printf("ghbactl: %d lookups in %v (%.0f req/s), mean RPC latency %v\n",
		*ops, wall.Round(time.Millisecond),
		float64(*ops)/wall.Seconds(), (total / time.Duration(*ops)).Round(time.Microsecond))
	fmt.Printf("ghbactl: levels L1=%d L2=%d L3=%d L4=%d, RPC messages=%d\n",
		levels[1], levels[2], levels[3], levels[4], cluster.Messages())

	for k := 1; k <= *adds; k++ {
		id, msgs, err := cluster.AddMDS()
		exitIf(err)
		fmt.Printf("ghbactl: added MDS %d (%d messages)\n", id, msgs)
	}
}

func exitIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ghbactl:", err)
		os.Exit(1)
	}
}
