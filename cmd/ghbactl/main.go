// Command ghbactl drives an in-process prototype cluster for demonstrations
// and smoke tests: it boots N MDS daemons on loopback TCP, populates a
// namespace, replays lookups or mixed workloads, and reports latency, level
// and message statistics.
//
//	ghbactl -n 20 -m 7 -files 10000 -ops 2000
//	ghbactl -mode hba -n 20 -add 5
//	ghbactl -throughput -workers 8 -ops 5000
//	ghbactl -replay -mix 70:20:10 -workers 4 -ops 5000
//	ghbactl -replay -rpcbatch 256 -ops 5000        # vectorized batch RPCs
//	ghbactl -transport classic -ops 2000           # pre-mux wire protocol
//
// -throughput switches the replay to the concurrent driver: the same
// lookup batch runs through the parallel engine at worker counts doubling
// from 1 up to -workers, reporting wall-clock lookups/sec, per-level hit
// shares, and RPC message counts over real sockets at each step.
//
// -replay drives a mixed lookup:create:delete workload through the unified
// backend API: creates and deletes are real RPCs that update the origin
// daemon's filter and ship XOR-delta replica updates over the wire — the
// same replay engine cmd/ghbabench runs against the simulation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"ghba"
	"ghba/internal/experiments"
	"ghba/internal/trace"
)

func main() {
	var (
		n          = flag.Int("n", 12, "number of MDS daemons")
		m          = flag.Int("m", 4, "max group size (G-HBA mode)")
		mode       = flag.String("mode", "ghba", "scheme: ghba or hba")
		files      = flag.Int("files", 5_000, "namespace size")
		ops        = flag.Int("ops", 1_000, "operations to issue")
		adds       = flag.Int("add", 0, "MDS insertions to perform after the lookups")
		seed       = flag.Int64("seed", 1, "random seed")
		resid      = flag.Int("resident", 0, "replicas fitting in RAM (0 = unlimited)")
		penalty    = flag.Duration("disk-penalty", 0, "emulated disk cost when over the resident limit")
		throughput = flag.Bool("throughput", false, "concurrent driver: sweep worker counts and report lookups/sec")
		replay     = flag.Bool("replay", false, "replay a mixed workload through the unified backend API")
		mix        = flag.String("mix", "70:20:10", "lookup:create:delete ratio for -replay")
		shipBatch  = flag.Int("shipbatch", 1, "coalescing ship-queue drain batch for -replay (1 = ship at every threshold crossing)")
		workers    = flag.Int("workers", 8, "max parallel workers in -throughput / -replay mode")
		timeout    = flag.Duration("call-timeout", 0, "per-RPC deadline (0 = library default, negative = none)")
		transport  = flag.String("transport", "", "wire protocol: mux (default) or classic")
		rpcBatch   = flag.Int("rpcbatch", 1, "ops per batch-RPC vector in -replay mode (1 = per-op dispatch)")
	)
	flag.Parse()
	ctx := context.Background()

	per := uint64(*files / *n)
	cluster, err := ghba.StartPrototype(ghba.PrototypeConfig{
		Config: ghba.Config{
			NumMDS:              *n,
			MaxGroupSize:        *m,
			ExpectedFilesPerMDS: per*2 + 16,
			ShipBatch:           *shipBatch,
			Seed:                *seed,
		},
		Mode:                 *mode,
		ResidentReplicaLimit: *resid,
		DiskPenalty:          *penalty,
		CallTimeout:          *timeout,
		Transport:            *transport,
	})
	exitIf(err)
	defer cluster.Close()
	fmt.Printf("ghbactl: %s cluster of %d daemons up (%s transport)\n",
		cluster.Cluster().Mode(), cluster.NumMDS(), cluster.Transport())

	if *replay {
		runReplay(ctx, cluster, *files, *ops, *workers, *rpcBatch, *mix, *seed)
	} else {
		paths := make([]string, *files)
		for i := range paths {
			paths[i] = fmt.Sprintf("/vol/d%d/f%d", i%97, i)
		}
		exitIf(cluster.CreateAll(ctx, paths))
		fmt.Printf("ghbactl: populated %d files\n", len(paths))
		if *throughput {
			runThroughput(ctx, cluster, paths, *ops, *workers)
		} else {
			runSerial(ctx, cluster, paths, *ops)
		}
	}

	for k := 1; k <= *adds; k++ {
		id, msgs, err := cluster.AddMDS(ctx)
		exitIf(err)
		fmt.Printf("ghbactl: added MDS %d (%d messages)\n", id, msgs)
	}
}

// runReplay feeds a mixed trace through the backend-level replay engine:
// every create, delete and lookup is a real RPC conversation. With rpcBatch
// > 1 the replay dispatches rpcBatch-op vectors through the batch RPCs.
func runReplay(ctx context.Context, cluster *ghba.Prototype, files, ops, workers, rpcBatch int, mix string, seed int64) {
	var l, c, d float64
	if _, err := fmt.Sscanf(mix, "%f:%f:%f", &l, &c, &d); err != nil {
		exitIf(fmt.Errorf("parsing -mix %q (want lookup:create:delete, e.g. 70:20:10): %w", mix, err))
	}
	profile, err := trace.MixProfile(l, c, d)
	exitIf(err)
	tcfg := trace.Config{
		Profile:          profile,
		TIF:              2,
		FilesPerSubtrace: uint64(files) / 2,
		Seed:             seed,
	}
	gen, err := trace.NewGenerator(tcfg)
	exitIf(err)
	exitIf(experiments.PopulateFromGenerator(cluster, gen))
	fmt.Printf("ghbactl: populated %d files, replaying %d ops (mix %s, %d workers)\n",
		cluster.FileCount(), ops, mix, workers)

	before := cluster.LevelCounts()
	stats, err := experiments.ReplayParallelBatched(ctx, cluster, tcfg, ops, workers, rpcBatch)
	exitIf(err)
	after := cluster.LevelCounts()

	fmt.Printf("ghbactl: %d ops in %v — %.0f ops/s over real sockets\n",
		stats.Ops, stats.Elapsed.Round(time.Millisecond), stats.OpsPerSec)
	fmt.Printf("ghbactl: lookups=%d (mean RPC latency %v) creates=%d deletes=%d (+%d missed)\n",
		stats.Lookups, stats.MeanLookupLatency.Round(time.Microsecond),
		stats.Creates, stats.Deletes, stats.DeleteMisses)
	if stats.Lookups > 0 {
		nl := float64(stats.Lookups) / 100
		fmt.Printf("ghbactl: levels L1=%.1f%% L2=%.1f%% L3=%.1f%% L4=%.1f%%\n",
			float64(after[1]-before[1])/nl, float64(after[2]-before[2])/nl,
			float64(after[3]-before[3])/nl, float64(after[4]-before[4])/nl)
	}
	fmt.Printf("ghbactl: RPC messages=%d, replica-update msgs=%d, files now %d\n",
		cluster.Cluster().Messages(), cluster.ReplicaUpdates(), cluster.FileCount())
}

// runSerial replays ops lookups one at a time — the original Fig 14 driver.
func runSerial(ctx context.Context, cluster *ghba.Prototype, paths []string, ops int) {
	levels := map[int]int{}
	var total time.Duration
	start := time.Now()
	for i := 0; i < ops; i++ {
		res, err := cluster.Lookup(ctx, paths[(i*31)%len(paths)])
		exitIf(err)
		if !res.Found {
			exitIf(fmt.Errorf("lost file %s", paths[(i*31)%len(paths)]))
		}
		levels[res.Level]++
		total += res.Latency
	}
	wall := time.Since(start)
	fmt.Printf("ghbactl: %d lookups in %v (%.0f req/s), mean RPC latency %v\n",
		ops, wall.Round(time.Millisecond),
		float64(ops)/wall.Seconds(), (total / time.Duration(ops)).Round(time.Microsecond))
	fmt.Printf("ghbactl: levels L1=%d L2=%d L3=%d L4=%d, RPC messages=%d\n",
		levels[1], levels[2], levels[3], levels[4], cluster.Cluster().Messages())
}

// runThroughput replays the same batch through the parallel driver at
// worker counts doubling from 1 to maxWorkers.
func runThroughput(ctx context.Context, cluster *ghba.Prototype, paths []string, ops, maxWorkers int) {
	batch := make([]string, ops)
	for i := range batch {
		batch[i] = paths[(i*31)%len(paths)]
	}
	// Warmup: train the LRU arrays once, unmeasured, so every worker
	// count then measures the same L1-warm workload.
	if _, err := ghba.LookupParallel(ctx, cluster, batch, maxWorkers); err != nil {
		exitIf(err)
	}
	fmt.Printf("ghbactl: throughput mode, %d lookups per run (after warmup)\n", len(batch))
	pc := cluster.Cluster()
	var base float64
	for w := 1; w <= maxWorkers; w *= 2 {
		pc.ResetMessages()
		start := time.Now()
		results, err := ghba.LookupParallel(ctx, cluster, batch, w)
		exitIf(err)
		wall := time.Since(start)
		levels := map[int]int{}
		for i, res := range results {
			if !res.Found {
				exitIf(fmt.Errorf("lost file %s", batch[i]))
			}
			levels[res.Level]++
		}
		rate := float64(len(batch)) / wall.Seconds()
		if w == 1 {
			base = rate
		}
		n := float64(len(batch)) / 100
		fmt.Printf("ghbactl: workers=%-3d %9.0f lookups/s  (%.2fx)  wall %-10v levels L1=%.1f%% L2=%.1f%% L3=%.1f%% L4=%.1f%%  RPCs=%d\n",
			w, rate, rate/base, wall.Round(time.Millisecond),
			float64(levels[1])/n, float64(levels[2])/n, float64(levels[3])/n, float64(levels[4])/n,
			pc.Messages())
	}
}

func exitIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ghbactl:", err)
		os.Exit(1)
	}
}
