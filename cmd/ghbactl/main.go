// Command ghbactl drives an in-process prototype cluster for demonstrations
// and smoke tests: it boots N MDS daemons on loopback TCP, populates a
// namespace, replays lookups, and reports latency, level and message
// statistics.
//
//	ghbactl -n 20 -m 7 -files 10000 -ops 2000
//	ghbactl -mode hba -n 20 -add 5
//	ghbactl -throughput -workers 8 -ops 5000
//
// -throughput switches the replay to the concurrent driver: the same
// lookup batch runs through Cluster.LookupParallel at worker counts
// doubling from 1 up to -workers, reporting wall-clock lookups/sec,
// per-level hit shares, and RPC message counts over real sockets at each
// step — the speedup column is the prototype serving parallel clients.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ghba/internal/mds"
	"ghba/internal/proto"
)

func main() {
	var (
		n          = flag.Int("n", 12, "number of MDS daemons")
		m          = flag.Int("m", 4, "max group size (G-HBA mode)")
		mode       = flag.String("mode", "ghba", "scheme: ghba or hba")
		files      = flag.Int("files", 5_000, "namespace size")
		ops        = flag.Int("ops", 1_000, "lookups to issue")
		adds       = flag.Int("add", 0, "MDS insertions to perform after the lookups")
		seed       = flag.Int64("seed", 1, "random seed")
		resid      = flag.Int("resident", 0, "replicas fitting in RAM (0 = unlimited)")
		penalty    = flag.Duration("disk-penalty", 0, "emulated disk cost when over the resident limit")
		throughput = flag.Bool("throughput", false, "concurrent driver: sweep worker counts and report lookups/sec")
		workers    = flag.Int("workers", 8, "max parallel lookup workers in -throughput mode")
		timeout    = flag.Duration("call-timeout", 0, "per-RPC deadline (0 = library default, negative = none)")
	)
	flag.Parse()

	var pmode proto.Mode
	switch *mode {
	case "ghba":
		pmode = proto.ModeGHBA
	case "hba":
		pmode = proto.ModeHBA
	default:
		fmt.Fprintf(os.Stderr, "ghbactl: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	per := uint64(*files / *n)
	cluster, err := proto.Start(proto.Options{
		N:    *n,
		M:    *m,
		Mode: pmode,
		Node: mds.Config{
			ExpectedFiles:  per*2 + 16,
			BitsPerFile:    16,
			LRUCapacity:    512,
			LRUBitsPerFile: 16,
		},
		ResidentReplicaLimit: *resid,
		DiskPenalty:          *penalty,
		Seed:                 *seed,
		CallTimeout:          *timeout,
	})
	exitIf(err)
	defer cluster.Close()
	fmt.Printf("ghbactl: %s cluster of %d daemons up\n", cluster.Mode(), cluster.NumMDS())

	paths := make([]string, *files)
	for i := range paths {
		paths[i] = fmt.Sprintf("/vol/d%d/f%d", i%97, i)
	}
	cluster.Populate(paths)
	fmt.Printf("ghbactl: populated %d files\n", len(paths))

	if *throughput {
		runThroughput(cluster, paths, *ops, *workers)
	} else {
		runSerial(cluster, paths, *ops)
	}

	for k := 1; k <= *adds; k++ {
		id, msgs, err := cluster.AddMDS()
		exitIf(err)
		fmt.Printf("ghbactl: added MDS %d (%d messages)\n", id, msgs)
	}
}

// runSerial replays ops lookups one at a time — the original Fig 14 driver.
func runSerial(cluster *proto.Cluster, paths []string, ops int) {
	levels := map[int]int{}
	var total time.Duration
	start := time.Now()
	for i := 0; i < ops; i++ {
		res, err := cluster.Lookup(paths[(i*31)%len(paths)])
		exitIf(err)
		if !res.Found {
			exitIf(fmt.Errorf("lost file %s", paths[(i*31)%len(paths)]))
		}
		levels[res.Level]++
		total += res.Latency
	}
	wall := time.Since(start)
	fmt.Printf("ghbactl: %d lookups in %v (%.0f req/s), mean RPC latency %v\n",
		ops, wall.Round(time.Millisecond),
		float64(ops)/wall.Seconds(), (total / time.Duration(ops)).Round(time.Microsecond))
	fmt.Printf("ghbactl: levels L1=%d L2=%d L3=%d L4=%d, RPC messages=%d\n",
		levels[1], levels[2], levels[3], levels[4], cluster.Messages())
}

// runThroughput replays the same batch through the parallel driver at
// worker counts doubling from 1 to maxWorkers.
func runThroughput(cluster *proto.Cluster, paths []string, ops, maxWorkers int) {
	batch := make([]string, ops)
	for i := range batch {
		batch[i] = paths[(i*31)%len(paths)]
	}
	// Warmup: train the LRU arrays once, unmeasured, so every worker
	// count then measures the same L1-warm workload.
	if _, err := cluster.LookupParallel(batch, maxWorkers); err != nil {
		exitIf(err)
	}
	fmt.Printf("ghbactl: throughput mode, %d lookups per run (after warmup)\n", len(batch))
	var base float64
	for w := 1; w <= maxWorkers; w *= 2 {
		cluster.ResetMessages()
		start := time.Now()
		results, err := cluster.LookupParallel(batch, w)
		exitIf(err)
		wall := time.Since(start)
		levels := map[int]int{}
		for i, res := range results {
			if !res.Found {
				exitIf(fmt.Errorf("lost file %s", batch[i]))
			}
			levels[res.Level]++
		}
		rate := float64(len(batch)) / wall.Seconds()
		if w == 1 {
			base = rate
		}
		n := float64(len(batch)) / 100
		fmt.Printf("ghbactl: workers=%-3d %9.0f lookups/s  (%.2fx)  wall %-10v levels L1=%.1f%% L2=%.1f%% L3=%.1f%% L4=%.1f%%  RPCs=%d\n",
			w, rate, rate/base, wall.Round(time.Millisecond),
			float64(levels[1])/n, float64(levels[2])/n, float64(levels[3])/n, float64(levels[4])/n,
			cluster.Messages())
	}
}

func exitIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ghbactl:", err)
		os.Exit(1)
	}
}
