package ghba

import (
	"strconv"
	"testing"
)

func newSim(t *testing.T, n int) *Simulation {
	t.Helper()
	s, err := New(Config{NumMDS: n, ExpectedFilesPerMDS: 1_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NumMDS: 0}); err == nil {
		t.Error("NumMDS 0 accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := newSim(t, 12)
	if s.NumMDS() != 12 {
		t.Errorf("NumMDS = %d", s.NumMDS())
	}
	// M defaults to the recommendation (3 groups of 4 at N=12, M=6 → 2 groups).
	if s.NumGroups() != 2 {
		t.Errorf("NumGroups = %d, want 2 (M=6)", s.NumGroups())
	}
}

func TestRecommendedGroupSize(t *testing.T) {
	cases := map[int]int{5: 3, 30: 6, 60: 7, 100: 9, 200: 13}
	for n, want := range cases {
		if got := RecommendedGroupSize(n); got != want {
			t.Errorf("RecommendedGroupSize(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLifecycle(t *testing.T) {
	s := newSim(t, 8)
	paths := make([]string, 300)
	for i := range paths {
		paths[i] = "/app/data/f" + strconv.Itoa(i)
	}
	s.CreateAll(paths)
	if s.FileCount() != 300 {
		t.Fatalf("FileCount = %d", s.FileCount())
	}
	for _, p := range paths {
		res := s.Lookup(p)
		if !res.Found {
			t.Fatalf("lookup %s failed", p)
		}
		if res.Level < 1 || res.Level > 4 || res.Latency <= 0 {
			t.Fatalf("implausible result %+v", res)
		}
	}
	if !s.Exists(paths[0]) || s.Exists("/nope") {
		t.Error("Exists wrong")
	}
	if !s.Delete(paths[0]) || s.Delete(paths[0]) {
		t.Error("Delete semantics wrong")
	}
	if res := s.Lookup("/nope"); res.Found || res.Home != -1 {
		t.Error("missing file found")
	}
	if s.MeanLatency() <= 0 {
		t.Error("no latency recorded")
	}
	fr := s.LevelFractions()
	sum := fr[1] + fr[2] + fr[3] + fr[4]
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("level fractions sum %f", sum)
	}
}

func TestCreateSingle(t *testing.T) {
	s := newSim(t, 4)
	home := s.Create("/one")
	if home < 0 || !s.Exists("/one") {
		t.Error("Create failed")
	}
	res := s.Lookup("/one")
	if !res.Found || res.Home != home {
		t.Errorf("lookup after create = %+v", res)
	}
}

func TestScaleUpAndDown(t *testing.T) {
	s := newSim(t, 6)
	paths := make([]string, 200)
	for i := range paths {
		paths[i] = "/scale/f" + strconv.Itoa(i)
	}
	s.CreateAll(paths)

	id, migrated, err := s.AddMDS()
	if err != nil {
		t.Fatal(err)
	}
	if migrated <= 0 {
		t.Error("no replicas migrated on join")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after add: %v", err)
	}
	if err := s.RemoveMDS(id); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after remove: %v", err)
	}
	if err := s.RemoveMDS(999); err == nil {
		t.Error("removing unknown MDS succeeded")
	}
	for _, p := range paths {
		if !s.Lookup(p).Found {
			t.Fatalf("lost %s after reconfiguration", p)
		}
	}
	if len(s.MDSIDs()) != s.NumMDS() {
		t.Error("MDSIDs inconsistent")
	}
}

func TestFailMDSFacade(t *testing.T) {
	s := newSim(t, 6)
	paths := make([]string, 120)
	for i := range paths {
		paths[i] = "/crash/f" + strconv.Itoa(i)
	}
	s.CreateAll(paths)
	victim := s.MDSIDs()[0]
	lost, err := s.FailMDS(victim)
	if err != nil {
		t.Fatal(err)
	}
	if lost <= 0 {
		t.Error("crash lost no files despite random placement")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after crash: %v", err)
	}
	available := 0
	for _, p := range paths {
		if s.Lookup(p).Found {
			available++
		}
	}
	if available != len(paths)-lost {
		t.Errorf("available = %d, want %d", available, len(paths)-lost)
	}
	if _, err := s.FailMDS(victim); err == nil {
		t.Error("double failure of same MDS succeeded")
	}
}
