package ghba

import (
	"context"
	"errors"
	"strconv"
	"testing"
)

func newSim(t *testing.T, n int) *Simulation {
	t.Helper()
	s, err := New(Config{NumMDS: n, ExpectedFilesPerMDS: 1_000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// lk resolves one path, failing the test on error.
func lk(t *testing.T, s *Simulation, path string) Result {
	t.Helper()
	res, err := s.Lookup(context.Background(), path)
	if err != nil {
		t.Fatalf("lookup %s: %v", path, err)
	}
	return res
}

func createAll(t *testing.T, s *Simulation, paths []string) {
	t.Helper()
	if err := s.CreateAll(context.Background(), paths); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"zero MDS", Config{NumMDS: 0}, "NumMDS"},
		{"negative MDS", Config{NumMDS: -3}, "NumMDS"},
		{"negative group size", Config{NumMDS: 4, MaxGroupSize: -1}, "MaxGroupSize"},
		{"negative bits per file", Config{NumMDS: 4, BitsPerFile: -2}, "BitsPerFile"},
		{"negative ship batch", Config{NumMDS: 4, ShipBatch: -1}, "ShipBatch"},
		// 1 KiB cannot hold even one filter at the default sizing
		// (50 000 files × 16 bits = 100 000 bytes).
		{"budget below one filter", Config{NumMDS: 4, MemoryBudgetBytes: 1 << 10}, "MemoryBudgetBytes"},
		{"budget below explicit filter", Config{NumMDS: 4, ExpectedFilesPerMDS: 10_000, BitsPerFile: 8, MemoryBudgetBytes: 100}, "MemoryBudgetBytes"},
	}
	for _, tc := range cases {
		_, err := New(tc.cfg)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		var cerr *ConfigError
		if !errors.As(err, &cerr) {
			t.Errorf("%s: error %v is not a *ConfigError", tc.name, err)
			continue
		}
		if cerr.Field != tc.field {
			t.Errorf("%s: rejected field %q, want %q", tc.name, cerr.Field, tc.field)
		}
	}
	// The same validation guards the TCP backend's shared Config half.
	if _, err := StartPrototype(PrototypeConfig{Config: Config{NumMDS: 2, ShipBatch: -5}}); err == nil {
		t.Error("StartPrototype accepted negative ShipBatch")
	}
	if _, err := StartPrototype(PrototypeConfig{Config: Config{NumMDS: 2}, Mode: "bogus"}); err == nil {
		t.Error("StartPrototype accepted unknown mode")
	}
	// A budget that fits at least one filter is accepted.
	if _, err := New(Config{NumMDS: 2, ExpectedFilesPerMDS: 1_000, MemoryBudgetBytes: 1 << 20}); err != nil {
		t.Errorf("valid budget rejected: %v", err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	s := newSim(t, 12)
	if s.NumMDS() != 12 {
		t.Errorf("NumMDS = %d", s.NumMDS())
	}
	// M defaults to the recommendation (3 groups of 4 at N=12, M=6 → 2 groups).
	if s.NumGroups() != 2 {
		t.Errorf("NumGroups = %d, want 2 (M=6)", s.NumGroups())
	}
	if s.Name() != "sim" || s.Seed() != 7 {
		t.Errorf("backend identity wrong: %s/%d", s.Name(), s.Seed())
	}
}

func TestRecommendedGroupSize(t *testing.T) {
	cases := map[int]int{5: 3, 30: 6, 60: 7, 100: 9, 200: 13}
	for n, want := range cases {
		if got := RecommendedGroupSize(n); got != want {
			t.Errorf("RecommendedGroupSize(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLifecycle(t *testing.T) {
	s := newSim(t, 8)
	paths := make([]string, 300)
	for i := range paths {
		paths[i] = "/app/data/f" + strconv.Itoa(i)
	}
	createAll(t, s, paths)
	if s.FileCount() != 300 {
		t.Fatalf("FileCount = %d", s.FileCount())
	}
	for _, p := range paths {
		res := lk(t, s, p)
		if !res.Found {
			t.Fatalf("lookup %s failed", p)
		}
		if res.Level < 1 || res.Level > 4 || res.Latency <= 0 {
			t.Fatalf("implausible result %+v", res)
		}
	}
	if !s.Exists(paths[0]) || s.Exists("/nope") {
		t.Error("Exists wrong")
	}
	if !s.Delete(paths[0]) || s.Delete(paths[0]) {
		t.Error("Delete semantics wrong")
	}
	if res := lk(t, s, "/nope"); res.Found || res.Home != -1 {
		t.Error("missing file found")
	}
	if s.MeanLatency() <= 0 {
		t.Error("no latency recorded")
	}
	fr := s.LevelFractions()
	sum := fr[1] + fr[2] + fr[3] + fr[4]
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("level fractions sum %f", sum)
	}
}

func TestCreateSingle(t *testing.T) {
	s := newSim(t, 4)
	home := s.Create("/one")
	if home < 0 || !s.Exists("/one") {
		t.Error("Create failed")
	}
	res := lk(t, s, "/one")
	if !res.Found || res.Home != home {
		t.Errorf("lookup after create = %+v", res)
	}
}

func TestScaleUpAndDown(t *testing.T) {
	ctx := context.Background()
	s := newSim(t, 6)
	paths := make([]string, 200)
	for i := range paths {
		paths[i] = "/scale/f" + strconv.Itoa(i)
	}
	createAll(t, s, paths)

	id, migrated, err := s.AddMDS(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if migrated <= 0 {
		t.Error("no replicas migrated on join")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after add: %v", err)
	}
	if err := s.RemoveMDS(ctx, id); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after remove: %v", err)
	}
	if err := s.RemoveMDS(ctx, 999); err == nil {
		t.Error("removing unknown MDS succeeded")
	}
	for _, p := range paths {
		if !lk(t, s, p).Found {
			t.Fatalf("lost %s after reconfiguration", p)
		}
	}
	if len(s.MDSIDs()) != s.NumMDS() {
		t.Error("MDSIDs inconsistent")
	}
}

func TestFailMDSFacade(t *testing.T) {
	ctx := context.Background()
	s := newSim(t, 6)
	paths := make([]string, 120)
	for i := range paths {
		paths[i] = "/crash/f" + strconv.Itoa(i)
	}
	createAll(t, s, paths)
	victim := s.MDSIDs()[0]
	lost, err := s.FailMDS(ctx, victim)
	if err != nil {
		t.Fatal(err)
	}
	if lost <= 0 {
		t.Error("crash lost no files despite random placement")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after crash: %v", err)
	}
	available := 0
	for _, p := range paths {
		if lk(t, s, p).Found {
			available++
		}
	}
	if available != len(paths)-lost {
		t.Errorf("available = %d, want %d", available, len(paths)-lost)
	}
	if _, err := s.FailMDS(ctx, victim); err == nil {
		t.Error("double failure of same MDS succeeded")
	}
}
