package hashplace

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty member list accepted")
	}
}

func TestHolderDeterministic(t *testing.T) {
	p, err := New([]int{10, 11, 12})
	if err != nil {
		t.Fatal(err)
	}
	p.AddOrigin(7)
	if p.HolderOf(7) != p.HolderOf(7) {
		t.Error("holder not stable")
	}
	if p.Origins() != 1 || p.Members() != 3 {
		t.Error("counters wrong")
	}
}

func TestAddMemberMigratesMostReplicas(t *testing.T) {
	p, err := New([]int{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	const origins = 1000
	for o := 100; o < 100+origins; o++ {
		p.AddOrigin(o)
	}
	migrations := p.AddMember(6)
	expected := ExpectedJoinMigrations(origins, 6) // 1000·6/7 ≈ 857
	if float64(migrations) < expected*0.8 || float64(migrations) > float64(origins) {
		t.Errorf("migrations = %d, analytic expectation %.0f", migrations, expected)
	}
}

func TestRemoveMember(t *testing.T) {
	p, err := New([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for o := 10; o < 110; o++ {
		p.AddOrigin(o)
	}
	migrations, err := p.RemoveMember(1)
	if err != nil {
		t.Fatal(err)
	}
	if migrations == 0 {
		t.Error("removal migrated nothing")
	}
	if p.Members() != 2 {
		t.Errorf("Members = %d", p.Members())
	}
	if _, err := p.RemoveMember(9); err == nil {
		t.Error("out-of-range slot accepted")
	}
}

func TestRemoveLastMemberRefused(t *testing.T) {
	p, err := New([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RemoveMember(0); err == nil {
		t.Error("removed last member")
	}
}

func TestExpectedJoinMigrationsBounds(t *testing.T) {
	if ExpectedJoinMigrations(100, 0) != 0 {
		t.Error("zero members expectation non-zero")
	}
	got := ExpectedJoinMigrations(700, 6)
	if got != 600 {
		t.Errorf("E[700, 6] = %f, want 600", got)
	}
}

func TestMigrationsNeverExceedOrigins(t *testing.T) {
	err := quick.Check(func(seed uint8, count uint16) bool {
		members := 1 + int(seed%9)
		ids := make([]int, members)
		for i := range ids {
			ids[i] = i
		}
		p, err := New(ids)
		if err != nil {
			return false
		}
		n := int(count % 500)
		for o := 0; o < n; o++ {
			p.AddOrigin(1000 + o)
		}
		m := p.AddMember(members)
		return m >= 0 && m <= n
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Errorf("migration bound violated: %v", err)
	}
}
