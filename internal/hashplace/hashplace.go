// Package hashplace implements the modular-hash replica placement the paper
// argues against in Section 2.4: within a group, the replica of origin o is
// stored on member h(o) mod M′. Placement is stateless and lookup is O(1),
// but any change in the member count re-targets almost every replica —
// ⌈(N−M′)·M′/(M′+1)⌉ migrations in expectation versus G-HBA's
// (N−M′)/(M′+1). Fig 11 charts exactly this comparison.
package hashplace

import "fmt"

// fnv1a64 hashes an origin ID deterministically (same constants as the
// Bloom substrate, reimplemented here to keep the package dependency-free).
func fnv1a64(x int) uint64 {
	h := uint64(14695981039346656037)
	v := uint64(x)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// Placement tracks the hash-based assignment of replica origins to the
// members of one group.
type Placement struct {
	members []int // member slots, order-sensitive: h(o) mod len(members)
	origins []int
}

// New creates a placement over the given member IDs (order matters: modular
// hashing addresses slots, not IDs).
func New(memberIDs []int) (*Placement, error) {
	if len(memberIDs) == 0 {
		return nil, fmt.Errorf("hashplace: need at least one member")
	}
	m := make([]int, len(memberIDs))
	copy(m, memberIDs)
	return &Placement{members: m}, nil
}

// AddOrigin registers an external origin whose replica the group must hold.
func (p *Placement) AddOrigin(origin int) {
	p.origins = append(p.origins, origin)
}

// HolderOf returns the member currently assigned origin's replica.
func (p *Placement) HolderOf(origin int) int {
	return p.members[fnv1a64(origin)%uint64(len(p.members))]
}

// Origins returns the number of registered origins.
func (p *Placement) Origins() int { return len(p.origins) }

// Members returns the current member count.
func (p *Placement) Members() int { return len(p.members) }

// AddMember appends a member slot and returns the number of replicas whose
// assignment changed — each is a migration the reconfiguration must pay.
func (p *Placement) AddMember(id int) int {
	before := make(map[int]int, len(p.origins))
	for _, o := range p.origins {
		before[o] = p.HolderOf(o)
	}
	p.members = append(p.members, id)
	migrations := 0
	for _, o := range p.origins {
		if p.HolderOf(o) != before[o] {
			migrations++
		}
	}
	return migrations
}

// RemoveMember drops the member at the given slot index and returns the
// migration count, defined the same way.
func (p *Placement) RemoveMember(slot int) (int, error) {
	if slot < 0 || slot >= len(p.members) {
		return 0, fmt.Errorf("hashplace: slot %d out of range [0,%d)", slot, len(p.members))
	}
	if len(p.members) == 1 {
		return 0, fmt.Errorf("hashplace: cannot remove the last member")
	}
	before := make(map[int]int, len(p.origins))
	for _, o := range p.origins {
		before[o] = p.HolderOf(o)
	}
	p.members = append(p.members[:slot], p.members[slot+1:]...)
	migrations := 0
	for _, o := range p.origins {
		if p.HolderOf(o) != before[o] {
			migrations++
		}
	}
	return migrations, nil
}

// ExpectedJoinMigrations returns the analytic expectation for a join:
// changing the modulus from m to m+1 re-targets a fraction m/(m+1) of the
// origins.
func ExpectedJoinMigrations(origins, members int) float64 {
	if members <= 0 {
		return 0
	}
	return float64(origins) * float64(members) / float64(members+1)
}
