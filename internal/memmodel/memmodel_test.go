package memmodel

import (
	"testing"
	"testing/quick"
	"time"
)

func TestResidentFraction(t *testing.T) {
	m := New(1000)
	if got := m.ResidentFraction(0); got != 1 {
		t.Errorf("empty working set fraction = %f, want 1", got)
	}
	if got := m.ResidentFraction(500); got != 1 {
		t.Errorf("under-budget fraction = %f, want 1", got)
	}
	if got := m.ResidentFraction(2000); got != 0.5 {
		t.Errorf("2x over-budget fraction = %f, want 0.5", got)
	}
	zero := New(0)
	if got := zero.ResidentFraction(100); got != 0 {
		t.Errorf("zero-budget fraction = %f, want 0", got)
	}
}

func TestSpilledReplicas(t *testing.T) {
	m := New(1000)
	if got := m.SpilledReplicas(0, 0); got != 0 {
		t.Errorf("no replicas spilled = %d", got)
	}
	if got := m.SpilledReplicas(10, 500); got != 0 {
		t.Errorf("fits in RAM but spilled = %d", got)
	}
	if got := m.SpilledReplicas(10, 2000); got != 5 {
		t.Errorf("half-spill = %d, want 5", got)
	}
	if got := New(0).SpilledReplicas(10, 100); got != 10 {
		t.Errorf("zero budget spill = %d, want 10", got)
	}
}

func TestSpilledReplicasBounds(t *testing.T) {
	err := quick.Check(func(budget, totalBytes uint64, total uint16) bool {
		m := New(budget % (1 << 40))
		n := int(total % 1000)
		spilled := m.SpilledReplicas(n, totalBytes%(1<<40))
		return spilled >= 0 && spilled <= n
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Errorf("spill out of bounds: %v", err)
	}
}

func TestArrayProbeCostAllResident(t *testing.T) {
	m := New(1 << 30)
	mem, disk := time.Microsecond, 5*time.Millisecond
	got := m.ArrayProbeCost(100, 1<<20, mem, disk, 0)
	if got != 100*mem {
		t.Errorf("all-resident cost = %v, want %v", got, 100*mem)
	}
}

func TestArrayProbeCostAllSpilled(t *testing.T) {
	m := New(0)
	mem, disk := time.Microsecond, 5*time.Millisecond
	got := m.ArrayProbeCost(10, 1<<20, mem, disk, 0)
	if got != 10*disk {
		t.Errorf("all-spilled cost = %v, want %v", got, 10*disk)
	}
}

func TestArrayProbeCostCacheDamping(t *testing.T) {
	m := New(0)
	mem, disk := time.Microsecond, 5*time.Millisecond
	full := m.ArrayProbeCost(10, 1<<20, mem, disk, 0)
	damped := m.ArrayProbeCost(10, 1<<20, mem, disk, 0.9)
	if damped >= full {
		t.Errorf("cache damping did not reduce cost: %v >= %v", damped, full)
	}
	if damped < full/20 {
		t.Errorf("damping too strong: %v vs %v", damped, full)
	}
}

func TestArrayProbeCostClampsCacheRate(t *testing.T) {
	m := New(0)
	mem, disk := time.Microsecond, 5*time.Millisecond
	// Negative clamps to 0; ≥1 clamps just below 1 (cost stays positive).
	if got := m.ArrayProbeCost(10, 1<<20, mem, disk, -5); got != 10*disk {
		t.Errorf("negative cache rate cost = %v, want %v", got, 10*disk)
	}
	if got := m.ArrayProbeCost(10, 1<<20, mem, disk, 2); got <= 0 {
		t.Errorf("cache rate ≥1 produced non-positive cost %v", got)
	}
}

func TestArrayProbeCostZeroReplicas(t *testing.T) {
	m := New(100)
	if got := m.ArrayProbeCost(0, 0, time.Microsecond, time.Millisecond, 0); got != 0 {
		t.Errorf("zero replicas cost %v", got)
	}
}

func TestArrayProbeCostMonotonicInPressure(t *testing.T) {
	// More memory never makes probes slower.
	mem, disk := time.Microsecond, 5*time.Millisecond
	workSet := uint64(100 << 20)
	prev := time.Duration(1 << 62)
	for _, budgetMB := range []uint64{0, 25, 50, 75, 100, 200} {
		cost := MB(budgetMB).ArrayProbeCost(100, workSet, mem, disk, 0.5)
		if cost > prev {
			t.Fatalf("cost increased with more memory: %v MB → %v", budgetMB, cost)
		}
		prev = cost
	}
}

func TestMBConstructorAndString(t *testing.T) {
	m := MB(500)
	if m.BudgetBytes() != 500<<20 {
		t.Errorf("MB(500) = %d bytes", m.BudgetBytes())
	}
	if m.String() != "mem=500MB" {
		t.Errorf("String = %q", m.String())
	}
}
