// Package memmodel models the per-MDS memory hierarchy that drives the
// paper's headline latency results (Figs 8–10): every MDS has a RAM budget;
// Bloom-filter replicas that fit stay memory resident, and the overflow
// spills to disk, turning each probe of a spilled replica into a disk access.
//
// HBA replicates every filter to every server, so at exabyte scale its
// replica array outgrows RAM and lookups hit disk; G-HBA keeps only
// ⌊(N−M′)/M′⌋ replicas per server and stays memory resident. This package
// is the mechanism by which the simulator exposes that difference.
package memmodel

import (
	"fmt"
	"time"
)

// Model tracks a RAM budget and how much of a replica set is resident.
// Resident accounting is fractional: with R replicas of equal size and only
// budget B available, a query that probes all R replicas pays for the
// spilled fraction with disk reads.
type Model struct {
	budgetBytes uint64
}

// New creates a model with the given RAM budget in bytes. A zero budget is
// allowed and forces everything to disk.
func New(budgetBytes uint64) *Model {
	return &Model{budgetBytes: budgetBytes}
}

// BudgetBytes returns the configured RAM budget.
func (m *Model) BudgetBytes() uint64 { return m.budgetBytes }

// ResidentFraction returns the fraction of a working set of totalBytes that
// fits in RAM, in [0, 1].
func (m *Model) ResidentFraction(totalBytes uint64) float64 {
	if totalBytes == 0 {
		return 1
	}
	if m.budgetBytes >= totalBytes {
		return 1
	}
	return float64(m.budgetBytes) / float64(totalBytes)
}

// SpilledReplicas returns how many of total replicas are disk resident when
// the whole set occupies totalBytes. Replicas are assumed equally sized, and
// the hottest ones are kept in RAM (the OS page cache approximation).
func (m *Model) SpilledReplicas(total int, totalBytes uint64) int {
	if total <= 0 {
		return 0
	}
	resident := int(m.ResidentFraction(totalBytes) * float64(total))
	if resident > total {
		resident = total
	}
	return total - resident
}

// ArrayProbeCost returns the service time of probing an array of total
// replicas occupying totalBytes, given the unit costs of a memory probe and
// a disk read. Memory-resident replicas cost one memory probe each; spilled
// replicas cost a disk read each, damped by cacheHitRate — the probability
// that a nominally spilled page is found in the page cache (hot pages of
// cold filters survive there). cacheHitRate is clamped to [0, 1).
func (m *Model) ArrayProbeCost(total int, totalBytes uint64, memProbe, diskRead time.Duration, cacheHitRate float64) time.Duration {
	if total <= 0 {
		return 0
	}
	if cacheHitRate < 0 {
		cacheHitRate = 0
	}
	if cacheHitRate >= 1 {
		cacheHitRate = 0.999
	}
	spilled := m.SpilledReplicas(total, totalBytes)
	resident := total - spilled
	cost := time.Duration(resident) * memProbe
	effectiveDiskProbes := float64(spilled) * (1 - cacheHitRate)
	cost += time.Duration(effectiveDiskProbes * float64(diskRead))
	return cost
}

// String describes the budget in MB for experiment banners.
func (m *Model) String() string {
	return fmt.Sprintf("mem=%dMB", m.budgetBytes/(1<<20))
}

// MB is a convenience constructor for budgets expressed in mebibytes.
func MB(n uint64) *Model { return New(n << 20) }
