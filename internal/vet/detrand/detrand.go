// Package detrand polices determinism in the engine packages.
//
// The replay and equivalence tests (TestCrossBackendEquivalence, the
// fingerprint-pinned replays) rely on a strict contract: every random draw
// inside an engine comes from a caller-supplied, explicitly seeded
// *rand.Rand, never from process-global state, so a single-worker parallel
// run is bit-for-bit identical to the serial path. Three things break that
// contract silently:
//
//  1. Package-level math/rand functions (rand.Intn, rand.Float64,
//     rand.Shuffle, ...) draw from the global generator, whose state
//     depends on every other draw in the process. Only the explicit
//     constructors (rand.New, rand.NewSource, rand.NewZipf) are allowed.
//  2. Seeding from the clock (rand.NewSource(time.Now().UnixNano()))
//     makes every run unique — fine in a demo, fatal in a pinned replay.
//  3. Collecting map-iteration results into a slice without sorting it
//     leaks Go's randomized map order into homes, tallies, and wire
//     payloads. Engines must sort such slices (or iterate a pre-sorted
//     snapshot like core's ids cache) before the data flows anywhere.
//
// The analyzer fires only inside the engine packages (core, hba, mds,
// bloom, bloomarray, group, trace, proto, bfa) — drivers and cmd/ binaries
// may use wall-clock seeds deliberately. Suppress a deliberate
// nondeterminism with //ghbavet:ignore <reason>.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"

	"ghba/internal/vet/vetutil"
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var Analyzer = &analysis.Analyzer{
	Name:     "detrand",
	Doc:      "forbid global math/rand, clock seeding, and unsorted map-order results in engine packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// enginePackages are the packages whose outputs are pinned by fixed-seed
// fingerprint tests; everything they compute must be a pure function of
// (config, seed, trace).
var enginePackages = map[string]bool{
	"core":       true,
	"hba":        true,
	"mds":        true,
	"bloom":      true,
	"bloomarray": true,
	"group":      true,
	"trace":      true,
	"proto":      true,
	"bfa":        true,
}

// allowedRandFuncs are the math/rand package-level functions that take
// their entropy source explicitly and therefore stay deterministic.
var allowedRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func run(pass *analysis.Pass) (any, error) {
	if !enginePackages[pass.Pkg.Name()] {
		return nil, nil
	}
	rep := vetutil.NewReporter(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// rand.New(rand.NewSource(time.Now()...)) nests two allowed
	// constructors around one clock call; report it once.
	clockReported := make(map[token.Pos]bool)

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			if fn.Type().(*types.Signature).Recv() != nil {
				return // method on an explicit *rand.Rand — the contract
			}
			if !allowedRandFuncs[fn.Name()] {
				rep.Reportf(call.Pos(), "rand.%s draws from the process-global generator; draw from a caller-supplied *rand.Rand (or the struct's seeded rng field) instead", fn.Name())
				return
			}
			// Allowed constructor — but not when seeded from the clock.
			if now := clockCallIn(pass.TypesInfo, call.Args); now != nil && !clockReported[now.Pos()] {
				clockReported[now.Pos()] = true
				rep.Reportf(now.Pos(), "RNG seeded from time.Now makes replays unreproducible; seed from Config.Seed or a caller-supplied value")
			}
		}
	})

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		checkMapOrder(pass, rep, fd)
	})
	return nil, nil
}

// calleeFunc resolves the called function object, if statically known.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// clockCallIn returns a time.Now call appearing anywhere inside args, or
// nil. Catches both rand.NewSource(time.Now().UnixNano()) and
// rand.New(rand.NewSource(time.Now().UnixNano())).
func clockCallIn(info *types.Info, args []ast.Expr) ast.Node {
	var found ast.Node
	for _, arg := range args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "time" && fn.Name() == "Now" {
				found = call
				return false
			}
			return true
		})
	}
	return found
}

// checkMapOrder flags slices appended to inside a range-over-map whose
// order is never fixed by a sort in the same function.
func checkMapOrder(pass *analysis.Pass, rep *vetutil.Reporter, fd *ast.FuncDecl) {
	type pending struct {
		name string
		pos  token.Pos
		end  token.Pos
	}
	var collected []pending

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, isRange := n.(*ast.RangeStmt)
		if !isRange {
			return true
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		// Find s = append(s, ...) in the body where s is an identifier
		// declared outside the range statement.
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			assign, isAssign := m.(*ast.AssignStmt)
			if !isAssign || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
				return true
			}
			lhs, isIdent := assign.Lhs[0].(*ast.Ident)
			if !isIdent {
				return true
			}
			call, isCall := assign.Rhs[0].(*ast.CallExpr)
			if !isCall {
				return true
			}
			if fn, isFnIdent := call.Fun.(*ast.Ident); !isFnIdent || fn.Name != "append" {
				return true
			}
			if obj := pass.TypesInfo.Uses[lhs]; obj != nil && obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
				return true // declared inside the loop; dies each iteration
			}
			collected = append(collected, pending{name: lhs.Name, pos: assign.Pos(), end: assign.End()})
			return true
		})
		return true
	})

	for _, p := range collected {
		if !sortedLater(pass, fd.Body, p.name, p.end) {
			rep.Reportf(p.pos, "%s collects map-iteration results; map order is randomized — sort %s before it flows into homes, tallies, or the wire", p.name, p.name)
		}
	}
}

// sortedLater reports whether name is passed to a sort.* or slices.Sort*
// call after pos in the body.
func sortedLater(pass *analysis.Pass, body *ast.BlockStmt, name string, pos token.Pos) bool {
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall || call.Pos() < pos {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			// The slice may be the argument itself (sort.Slice(s, ...)), a
			// derived spelling (&s, s[:]), or wrapped in adapters like
			// sort.Sort(sort.Reverse(sort.IntSlice(s))) — walk the whole
			// argument expression for any mention.
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, isIdent := a.(*ast.Ident); isIdent && id.Name == name {
					sorted = true
				}
				return !sorted
			})
			if sorted {
				return false
			}
		}
		return true
	})
	return sorted
}
