package detrand_test

import (
	"testing"

	"ghba/internal/vet/detrand"
	"ghba/internal/vet/vettest"
)

func TestDetrand(t *testing.T) {
	vettest.Run(t, "testdata", detrand.Analyzer, "core", "drivers")
}
