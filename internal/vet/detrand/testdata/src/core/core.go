// Package core (fixture) exercises detrand inside an engine package:
// randomness must enter through explicit *rand.Rand values and map order
// must never reach the output.
package core

import (
	"math/rand"
	"sort"
	"time"
)

type cluster struct {
	rng   *rand.Rand
	nodes map[int]int
}

// Global generator: state depends on every other draw in the process.
func globalDraw() int {
	return rand.Intn(10) // want `rand\.Intn draws from the process-global generator`
}

func globalShuffle(ids []int) {
	rand.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] }) // want `rand\.Shuffle draws from the process-global generator`
}

// Clock seeding: every run is unique, no replay is reproducible.
func clockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `RNG seeded from time\.Now makes replays unreproducible`
}

// The contract: explicit seed, explicit generator.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Methods on a supplied *rand.Rand are the whole point.
func (c *cluster) draw(rng *rand.Rand) int {
	return rng.Intn(len(c.nodes))
}

// The struct's own seeded rng field is equally fine.
func (c *cluster) drawOwn() int {
	return c.rng.Intn(len(c.nodes))
}

// rand.NewZipf takes its generator explicitly; allowed.
func zipf(rng *rand.Rand) *rand.Zipf {
	return rand.NewZipf(rng, 1.2, 1, 1000)
}

// Map order leaking into a result slice.
func (c *cluster) idsUnsorted() []int {
	var ids []int
	for id := range c.nodes {
		ids = append(ids, id) // want `ids collects map-iteration results; map order is randomized`
	}
	return ids
}

// The repo's idiom: collect, then sort before anything downstream sees it.
func (c *cluster) idsSorted() []int {
	ids := make([]int, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// sort.Slice with the slice as first argument also counts.
func (c *cluster) idsSortSlice() []int {
	var ids []int
	for id := range c.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Adapter wrapping counts too: the slice reaches sort.Sort through
// sort.Reverse(sort.IntSlice(...)).
func (c *cluster) idsSortReverse() []int {
	var ids []int
	for id := range c.nodes {
		ids = append(ids, id)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ids)))
	return ids
}

// Per-iteration scratch dies each round; order cannot leak.
func (c *cluster) scratchPerIteration() int {
	total := 0
	for id, weight := range c.nodes {
		pair := []int{}
		pair = append(pair, id, weight)
		total += pair[0] + pair[1]
	}
	return total
}

// Deliberate nondeterminism stays possible, with a visible paper trail.
func jitter() int {
	//ghbavet:ignore demo-only backoff jitter, never replayed
	return rand.Intn(3)
}
