// Package drivers (fixture) proves detrand stays quiet outside the engine
// packages: benchmarks and cmd/ binaries may use wall-clock seeds.
package drivers

import (
	"math/rand"
	"time"
)

func demoSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

func demoDraw() int {
	return rand.Intn(10)
}
