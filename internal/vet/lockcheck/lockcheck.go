// Package lockcheck enforces the repo's *Locked naming discipline.
//
// The engine packages document their locking convention in code: a method
// suffixed "Locked" assumes the receiver's mu field is already held, and a
// method that acquires mu pairs the acquire with a matching deferred
// release. Six PRs of concurrency work rest on those comments; this
// analyzer turns them into a build failure. Concretely:
//
//  1. A *Locked method must not Lock/Unlock/RLock/RUnlock its own
//     receiver's mu — the caller holds it by contract. (Other mutex
//     fields — rngMu, queueMu, homesMu — remain fair game: several
//     *Locked helpers take finer locks internally.)
//  2. A call x.fooLocked(...) must come either from another *Locked method
//     on the same receiver, or from a scope that lexically acquired x.mu
//     (Lock or RLock) before the call and has not released it. A function
//     that constructs x itself (x := &T{...}) is exempt: the object is
//     unpublished, so pre-concurrency initialization may call *Locked
//     helpers lock-free, the way core.New and proto.Start seed state.
//  3. An acquire immediately paired with a deferred release of the other
//     kind (mu.Lock + defer mu.RUnlock, or mu.RLock + defer mu.Unlock) is
//     flagged: it compiles, runs, and corrupts the lock state.
//  4. Two acquires of the same mutex in one block with no release between
//     them are flagged; a second RLock on the same RWMutex can deadlock
//     against a writer queued between the two.
//  5. The epoch-snapshot idiom: x.field.Store(...) on a sync/atomic.Pointer
//     field is snapshot publication, a writer-side act. It must happen
//     inside a *Locked method on the same receiver, under a lexically held
//     exclusive x.mu.Lock (an RLock is not enough — concurrent readers may
//     publish conflicting snapshots), or on an object the function itself
//     just constructed. Loads are unrestricted: reading the current
//     snapshot lock-free is the idiom's entire point.
//
// The checks are lexical within one function body (no interprocedural
// path analysis), which keeps them fast and predictable; suppress a false
// positive with //ghbavet:ignore <reason>.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ghba/internal/vet/vetutil"
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var Analyzer = &analysis.Analyzer{
	Name:     "lockcheck",
	Doc:      "enforce the *Locked suffix contract: callers hold mu, helpers never re-acquire it",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// mutexEvent is one Lock/Unlock-family call site inside a function body.
type mutexEvent struct {
	pos      token.Pos
	mutex    string // rendered lock expression, e.g. "c.mu"
	method   string // Lock, Unlock, RLock, RUnlock
	deferred bool
	block    ast.Node // nearest enclosing block or case clause
}

func (e mutexEvent) acquire() bool { return e.method == "Lock" || e.method == "RLock" }

func run(pass *analysis.Pass) (any, error) {
	rep := vetutil.NewReporter(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		checkFunc(pass, rep, fd)
	})
	return nil, nil
}

func checkFunc(pass *analysis.Pass, rep *vetutil.Reporter, fd *ast.FuncDecl) {
	recvName := receiverName(fd)
	isLockedFn := strings.HasSuffix(fd.Name.Name, "Locked")

	events := collectMutexEvents(pass, fd.Body)
	fresh := freshObjects(fd.Body)

	// Rule 1: a *Locked method keeps its hands off its own mu.
	if isLockedFn && recvName != "" {
		own := recvName + ".mu"
		for _, e := range events {
			if e.mutex == own {
				rep.Reportf(e.pos, "%s is suffixed Locked (caller holds %s) but calls %s.%s itself", fd.Name.Name, own, own, e.method)
			}
		}
	}

	// Rule 3 + 4: defer pairing and double acquisition, per block.
	checkPairing(rep, events)

	// Rule 2: every x.fooLocked(...) call needs the lock to be held.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		sel, isSel := call.Fun.(*ast.SelectorExpr)
		if !isSel || !strings.HasSuffix(sel.Sel.Name, "Locked") {
			return true
		}
		base := vetutil.RecvBase(sel.X)
		if base == "" {
			return true
		}
		// A *Locked method may call sibling *Locked helpers on the same
		// receiver: the contract transfers.
		if isLockedFn && base == recvName {
			return true
		}
		// Constructors calling helpers on an object they just built are
		// pre-concurrency by definition.
		if fresh[base] {
			return true
		}
		if !heldAt(events, base+".mu", call.Pos()) {
			rep.Reportf(call.Pos(), "call to %s.%s without holding %s.mu (callers of *Locked methods must hold the lock or be *Locked themselves)", base, sel.Sel.Name, base)
		}
		return true
	})

	// Rule 5: x.field.Store(...) on an atomic.Pointer publishes a snapshot
	// and must run writer-side — within a *Locked method on x, under a
	// lexically held exclusive x.mu.Lock, or on a freshly built object.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		sel, isSel := call.Fun.(*ast.SelectorExpr)
		if !isSel || sel.Sel.Name != "Store" {
			return true
		}
		if !isAtomicPointer(pass.TypesInfo.TypeOf(sel.X)) {
			return true
		}
		field := vetutil.RecvBase(sel.X)
		i := strings.LastIndex(field, ".")
		if i < 0 {
			// A bare local atomic.Pointer is unpublished state; stores to
			// it race nothing.
			return true
		}
		base := field[:i]
		if isLockedFn && base == recvName {
			return true
		}
		if fresh[base] {
			return true
		}
		if !heldExclusiveAt(events, base+".mu", call.Pos()) {
			rep.Reportf(call.Pos(), "%s.Store publishes a snapshot without %s.mu held exclusively (atomic.Pointer swaps are writer-side: hold Lock, be a *Locked method, or act on a fresh object)", field, base)
		}
		return true
	})
}

// isAtomicPointer reports whether t is sync/atomic.Pointer[T] (possibly
// behind a pointer).
func isAtomicPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && obj.Name() == "Pointer"
}

// receiverName returns the receiver identifier of a method, or "".
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// collectMutexEvents walks a body recording every mutex call with its
// enclosing block, in positional order.
func collectMutexEvents(pass *analysis.Pass, body *ast.BlockStmt) []mutexEvent {
	var events []mutexEvent
	var walk func(stmts []ast.Stmt, block ast.Node)
	record := func(call *ast.CallExpr, deferred bool, block ast.Node) {
		_, mutex, method, ok := vetutil.MutexMethod(pass.TypesInfo, call)
		if !ok {
			return
		}
		events = append(events, mutexEvent{pos: call.Pos(), mutex: mutex, method: method, deferred: deferred, block: block})
	}
	walk = func(stmts []ast.Stmt, block ast.Node) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ast.ExprStmt:
				if call, isCall := s.X.(*ast.CallExpr); isCall {
					record(call, false, block)
				}
			case *ast.DeferStmt:
				record(s.Call, true, block)
			case *ast.BlockStmt:
				walk(s.List, s)
			case *ast.IfStmt:
				walk(s.Body.List, s.Body)
				if s.Else != nil {
					switch e := s.Else.(type) {
					case *ast.BlockStmt:
						walk(e.List, e)
					case *ast.IfStmt:
						walk([]ast.Stmt{e}, block)
					}
				}
			case *ast.ForStmt:
				walk(s.Body.List, s.Body)
			case *ast.RangeStmt:
				walk(s.Body.List, s.Body)
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, isCase := c.(*ast.CaseClause); isCase {
						walk(cc.Body, cc)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, c := range s.Body.List {
					if cc, isCase := c.(*ast.CaseClause); isCase {
						walk(cc.Body, cc)
					}
				}
			case *ast.SelectStmt:
				for _, c := range s.Body.List {
					if cc, isComm := c.(*ast.CommClause); isComm {
						walk(cc.Body, cc)
					}
				}
			case *ast.LabeledStmt:
				walk([]ast.Stmt{s.Stmt}, block)
			}
		}
	}
	walk(body.List, body)
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// heldAt reports whether mutex is lexically held at pos: the last
// non-deferred event on it before pos is an acquire. Deferred releases run
// at function exit and therefore never end a critical section mid-body.
func heldAt(events []mutexEvent, mutex string, pos token.Pos) bool {
	held := false
	for _, e := range events {
		if e.pos >= pos || e.mutex != mutex || e.deferred {
			continue
		}
		held = e.acquire()
	}
	return held
}

// heldExclusiveAt is heldAt restricted to the write lock: only a plain Lock
// counts, an RLock does not.
func heldExclusiveAt(events []mutexEvent, mutex string, pos token.Pos) bool {
	held := false
	for _, e := range events {
		if e.pos >= pos || e.mutex != mutex || e.deferred {
			continue
		}
		held = e.method == "Lock"
	}
	return held
}

// checkPairing flags mismatched defer releases (rule 3) and double
// acquisition within one block (rule 4).
func checkPairing(rep *vetutil.Reporter, events []mutexEvent) {
	// Rule 3: a deferred release pairs with the nearest prior acquire of
	// the same mutex; the kinds must match.
	for i, e := range events {
		if !e.deferred || e.acquire() {
			continue
		}
		for j := i - 1; j >= 0; j-- {
			prev := events[j]
			if prev.mutex != e.mutex || prev.deferred || !prev.acquire() {
				continue
			}
			want := map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}[prev.method]
			if e.method != want {
				rep.Reportf(e.pos, "defer %s.%s pairs with %s.%s above: mismatched lock kinds corrupt the RWMutex", e.mutex, e.method, e.mutex, prev.method)
			}
			break
		}
	}

	// Rule 4: two acquires of one mutex in the same block with no release
	// between them. Blocks keep if/else branches from cross-flagging.
	type key struct {
		block ast.Node
		mutex string
	}
	lastAcquire := make(map[key]string)
	for _, e := range events {
		if e.deferred {
			continue
		}
		k := key{e.block, e.mutex}
		if e.acquire() {
			if prev, held := lastAcquire[k]; held {
				detail := "double acquisition deadlocks"
				if prev == "RLock" && e.method == "RLock" {
					detail = "a writer queued between the two RLocks deadlocks both"
				}
				rep.Reportf(e.pos, "%s.%s while %s is already held by %s in this block: %s", e.mutex, e.method, e.mutex, prev, detail)
			}
			lastAcquire[k] = e.method
		} else {
			delete(lastAcquire, k)
		}
	}
}

// freshObjects returns the identifiers assigned a composite literal (or
// new(T)) in this body — objects the function itself constructed and has
// not yet shared, exempt from the caller-holds-the-lock rule.
func freshObjects(body *ast.BlockStmt) map[string]bool {
	fresh := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, isAssign := n.(*ast.AssignStmt)
		if !isAssign || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, isIdent := lhs.(*ast.Ident)
			if !isIdent {
				continue
			}
			if isFreshExpr(assign.Rhs[i]) {
				fresh[id.Name] = true
			}
		}
		return true
	})
	return fresh
}

func isFreshExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, isLit := e.X.(*ast.CompositeLit)
			return isLit
		}
	case *ast.CallExpr:
		if id, isIdent := e.Fun.(*ast.Ident); isIdent && id.Name == "new" {
			return true
		}
	}
	return false
}
