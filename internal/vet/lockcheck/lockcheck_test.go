package lockcheck_test

import (
	"testing"

	"ghba/internal/vet/lockcheck"
	"ghba/internal/vet/vettest"
)

func TestLockcheck(t *testing.T) {
	vettest.Run(t, "testdata", lockcheck.Analyzer, "a", "regress")
}
