// Package a exercises every lockcheck rule against the repo's locking
// conventions: mu is the topology lock, rngMu a finer internal lock.
package a

import (
	"sync"
	"sync/atomic"
)

type Cluster struct {
	mu    sync.RWMutex
	rngMu sync.Mutex
	n     int
}

// sizeLocked follows the contract: the caller holds c.mu.
func (c *Cluster) sizeLocked() int { return c.n }

// Rule 1: a *Locked method must not touch its own mu.
func (c *Cluster) badLocked() int {
	c.mu.RLock()         // want `badLocked is suffixed Locked \(caller holds c\.mu\) but calls c\.mu\.RLock itself`
	defer c.mu.RUnlock() // want `badLocked is suffixed Locked \(caller holds c\.mu\) but calls c\.mu\.RUnlock itself`
	return c.n
}

// A *Locked helper may take a finer internal lock (core.randomMDSLocked
// takes rngMu while the caller holds mu).
func (c *Cluster) drawLocked() int {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.n
}

// Rule 2, satisfied: the caller read-locks before calling down.
func (c *Cluster) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sizeLocked()
}

// Rule 2, violated: no acquisition anywhere in scope.
func (c *Cluster) SizeRacy() int {
	return c.sizeLocked() // want `call to c\.sizeLocked without holding c\.mu`
}

// Rule 2, violated: the lock was given back before the call.
func (c *Cluster) SizeAfterUnlock() int {
	c.mu.RLock()
	n := c.n
	c.mu.RUnlock()
	return n + c.sizeLocked() // want `call to c\.sizeLocked without holding c\.mu`
}

// Rule 2, exempt: a constructor initializing an object it just built is
// pre-concurrency (the core.New / proto.Start pattern).
func NewCluster() *Cluster {
	c := &Cluster{}
	c.n = c.sizeLocked()
	return c
}

// Rule 2, transferred: a *Locked method may call sibling *Locked helpers.
func (c *Cluster) doubleSizeLocked() int {
	return c.sizeLocked() + c.sizeLocked()
}

// Rule 3: a write acquire must not pair with a read release.
func (c *Cluster) MismatchedDefer() int {
	c.mu.Lock()
	defer c.mu.RUnlock() // want `defer c\.mu\.RUnlock pairs with c\.mu\.Lock above: mismatched lock kinds`
	return c.n
}

// Rule 4: a second RLock in the same block deadlocks against a queued
// writer.
func (c *Cluster) DoubleRLock() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := c.n
	c.mu.RLock() // want `c\.mu\.RLock while c\.mu is already held by RLock`
	defer c.mu.RUnlock()
	return n + c.n
}

// Acquires in sibling branches do not cross-flag.
func (c *Cluster) Branches(wide bool) int {
	if wide {
		c.mu.Lock()
	} else {
		c.mu.Lock()
	}
	defer c.mu.Unlock()
	return c.n
}

// Lock-unlock-relock in one block is a sequence, not a double acquire.
func (c *Cluster) Relock() int {
	c.mu.RLock()
	n := c.n
	c.mu.RUnlock()
	c.mu.RLock()
	defer c.mu.RUnlock()
	return n + c.n
}

// A suppressed finding: the directive documents why the call is safe.
func (c *Cluster) Suppressed() int {
	//ghbavet:ignore exercised single-threaded in the fixture
	return c.sizeLocked()
}

// Rule 5: atomic.Pointer.Store publishes a snapshot and must run
// writer-side.

type Snap struct {
	ids []int
}

type Topo struct {
	mu   sync.RWMutex
	snap atomic.Pointer[Snap]
}

// A *Locked method may publish: the caller holds t.mu exclusively.
func (t *Topo) publishLocked() {
	t.snap.Store(&Snap{})
}

// Publishing under an exclusive Lock in the same function is fine.
func (t *Topo) Publish() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.snap.Store(&Snap{})
}

// Publishing with no lock held races concurrent writers.
func (t *Topo) PublishRacy() {
	t.snap.Store(&Snap{}) // want `t\.snap\.Store publishes a snapshot without t\.mu held exclusively`
}

// RLock is shared: two readers could both Store and lose an update.
func (t *Topo) PublishUnderRead() {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.snap.Store(&Snap{}) // want `t\.snap\.Store publishes a snapshot without t\.mu held exclusively`
}

// A fresh object is unpublished; its fields may be stored freely.
func NewTopo() *Topo {
	t := &Topo{}
	t.snap.Store(&Snap{})
	return t
}

// A bare local atomic.Pointer is unpublished too.
func localPointer() *Snap {
	var p atomic.Pointer[Snap]
	p.Store(&Snap{})
	return p.Load()
}
