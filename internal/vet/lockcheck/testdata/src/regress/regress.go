// Package regress reproduces the real pre-fix finding ghbavet surfaced in
// this repo: internal/proto/reconfig.go's addGHBA helper called
// c.groupOfLocked(id) without holding c.mu and without advertising the lock
// contract in its own name — only its caller, AddMDS, actually held the
// write lock. The fix (shipped alongside the analyzer) renamed the helper
// addGHBALocked, so the contract is checked at every call site instead of
// being a comment-level convention.
package regress

import "sync"

type Cluster struct {
	mu       sync.RWMutex
	groupIdx map[int]int
}

// groupOfLocked mirrors proto.(*Cluster).groupOfLocked.
func (c *Cluster) groupOfLocked(id int) int {
	gi, ok := c.groupIdx[id]
	if !ok {
		return -1
	}
	return gi
}

// addGHBA is the pre-fix shape: the caller holds c.mu, but this helper's
// name does not say so, so the *Locked call inside it is unprovable.
func (c *Cluster) addGHBA(id int) int {
	return c.groupOfLocked(id) // want `call to c\.groupOfLocked without holding c\.mu`
}

// addGHBALocked is the post-fix shape: the suffix states the contract, and
// sibling *Locked calls on the same receiver are allowed.
func (c *Cluster) addGHBALocked(id int) int {
	return c.groupOfLocked(id)
}

// AddMDS is the caller: it holds the write lock across the helper.
func (c *Cluster) AddMDS(id int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addGHBALocked(id)
}
