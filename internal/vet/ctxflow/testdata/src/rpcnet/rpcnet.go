// Package rpcnet (fixture): the transport layer's ctx-less Call wrappers
// are documented compatibility adapters — rule 2 is scoped to proto, and
// rule 1 never fires in a function with no ctx parameter to drop.
package rpcnet

import "context"

type Client struct{}

func (c *Client) CallContext(ctx context.Context, op uint8, payload []byte) ([]byte, error) {
	return nil, nil
}

// Call is the legacy adapter: originating a root context here is the
// documented boundary behavior, not a dropped caller context.
func (c *Client) Call(op uint8, payload []byte) ([]byte, error) {
	return c.CallContext(context.Background(), op, payload)
}

// But a transport helper holding a ctx must not fork a fresh root.
func (c *Client) retry(ctx context.Context, op uint8, payload []byte) ([]byte, error) {
	out, err := c.CallContext(context.Background(), op, payload) // want `retry has a context parameter but calls context\.Background`
	if err != nil {
		return c.CallContext(ctx, op, payload)
	}
	return out, nil
}
