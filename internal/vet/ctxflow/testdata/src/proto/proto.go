// Package proto (fixture) exercises ctxflow below the API boundary: the
// coordinator shapes mirror internal/proto.Cluster.
package proto

import (
	"context"
	"time"
)

type conn struct{}

func (conn) CallContext(ctx context.Context, op uint8, payload []byte) ([]byte, error) {
	return nil, nil
}

type Cluster struct {
	conns conn
}

// call is the coordinator's single RPC funnel, like proto.(*Cluster).call.
func (c *Cluster) call(ctx context.Context, id int, op uint8, payload []byte) ([]byte, error) {
	return c.conns.CallContext(ctx, op, payload)
}

// The contract: ctx in, ctx forwarded.
func (c *Cluster) Lookup(ctx context.Context, path string) error {
	_, err := c.call(ctx, 0, 1, []byte(path))
	return err
}

// Rule 1: a ctx parameter exists but a fresh root context goes down the
// stack — the caller's deadline and cancellation are severed.
func (c *Cluster) LookupDetached(ctx context.Context, path string) error {
	_, err := c.call(context.Background(), 0, 1, []byte(path)) // want `LookupDetached has a context parameter but calls context\.Background`
	return err
}

func (c *Cluster) LookupTodo(ctx context.Context, path string) error {
	_, err := c.call(context.TODO(), 0, 1, []byte(path)) // want `LookupTodo has a context parameter but calls context\.TODO`
	return err
}

// Rule 2: an exported RPC-issuing method with no way to cancel it.
func (c *Cluster) Refresh() error { // want `exported method Refresh issues RPCs but has no context\.Context parameter`
	_, err := c.call(context.Background(), 0, 2, nil)
	return err
}

// Unexported helpers and RPC-free exported methods are not the boundary.
func (c *Cluster) refresh() error {
	_, err := c.call(context.Background(), 0, 2, nil)
	return err
}

func (c *Cluster) NumMDS() int { return 1 }

// Rule 3: a discarded cancel keeps every losing probe of the fan-out
// running after the decisive answer.
func (c *Cluster) fanout(ctx context.Context, ids []int) {
	probeCtx, _ := context.WithCancel(ctx) // want `cancel from context\.WithCancel discarded`
	for _, id := range ids {
		go c.call(probeCtx, id, 3, nil)
	}
}

// The shape the scatter-gather actually uses.
func (c *Cluster) fanoutCancelled(ctx context.Context, ids []int) {
	probeCtx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	for _, id := range ids {
		go c.call(probeCtx, id, 3, nil)
	}
}
