package ctxflow_test

import (
	"testing"

	"ghba/internal/vet/ctxflow"
	"ghba/internal/vet/vettest"
)

func TestCtxflow(t *testing.T) {
	vettest.Run(t, "testdata", ctxflow.Analyzer, "proto", "rpcnet")
}
