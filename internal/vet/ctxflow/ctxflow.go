// Package ctxflow enforces context propagation through the RPC layers.
//
// Since PR 5, cancellation flows end to end: rpcnet.CallContext merges the
// caller's deadline with the per-call timeout, and every proto.Cluster
// RPC path threads a context.Context down to the socket. Three mistakes
// silently sever that chain:
//
//  1. A function that receives a ctx parameter but calls
//     context.Background() or context.TODO() drops its caller's deadline
//     and cancellation on the floor — the RPC below it becomes
//     uncancellable.
//  2. An exported proto.Cluster method that issues RPCs (calls c.call or
//     a CallContext) without accepting a context.Context widens the API
//     with an uncancellable entry point.
//  3. A context.WithCancel/WithTimeout/WithDeadline whose cancel function
//     is discarded (assigned to _) or never used leaks the context's
//     resources and, on the scatter-gather fan-outs, keeps losing probes
//     running after a decisive answer.
//
// The analyzer fires only in the below-the-boundary packages (proto,
// rpcnet). Compatibility wrappers without a ctx parameter (Client.Call
// delegating to CallContext) are deliberate API boundary adapters and are
// not flagged by rule 1 — they have no caller context to drop.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"ghba/internal/vet/vetutil"
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var Analyzer = &analysis.Analyzer{
	Name:     "ctxflow",
	Doc:      "RPC call paths must accept and forward context.Context; no dropped cancellation below the API boundary",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// rpcPackages are the layers below the public API boundary, where every
// context must originate from a caller.
var rpcPackages = map[string]bool{
	"proto":  true,
	"rpcnet": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !rpcPackages[pass.Pkg.Name()] {
		return nil, nil
	}
	rep := vetutil.NewReporter(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil {
			return
		}
		hasCtx := hasContextParam(pass.TypesInfo, fd)

		// Rule 1: ctx in hand, Background/TODO in body.
		if hasCtx {
			ast.Inspect(fd.Body, func(m ast.Node) bool {
				if _, isLit := m.(*ast.FuncLit); isLit {
					return true // closures share the finding; keep walking
				}
				call, isCall := m.(*ast.CallExpr)
				if !isCall {
					return true
				}
				if name, fromCtxPkg := contextPkgFunc(pass.TypesInfo, call); fromCtxPkg && (name == "Background" || name == "TODO") {
					rep.Reportf(call.Pos(), "%s has a context parameter but calls context.%s, dropping the caller's deadline and cancellation", fd.Name.Name, name)
				}
				return true
			})
		}

		// Rule 2: exported RPC-issuing methods must take a context. Scoped
		// to proto: rpcnet's ctx-less Call wrappers are the documented
		// compatibility adapters at the transport boundary.
		if !hasCtx && pass.Pkg.Name() == "proto" && fd.Recv != nil && ast.IsExported(fd.Name.Name) &&
			!vetutil.IsTestFile(pass.Fset, fd.Pos()) && issuesRPCs(fd.Body) {
			rep.Reportf(fd.Pos(), "exported method %s issues RPCs but has no context.Context parameter; callers cannot cancel it", fd.Name.Name)
		}

		// Rule 3: discarded or unused cancel functions.
		checkCancel(pass, rep, fd)
	})
	return nil, nil
}

// hasContextParam reports whether any parameter is a context.Context.
func hasContextParam(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isContextType(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, isNamed := types.Unalias(t).(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// contextPkgFunc resolves a call to a package-level function of package
// context, returning its name.
func contextPkgFunc(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	return fn.Name(), true
}

// issuesRPCs reports whether the body directly calls the coordinator's RPC
// plumbing: a method named call, Call, or CallContext. These are the only
// ways bytes leave proto/rpcnet.
func issuesRPCs(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
			switch sel.Sel.Name {
			case "call", "Call", "CallContext":
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkCancel flags context.WithCancel/WithTimeout/WithDeadline whose
// cancel func is blanked or never referenced again.
func checkCancel(pass *analysis.Pass, rep *vetutil.Reporter, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, isAssign := n.(*ast.AssignStmt)
		if !isAssign || len(assign.Lhs) != 2 || len(assign.Rhs) != 1 {
			return true
		}
		call, isCall := assign.Rhs[0].(*ast.CallExpr)
		if !isCall {
			return true
		}
		name, fromCtxPkg := contextPkgFunc(pass.TypesInfo, call)
		if !fromCtxPkg || !strings.HasPrefix(name, "With") || name == "WithValue" {
			return true
		}
		cancelIdent, isIdent := assign.Lhs[1].(*ast.Ident)
		if !isIdent {
			return true
		}
		// A named cancel that goes unused fails to compile, so the one
		// pattern that ships is the explicit blank: ctx, _ := WithCancel.
		if cancelIdent.Name == "_" {
			rep.Reportf(assign.Pos(), "cancel from context.%s discarded; the fan-out keeps running after its answer — defer it or call it on every exit", name)
		}
		return true
	})
}
