package snapcheck_test

import (
	"testing"

	"ghba/internal/vet/snapcheck"
	"ghba/internal/vet/vettest"
)

func TestSnapcheck(t *testing.T) {
	vettest.Run(t, "testdata", snapcheck.Analyzer, "snapcheck1")
}

// TestSnapcheckCrossPackage checks that snapshot, mutate, and publish
// facts cross the package boundary.
func TestSnapcheckCrossPackage(t *testing.T) {
	vettest.RunMulti(t, "testdata", snapcheck.Analyzer, "snapa", "snapb")
}
