// Package snapcheck1 seeds violations of the epoch/COW discipline along
// with every sanctioned idiom that must stay clean: copy-on-write
// rebuilds, atomic word-wise mutation, and pre-publish initialization.
package snapcheck1

import "sync/atomic"

type node struct {
	val  int
	next *node
}

type box struct {
	head atomic.Pointer[node]
}

// PublishThenWrite initializes before Store (fine) and stomps after
// (the bug class PR 9's epochs introduced).
func (b *box) PublishThenWrite() {
	n := &node{val: 1}
	n.val = 2
	b.head.Store(n)
	n.val = 3 // want `after publish`
}

// MutateLoaded writes through a loaded snapshot.
func (b *box) MutateLoaded() {
	n := b.head.Load()
	n.val = 4 // want `reachable from a published snapshot`
}

// CopyOnWrite is the sanctioned rebuild: read old, build fresh, publish.
func (b *box) CopyOnWrite() {
	old := b.head.Load()
	fresh := &node{val: old.val + 1}
	b.head.Store(fresh)
}

type table struct {
	m atomic.Pointer[map[string]int]
}

// StompMap writes into a map reached through a published pointer.
func (t *table) StompMap() {
	m := *t.m.Load()
	m["k"] = 1 // want `reachable from a published snapshot`
}

// CowMap clones before writing, the COW idiom.
func (t *table) CowMap() {
	old := *t.m.Load()
	fresh := make(map[string]int, len(old)+1)
	for k, v := range old {
		fresh[k] = v
	}
	fresh["k"] = 1
	t.m.Store(&fresh)
}

type list struct {
	s atomic.Pointer[[]int]
}

// AppendInPlace may write into the published backing array.
func (l *list) AppendInPlace() {
	s := *l.s.Load()
	s = append(s, 1) // want `in-place append`
	_ = s
}

type holder struct {
	items atomic.Pointer[[]*node]
}

// RangeMutate writes through elements ranged out of a snapshot.
func (h *holder) RangeMutate() {
	for _, n := range *h.items.Load() {
		n.val = 9 // want `reachable from a published snapshot`
	}
}

// stomp is an in-package mutating helper; its MutateFact makes the call
// below an error.
func stomp(n *node) {
	n.val = 7
}

func (b *box) ViaHelper() {
	n := b.head.Load()
	stomp(n) // want `call mutates`
}

// snap is an in-package snapshot accessor; its SnapFact taints callers.
func (b *box) snap() *node {
	return b.head.Load()
}

func (b *box) ViaSnap() {
	n := b.snap()
	n.val = 8 // want `reachable from a published snapshot`
}

type counter struct{ n int }

// bump mutates its receiver; calling it on snapshot memory is an error.
func (c *counter) bump() {
	c.n++
}

type ctable struct {
	cur atomic.Pointer[counter]
}

func (t *ctable) BadBump() {
	c := t.cur.Load()
	c.bump() // want `call mutates`
}

type words struct{ w [8]uint64 }

// set mutates only through sync/atomic — the sanctioned word-wise idiom;
// no MutateFact, so Ok below stays clean.
func (x *words) set(i int) {
	atomic.OrUint64(&x.w[i], 1)
}

type wtable struct {
	cur atomic.Pointer[words]
}

func (t *wtable) Ok() {
	w := t.cur.Load()
	w.set(3)
}
