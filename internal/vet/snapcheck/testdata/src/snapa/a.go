// Package snapa is the upstream half of the cross-package snapcheck
// fixtures: it owns the atomic pointer and exports a snapshot accessor,
// a publisher, and a mutator, each carrying its fact.
package snapa

import "sync/atomic"

type Node struct{ Val int }

type Box struct {
	head atomic.Pointer[Node]
}

// Snapshot returns published memory: SnapFact.
func (b *Box) Snapshot() *Node {
	return b.head.Load()
}

// Publish stores its argument: PublishFact on param 0.
func (b *Box) Publish(n *Node) {
	b.head.Store(n)
}

// Stomp writes through its argument: MutateFact on param 0.
func Stomp(n *Node) {
	n.Val = 1
}
