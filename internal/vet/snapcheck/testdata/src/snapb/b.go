// Package snapb consumes snapa purely through its exported facts: the
// taint, publish, and mutate information all crosses the package
// boundary.
package snapb

import "snapa"

func Bad(b *snapa.Box) {
	n := b.Snapshot()
	n.Val = 2      // want `reachable from a published snapshot`
	snapa.Stomp(n) // want `call mutates`
}

func BadPublish(b *snapa.Box) {
	n := &snapa.Node{}
	n.Val = 1 // pre-publish initialization is fine
	b.Publish(n)
	n.Val = 3 // want `after publish`
}

func Good(b *snapa.Box) {
	old := b.Snapshot()
	fresh := &snapa.Node{Val: old.Val + 1}
	b.Publish(fresh)
}
