// Package snapcheck defines an analyzer enforcing the epoch/COW
// discipline introduced with the lock-free read path: memory published
// through an atomic pointer is immutable, and readers holding a loaded
// snapshot may not write through it.
//
// The analyzer runs a forward pass over each function tracking two
// taints. A variable becomes *published* when its address flows into
// `atomic.Pointer.Store` (also Swap/CompareAndSwap, and functions
// fact-marked as publishing); writes through it after that point are
// errors — the copy-on-write idiom builds and fills the value first and
// publishes last. A variable becomes *snapshot-tainted* when it is bound
// to the result of an atomic `Load`, to a call into a fact-marked
// snapshot accessor, or to a reference-typed projection (field, element,
// deref, range) of either; writes, in-place appends, and calls into
// fact-marked mutators through tainted values are errors at any point.
//
// Three facts carry the discipline across package boundaries:
//
//   - SnapFact marks functions whose results alias published memory
//     (bloomarray's snapshot helpers);
//   - MutateFact records which parameters (receiver = -1) a function
//     writes through non-atomically;
//   - PublishFact records which parameters a function publishes.
//
// Mutations through sync/atomic calls are exempt by construction — they
// are calls, not assignments — which is exactly the sanctioned word-wise
// idiom bloom.Filter uses for concurrent bit setting.
package snapcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"ghba/internal/vet/vetutil"
)

// SnapFact marks a function whose result aliases published snapshot
// memory.
type SnapFact struct{}

// AFact marks SnapFact as a serializable analysis fact.
func (*SnapFact) AFact() {}

func (*SnapFact) String() string { return "returns snapshot memory" }

// MutateFact records which parameters a function writes through
// non-atomically; the receiver is index -1.
type MutateFact struct {
	Params []int
}

// AFact marks MutateFact as a serializable analysis fact.
func (*MutateFact) AFact() {}

func (f *MutateFact) String() string { return fmt.Sprintf("mutates params %v", f.Params) }

// PublishFact records which parameters a function publishes through an
// atomic pointer; the receiver is index -1.
type PublishFact struct {
	Params []int
}

// AFact marks PublishFact as a serializable analysis fact.
func (*PublishFact) AFact() {}

func (f *PublishFact) String() string { return fmt.Sprintf("publishes params %v", f.Params) }

// Analyzer is the snapcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "snapcheck",
	Doc:       "forbid writes to memory reachable from snapshots published via atomic.Pointer",
	Run:       run,
	FactTypes: []analysis.Fact{(*SnapFact)(nil), (*MutateFact)(nil), (*PublishFact)(nil)},
}

// fnSummary is the in-package accumulation of a function's facts across
// fixpoint rounds.
type fnSummary struct {
	mutates   map[int]bool
	publishes map[int]bool
	snap      bool
}

type checker struct {
	pass      *analysis.Pass
	rep       *vetutil.Reporter
	summaries map[*types.Func]*fnSummary
	decls     []*ast.FuncDecl
	objs      []*types.Func
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:      pass,
		rep:       vetutil.NewReporter(pass),
		summaries: make(map[*types.Func]*fnSummary),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if vetutil.IsTestFile(pass.Fset, fd.Pos()) {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.summaries[fn] = &fnSummary{mutates: make(map[int]bool), publishes: make(map[int]bool)}
			c.decls = append(c.decls, fd)
			c.objs = append(c.objs, fn)
		}
	}
	// Fixpoint over in-package summaries: mutate/publish/snap properties
	// flow through local call chains (a *Locked helper that stomps its
	// parameter makes its callers' call sites dangerous).
	for round := 0; round < 5; round++ {
		changed := false
		for i, fd := range c.decls {
			if c.analyze(fd, c.objs[i], nil) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Diagnostics round.
	for i, fd := range c.decls {
		c.analyze(fd, c.objs[i], c.rep)
	}
	// Export.
	for _, fn := range c.objs {
		s := c.summaries[fn]
		if s.snap {
			c.pass.ExportObjectFact(fn, &SnapFact{})
		}
		if len(s.mutates) > 0 {
			c.pass.ExportObjectFact(fn, &MutateFact{Params: sortedInts(s.mutates)})
		}
		if len(s.publishes) > 0 {
			c.pass.ExportObjectFact(fn, &PublishFact{Params: sortedInts(s.publishes)})
		}
	}
	return nil, nil
}

// varState tracks one local variable's relation to published memory.
type varState struct {
	tainted   bool
	published bool
}

// funcChecker is the per-function forward pass.
type funcChecker struct {
	c       *checker
	fn      *types.Func
	sum     *fnSummary
	rep     *vetutil.Reporter // nil during fact rounds
	state   map[types.Object]*varState
	params  map[types.Object]int // receiver = -1
	changed bool
}

// analyze walks one function; it reports diagnostics when rep is non-nil
// and returns whether the function's summary changed.
func (c *checker) analyze(fd *ast.FuncDecl, fn *types.Func, rep *vetutil.Reporter) bool {
	fc := &funcChecker{
		c:      c,
		fn:     fn,
		sum:    c.summaries[fn],
		rep:    rep,
		state:  make(map[types.Object]*varState),
		params: make(map[types.Object]int),
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		if obj := c.pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]; obj != nil {
			fc.params[obj] = -1
		}
	}
	i := 0
	for _, fld := range fd.Type.Params.List {
		for _, name := range fld.Names {
			if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
				fc.params[obj] = i
			}
			i++
		}
		if len(fld.Names) == 0 {
			i++
		}
	}
	fc.block(fd.Body)
	return fc.changed
}

func (fc *funcChecker) info() *types.Info { return fc.c.pass.TypesInfo }

func (fc *funcChecker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		fc.stmt(s)
	}
}

func (fc *funcChecker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		fc.block(s)
	case *ast.ExprStmt:
		fc.expr(s.X)
	case *ast.AssignStmt:
		fc.assign(s)
	case *ast.IncDecStmt:
		fc.expr(s.X)
		fc.writeThrough(s.X, s.Pos())
	case *ast.IfStmt:
		fc.stmt(s.Init)
		fc.expr(s.Cond)
		fc.stmt(s.Body)
		fc.stmt(s.Else)
	case *ast.ForStmt:
		fc.stmt(s.Init)
		fc.expr(s.Cond)
		fc.stmt(s.Body)
		fc.stmt(s.Post)
	case *ast.RangeStmt:
		fc.expr(s.X)
		if fc.taintOf(s.X) {
			fc.bindRangeVar(s.Key)
			fc.bindRangeVar(s.Value)
		}
		fc.stmt(s.Body)
	case *ast.SwitchStmt:
		fc.stmt(s.Init)
		fc.expr(s.Tag)
		fc.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		fc.stmt(s.Init)
		fc.stmt(s.Assign)
		fc.stmt(s.Body)
	case *ast.SelectStmt:
		fc.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			fc.expr(e)
		}
		for _, st := range s.Body {
			fc.stmt(st)
		}
	case *ast.CommClause:
		fc.stmt(s.Comm)
		for _, st := range s.Body {
			fc.stmt(st)
		}
	case *ast.DeferStmt:
		fc.expr(s.Call)
	case *ast.GoStmt:
		fc.expr(s.Call)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			fc.expr(r)
			if fc.taintOf(r) && !fc.sum.snap {
				fc.sum.snap = true
				fc.changed = true
			}
		}
	case *ast.SendStmt:
		fc.expr(s.Chan)
		fc.expr(s.Value)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				fc.expr(v)
			}
			if len(vs.Names) == len(vs.Values) {
				for i, name := range vs.Names {
					fc.bindIdent(name, fc.taintOf(vs.Values[i]), false)
				}
			}
		}
	case *ast.LabeledStmt:
		fc.stmt(s.Stmt)
	}
}

func (fc *funcChecker) bindRangeVar(e ast.Expr) {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := fc.info().ObjectOf(id)
	if obj == nil || !refTyped(obj.Type()) {
		return
	}
	fc.state[obj] = &varState{tainted: true}
}

func (fc *funcChecker) bindIdent(id *ast.Ident, tainted, published bool) {
	if id.Name == "_" {
		return
	}
	obj := fc.info().ObjectOf(id)
	if obj == nil {
		return
	}
	if tainted || published {
		fc.state[obj] = &varState{tainted: tainted, published: published}
	} else {
		delete(fc.state, obj)
	}
}

func (fc *funcChecker) assign(s *ast.AssignStmt) {
	for _, rhs := range s.Rhs {
		fc.expr(rhs)
	}
	paired := len(s.Lhs) == len(s.Rhs)
	for i, lhs := range s.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if s.Tok == token.DEFINE || s.Tok == token.ASSIGN {
				if paired {
					// Copies propagate both taints; anything else resets.
					t, p := fc.taintOf(s.Rhs[i]), false
					if rid, ok := unparen(s.Rhs[i]).(*ast.Ident); ok {
						if st := fc.lookup(rid); st != nil {
							t, p = st.tainted, st.published
						}
					}
					fc.bindIdent(id, t, p)
				} else if len(s.Rhs) == 1 {
					// Multi-assign from one call: taint all ref-typed LHS
					// if the call is a snapshot source.
					fc.bindIdent(id, fc.taintOf(s.Rhs[0]), false)
				}
			}
			continue
		}
		fc.expr(lhs)
		fc.writeThrough(lhs, lhs.Pos())
	}
}

func (fc *funcChecker) lookup(id *ast.Ident) *varState {
	obj := fc.info().ObjectOf(id)
	if obj == nil {
		return nil
	}
	return fc.state[obj]
}

// writeThrough handles a store whose destination is a projection (field,
// element, deref) of some base variable.
func (fc *funcChecker) writeThrough(lhs ast.Expr, pos token.Pos) {
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj := fc.info().ObjectOf(root)
	if obj == nil {
		return
	}
	if st := fc.state[obj]; st != nil {
		if fc.rep != nil {
			if st.published {
				fc.rep.Reportf(pos, "write to %s after publish: snapshot memory is immutable (copy-on-write)", render(lhs))
			} else {
				fc.rep.Reportf(pos, "write to %s: memory reachable from a published snapshot (copy-on-write)", render(lhs))
			}
		}
		return
	}
	if idx, ok := fc.params[obj]; ok && pointerish(obj.Type()) {
		if !fc.sum.mutates[idx] {
			fc.sum.mutates[idx] = true
			fc.changed = true
		}
	}
}

// expr walks an expression tree, handling every call found inside it.
func (fc *funcChecker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fc.call(n)
		case *ast.FuncLit:
			fc.block(n.Body)
			return false
		}
		return true
	})
}

func (fc *funcChecker) call(call *ast.CallExpr) {
	// Built-in append: appending to snapshot memory writes in place.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if b, ok := fc.info().Types[call.Fun]; ok && b.IsBuiltin() && len(call.Args) > 0 {
			if fc.taintOf(call.Args[0]) && fc.rep != nil {
				fc.rep.Reportf(call.Pos(), "in-place append to %s: memory reachable from a published snapshot (copy to a fresh slice)", render(call.Args[0]))
			}
		}
		return
	}

	// atomic.Pointer Store/Swap/CompareAndSwap publish their value
	// argument.
	if idx, ok := atomicPublishArg(fc.info(), call); ok {
		if idx < len(call.Args) {
			fc.markPublished(call.Args[idx])
		}
		return
	}

	callee := typeutil.StaticCallee(fc.info(), call)
	if callee == nil {
		return
	}
	callee = callee.Origin()
	mut, pub := fc.factsFor(callee)
	if len(mut) == 0 && len(pub) == 0 {
		return
	}
	argAt := func(idx int) ast.Expr {
		if idx == -1 {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		if idx < len(call.Args) {
			return call.Args[idx]
		}
		return nil
	}
	for _, idx := range mut {
		arg := argAt(idx)
		if arg == nil {
			continue
		}
		if fc.taintOf(arg) {
			if fc.rep != nil {
				fc.rep.Reportf(call.Pos(), "call mutates %s: memory reachable from a published snapshot (copy-on-write)", render(arg))
			}
			continue
		}
		// Mutation of our own parameter through a helper propagates the
		// mutate fact upward.
		if root := rootIdent(arg); root != nil {
			if obj := fc.info().ObjectOf(root); obj != nil {
				if pidx, ok := fc.params[obj]; ok && pointerish(obj.Type()) && !fc.sum.mutates[pidx] {
					fc.sum.mutates[pidx] = true
					fc.changed = true
				}
			}
		}
	}
	for _, idx := range pub {
		if arg := argAt(idx); arg != nil {
			fc.markPublished(arg)
		}
	}
}

// markPublished flags the base variable of a published expression; later
// writes through it are reported. Publishing one of our own parameters
// exports a PublishFact.
func (fc *funcChecker) markPublished(arg ast.Expr) {
	root := rootIdent(arg)
	if root == nil {
		return
	}
	obj := fc.info().ObjectOf(root)
	if obj == nil {
		return
	}
	if idx, ok := fc.params[obj]; ok {
		if !fc.sum.publishes[idx] {
			fc.sum.publishes[idx] = true
			fc.changed = true
		}
	}
	st := fc.state[obj]
	if st == nil {
		st = &varState{}
		fc.state[obj] = st
	}
	st.published = true
}

// factsFor merges in-package summaries with imported facts.
func (fc *funcChecker) factsFor(fn *types.Func) (mutates, publishes []int) {
	if s, ok := fc.c.summaries[fn]; ok {
		return sortedInts(s.mutates), sortedInts(s.publishes)
	}
	var mf MutateFact
	if fc.c.pass.ImportObjectFact(fn, &mf) {
		mutates = mf.Params
	}
	var pf PublishFact
	if fc.c.pass.ImportObjectFact(fn, &pf) {
		publishes = pf.Params
	}
	return mutates, publishes
}

// taintOf reports whether e evaluates to memory reachable from a
// published snapshot.
func (fc *funcChecker) taintOf(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		st := fc.lookup(e)
		return st != nil && (st.tainted || st.published)
	case *ast.ParenExpr:
		return fc.taintOf(e.X)
	case *ast.StarExpr:
		return refTyped(fc.info().TypeOf(e)) && fc.taintOf(e.X)
	case *ast.SelectorExpr:
		if sel, ok := fc.info().Selections[e]; !ok || sel.Kind() != types.FieldVal {
			return false
		}
		return refTyped(fc.info().TypeOf(e)) && fc.taintOf(e.X)
	case *ast.IndexExpr:
		return refTyped(fc.info().TypeOf(e)) && fc.taintOf(e.X)
	case *ast.SliceExpr:
		return fc.taintOf(e.X)
	case *ast.TypeAssertExpr:
		return fc.taintOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return fc.taintOf(e.X)
		}
	case *ast.CallExpr:
		if isAtomicLoad(fc.info(), e) {
			return true
		}
		if callee := typeutil.StaticCallee(fc.info(), e); callee != nil {
			callee = callee.Origin()
			if s, ok := fc.c.summaries[callee]; ok {
				return s.snap
			}
			var sf SnapFact
			return fc.c.pass.ImportObjectFact(callee, &sf)
		}
	}
	return false
}

// ---- helpers ----

// atomicNamed reports whether t is a named type in sync/atomic.
func atomicNamed(t types.Type) (string, bool) {
	t = types.Unalias(t)
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	return obj.Name(), true
}

// isAtomicLoad reports whether call is a Load on an atomic box type.
func isAtomicLoad(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return false
	}
	_, ok = atomicNamed(info.TypeOf(sel.X))
	return ok
}

// atomicPublishArg returns the index of the value argument when call is
// a Store/Swap/CompareAndSwap on an atomic box type.
func atomicPublishArg(info *types.Info, call *ast.CallExpr) (int, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0, false
	}
	var idx int
	switch sel.Sel.Name {
	case "Store", "Swap":
		idx = 0
	case "CompareAndSwap":
		idx = 1
	default:
		return 0, false
	}
	if _, ok := atomicNamed(info.TypeOf(sel.X)); !ok {
		return 0, false
	}
	return idx, true
}

// rootIdent returns the identifier at the base of a projection chain
// (selectors, indexes, derefs, slices); nil when the chain crosses a
// call or anything else.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// refTyped reports whether t is a reference type through which snapshot
// memory stays reachable.
func refTyped(t types.Type) bool {
	if t == nil {
		return false
	}
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// pointerish reports whether mutations through a value of type t are
// visible to the caller.
func pointerish(t types.Type) bool { return refTyped(t) }

func render(e ast.Expr) string {
	if s := vetutil.RecvBase(e); s != "" {
		return s
	}
	return "expression"
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func sortedInts(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
