// Package vetutil carries the plumbing shared by the ghbavet analyzers:
// suppression comments and receiver-expression matching.
//
// Suppression: a diagnostic is dropped when the offending line, or the line
// directly above it, carries a comment of the form
//
//	//ghbavet:ignore reason...
//
// The reason is mandatory in spirit (reviewers will ask) but not enforced.
package vetutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// ignoreDirective is the comment prefix that suppresses a finding.
const ignoreDirective = "//ghbavet:ignore"

// Reporter filters diagnostics through the //ghbavet:ignore directive.
type Reporter struct {
	pass    *analysis.Pass
	ignored map[string]map[int]bool // filename → set of suppressed lines
}

// NewReporter scans the pass's files for ignore directives.
func NewReporter(pass *analysis.Pass) *Reporter {
	r := &Reporter{pass: pass, ignored: make(map[string]map[int]bool)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				lines := r.ignored[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					r.ignored[pos.Filename] = lines
				}
				// Suppress the directive's own line and the next one, so the
				// directive works both trailing the offending line and on a
				// line of its own above it.
				lines[pos.Line] = true
				lines[pos.Line+1] = true
			}
		}
	}
	return r
}

// Reportf emits a diagnostic unless an ignore directive covers pos.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	p := r.pass.Fset.Position(pos)
	if lines := r.ignored[p.Filename]; lines != nil && lines[p.Line] {
		return
	}
	r.pass.Reportf(pos, format, args...)
}

// RecvBase returns the textual base of a selector chain — for c.mu.Lock()
// it returns "c"; for c.sub.mu.Lock() it returns "c.sub". Two lock sites
// guard the same state exactly when their bases render identically inside
// one function body, which is the invariant the lexical checks rely on.
func RecvBase(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := RecvBase(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return RecvBase(e.X)
	case *ast.IndexExpr:
		base := RecvBase(e.X)
		if base == "" {
			return ""
		}
		return base + "[...]"
	}
	return ""
}

// MutexMethod decomposes a call into (lock-expression base, mutex field
// path, method) when it is a Lock/RLock/Unlock/RUnlock call on a
// sync.Mutex or sync.RWMutex value, e.g. c.mu.RLock() → ("c", "c.mu",
// "RLock"). ok is false for anything else.
func MutexMethod(info *types.Info, call *ast.CallExpr) (base, mutex, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	method = sel.Sel.Name
	switch method {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", "", false
	}
	if !isSyncMutex(info.TypeOf(sel.X)) {
		return "", "", "", false
	}
	mutex = RecvBase(sel.X)
	if mutex == "" {
		return "", "", "", false
	}
	if i := strings.LastIndex(mutex, "."); i >= 0 {
		base = mutex[:i]
	}
	return base, mutex, method, true
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// IsTestFile reports whether pos lies in a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
