package wireguard_test

import (
	"testing"

	"ghba/internal/vet/vettest"
	"ghba/internal/vet/wireguard"
)

func TestWireguard(t *testing.T) {
	vettest.Run(t, "testdata", wireguard.Analyzer, "proto", "prototest")
}
