// Package wireguard keeps the wire protocol fully wired.
//
// Every opcode in internal/proto's const block (opQueryEntry, opLookupBatch,
// ...) implies four obligations that live in four different files, which is
// exactly how a new batch opcode ships half-finished: the const compiles,
// the client sends it, and the daemon answers "unknown message type" at
// runtime. For each constant named op* the analyzer requires:
//
//  1. an entry in the opNames table (the per-opcode RPC counters and the
//     wire bench's evidence are indexed by it),
//  2. a case clause in a server dispatch switch (the daemon must answer),
//  3. a client-side reference outside the table and the dispatch — an
//     opcode nobody sends is dead weight or a symptom of a half-rename,
//  4. when test files are in the compilation unit: a reference from a
//     _test.go file, i.e. a round-trip or fuzz test exercising its codec
//     pair (the wire round-trip suite references each opcode by name).
//
// Checks 1–3 run on the plain package; check 4 runs only on the [test]
// variant so go vet reports each finding once. Suppress a deliberately
// unreferenced opcode (e.g. one reserved for a wire-compat window) with
// //ghbavet:ignore <reason>.
package wireguard

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"ghba/internal/vet/vetutil"
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

var Analyzer = &analysis.Analyzer{
	Name:     "wireguard",
	Doc:      "every proto opcode needs an opNames entry, a dispatch case, a sender, and a round-trip test",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// opcodeUse classifies where an opcode constant is referenced.
type opcodeUse struct {
	inNamesTable bool // key of a composite-literal entry
	inDispatch   bool // expression of a case clause
	inClient     bool // any other non-test reference
	inTest       bool // any reference from a _test.go file
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() != "proto" {
		return nil, nil
	}
	rep := vetutil.NewReporter(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	hasTestFiles := false
	for _, f := range pass.Files {
		if vetutil.IsTestFile(pass.Fset, f.Pos()) {
			hasTestFiles = true
			break
		}
	}

	// Collect the opcode constants declared in this package (non-test files).
	opcodes := make(map[*types.Const]*ast.Ident)
	ins.Preorder([]ast.Node{(*ast.ValueSpec)(nil)}, func(n ast.Node) {
		spec := n.(*ast.ValueSpec)
		for _, name := range spec.Names {
			if !isOpcodeName(name.Name) {
				continue
			}
			c, isConst := pass.TypesInfo.Defs[name].(*types.Const)
			if !isConst || vetutil.IsTestFile(pass.Fset, name.Pos()) {
				continue
			}
			if basic, isBasic := c.Type().Underlying().(*types.Basic); !isBasic || basic.Info()&types.IsInteger == 0 {
				continue
			}
			opcodes[c] = name
		}
	})
	if len(opcodes) == 0 {
		return nil, nil
	}

	// Classify every use by its syntactic context.
	uses := make(map[*types.Const]*opcodeUse, len(opcodes))
	for c := range opcodes {
		uses[c] = &opcodeUse{}
	}
	ins.WithStack([]ast.Node{(*ast.Ident)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		id := n.(*ast.Ident)
		c, isConst := pass.TypesInfo.Uses[id].(*types.Const)
		if !isConst {
			return true
		}
		use, tracked := uses[c]
		if !tracked {
			return true
		}
		if vetutil.IsTestFile(pass.Fset, id.Pos()) {
			use.inTest = true
			return true
		}
		switch classifyUse(id, stack) {
		case "names":
			use.inNamesTable = true
		case "dispatch":
			use.inDispatch = true
		default:
			use.inClient = true
		}
		return true
	})

	// Report in declaration order for stable output.
	consts := make([]*types.Const, 0, len(opcodes))
	for c := range opcodes {
		consts = append(consts, c)
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i].Pos() < consts[j].Pos() })

	for _, c := range consts {
		id, use := opcodes[c], uses[c]
		if hasTestFiles {
			// The [test] variant owns exactly one check, so go vet prints
			// each finding once across the two compilation units.
			if !use.inTest {
				rep.Reportf(id.Pos(), "opcode %s has no round-trip or fuzz test referencing it; add it to the wire round-trip suite before shipping", id.Name)
			}
			continue
		}
		if !use.inNamesTable {
			rep.Reportf(id.Pos(), "opcode %s is not registered in the opNames table; its RPC counter and wire-bench label will read op_%d", id.Name, constValue(c))
		}
		if !use.inDispatch {
			rep.Reportf(id.Pos(), "opcode %s has no server dispatch case; daemons will answer it with an unknown-message error", id.Name)
		}
		if !use.inClient {
			rep.Reportf(id.Pos(), "opcode %s is never sent by any client path; half-wired or dead — remove it or finish wiring it", id.Name)
		}
	}
	return nil, nil
}

// isOpcodeName matches the const block convention: opQueryEntry, opPing...
func isOpcodeName(name string) bool {
	if !strings.HasPrefix(name, "op") || len(name) < 3 {
		return false
	}
	r := name[2]
	return r >= 'A' && r <= 'Z'
}

// classifyUse looks up the stack to decide what role a reference plays.
func classifyUse(id *ast.Ident, stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.KeyValueExpr:
			if parent.Key == id {
				if i > 0 {
					if _, isLit := stack[i-1].(*ast.CompositeLit); isLit {
						return "names"
					}
				}
			}
		case *ast.CaseClause:
			for _, expr := range parent.List {
				if expr.Pos() <= id.Pos() && id.Pos() < expr.End() {
					return "dispatch"
				}
			}
		case *ast.FuncDecl, *ast.File:
			return "client"
		}
	}
	return "client"
}

func constValue(c *types.Const) int64 {
	if c.Val() == nil {
		return -1
	}
	if v, exact := constant.Int64Val(constant.ToInt(c.Val())); exact {
		return v
	}
	return -1
}
