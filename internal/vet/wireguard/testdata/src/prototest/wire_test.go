package proto

import "testing"

// TestPingRoundTrip covers opPing; nothing covers opUntested.
func TestPingRoundTrip(t *testing.T) {
	if dispatch(opPing) != "pong" {
		t.Fatal("ping did not round-trip")
	}
}
