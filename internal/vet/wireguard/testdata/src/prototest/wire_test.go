package proto

import "testing"

// TestPingRoundTrip covers opPing; nothing covers opUntested.
func TestPingRoundTrip(t *testing.T) {
	if dispatch(opPing) != "pong" {
		t.Fatal("ping did not round-trip")
	}
}

// TestHeartbeatRoundTrip covers opHeartbeat, the detector-probe opcode.
func TestHeartbeatRoundTrip(t *testing.T) {
	if dispatch(opHeartbeat) != "alive" {
		t.Fatal("heartbeat did not round-trip")
	}
}
