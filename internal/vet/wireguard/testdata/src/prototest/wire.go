// Package proto (fixture, [test] variant) exercises wireguard's
// round-trip-coverage check: with test files in the compilation unit, each
// opcode must be referenced from one.
package proto

const (
	opPing     uint8 = iota + 1
	opUntested       // want `opcode opUntested has no round-trip or fuzz test referencing it`
)

var opNames = [...]string{
	opPing:     "ping",
	opUntested: "untested",
}

func dispatch(op uint8) string {
	switch op {
	case opPing:
		return "pong"
	case opUntested:
		return "untested"
	}
	return "unknown"
}

func send(op uint8) {}

func client() {
	send(opPing)
	send(opUntested)
}
