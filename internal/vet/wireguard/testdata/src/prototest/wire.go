// Package proto (fixture, [test] variant) exercises wireguard's
// round-trip-coverage check: with test files in the compilation unit, each
// opcode must be referenced from one.
package proto

const (
	opPing      uint8 = iota + 1
	opUntested        // want `opcode opUntested has no round-trip or fuzz test referencing it`
	opHeartbeat       // fully covered: a probe-loop opcode counts like any other
)

var opNames = [...]string{
	opPing:      "ping",
	opUntested:  "untested",
	opHeartbeat: "heartbeat",
}

func dispatch(op uint8) string {
	switch op {
	case opPing:
		return "pong"
	case opUntested:
		return "untested"
	case opHeartbeat:
		return "alive"
	}
	return "unknown"
}

func send(op uint8) {}

func client() {
	send(opPing)
	send(opUntested)
}

// probe models a failure detector's heartbeat loop — a client path that is
// not the main dispatch helper must still satisfy the sent-by-client rule.
func probe() {
	send(opHeartbeat)
}
