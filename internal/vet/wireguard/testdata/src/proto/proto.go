// Package proto (fixture) exercises wireguard's plain-package checks: the
// names table, the dispatch switch, and the client send path.
package proto

const (
	opPing uint8 = iota + 1
	opQuery
	opHalf         // want `opcode opHalf is not registered in the opNames table` `opcode opHalf has no server dispatch case` `opcode opHalf is never sent by any client path`
	opNameless     // want `opcode opNameless is not registered in the opNames table; its RPC counter and wire-bench label will read op_4`
	opUnsent       // want `opcode opUnsent is never sent by any client path`
	opUndispatched // want `opcode opUndispatched has no server dispatch case`
)

var opNames = [...]string{
	opPing:         "ping",
	opQuery:        "query",
	opUnsent:       "unsent",
	opUndispatched: "undispatched",
}

// dispatch is the daemon's switch.
func dispatch(op uint8) string {
	switch op {
	case opPing:
		return "pong"
	case opQuery:
		return "result"
	case opNameless:
		return "anon"
	case opUnsent:
		return "never"
	}
	return "unknown"
}

// send is the client side.
func send(op uint8) {}

func client() {
	send(opPing)
	send(opQuery)
	send(opNameless)
	send(opUndispatched)
}
