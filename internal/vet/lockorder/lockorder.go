// Package lockorder defines a cross-package lock-acquisition-order
// analyzer.
//
// Each package is summarized into facts: for every function, the set of
// lock classes it may (transitively) acquire, and the lock classes it
// holds when it invokes one of its func-typed parameters (the callback
// pattern used by core's sharded homes map). A lock class names the
// static identity of a mutex — `pkg.Type.field` for a struct field,
// `pkg.Type.field[]` for an element of a mutex array (stripes), and
// `pkg.var` for a package-level mutex. Local mutexes have no class and
// are ignored: they cannot participate in a cross-function ordering.
//
// While walking a function body the analyzer tracks the lexically held
// set: direct Lock/RLock and Unlock/RUnlock calls push and pop classes,
// a method whose name ends in Locked starts with its receiver's mu held
// (the repo-wide *Locked contract that lockcheck enforces), and deferred
// calls are processed with the held set at the defer statement. Every
// acquisition observed while other classes are held contributes a
// directed edge held→acquired. Calls into other functions contribute
// edges to everything the callee may transitively acquire, using the
// exported facts for out-of-package callees; function-literal arguments
// are walked with the callee's published callback-held set added, so an
// edge like homeShard.mu→Node.mu materializes at the putThen call site.
//
// Edges are exported both as object facts on the type that owns the
// source lock (those re-export transitively) and as a package fact
// (visible to direct importers). Each package then checks the merged
// graph and reports any cycle that one of its own edges closes, with the
// reverse witness path spelled out position by position. Cycles whose
// edges all live in sibling packages that never see each other's facts
// are caught by `ghbavet -lockgraph`, which loads the whole repo in one
// process and asserts global acyclicity.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"reflect"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"ghba/internal/vet/vetutil"
)

// Edge is one observed lock-order constraint: To was (possibly
// transitively) acquired while From was held.
type Edge struct {
	From string // lock class held
	To   string // lock class acquired under it
	In   string // function in which the acquisition was observed
	Pos  string // short position (base.go:line) of the acquiring site
}

// ParamCall records that a function invokes its Index-th parameter while
// holding the given lock classes.
type ParamCall struct {
	Index int
	Held  []string
}

// FnLocks is the per-function fact: the transitive set of lock classes
// the function may acquire, and the callbacks it runs under locks.
type FnLocks struct {
	Acquires   []string
	ParamCalls []ParamCall
}

// AFact marks FnLocks as a serializable analysis fact.
func (*FnLocks) AFact() {}

func (f *FnLocks) String() string {
	return fmt.Sprintf("acquires(%s)", strings.Join(f.Acquires, ","))
}

// TypeLocks attaches the edges rooted at a type's locks to the type
// itself, so they re-export transitively with the type.
type TypeLocks struct {
	Edges []Edge
}

// AFact marks TypeLocks as a serializable analysis fact.
func (*TypeLocks) AFact() {}

func (f *TypeLocks) String() string { return fmt.Sprintf("lockedges(%d)", len(f.Edges)) }

// PkgLocks carries every edge observed in a package, including edges
// rooted at another package's locks (callback inversions).
type PkgLocks struct {
	Edges []Edge
}

// AFact marks PkgLocks as a serializable analysis fact.
func (*PkgLocks) AFact() {}

func (f *PkgLocks) String() string { return fmt.Sprintf("lockedges(%d)", len(f.Edges)) }

// Graph is the analyzer's per-package result: the edges observed in that
// package, for the -lockgraph driver to merge.
type Graph struct {
	Edges []Edge
}

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name:       "lockorder",
	Doc:        "detect lock-acquisition-order cycles across packages via exported lock facts",
	Run:        run,
	FactTypes:  []analysis.Fact{(*FnLocks)(nil), (*TypeLocks)(nil), (*PkgLocks)(nil)},
	ResultType: reflect.TypeOf((*Graph)(nil)),
}

// acqEvent is a direct mutex acquisition observed under a held set.
type acqEvent struct {
	held  []string
	class string
	pos   token.Pos
}

// callEvent is a static call observed under a held set.
type callEvent struct {
	held   []string
	callee *types.Func
	pos    token.Pos
}

// funcInfo accumulates one function's walk results.
type funcInfo struct {
	fn         *types.Func
	decl       *ast.FuncDecl
	entry      []string
	acquires   []acqEvent
	calls      []callEvent
	paramCalls []ParamCall
}

type checker struct {
	pass   *analysis.Pass
	rep    *vetutil.Reporter
	funcs  map[*types.Func]*funcInfo
	order  []*funcInfo
	owners map[string]types.Object
	memo   map[*types.Func][]string
	busy   map[*types.Func]bool
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:   pass,
		rep:    vetutil.NewReporter(pass),
		funcs:  make(map[*types.Func]*funcInfo),
		owners: make(map[string]types.Object),
		memo:   make(map[*types.Func][]string),
		busy:   make(map[*types.Func]bool),
	}
	c.collect()
	// Round 1 fills ParamCalls so that round 2 can walk function-literal
	// arguments of in-package callees under the right held set.
	for _, fi := range c.order {
		c.walk(fi, false)
	}
	for _, fi := range c.order {
		fi.acquires, fi.calls = nil, nil
		c.walk(fi, true)
	}
	c.exportFnFacts()
	local := c.localEdges()
	c.exportEdgeFacts(local)
	c.checkCycles(local)

	g := &Graph{Edges: make([]Edge, len(local))}
	for i, e := range local {
		g.Edges[i] = e.Edge
	}
	return g, nil
}

// collect finds every function declaration with a body, outside test
// files, and seeds the *Locked entry-held contract.
func (c *checker) collect() {
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if vetutil.IsTestFile(c.pass.Fset, fd.Pos()) {
				continue
			}
			fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{fn: fn, decl: fd}
			if strings.HasSuffix(fd.Name.Name, "Locked") && fd.Recv != nil {
				if cls, owner := receiverMuClass(fn); cls != "" {
					fi.entry = []string{cls}
					c.noteOwner(cls, owner)
				}
			}
			c.funcs[fn] = fi
			c.order = append(c.order, fi)
		}
	}
}

// receiverMuClass returns the lock class of the receiver type's `mu`
// field, the mutex the *Locked naming contract refers to.
func receiverMuClass(fn *types.Func) (string, types.Object) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", nil
	}
	named, ok := deref(sig.Recv().Type()).(*types.Named)
	if !ok {
		return "", nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return "", nil
	}
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if fld.Name() == "mu" && isMutex(fld.Type()) {
			tn := named.Obj()
			return tn.Pkg().Path() + "." + tn.Name() + ".mu", tn
		}
	}
	return "", nil
}

func (c *checker) noteOwner(class string, owner types.Object) {
	if owner != nil && owner.Pkg() == c.pass.Pkg {
		c.owners[class] = owner
	}
}

// ---- body walking ----

type localClass struct {
	class string
	owner types.Object
}

type walker struct {
	c        *checker
	fi       *funcInfo
	held     []string
	locals   map[types.Object]localClass
	params   map[types.Object]int
	useFacts bool
}

func (c *checker) walk(fi *funcInfo, useFacts bool) {
	w := &walker{
		c:        c,
		fi:       fi,
		held:     append([]string(nil), fi.entry...),
		locals:   make(map[types.Object]localClass),
		params:   make(map[types.Object]int),
		useFacts: useFacts,
	}
	if p := fi.decl.Type.Params; p != nil {
		i := 0
		for _, fld := range p.List {
			for _, name := range fld.Names {
				if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
					if _, ok := obj.Type().Underlying().(*types.Signature); ok {
						w.params[obj] = i
					}
				}
				i++
			}
			if len(fld.Names) == 0 {
				i++
			}
		}
	}
	w.stmts(fi.decl.Body.List)
}

func (w *walker) info() *types.Info { return w.c.pass.TypesInfo }

func (w *walker) snapshot() []string { return append([]string(nil), w.held...) }

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		saved := w.snapshot()
		w.stmt(s.Body)
		w.held = append([]string(nil), saved...)
		if s.Else != nil {
			w.stmt(s.Else)
			w.held = saved
		}
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		saved := w.snapshot()
		w.stmt(s.Body)
		w.stmt(s.Post)
		w.held = saved
	case *ast.RangeStmt:
		w.expr(s.X)
		saved := w.snapshot()
		w.stmt(s.Body)
		w.held = saved
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.expr(s.Tag)
		w.caseBodies(s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		w.caseBodies(s.Body)
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			saved := w.snapshot()
			w.stmt(cc.Comm)
			w.stmts(cc.Body)
			w.held = saved
		}
	case *ast.DeferStmt:
		// Deferred unlocks keep the lock held for the rest of the body
		// (the lexical model lockcheck also uses); anything else deferred
		// runs with at most the locks held here.
		if _, _, method, ok := vetutil.MutexMethod(w.info(), s.Call); ok {
			if method == "Lock" || method == "RLock" {
				w.handleCall(s.Call, false)
			}
			return
		}
		w.handleCall(s.Call, false)
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's held set.
		w.handleGo(s.Call)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.expr(rhs)
		}
		w.trackAliases(s)
		for _, lhs := range s.Lhs {
			if _, ok := lhs.(*ast.Ident); !ok {
				w.expr(lhs)
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				w.expr(v)
			}
			if len(vs.Names) == len(vs.Values) {
				for i, name := range vs.Names {
					w.trackAlias(name, vs.Values[i])
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r)
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

func (w *walker) caseBodies(body *ast.BlockStmt) {
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.expr(e)
		}
		saved := w.snapshot()
		w.stmts(cc.Body)
		w.held = saved
	}
}

// trackAliases records local variables that alias a classed mutex, so
// `stripe := &c.shipStripes[i]; stripe.Lock()` resolves to the stripes
// class.
func (w *walker) trackAliases(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		w.trackAlias(id, s.Rhs[i])
	}
}

func (w *walker) trackAlias(id *ast.Ident, rhs ast.Expr) {
	obj := w.info().ObjectOf(id)
	if obj == nil || !isMutex(obj.Type()) {
		return
	}
	if cls, owner := w.classOf(rhs); cls != "" {
		w.locals[obj] = localClass{class: cls, owner: owner}
	}
}

func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			w.handleCall(n, false)
			return false
		case *ast.FuncLit:
			w.funcLit(n, w.held)
			return false
		}
		return true
	})
}

// funcLit walks a function literal's body under the given held set.
// Locals and params of the enclosing function stay visible (closures
// capture them), but held-set changes do not leak back out.
func (w *walker) funcLit(lit *ast.FuncLit, held []string) {
	saved := w.held
	w.held = append([]string(nil), held...)
	w.stmts(lit.Body.List)
	w.held = saved
}

// handleGo processes a go statement: argument expressions evaluate now,
// but the spawned call runs without the caller's locks.
func (w *walker) handleGo(call *ast.CallExpr) {
	for _, arg := range call.Args {
		if lit, ok := arg.(*ast.FuncLit); ok {
			w.funcLit(lit, nil)
		} else {
			w.expr(arg)
		}
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		w.funcLit(lit, nil)
	}
}

func (w *walker) handleCall(call *ast.CallExpr, _ bool) {
	// Direct mutex operation?
	if _, _, method, ok := vetutil.MutexMethod(w.info(), call); ok {
		sel := call.Fun.(*ast.SelectorExpr)
		cls, owner := w.classOf(sel.X)
		if cls == "" {
			return // local mutex: no cross-function identity
		}
		switch method {
		case "Lock", "RLock":
			w.c.noteOwner(cls, owner)
			w.fi.acquires = append(w.fi.acquires, acqEvent{held: w.snapshot(), class: cls, pos: call.Lparen})
			w.held = append(w.held, cls)
		case "Unlock", "RUnlock":
			for i := len(w.held) - 1; i >= 0; i-- {
				if w.held[i] == cls {
					w.held = append(w.held[:i:i], w.held[i+1:]...)
					break
				}
			}
		}
		return
	}

	// Receiver/base expression of the call may itself contain calls.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		w.expr(sel.X)
	} else if _, ok := call.Fun.(*ast.Ident); !ok {
		w.expr(call.Fun)
	}

	callee := typeutil.StaticCallee(w.info(), call)
	if callee != nil {
		callee = origin(callee)
	}

	var pcs []ParamCall
	if callee != nil && w.useFacts {
		pcs = w.c.paramCallsOf(callee)
	}
	heldFor := func(argIdx int) []string {
		held := w.held
		for _, pc := range pcs {
			if pc.Index == argIdx {
				merged := append([]string(nil), held...)
				merged = append(merged, pc.Held...)
				return merged
			}
		}
		return held
	}

	for i, arg := range call.Args {
		if lit, ok := arg.(*ast.FuncLit); ok {
			w.funcLit(lit, heldFor(i))
			continue
		}
		w.expr(arg)
		// A named function passed as a callback: treat it as called under
		// the callee's published callback-held set.
		if w.useFacts {
			if g := funcValue(w.info(), arg); g != nil {
				for _, pc := range pcs {
					if pc.Index == i {
						merged := append(w.snapshot(), pc.Held...)
						w.fi.calls = append(w.fi.calls, callEvent{held: merged, callee: origin(g), pos: arg.Pos()})
					}
				}
			}
		}
	}

	if callee != nil {
		w.fi.calls = append(w.fi.calls, callEvent{held: w.snapshot(), callee: callee, pos: call.Lparen})
		return
	}

	// Dynamic call: is it one of the enclosing function's parameters?
	if id, ok := call.Fun.(*ast.Ident); ok {
		if obj := w.info().ObjectOf(id); obj != nil {
			if idx, ok := w.params[obj]; ok && len(w.held) > 0 {
				w.fi.paramCalls = append(w.fi.paramCalls, ParamCall{Index: idx, Held: w.snapshot()})
			}
		}
	}
}

// classOf resolves the lock class of a mutex-valued expression. The
// second result is the owning object (a TypeName for struct fields, a
// package-level Var), nil when unknown or foreign.
func (w *walker) classOf(e ast.Expr) (string, types.Object) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return w.classOf(e.X)
	case *ast.StarExpr:
		return w.classOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return w.classOf(e.X)
		}
	case *ast.IndexExpr:
		cls, owner := w.classOf(e.X)
		if cls == "" {
			return "", nil
		}
		return cls + "[]", owner
	case *ast.Ident:
		obj := w.info().ObjectOf(e)
		if obj == nil {
			return "", nil
		}
		if v, ok := obj.(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name(), v
			}
			if lc, ok := w.locals[obj]; ok {
				return lc.class, lc.owner
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := w.info().Selections[e]; ok && sel.Kind() == types.FieldVal {
			named, ok := deref(w.info().TypeOf(e.X)).(*types.Named)
			if !ok {
				return "", nil
			}
			tn := named.Obj()
			if tn.Pkg() == nil {
				return "", nil
			}
			return tn.Pkg().Path() + "." + tn.Name() + "." + e.Sel.Name, tn
		}
		if obj := w.info().ObjectOf(e.Sel); obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name(), v
			}
		}
	}
	return "", nil
}

// ---- summaries and facts ----

// acquiresOf returns the transitive set of lock classes fn may acquire,
// from the local walk for in-package functions and from imported facts
// otherwise. Mutual recursion degrades to an under-approximation at the
// cycle's back edge.
func (c *checker) acquiresOf(fn *types.Func) []string {
	if v, ok := c.memo[fn]; ok {
		return v
	}
	if c.busy[fn] {
		return nil
	}
	fi := c.funcs[fn]
	if fi == nil {
		var fact FnLocks
		var out []string
		if c.pass.ImportObjectFact(fn, &fact) {
			out = fact.Acquires
		}
		c.memo[fn] = out
		return out
	}
	c.busy[fn] = true
	set := make(map[string]bool)
	for _, a := range fi.acquires {
		set[a.class] = true
	}
	for _, ce := range fi.calls {
		for _, cls := range c.acquiresOf(ce.callee) {
			set[cls] = true
		}
	}
	c.busy[fn] = false
	out := sortedKeys(set)
	c.memo[fn] = out
	return out
}

func (c *checker) paramCallsOf(fn *types.Func) []ParamCall {
	if fi := c.funcs[fn]; fi != nil {
		return fi.paramCalls
	}
	var fact FnLocks
	if c.pass.ImportObjectFact(fn, &fact) {
		return fact.ParamCalls
	}
	return nil
}

func (c *checker) exportFnFacts() {
	for _, fi := range c.order {
		acq := c.acquiresOf(fi.fn)
		if len(acq) == 0 && len(fi.paramCalls) == 0 {
			continue
		}
		c.pass.ExportObjectFact(fi.fn, &FnLocks{Acquires: acq, ParamCalls: fi.paramCalls})
	}
}

// localEdge pairs an Edge with the token position it was observed at.
type localEdge struct {
	Edge
	pos token.Pos
}

// localEdges derives this package's lock-order edges from the walk
// events, deduplicated by (From, To) keeping the first site.
func (c *checker) localEdges() []localEdge {
	seen := make(map[[2]string]bool)
	var out []localEdge
	add := func(from, to string, pos token.Pos) {
		if from == to {
			return
		}
		key := [2]string{from, to}
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, localEdge{
			Edge: Edge{From: from, To: to, In: "", Pos: c.shortPos(pos)},
			pos:  pos,
		})
	}
	for _, fi := range c.order {
		for _, a := range fi.acquires {
			for _, h := range a.held {
				add(h, a.class, a.pos)
			}
		}
		for _, ce := range fi.calls {
			acq := c.acquiresOf(ce.callee)
			for _, h := range ce.held {
				for _, to := range acq {
					add(h, to, ce.pos)
				}
			}
		}
	}
	// Stamp the observing function name and sort for determinism.
	for i := range out {
		out[i].In = c.enclosingFunc(out[i].pos)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

func (c *checker) enclosingFunc(pos token.Pos) string {
	for _, fi := range c.order {
		if fi.decl.Pos() <= pos && pos <= fi.decl.End() {
			return fi.fn.FullName()
		}
	}
	return c.pass.Pkg.Path()
}

func (c *checker) shortPos(pos token.Pos) string {
	p := c.pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// exportEdgeFacts publishes edges as a TypeLocks fact per owning local
// type (transitive visibility) and one PkgLocks package fact.
func (c *checker) exportEdgeFacts(local []localEdge) {
	if len(local) == 0 {
		return
	}
	byOwner := make(map[types.Object][]Edge)
	var all []Edge
	for _, e := range local {
		all = append(all, e.Edge)
		if owner, ok := c.owners[baseClass(e.From)]; ok {
			byOwner[owner] = append(byOwner[owner], e.Edge)
		}
	}
	var owners []types.Object
	for o := range byOwner {
		owners = append(owners, o)
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i].Name() < owners[j].Name() })
	for _, o := range owners {
		c.pass.ExportObjectFact(o, &TypeLocks{Edges: byOwner[o]})
	}
	c.pass.ExportPackageFact(&PkgLocks{Edges: all})
}

// baseClass strips the array-element suffix so stripe classes share their
// owner with the field class.
func baseClass(cls string) string { return strings.TrimSuffix(cls, "[]") }

// checkCycles merges local edges with every imported edge fact and
// reports each local edge that closes a cycle, with the reverse path.
func (c *checker) checkCycles(local []localEdge) {
	graph := make(map[string]map[string]Edge)
	add := func(e Edge) {
		m := graph[e.From]
		if m == nil {
			m = make(map[string]Edge)
			graph[e.From] = m
		}
		if _, ok := m[e.To]; !ok {
			m[e.To] = e
		}
	}
	for _, e := range local {
		add(e.Edge)
	}
	for _, of := range c.pass.AllObjectFacts() {
		if tl, ok := of.Fact.(*TypeLocks); ok {
			for _, e := range tl.Edges {
				add(e)
			}
		}
	}
	for _, pf := range c.pass.AllPackageFacts() {
		if pl, ok := pf.Fact.(*PkgLocks); ok {
			for _, e := range pl.Edges {
				add(e)
			}
		}
	}

	for _, e := range local {
		path := findPath(graph, e.To, e.From)
		if path == nil {
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "lock order cycle: %s acquired while %s held, but reverse path exists: %s", e.To, e.From, e.To)
		for _, hop := range path {
			fmt.Fprintf(&b, " -> %s (%s, %s)", hop.To, hop.In, hop.Pos)
		}
		c.rep.Reportf(e.pos, "%s", b.String())
	}
}

// findPath returns the edges of a shortest path from src to dst, or nil.
func findPath(graph map[string]map[string]Edge, src, dst string) []Edge {
	type hop struct {
		node string
		via  []Edge
	}
	visited := map[string]bool{src: true}
	queue := []hop{{node: src}}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		next := graph[h.node]
		var tos []string
		for to := range next {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if visited[to] {
				continue
			}
			via := append(append([]Edge(nil), h.via...), next[to])
			if to == dst {
				return via
			}
			visited[to] = true
			queue = append(queue, hop{node: to, via: via})
		}
	}
	return nil
}

// ---- small helpers ----

func deref(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	return t
}

// isMutex reports whether t is sync.Mutex, sync.RWMutex, or a pointer to
// one.
func isMutex(t types.Type) bool {
	named, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func origin(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}

// funcValue resolves an expression used as a function value to its static
// *types.Func, for named functions and method values.
func funcValue(info *types.Info, e ast.Expr) *types.Func {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return funcValue(info, e.X)
	case *ast.Ident:
		if fn, ok := info.ObjectOf(e).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.ObjectOf(e.Sel).(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
