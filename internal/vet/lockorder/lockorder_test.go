package lockorder_test

import (
	"testing"

	"ghba/internal/vet/lockorder"
	"ghba/internal/vet/vettest"
)

func TestLockorder(t *testing.T) {
	vettest.Run(t, "testdata", lockorder.Analyzer, "lockorder1")
}

// TestLockorderCrossPackage runs both halves of a two-package cycle in
// one fact session: locka exports its summaries, lockb closes the cycle.
func TestLockorderCrossPackage(t *testing.T) {
	vettest.RunMulti(t, "testdata", lockorder.Analyzer, "locka", "lockb")
}
