// Package locka is the upstream half of a cross-package lock cycle: it
// owns a lock and a callback runner, like shipq or the sharded homes map.
// It is clean on its own — the inversion only exists once lockb wires the
// callback back into its own lock.
package locka

import "sync"

type A struct{ mu sync.Mutex }

// WithLock runs fn while holding A.mu — exported as a ParamCalls fact so
// downstream packages walk their literals under the right held set.
func (a *A) WithLock(fn func()) {
	a.mu.Lock()
	fn()
	a.mu.Unlock()
}

// Touch acquires and releases A.mu; its Acquires fact gives callers the
// transitive edge.
func (a *A) Touch() {
	a.mu.Lock()
	a.mu.Unlock()
}
