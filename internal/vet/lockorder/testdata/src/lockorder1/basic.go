// Package lockorder1 seeds in-package lock-order inversions plus the
// shapes that must NOT be flagged: striped same-class locks, goroutines,
// and sequential (released) acquisitions.
package lockorder1

import "sync"

type S struct {
	mu    sync.Mutex
	inner sync.Mutex
}

// AB establishes S.mu -> S.inner.
func (s *S) AB() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Lock() // want `lock order cycle: lockorder1\.S\.inner acquired while lockorder1\.S\.mu held`
	s.inner.Unlock()
}

// BA reverses it: the cycle is reported at both witness sites.
func (s *S) BA() {
	s.inner.Lock()
	s.mu.Lock() // want `lock order cycle: lockorder1\.S\.mu acquired while lockorder1\.S\.inner held`
	s.mu.Unlock()
	s.inner.Unlock()
}

type T struct {
	mu   sync.Mutex
	leaf sync.Mutex
}

// flushLocked holds T.mu on entry by the *Locked contract; its direct
// acquisition of T.leaf is an edge even with no Lock call in sight.
func (t *T) flushLocked() {
	t.leaf.Lock() // want `lock order cycle: lockorder1\.T\.leaf acquired while lockorder1\.T\.mu held`
	t.leaf.Unlock()
}

func (t *T) Reverse() {
	t.leaf.Lock()
	t.mu.Lock() // want `lock order cycle: lockorder1\.T\.mu acquired while lockorder1\.T\.leaf held`
	t.mu.Unlock()
	t.leaf.Unlock()
}

type U struct{ mu sync.Mutex }

type V struct{ mu sync.Mutex }

func (v *V) Poke() {
	v.mu.Lock()
	v.mu.Unlock()
}

// CallsV acquires V.mu transitively through Poke's summary.
func (u *U) CallsV(v *V) {
	u.mu.Lock()
	defer u.mu.Unlock()
	v.Poke() // want `lock order cycle: lockorder1\.V\.mu acquired while lockorder1\.U\.mu held`
}

func (v *V) CallsU(u *U) {
	v.mu.Lock()
	defer v.mu.Unlock()
	u.mu.Lock() // want `lock order cycle: lockorder1\.U\.mu acquired while lockorder1\.V\.mu held`
	u.mu.Unlock()
}

type W struct{ stripes [4]sync.Mutex }

// MergeFrom locks two stripes of the same class: same-class nesting is a
// self-edge and never reported (the real code orders stripes by index).
func (w *W) MergeFrom(src *W) {
	w.stripes[0].Lock()
	src.stripes[1].Lock()
	src.stripes[1].Unlock()
	w.stripes[0].Unlock()
}

// Spawn runs Poke on a fresh goroutine: the goroutine does not inherit
// the caller's held set, so no U.mu -> V.mu edge may appear here.
func (u *U) Spawn(v *V) {
	u.mu.Lock()
	defer u.mu.Unlock()
	go v.Poke()
}

// SeqOK releases before calling: empty held set, no edge.
func (u *U) SeqOK(v *V) {
	u.mu.Lock()
	u.mu.Unlock()
	v.Poke()
}

// Aliased resolves a stripe pointer through a local alias; the class
// carries the []-suffix so it still self-edges against other stripes.
func (w *W) Aliased(i int) {
	stripe := &w.stripes[i%4]
	stripe.Lock()
	w.stripes[0].Lock()
	w.stripes[0].Unlock()
	stripe.Unlock()
}
