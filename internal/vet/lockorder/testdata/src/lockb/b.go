// Package lockb closes a lock cycle against locka using only facts:
// Forward nests locka's lock under its own via a summarized call, and
// Backward nests its own lock under locka's inside a callback.
package lockb

import (
	"sync"

	"locka"
)

type B struct {
	mu   sync.Mutex
	peer *locka.A
}

// Forward establishes lockb.B.mu -> locka.A.mu.
func (b *B) Forward() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.peer.Touch() // want `lock order cycle: locka\.A\.mu acquired while lockb\.B\.mu held`
}

// Backward establishes locka.A.mu -> lockb.B.mu: the literal runs under
// A.mu per WithLock's ParamCalls fact.
func (b *B) Backward() {
	b.peer.WithLock(func() {
		b.mu.Lock() // want `lock order cycle: lockb\.B\.mu acquired while locka\.A\.mu held`
		b.mu.Unlock()
	})
}
