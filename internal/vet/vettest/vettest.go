// Package vettest is a self-contained analysistest: it runs one analyzer
// over a fixture package under testdata/src/<pkg> and checks its
// diagnostics against // want "regexp" comments, the same convention
// golang.org/x/tools/go/analysis/analysistest uses.
//
// The real analysistest depends on go/packages and an external go list
// invocation; this harness parses and typechecks the fixtures directly
// (stdlib imports resolve through the source importer), so the analyzer
// suites run hermetically inside a plain `go test ./...`.
package vettest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// wantRe extracts the quoted expectations from a // want comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// expectation is one // want entry: a diagnostic regexp anchored to a line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run analyzes each fixture package under testdata/src and reports
// mismatches between the analyzer's diagnostics and the fixtures' want
// comments as test failures.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runPackage(t, filepath.Join(testdata, "src", pkg), a)
		})
	}
}

func runPackage(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("parsing fixtures: %v", err)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(error) {}, // fixtures may hold deliberate smells, not type errors; surfaced below
	}
	pkgName := files[0].Name.Name
	pkg, err := conf.Check(pkgName, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking fixtures: %v", err)
	}

	diags := runAnalyzer(t, a, fset, files, pkg, info)
	checkExpectations(t, fset, files, a, diags)
}

// parseDir parses every .go file in dir, _test.go fixtures included (they
// model the [test] compilation-unit variant).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	sort.Slice(files, func(i, j int) bool {
		return fset.Position(files[i].Pos()).Filename < fset.Position(files[j].Pos()).Filename
	})
	return files, nil
}

// runAnalyzer executes a (and its Requires closure) over one package.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]any)

	var exec func(a *analysis.Analyzer, collect bool)
	exec = func(a *analysis.Analyzer, collect bool) {
		if _, done := results[a]; done {
			return
		}
		for _, req := range a.Requires {
			exec(req, false)
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			Report: func(d analysis.Diagnostic) {
				if collect {
					diags = append(diags, d)
				}
			},
		}
		// The inspect pass is special-cased: its Run only builds an
		// inspector, which we can do directly and cheaply.
		if a == inspect.Analyzer {
			results[a] = inspector.New(files)
			return
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("analyzer %s: %v", a.Name, err)
		}
		results[a] = res
	}
	exec(a, true)
	return diags
}

// checkExpectations matches diagnostics against want comments.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, a *analysis.Analyzer, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text[idx+len("want "):], -1) {
					lit := m[1]
					if lit == "" {
						lit = m[2]
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, lit, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", pos.Filename, pos.Line, a.Name, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
}

// Fprint is a debugging aid: it dumps the diagnostics a fixture produces,
// formatted as want comments, to ease authoring new fixtures.
func Fprint(fset *token.FileSet, diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(&b, "%s:%d: %s\n", pos.Filename, pos.Line, d.Message)
	}
	return b.String()
}
