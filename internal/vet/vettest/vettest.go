// Package vettest is a self-contained analysistest: it runs one analyzer
// over fixture packages under testdata/src/<pkg> and checks diagnostics
// against // want "regexp" comments, the same convention
// golang.org/x/tools/go/analysis/analysistest uses.
//
// The real analysistest depends on go/packages and an external go list
// invocation; this harness loads the fixtures through internal/vet/srcload
// (stdlib imports resolve through the source importer), so the analyzer
// suites run hermetically inside a plain `go test ./...`. Fixture packages
// may import each other GOPATH-style — package "b/inner" lives in
// testdata/src/b/inner — and facts exported while analyzing a dependency
// are visible while analyzing its dependents, which is what the
// cross-package analyzers (lockorder, snapcheck, hotalloc) exercise.
package vettest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"ghba/internal/vet/srcload"
)

// wantRe extracts the quoted expectations from a // want comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// expectation is one // want entry: a diagnostic regexp anchored to a line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run analyzes each fixture package under testdata/src independently and
// reports mismatches between the analyzer's diagnostics and the fixtures'
// want comments as test failures. Each package gets a fresh loader and
// fact store; imports of sibling fixture packages still resolve, and the
// dependencies' facts are computed, but only the named package's files are
// checked for want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		t.Run(strings.ReplaceAll(pkg, "/", "_"), func(t *testing.T) {
			t.Helper()
			runPackages(t, testdata, a, pkg)
		})
	}
}

// RunMulti analyzes the named fixture packages in one shared session:
// one loader, one fact store, diagnostics and want comments checked across
// all of them. List dependencies before dependents — diagnostics are
// collected in listed order, and a package analyzed early as a mere
// dependency of another reports nothing. This is the harness for
// cross-package fact scenarios (a lock cycle spanning two packages, a
// snapshot published in one package and mutated in another).
func RunMulti(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	runPackages(t, testdata, a, pkgs...)
}

func runPackages(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	loader := srcload.NewLoader(srcload.DirResolver(strings.TrimSuffix(testdata, "/") + "/src"))
	loader.IncludeTests = true
	runner := srcload.NewRunner(loader.Fset)

	var checked []*srcload.Package
	var diags []analysis.Diagnostic
	for _, path := range pkgs {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		d, _, err := runner.Run(a, pkg)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checked = append(checked, pkg)
		diags = append(diags, d...)
	}
	checkExpectations(t, loader.Fset, checked, a, diags)
}

// checkExpectations matches diagnostics against want comments in the
// checked packages' files.
func checkExpectations(t *testing.T, fset *token.FileSet, pkgs []*srcload.Package, a *analysis.Analyzer, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					idx := strings.Index(text, "want ")
					if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(text[idx+len("want "):], -1) {
						lit := m[1]
						if lit == "" {
							lit = m[2]
						}
						re, err := regexp.Compile(lit)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, lit, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected %s diagnostic: %s", pos.Filename, pos.Line, a.Name, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
}

// Fprint is a debugging aid: it dumps the diagnostics a fixture produces,
// formatted as want comments, to ease authoring new fixtures.
func Fprint(fset *token.FileSet, diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(&b, "%s:%d: %s\n", pos.Filename, pos.Line, d.Message)
	}
	return b.String()
}
