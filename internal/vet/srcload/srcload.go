// Package srcload loads and typechecks a closed set of local Go packages
// without go/packages, `go list`, or network access, and runs go/analysis
// analyzers over them in dependency order with a shared in-memory fact
// store.
//
// Two consumers drive it:
//
//   - vettest: multi-package analyzer fixtures under testdata/src, laid out
//     GOPATH-style (import path "a" lives in testdata/src/a), where facts
//     exported by one fixture package must be importable by another.
//   - cmd/ghbavet -lockgraph: whole-repo loading, where import path
//     "ghba/internal/core" resolves against the module root, so the
//     lock-order graph can be assembled in one process.
//
// Local imports resolve through a caller-supplied directory mapping;
// everything else (the standard library) resolves through the source
// importer, keeping the whole pipeline hermetic inside `go test ./...`.
package srcload

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Package is one loaded, typechecked package.
type Package struct {
	// PkgPath is the import path the package was loaded under.
	PkgPath string
	// Dir is the directory its sources were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Imports lists the locally loaded dependencies (not stdlib).
	Imports []*Package
}

// Loader loads local packages by import path.
type Loader struct {
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet
	// Resolve maps an import path to the directory holding its sources.
	// Returning ok=false delegates the path to the source importer
	// (standard library).
	Resolve func(path string) (dir string, ok bool)
	// IncludeTests, when set, parses _test.go files of loaded packages
	// that belong to the package itself (in-package test files); fixtures
	// use them to model the [test] compilation-unit variant.
	IncludeTests bool

	pkgs    map[string]*Package
	loading map[string]bool
	std     types.Importer
}

// NewLoader returns a loader with a fresh FileSet.
func NewLoader(resolve func(string) (string, bool)) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		Resolve: resolve,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		std:     importer.ForCompiler(fset, "source", nil),
	}
}

// ModuleResolver maps import paths under modulePath to directories under
// root, the way a go.mod at root would.
func ModuleResolver(modulePath, root string) func(string) (string, bool) {
	return func(path string) (string, bool) {
		if path == modulePath {
			return root, true
		}
		if rest, ok := strings.CutPrefix(path, modulePath+"/"); ok {
			return filepath.Join(root, filepath.FromSlash(rest)), true
		}
		return "", false
	}
}

// DirResolver maps every import path to root/<path> when that directory
// exists — the GOPATH-style testdata/src convention of analysistest.
func DirResolver(root string) func(string) (string, bool) {
	return func(path string) (string, bool) {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
		return "", false
	}
}

// Load returns the package at the given import path, loading it and its
// local dependencies on first use. Cycles among local packages are
// reported as errors (the go compiler would reject them anyway).
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("srcload: import cycle through %q", path)
	}
	dir, ok := l.Resolve(path)
	if !ok {
		return nil, fmt.Errorf("srcload: cannot resolve %q to a local directory", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, fmt.Errorf("srcload: parsing %s: %w", dir, err)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("srcload: no Go files in %s", dir)
	}

	// Load local dependencies first so their types.Package values are
	// ready when the checker resolves this package's imports.
	var deps []*Package
	seen := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			ipath := strings.Trim(imp.Path.Value, `"`)
			if seen[ipath] {
				continue
			}
			seen[ipath] = true
			if _, local := l.Resolve(ipath); !local {
				continue
			}
			dep, err := l.Load(ipath)
			if err != nil {
				return nil, err
			}
			deps = append(deps, dep)
		}
	}
	sort.Slice(deps, func(i, j int) bool { return deps[i].PkgPath < deps[j].PkgPath })

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) {
			if p, ok := l.pkgs[ipath]; ok {
				return p.Types, nil
			}
			if _, local := l.Resolve(ipath); local {
				// Should have been preloaded above; a miss means an
				// import only visible after build-tag filtering.
				p, err := l.Load(ipath)
				if err != nil {
					return nil, err
				}
				return p.Types, nil
			}
			return l.std.Import(ipath)
		}),
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("srcload: typechecking %s: %w", path, err)
	}
	p := &Package{
		PkgPath: path,
		Dir:     dir,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Imports: deps,
	}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses the package's .go files in dir, skipping _test.go files
// unless IncludeTests is set, and skipping external (_test-suffixed
// package) test files always: they form a second compilation unit the
// single-package checker cannot host.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkgName == "" && !strings.HasSuffix(f.Name.Name, "_test") {
			pkgName = f.Name.Name
		}
		files = append(files, f)
	}
	// Drop external-test-package files (package foo_test).
	kept := files[:0]
	for _, f := range files {
		if strings.HasSuffix(f.Name.Name, "_test") && f.Name.Name != pkgName {
			continue
		}
		kept = append(kept, f)
	}
	return kept, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Diagnostic pairs one reported diagnostic with the package it was
// reported in.
type Diagnostic struct {
	Pkg *Package
	analysis.Diagnostic
}

// Runner executes analyzers over loaded packages with a shared in-memory
// fact store, mimicking the unitchecker's fact flow: facts exported while
// analyzing a dependency are importable while analyzing its dependents.
// Unlike the serialized flow it does not prune facts by export reach —
// every fact is visible downstream — which is the permissive superset the
// fixtures and the in-process lock-graph driver want.
type Runner struct {
	Fset *token.FileSet

	objFacts map[types.Object][]analysis.Fact
	pkgFacts map[*types.Package][]analysis.Fact
	results  map[resultKey]any
	ran      map[resultKey]bool
}

type resultKey struct {
	a   *analysis.Analyzer
	pkg *Package
}

// NewRunner returns a runner sharing the loader's FileSet.
func NewRunner(fset *token.FileSet) *Runner {
	return &Runner{
		Fset:     fset,
		objFacts: make(map[types.Object][]analysis.Fact),
		pkgFacts: make(map[*types.Package][]analysis.Fact),
		results:  make(map[resultKey]any),
		ran:      make(map[resultKey]bool),
	}
}

// Run executes a (and its Requires closure) over pkg and every local
// dependency first, returning the diagnostics reported for pkg itself and
// a's result for pkg. Facts accumulate in the runner across calls, so
// analyzing several roots shares work and fact state.
func (r *Runner) Run(a *analysis.Analyzer, pkg *Package) ([]analysis.Diagnostic, any, error) {
	// Dependencies first: their facts must exist before dependents run.
	for _, dep := range pkg.Imports {
		if _, _, err := r.Run(a, dep); err != nil {
			return nil, nil, err
		}
	}
	key := resultKey{a, pkg}
	if r.ran[key] {
		return nil, r.results[key], nil
	}
	var diags []analysis.Diagnostic
	if err := r.exec(a, pkg, &diags); err != nil {
		return nil, nil, err
	}
	return diags, r.results[key], nil
}

func (r *Runner) exec(a *analysis.Analyzer, pkg *Package, diags *[]analysis.Diagnostic) error {
	key := resultKey{a, pkg}
	if r.ran[key] {
		return nil
	}
	r.ran[key] = true
	for _, req := range a.Requires {
		if err := r.exec(req, pkg, nil); err != nil {
			return err
		}
	}
	// The inspect pass only builds an inspector; do it directly.
	if a == inspect.Analyzer {
		r.results[key] = inspector.New(pkg.Files)
		return nil
	}

	factTypes := make(map[reflect.Type]bool)
	for _, f := range a.FactTypes {
		factTypes[reflect.TypeOf(f)] = true
	}
	resultOf := make(map[*analysis.Analyzer]any)
	for _, req := range a.Requires {
		resultOf[req] = r.results[resultKey{req, pkg}]
	}

	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       r.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   resultOf,
		Report: func(d analysis.Diagnostic) {
			if diags != nil {
				*diags = append(*diags, d)
			}
		},
		ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
			return copyFact(r.objFacts[obj], fact)
		},
		ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
			r.objFacts[obj] = setFact(r.objFacts[obj], fact)
		},
		ImportPackageFact: func(p *types.Package, fact analysis.Fact) bool {
			return copyFact(r.pkgFacts[p], fact)
		},
		ExportPackageFact: func(fact analysis.Fact) {
			r.pkgFacts[pkg.Types] = setFact(r.pkgFacts[pkg.Types], fact)
		},
		AllObjectFacts: func() []analysis.ObjectFact {
			var out []analysis.ObjectFact
			for obj, facts := range r.objFacts {
				for _, f := range facts {
					if factTypes[reflect.TypeOf(f)] {
						out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
					}
				}
			}
			return out
		},
		AllPackageFacts: func() []analysis.PackageFact {
			var out []analysis.PackageFact
			for p, facts := range r.pkgFacts {
				for _, f := range facts {
					if factTypes[reflect.TypeOf(f)] {
						out = append(out, analysis.PackageFact{Package: p, Fact: f})
					}
				}
			}
			return out
		},
	}
	res, err := a.Run(pass)
	if err != nil {
		return fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
	}
	r.results[key] = res
	if a.ResultType != nil && res != nil {
		if got := reflect.TypeOf(res); got != a.ResultType {
			return fmt.Errorf("analyzer %s on %s returned %v, want %v", a.Name, pkg.PkgPath, got, a.ResultType)
		}
	}
	return nil
}

// copyFact copies the stored fact matching ptr's concrete type into *ptr.
func copyFact(facts []analysis.Fact, ptr analysis.Fact) bool {
	t := reflect.TypeOf(ptr)
	for _, f := range facts {
		if reflect.TypeOf(f) == t {
			reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// setFact stores fact, replacing any previous fact of the same type.
func setFact(facts []analysis.Fact, fact analysis.Fact) []analysis.Fact {
	t := reflect.TypeOf(fact)
	for i, f := range facts {
		if reflect.TypeOf(f) == t {
			facts[i] = fact
			return facts
		}
	}
	return append(facts, fact)
}
