// Package hota is the upstream half of the cross-package hotalloc
// fixtures: one clean helper, one allocating one whose AllocFact must
// reach tagged callers in hotb.
package hota

// Sum is pure arithmetic: no fact.
func Sum(a, b int) int { return a + b }

// Grow allocates (make): exports an AllocFact.
func Grow(s []int) []int {
	return append(s, make([]int, 4)...)
}
