// Package hotb tags hot functions that call into hota: the allocation
// verdicts arrive purely through facts.
package hotb

import "hota"

//ghbavet:hotpath
func UsesSum(a, b int) int {
	return hota.Sum(a, b)
}

//ghbavet:hotpath
func UsesGrow(s []int) []int {
	return hota.Grow(s) // want `call to hota\.Grow allocates`
}
