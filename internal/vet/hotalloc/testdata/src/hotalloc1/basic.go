// Package hotalloc1 seeds every allocating construct hotalloc knows
// about inside tagged functions, next to the sanctioned zero-alloc
// idioms (param-backed append, scratch fields, local closures) that must
// stay clean.
package hotalloc1

import "fmt"

type T struct{ a, b int }

//ghbavet:hotpath
func Escaping() *T {
	return &T{a: 1} // want `composite literal escapes`
}

//ghbavet:hotpath
func SliceLit() []int {
	return []int{1, 2} // want `slice/map literal`
}

//ghbavet:hotpath
func MakeIt() []int {
	return make([]int, 4) // want `make allocates`
}

//ghbavet:hotpath
func AppendNoEvidence() {
	var s []int
	s = append(s, 1) // want `append without capacity evidence`
	_ = s
}

// AppendParam reuses the caller's backing array: the QueryDigest idiom.
//
//ghbavet:hotpath
func AppendParam(buf []int, v int) []int {
	buf = append(buf[:0], v)
	return buf
}

type scratch struct{ set []int }

// AppendField appends into a pooled scratch struct's field.
//
//ghbavet:hotpath
func (s *scratch) AppendField(v int) {
	set := s.set[:0]
	set = append(set, v)
	s.set = set
}

//ghbavet:hotpath
func Concat(a, b string) string {
	return a + b // want `string concatenation`
}

//ghbavet:hotpath
func ConstConcat() string {
	return "a" + "b" // constant-folded: clean
}

//ghbavet:hotpath
func Convert(b []byte) string {
	return string(b) // want `conversion to string`
}

func sink(v any) { _ = v }

//ghbavet:hotpath
func Box(v int) {
	sink(v) // want `interface boxing`
}

// BoxPtr passes a pointer: fits the interface word, no allocation.
//
//ghbavet:hotpath
func BoxPtr(v *T) {
	sink(v)
}

//ghbavet:hotpath
func Spawn() { // The go statement is flagged at the statement position.
	go func() {}() // want `go statement`
}

func runFn(fn func()) { fn() }

//ghbavet:hotpath
func PassClosure(v int) {
	runFn(func() { _ = v }) // want `closure passed as argument`
}

// LocalClosure binds a literal to a local and calls it inline: stack
// allocated, clean — the lookupEpoch finish-closure idiom.
//
//ghbavet:hotpath
func LocalClosure(v int) int {
	add := func(x int) int { return x + v }
	return add(2)
}

// helper is untagged, so its allocation is not reported here...
func helper() *T {
	return &T{}
}

// ...but bubbles up to the tagged caller through the summary.
//
//ghbavet:hotpath
func CallsHelper() *T {
	return helper() // want `call to hotalloc1\.helper allocates`
}

//ghbavet:hotpath
func Format(n int) string {
	return fmt.Sprintf("%d", n) // want `interface boxing` `call to fmt\.Sprintf allocates`
}

// Ignored demonstrates the escape hatch for deliberate amortized
// allocations.
//
//ghbavet:hotpath
func Ignored() *T {
	//ghbavet:ignore amortized one-time allocation
	return &T{}
}
