// Package regress pins the engine shapes hotalloc caught when the hot-path
// tags first landed, next to their fixes, so neither the detection nor the
// resolution can silently regress.
package regress

import (
	"fmt"
	"io"
)

const maxMessage = 1 << 20

// writeFrameBad is the pre-fix shape of rpcnet.writeMuxFrame: building the
// oversized-payload error with fmt.Errorf drags formatting machinery (and
// the boxing of the int argument) into the tagged frame-write path.
//
//ghbavet:hotpath
func writeFrameBad(w io.Writer, payload []byte) error {
	if len(payload) > maxMessage {
		return fmt.Errorf("payload %d bytes exceeds limit", len(payload)) // want `interface boxing` `call to fmt\.Errorf allocates`
	}
	_, err := w.Write(payload)
	return err
}

// errTooBig is the fix: a value-typed error whose message is formatted only
// when a caller reads it, leaving the size check itself allocation-free.
type errTooBig int

func (e errTooBig) Error() string {
	return fmt.Sprintf("payload %d bytes exceeds limit", int(e))
}

//ghbavet:hotpath
func writeFrameFixed(w io.Writer, payload []byte) error {
	if len(payload) > maxMessage {
		return errTooBig(len(payload))
	}
	_, err := w.Write(payload)
	return err
}

// observe models bloomarray.(*LRUArray).ObserveDigest: the re-observe fast
// path is allocation-free, but a first observation publishes a fresh entry.
// The flow-insensitive analyzer cannot separate the two, so the whole
// function carries an allocation fact.
func observe(m map[int]*int, key int) {
	if m[key] != nil {
		return
	}
	fresh := new(int)
	m[key] = fresh
}

// lookupBad is the pre-fix shape of core.lookupEpoch's L1 learning write:
// the amortized slow path surfaces as a hot-path finding at the call site.
//
//ghbavet:hotpath
func lookupBad(m map[int]*int, key int) {
	observe(m, key) // want `call to regress\.observe allocates`
}

// lookupFixed is the resolution: the call is genuinely amortized, so it
// carries a documented suppression rather than a restructuring.
//
//ghbavet:hotpath
func lookupFixed(m map[int]*int, key int) {
	//ghbavet:ignore learning allocates only on first observation or rotation
	observe(m, key)
}

var _ = writeFrameBad
var _ = writeFrameFixed
var _ = lookupBad
var _ = lookupFixed
