package hotalloc_test

import (
	"testing"

	"ghba/internal/vet/hotalloc"
	"ghba/internal/vet/vettest"
)

func TestHotalloc(t *testing.T) {
	vettest.Run(t, "testdata", hotalloc.Analyzer, "hotalloc1")
}

// TestHotallocCrossPackage checks that allocation facts reach tagged
// callers across the package boundary.
func TestHotallocCrossPackage(t *testing.T) {
	vettest.RunMulti(t, "testdata", hotalloc.Analyzer, "hota", "hotb")
}

// TestHotallocRegress pins the real engine findings (rpcnet mux frame
// error, core L1 learning write) alongside their fixes.
func TestHotallocRegress(t *testing.T) {
	vettest.Run(t, "testdata", hotalloc.Analyzer, "regress")
}
