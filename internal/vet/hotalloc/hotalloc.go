// Package hotalloc defines an analyzer that turns the digest pipeline's
// zero-allocation claim — pinned at runtime by BenchmarkDigestLookup —
// into a compile-time contract.
//
// A function tagged with a `//ghbavet:hotpath` doc comment must be
// transitively free of allocating constructs:
//
//   - composite literals that escape (&T{...}) and slice/map literals;
//   - make and new;
//   - append without capacity evidence — the appended-to slice must
//     derive from a caller-provided parameter or a scratch struct field
//     (the `buf[:0]` reuse idiom), anything else may grow;
//   - string concatenation of non-constant operands and string/[]byte
//     conversions;
//   - interface boxing of non-pointer values at call sites;
//   - closures that escape (passed as arguments, returned, stored) and
//     go statements.
//
// The contract crosses package boundaries bottom-up: every package
// exports an AllocFact for each function that may allocate (directly or
// via its callees), so a tagged function calling an innocent-looking
// helper three packages away is flagged at the call site with the
// helper's witness. This is the same contract as "the hotpath tag
// propagates to callees", inverted: instead of pushing the tag down the
// call graph, allocation evidence bubbles up to wherever a tag is.
//
// Calls into a small list of known-clean runtime packages (sync,
// sync/atomic, sort, slices, math/bits, ...) are trusted; calls into
// known-allocating packages (fmt, strings, strconv, ...) are flagged
// even when no fact is available; dynamic calls through interfaces are
// assumed clean — the mux codec writes to a net.Conn.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"

	"ghba/internal/vet/vetutil"
)

// HotTag is the doc-comment directive marking a hot-path function.
const HotTag = "//ghbavet:hotpath"

// AllocFact marks a function that may allocate, with a short witness of
// why.
type AllocFact struct {
	Witness string
}

// AFact marks AllocFact as a serializable analysis fact.
func (*AllocFact) AFact() {}

func (f *AllocFact) String() string { return "allocates: " + f.Witness }

// Analyzer is the hotalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name:      "hotalloc",
	Doc:       "require //ghbavet:hotpath functions to be transitively allocation-free",
	Run:       run,
	FactTypes: []analysis.Fact{(*AllocFact)(nil)},
}

// cleanPkgs are trusted not to allocate on the paths hot code uses.
var cleanPkgs = map[string]bool{
	"sync": true, "sync/atomic": true,
	"math": true, "math/bits": true,
	"sort": true, "slices": true, "cmp": true,
	"encoding/binary": true, "unicode/utf8": true,
	"runtime": true, "time": true,
}

// dirtyPkgs allocate on essentially every entry point; calls are flagged
// even without a fact.
var dirtyPkgs = map[string]bool{
	"fmt": true, "errors": true, "strings": true, "strconv": true,
	"bytes": true, "os": true, "io": true, "log": true,
	"reflect": true, "regexp": true, "encoding/json": true, "context": true,
}

// allocSite is one allocating construct found in a function body.
type allocSite struct {
	pos token.Pos
	msg string
}

// callSite is one statically resolved call.
type callSite struct {
	pos    token.Pos
	callee *types.Func
}

// fnAlloc is a function's walk result.
type fnAlloc struct {
	decl   *ast.FuncDecl
	hot    bool
	allocs []allocSite
	calls  []callSite
	// alloc/witness are resolved by the fixpoint.
	alloc   bool
	witness string
}

type checker struct {
	pass  *analysis.Pass
	rep   *vetutil.Reporter
	funcs map[*types.Func]*fnAlloc
	order []*types.Func
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:  pass,
		rep:   vetutil.NewReporter(pass),
		funcs: make(map[*types.Func]*fnAlloc),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if vetutil.IsTestFile(pass.Fset, fd.Pos()) {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fa := &fnAlloc{decl: fd, hot: isTagged(fd)}
			c.funcs[fn] = fa
			c.order = append(c.order, fn)
			w := &walker{c: c, fa: fa, evidenced: make(map[types.Object]bool)}
			w.markParams(fd)
			w.stmts(fd.Body.List)
		}
	}

	// Fixpoint: allocation status flows up the in-package call graph;
	// cross-package callees resolve through facts.
	for changed := true; changed; {
		changed = false
		for _, fn := range c.order {
			fa := c.funcs[fn]
			if fa.alloc {
				continue
			}
			if len(fa.allocs) > 0 {
				fa.alloc = true
				fa.witness = fmt.Sprintf("%s at %s", fa.allocs[0].msg, c.shortPos(fa.allocs[0].pos))
				changed = true
				continue
			}
			for _, cs := range fa.calls {
				if w, bad := c.calleeAllocates(cs.callee); bad {
					fa.alloc = true
					fa.witness = w
					changed = true
					break
				}
			}
		}
	}

	// Diagnostics for tagged functions.
	for _, fn := range c.order {
		fa := c.funcs[fn]
		if !fa.hot {
			continue
		}
		for _, a := range fa.allocs {
			c.rep.Reportf(a.pos, "hot path: %s", a.msg)
		}
		for _, cs := range fa.calls {
			if w, bad := c.calleeAllocates(cs.callee); bad {
				c.rep.Reportf(cs.pos, "hot path: call to %s allocates (%s)", cs.callee.FullName(), w)
			}
		}
	}

	// Export facts for allocating functions.
	for _, fn := range c.order {
		if fa := c.funcs[fn]; fa.alloc {
			c.pass.ExportObjectFact(fn, &AllocFact{Witness: fa.witness})
		}
	}
	return nil, nil
}

// calleeAllocates resolves a callee's allocation status: trusted clean
// packages first, then in-package summaries, imported facts, and the
// dirty-package list.
func (c *checker) calleeAllocates(fn *types.Func) (string, bool) {
	if fn == nil {
		return "", false
	}
	pkg := fn.Pkg()
	if pkg != nil && cleanPkgs[pkg.Path()] {
		return "", false
	}
	if fa, ok := c.funcs[fn]; ok {
		return fa.witness, fa.alloc
	}
	var fact AllocFact
	if c.pass.ImportObjectFact(fn, &fact) {
		return fact.Witness, true
	}
	if pkg != nil && dirtyPkgs[pkg.Path()] {
		return "package " + pkg.Path() + " allocates", true
	}
	return "", false
}

func (c *checker) shortPos(pos token.Pos) string {
	p := c.pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

func isTagged(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, cm := range fd.Doc.List {
		if strings.HasPrefix(cm.Text, HotTag) {
			return true
		}
	}
	return false
}

// ---- body walking ----

type walker struct {
	c  *checker
	fa *fnAlloc
	// evidenced holds locals whose backing capacity is caller-provided
	// (params, reslices of params or struct fields, append results over
	// evidenced slices).
	evidenced map[types.Object]bool
}

func (w *walker) info() *types.Info { return w.c.pass.TypesInfo }

func (w *walker) flag(pos token.Pos, format string, args ...any) {
	w.fa.allocs = append(w.fa.allocs, allocSite{pos: pos, msg: fmt.Sprintf(format, args...)})
}

func (w *walker) markParams(fd *ast.FuncDecl) {
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			for _, n := range f.Names {
				if obj := w.info().Defs[n]; obj != nil {
					w.evidenced[obj] = true
				}
			}
		}
	}
	for _, f := range fd.Type.Params.List {
		for _, n := range f.Names {
			if obj := w.info().Defs[n]; obj != nil {
				w.evidenced[obj] = true
			}
		}
	}
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.ExprStmt:
		// A directly invoked literal runs inline; its body is hot but the
		// closure itself does not escape.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if lit, ok := call.Fun.(*ast.FuncLit); ok {
				w.stmts(lit.Body.List)
				for _, a := range call.Args {
					w.expr(a)
				}
				return
			}
		}
		w.expr(s.X)
	case *ast.AssignStmt:
		for i, rhs := range s.Rhs {
			if lit, ok := rhs.(*ast.FuncLit); ok && len(s.Lhs) == len(s.Rhs) {
				if id, ok := s.Lhs[i].(*ast.Ident); ok && w.isLocal(id) {
					// Closure bound to a local and (presumably) invoked
					// inline: its body is hot, the closure itself does
					// not escape.
					w.stmts(lit.Body.List)
					continue
				}
			}
			w.expr(rhs)
		}
		w.trackEvidence(s)
		for _, lhs := range s.Lhs {
			if _, ok := lhs.(*ast.Ident); !ok {
				w.expr(lhs)
			}
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmt(s.Body)
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmt(s.Body)
		w.stmt(s.Post)
	case *ast.RangeStmt:
		w.expr(s.X)
		w.stmt(s.Body)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.expr(s.Tag)
		w.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		w.stmt(s.Body)
	case *ast.SelectStmt:
		w.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		w.stmts(s.Body)
	case *ast.CommClause:
		w.stmt(s.Comm)
		w.stmts(s.Body)
	case *ast.DeferStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.flag(s.Pos(), "deferred closure allocates")
			w.stmts(lit.Body.List)
			return
		}
		w.expr(s.Call)
	case *ast.GoStmt:
		w.flag(s.Pos(), "go statement allocates a goroutine")
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.stmts(lit.Body.List)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r)
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					w.expr(v)
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

func (w *walker) isLocal(id *ast.Ident) bool {
	obj := w.info().ObjectOf(id)
	return obj != nil && obj.Pkg() == w.c.pass.Pkg && obj.Parent() != w.c.pass.Pkg.Scope()
}

// trackEvidence extends the capacity-evidence set through assignments:
// reslices of evidenced or field-backed memory, and append results over
// evidenced slices.
func (w *walker) trackEvidence(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := w.info().ObjectOf(id)
		if obj == nil {
			continue
		}
		if w.hasCapEvidence(s.Rhs[i]) {
			w.evidenced[obj] = true
		}
	}
}

// hasCapEvidence reports whether appending to e cannot outgrow memory
// the caller (or a scratch struct) provided: parameters, struct fields,
// reslices of either, and append chains over them.
func (w *walker) hasCapEvidence(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := w.info().ObjectOf(e)
		return obj != nil && w.evidenced[obj]
	case *ast.SliceExpr:
		return w.hasCapEvidence(e.X)
	case *ast.SelectorExpr:
		// A field of some struct: the scratch-buffer idiom.
		if sel, ok := w.info().Selections[e]; ok && sel.Kind() == types.FieldVal {
			return true
		}
	case *ast.CallExpr:
		if id, ok := unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
			if tv, ok := w.info().Types[e.Fun]; ok && tv.IsBuiltin() && len(e.Args) > 0 {
				return w.hasCapEvidence(e.Args[0])
			}
		}
		// A call returning a slice it sized itself (e.g. InsertSorted)
		// keeps the caller's evidence only if its own append was
		// evidence-clean, which the callee's AllocFact already captures.
		if callee := typeutil.StaticCallee(w.info(), e); callee != nil {
			if _, bad := w.c.calleeAllocates(callee.Origin()); !bad {
				return true
			}
		}
	}
	return false
}

func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			w.call(n)
			return false
		case *ast.FuncLit:
			// Reached in a value position: the closure escapes.
			w.flag(n.Pos(), "escaping closure allocates")
			w.stmts(n.Body.List)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := unparen(n.X).(*ast.CompositeLit); ok {
					w.flag(n.Pos(), "&composite literal escapes to the heap")
					for _, el := range cl.Elts {
						w.expr(el)
					}
					return false
				}
			}
		case *ast.CompositeLit:
			switch types.Unalias(w.info().TypeOf(n)).Underlying().(type) {
			case *types.Slice, *types.Map:
				w.flag(n.Pos(), "slice/map literal allocates")
			}
			return true
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := w.info().Types[n]; ok && tv.Value == nil {
					if basic, ok := types.Unalias(tv.Type).Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
						w.flag(n.Pos(), "string concatenation allocates")
					}
				}
			}
		}
		return true
	})
}

func (w *walker) call(call *ast.CallExpr) {
	info := w.info()
	// Type conversion?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		target := types.Unalias(tv.Type).Underlying()
		src := info.TypeOf(call.Args[0])
		switch target.(type) {
		case *types.Basic:
			if target.(*types.Basic).Info()&types.IsString != 0 && src != nil && !types.Identical(types.Unalias(src).Underlying(), target) {
				w.flag(call.Pos(), "conversion to string allocates")
			}
		case *types.Slice:
			if src != nil && !types.Identical(types.Unalias(src).Underlying(), target) {
				w.flag(call.Pos(), "conversion to slice allocates")
			}
		}
		w.expr(call.Args[0])
		return
	}

	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if tv, ok := info.Types[call.Fun]; ok && tv.IsBuiltin() {
			switch id.Name {
			case "append":
				if len(call.Args) > 0 && !w.hasCapEvidence(call.Args[0]) {
					w.flag(call.Pos(), "append without capacity evidence may allocate")
				}
			case "make":
				w.flag(call.Pos(), "make allocates")
			case "new":
				w.flag(call.Pos(), "new allocates")
			}
			for _, a := range call.Args {
				w.expr(a)
			}
			return
		}
	}

	callee := typeutil.StaticCallee(info, call)
	if callee != nil {
		callee = callee.Origin()
		w.fa.calls = append(w.fa.calls, callSite{pos: call.Pos(), callee: callee})
	}
	w.checkBoxing(call)
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.expr(sel.X)
	} else if _, ok := unparen(call.Fun).(*ast.Ident); !ok {
		w.expr(call.Fun)
	}
	for _, a := range call.Args {
		if lit, ok := a.(*ast.FuncLit); ok {
			w.flag(lit.Pos(), "closure passed as argument allocates")
			w.stmts(lit.Body.List)
			continue
		}
		w.expr(a)
	}
}

// checkBoxing flags non-pointer values implicitly converted to interface
// parameters.
func (w *walker) checkBoxing(call *ast.CallExpr) {
	sig, ok := types.Unalias(w.info().TypeOf(call.Fun)).Underlying().(*types.Signature)
	if !ok {
		return
	}
	if call.Ellipsis.IsValid() {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if s, ok := types.Unalias(sig.Params().At(np - 1).Type()).Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt == nil || !types.IsInterface(types.Unalias(pt).Underlying()) {
			continue
		}
		at := w.info().TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			continue // pointer-shaped: boxes without allocating
		}
		w.flag(arg.Pos(), "interface boxing of non-pointer value allocates")
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
