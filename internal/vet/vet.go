// Package vet assembles ghbavet — the repo's custom go/analysis suite.
//
// Four analyzers mechanically enforce the conventions the concurrency,
// determinism, and RPC work rests on:
//
//   - lockcheck: the *Locked suffix contract (callers hold mu; helpers
//     never re-acquire it; defer pairing; no double-RLock)
//   - detrand: engines draw randomness only from caller-supplied
//     *rand.Rand values; no clock seeding; no map-order-dependent output
//   - ctxflow: context.Context threads through every RPC path; no dropped
//     cancellation below the API boundary
//   - wireguard: every proto opcode is fully wired — names table,
//     dispatch case, sender, round-trip test
//
// Run them via cmd/ghbavet: `go run ./cmd/ghbavet ./...` or
// `go vet -vettool=$(which ghbavet) ./...`.
package vet

import (
	"ghba/internal/vet/ctxflow"
	"ghba/internal/vet/detrand"
	"ghba/internal/vet/lockcheck"
	"ghba/internal/vet/wireguard"
	"golang.org/x/tools/go/analysis"
)

// Analyzers is the full ghbavet suite, in the order findings print.
var Analyzers = []*analysis.Analyzer{
	lockcheck.Analyzer,
	detrand.Analyzer,
	ctxflow.Analyzer,
	wireguard.Analyzer,
}
