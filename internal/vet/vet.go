// Package vet assembles ghbavet — the repo's custom go/analysis suite.
//
// Four syntactic analyzers mechanically enforce per-package conventions
// the concurrency, determinism, and RPC work rests on:
//
//   - lockcheck: the *Locked suffix contract (callers hold mu; helpers
//     never re-acquire it; defer pairing; no double-RLock)
//   - detrand: engines draw randomness only from caller-supplied
//     *rand.Rand values; no clock seeding; no map-order-dependent output
//   - ctxflow: context.Context threads through every RPC path; no dropped
//     cancellation below the API boundary
//   - wireguard: every proto opcode is fully wired — names table,
//     dispatch case, sender, round-trip test
//
// Three fact-based analyzers see across package boundaries:
//
//   - lockorder: assembles the global lock-acquisition graph from
//     per-package facts and reports cycles (potential deadlocks) with
//     both witness paths; `ghbavet -lockgraph` dumps it as DOT
//   - snapcheck: enforces the epoch/COW discipline — memory published
//     through an atomic.Pointer is immutable, readers never write
//     through a loaded snapshot
//   - hotalloc: functions tagged //ghbavet:hotpath must be transitively
//     allocation-free; allocation evidence propagates through facts
//
// Run them via cmd/ghbavet: `go run ./cmd/ghbavet ./...` or
// `go vet -vettool=$(which ghbavet) ./...`.
package vet

import (
	"os"
	"strings"

	"golang.org/x/tools/go/analysis"

	"ghba/internal/vet/ctxflow"
	"ghba/internal/vet/detrand"
	"ghba/internal/vet/hotalloc"
	"ghba/internal/vet/lockcheck"
	"ghba/internal/vet/lockorder"
	"ghba/internal/vet/snapcheck"
	"ghba/internal/vet/wireguard"
)

// Analyzers is the full ghbavet suite, in the order findings print.
var Analyzers = []*analysis.Analyzer{
	lockcheck.Analyzer,
	detrand.Analyzer,
	ctxflow.Analyzer,
	wireguard.Analyzer,
	lockorder.Analyzer,
	snapcheck.Analyzer,
	hotalloc.Analyzer,
}

// ChecksEnv names the environment variable through which `ghbavet
// -checks a,b` narrows the roster: the standalone driver sets it before
// re-executing go vet, and the unitchecker child reads it back, so both
// sides of the re-exec agree on the subset.
const ChecksEnv = "GHBAVET_CHECKS"

// Selected returns the roster filtered by ChecksEnv; an empty or unset
// variable selects everything. Unknown names are reported in the second
// return so the caller can reject typos before go vet fans out.
func Selected() ([]*analysis.Analyzer, []string) {
	val := strings.TrimSpace(os.Getenv(ChecksEnv))
	if val == "" {
		return Analyzers, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(Analyzers))
	for _, a := range Analyzers {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	var unknown []string
	for _, name := range strings.Split(val, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if a, ok := byName[name]; ok {
			picked = append(picked, a)
		} else {
			unknown = append(unknown, name)
		}
	}
	return picked, unknown
}
