package core

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"
)

// TestConcurrentLookups hammers the read path from many goroutines with no
// writer in flight: every file must resolve to its ground-truth home, and
// the internally synchronized tallies must account for every lookup.
func TestConcurrentLookups(t *testing.T) {
	const files = 400
	c := newPopulated(t, 12, 4, files)
	const workers, perWorker = 8, 400

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < perWorker; i++ {
				path := "/f" + strconv.Itoa(rng.Intn(files))
				res := c.LookupWith(rng, path, -1)
				if !res.Found {
					t.Errorf("worker %d: %s not found (level %d)", w, path, res.Level)
					return
				}
				if truth := c.HomeOf(path); res.Home != truth {
					t.Errorf("worker %d: %s resolved to %d, truth %d", w, path, res.Home, truth)
					return
				}
				if res.Level < 1 || res.Level > 4 {
					t.Errorf("worker %d: level %d out of range", w, res.Level)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Tally().Total(); got != workers*perWorker {
		t.Errorf("tally total = %d, want %d", got, workers*perWorker)
	}
	if got := c.OverallLatency().Count(); got != workers*perWorker {
		t.Errorf("latency count = %d, want %d", got, workers*perWorker)
	}
}

// TestConcurrentLookupsWithReconfig runs parallel lookups while a writer
// goroutine repeatedly grows and shrinks the cluster. Lookups may land
// before or after any given membership change — the test asserts only what
// must hold in every interleaving: results are well-formed, the coverage
// invariant survives, and the observability layer counts every lookup
// exactly once. Run under -race this is the concurrency contract of the
// lookup engine.
func TestConcurrentLookupsWithReconfig(t *testing.T) {
	const files = 300
	c := newPopulated(t, 12, 4, files)
	const workers, perWorker = 6, 250

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			id, _, err := c.AddMDS()
			if err != nil {
				t.Errorf("AddMDS: %v", err)
				return
			}
			if _, err := c.RemoveMDS(id); err != nil {
				t.Errorf("RemoveMDS(%d): %v", id, err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7000 + w)))
			for i := 0; i < perWorker; i++ {
				path := "/f" + strconv.Itoa(rng.Intn(files))
				res := c.LookupWith(rng, path, -1)
				// Files re-home when the writer retires a server, so the
				// home may differ between the lookup and any later check;
				// only shape properties are stable across interleavings.
				if res.Found && res.Home < 0 {
					t.Errorf("worker %d: found %s with negative home", w, path)
					return
				}
				if res.Level < 1 || res.Level > 4 {
					t.Errorf("worker %d: level %d out of range", w, res.Level)
					return
				}
				if res.Latency <= 0 {
					t.Errorf("worker %d: non-positive latency", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	writer.Wait()

	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after concurrent churn: %v", err)
	}
	if got := c.Tally().Total(); got != workers*perWorker {
		t.Errorf("tally total = %d, want %d", got, workers*perWorker)
	}
	if got := c.OverallLatency().Count(); got != workers*perWorker {
		t.Errorf("latency count = %d, want %d", got, workers*perWorker)
	}
	// The namespace never shrinks: removals re-home, they do not delete.
	if c.FileCount() != files {
		t.Errorf("file count = %d, want %d", c.FileCount(), files)
	}
}

// TestLookupWithDeterministic verifies that identically seeded serial runs
// of the caller-RNG read path produce identical results on identically
// built clusters — the property the parallel facade's single-worker
// reproducibility rests on.
func TestLookupWithDeterministic(t *testing.T) {
	const files = 200
	run := func() []LookupResult {
		c := newPopulated(t, 9, 3, files)
		rng := rand.New(rand.NewSource(42))
		out := make([]LookupResult, 0, 2*files)
		for i := 0; i < 2*files; i++ {
			out = append(out, c.LookupWith(rng, "/f"+strconv.Itoa(i%files), -1))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at lookup %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
