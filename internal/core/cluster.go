package core

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ghba/internal/bloomarray"
	"ghba/internal/group"
	"ghba/internal/mds"
	"ghba/internal/memmodel"
	"ghba/internal/metrics"
	"ghba/internal/shipq"
	"ghba/internal/simnet"
)

// Cluster is a simulated G-HBA deployment.
//
// Concurrency model: the read path is lock-free, the write path is locked.
//
// Lookups (Lookup, LookupWith, LookupAt) acquire no locks at all: they load
// the current epoch — an immutable topology snapshot published through an
// atomic pointer — and walk the four-level hierarchy against it. Filter
// probes along the way are word-wise atomic, and the replica/LRU arrays
// publish copy-on-write snapshots of their own, so a lookup races nothing.
// The only shared mutable state a lookup touches is internally synchronized
// observability (tallies, latency stats, message counts, the L1 learning
// write) and, in queued mode, the queue-model map under queueMu.
//
// Writers keep the existing mutex discipline among themselves: c.mu is the
// topology lock. Mutations (Create, Delete, Apply, ApplyWith) and replica
// shipping (PushUpdate, Flush) hold mu as readers and synchronize through
// finer-grained structures — the sharded homes map, per-node locks, ship
// stripes. Reconfiguration — Populate, SyncAllReplicas, AddMDS, RemoveMDS,
// FailMDS — takes mu exclusively because it rewrites the node/group maps the
// writer paths navigate by, and republishes the epoch before releasing it. A
// lookup that loaded the previous epoch completes against that consistent
// older topology, which is indistinguishable from it having run just before
// the reconfiguration committed.
//
// Creates and deletes on different MDSes therefore proceed in parallel;
// operations on the same node serialize only on that node's lock, and
// replica shipping serializes only on the holder arrays it touches.
//
// Methods suffixed *Locked assume c.mu is already held (read or write as
// documented) and must not be called without it.
type Cluster struct {
	cfg Config

	// mu guards the topology: nodes, groups, groupOf, ids, and the
	// nextMDSID/nextGroupID counters.
	mu sync.RWMutex

	nodes   map[int]*mds.Node
	groups  map[int]*group.Group
	groupOf map[int]int // MDS ID → group ID

	// ids caches the sorted MDS IDs so the hot path does not rebuild and
	// sort the slice on every random entry draw. Maintained on every
	// membership change; treat as immutable between changes.
	ids []int

	// epoch is the published topology snapshot the lock-free read path
	// navigates by. Reconfiguration rebuilds it under the write lock
	// (publishEpochLocked) and swaps it in as its last visible act; the
	// snapshot itself is immutable forever after.
	epoch atomic.Pointer[epoch]

	// homes is the ground truth mapping of file → home MDS, used for
	// placement and final verification (what the disks would answer).
	// Sharded and internally locked so concurrent creates/deletes on
	// different paths never contend.
	homes *homeShards

	// ships coalesces replica shipping out of the mutate hot path; see
	// shipQueue. Drained while holding mu (read suffices).
	ships *shipq.Queue

	// shipStripes serialize ships per origin (striped by origin ID): the
	// snapshot taken under the origin's node lock and its installation at
	// every holder must commit as one unit relative to other ships of the
	// same origin, or a holder could keep an older snapshot than the one
	// the origin's staleness tracking assumes it has.
	shipStripes [32]sync.Mutex

	// lru models the replicated LRU Bloom filter arrays of L1: each home
	// MDS maintains a small filter over its recently served files and
	// replicates it to every server. Because the hot set is tiny, the
	// paper treats these replicas as promptly propagated; the simulator
	// models that with one shared array all entry points consult. Every
	// MDS stores its own copy, so the footprint is charged per MDS. The
	// array carries its own lock, so lookup workers may observe into it
	// while holding only the cluster read lock.
	lru *bloomarray.LRUArray

	mem *memmodel.Model

	// rng drives the legacy serial API (RandomMDS, entry fallback) and all
	// writer-side placement decisions. rngMu guards it so the serial API
	// stays usable next to parallel readers; the parallel read path never
	// touches it — workers supply their own RNG via LookupWith.
	rngMu sync.Mutex
	rng   *rand.Rand

	msgs  *simnet.Counter
	tally metrics.LevelTally
	// perLevel tracks the latency of queries served at each level, feeding
	// the D_LRU, D_L2, D_group, D_net terms of Equation 4.
	perLevel [5]metrics.LatencyStats
	overall  metrics.LatencyStats

	// queue holds each MDS's next-free time for the open-loop queuing
	// model used by the latency-versus-load experiments. queueMu guards it
	// so queued lookups (LookupAt, Apply) can run under the topology read
	// lock alongside other workers.
	queueMu sync.Mutex
	queue   map[int]time.Duration

	nextMDSID   int
	nextGroupID int
}

// New builds a cluster with cfg.NumMDS servers partitioned into groups of at
// most cfg.MaxGroupSize, with empty namespaces and fully synchronized
// (empty) replicas.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	lru, err := bloomarray.NewLRUArrayLayout(cfg.Node.LRUCapacity, cfg.Node.LRUBitsPerFile, cfg.Node.Layout)
	if err != nil {
		return nil, fmt.Errorf("core: sizing LRU array: %w", err)
	}
	c := &Cluster{
		cfg:     cfg,
		nodes:   make(map[int]*mds.Node),
		groups:  make(map[int]*group.Group),
		groupOf: make(map[int]int),
		homes:   newHomeShards(),
		ships:   shipq.New(cfg.ShipBatch),
		lru:     lru,
		mem:     cfg.memoryModel(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		msgs:    simnet.NewCounter(),
		queue:   make(map[int]time.Duration),
	}

	for i := 0; i < cfg.NumMDS; i++ {
		node, err := mds.NewNode(i, cfg.Node)
		if err != nil {
			return nil, fmt.Errorf("core: creating MDS %d: %w", i, err)
		}
		c.nodes[i] = node
	}
	c.nextMDSID = cfg.NumMDS
	c.refreshIDsLocked()

	// Partition into ⌈N/M⌉ groups with sizes as even as possible (no group
	// exceeds M, none is left as a tiny tail).
	numGroups := (cfg.NumMDS + cfg.MaxGroupSize - 1) / cfg.MaxGroupSize
	base := cfg.NumMDS / numGroups
	extra := cfg.NumMDS % numGroups
	next := 0
	for gi := 0; gi < numGroups; gi++ {
		g := group.New(c.nextGroupID)
		c.nextGroupID++
		size := base
		if gi < extra {
			size++
		}
		memberIDs := make([]int, 0, size)
		for id := next; id < next+size; id++ {
			memberIDs = append(memberIDs, id)
		}
		next += size
		if err := seedGroup(g, c.nodes, memberIDs); err != nil {
			return nil, err
		}
		c.groups[g.ID()] = g
		for _, id := range memberIDs {
			c.groupOf[id] = g.ID()
		}
	}

	// Distribute replicas: every group mirrors every external MDS.
	// Iterate in ID order so replica placement is deterministic; each
	// origin ships one immutable snapshot shared by all its holders.
	groups := c.sortedGroupsLocked()
	for _, id := range c.ids {
		snap := c.nodes[id].Ship()
		for _, g := range groups {
			if g.HasMember(id) {
				continue
			}
			if _, err := g.InstallReplica(id, snap); err != nil {
				return nil, fmt.Errorf("core: seeding replicas: %w", err)
			}
		}
	}
	c.publishEpochLocked()
	return c, nil
}

// seedGroup registers members in a fresh group, wiring their IDBFAs. It
// reaches into the group via Join-free initialization: members are added
// directly because no replicas exist yet.
func seedGroup(g *group.Group, nodes map[int]*mds.Node, memberIDs []int) error {
	for _, id := range memberIDs {
		node := nodes[id]
		if node == nil {
			return fmt.Errorf("core: unknown MDS %d", id)
		}
		if _, err := g.Join(node, len(memberIDs)); err != nil {
			return fmt.Errorf("core: seeding group %d with MDS %d: %w", g.ID(), id, err)
		}
	}
	return nil
}

// refreshIDsLocked rebuilds the sorted MDS ID cache after a membership
// change. Requires the write lock.
func (c *Cluster) refreshIDsLocked() {
	ids := make([]int, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	c.ids = ids
}

// epoch is one immutable topology snapshot: everything a lookup needs to
// navigate the hierarchy, frozen at a reconfiguration boundary. Nothing in
// an epoch is ever mutated after publication — reconfiguration builds a new
// one and swaps the cluster's pointer — so readers traverse it without
// synchronization. The node pointers it holds refer to live servers whose
// filter state keeps evolving; probing those is separately safe (word-wise
// atomic filters, copy-on-write arrays).
type epoch struct {
	// ids is the sorted MDS population; L4 walks it in this order so
	// queued-mode replay stays deterministic.
	ids []int
	// nodes maps MDS ID → server for every member of this epoch.
	nodes map[int]*mds.Node
	// members maps each MDS ID to the sorted member IDs of its group —
	// the L3 multicast targets as seen from that entry. Member slices are
	// shared between co-grouped entries and immutable.
	members map[int][]int
}

// currentEpoch returns the published topology snapshot.
func (c *Cluster) currentEpoch() *epoch {
	return c.epoch.Load()
}

// publishEpochLocked freezes the current topology into a fresh epoch and
// publishes it. Requires the write lock; every reconfiguration calls it
// after the node/group maps reach their new consistent state.
func (c *Cluster) publishEpochLocked() {
	e := &epoch{
		ids:     append([]int(nil), c.ids...),
		nodes:   make(map[int]*mds.Node, len(c.nodes)),
		members: make(map[int][]int, len(c.nodes)),
	}
	for id, n := range c.nodes {
		e.nodes[id] = n
	}
	for _, g := range c.sortedGroupsLocked() {
		ms := g.Members()
		for _, id := range ms {
			e.members[id] = ms
		}
	}
	c.epoch.Store(e)
}

// sortedGroupsLocked returns groups in ascending ID order for determinism.
// Requires c.mu (read suffices).
func (c *Cluster) sortedGroupsLocked() []*group.Group {
	ids := make([]int, 0, len(c.groups))
	for id := range c.groups {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*group.Group, 0, len(ids))
	for _, id := range ids {
		out = append(out, c.groups[id])
	}
	return out
}

// Name identifies the scheme in experiment output.
func (c *Cluster) Name() string { return "G-HBA" }

// NumMDS returns the current number of metadata servers.
func (c *Cluster) NumMDS() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.nodes)
}

// NumGroups returns the current number of groups.
func (c *Cluster) NumGroups() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.groups)
}

// MDSIDs returns all server IDs in ascending order. The returned slice is
// the caller's to keep.
func (c *Cluster) MDSIDs() []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]int, len(c.ids))
	copy(out, c.ids)
	return out
}

// Node returns the MDS with the given ID, or nil.
func (c *Cluster) Node(id int) *mds.Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nodes[id]
}

// groupOfLocked returns the group containing the MDS, or nil. Requires c.mu.
func (c *Cluster) groupOfLocked(id int) *group.Group {
	gid, ok := c.groupOf[id]
	if !ok {
		return nil
	}
	return c.groups[gid]
}

// GroupOf returns the group containing the MDS, or nil.
func (c *Cluster) GroupOf(id int) *group.Group {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.groupOfLocked(id)
}

// Groups returns the groups in ascending ID order.
func (c *Cluster) Groups() []*group.Group {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sortedGroupsLocked()
}

// Messages exposes the message counter (internally synchronized).
func (c *Cluster) Messages() *simnet.Counter { return c.msgs }

// Tally exposes the per-level hit counts (Fig 13); safe to read while
// lookups run.
func (c *Cluster) Tally() *metrics.LevelTally { return &c.tally }

// LevelLatency returns latency statistics for queries served at one level.
func (c *Cluster) LevelLatency(level int) *metrics.LatencyStats {
	if level < 1 || level > 4 {
		return &metrics.LatencyStats{}
	}
	return &c.perLevel[level]
}

// OverallLatency returns latency statistics across all lookups.
func (c *Cluster) OverallLatency() *metrics.LatencyStats { return &c.overall }

// HomeOf returns the ground-truth home of a path (-1 when absent).
func (c *Cluster) HomeOf(path string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	home, ok := c.homes.get(path)
	if !ok {
		return -1
	}
	return home
}

// FileCount returns the number of files in the system.
func (c *Cluster) FileCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.homes.len()
}

// randomMDSLocked draws a uniform MDS ID from the cluster's own RNG.
// Requires c.mu (read suffices); takes rngMu internally.
func (c *Cluster) randomMDSLocked() int {
	c.rngMu.Lock()
	i := c.rng.Intn(len(c.ids))
	c.rngMu.Unlock()
	return c.ids[i]
}

// RandomMDS returns a uniformly chosen MDS ID — the paper's "each request
// can randomly choose an MDS to carry out query operations". It draws from
// the cluster's internal RNG; parallel lookup workers should instead draw
// entries from their own RNG (see LookupWith) to avoid serializing on it.
func (c *Cluster) RandomMDS() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.randomMDSLocked()
}

// randomMDSIn draws a uniform MDS ID from the epoch's population using the
// cluster RNG (under rngMu). The lock-free entry-fallback path uses it so a
// stale entry ID never aborts a lookup.
func (c *Cluster) randomMDSIn(e *epoch) int {
	c.rngMu.Lock()
	i := c.rng.Intn(len(e.ids))
	c.rngMu.Unlock()
	return e.ids[i]
}

// Populate homes every path yielded by the iterator at a uniformly random
// MDS ("all MDSs are initially populated randomly") and then synchronizes
// all replicas. The iterator keeps namespaces streamable at scale.
func (c *Cluster) Populate(each func(fn func(path string) bool)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	each(func(path string) bool {
		home := c.randomMDSLocked()
		c.nodes[home].AddFile(path)
		c.homes.put(path, home)
		return true
	})
	c.syncAllReplicasLocked()
}

// SyncAllReplicas refreshes every group's replica of every external MDS,
// bringing the whole system to a consistent snapshot. Used after bulk
// population; incremental updates flow through the XOR-delta path.
func (c *Cluster) SyncAllReplicas() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncAllReplicasLocked()
}

func (c *Cluster) syncAllReplicasLocked() {
	groups := c.sortedGroupsLocked()
	for _, id := range c.ids {
		snap := c.nodes[id].Ship()
		for _, g := range groups {
			if g.HasMember(id) {
				continue
			}
			if _, err := g.UpdateReplica(id, snap); err != nil {
				// The replica must exist by construction; a failure is an
				// invariant violation worth surfacing immediately.
				panic(fmt.Sprintf("core: sync replica of %d in group %d: %v", id, g.ID(), err))
			}
		}
	}
	// Everything just shipped; nothing is left to coalesce.
	c.ships.Drain()
}

// CheckInvariants verifies the global-mirror-image invariant for every
// group. Tests and the simulator's self-checks call this after
// reconfigurations.
func (c *Cluster) CheckInvariants() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, g := range c.sortedGroupsLocked() {
		if err := g.CoverageError(c.ids); err != nil {
			return err
		}
		if g.Size() > c.cfg.MaxGroupSize {
			return fmt.Errorf("core: group %d has %d members > M=%d", g.ID(), g.Size(), c.cfg.MaxGroupSize)
		}
	}
	for id := range c.nodes {
		if c.groupOfLocked(id) == nil {
			return fmt.Errorf("core: MDS %d belongs to no group", id)
		}
	}
	return nil
}
