package core

import (
	"strconv"
	"testing"
)

func TestAddMDSJoinsSpareGroup(t *testing.T) {
	// 7 MDSs, M=4 → groups of 4 and 3; the new MDS joins the 3-group.
	c := newPopulated(t, 7, 4, 300)
	before := c.NumGroups()
	id, rep, err := c.AddMDS()
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 {
		t.Errorf("new ID = %d, want 7", id)
	}
	if c.NumMDS() != 8 || c.NumGroups() != before {
		t.Errorf("topology = %d MDSs / %d groups", c.NumMDS(), c.NumGroups())
	}
	if rep.ReplicasMigrated == 0 || rep.Messages == 0 {
		t.Errorf("join reported no work: %+v", rep)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after join: %v", err)
	}
	// New MDS must be findable as a home: create a file until it lands
	// there, then look it up.
	if res := c.Lookup("/f0", id); !res.Found {
		t.Error("lookup via new MDS failed")
	}
}

// TestAddMDSMigrationBound verifies the paper's claim that a G-HBA join
// migrates only (N−M′)/(M′+1) replicas rather than HBA's N.
func TestAddMDSMigrationBound(t *testing.T) {
	c := newPopulated(t, 20, 7, 100) // groups: 7, 7, 6
	n := c.NumMDS()
	_, rep, err := c.AddMDS() // joins the 6-member group
	if err != nil {
		t.Fatal(err)
	}
	// Bound: (N−M′)/(M′+1) with N=21, M′=6 → 15/7 ≈ 2.14 → small. Allow
	// slack for rounding, but far below N.
	bound := (n + 1 - 6) / 7
	if rep.ReplicasMigrated > bound+2 {
		t.Errorf("migrated %d replicas, want ≈%d", rep.ReplicasMigrated, bound)
	}
	if rep.ReplicasMigrated >= n {
		t.Errorf("migrated %d ≥ N=%d: no better than HBA", rep.ReplicasMigrated, n)
	}
}

func TestAddMDSSplitsFullGroups(t *testing.T) {
	// 4 MDSs, M=2 → two full groups; adding forces a split.
	c := newPopulated(t, 4, 2, 200)
	before := c.NumGroups()
	_, _, err := c.AddMDS()
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGroups() != before+1 {
		t.Errorf("groups = %d, want %d (split)", c.NumGroups(), before+1)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after split: %v", err)
	}
	// Lookups still resolve every file correctly.
	for i := 0; i < 200; i += 17 {
		path := "/f" + strconv.Itoa(i)
		res := c.Lookup(path, c.RandomMDS())
		if !res.Found || res.Home != c.HomeOf(path) {
			t.Fatalf("post-split lookup of %s: %+v", path, res)
		}
	}
}

func TestRemoveMDSRehomesFiles(t *testing.T) {
	c := newPopulated(t, 9, 3, 300)
	victim := c.MDSIDs()[4]
	had := c.Node(victim).FileCount()
	if had == 0 {
		t.Fatal("setup: victim homes no files")
	}
	rep, err := c.RemoveMDS(victim)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumMDS() != 8 {
		t.Errorf("NumMDS = %d", c.NumMDS())
	}
	if rep.Messages == 0 {
		t.Error("removal cost no messages")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after removal: %v", err)
	}
	// All 300 files still resolve, none at the departed MDS.
	for i := 0; i < 300; i++ {
		path := "/f" + strconv.Itoa(i)
		res := c.Lookup(path, c.RandomMDS())
		if !res.Found {
			t.Fatalf("file %s lost after MDS removal", path)
		}
		if res.Home == victim {
			t.Fatalf("file %s still homed at departed MDS", path)
		}
	}
}

func TestRemoveMDSMergesGroups(t *testing.T) {
	// 4 MDSs, M=4, forced into two groups of 2 by building with M=2 and
	// then allowing merges… simpler: 6 MDSs M=4 → groups 4 + 2. Removing
	// from the 4-group leaves 3 + 2 = 5 > 4, no merge; removing another
	// leaves 2 + 2 = 4 ≤ 4 → merge into one group.
	c := newPopulated(t, 6, 4, 200)
	if c.NumGroups() != 2 {
		t.Fatalf("setup: %d groups", c.NumGroups())
	}
	if _, err := c.RemoveMDS(0); err != nil {
		t.Fatal(err)
	}
	if c.NumGroups() != 2 {
		t.Errorf("premature merge: %d groups", c.NumGroups())
	}
	if _, err := c.RemoveMDS(1); err != nil {
		t.Fatal(err)
	}
	if c.NumGroups() != 1 {
		t.Errorf("groups = %d after shrink, want 1 (merged)", c.NumGroups())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after merge: %v", err)
	}
	for i := 0; i < 200; i += 13 {
		path := "/f" + strconv.Itoa(i)
		if res := c.Lookup(path, c.RandomMDS()); !res.Found {
			t.Fatalf("file %s lost after merge", path)
		}
	}
}

func TestRemoveMDSErrors(t *testing.T) {
	c := newPopulated(t, 2, 2, 10)
	if _, err := c.RemoveMDS(99); err == nil {
		t.Error("unknown MDS removal succeeded")
	}
	if _, err := c.RemoveMDS(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RemoveMDS(1); err == nil {
		t.Error("last MDS removal succeeded")
	}
}

func TestChurnPreservesInvariantsAndData(t *testing.T) {
	c := newPopulated(t, 10, 4, 400)
	// Alternate adds and removes, checking invariants throughout.
	for round := 0; round < 6; round++ {
		if round%2 == 0 {
			if _, _, err := c.AddMDS(); err != nil {
				t.Fatalf("round %d add: %v", round, err)
			}
		} else {
			ids := c.MDSIDs()
			if _, err := c.RemoveMDS(ids[round%len(ids)]); err != nil {
				t.Fatalf("round %d remove: %v", round, err)
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("round %d invariants: %v", round, err)
		}
	}
	// Every file still resolves to its true home.
	for i := 0; i < 400; i += 7 {
		path := "/f" + strconv.Itoa(i)
		res := c.Lookup(path, c.RandomMDS())
		if !res.Found || res.Home != c.HomeOf(path) {
			t.Fatalf("after churn, lookup of %s = %+v (truth %d)", path, res, c.HomeOf(path))
		}
	}
}
