package core

import "sync"

// homeShardCount is the number of locks the ground-truth file→home map is
// striped over. A power of two keeps the shard selection a mask; 64 shards
// hold contention near zero for any worker count this simulator will see.
const homeShardCount = 64

// homeShards is the sharded ground-truth mapping of file path → home MDS.
// Creates, deletes and L4 reads from concurrent workers touch only the
// shard their path hashes to, so mutations on different paths never
// serialize on one map lock. Reconfiguration-level scans (scrub, re-home)
// still go shard by shard; they run under the cluster-exclusive lock, which
// keeps them atomic with respect to the mutating read-lock holders.
type homeShards struct {
	shards [homeShardCount]homeShard
}

type homeShard struct {
	mu sync.RWMutex
	m  map[string]int
}

func newHomeShards() *homeShards {
	h := &homeShards{}
	for i := range h.shards {
		h.shards[i].m = make(map[string]int)
	}
	return h
}

// shard returns the shard owning path, via FNV-1a over the path bytes.
func (h *homeShards) shard(path string) *homeShard {
	const offset, prime = uint64(14695981039346656037), uint64(1099511628211)
	hash := offset
	for i := 0; i < len(path); i++ {
		hash ^= uint64(path[i])
		hash *= prime
	}
	return &h.shards[hash&(homeShardCount-1)]
}

// get returns the home of path and whether it exists.
func (h *homeShards) get(path string) (int, bool) {
	s := h.shard(path)
	s.mu.RLock()
	home, ok := s.m[path]
	s.mu.RUnlock()
	return home, ok
}

// put records path's home, overwriting any previous mapping. Callers on the
// concurrent write path must instead use putThen so the paired node update
// cannot interleave with a racing delete; plain put is for contexts already
// serialized by the cluster-exclusive lock (Populate, reconfiguration).
func (h *homeShards) put(path string, home int) {
	s := h.shard(path)
	s.mu.Lock()
	s.m[path] = home
	s.mu.Unlock()
}

// putThen records path's home and runs then() while still holding the shard
// lock. The callback is where the caller updates the home node's store and
// filter: keeping it inside the critical section makes (map entry, node
// state) move together, so a concurrent delete of the same path — which
// takes the same shard lock through removeThen — can never observe the map
// entry without the node state or vice versa.
func (h *homeShards) putThen(path string, home int, then func()) {
	s := h.shard(path)
	s.mu.Lock()
	s.m[path] = home
	then()
	s.mu.Unlock()
}

// putIfAbsentThen atomically claims path for home and, on success, runs
// then() while still holding the shard lock (see putThen for why). When the
// path already has a home it returns that home and false without calling
// then. This is the linearization point of a create: two workers racing on
// the same path cannot both claim it.
func (h *homeShards) putIfAbsentThen(path string, home int, then func()) (int, bool) {
	s := h.shard(path)
	s.mu.Lock()
	if prev, ok := s.m[path]; ok {
		s.mu.Unlock()
		return prev, false
	}
	s.m[path] = home
	then()
	s.mu.Unlock()
	return home, true
}

// removeThen deletes path's mapping and, when it existed, runs then(home)
// under the shard lock, returning the home it had and whether the path
// existed. This is the linearization point of a delete; the callback is
// where the caller unlinks the file from its home node.
func (h *homeShards) removeThen(path string, then func(home int)) (int, bool) {
	s := h.shard(path)
	s.mu.Lock()
	home, ok := s.m[path]
	if ok {
		delete(s.m, path)
		then(home)
	}
	s.mu.Unlock()
	if !ok {
		return -1, false
	}
	return home, true
}

// len returns the total number of files across all shards.
func (h *homeShards) len() int {
	total := 0
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.RLock()
		total += len(s.m)
		s.mu.RUnlock()
	}
	return total
}

// scrub removes every path homed at the given MDS, returning how many were
// dropped. Used by fail-over when a server's files become unavailable.
func (h *homeShards) scrub(home int) int {
	dropped := 0
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		for path, hm := range s.m {
			if hm == home {
				delete(s.m, path)
				dropped++
			}
		}
		s.mu.Unlock()
	}
	return dropped
}
