package core

import (
	"sort"
	"sync"
)

// shipQueue is the per-origin coalescing ship queue that decouples replica
// shipping from the mutate hot path. A create or rebuild that pushes a home
// MDS past the XOR-delta threshold no longer ships the filter inline;
// instead the origin is marked dirty here. The queue drains — shipping each
// dirty origin exactly once, in ascending ID order — when the number of
// threshold crossings since the last drain reaches the configured batch, or
// when the cluster is explicitly flushed. Repeated crossings by the same
// origin between drains coalesce into one pending entry, which is what
// amortizes the paper's stale-replica-per-group update across a burst of
// creates.
//
// With batch ≤ 1 every crossing drains immediately, reproducing the paper's
// ship-at-threshold protocol bit for bit on the serial path.
type shipQueue struct {
	mu        sync.Mutex
	pending   map[int]struct{}
	crossings int
	batch     int
}

func newShipQueue(batch int) *shipQueue {
	if batch < 1 {
		batch = 1
	}
	return &shipQueue{pending: make(map[int]struct{}), batch: batch}
}

// note records a threshold crossing for origin. When the crossing count
// reaches the batch size it returns the sorted set of dirty origins to ship
// (clearing the queue); otherwise it returns nil.
func (q *shipQueue) note(origin int) []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pending[origin] = struct{}{}
	q.crossings++
	if q.crossings < q.batch {
		return nil
	}
	return q.takeLocked()
}

// drain returns every dirty origin in ascending order, clearing the queue.
func (q *shipQueue) drain() []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.takeLocked()
}

// takeLocked empties the pending set. Requires q.mu.
func (q *shipQueue) takeLocked() []int {
	q.crossings = 0
	if len(q.pending) == 0 {
		return nil
	}
	out := make([]int, 0, len(q.pending))
	for origin := range q.pending {
		out = append(out, origin)
	}
	clear(q.pending)
	sort.Ints(out)
	return out
}

// forget drops origin from the pending set: the origin was just shipped
// directly (PushUpdate, reconfiguration) or has left the system.
func (q *shipQueue) forget(origin int) {
	q.mu.Lock()
	delete(q.pending, origin)
	q.mu.Unlock()
}

// pendingCount returns the number of dirty origins awaiting a drain.
func (q *shipQueue) pendingCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}
