package core

import (
	"fmt"

	"ghba/internal/group"
	"ghba/internal/simnet"
)

// FailoverReport describes the recovery work after an MDS crash.
type FailoverReport struct {
	// ReplicasRefetched counts Bloom-filter replicas the group re-fetched
	// from their origins because the crashed member's copies were lost.
	ReplicasRefetched int
	// FilesLost is how many files were homed at the crashed MDS and are
	// unavailable until recreated (the paper's "degraded coverage").
	FilesLost int
	// Messages counts all recovery protocol messages.
	Messages int
}

// FailMDS simulates the crash-failure path of Section 4.5: heart-beats
// detect the failure, the dead server's Bloom filters are removed everywhere
// (reducing false positives), its group re-fetches the replicas it was
// holding from their origin MDSs, and groups merge if the survivors fit
// within M. Unlike RemoveMDS, nothing is migrated *from* the dead node — its
// replica holdings and the metadata it homed are simply gone, and lookups
// for its files return not-found until the files are recreated.
func (c *Cluster) FailMDS(id int) (FailoverReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.publishEpochLocked()
	var rep FailoverReport
	node, ok := c.nodes[id]
	if !ok {
		return rep, fmt.Errorf("core: unknown MDS %d", id)
	}
	if len(c.nodes) == 1 {
		return rep, fmt.Errorf("core: refusing to fail the last MDS")
	}
	g := c.groupOfLocked(id)

	// The replicas the dead member held are lost; note their origins
	// before tearing the member down.
	lostOrigins := node.Replicas().IDs()

	// Heart-beat detection: one message per surviving groupmate.
	rep.Messages += g.Size() - 1

	// Remove the member without migration: drop it from the group and
	// scrub its ID filter from survivors' IDBFAs.
	if _, err := c.dropDeadMember(g, id); err != nil {
		return rep, err
	}
	delete(c.groupOf, id)
	delete(c.nodes, id)
	c.ships.Forget(id)
	c.refreshIDsLocked()
	if g.Size() == 0 {
		delete(c.groups, g.ID())
	}

	// The dead server's own filter replicas are removed from every other
	// group ("the corresponding Bloom filters are removed from the other
	// MDSs to reduce the number of false positives").
	for _, other := range c.sortedGroupsLocked() {
		r := other.RemoveOrigin(id)
		rep.Messages += r.Messages
	}

	// Survivors re-fetch the lost replicas from their origins so the
	// group's global mirror image is restored.
	if g.Size() > 0 {
		for _, origin := range lostOrigins {
			src := c.nodes[origin]
			if src == nil || g.HasMember(origin) {
				continue
			}
			r, err := g.InstallReplica(origin, src.Ship())
			if err != nil {
				return rep, fmt.Errorf("core: re-fetching replica of %d: %w", origin, err)
			}
			rep.ReplicasRefetched++
			rep.Messages += r.Messages
		}
	}

	// Files homed at the dead server are unavailable: degraded coverage,
	// not wrong answers. Ground truth forgets them so lookups miss.
	rep.FilesLost = c.homes.scrub(id)
	c.lru.Forget(id)

	// Groups merge if the shrink allows it, as after a graceful departure.
	mergeRep := c.mergeWherePossibleLocked()
	rep.Messages += mergeRep.Messages

	c.msgs.Add(simnet.MsgMembership, uint64(rep.Messages))
	return rep, nil
}

// dropDeadMember removes a crashed member from its group without migrating
// anything from it (its state is unreachable).
func (c *Cluster) dropDeadMember(g *group.Group, id int) (struct{}, error) {
	// Leave would migrate the dead node's replicas; instead, surgically
	// clear its replica array first so Leave has nothing to move, which
	// models the state being lost with the machine.
	node := g.Member(id)
	if node == nil {
		return struct{}{}, fmt.Errorf("core: MDS %d not in group %d", id, g.ID())
	}
	for _, origin := range node.Replicas().IDs() {
		node.DropReplica(origin)
	}
	if _, err := g.Leave(id); err != nil {
		return struct{}{}, fmt.Errorf("core: removing dead member: %w", err)
	}
	return struct{}{}, nil
}
