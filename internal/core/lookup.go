package core

import (
	"math/rand"
	"sync"
	"time"

	"ghba/internal/bloom"
	"ghba/internal/bloomarray"
	"ghba/internal/simnet"
)

// lookupScratch is the reusable per-lookup state of the hash-once pipeline:
// the path digest plus the hit buffers every probe appends into. Pooling it
// keeps the steady-state read path free of heap allocations no matter how
// many replicas a lookup touches.
type lookupScratch struct {
	digest bloom.Digest
	hits   []int // L1/L2 probe buffer
	mhits  []int // per-member L3 probe buffer
	set    []int // L3 union of member hits (sorted, unique)
}

var scratchPool = sync.Pool{
	New: func() any {
		return &lookupScratch{
			hits:  make([]int, 0, 16),
			mhits: make([]int, 0, 16),
			set:   make([]int, 0, 16),
		}
	},
}

// putScratch returns scratch to the pool with the digest zeroed: pooled
// objects live indefinitely, and a populated digest would carry the last
// lookup's hash state (and retain whatever its cache references grow to hold)
// across unrelated requests. The hit buffers keep their capacity — that reuse
// is the point of the pool — but the digest is per-path state, not scratch
// capacity.
func putScratch(s *lookupScratch) {
	s.digest = bloom.Digest{}
	scratchPool.Put(s)
}

// replicaBytes returns the accounted memory footprint of one replica for
// pressure purposes (virtual paper-scale size when configured, otherwise the
// node's actual filter size).
func (c *Cluster) replicaBytes(actual uint64) uint64 {
	if c.cfg.VirtualReplicaBytes > 0 {
		return c.cfg.VirtualReplicaBytes
	}
	return actual
}

// segmentProbeCost returns the service time of probing an MDS's segment
// array (its replicas plus its own filter), charging disk penalties for the
// spilled fraction under the memory budget.
func (c *Cluster) segmentProbeCost(e *epoch, id int) time.Duration {
	node := e.nodes[id]
	total := node.ReplicaCount() + 1 // replicas + own filter
	perReplica := c.replicaBytes(node.LocalFilter().SizeBytes())
	totalBytes := uint64(total) * perReplica
	return c.mem.ArrayProbeCost(total, totalBytes,
		c.cfg.Cost.MemProbe, c.cfg.Cost.DiskRead, c.cfg.CacheHitRate)
}

// l1ProbeCost returns the cost of checking the replicated LRU array: always
// memory resident (it is deliberately small), one probe per tracked home.
func (c *Cluster) l1ProbeCost() time.Duration {
	entries := c.lru.Entries()
	if entries == 0 {
		entries = 1
	}
	return time.Duration(entries) * c.cfg.Cost.MemProbe
}

// verify charges the forward-and-check of a candidate home: one unicast RTT
// plus a memory probe at the target; the target consults its authoritative
// store (memory-resident index in both the simulator and the prototype).
//
// A candidate absent from the epoch — an MDS that failed or left, whose ID a
// stale filter still answers for — is rejected free of charge: no server
// exists to receive the unicast, so counting a MsgQueryUnicast and an RTT
// would book traffic to a dead daemon (the accounting bug this replaces).
func (c *Cluster) verify(e *epoch, candidate int, path string) (bool, time.Duration) {
	node := e.nodes[candidate]
	if node == nil {
		return false, 0
	}
	c.msgs.Add(simnet.MsgQueryUnicast, 1)
	cost := c.cfg.Cost.UnicastRTT + c.cfg.Cost.MemProbe
	return node.HasFile(path), cost
}

// remoteWork charges work units to a remote MDS. In queued mode the work
// lands on the server's queue and the caller observes that server's response
// time (wait + service); otherwise only the service time is returned. This
// is how group and global multicasts consume capacity across the system —
// the effect that makes very large groups counterproductive. Queue state
// carries its own mutex; each read-modify-write of a server's next-free time
// is atomic under queueMu.
func (c *Cluster) remoteWork(id int, arrival, work time.Duration, queued bool) time.Duration {
	if !queued {
		return work
	}
	c.queueMu.Lock()
	start := arrival
	if next := c.queue[id]; next > start {
		start = next
	}
	c.queue[id] = start + work
	c.queueMu.Unlock()
	return (start - arrival) + work
}

// Lookup resolves the home MDS of path starting at the entry MDS, walking
// the four-level critical path of Section 2.3, without queueing effects
// (pure service latency). It updates the per-level tallies, latency
// statistics, and the entry node's L1 array.
//
// Lookup is the lock-free read path: it loads the current epoch and acquires
// no locks, so any number of goroutines may call it concurrently, also
// concurrently with reconfiguration (which publishes a new epoch; in-flight
// lookups finish against the one they loaded). An unknown entry falls back
// to a random MDS drawn from the cluster's internal RNG; hot parallel loops
// should prefer LookupWith to keep RNG state worker-local.
func (c *Cluster) Lookup(path string, entry int) LookupResult {
	e := c.currentEpoch()
	if e.nodes[entry] == nil {
		entry = c.randomMDSIn(e)
	}
	return c.lookupEpoch(e, path, entry, 0, false)
}

// LookupWith is Lookup with a caller-supplied RNG: a negative or unknown
// entry is re-drawn uniformly from rng. Parallel workers give each goroutine
// its own seeded RNG so lookups share no mutable state beyond the internally
// synchronized observability structures, and a single-worker run is
// bit-for-bit reproducible.
func (c *Cluster) LookupWith(rng *rand.Rand, path string, entry int) LookupResult {
	e := c.currentEpoch()
	if entry < 0 || e.nodes[entry] == nil {
		entry = e.ids[rng.Intn(len(e.ids))]
	}
	return c.lookupEpoch(e, path, entry, 0, false)
}

// LookupAt replays a lookup arriving at the given offset through the
// open-loop queuing model: the request waits for the entry MDS to drain its
// queue, multicast probes occupy the members they land on, and the returned
// latency includes all queueing delays. Queue state synchronizes on its own
// mutex, so queued lookups run concurrently with other workers.
func (c *Cluster) LookupAt(path string, entry int, arrival time.Duration) LookupResult {
	e := c.currentEpoch()
	if e.nodes[entry] == nil {
		entry = c.randomMDSIn(e)
	}
	return c.lookupEpoch(e, path, entry, arrival, true)
}

// lookupEpoch walks the four-level hierarchy against one topology snapshot,
// with zero lock acquisitions on the critical path. The hot path mutates
// nothing except internally synchronized state — the observability
// structures, the word-wise-atomic filters probed along the way, and (in
// queued mode) the queue-model map under queueMu. The entry must exist in e.
//
//ghbavet:hotpath
func (c *Cluster) lookupEpoch(e *epoch, path string, entry int, arrival time.Duration, queued bool) LookupResult {
	node := e.nodes[entry]

	// Hash once: every filter probe below — L1 generations, segment
	// replicas, group members' arrays, the L1 learning write — replays
	// this digest instead of re-hashing the path.
	s := scratchPool.Get().(*lookupScratch)
	defer putScratch(s)
	s.digest = bloom.NewDigestString(path)
	d := &s.digest

	latency := c.cfg.Cost.ClientRTT
	var server time.Duration

	finish := func(res LookupResult) LookupResult {
		if queued {
			// The entry server processes this request after draining its
			// queue; the wait precedes everything the client observes.
			c.queueMu.Lock()
			start := arrival
			if next := c.queue[entry]; next > start {
				start = next
			}
			c.queue[entry] = start + server
			c.queueMu.Unlock()
			latency += start - arrival
		}
		res.Path = path
		res.Latency = latency
		res.ServerTime = server
		c.tally.Record(res.Level)
		c.perLevel[res.Level].Observe(latency)
		c.overall.Observe(latency)
		if res.Found {
			// The home MDS records the access in its LRU filter, whose
			// replica every server consults at L1. The digest carries the
			// hash into the learning write too. The steady-state re-observe
			// path inside is lock- and allocation-free; only a first
			// observation or a generation rotation allocates, which the
			// flow-insensitive hot-path check cannot distinguish.
			//ghbavet:ignore L1 learning allocates only on new-entry/rotation, amortized away in steady state
			c.lru.ObserveDigest(d, res.Home)
		}
		return res
	}

	// L1: the replicated LRU Bloom filter array.
	if !c.cfg.DisableL1 {
		l1Cost := c.l1ProbeCost()
		latency += l1Cost
		server += l1Cost
		r := c.lru.QueryDigest(d, s.hits)
		s.hits = r.Hits
		if home, ok := r.Unique(); ok {
			ok2, cost := c.verify(e, home, path)
			latency += cost
			if ok2 {
				return finish(LookupResult{Home: home, Found: true, Level: 1})
			}
			// Stale or false L1 hit: fall through to L2 having paid the
			// penalty.
		}
	}

	// L2: the local segment Bloom filter array.
	l2Cost := c.segmentProbeCost(e, entry)
	latency += l2Cost
	server += l2Cost
	r2 := node.QueryL2Digest(d, s.hits)
	s.hits = r2.Hits
	if home, ok := r2.Unique(); ok {
		if home == entry {
			// Our own filter answered: authoritative check is local.
			latency += c.cfg.Cost.MemProbe
			if node.HasFile(path) {
				return finish(LookupResult{Home: entry, Found: true, Level: 2})
			}
		} else {
			ok2, cost := c.verify(e, home, path)
			latency += cost
			if ok2 {
				return finish(LookupResult{Home: home, Found: true, Level: 2})
			}
		}
		// False positive at L2: the paper's penalty is the group multicast.
	}

	// L3: multicast within the group; every member probes its segment
	// array in parallel, so the client waits for the multicast plus the
	// slowest member's response (including that member's queue when the
	// system is loaded).
	members := e.members[entry]
	c.msgs.Add(simnet.MsgQueryMulticast, uint64(len(members)-1))
	latency += c.cfg.Cost.Multicast(len(members) - 1)
	// The entry spends CPU sending the multicast and folding the answers.
	fanoutCPU := time.Duration(len(members)-1) * c.cfg.Cost.MsgProc
	latency += fanoutCPU
	server += fanoutCPU
	var slowest time.Duration
	set := s.set[:0]
	for _, id := range members {
		if id == entry {
			// Entry already probed its own array at L2.
			continue
		}
		resp := c.remoteWork(id, arrival, c.cfg.Cost.MsgProc+c.segmentProbeCost(e, id), queued)
		if resp > slowest {
			slowest = resp
		}
		rm := e.nodes[id].QueryL2Digest(d, s.mhits)
		s.mhits = rm.Hits
		for _, h := range rm.Hits {
			// The L3 union is a handful of MDS IDs: a sorted slice
			// reusing its backing array beats the map this replaced.
			set = bloomarray.InsertSorted(set, h)
		}
	}
	s.set = set
	latency += slowest
	if len(set) == 1 {
		home := set[0]
		ok2, cost := c.verify(e, home, path)
		latency += cost
		if ok2 {
			return finish(LookupResult{Home: home, Found: true, Level: 3})
		}
	}

	// L4: global multicast; every MDS checks its local filter at memory
	// speed and positives verify on disk. The true home always answers.
	others := len(e.ids) - 1
	c.msgs.Add(simnet.MsgQueryMulticast, uint64(others))
	latency += c.cfg.Cost.Multicast(others)
	l4CPU := time.Duration(others) * c.cfg.Cost.MsgProc
	latency += l4CPU
	server += l4CPU
	var slowestL4 time.Duration
	for _, id := range e.ids {
		if id == entry {
			continue
		}
		resp := c.remoteWork(id, arrival, c.cfg.Cost.MsgProc+c.cfg.Cost.MemProbe, queued)
		if resp > slowestL4 {
			slowestL4 = resp
		}
	}
	latency += slowestL4 + c.cfg.Cost.MemProbe
	if home, ok := c.homes.get(path); ok {
		// The home's positive answer is verified against its store; the
		// paper charges a disk lookup for this final confirmation.
		latency += c.cfg.Cost.DiskRead
		return finish(LookupResult{Home: home, Found: true, Level: 4})
	}
	// Definitive miss: every local filter answered negative (or the rare
	// false positives were refuted by disk checks, charged here).
	latency += c.cfg.Cost.DiskRead
	return finish(LookupResult{Home: -1, Found: false, Level: 4})
}

// ResetQueues clears the queuing state between experiment runs.
func (c *Cluster) ResetQueues() {
	c.queueMu.Lock()
	defer c.queueMu.Unlock()
	c.queue = make(map[int]time.Duration)
}
