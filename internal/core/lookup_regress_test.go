package core

import (
	"math/rand"
	"strconv"
	"testing"

	"ghba/internal/bloom"
	"ghba/internal/simnet"
)

// Regression: verify used to charge a MsgQueryUnicast and an RTT before
// checking whether the candidate still existed, booking traffic to dead
// daemons whenever a stale filter answered for a failed MDS. A candidate
// absent from the epoch must be rejected at zero cost.
func TestVerifyDeadCandidateCostsNothing(t *testing.T) {
	c := newPopulated(t, 8, 4, 100)
	e := c.currentEpoch()
	before := c.Messages().Get(simnet.MsgQueryUnicast)

	found, cost := c.verify(e, 9999, "/f0")
	if found {
		t.Error("verify found a file on a nonexistent MDS")
	}
	if cost != 0 {
		t.Errorf("verify charged %v against a nonexistent MDS", cost)
	}
	if got := c.Messages().Get(simnet.MsgQueryUnicast); got != before {
		t.Errorf("verify counted %d unicasts against a nonexistent MDS", got-before)
	}

	// A live candidate still pays the forward-and-check.
	found, cost = c.verify(e, c.HomeOf("/f0"), "/f0")
	if !found {
		t.Error("verify missed /f0 on its home")
	}
	if cost <= 0 {
		t.Error("verify charged nothing for a live unicast")
	}
	if got := c.Messages().Get(simnet.MsgQueryUnicast); got != before+1 {
		t.Errorf("live verify counted %d unicasts, want 1", got-before)
	}
}

// End-to-end flavor of the same bug: after an MDS fails, lookups whose stale
// replicas still answer for it must not book unicasts above what live
// candidates account for. The invariant checked is structural — every
// counted unicast corresponds to a verify against a node present in the
// epoch, so the tally can only grow when lookups actually run.
func TestLookupAfterFailoverBooksNoGhostUnicasts(t *testing.T) {
	const files = 200
	c := newPopulated(t, 10, 5, files)
	ids := c.MDSIDs()
	if _, err := c.FailMDS(ids[len(ids)-1]); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	c.Messages().Reset()
	lookups := 0
	for i := 0; i < files; i++ {
		path := "/f" + strconv.Itoa(i)
		truth := c.HomeOf(path)
		if truth < 0 {
			continue // lost with the failed server
		}
		res := c.LookupWith(rng, path, -1)
		if !res.Found || res.Home != truth {
			t.Fatalf("lookup %s = %+v, truth %d", path, res, truth)
		}
		lookups++
	}
	// Each surviving lookup verifies at most a handful of live candidates;
	// a regression that counts dead-candidate unicasts shows up as a tally
	// far above the per-lookup candidate budget.
	e := c.currentEpoch()
	maxPerLookup := uint64(len(e.ids))
	if got := c.Messages().Get(simnet.MsgQueryUnicast); got > uint64(lookups)*maxPerLookup {
		t.Errorf("%d unicasts for %d lookups across %d live nodes", got, lookups, len(e.ids))
	}
}

// Regression: lookupScratch returned to the pool with a populated digest
// carried the previous path's hash state into unrelated requests. putScratch
// must zero the digest while keeping the hit buffers' capacity (the reuse
// the pool exists for).
func TestPutScratchZeroesDigest(t *testing.T) {
	s := &lookupScratch{
		hits:  make([]int, 3, 16),
		mhits: make([]int, 2, 16),
		set:   make([]int, 1, 16),
	}
	s.digest = bloom.NewDigestString("/leaked/path")
	if s.digest == (bloom.Digest{}) {
		t.Fatal("test digest is indistinguishable from zero")
	}
	putScratch(s)
	if s.digest != (bloom.Digest{}) {
		t.Error("putScratch left the digest populated")
	}
	if cap(s.hits) != 16 || cap(s.mhits) != 16 || cap(s.set) != 16 {
		t.Error("putScratch dropped hit-buffer capacity")
	}
}
