package core

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"
)

// TestEpochSnapshotConsistentUnderChurn hammers the lock-free epoch load
// from reader goroutines while membership churns through AddMDS, RemoveMDS
// and FailMDS. Every epoch a reader observes must be internally consistent —
// each listed ID resolves to a node and to a group roster containing it —
// because an epoch is built and published atomically under the topology
// lock; readers must never see a half-built view. Run under -race this is
// the memory-model contract of the snapshot-swap read path.
func TestEpochSnapshotConsistentUnderChurn(t *testing.T) {
	const files = 200
	c := newPopulated(t, 12, 4, files)

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id, _, err := c.AddMDS()
			if err != nil {
				t.Errorf("AddMDS: %v", err)
				return
			}
			// Alternate graceful removal with crash failover so epochs are
			// republished from every reconfiguration entry point.
			if i%2 == 0 {
				if _, err := c.RemoveMDS(id); err != nil {
					t.Errorf("RemoveMDS(%d): %v", id, err)
					return
				}
			} else {
				if _, err := c.FailMDS(id); err != nil {
					t.Errorf("FailMDS(%d): %v", id, err)
					return
				}
			}
		}
	}()

	const readers = 4
	const loads = 3000
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + r)))
			for i := 0; i < loads; i++ {
				e := c.currentEpoch()
				if len(e.ids) == 0 {
					t.Errorf("reader %d: empty epoch", r)
					return
				}
				for _, id := range e.ids {
					if e.nodes[id] == nil {
						t.Errorf("reader %d: epoch lists MDS %d without a node", r, id)
						return
					}
					members, ok := e.members[id]
					if !ok {
						t.Errorf("reader %d: epoch lists MDS %d without a group", r, id)
						return
					}
					found := false
					for _, m := range members {
						if m == id {
							found = true
							break
						}
					}
					if !found {
						t.Errorf("reader %d: MDS %d missing from its own roster %v", r, id, members)
						return
					}
				}
				// Interleave real lookups so the epoch is consumed the way
				// the read path consumes it, not just inspected.
				if i%16 == 0 {
					res := c.LookupWith(rng, "/f"+strconv.Itoa(rng.Intn(files)), -1)
					if res.Level < 1 || res.Level > 4 {
						t.Errorf("reader %d: level %d out of range", r, res.Level)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	writer.Wait()

	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after churn: %v", err)
	}
	// The published epoch and the locked topology agree once quiescent.
	e := c.currentEpoch()
	ids := c.MDSIDs()
	if len(e.ids) != len(ids) {
		t.Fatalf("quiescent epoch has %d ids, topology has %d", len(e.ids), len(ids))
	}
	for i, id := range ids {
		if e.ids[i] != id {
			t.Fatalf("quiescent epoch ids %v != topology ids %v", e.ids, ids)
		}
	}
}
