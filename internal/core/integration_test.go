package core

import (
	"strconv"
	"testing"
	"time"

	"ghba/internal/trace"
)

// TestLookupCorrectUnderMemoryPressure verifies that the disk-spill model
// changes latencies, never answers: every lookup still resolves to the true
// home even when most of the replica array is "on disk".
func TestLookupCorrectUnderMemoryPressure(t *testing.T) {
	cfg := smallConfig(10, 3)
	cfg.MemoryBudgetBytes = 8 << 20
	cfg.VirtualReplicaBytes = 16 << 20 // everything spilled
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Populate(func(fn func(string) bool) {
		for i := 0; i < 200; i++ {
			if !fn("/mp/f" + strconv.Itoa(i)) {
				return
			}
		}
	})
	for i := 0; i < 200; i++ {
		path := "/mp/f" + strconv.Itoa(i)
		res := c.Lookup(path, c.RandomMDS())
		if !res.Found || res.Home != c.HomeOf(path) {
			t.Fatalf("pressure broke correctness: %s → %+v", path, res)
		}
	}
}

// TestQueuedLookupMatchesUnqueuedAnswer verifies the queuing model only
// affects timing, not routing.
func TestQueuedLookupMatchesUnqueuedAnswer(t *testing.T) {
	c := newPopulated(t, 8, 4, 200)
	for i := 0; i < 100; i++ {
		path := "/f" + strconv.Itoa(i)
		queued := c.LookupAt(path, 0, time.Duration(i)*time.Microsecond)
		if !queued.Found || queued.Home != c.HomeOf(path) {
			t.Fatalf("queued lookup wrong: %+v", queued)
		}
		if queued.Latency < queued.ServerTime {
			t.Fatalf("latency %v below server time %v", queued.Latency, queued.ServerTime)
		}
	}
}

// TestTraceReplayEndToEnd drives a full generated workload through the
// cluster and checks global consistency afterwards: every surviving file
// resolves, every deleted file misses.
func TestTraceReplayEndToEnd(t *testing.T) {
	gen, err := trace.NewGenerator(trace.Config{
		Profile:          trace.HP(),
		TIF:              2,
		FilesPerSubtrace: 1_000,
		Seed:             9,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(smallConfig(9, 3))
	if err != nil {
		t.Fatal(err)
	}
	c.Populate(func(fn func(string) bool) { gen.EachInitialPath(fn) })

	alive := make(map[string]bool)
	gen2, err := trace.NewGenerator(trace.Config{
		Profile:          trace.HP(),
		TIF:              2,
		FilesPerSubtrace: 1_000,
		Seed:             9,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen2.EachInitialPath(func(p string) bool {
		alive[p] = true
		return true
	})
	for i := 0; i < 5_000; i++ {
		rec := gen.Next()
		c.Apply(rec)
		switch rec.Op {
		case trace.OpCreate:
			alive[rec.Path] = true
		case trace.OpDelete:
			delete(alive, rec.Path)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after replay: %v", err)
	}
	// Spot-check consistency against the independently tracked namespace.
	checked := 0
	for p, want := range alive {
		if checked >= 300 {
			break
		}
		checked++
		res := c.Lookup(p, c.RandomMDS())
		if res.Found != want {
			t.Fatalf("consistency: %s found=%v want %v", p, res.Found, want)
		}
	}
	if c.FileCount() != len(alive) {
		t.Errorf("FileCount = %d, tracked %d", c.FileCount(), len(alive))
	}
}

// TestDisableL1SkipsLevel verifies the ablation switch.
func TestDisableL1SkipsLevel(t *testing.T) {
	cfg := smallConfig(6, 3)
	cfg.DisableL1 = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Populate(func(fn func(string) bool) {
		for i := 0; i < 100; i++ {
			if !fn("/nl1/f" + strconv.Itoa(i)) {
				return
			}
		}
	})
	for i := 0; i < 300; i++ {
		path := "/nl1/f" + strconv.Itoa(i%100)
		res := c.Lookup(path, c.RandomMDS())
		if !res.Found {
			t.Fatalf("lookup failed with L1 disabled: %s", path)
		}
		if res.Level == 1 {
			t.Fatal("query served at L1 despite DisableL1")
		}
	}
	if c.Tally().Count(1) != 0 {
		t.Error("L1 tally non-zero with L1 disabled")
	}
}

// TestPerLevelLatencyOrdering checks that deeper levels cost more on
// average — the premise of the hierarchy.
func TestPerLevelLatencyOrdering(t *testing.T) {
	c := newPopulated(t, 12, 4, 400)
	for i := 0; i < 2_000; i++ {
		c.Lookup("/f"+strconv.Itoa(i%400), c.RandomMDS())
	}
	l1 := c.LevelLatency(1)
	l3 := c.LevelLatency(3)
	if l1.Count() == 0 || l3.Count() == 0 {
		t.Skip("workload did not exercise both levels")
	}
	if l1.Mean() >= l3.Mean() {
		t.Errorf("L1 mean %v not below L3 mean %v", l1.Mean(), l3.Mean())
	}
	if c.LevelLatency(0).Count() != 0 || c.LevelLatency(9).Count() != 0 {
		t.Error("out-of-range level latency non-empty")
	}
}
