package core

import (
	"math/rand"
	"strconv"
	"testing"

	"ghba/internal/trace"
)

// TestApplyDeleteReportsPreDeleteHome pins the delete result contract: a
// delete of a live path reports the home it was unlinked from, a delete of
// a missing path reports (-1, false), so replay checkpoints can tell the
// two apart.
func TestApplyDeleteReportsPreDeleteHome(t *testing.T) {
	c := newPopulated(t, 6, 3, 100)
	path := "/f42"
	want := c.HomeOf(path)
	if want < 0 {
		t.Fatal("populated file has no home")
	}
	res := c.Apply(trace.Record{Op: trace.OpDelete, Path: path})
	if !res.Found || res.Home != want {
		t.Errorf("live delete = (home %d, found %v), want (%d, true)", res.Home, res.Found, want)
	}
	if res.Level != 0 {
		t.Errorf("delete served at level %d, want 0", res.Level)
	}
	res = c.Apply(trace.Record{Op: trace.OpDelete, Path: path})
	if res.Found || res.Home != -1 {
		t.Errorf("missing delete = (home %d, found %v), want (-1, false)", res.Home, res.Found)
	}
}

// TestApplyWithMatchesApplyStream pins that ApplyWith is the serial Apply
// engine with the randomness source swapped: two identically built clusters
// replay the same records, one through Apply (internal RNG) and one through
// ApplyWith with an RNG seeded like the cluster's — every result and the
// final ground truth must agree.
func TestApplyWithMatchesApplyStream(t *testing.T) {
	build := func() (*Cluster, []trace.Record) {
		c := newPopulated(t, 9, 3, 300)
		gen, err := trace.NewGenerator(trace.Config{
			Profile: trace.HP(), TIF: 1, FilesPerSubtrace: 300, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c, gen.Take(2_000)
	}
	a, recs := build()
	b, _ := build()

	// The cluster RNG has consumed draws during Populate; replaying them
	// on a fresh source reproduces its state for the ApplyWith side.
	rng := rand.New(rand.NewSource(a.cfg.Seed))
	for i := 0; i < 300; i++ {
		rng.Intn(len(b.ids))
	}
	for i, rec := range recs {
		ra := a.Apply(rec)
		rb := b.ApplyWith(rng, rec)
		if ra != rb {
			t.Fatalf("record %d diverged:\n  Apply     %+v\n  ApplyWith %+v", i, ra, rb)
		}
	}
	if a.FileCount() != b.FileCount() {
		t.Errorf("file counts diverged: %d vs %d", a.FileCount(), b.FileCount())
	}
}

// TestShipQueueCoalescesAndFlushes exercises the coalescing ship queue: with
// a large batch, threshold crossings accumulate without shipping; Flush
// drains every dirty origin and freshens its replicas in all other groups.
func TestShipQueueCoalescesAndFlushes(t *testing.T) {
	cfg := smallConfig(8, 4)
	cfg.UpdateThresholdBits = 1 // every create crosses
	cfg.ShipBatch = 1 << 20     // never auto-drain
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Populate(func(fn func(string) bool) { fn("/seed") })

	homes := make(map[int][]string)
	for i := 0; i < 40; i++ {
		p := "/coal/f" + strconv.Itoa(i)
		home := c.Create(p)
		homes[home] = append(homes[home], p)
	}
	if c.PendingShips() == 0 {
		t.Fatal("no origins pending despite threshold 1")
	}
	// Replicas are stale until the flush: a created file must be missing
	// from at least its origin's remote replicas (staleness is the point).
	c.Flush()
	if got := c.PendingShips(); got != 0 {
		t.Fatalf("flush left %d origins pending", got)
	}
	for origin, paths := range homes {
		for _, g := range c.Groups() {
			if g.HasMember(origin) {
				continue
			}
			holder := g.HolderOf(origin)
			if holder < 0 {
				t.Fatalf("group %d lost replica of %d", g.ID(), origin)
			}
			rep := c.Node(holder).Replicas().Get(origin)
			for _, p := range paths {
				if !rep.ContainsString(p) {
					t.Fatalf("group %d replica of %d stale after flush: missing %s", g.ID(), origin, p)
				}
			}
		}
	}
}

// TestShipQueueAutoDrainsAtBatch verifies the inline drain: once the batch
// worth of threshold crossings accumulates, replicas freshen without an
// explicit flush.
func TestShipQueueAutoDrainsAtBatch(t *testing.T) {
	cfg := smallConfig(8, 4)
	cfg.UpdateThresholdBits = 1
	cfg.ShipBatch = 4
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Populate(func(fn func(string) bool) { fn("/seed") })

	first := c.Create("/auto/f0")
	for i := 1; i < 4; i++ {
		c.Create("/auto/f" + strconv.Itoa(i))
	}
	// Four crossings have happened; the fourth drained the queue.
	for _, g := range c.Groups() {
		if g.HasMember(first) {
			continue
		}
		holder := g.HolderOf(first)
		rep := c.Node(holder).Replicas().Get(first)
		if !rep.ContainsString("/auto/f0") {
			t.Fatalf("group %d replica of %d stale after batch drain", g.ID(), first)
		}
	}
}
