package core

import (
	"fmt"
	"time"

	"ghba/internal/simnet"
	"ghba/internal/trace"
)

// Create homes a new file at a uniformly chosen MDS and, when the home's
// filter has drifted past the XOR-delta threshold, pushes a replica update.
// Returns the home MDS ID.
func (c *Cluster) Create(path string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.createLocked(path)
}

func (c *Cluster) createLocked(path string) int {
	home := c.randomMDSLocked()
	c.nodes[home].AddFile(path)
	c.homes[path] = home
	if c.nodes[home].NeedsShip(c.cfg.UpdateThresholdBits) {
		c.pushUpdateLocked(home)
	}
	return home
}

// Delete removes a file from its home. The home's filter goes stale until
// its rebuild threshold triggers; deletions also count toward the XOR delta
// once a rebuild regenerates the filter. Reports whether the file existed.
func (c *Cluster) Delete(path string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deleteLocked(path)
}

func (c *Cluster) deleteLocked(path string) bool {
	home, ok := c.homes[path]
	if !ok {
		return false
	}
	node := c.nodes[home]
	node.DeleteFile(path)
	delete(c.homes, path)
	if node.DeletesSinceRebuild() >= c.cfg.RebuildDeleteThreshold {
		node.Rebuild()
		c.pushUpdateLocked(home)
	}
	return true
}

// PushUpdate ships the origin MDS's current filter to the one replica holder
// in every other group — the paper's core update saving over HBA's
// system-wide multicast ("we only need to update the stale replica in each
// group"). Returns the update latency: the multicast to the groups plus the
// in-place apply at the slowest holder.
func (c *Cluster) PushUpdate(origin int) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pushUpdateLocked(origin)
}

func (c *Cluster) pushUpdateLocked(origin int) time.Duration {
	node := c.nodes[origin]
	if node == nil {
		return 0
	}
	snap := node.Ship()
	ownGroup := c.groupOf[origin]
	targets := 0
	var slowestApply time.Duration
	for _, g := range c.sortedGroupsLocked() {
		if g.ID() == ownGroup {
			continue
		}
		rep, err := g.UpdateReplica(origin, snap.Clone())
		if err != nil {
			// Every other group must mirror this origin; failure means the
			// coverage invariant broke.
			panic(fmt.Sprintf("core: pushing update of %d to group %d: %v", origin, g.ID(), err))
		}
		c.msgs.Add(simnet.MsgReplicaUpdate, uint64(rep.Messages))
		targets++
		// Applying the update costs one probe-equivalent write at the
		// holder; spilled replicas pay a disk write.
		holder := g.HolderOf(origin)
		apply := c.applyCostLocked(holder)
		if apply > slowestApply {
			slowestApply = apply
		}
	}
	return c.cfg.Cost.Multicast(targets) + slowestApply
}

// applyCostLocked returns the cost of rewriting one replica at the holder: a
// memory write when the holder's replica set is resident, a disk write for
// the spilled fraction. Requires c.mu.
func (c *Cluster) applyCostLocked(holder int) time.Duration {
	if holder < 0 {
		return 0
	}
	node := c.nodes[holder]
	total := node.ReplicaCount() + 1
	perReplica := c.replicaBytes(node.LocalFilter().SizeBytes())
	totalBytes := uint64(total) * perReplica
	spilled := c.mem.SpilledReplicas(total, totalBytes)
	if spilled == 0 {
		return c.cfg.Cost.MemProbe
	}
	// Probability the touched replica is one of the spilled ones.
	frac := float64(spilled) / float64(total)
	return c.cfg.Cost.MemProbe +
		time.Duration(frac*(1-c.cfg.CacheHitRate)*float64(c.cfg.Cost.DiskRead))
}

// Apply dispatches one trace record against the cluster: mutations create or
// delete files, reads perform lookups. The entry MDS is chosen uniformly, as
// in the paper's methodology. Returns the lookup result (zero Result for
// pure mutations that do not perform a lookup). Apply drives the open-loop
// queuing model and therefore serializes as a writer.
func (c *Cluster) Apply(rec trace.Record) LookupResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch rec.Op {
	case trace.OpCreate:
		if _, exists := c.homes[rec.Path]; exists {
			// Creating an existing path degenerates to an open.
			return c.lookupLocked(rec.Path, c.randomMDSLocked(), rec.At, true)
		}
		home := c.createLocked(rec.Path)
		return LookupResult{Path: rec.Path, Home: home, Found: true, Level: 0}
	case trace.OpDelete:
		c.deleteLocked(rec.Path)
		return LookupResult{Path: rec.Path, Home: -1, Found: false, Level: 0}
	default:
		return c.lookupLocked(rec.Path, c.randomMDSLocked(), rec.At, true)
	}
}
