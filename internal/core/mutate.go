package core

import (
	"fmt"
	"math/rand"
	"time"

	"ghba/internal/mds"
	"ghba/internal/simnet"
	"ghba/internal/trace"
)

// intner is the single-draw interface the mutation and replay paths need
// from a randomness source. *rand.Rand satisfies it directly; the cluster's
// own RNG is adapted through lockedRand so the serial API stays usable next
// to parallel workers.
type intner interface {
	Intn(n int) int
}

// lockedRand draws from the cluster's internal RNG under rngMu.
type lockedRand struct{ c *Cluster }

func (l lockedRand) Intn(n int) int {
	l.c.rngMu.Lock()
	v := l.c.rng.Intn(n)
	l.c.rngMu.Unlock()
	return v
}

// Create homes a new file at a uniformly chosen MDS and, when the home's
// filter has drifted past the XOR-delta threshold, feeds the coalescing
// ship queue (which drains inline once its batch fills). Returns the home
// MDS ID. Creating an existing path re-homes it; use HomeOf to guard.
//
// Create holds the topology read lock: creates on different MDSes proceed
// in parallel, serializing only per shard of the homes map and per node.
func (c *Cluster) Create(path string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.createWithLocked(lockedRand{c}, path)
}

// createWithLocked is Create with a caller-supplied randomness source. Requires
// c.mu (read suffices). The map entry and the node update commit together
// under the path's shard lock, so a racing delete of the same path can
// never strand the file in a node store that ground truth no longer knows.
func (c *Cluster) createWithLocked(r intner, path string) int {
	home := c.ids[r.Intn(len(c.ids))]
	node := c.nodes[home]
	c.homes.putThen(path, home, func() { node.AddFile(path) })
	c.noteMutationLocked(home)
	return home
}

// noteMutationLocked checks origin's XOR-delta drift and, past the threshold,
// marks it dirty in the ship queue, draining inline when the batch fills.
// Requires c.mu (read suffices).
func (c *Cluster) noteMutationLocked(origin int) {
	if !c.nodes[origin].NeedsShip(c.cfg.UpdateThresholdBits) {
		return
	}
	c.shipBatchLocked(c.ships.Note(origin))
}

// shipBatchLocked ships every origin in the batch (nil is a no-op).
// Requires c.mu (read suffices).
func (c *Cluster) shipBatchLocked(origins []int) {
	for _, origin := range origins {
		c.shipOriginLocked(origin)
	}
}

// Delete removes a file from its home. The home's filter goes stale until
// its rebuild threshold triggers; deletions also count toward the XOR delta
// once a rebuild regenerates the filter. Reports whether the file existed.
func (c *Cluster) Delete(path string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, existed := c.deleteInnerLocked(path)
	return existed
}

// deleteInnerLocked removes path, returning its pre-delete home (-1 when absent)
// and whether it existed. Requires c.mu (read suffices). The unlink runs
// under the path's shard lock, paired with createWithLocked/applyRecord, so
// create and delete of one path fully serialize.
func (c *Cluster) deleteInnerLocked(path string) (int, bool) {
	var node *mds.Node
	home, ok := c.homes.removeThen(path, func(home int) {
		if n := c.nodes[home]; n != nil {
			n.DeleteFile(path)
			node = n
		}
	})
	if !ok {
		return -1, false
	}
	if node != nil && node.RebuildIfStale(c.cfg.RebuildDeleteThreshold) {
		// The rebuild changed the filter wholesale; ship the fresh
		// snapshot through the coalescing queue.
		c.shipBatchLocked(c.ships.Note(home))
	}
	return home, true
}

// PushUpdate ships the origin MDS's current filter to the one replica holder
// in every other group — the paper's core update saving over HBA's
// system-wide multicast ("we only need to update the stale replica in each
// group"). It bypasses the coalescing queue (and clears the origin's dirty
// mark). Returns the update latency: the multicast to the groups plus the
// in-place apply at the slowest holder.
func (c *Cluster) PushUpdate(origin int) time.Duration {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.ships.Forget(origin)
	return c.shipOriginLocked(origin)
}

// Flush drains the coalescing ship queue, bringing every dirty origin's
// replicas up to its latest snapshot. Call it at quiescent points (end of a
// replay, before invariant-sensitive measurements) when running with a
// ShipBatch larger than one.
func (c *Cluster) Flush() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.shipBatchLocked(c.ships.Drain())
}

// PendingShips returns how many origins have crossed the ship threshold but
// not yet drained — observability for the coalescing queue.
func (c *Cluster) PendingShips() int { return c.ships.PendingCount() }

// shipOriginLocked distributes origin's current filter snapshot to the one
// replica holder in every other group. Requires c.mu (read or write): group
// membership must be stable, while the holder arrays and the origin's
// snapshot state synchronize on their own locks, so concurrent shippers on
// different origins proceed in parallel. Ships of the *same* origin
// serialize on a striped lock — without it, two racing shippers could
// install an older snapshot over a newer one at some holder while the
// origin's staleness tracking already counts drift against the newer,
// silently loosening the XOR-delta bound. Unknown origins (retired between
// enqueue and drain) are ignored.
func (c *Cluster) shipOriginLocked(origin int) time.Duration {
	node := c.nodes[origin]
	if node == nil {
		return 0
	}
	stripe := &c.shipStripes[uint(origin)%uint(len(c.shipStripes))]
	stripe.Lock()
	defer stripe.Unlock()
	snap := node.Ship()
	ownGroup := c.groupOf[origin]
	targets := 0
	var slowestApply time.Duration
	for _, g := range c.sortedGroupsLocked() {
		if g.ID() == ownGroup {
			continue
		}
		rep, err := g.UpdateReplica(origin, snap)
		if err != nil {
			// Every other group must mirror this origin; failure means the
			// coverage invariant broke.
			panic(fmt.Sprintf("core: pushing update of %d to group %d: %v", origin, g.ID(), err))
		}
		c.msgs.Add(simnet.MsgReplicaUpdate, uint64(rep.Messages))
		targets++
		// Applying the update costs one probe-equivalent write at the
		// holder; spilled replicas pay a disk write.
		holder := g.HolderOf(origin)
		apply := c.applyCostLocked(holder)
		if apply > slowestApply {
			slowestApply = apply
		}
	}
	return c.cfg.Cost.Multicast(targets) + slowestApply
}

// applyCostLocked returns the cost of rewriting one replica at the holder: a
// memory write when the holder's replica set is resident, a disk write for
// the spilled fraction. Requires c.mu.
func (c *Cluster) applyCostLocked(holder int) time.Duration {
	if holder < 0 {
		return 0
	}
	node := c.nodes[holder]
	total := node.ReplicaCount() + 1
	perReplica := c.replicaBytes(node.LocalFilter().SizeBytes())
	totalBytes := uint64(total) * perReplica
	spilled := c.mem.SpilledReplicas(total, totalBytes)
	if spilled == 0 {
		return c.cfg.Cost.MemProbe
	}
	// Probability the touched replica is one of the spilled ones.
	frac := float64(spilled) / float64(total)
	return c.cfg.Cost.MemProbe +
		time.Duration(frac*(1-c.cfg.CacheHitRate)*float64(c.cfg.Cost.DiskRead))
}

// Apply dispatches one trace record against the cluster: mutations create or
// delete files, reads perform lookups. The entry MDS is chosen uniformly
// from the cluster's internal RNG, as in the paper's methodology. Returns
// the lookup result; pure mutations report Level 0, with a delete's Home
// and Found describing the pre-delete state so replay checkpoints can
// distinguish deletes of live paths from deletes of missing ones.
func (c *Cluster) Apply(rec trace.Record) LookupResult {
	return c.applyRecord(lockedRand{c}, rec)
}

// ApplyWith is Apply with a caller-supplied RNG: parallel replay workers
// give each goroutine its own seeded RNG so record dispatch shares no
// mutable randomness, and a single-worker run is bit-for-bit the serial
// engine driven by that RNG.
func (c *Cluster) ApplyWith(rng *rand.Rand, rec trace.Record) LookupResult {
	return c.applyRecord(rng, rec)
}

func (c *Cluster) applyRecord(r intner, rec trace.Record) LookupResult {
	c.mu.RLock()
	defer c.mu.RUnlock()
	switch rec.Op {
	case trace.OpCreate:
		// One draw either way: it becomes the home of a fresh path, or the
		// entry point when creating an existing path degenerates to an
		// open. putIfAbsentThen is the atomic claim-and-install, so two
		// workers racing on the same path cannot both home it, and a
		// racing delete cannot slip between the claim and the node update.
		id := c.ids[r.Intn(len(c.ids))]
		node := c.nodes[id]
		if _, inserted := c.homes.putIfAbsentThen(rec.Path, id, func() { node.AddFile(rec.Path) }); !inserted {
			// The read lock held above excludes reconfiguration, so the
			// current epoch matches c.ids/c.nodes exactly.
			return c.lookupEpoch(c.currentEpoch(), rec.Path, id, rec.At, true)
		}
		c.noteMutationLocked(id)
		return LookupResult{Path: rec.Path, Home: id, Found: true, Level: 0}
	case trace.OpDelete:
		home, existed := c.deleteInnerLocked(rec.Path)
		return LookupResult{Path: rec.Path, Home: home, Found: existed, Level: 0}
	default:
		return c.lookupEpoch(c.currentEpoch(), rec.Path, c.ids[r.Intn(len(c.ids))], rec.At, true)
	}
}
