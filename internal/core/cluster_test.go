package core

import (
	"strconv"
	"testing"

	"ghba/internal/mds"
)

// smallConfig returns a fast configuration for tests.
func smallConfig(n, m int) Config {
	cfg := DefaultConfig(n, m)
	cfg.Node = mds.Config{
		ExpectedFiles:  2_000,
		BitsPerFile:    16,
		LRUCapacity:    256,
		LRUBitsPerFile: 16,
	}
	return cfg
}

// newPopulated builds a cluster with files /fK for K in [0, files).
func newPopulated(t *testing.T, n, m, files int) *Cluster {
	t.Helper()
	c, err := New(smallConfig(n, m))
	if err != nil {
		t.Fatal(err)
	}
	c.Populate(func(fn func(string) bool) {
		for i := 0; i < files; i++ {
			if !fn("/f" + strconv.Itoa(i)) {
				return
			}
		}
	})
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(smallConfig(0, 5)); err == nil {
		t.Error("NumMDS 0 accepted")
	}
	if _, err := New(smallConfig(5, 0)); err == nil {
		t.Error("MaxGroupSize 0 accepted")
	}
	cfg := smallConfig(5, 2)
	cfg.CacheHitRate = 1.5
	if _, err := New(cfg); err == nil {
		t.Error("CacheHitRate 1.5 accepted")
	}
}

func TestNewTopology(t *testing.T) {
	c, err := New(smallConfig(10, 4))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumMDS() != 10 {
		t.Errorf("NumMDS = %d", c.NumMDS())
	}
	// 10 MDSs in groups of ≤4 → 3 groups (4+4+2).
	if c.NumGroups() != 3 {
		t.Errorf("NumGroups = %d, want 3", c.NumGroups())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("invariants after New: %v", err)
	}
	if c.Name() != "G-HBA" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestGroupReplicaCounts(t *testing.T) {
	// N=12, M=4 → 3 groups of 4; each group holds 8 external replicas,
	// each member ~2 (θ = ⌊(N−M′)/M′⌋ = 2).
	c, err := New(smallConfig(12, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range c.Groups() {
		total := 0
		for _, id := range g.Members() {
			rc := c.Node(id).ReplicaCount()
			total += rc
			if rc < 1 || rc > 3 {
				t.Errorf("MDS %d holds %d replicas, want ≈2", id, rc)
			}
		}
		if total != 8 {
			t.Errorf("group %d holds %d replicas, want 8", g.ID(), total)
		}
	}
}

func TestPopulateAndHomeOf(t *testing.T) {
	c := newPopulated(t, 6, 3, 500)
	if c.FileCount() != 500 {
		t.Errorf("FileCount = %d", c.FileCount())
	}
	if c.HomeOf("/f0") < 0 {
		t.Error("populated file has no home")
	}
	if c.HomeOf("/absent") != -1 {
		t.Error("absent file has a home")
	}
	home := c.HomeOf("/f123")
	if !c.Node(home).HasFile("/f123") {
		t.Error("ground truth disagrees with node store")
	}
	// Placement should be spread out: every MDS got some files.
	for _, id := range c.MDSIDs() {
		if c.Node(id).FileCount() == 0 {
			t.Errorf("MDS %d received no files", id)
		}
	}
}

func TestLookupFindsEveryFile(t *testing.T) {
	c := newPopulated(t, 9, 3, 300)
	for i := 0; i < 300; i++ {
		path := "/f" + strconv.Itoa(i)
		res := c.Lookup(path, c.RandomMDS())
		if !res.Found {
			t.Fatalf("lookup of existing %s not found (level %d)", path, res.Level)
		}
		if res.Home != c.HomeOf(path) {
			t.Fatalf("lookup of %s returned home %d, truth %d", path, res.Home, c.HomeOf(path))
		}
		if res.Level < 1 || res.Level > 4 {
			t.Fatalf("level %d out of range", res.Level)
		}
		if res.Latency <= 0 {
			t.Fatal("non-positive latency")
		}
	}
}

func TestLookupMissingFile(t *testing.T) {
	c := newPopulated(t, 6, 3, 100)
	res := c.Lookup("/not/there", c.RandomMDS())
	if res.Found || res.Home != -1 {
		t.Errorf("missing file found: %+v", res)
	}
	if res.Level != 4 {
		t.Errorf("miss resolved at level %d, want 4 (global multicast)", res.Level)
	}
}

func TestLookupL1LearnsHotFiles(t *testing.T) {
	c := newPopulated(t, 6, 3, 200)
	const hot = "/f42"
	entry := c.MDSIDs()[0]
	first := c.Lookup(hot, entry)
	if first.Level <= 1 {
		t.Skipf("first lookup already at L1 (possible but unexpected)")
	}
	second := c.Lookup(hot, entry)
	if second.Level != 1 {
		t.Errorf("repeat lookup served at level %d, want 1", second.Level)
	}
	if second.Latency >= first.Latency {
		t.Errorf("L1 hit (%v) not faster than cold lookup (%v)", second.Latency, first.Latency)
	}
}

func TestLookupUnknownEntryFallsBack(t *testing.T) {
	c := newPopulated(t, 4, 2, 50)
	res := c.Lookup("/f1", 999) // bogus entry MDS
	if !res.Found {
		t.Error("fallback entry failed lookup")
	}
}

func TestLevelTallyAccumulates(t *testing.T) {
	c := newPopulated(t, 6, 3, 200)
	for i := 0; i < 400; i++ {
		c.Lookup("/f"+strconv.Itoa(i%200), c.RandomMDS())
	}
	if c.Tally().Total() != 400 {
		t.Errorf("tally total = %d", c.Tally().Total())
	}
	if c.OverallLatency().Count() != 400 {
		t.Errorf("latency count = %d", c.OverallLatency().Count())
	}
	// With locality from repeats, a decent share must be served below L4.
	if c.Tally().CumulativeFraction(3) < 0.5 {
		t.Errorf("only %.2f served within groups", c.Tally().CumulativeFraction(3))
	}
}

func TestCreateDeleteLifecycle(t *testing.T) {
	c := newPopulated(t, 6, 3, 100)
	home := c.Create("/new/file")
	if c.HomeOf("/new/file") != home {
		t.Error("create did not record home")
	}
	res := c.Lookup("/new/file", c.RandomMDS())
	if !res.Found || res.Home != home {
		t.Errorf("created file lookup = %+v", res)
	}
	if !c.Delete("/new/file") {
		t.Error("delete returned false")
	}
	if c.Delete("/new/file") {
		t.Error("double delete returned true")
	}
	res = c.Lookup("/new/file", c.RandomMDS())
	if res.Found {
		t.Error("deleted file still found")
	}
}

func TestCreatedFilesFoundDespiteStaleReplicas(t *testing.T) {
	// Freshly created files may be absent from remote replicas (staleness);
	// the hierarchy must still resolve them — at worst at L4.
	cfg := smallConfig(8, 4)
	cfg.UpdateThresholdBits = 1 << 30 // effectively never push updates
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Populate(func(fn func(string) bool) {
		for i := 0; i < 100; i++ {
			if !fn("/base" + strconv.Itoa(i)) {
				return
			}
		}
	})
	for i := 0; i < 50; i++ {
		c.Create("/fresh" + strconv.Itoa(i))
	}
	for i := 0; i < 50; i++ {
		path := "/fresh" + strconv.Itoa(i)
		res := c.Lookup(path, c.RandomMDS())
		if !res.Found || res.Home != c.HomeOf(path) {
			t.Fatalf("stale-replica lookup of %s failed: %+v", path, res)
		}
	}
}

func TestPushUpdateRefreshesReplicas(t *testing.T) {
	cfg := smallConfig(8, 4)
	cfg.UpdateThresholdBits = 1 << 30 // manual pushes only
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Populate(func(fn func(string) bool) { fn("/seed") })
	origin := c.Create("/pushed/file")
	d := c.PushUpdate(origin)
	if d <= 0 {
		t.Error("push latency not positive")
	}
	// Every other group's replica of origin must now contain the file.
	for _, g := range c.Groups() {
		if g.HasMember(origin) {
			continue
		}
		holder := g.HolderOf(origin)
		if holder < 0 {
			t.Fatalf("group %d lost replica of %d", g.ID(), origin)
		}
		f := c.Node(holder).Replicas().Get(origin)
		if !f.ContainsString("/pushed/file") {
			t.Errorf("group %d replica stale after push", g.ID())
		}
	}
}

func TestLookupAtQueuesRequests(t *testing.T) {
	c := newPopulated(t, 4, 2, 100)
	entry := c.MDSIDs()[0]
	// Two simultaneous arrivals at the same MDS: the second waits.
	r1 := c.LookupAt("/f1", entry, 0)
	r2 := c.LookupAt("/f2", entry, 0)
	if r2.Latency < r1.ServerTime {
		t.Errorf("second request (%v) did not wait for first (%v busy)", r2.Latency, r1.ServerTime)
	}
	c.ResetQueues()
	r3 := c.LookupAt("/f3", entry, 0)
	if r3.Latency > r1.Latency+r2.Latency {
		t.Error("queue reset did not clear backlog")
	}
}

func TestRandomMDSCoversAll(t *testing.T) {
	c := newPopulated(t, 5, 2, 10)
	seen := make(map[int]bool)
	for i := 0; i < 500; i++ {
		seen[c.RandomMDS()] = true
	}
	if len(seen) != 5 {
		t.Errorf("RandomMDS covered %d of 5", len(seen))
	}
}

func TestRatesAndFootprint(t *testing.T) {
	c := newPopulated(t, 6, 3, 200)
	for i := 0; i < 300; i++ {
		c.Lookup("/f"+strconv.Itoa(i%100), c.RandomMDS())
	}
	r := c.Rates()
	if r.PLRU < 0 || r.PLRU > 1 || r.PL2 < 0 || r.PL2 > 1 {
		t.Errorf("rates out of range: %+v", r)
	}
	f := c.Footprint(0)
	if f.LocalFilterBytes == 0 || f.ReplicaBytes == 0 {
		t.Errorf("footprint zero: %+v", f)
	}
	if f.Total() != f.LocalFilterBytes+f.ReplicaBytes+f.LRUBytes+f.IDBFABytes {
		t.Error("Total inconsistent")
	}
	mean := c.MeanFootprint()
	if mean.Total() == 0 {
		t.Error("mean footprint zero")
	}
	if c.Footprint(999).Total() != 0 {
		t.Error("unknown MDS footprint non-zero")
	}
}
