package core

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"
)

// TestDigestLookupParallelStress hammers the hash-once read path — pooled
// scratch digests, reused hit buffers, the L3 small-int set — from many
// goroutines with a writer churning the namespace. Under -race this is the
// proof that per-lookup scratch never leaks between concurrent lookups: a
// shared digest or buffer would surface as a data race or as a lookup
// resolving to a home that was never the path's ground truth.
func TestDigestLookupParallelStress(t *testing.T) {
	const files = 500
	c := newPopulated(t, 12, 4, files)

	const workers, perWorker = 8, 500
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		// Churn extra files so lookups race real mutations of the filters
		// the digests probe.
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := "/churn" + strconv.Itoa(i%100)
			c.Create(p)
			c.Delete(p)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(3000 + w)))
			for i := 0; i < perWorker; i++ {
				switch i % 3 {
				case 0, 1: // stable file: must resolve to ground truth
					path := "/f" + strconv.Itoa(rng.Intn(files))
					res := c.LookupWith(rng, path, -1)
					if !res.Found {
						t.Errorf("worker %d: %s not found (level %d)", w, path, res.Level)
						return
					}
					if truth := c.HomeOf(path); res.Home != truth {
						t.Errorf("worker %d: %s resolved to %d, truth %d", w, path, res.Home, truth)
						return
					}
				case 2: // definitively absent: must miss with Home -1
					path := "/absent/w" + strconv.Itoa(w) + "/" + strconv.Itoa(i)
					res := c.LookupWith(rng, path, -1)
					if res.Found || res.Home != -1 {
						t.Errorf("worker %d: absent %s returned (home=%d found=%v)",
							w, path, res.Home, res.Found)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	writer.Wait()

	if err := c.CheckInvariants(); err != nil {
		t.Errorf("invariants violated after stress: %v", err)
	}
}
