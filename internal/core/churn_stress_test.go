package core

import (
	"math/rand"
	"sync"
	"testing"

	"ghba/internal/trace"
)

// TestApplyParallelChurnStress interleaves a concurrent mixed mutation
// workload with membership churn — AddMDS and FailMDS firing while worker
// goroutines create, delete and look up through ApplyWith — and asserts the
// global-mirror-image invariant at every quiescent point. Run under -race
// this is the concurrency contract of the sharded write path: per-node and
// per-shard locks keep mutations consistent, reconfiguration serializes
// exclusively, and the coalescing ship queue survives origins vanishing
// between enqueue and drain.
func TestApplyParallelChurnStress(t *testing.T) {
	cfg := smallConfig(12, 4)
	cfg.ShipBatch = 8 // exercise coalesced draining from worker goroutines
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tcfg := trace.Config{
		Profile:          trace.MustMixProfile(60, 25, 15),
		TIF:              2,
		FilesPerSubtrace: 400,
		Seed:             11,
	}
	gen, err := trace.NewGenerator(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Populate(func(fn func(string) bool) { gen.EachInitialPath(fn) })

	const workers = 4
	const rounds = 3
	const recsPerWorker = 250

	for round := 0; round < rounds; round++ {
		lanes, err := trace.SplitGenerators(tcfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w, round int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(1000*round + w)))
				for i := 0; i < recsPerWorker; i++ {
					res := c.ApplyWith(rng, lanes[w].Next())
					if res.Level < 0 || res.Level > 4 {
						t.Errorf("worker %d: level %d out of range", w, res.Level)
						return
					}
					if res.Found && res.Level > 0 && res.Home < 0 {
						t.Errorf("worker %d: found %s with negative home", w, res.Path)
						return
					}
				}
			}(w, round)
		}

		// Membership churn riding alongside the mutation workload: grow,
		// crash a survivor, grow again.
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := c.AddMDS(); err != nil {
				t.Errorf("AddMDS: %v", err)
				return
			}
			ids := c.MDSIDs()
			if _, err := c.FailMDS(ids[len(ids)/2]); err != nil {
				t.Errorf("FailMDS: %v", err)
				return
			}
			if _, _, err := c.AddMDS(); err != nil {
				t.Errorf("AddMDS: %v", err)
			}
		}()
		wg.Wait()

		// Quiescent point: the coverage invariant must hold both before and
		// after draining the coalesced ship queue.
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("round %d: invariants before flush: %v", round, err)
		}
		c.Flush()
		if got := c.PendingShips(); got != 0 {
			t.Fatalf("round %d: %d origins still pending after flush", round, got)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("round %d: invariants after flush: %v", round, err)
		}
	}

	// After the churn settles, surviving files still resolve to their
	// ground-truth homes through the full hierarchy.
	checked := 0
	rng := rand.New(rand.NewSource(99))
	gen2, err := trace.NewGenerator(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	gen2.EachInitialPath(func(p string) bool {
		truth := c.HomeOf(p)
		if truth < 0 {
			return true // lost in a FailMDS, legitimately gone
		}
		res := c.LookupWith(rng, p, -1)
		if !res.Found || res.Home != truth {
			t.Fatalf("post-churn lookup of %s = %+v, truth %d", p, res, truth)
		}
		checked++
		return checked < 200
	})
	if checked == 0 {
		t.Fatal("no surviving files to check")
	}
}
