// Package core implements the complete G-HBA scheme on the simulated
// substrate: N metadata servers organized into groups of at most M, the
// four-level query critical path of Section 2.3 (L1 LRU array → L2 segment
// array → L3 group multicast → L4 global multicast), the XOR-delta replica
// update protocol of Section 3.4, and the dynamic reconfiguration driver
// (MDS join/leave with light-weight migration, group splitting and merging).
//
// The cluster charges every operation against the simnet cost model and the
// per-MDS memory model, producing the latency, hit-rate and message-count
// measurements the experiment harness (internal/experiments) turns into the
// paper's figures.
package core

import (
	"fmt"
	"time"

	"ghba/internal/mds"
	"ghba/internal/memmodel"
	"ghba/internal/simnet"
)

// Config parameterizes a simulated G-HBA cluster.
type Config struct {
	// NumMDS is the initial number of metadata servers (the paper's N).
	NumMDS int
	// MaxGroupSize is the maximum MDSs per group (the paper's M).
	MaxGroupSize int
	// Node sizes each MDS's filter structures.
	Node mds.Config
	// Cost is the latency model.
	Cost simnet.CostModel
	// MemoryBudgetBytes is each MDS's RAM budget for replica structures.
	// Zero means unlimited (everything memory resident).
	MemoryBudgetBytes uint64
	// VirtualReplicaBytes is the accounted size of one Bloom-filter
	// replica for memory-pressure purposes. The simulator runs namespaces
	// thousands of times smaller than the exabyte-scale systems the paper
	// targets, so pressure is computed at paper scale while membership
	// behaviour is measured on the real (small) filters. Zero means use
	// the actual filter sizes.
	VirtualReplicaBytes uint64
	// CacheHitRate dampens disk probes of spilled replicas (page-cache
	// hits on hot pages of cold filters), in [0, 1).
	CacheHitRate float64
	// UpdateThresholdBits is the XOR-delta staleness threshold: a home MDS
	// pushes a replica update once its local filter drifted this many bits
	// from the last shipped snapshot.
	UpdateThresholdBits uint64
	// ShipBatch is the number of XOR-delta threshold crossings the
	// coalescing ship queue absorbs before draining. 0 or 1 ships at every
	// crossing — the paper's update protocol, and the default. Larger
	// values let a burst of creates dirty an origin many times while
	// shipping its filter once per drain; pending updates also drain on
	// Flush, so a quiescent point always sees fresh replicas.
	ShipBatch int
	// RebuildDeleteThreshold triggers a local-filter rebuild after this
	// many deletions (clearing stale bits).
	RebuildDeleteThreshold uint64
	// DisableL1 skips the LRU array level entirely — the ablation that
	// quantifies how much of G-HBA's hit rate comes from exploiting
	// temporal locality (DESIGN.md, ablation 2).
	DisableL1 bool
	// Seed drives home-MDS placement and entry-point selection.
	Seed int64
}

// DefaultConfig returns a laptop-scale configuration matching the
// experiments' defaults: N MDSs in groups of at most m.
func DefaultConfig(numMDS, maxGroupSize int) Config {
	return Config{
		NumMDS:                 numMDS,
		MaxGroupSize:           maxGroupSize,
		Node:                   mds.DefaultConfig(),
		Cost:                   simnet.DefaultCostModel(),
		MemoryBudgetBytes:      0, // unlimited
		VirtualReplicaBytes:    0, // actual sizes
		CacheHitRate:           0.5,
		UpdateThresholdBits:    64,
		RebuildDeleteThreshold: 10_000,
		Seed:                   1,
	}
}

func (c Config) validate() error {
	if c.NumMDS < 1 {
		return fmt.Errorf("core: NumMDS must be ≥ 1, got %d", c.NumMDS)
	}
	if c.MaxGroupSize < 1 {
		return fmt.Errorf("core: MaxGroupSize must be ≥ 1, got %d", c.MaxGroupSize)
	}
	if err := c.Cost.Validate(); err != nil {
		return err
	}
	if c.CacheHitRate < 0 || c.CacheHitRate >= 1 {
		return fmt.Errorf("core: CacheHitRate %f outside [0,1)", c.CacheHitRate)
	}
	if c.ShipBatch < 0 {
		return fmt.Errorf("core: ShipBatch must be ≥ 0, got %d", c.ShipBatch)
	}
	return nil
}

// LookupResult reports the outcome of one metadata lookup.
type LookupResult struct {
	// Path is the queried file path.
	Path string
	// Home is the MDS the metadata was found on (-1 when not found).
	Home int
	// Found reports whether the file exists.
	Found bool
	// Level is the hierarchy level that served the query (1–4).
	Level int
	// Latency is the end-to-end client-observed latency.
	Latency time.Duration
	// ServerTime is the busy time consumed at the entry MDS, the quantity
	// the queuing model accumulates.
	ServerTime time.Duration
}

// memoryModel builds the memmodel for a node given the config.
func (c Config) memoryModel() *memmodel.Model {
	if c.MemoryBudgetBytes == 0 {
		return memmodel.New(^uint64(0) >> 1) // effectively unlimited
	}
	return memmodel.New(c.MemoryBudgetBytes)
}
