package core

import (
	"strconv"
	"testing"
)

func TestFailMDSDegradedButConsistent(t *testing.T) {
	c := newPopulated(t, 9, 3, 400)
	victim := c.MDSIDs()[3]
	victimFiles := c.Node(victim).FileCount()
	if victimFiles == 0 {
		t.Fatal("setup: victim homes nothing")
	}

	rep, err := c.FailMDS(victim)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesLost != victimFiles {
		t.Errorf("FilesLost = %d, want %d", rep.FilesLost, victimFiles)
	}
	if rep.ReplicasRefetched == 0 {
		t.Error("no replicas re-fetched despite lost holdings")
	}
	if rep.Messages == 0 {
		t.Error("failover cost no messages")
	}
	if c.NumMDS() != 8 {
		t.Errorf("NumMDS = %d", c.NumMDS())
	}
	// The mirror-image invariant must be restored.
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after failure: %v", err)
	}
	// Surviving files resolve correctly; the dead server's files miss
	// (degraded coverage, never wrong answers).
	for i := 0; i < 400; i++ {
		path := "/f" + strconv.Itoa(i)
		res := c.Lookup(path, c.RandomMDS())
		if res.Found {
			if res.Home == victim {
				t.Fatalf("%s resolved to the dead MDS", path)
			}
			if res.Home != c.HomeOf(path) {
				t.Fatalf("%s wrong home after failover", path)
			}
		}
	}
	lost := 0
	for i := 0; i < 400; i++ {
		if !c.Lookup("/f"+strconv.Itoa(i), c.RandomMDS()).Found {
			lost++
		}
	}
	if lost != victimFiles {
		t.Errorf("%d files unavailable, want %d", lost, victimFiles)
	}
}

func TestFailMDSErrors(t *testing.T) {
	c := newPopulated(t, 2, 2, 20)
	if _, err := c.FailMDS(99); err == nil {
		t.Error("failing unknown MDS succeeded")
	}
	if _, err := c.FailMDS(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FailMDS(1); err == nil {
		t.Error("failing last MDS succeeded")
	}
}

func TestFailMDSThenRecreateFiles(t *testing.T) {
	c := newPopulated(t, 6, 3, 200)
	victim := c.MDSIDs()[0]
	if _, err := c.FailMDS(victim); err != nil {
		t.Fatal(err)
	}
	// Clients recreate lost files; they land on survivors and resolve.
	for i := 0; i < 50; i++ {
		path := "/recreated/f" + strconv.Itoa(i)
		home := c.Create(path)
		if home == victim {
			t.Fatal("file created at dead MDS")
		}
		res := c.Lookup(path, c.RandomMDS())
		if !res.Found || res.Home != home {
			t.Fatalf("recreated file %s: %+v", path, res)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCascadingFailures(t *testing.T) {
	c := newPopulated(t, 12, 4, 300)
	for i := 0; i < 5; i++ {
		ids := c.MDSIDs()
		if _, err := c.FailMDS(ids[i%len(ids)]); err != nil {
			t.Fatalf("failure %d: %v", i, err)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("invariants after failure %d: %v", i, err)
		}
	}
	if c.NumMDS() != 7 {
		t.Errorf("NumMDS = %d", c.NumMDS())
	}
	// The service still answers: every remaining file resolves.
	for i := 0; i < 300; i++ {
		path := "/f" + strconv.Itoa(i)
		if home := c.HomeOf(path); home >= 0 {
			res := c.Lookup(path, c.RandomMDS())
			if !res.Found || res.Home != home {
				t.Fatalf("surviving file %s: %+v", path, res)
			}
		}
	}
}
