package core

import (
	"fmt"

	"ghba/internal/group"
	"ghba/internal/mds"
	"ghba/internal/simnet"
)

// AddMDS brings a new metadata server into the system (Section 3.1–3.2):
// the newcomer joins a group with spare capacity, or triggers a group split
// when every group is full. The newcomer's own Bloom-filter replica is then
// distributed to every other group. Returns the new MDS ID and the
// reconfiguration report (replicas migrated, messages exchanged) that Figs
// 11 and 15 chart.
func (c *Cluster) AddMDS() (int, group.Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Republish the epoch before the lock is released (LIFO defer order) so
	// the lock-free read path sees whatever topology this operation leaves
	// behind — including on error paths, which may have partially joined
	// groups exactly as the locked reader path used to observe them.
	defer c.publishEpochLocked()
	var rep group.Report
	id := c.nextMDSID
	node, err := mds.NewNode(id, c.cfg.Node)
	if err != nil {
		return 0, rep, fmt.Errorf("core: creating MDS %d: %w", id, err)
	}

	target := c.pickJoinGroupLocked()
	if target != nil {
		r, err := target.Join(node, len(c.nodes)+1)
		if err != nil {
			return 0, rep, fmt.Errorf("core: joining group %d: %w", target.ID(), err)
		}
		rep.Add(r)
		c.groupOf[id] = target.ID()
	} else {
		// All groups full: split the first full group (the paper chooses a
		// random group; first-by-ID keeps simulations deterministic).
		victim := c.sortedGroupsLocked()[0]
		newGroup, r, err := victim.Split(c.nextGroupID, node, c.cfg.MaxGroupSize)
		if err != nil {
			return 0, rep, fmt.Errorf("core: splitting group %d: %w", victim.ID(), err)
		}
		c.nextGroupID++
		rep.Add(r)
		c.groups[newGroup.ID()] = newGroup
		for _, m := range newGroup.Members() {
			c.groupOf[m] = newGroup.ID()
		}
		rep.Messages++ // announce the new group to the system
	}

	c.nodes[id] = node
	c.nextMDSID++
	// IDs grow monotonically, so appending keeps the cache sorted.
	c.ids = append(c.ids, id)

	// Multicast the newcomer's replica to one member of each other group;
	// every holder shares one immutable snapshot.
	ownGroup := c.groupOf[id]
	snap := node.Ship()
	for _, g := range c.sortedGroupsLocked() {
		if g.ID() == ownGroup {
			continue
		}
		if g.HolderOf(id) >= 0 {
			// The split exchange already copied the newcomer's replica to
			// its sibling group.
			continue
		}
		r, err := g.InstallReplica(id, snap)
		if err != nil {
			return 0, rep, fmt.Errorf("core: distributing replica of %d: %w", id, err)
		}
		rep.Add(r)
	}

	c.msgs.Add(simnet.MsgReplicaMigration, uint64(rep.ReplicasMigrated))
	c.msgs.Add(simnet.MsgMembership, uint64(rep.Messages-rep.ReplicasMigrated))
	return id, rep, nil
}

// pickJoinGroupLocked returns the fullest group that still has room, or nil when
// all groups are full. Joining the fullest group keeps the newcomer's
// offload share near the paper's (N−M′)/(M′+1) bound; joining a tiny group
// would make the newcomer absorb nearly half of that group's replicas.
func (c *Cluster) pickJoinGroupLocked() *group.Group {
	var best *group.Group
	for _, g := range c.sortedGroupsLocked() {
		if g.Size() >= c.cfg.MaxGroupSize {
			continue
		}
		if best == nil || g.Size() > best.Size() {
			best = g
		}
	}
	return best
}

// RemoveMDS takes a server out of the system (Fig 4b): its replicas migrate
// to surviving group members, the other groups delete their replica of it,
// its files are re-homed across the survivors, and shrunken groups merge
// when their union fits within M.
func (c *Cluster) RemoveMDS(id int) (group.Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.publishEpochLocked()
	var rep group.Report
	node, ok := c.nodes[id]
	if !ok {
		return rep, fmt.Errorf("core: unknown MDS %d", id)
	}
	if len(c.nodes) == 1 {
		return rep, fmt.Errorf("core: refusing to remove the last MDS")
	}
	g := c.groupOfLocked(id)

	// (1) Migrate its replicas to the surviving members.
	r, err := g.Leave(id)
	if err != nil {
		return rep, fmt.Errorf("core: leaving group: %w", err)
	}
	rep.Add(r)
	delete(c.groupOf, id)
	delete(c.nodes, id)
	c.ships.Forget(id)
	c.refreshIDsLocked()
	if g.Size() == 0 {
		delete(c.groups, g.ID())
	}

	// (2)–(3) Delete its replica everywhere else.
	for _, other := range c.sortedGroupsLocked() {
		rep.Add(other.RemoveOrigin(id))
	}

	// Re-home the departed server's files across the survivors. The paper
	// treats metadata re-distribution as orthogonal (fail-over keeps
	// serving at degraded coverage); the simulator re-homes so ground
	// truth stays consistent.
	survivors := c.ids
	for _, path := range node.Store().Paths() {
		newHome := c.randomMDSLocked()
		c.nodes[newHome].AddFile(path)
		c.homes.put(path, newHome)
	}
	for _, sid := range survivors {
		if c.nodes[sid].NeedsShip(c.cfg.UpdateThresholdBits) {
			c.ships.Forget(sid)
			c.shipOriginLocked(sid)
		}
	}
	// Stale L1 entries pointing at the dead server are flushed.
	c.lru.Forget(id)

	// (4) Merge groups whose union now fits within M.
	rep.Add(c.mergeWherePossibleLocked())

	c.msgs.Add(simnet.MsgReplicaMigration, uint64(rep.ReplicasMigrated))
	return rep, nil
}

// mergeWherePossibleLocked repeatedly merges the two smallest groups while their
// union fits within M, per Section 3.2 ("this process repeats until no
// merging can be performed").
func (c *Cluster) mergeWherePossibleLocked() group.Report {
	var rep group.Report
	for {
		groups := c.sortedGroupsLocked()
		if len(groups) < 2 {
			return rep
		}
		// Find the two smallest.
		a, b := groups[0], groups[1]
		if b.Size() < a.Size() {
			a, b = b, a
		}
		for _, g := range groups[2:] {
			if g.Size() < a.Size() {
				a, b = g, a
			} else if g.Size() < b.Size() {
				b = g
			}
		}
		if a.Size()+b.Size() > c.cfg.MaxGroupSize {
			return rep
		}
		r, err := b.Merge(a)
		if err != nil {
			panic(fmt.Sprintf("core: merging groups %d and %d: %v", b.ID(), a.ID(), err))
		}
		rep.Add(r)
		for _, m := range b.Members() {
			c.groupOf[m] = b.ID()
		}
		delete(c.groups, a.ID())
	}
}
