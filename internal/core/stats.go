package core

import "time"

// MemoryFootprint describes one MDS's filter memory, the raw data behind
// Table 5's relative overhead comparison.
type MemoryFootprint struct {
	// LocalFilterBytes is the filter over locally homed files.
	LocalFilterBytes uint64
	// ReplicaBytes is the segment array (held replicas).
	ReplicaBytes uint64
	// LRUBytes is the L1 array.
	LRUBytes uint64
	// IDBFABytes is the replica-location array.
	IDBFABytes uint64
}

// Total returns the combined footprint.
func (f MemoryFootprint) Total() uint64 {
	return f.LocalFilterBytes + f.ReplicaBytes + f.LRUBytes + f.IDBFABytes
}

// Footprint returns the memory footprint of one MDS, or a zero value for an
// unknown ID.
func (c *Cluster) Footprint(id int) MemoryFootprint {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.footprintLocked(id)
}

func (c *Cluster) footprintLocked(id int) MemoryFootprint {
	node := c.nodes[id]
	if node == nil {
		return MemoryFootprint{}
	}
	return MemoryFootprint{
		LocalFilterBytes: node.LocalFilter().SizeBytes(),
		ReplicaBytes:     node.Replicas().SizeBytes(),
		// Each MDS stores a replica of every home's LRU filter.
		LRUBytes:   c.lru.SizeBytes(),
		IDBFABytes: node.IDBFA().SizeBytes(),
	}
}

// MeanFootprint averages the footprint across all MDSs.
func (c *Cluster) MeanFootprint() MemoryFootprint {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var sum MemoryFootprint
	ids := c.ids
	if len(ids) == 0 {
		return sum
	}
	for _, id := range ids {
		f := c.footprintLocked(id)
		sum.LocalFilterBytes += f.LocalFilterBytes
		sum.ReplicaBytes += f.ReplicaBytes
		sum.LRUBytes += f.LRUBytes
		sum.IDBFABytes += f.IDBFABytes
	}
	n := uint64(len(ids))
	return MemoryFootprint{
		LocalFilterBytes: sum.LocalFilterBytes / n,
		ReplicaBytes:     sum.ReplicaBytes / n,
		LRUBytes:         sum.LRUBytes / n,
		IDBFABytes:       sum.IDBFABytes / n,
	}
}

// MeasuredRates exposes the observed multi-level behaviour in the terms of
// Equation 4: unique-hit rates and mean latencies at L1 and L2, and the mean
// latencies of group- and system-level resolution.
type MeasuredRates struct {
	PLRU   float64       // share of queries served at L1
	PL2    float64       // share of queries served at L2
	DLRU   time.Duration // mean latency of L1-served queries
	DL2    time.Duration // mean latency of L2-served queries
	DGroup time.Duration // mean latency of L3-served queries
	DNet   time.Duration // mean latency of L4-served queries
}

// Rates summarizes the cluster's observed per-level behaviour. Levels with
// no samples report zero latency.
func (c *Cluster) Rates() MeasuredRates {
	return MeasuredRates{
		PLRU:   c.tally.Fraction(1),
		PL2:    c.tally.Fraction(2),
		DLRU:   c.perLevel[1].Mean(),
		DL2:    c.perLevel[2].Mean(),
		DGroup: c.perLevel[3].Mean(),
		DNet:   c.perLevel[4].Mean(),
	}
}
