// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section 4 simulation, Section 5 prototype). Each
// driver builds the systems it compares, generates the workload, runs the
// measurement, and returns printable rows mirroring the paper's series.
// cmd/ghbabench and bench_test.go are thin wrappers around these drivers.
//
// Absolute numbers differ from the paper (the substrate is a simulator with
// synthetic traces, not a 2007 Linux cluster); the reproduced quantity is
// the relative behaviour — who wins, by roughly what factor, and where
// curves cross. EXPERIMENTS.md records paper-versus-measured for each
// experiment.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"ghba/internal/core"
	"ghba/internal/trace"
)

// System is the scheme-side contract shared by core.Cluster (G-HBA) and
// hba.Cluster: dispatch one trace record, report a lookup outcome. Apply
// draws entry points from the system's internal RNG; ApplyWith from the
// caller's, which is what makes replay runs reproducible independent of the
// system's own randomness consumption.
type System interface {
	Name() string
	Apply(rec trace.Record) core.LookupResult
	ApplyWith(rng *rand.Rand, rec trace.Record) core.LookupResult
	Populate(each func(fn func(path string) bool))
}

// flusher is implemented by systems with a coalescing ship queue; the
// replay engines drain it at quiescent points.
type flusher interface{ Flush() }

// replayRNG builds worker w's record-dispatch RNG for a replay over a trace
// seeded with seed; trace.DispatchSeed is the shared derivation (the
// facade's worker pools use it too), and the serial engine is worker 0.
func replayRNG(seed int64, worker int) *rand.Rand {
	return rand.New(rand.NewSource(trace.DispatchSeed(seed, worker)))
}

// Checkpoint is one point of a latency-versus-operations series.
type Checkpoint struct {
	// Ops is the number of operations replayed so far.
	Ops int
	// MeanLatency is the running average lookup latency (queue inclusive).
	MeanLatency time.Duration
}

// Replay feeds totalOps records from gen into sys, sampling the running
// mean latency every interval operations. Mutation records (create/delete)
// are applied but excluded from the latency average, as the paper measures
// metadata lookup operations. Entry points are drawn from an RNG derived
// from the generator's seed, so a serial replay is exactly the one-worker
// instance of ReplayParallel.
func Replay(sys System, gen *trace.Generator, totalOps, interval int) []Checkpoint {
	if interval <= 0 {
		interval = totalOps
	}
	rng := replayRNG(gen.Config().Seed, 0)
	var (
		sum     float64
		lookups int
		points  []Checkpoint
	)
	for op := 1; op <= totalOps; op++ {
		res := sys.ApplyWith(rng, gen.Next())
		if res.Level > 0 {
			sum += float64(res.Latency)
			lookups++
		}
		if op%interval == 0 || op == totalOps {
			mean := time.Duration(0)
			if lookups > 0 {
				mean = time.Duration(sum / float64(lookups))
			}
			points = append(points, Checkpoint{Ops: op, MeanLatency: mean})
		}
	}
	return points
}

// ReplayStats summarizes one parallel (or one-worker) replay run.
type ReplayStats struct {
	// Ops is the number of records dispatched; Workers the goroutine count.
	Ops, Workers int
	// Lookups counts records resolved through the query hierarchy
	// (including creates of existing paths, which degenerate to opens).
	Lookups int
	// Creates and Deletes count mutations that hit live state; DeleteMisses
	// counts unlinks of paths that did not exist.
	Creates, Deletes, DeleteMisses int
	// MeanLookupLatency is the average simulated lookup latency. The
	// open-loop queue model it includes assumes arrival-ordered dispatch,
	// so the value is only meaningful for one-worker runs; multi-worker
	// lanes interleave their simulated clocks and inflate queue waits.
	MeanLookupLatency time.Duration
	// Elapsed is the wall-clock time of the replay; OpsPerSec the
	// wall-clock dispatch throughput.
	Elapsed   time.Duration
	OpsPerSec float64
}

// ReplayParallel replays totalOps records against sys across the given
// number of worker goroutines. The workload is an n-way split of the trace
// described by cfg (see trace.SplitGenerators): every worker owns one lane
// of the stream and one seeded RNG, so a run is deterministic for a fixed
// (cfg, totalOps, workers) triple up to scheduling of the shared cluster
// state, and a one-worker run is bit-for-bit the serial Replay over the
// same generator config. Workers < 1 selects GOMAXPROCS. Any pending
// coalesced replica ships are flushed before returning, so the system is
// quiescent when the stats come back.
//
// The system must support concurrent ApplyWith (core.Cluster does; the
// serial HBA baseline does not).
func ReplayParallel(sys System, cfg trace.Config, totalOps, workers int) (ReplayStats, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > totalOps && totalOps > 0 {
		workers = totalOps
	}
	gens, err := trace.SplitGenerators(cfg, workers)
	if err != nil {
		return ReplayStats{}, err
	}

	type laneStats struct {
		sum                            float64
		lookups                        int
		creates, deletes, deleteMisses int
	}
	lanes := make([]laneStats, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		n := totalOps / workers
		if w < totalOps%workers {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := replayRNG(cfg.Seed, w)
			gen := gens[w]
			ls := &lanes[w]
			for i := 0; i < n; i++ {
				rec := gen.Next()
				res := sys.ApplyWith(rng, rec)
				switch {
				case res.Level > 0:
					ls.sum += float64(res.Latency)
					ls.lookups++
				case rec.Op == trace.OpCreate:
					ls.creates++
				case res.Found:
					ls.deletes++
				default:
					ls.deleteMisses++
				}
			}
		}(w, n)
	}
	wg.Wait()
	if f, ok := sys.(flusher); ok {
		f.Flush()
	}
	elapsed := time.Since(start)

	stats := ReplayStats{Ops: totalOps, Workers: workers, Elapsed: elapsed}
	var sum float64
	for i := range lanes {
		ls := &lanes[i]
		sum += ls.sum
		stats.Lookups += ls.lookups
		stats.Creates += ls.creates
		stats.Deletes += ls.deletes
		stats.DeleteMisses += ls.deleteMisses
	}
	if stats.Lookups > 0 {
		stats.MeanLookupLatency = time.Duration(sum / float64(stats.Lookups))
	}
	if elapsed > 0 {
		stats.OpsPerSec = float64(totalOps) / elapsed.Seconds()
	}
	return stats, nil
}

// populateFromGenerator pre-creates the generator's initial namespace on a
// system ("all MDSs are initially populated randomly").
func populateFromGenerator(sys System, gen *trace.Generator) {
	sys.Populate(func(fn func(string) bool) {
		gen.EachInitialPath(fn)
	})
}

// formatSeries renders checkpoints as "ops→latency" pairs for banners.
func formatSeries(points []Checkpoint) string {
	var b strings.Builder
	for i, p := range points {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%d→%v", p.Ops, p.MeanLatency.Round(10*time.Microsecond))
	}
	return b.String()
}

// newCoreCluster wraps core.New so tests inside the package can build a
// System without importing core on their own.
func newCoreCluster(cfg core.Config) (*core.Cluster, error) {
	return core.New(cfg)
}
