// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section 4 simulation, Section 5 prototype). Each
// driver builds the systems it compares, generates the workload, runs the
// measurement, and returns printable rows mirroring the paper's series.
// cmd/ghbabench and bench_test.go are thin wrappers around these drivers.
//
// Absolute numbers differ from the paper (the substrate is a simulator with
// synthetic traces, not a 2007 Linux cluster); the reproduced quantity is
// the relative behaviour — who wins, by roughly what factor, and where
// curves cross. EXPERIMENTS.md records paper-versus-measured for each
// experiment.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"ghba"
	"ghba/internal/core"
	"ghba/internal/hba"
	"ghba/internal/trace"
)

// System is the slice of the ghba.Backend contract the replay drivers
// dispatch against — every Backend (the simulation facade, the TCP
// prototype) satisfies it structurally, so one replay engine serves both
// transports. The raw scheme engines the figure drivers build directly
// (core.Cluster, hba.Cluster) are adapted through coreSys/hbaSys.
type System interface {
	Name() string
	// ApplyWith dispatches one record with the caller's RNG, which is what
	// makes replay runs reproducible independent of the system's own
	// randomness consumption.
	ApplyWith(ctx context.Context, rng *rand.Rand, op ghba.Op) (ghba.Result, error)
	// CreateAll bulk-loads the initial namespace.
	CreateAll(ctx context.Context, paths []string) error
	// Flush drains any coalesced replica ships at a quiescent point.
	Flush(ctx context.Context) error
	// LevelCounts snapshots the per-level lookup tallies.
	LevelCounts() [5]uint64
}

// BatchSystem is the optional vectorized dispatch surface — the replay
// layer's mirror of ghba.BatchApplier. Both ghba backends satisfy it; the
// raw scheme adapters do not, and fall back to per-op dispatch.
type BatchSystem interface {
	System
	// ApplyBatch dispatches ops as one batch with the caller's RNG. The RNG
	// draw pattern matches a serial ApplyWith loop over the same ops, so
	// fixed-seed replays are identical whichever path dispatches them.
	ApplyBatch(ctx context.Context, rng *rand.Rand, ops []ghba.Op) ([]ghba.Result, error)
}

// CoreSystem adapts a raw G-HBA scheme engine to the System contract, for
// drivers that tune core.Config fields the facade does not expose.
func CoreSystem(c *core.Cluster) System { return coreSys{c} }

// HBASystem adapts the HBA baseline engine to the System contract.
func HBASystem(c *hba.Cluster) System { return hbaSys{c} }

type coreSys struct{ c *core.Cluster }

func (s coreSys) Name() string { return s.c.Name() }

func (s coreSys) ApplyWith(_ context.Context, rng *rand.Rand, op ghba.Op) (ghba.Result, error) {
	return fromCore(s.c.ApplyWith(rng, recordOf(op))), nil
}

func (s coreSys) CreateAll(_ context.Context, paths []string) error {
	s.c.Populate(pathIter(paths))
	return nil
}

func (s coreSys) Flush(context.Context) error { s.c.Flush(); return nil }

func (s coreSys) LevelCounts() [5]uint64 { return levelCounts(s.c) }

// hbaSys adapts the HBA baseline engine.
type hbaSys struct{ c *hba.Cluster }

func (s hbaSys) Name() string { return s.c.Name() }

func (s hbaSys) ApplyWith(_ context.Context, rng *rand.Rand, op ghba.Op) (ghba.Result, error) {
	return fromCore(s.c.ApplyWith(rng, recordOf(op))), nil
}

func (s hbaSys) CreateAll(_ context.Context, paths []string) error {
	s.c.Populate(pathIter(paths))
	return nil
}

func (s hbaSys) Flush(context.Context) error { return nil }

func (s hbaSys) LevelCounts() [5]uint64 {
	var out [5]uint64
	for l := 1; l <= 4; l++ {
		out[l] = s.c.Tally().Count(l)
	}
	return out
}

// recordOf converts a facade op back to the trace record the raw engines
// dispatch (the At offset drives the simulated open-loop queue model).
func recordOf(op ghba.Op) trace.Record {
	rec := trace.Record{Path: op.Path, At: op.At}
	switch op.Kind {
	case ghba.OpCreate:
		rec.Op = trace.OpCreate
	case ghba.OpDelete:
		rec.Op = trace.OpDelete
	default:
		rec.Op = trace.OpStat
	}
	return rec
}

// fromCore converts a scheme-level result to the facade's.
func fromCore(res core.LookupResult) ghba.Result {
	return ghba.Result{
		Path:    res.Path,
		Home:    res.Home,
		Found:   res.Found,
		Level:   res.Level,
		Latency: res.Latency,
	}
}

// pathIter adapts a path slice to the raw engines' streaming populate.
func pathIter(paths []string) func(fn func(string) bool) {
	return func(fn func(string) bool) {
		for _, p := range paths {
			if !fn(p) {
				return
			}
		}
	}
}

// replayRNG builds worker w's record-dispatch RNG for a replay over a trace
// seeded with seed; trace.DispatchSeed is the shared derivation (the
// facade's worker pools use it too), and the serial engine is worker 0.
func replayRNG(seed int64, worker int) *rand.Rand {
	return rand.New(rand.NewSource(trace.DispatchSeed(seed, worker)))
}

// Checkpoint is one point of a latency-versus-operations series.
type Checkpoint struct {
	// Ops is the number of operations replayed so far.
	Ops int
	// MeanLatency is the running average lookup latency (queue inclusive).
	MeanLatency time.Duration
}

// Replay feeds totalOps records from gen into sys, sampling the running
// mean latency every interval operations. Mutation records (create/delete)
// are applied but excluded from the latency average, as the paper measures
// metadata lookup operations. Entry points are drawn from an RNG derived
// from the generator's seed, so a serial replay is exactly the one-worker
// instance of ReplayParallel.
func Replay(ctx context.Context, sys System, gen *trace.Generator, totalOps, interval int) ([]Checkpoint, error) {
	if interval <= 0 {
		interval = totalOps
	}
	rng := replayRNG(gen.Config().Seed, 0)
	var (
		sum     float64
		lookups int
		points  []Checkpoint
	)
	for op := 1; op <= totalOps; op++ {
		res, err := sys.ApplyWith(ctx, rng, ghba.TraceOp(gen.Next()))
		if err != nil {
			return points, fmt.Errorf("experiments: replay op %d: %w", op, err)
		}
		if res.Level > 0 {
			sum += float64(res.Latency)
			lookups++
		}
		if op%interval == 0 || op == totalOps {
			mean := time.Duration(0)
			if lookups > 0 {
				mean = time.Duration(sum / float64(lookups))
			}
			points = append(points, Checkpoint{Ops: op, MeanLatency: mean})
		}
	}
	return points, nil
}

// ReplayStats summarizes one parallel (or one-worker) replay run.
type ReplayStats struct {
	// Ops is the number of records dispatched; Workers the goroutine count.
	Ops, Workers int
	// Lookups counts records resolved through the query hierarchy
	// (including creates of existing paths, which degenerate to opens).
	Lookups int
	// Creates and Deletes count mutations that hit live state; DeleteMisses
	// counts unlinks of paths that did not exist.
	Creates, Deletes, DeleteMisses int
	// MeanLookupLatency is the average lookup latency: simulated (queue
	// inclusive) on the sim backend, wall clock over real sockets on the
	// TCP backend. The simulated open-loop queue model assumes
	// arrival-ordered dispatch, so for the sim the value is only meaningful
	// on one-worker runs; multi-worker lanes interleave their simulated
	// clocks and inflate queue waits.
	MeanLookupLatency time.Duration
	// Elapsed is the wall-clock time of the replay; OpsPerSec the
	// wall-clock dispatch throughput.
	Elapsed   time.Duration
	OpsPerSec float64
}

// ReplayParallel replays totalOps records against sys across the given
// number of worker goroutines. The workload is an n-way split of the trace
// described by cfg (see trace.SplitGenerators): every worker owns one lane
// of the stream and one seeded RNG, so a run is deterministic for a fixed
// (cfg, totalOps, workers) triple up to scheduling of the shared cluster
// state, and a one-worker run is bit-for-bit the serial Replay over the
// same generator config. Workers < 1 selects GOMAXPROCS. Any pending
// coalesced replica ships are flushed before returning, so the system is
// quiescent when the stats come back.
//
// The system must support concurrent ApplyWith (both ghba backends do; the
// serial HBA baseline does not).
func ReplayParallel(ctx context.Context, sys System, cfg trace.Config, totalOps, workers int) (ReplayStats, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > totalOps && totalOps > 0 {
		workers = totalOps
	}
	gens, err := trace.SplitGenerators(cfg, workers)
	if err != nil {
		return ReplayStats{}, err
	}

	type laneStats struct {
		sum                            float64
		lookups                        int
		creates, deletes, deleteMisses int
		err                            error
	}
	lanes := make([]laneStats, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		n := totalOps / workers
		if w < totalOps%workers {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := replayRNG(cfg.Seed, w)
			gen := gens[w]
			ls := &lanes[w]
			for i := 0; i < n; i++ {
				rec := gen.Next()
				res, err := sys.ApplyWith(ctx, rng, ghba.TraceOp(rec))
				if err != nil {
					ls.err = fmt.Errorf("worker %d, op %d (%s %q): %w", w, i, rec.Op, rec.Path, err)
					return
				}
				switch {
				case res.Level > 0:
					ls.sum += float64(res.Latency)
					ls.lookups++
				case rec.Op == trace.OpCreate:
					ls.creates++
				case res.Found:
					ls.deletes++
				default:
					ls.deleteMisses++
				}
			}
		}(w, n)
	}
	wg.Wait()
	// Lane errors carry the per-op root cause (worker, op, path); surface
	// them ahead of a flush failure, which against a dead daemon is
	// usually just the same fault seen twice.
	for i := range lanes {
		if err := lanes[i].err; err != nil {
			if ferr := sys.Flush(ctx); ferr != nil {
				err = errors.Join(err, fmt.Errorf("experiments: flushing after replay: %w", ferr))
			}
			return ReplayStats{Ops: totalOps, Workers: workers}, err
		}
	}
	if err := sys.Flush(ctx); err != nil {
		return ReplayStats{}, fmt.Errorf("experiments: flushing after replay: %w", err)
	}
	elapsed := time.Since(start)

	stats := ReplayStats{Ops: totalOps, Workers: workers, Elapsed: elapsed}
	var sum float64
	for i := range lanes {
		ls := &lanes[i]
		sum += ls.sum
		stats.Lookups += ls.lookups
		stats.Creates += ls.creates
		stats.Deletes += ls.deletes
		stats.DeleteMisses += ls.deleteMisses
	}
	if stats.Lookups > 0 {
		stats.MeanLookupLatency = time.Duration(sum / float64(stats.Lookups))
	}
	if elapsed > 0 {
		stats.OpsPerSec = float64(totalOps) / elapsed.Seconds()
	}
	return stats, nil
}

// ReplayParallelBatched is ReplayParallel with each worker dispatching its
// lane in batchSize vectors through the system's BatchSystem surface: many
// trace records per wire round, so a networked backend amortizes syscalls,
// frame headers and digests across the vector. Lane assignment, per-worker
// RNG seeds and within-lane record order are identical to ReplayParallel's.
// A system without batch support (or batchSize ≤ 1) falls back to the
// per-op engine.
func ReplayParallelBatched(ctx context.Context, sys System, cfg trace.Config, totalOps, workers, batchSize int) (ReplayStats, error) {
	bs, ok := sys.(BatchSystem)
	if !ok || batchSize <= 1 {
		return ReplayParallel(ctx, sys, cfg, totalOps, workers)
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > totalOps && totalOps > 0 {
		workers = totalOps
	}
	gens, err := trace.SplitGenerators(cfg, workers)
	if err != nil {
		return ReplayStats{}, err
	}

	type laneStats struct {
		sum                            float64
		lookups                        int
		creates, deletes, deleteMisses int
		err                            error
	}
	lanes := make([]laneStats, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		n := totalOps / workers
		if w < totalOps%workers {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := replayRNG(cfg.Seed, w)
			gen := gens[w]
			ls := &lanes[w]
			recs := make([]trace.Record, 0, batchSize)
			ops := make([]ghba.Op, 0, batchSize)
			for done := 0; done < n; {
				size := batchSize
				if n-done < size {
					size = n - done
				}
				recs, ops = recs[:0], ops[:0]
				for i := 0; i < size; i++ {
					rec := gen.Next()
					recs = append(recs, rec)
					ops = append(ops, ghba.TraceOp(rec))
				}
				results, err := bs.ApplyBatch(ctx, rng, ops)
				if err != nil {
					ls.err = fmt.Errorf("worker %d, batch at op %d: %w", w, done, err)
					return
				}
				for i, res := range results {
					switch {
					case res.Level > 0:
						ls.sum += float64(res.Latency)
						ls.lookups++
					case recs[i].Op == trace.OpCreate:
						ls.creates++
					case res.Found:
						ls.deletes++
					default:
						ls.deleteMisses++
					}
				}
				done += size
			}
		}(w, n)
	}
	wg.Wait()
	for i := range lanes {
		if err := lanes[i].err; err != nil {
			if ferr := sys.Flush(ctx); ferr != nil {
				err = errors.Join(err, fmt.Errorf("experiments: flushing after replay: %w", ferr))
			}
			return ReplayStats{Ops: totalOps, Workers: workers}, err
		}
	}
	if err := sys.Flush(ctx); err != nil {
		return ReplayStats{}, fmt.Errorf("experiments: flushing after replay: %w", err)
	}
	elapsed := time.Since(start)

	stats := ReplayStats{Ops: totalOps, Workers: workers, Elapsed: elapsed}
	var sum float64
	for i := range lanes {
		ls := &lanes[i]
		sum += ls.sum
		stats.Lookups += ls.lookups
		stats.Creates += ls.creates
		stats.Deletes += ls.deletes
		stats.DeleteMisses += ls.deleteMisses
	}
	if stats.Lookups > 0 {
		stats.MeanLookupLatency = time.Duration(sum / float64(stats.Lookups))
	}
	if elapsed > 0 {
		stats.OpsPerSec = float64(totalOps) / elapsed.Seconds()
	}
	return stats, nil
}

// PopulateFromGenerator pre-creates the generator's initial namespace on a
// system ("all MDSs are initially populated randomly").
func PopulateFromGenerator(sys System, gen *trace.Generator) error {
	var paths []string
	gen.EachInitialPath(func(p string) bool {
		paths = append(paths, p)
		return true
	})
	return sys.CreateAll(context.Background(), paths)
}

// formatSeries renders checkpoints as "ops→latency" pairs for banners.
func formatSeries(points []Checkpoint) string {
	var b strings.Builder
	for i, p := range points {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%d→%v", p.Ops, p.MeanLatency.Round(10*time.Microsecond))
	}
	return b.String()
}

// levelCounts snapshots a core cluster's per-level tallies.
func levelCounts(c *core.Cluster) [5]uint64 {
	var out [5]uint64
	for l := 1; l <= 4; l++ {
		out[l] = c.Tally().Count(l)
	}
	return out
}

// newCoreCluster wraps core.New so tests inside the package can build a
// System without importing core on their own.
func newCoreCluster(cfg core.Config) (*core.Cluster, error) {
	return core.New(cfg)
}
