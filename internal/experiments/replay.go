// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section 4 simulation, Section 5 prototype). Each
// driver builds the systems it compares, generates the workload, runs the
// measurement, and returns printable rows mirroring the paper's series.
// cmd/ghbabench and bench_test.go are thin wrappers around these drivers.
//
// Absolute numbers differ from the paper (the substrate is a simulator with
// synthetic traces, not a 2007 Linux cluster); the reproduced quantity is
// the relative behaviour — who wins, by roughly what factor, and where
// curves cross. EXPERIMENTS.md records paper-versus-measured for each
// experiment.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"ghba/internal/core"
	"ghba/internal/trace"
)

// System is the scheme-side contract shared by core.Cluster (G-HBA) and
// hba.Cluster: dispatch one trace record, report a lookup outcome.
type System interface {
	Name() string
	Apply(rec trace.Record) core.LookupResult
	Populate(each func(fn func(path string) bool))
}

// Checkpoint is one point of a latency-versus-operations series.
type Checkpoint struct {
	// Ops is the number of operations replayed so far.
	Ops int
	// MeanLatency is the running average lookup latency (queue inclusive).
	MeanLatency time.Duration
}

// Replay feeds totalOps records from gen into sys, sampling the running
// mean latency every interval operations. Mutation records (create/delete)
// are applied but excluded from the latency average, as the paper measures
// metadata lookup operations.
func Replay(sys System, gen *trace.Generator, totalOps, interval int) []Checkpoint {
	if interval <= 0 {
		interval = totalOps
	}
	var (
		sum     float64
		lookups int
		points  []Checkpoint
	)
	for op := 1; op <= totalOps; op++ {
		res := sys.Apply(gen.Next())
		if res.Level > 0 {
			sum += float64(res.Latency)
			lookups++
		}
		if op%interval == 0 || op == totalOps {
			mean := time.Duration(0)
			if lookups > 0 {
				mean = time.Duration(sum / float64(lookups))
			}
			points = append(points, Checkpoint{Ops: op, MeanLatency: mean})
		}
	}
	return points
}

// populateFromGenerator pre-creates the generator's initial namespace on a
// system ("all MDSs are initially populated randomly").
func populateFromGenerator(sys System, gen *trace.Generator) {
	sys.Populate(func(fn func(string) bool) {
		gen.EachInitialPath(fn)
	})
}

// formatSeries renders checkpoints as "ops→latency" pairs for banners.
func formatSeries(points []Checkpoint) string {
	var b strings.Builder
	for i, p := range points {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%d→%v", p.Ops, p.MeanLatency.Round(10*time.Microsecond))
	}
	return b.String()
}

// newCoreCluster wraps core.New so tests inside the package can build a
// System without importing core on their own.
func newCoreCluster(cfg core.Config) (*core.Cluster, error) {
	return core.New(cfg)
}
