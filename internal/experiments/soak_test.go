package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestSoakKillRestart is the acceptance soak: a durable TCP cluster under a
// mixed workload survives kill -9s mid-replay, every reconfiguration is
// triggered by the heartbeat detector (the harness never calls FailMDS),
// the victims recover from their WALs and rejoin, and the fixed-seed
// verification sweep finds zero wrong-home or lost-file answers. Sized to
// stay -race-friendly on a small CI runner.
func TestSoakKillRestart(t *testing.T) {
	res, err := Soak(SoakConfig{
		N:                5,
		M:                2,
		Files:            400,
		Ops:              2_000,
		Workers:          4,
		Kills:            2,
		DataDir:          t.TempDir(),
		DetectorInterval: 15 * time.Millisecond,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	report := FormatSoak(res)
	t.Log("\n" + report)
	if !res.Clean() {
		t.Fatalf("soak invariants broken:\n%s", report)
	}
	if res.Failovers != uint64(res.Kills) {
		t.Fatalf("detector ran %d failovers for %d kills", res.Failovers, res.Kills)
	}
	for _, rep := range res.Restarts {
		if !rep.Rejoined {
			t.Errorf("MDS %d restarted in place; a failed-over victim must rejoin", rep.ID)
		}
		if rep.Recovery.Files == 0 && rep.FilesReclaimed > 0 {
			t.Errorf("MDS %d reclaimed %d files from an empty recovery", rep.ID, rep.FilesReclaimed)
		}
	}
	if res.PathsSwept < res.Config.Files {
		t.Errorf("sweep covered %d paths, want at least the %d initial", res.PathsSwept, res.Config.Files)
	}
	if !strings.Contains(report, "CLEAN") {
		t.Errorf("report missing verdict:\n%s", report)
	}
}

// TestSoakRequiresDurability pins the guard rails: no DataDir and no
// survivors are harness errors, not half-runs.
func TestSoakRequiresDurability(t *testing.T) {
	if _, err := Soak(SoakConfig{N: 4}); err == nil {
		t.Fatal("soak without DataDir did not error")
	}
	if _, err := Soak(SoakConfig{N: 1, DataDir: t.TempDir()}); err == nil {
		t.Fatal("soak without survivors did not error")
	}
	if _, err := Soak(SoakConfig{N: 4, Mode: "nope", DataDir: t.TempDir()}); err == nil {
		t.Fatal("soak with unknown mode did not error")
	}
}

// TestRecoveryBenchSmall runs a miniature recovery bench end to end: the
// recovery-time series must show the snapshot cadence bounding the replayed
// tail, and the restart-latency phase must complete with sane percentiles.
func TestRecoveryBenchSmall(t *testing.T) {
	cfg := RecoveryBenchConfig{
		LogLens:        []int{200, 800},
		SnapshotEverys: []int{100},
		N:              3,
		M:              2,
		Files:          300,
		Lookups:        2_000,
		Workers:        2,
		DataDir:        t.TempDir(),
		Seed:           1,
	}
	res, err := RecoveryBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatRecoveryBench(res))
	if len(res.Points) != 3 {
		t.Fatalf("got %d recovery points, want 3", len(res.Points))
	}
	for _, p := range res.Points {
		if p.SnapshotEvery < 0 && p.Replayed != p.LogRecords {
			t.Errorf("compaction off: replayed %d of %d logged records", p.Replayed, p.LogRecords)
		}
		if p.Files != p.LogRecords {
			t.Errorf("recovered %d files from %d logged creates", p.Files, p.LogRecords)
		}
		if p.Recovery <= 0 {
			t.Errorf("non-positive recovery time for point %+v", p)
		}
	}
	// The compacted point replays at most one cadence worth of tail.
	last := res.Points[len(res.Points)-1]
	if last.SnapshotEvery >= 0 && last.Replayed > last.SnapshotEvery {
		t.Errorf("snapshot cadence %d did not bound replay (%d records)", last.SnapshotEvery, last.Replayed)
	}
	if res.Lookups != cfg.Lookups {
		t.Errorf("timed %d lookups, want %d", res.Lookups, cfg.Lookups)
	}
	if res.SteadyP99 < res.SteadyP50 || res.SteadyP50 <= 0 {
		t.Errorf("implausible steady percentiles: p50 %v, p99 %v", res.SteadyP50, res.SteadyP99)
	}
}
