package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"ghba/internal/analysis"
	"ghba/internal/core"
	"ghba/internal/mds"
	"ghba/internal/simnet"
	"ghba/internal/trace"
)

// Fig6Config parameterizes the normalized-throughput sweep of Fig 6 (and,
// swept over N, the optimal-group-size study of Fig 7).
type Fig6Config struct {
	// Profile is the workload family.
	Profile trace.Profile
	// N is the MDS count (30 and 100 in the paper's Fig 6).
	N int
	// Ms are the candidate group sizes (1..15 in the paper).
	Ms []int
	// Ops is the number of operations replayed per candidate M.
	Ops int
	// TIF and FilesPerSubtrace size the workload.
	TIF              int
	FilesPerSubtrace uint64
	// MemoryBudgetBytes and VirtualReplicaBytes induce the disk spill that
	// penalizes small M (many replicas per MDS).
	MemoryBudgetBytes   uint64
	VirtualReplicaBytes uint64
	// MeanInterarrival sets the load; high load makes over-large groups
	// pay for their multicast fan-out in queueing delay.
	MeanInterarrival time.Duration
	// Seed drives all randomness.
	Seed int64
}

// DefaultFig6Config returns the laptop-scale defaults used by the bench
// harness. The memory budget admits about seven memory-resident replicas
// per MDS, so candidate group sizes below N/7 pay disk penalties, while the
// arrival rate makes group multicast fan-out expensive above the optimum.
func DefaultFig6Config(profile trace.Profile, n int) Fig6Config {
	ms := make([]int, 0, 15)
	for m := 1; m <= 15; m++ {
		ms = append(ms, m)
	}
	return Fig6Config{
		Profile:          profile,
		N:                n,
		Ms:               ms,
		Ops:              20_000,
		TIF:              2,
		FilesPerSubtrace: 10_000,
		// The replica working set is a fixed metadata population spread
		// over N servers, so the accounted per-replica size shrinks with
		// N; with this budget, groups below roughly the paper's optimum
		// spill to disk.
		MemoryBudgetBytes:   280 << 20,
		VirtualReplicaBytes: uint64(1200/n+8) << 20,
		// High enough aggregate load (scaling with the server count) that
		// the per-message CPU of group multicasts saturates members as M
		// grows — the paper's "higher network overheads and longer query
		// delays" penalty for over-large groups. Together with the disk
		// spill at small M this centers the Γ optimum in the paper's 5–9
		// range.
		MeanInterarrival: time.Duration(100_000/n) * time.Nanosecond,
		Seed:             1,
	}
}

// Fig6Row is one point of the Γ-versus-M curve.
type Fig6Row struct {
	M           int
	MeanLatency time.Duration
	Gamma       float64
}

// Fig6 measures normalized throughput Γ (Equation 2) for each candidate
// group size: a fresh G-HBA cluster per M, populated from the workload's
// namespace, replayed under load, with Γ = 1/(mean latency · (N−M)/M).
func Fig6(cfg Fig6Config) ([]Fig6Row, error) {
	rows := make([]Fig6Row, 0, len(cfg.Ms))
	for _, m := range cfg.Ms {
		if m < 1 || m > cfg.N {
			return nil, fmt.Errorf("experiments: M=%d outside [1,%d]", m, cfg.N)
		}
		mean, err := fig6Run(cfg, m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig6Row{
			M:           m,
			MeanLatency: mean,
			Gamma:       analysis.NormalizedThroughput(mean, cfg.N, m),
		})
	}
	return rows, nil
}

func fig6Run(cfg Fig6Config, m int) (time.Duration, error) {
	gen, err := trace.NewGenerator(trace.Config{
		Profile:          cfg.Profile,
		TIF:              cfg.TIF,
		FilesPerSubtrace: cfg.FilesPerSubtrace,
		MeanInterarrival: cfg.MeanInterarrival,
		Seed:             cfg.Seed,
	})
	if err != nil {
		return 0, err
	}
	ccfg := clusterConfig(cfg.N, m, gen)
	ccfg.MemoryBudgetBytes = cfg.MemoryBudgetBytes
	ccfg.VirtualReplicaBytes = cfg.VirtualReplicaBytes
	ccfg.Seed = cfg.Seed
	cluster, err := core.New(ccfg)
	if err != nil {
		return 0, err
	}
	if err := PopulateFromGenerator(coreSys{cluster}, gen); err != nil {
		return 0, err
	}
	points, err := Replay(context.Background(), coreSys{cluster}, gen, cfg.Ops, cfg.Ops)
	if err != nil {
		return 0, err
	}
	return points[len(points)-1].MeanLatency, nil
}

// clusterConfig sizes a simulation cluster for a generator's namespace.
func clusterConfig(n, m int, gen *trace.Generator) core.Config {
	files := gen.InitialFileCount()
	perMDS := files/uint64(n) + 1
	cfg := core.DefaultConfig(n, m)
	cfg.Node = mds.Config{
		ExpectedFiles:  perMDS * 2, // headroom for created files
		BitsPerFile:    16,
		LRUCapacity:    1024,
		LRUBitsPerFile: 16,
	}
	cfg.Cost = simnet.DefaultCostModel()
	// A probe of a spilled filter misses the page cache most of the time
	// (k scattered bit reads per filter); 0.9 models the hot-page residue.
	cfg.CacheHitRate = 0.9
	return cfg
}

// Fig7Config parameterizes the optimal-M-versus-N study.
type Fig7Config struct {
	// Profile is the workload family.
	Profile trace.Profile
	// Ns are the system sizes (10..200 in the paper).
	Ns []int
	// Ms are the candidate group sizes per N.
	Ms []int
	// Ops per candidate.
	Ops int
	// Seed drives all randomness.
	Seed int64
}

// DefaultFig7Config returns bench defaults. Candidate group sizes are
// capped at 15 like the paper's sweep.
func DefaultFig7Config(profile trace.Profile) Fig7Config {
	return Fig7Config{
		Profile: profile,
		Ns:      []int{10, 30, 60, 100},
		Ms:      []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15},
		Ops:     8_000,
		Seed:    1,
	}
}

// Fig7Row is one point of the optimal-M curve.
type Fig7Row struct {
	N        int
	OptimalM int
	PaperM   int
}

// Fig7 finds the Γ-maximizing group size for each system size. Memory
// budgets scale with N (larger deployments hold more metadata per server),
// keeping the spill/multicast tradeoff centered the way the paper's
// workloads do.
func Fig7(cfg Fig7Config) ([]Fig7Row, error) {
	rows := make([]Fig7Row, 0, len(cfg.Ns))
	for _, n := range cfg.Ns {
		f6 := DefaultFig6Config(cfg.Profile, n)
		f6.Ops = cfg.Ops
		f6.Seed = cfg.Seed
		f6.Ms = nil
		for _, m := range cfg.Ms {
			if m <= n {
				f6.Ms = append(f6.Ms, m)
			}
		}
		res, err := Fig6(f6)
		if err != nil {
			return nil, err
		}
		best := res[0]
		for _, r := range res[1:] {
			if r.Gamma > best.Gamma {
				best = r
			}
		}
		rows = append(rows, Fig7Row{N: n, OptimalM: best.M, PaperM: analysis.PaperOptimalM(n)})
	}
	return rows, nil
}

// FormatFig6 renders rows as an aligned table.
func FormatFig6(profile string, n int, rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6 — normalized throughput Γ vs group size M (%s, N=%d)\n", profile, n)
	fmt.Fprintf(&b, "%4s  %14s  %10s\n", "M", "mean latency", "Γ")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4d  %14v  %10.4f\n", r.M, r.MeanLatency.Round(10*time.Microsecond), r.Gamma)
	}
	return b.String()
}

// FormatFig7 renders rows as an aligned table.
func FormatFig7(profile string, rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7 — optimal group size M vs system size N (%s)\n", profile)
	fmt.Fprintf(&b, "%6s  %10s  %8s\n", "N", "optimal M", "paper M")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d  %10d  %8d\n", r.N, r.OptimalM, r.PaperM)
	}
	return b.String()
}
