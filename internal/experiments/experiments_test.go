package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"ghba/internal/trace"
)

// quickFig6 shrinks the default config for test speed.
func quickFig6(n int) Fig6Config {
	cfg := DefaultFig6Config(trace.HP(), n)
	cfg.Ms = []int{1, 3, 6, 10, 15}
	cfg.Ops = 3_000
	cfg.FilesPerSubtrace = 2_000
	return cfg
}

func TestFig6ProducesRowsAndPositiveGamma(t *testing.T) {
	rows, err := Fig6(quickFig6(30))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Gamma <= 0 || r.MeanLatency <= 0 {
			t.Errorf("M=%d: Γ=%f latency=%v", r.M, r.Gamma, r.MeanLatency)
		}
	}
	// The spill regime must make tiny groups lose: M=1 stores N−1 replicas
	// per MDS, far over budget.
	if rows[0].Gamma >= rows[2].Gamma {
		t.Errorf("Γ(M=1)=%f ≥ Γ(M=6)=%f: disk spill not penalizing small M",
			rows[0].Gamma, rows[2].Gamma)
	}
	out := FormatFig6("HP", 30, rows)
	if !strings.Contains(out, "Fig 6") {
		t.Error("format missing header")
	}
}

func TestFig6RejectsBadM(t *testing.T) {
	cfg := quickFig6(10)
	cfg.Ms = []int{0}
	if _, err := Fig6(cfg); err == nil {
		t.Error("M=0 accepted")
	}
	cfg.Ms = []int{11}
	if _, err := Fig6(cfg); err == nil {
		t.Error("M>N accepted")
	}
}

func TestFig7OptimalMGrowsWithN(t *testing.T) {
	cfg := DefaultFig7Config(trace.HP())
	cfg.Ns = []int{10, 60}
	cfg.Ms = []int{1, 2, 3, 5, 7, 9, 12}
	cfg.Ops = 2_500
	rows, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].OptimalM < rows[0].OptimalM {
		t.Errorf("optimal M shrank with N: %d@N=10 vs %d@N=60",
			rows[0].OptimalM, rows[1].OptimalM)
	}
	if !strings.Contains(FormatFig7("HP", rows), "Fig 7") {
		t.Error("format missing header")
	}
}

func quickLatencyFig(fig int) LatencyFigConfig {
	cfg := DefaultLatencyFigConfig(fig)
	cfg.N = 20
	cfg.M = 5
	cfg.Ops = 6_000
	cfg.Interval = 2_000
	cfg.FilesPerSubtrace = 2_000
	cfg.VirtualReplicaMB = 24 // 20 replicas × 24MB = 480MB HBA working set
	cfg.MemBudgetsMB = []uint64{1200, 160}
	return cfg
}

// TestLatencyFigShape verifies the headline result of Figs 8–10: with ample
// memory HBA is competitive, but when replicas spill, HBA's latency blows up
// while G-HBA stays flat.
func TestLatencyFigShape(t *testing.T) {
	cfg := quickLatencyFig(8)
	series, err := LatencyFig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 { // 2 budgets × 2 schemes
		t.Fatalf("series = %d", len(series))
	}
	byKey := make(map[string]LatencySeries)
	for _, s := range series {
		byKey[s.Scheme+"@"+itoa(s.MemBudgetMB)] = s
	}
	hbaBig := byKey["HBA@1200"].Final()
	hbaSmall := byKey["HBA@160"].Final()
	ghbaBig := byKey["G-HBA@1200"].Final()
	ghbaSmall := byKey["G-HBA@160"].Final()

	if hbaSmall < 4*hbaBig {
		t.Errorf("HBA under pressure (%v) not ≫ HBA with RAM (%v)", hbaSmall, hbaBig)
	}
	if hbaSmall < 4*ghbaSmall {
		t.Errorf("G-HBA (%v) does not beat HBA (%v) under memory pressure", ghbaSmall, hbaSmall)
	}
	// G-HBA must be insensitive to the budget (its θ replicas fit).
	ratio := float64(ghbaSmall) / float64(ghbaBig)
	if ratio > 3 || ratio < 0.33 {
		t.Errorf("G-HBA sensitive to memory: %v vs %v", ghbaSmall, ghbaBig)
	}
	out := FormatLatencyFig(cfg, series)
	if !strings.Contains(out, "Fig 8") {
		t.Error("format missing header")
	}
}

func itoa(v uint64) string {
	if v == 1200 {
		return "1200"
	}
	if v == 160 {
		return "160"
	}
	return "?"
}

func TestFig11MigrationOrdering(t *testing.T) {
	rows, err := Fig11([]int{10, 40, 100}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.HBA != r.N {
			t.Errorf("N=%d: HBA migrated %d, want N", r.N, r.HBA)
		}
		if r.GHBA >= r.Hash || r.GHBA >= r.HBA {
			t.Errorf("N=%d: G-HBA (%d) not cheapest (hash %d, HBA %d)",
				r.N, r.GHBA, r.Hash, r.HBA)
		}
		if r.Hash > r.HBA {
			t.Errorf("N=%d: hash (%d) exceeds HBA (%d)", r.N, r.Hash, r.HBA)
		}
	}
	// G-HBA migrations stay small as N grows (the paper's key scaling win).
	if rows[2].GHBA > rows[2].N/4 {
		t.Errorf("G-HBA migrations %d at N=%d: not sublinear", rows[2].GHBA, rows[2].N)
	}
	if !strings.Contains(FormatFig11(rows), "Fig 11") {
		t.Error("format missing header")
	}
}

func TestFig12UpdateLatencyOrdering(t *testing.T) {
	cfg := DefaultFig12Config(trace.HP(), 30)
	cfg.Updates = 20
	cfg.FilesPerSubtrace = 1_000
	rows, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var hbaLat, ghbaLat time.Duration
	for _, r := range rows {
		switch r.Scheme {
		case "HBA":
			hbaLat = r.MeanLatency
		case "G-HBA":
			ghbaLat = r.MeanLatency
		}
	}
	if ghbaLat >= hbaLat {
		t.Errorf("G-HBA update (%v) not faster than HBA (%v)", ghbaLat, hbaLat)
	}
	if !strings.Contains(FormatFig12(rows), "Fig 12") {
		t.Error("format missing header")
	}
}

func TestFig12LatencyGrowsWithN(t *testing.T) {
	small := DefaultFig12Config(trace.HP(), 10)
	small.Updates = 15
	small.FilesPerSubtrace = 500
	large := DefaultFig12Config(trace.HP(), 60)
	large.Updates = 15
	large.FilesPerSubtrace = 500
	rs, err := Fig12(small)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Fig12(large)
	if err != nil {
		t.Fatal(err)
	}
	// HBA's update cost grows with N (system-wide multicast).
	if rl[0].MeanLatency <= rs[0].MeanLatency {
		t.Errorf("HBA update at N=60 (%v) not slower than N=10 (%v)",
			rl[0].MeanLatency, rs[0].MeanLatency)
	}
}

func TestFig13HitRates(t *testing.T) {
	cfg := DefaultFig13Config()
	cfg.Ns = []int{10, 50, 100}
	cfg.Ops = 6_000
	cfg.FilesPerSubtrace = 2_000
	rows, err := Fig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		sum := r.L1 + r.L2 + r.L3 + r.L4
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("N=%d: level fractions sum to %f", r.N, sum)
		}
		// Paper: >80% served by L1+L2, >90% within the group (≤L3).
		if r.L1+r.L2 < 0.7 {
			t.Errorf("N=%d: L1+L2 = %.2f, want ≥ 0.7", r.N, r.L1+r.L2)
		}
		if r.L1+r.L2+r.L3 < 0.9 {
			t.Errorf("N=%d: within-group share = %.2f, want ≥ 0.9", r.N, r.L1+r.L2+r.L3)
		}
	}
	if !strings.Contains(FormatFig13(rows), "Fig 13") {
		t.Error("format missing header")
	}
}

func TestFig14PrototypeShape(t *testing.T) {
	cfg := DefaultFig14Config()
	cfg.N = 10
	cfg.M = 4
	cfg.Ops = 400
	cfg.Interval = 100
	cfg.Files = 1_000
	cfg.ResidentReplicaLimit = 4
	cfg.DiskPenalty = 1 * time.Millisecond
	series, err := Fig14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	var hbaFinal, ghbaFinal time.Duration
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Fatalf("%s: no checkpoints", s.Scheme)
		}
		switch s.Scheme {
		case "HBA":
			hbaFinal = s.Final()
		case "G-HBA":
			ghbaFinal = s.Final()
		}
	}
	// HBA holds 9 replicas > limit 4 → every query pays the disk penalty;
	// G-HBA holds ~2 → none. The prototype must show the gap.
	if ghbaFinal >= hbaFinal {
		t.Errorf("G-HBA (%v) not faster than overloaded HBA (%v)", ghbaFinal, hbaFinal)
	}
	if !strings.Contains(FormatFig14(cfg, series), "Fig 14") {
		t.Error("format missing header")
	}
}

func TestFig15MessageShape(t *testing.T) {
	rows, err := Fig15(12, 4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	prevHBA, prevGHBA := 0, 0
	for _, r := range rows {
		if r.HBAMsgs <= prevHBA || r.GHBAMsgs <= prevGHBA {
			t.Error("cumulative counts not increasing")
		}
		if r.GHBAMsgs >= r.HBAMsgs {
			t.Errorf("after %d adds: G-HBA %d msgs ≥ HBA %d", r.NewNodes, r.GHBAMsgs, r.HBAMsgs)
		}
		prevHBA, prevGHBA = r.HBAMsgs, r.GHBAMsgs
	}
	if !strings.Contains(FormatFig15(12, 4, rows), "Fig 15") {
		t.Error("format missing header")
	}
}

func TestTable5MeasuredClosesOnPaper(t *testing.T) {
	rows, err := Table5([]int{20, 60}, 2_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.BFA16 < 1.9 || r.BFA16 > 2.1 {
			t.Errorf("N=%d: BFA16 = %.2f, want ≈2", r.N, r.BFA16)
		}
		// HBA ≈ 2× BFA8 here because the experiments use 16-bit filters
		// for HBA's array; what matters for the paper's point is G-HBA ≪
		// HBA and shrinking with N.
		if r.GHBA >= r.HBA {
			t.Errorf("N=%d: G-HBA (%.3f) not below HBA (%.3f)", r.N, r.GHBA, r.HBA)
		}
	}
	if rows[1].GHBA >= rows[0].GHBA {
		t.Errorf("G-HBA overhead did not shrink with N: %.3f → %.3f",
			rows[0].GHBA, rows[1].GHBA)
	}
	if !strings.Contains(FormatTable5(rows), "Table 5") {
		t.Error("format missing header")
	}
}

func TestTables34Output(t *testing.T) {
	out, err := Tables34(5_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"1300", "5000", "497.2", "1196.37", "3788", "8280", "160.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("Tables 3/4 output missing %q", want)
		}
	}
}

func TestReplayCheckpoints(t *testing.T) {
	gen, err := trace.NewGenerator(trace.Config{Profile: trace.HP(), TIF: 1, FilesPerSubtrace: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys := newTestSystem(t, gen)
	points, err := Replay(context.Background(), sys, gen, 1_000, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("checkpoints = %d, want 4", len(points))
	}
	for i, p := range points {
		if p.Ops != (i+1)*250 {
			t.Errorf("checkpoint %d at ops %d", i, p.Ops)
		}
		if p.MeanLatency <= 0 {
			t.Errorf("checkpoint %d mean %v", i, p.MeanLatency)
		}
	}
	// interval ≤ 0 falls back to a single final checkpoint.
	gen2, _ := trace.NewGenerator(trace.Config{Profile: trace.HP(), TIF: 1, FilesPerSubtrace: 500, Seed: 2})
	sys2 := newTestSystem(t, gen2)
	if pts, err := Replay(context.Background(), sys2, gen2, 100, 0); err != nil || len(pts) != 1 {
		t.Errorf("fallback checkpoints = %d", len(pts))
	}
}

func newTestSystem(t *testing.T, gen *trace.Generator) System {
	t.Helper()
	ccfg := clusterConfig(6, 3, gen)
	cluster, err := newCoreCluster(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := PopulateFromGenerator(coreSys{cluster}, gen); err != nil {
		t.Fatal(err)
	}
	return coreSys{cluster}
}
