package experiments

import (
	"context"
	"sort"
	"strconv"
	"testing"

	"ghba/internal/core"
	"ghba/internal/simnet"
	"ghba/internal/trace"
)

// replayTestTraceConfig is the fixed-seed mixed workload both equivalence
// runs replay: mutation-heavy enough that creates, deletes, rebuilds and
// replica ships all fire.
func replayTestTraceConfig() trace.Config {
	return trace.Config{
		Profile:          trace.MustMixProfile(60, 25, 15),
		TIF:              2,
		FilesPerSubtrace: 600,
		Seed:             21,
	}
}

// newReplayTestCluster builds one populated G-HBA cluster for the trace.
func newReplayTestCluster(t *testing.T, tcfg trace.Config) *core.Cluster {
	t.Helper()
	gen, err := trace.NewGenerator(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := clusterConfig(12, 4, gen)
	ccfg.Seed = tcfg.Seed
	cluster, err := newCoreCluster(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := PopulateFromGenerator(coreSys{cluster}, gen); err != nil {
		t.Fatal(err)
	}
	return cluster
}

// fingerprintCluster folds the observable outcome of a replay into one
// FNV-1a fingerprint: the home of every initial-namespace path plus the
// homes of the created-path index range the trace can have touched, the
// per-level tallies, and the per-type message counts.
func fingerprintCluster(c *core.Cluster, tcfg trace.Config, createdSpan uint64) uint64 {
	const offset, prime = uint64(14695981039346656037), uint64(1099511628211)
	fp := offset
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			fp ^= uint64(s[i])
			fp *= prime
		}
	}
	probe := func(path string) {
		mix(path)
		mix(":" + strconv.Itoa(c.HomeOf(path)) + ";")
	}
	for sub := 0; sub < tcfg.TIF; sub++ {
		for f := uint64(0); f < tcfg.FilesPerSubtrace+createdSpan; f++ {
			probe(trace.PathFor(sub, f))
		}
	}
	for l := 1; l <= 4; l++ {
		mix("L" + strconv.Itoa(l) + "=" + strconv.FormatUint(c.Tally().Count(l), 10) + ";")
	}
	snap := c.Messages().Snapshot()
	types := make([]int, 0, len(snap))
	for typ := range snap {
		types = append(types, int(typ))
	}
	sort.Ints(types)
	for _, typ := range types {
		mix("M" + strconv.Itoa(typ) + "=" + strconv.FormatUint(snap[simnet.MsgType(typ)], 10) + ";")
	}
	return fp
}

// TestReplayParallelSingleWorkerMatchesSerial pins the reproducibility
// contract of the parallel replay engine (satellite of the concurrent
// mutation pipeline): a serial Replay and a one-worker ReplayParallel over
// the same fixed-seed mixed trace must produce identical home assignments,
// identical per-level tallies, identical per-type message counts, and the
// same mean lookup latency. The final fingerprint is also pinned as a
// constant so any silent drift of the mutation pipeline — RNG draw order,
// ship scheduling, delete semantics — fails loudly even if it drifts the
// same way on both sides.
func TestReplayParallelSingleWorkerMatchesSerial(t *testing.T) {
	tcfg := replayTestTraceConfig()
	const ops = 6_000

	serial := newReplayTestCluster(t, tcfg)
	gen, err := trace.NewGenerator(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	points, err := Replay(context.Background(), coreSys{serial}, gen, ops, ops)
	if err != nil {
		t.Fatal(err)
	}

	parallel := newReplayTestCluster(t, tcfg)
	stats, err := ReplayParallel(context.Background(), coreSys{parallel}, tcfg, ops, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Home assignments: every path either cluster can know about agrees.
	// The created-index span is bounded by ops (each record mints at most
	// one fresh index).
	fpSerial := fingerprintCluster(serial, tcfg, ops)
	fpParallel := fingerprintCluster(parallel, tcfg, ops)
	if fpSerial != fpParallel {
		t.Fatalf("serial and 1-worker replay diverged: fp %d vs %d", fpSerial, fpParallel)
	}
	if serial.FileCount() != parallel.FileCount() {
		t.Errorf("file counts diverged: %d vs %d", serial.FileCount(), parallel.FileCount())
	}
	for l := 1; l <= 4; l++ {
		if serial.Tally().Count(l) != parallel.Tally().Count(l) {
			t.Errorf("L%d tally diverged: %d vs %d", l, serial.Tally().Count(l), parallel.Tally().Count(l))
		}
	}
	sm, pm := serial.Messages().Snapshot(), parallel.Messages().Snapshot()
	if len(sm) != len(pm) {
		t.Errorf("message type sets diverged: %v vs %v", sm, pm)
	}
	for typ, n := range sm {
		if pm[typ] != n {
			t.Errorf("message count %v diverged: %d vs %d", typ, n, pm[typ])
		}
	}
	if got := points[len(points)-1].MeanLatency; got != stats.MeanLookupLatency {
		t.Errorf("mean lookup latency diverged: serial %v vs parallel %v", got, stats.MeanLookupLatency)
	}

	// Pinned fingerprint: captured from the serial engine at this fixed
	// seed. A mismatch means the mutation pipeline's observable behaviour
	// changed — rebase deliberately or fix the regression.
	const wantFP = uint64(17586631006113522035)
	if fpSerial != wantFP {
		t.Errorf("pinned replay fingerprint drifted: got %d, want %d", fpSerial, wantFP)
	}
}

// TestReplayParallelManyWorkersProperties checks what must hold in every
// interleaving of a multi-worker replay: all records are dispatched and
// classified, lane-strided creates never collide (so the namespace arithmetic
// is exact), the cluster's invariants survive, and the level tallies account
// for every lookup.
func TestReplayParallelManyWorkersProperties(t *testing.T) {
	tcfg := replayTestTraceConfig()
	const ops, workers = 8_000, 4

	cluster := newReplayTestCluster(t, tcfg)
	initial := cluster.FileCount()
	stats, err := ReplayParallel(context.Background(), coreSys{cluster}, tcfg, ops, workers)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != workers || stats.Ops != ops {
		t.Fatalf("stats shape wrong: %+v", stats)
	}
	if got := stats.Lookups + stats.Creates + stats.Deletes + stats.DeleteMisses; got != ops {
		t.Errorf("classified %d of %d records", got, ops)
	}
	// Strided allocation keeps every worker's fresh paths disjoint, so the
	// namespace arithmetic must be exact.
	if got, want := cluster.FileCount(), initial+stats.Creates-stats.Deletes; got != want {
		t.Errorf("file count %d, want %d (initial %d + creates %d - deletes %d)",
			got, want, initial, stats.Creates, stats.Deletes)
	}
	if stats.Lookups == 0 || stats.Creates == 0 || stats.Deletes == 0 {
		t.Errorf("mixed workload missing op kinds: %+v", stats)
	}
	if stats.MeanLookupLatency <= 0 {
		t.Errorf("non-positive mean lookup latency")
	}
	if err := cluster.CheckInvariants(); err != nil {
		t.Fatalf("invariants after parallel replay: %v", err)
	}
	var tallied uint64
	for l := 1; l <= 4; l++ {
		tallied += cluster.Tally().Count(l)
	}
	if want := uint64(stats.Lookups); tallied != want {
		t.Errorf("tallies account for %d lookups, want %d", tallied, want)
	}
	if cluster.PendingShips() != 0 {
		t.Error("ReplayParallel returned with pending ships (missing flush)")
	}
}
