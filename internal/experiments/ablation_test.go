package experiments

import (
	"strings"
	"testing"
)

func TestAblationL1(t *testing.T) {
	rows, err := AblationL1(12, 4, 5_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var with, without AblationL1Row
	for _, r := range rows {
		if r.L1Enabled {
			with = r
		} else {
			without = r
		}
	}
	if with.L1Share < 0.5 {
		t.Errorf("L1 share with L1 enabled = %.2f, want substantial", with.L1Share)
	}
	if without.L1Share != 0 {
		t.Errorf("L1 share with L1 disabled = %.2f, want 0", without.L1Share)
	}
	// Both configurations stay correct; the ablation shows the latency and
	// traffic cost of dropping locality capture.
	if without.MeanLatency <= with.MeanLatency {
		t.Errorf("no-L1 latency (%v) not worse than with-L1 (%v)",
			without.MeanLatency, with.MeanLatency)
	}
	if !strings.Contains(FormatAblationL1(rows), "Ablation") {
		t.Error("format missing header")
	}
}

func TestAblationUpdateThreshold(t *testing.T) {
	rows, err := AblationUpdateThreshold(12, 4, 8_000, []uint64{1, 512, 1 << 30}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Eager shipping sends more update messages than batched shipping.
	if rows[0].UpdateMessages <= rows[2].UpdateMessages {
		t.Errorf("eager updates (%d msgs) not more than never-ship (%d)",
			rows[0].UpdateMessages, rows[2].UpdateMessages)
	}
	// Never shipping leaves every created file stale: strictly more L4
	// traffic than eager shipping.
	if rows[2].L4Share < rows[0].L4Share {
		t.Errorf("never-ship L4 share %.3f below eager %.3f",
			rows[2].L4Share, rows[0].L4Share)
	}
	if !strings.Contains(FormatAblationUpdate(rows), "threshold") {
		t.Error("format missing header")
	}
}
