package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ghba/internal/proto"
	"ghba/internal/rpcnet"
	"ghba/internal/trace"
)

// SoakConfig parameterizes the kill/restart soak: a durable TCP cluster
// replays a mixed workload while a chaos schedule crashes daemons with
// kill -9 semantics mid-stream. The heartbeat detector — never an explicit
// failover call — notices each crash and reconfigures the survivors, the
// victim then restarts from its write-ahead log and rejoins, and a final
// fixed-seed verification sweep checks every path the run ever touched
// against the coordinator's ground truth.
type SoakConfig struct {
	// N is the daemon count, M the G-HBA group size.
	N, M int
	// Mode selects the scheme: "ghba" (default) or "hba".
	Mode string
	// Files is the initial namespace size.
	Files int
	// Ops is the total workload operation count across all workers.
	Ops int
	// Workers is the client goroutine count.
	Workers int
	// Mix is the lookup:create:delete weight ratio. Zeros select 70:20:10.
	Mix [3]float64
	// Kills is the number of kill → detect → failover → restart cycles.
	// The k-th strike lands once roughly (k+1)/(Kills+1) of the workload
	// has dispatched, so every crash is mid-replay, not before or after.
	Kills int
	// DataDir is the durability root (required — recovery needs a log).
	DataDir string
	// WALSync is the daemons' fsync policy: "always" (default),
	// "interval" or "never". In-process kills keep the page cache, so the
	// soak's verification holds under every policy.
	WALSync string
	// SnapshotEvery is the WAL compaction cadence (0 selects the library
	// default).
	SnapshotEvery int
	// DetectorInterval is the heartbeat probe period. Zero selects 25ms —
	// fast enough that a soak of a few seconds sees detection, failover
	// and rejoin several times over.
	DetectorInterval time.Duration
	// Seed drives placement, workload generation, entry choice and the
	// chaos schedule.
	Seed int64
}

func (cfg SoakConfig) withDefaults() SoakConfig {
	if cfg.N == 0 {
		cfg.N = 6
	}
	if cfg.M == 0 {
		cfg.M = 3
	}
	if cfg.Files == 0 {
		cfg.Files = 1_000
	}
	if cfg.Ops == 0 {
		cfg.Ops = 5_000
	}
	if cfg.Workers < 1 {
		cfg.Workers = 4
	}
	if cfg.Mix == ([3]float64{}) {
		cfg.Mix = [3]float64{70, 20, 10}
	}
	if cfg.Kills == 0 {
		cfg.Kills = 2
	}
	if cfg.DetectorInterval <= 0 {
		cfg.DetectorInterval = 25 * time.Millisecond
	}
	return cfg
}

// SoakResult reports one soak run. A run is healthy when Clean() holds:
// every kill was detected and failed over by the heartbeat detector, every
// victim recovered and rejoined, and the verification sweep found zero
// wrong-home, lost-file or phantom answers.
type SoakResult struct {
	Config SoakConfig
	// Ops is the number of workload operations dispatched; OpErrors how
	// many failed. Operations that race a crash window fail — the soak
	// verifies correctness of what the cluster answered, not 100%
	// availability during a kill -9.
	Ops, OpErrors int
	// Kills is the number of crashes injected; Failovers how many
	// reconfigurations the detector ran (they must match — the harness
	// never calls FailMDS itself).
	Kills     int
	Failovers uint64
	// Restarts collects each victim's recovery report, in kill order.
	Restarts []proto.RestartReport
	// ChaosErrors records chaos-schedule failures (a failover the detector
	// never ran, a restart that errored). Empty on a healthy run.
	ChaosErrors []string
	// PathsSwept is the verification universe: every initial path plus
	// every path the workload dispatched. For each, ground truth and a
	// live lookup must agree.
	PathsSwept int
	// Lost counts paths ground truth homes somewhere but lookup missed;
	// WrongHome paths lookup found at the wrong daemon; Phantom paths
	// lookup found that ground truth says are gone; SweepErrors lookups
	// that failed outright. All must be zero.
	Lost, WrongHome, Phantom, SweepErrors int
	// Elapsed is the wall-clock length of the workload+chaos phase.
	Elapsed time.Duration
}

// Clean reports whether the run satisfied the soak invariants.
func (r SoakResult) Clean() bool {
	return r.Failovers == uint64(r.Kills) &&
		len(r.Restarts) == r.Kills &&
		len(r.ChaosErrors) == 0 &&
		r.Lost == 0 && r.WrongHome == 0 && r.Phantom == 0 && r.SweepErrors == 0
}

// Soak runs the kill/restart soak and returns its report. Errors are
// reserved for harness failures (cluster refused to start, populate
// failed); a run whose invariants broke returns a result with Clean()
// false, so callers can print the whole report before failing.
func Soak(cfg SoakConfig) (SoakResult, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return SoakResult{}, fmt.Errorf("experiments: soak requires DataDir (recovery needs a log)")
	}
	if cfg.N < 2 {
		return SoakResult{}, fmt.Errorf("experiments: soak needs N ≥ 2 (a kill must leave survivors), got %d", cfg.N)
	}
	mode := proto.ModeGHBA
	switch cfg.Mode {
	case "", "ghba":
	case "hba":
		mode = proto.ModeHBA
	default:
		return SoakResult{}, fmt.Errorf("experiments: unknown soak mode %q", cfg.Mode)
	}
	profile, err := trace.MixProfile(cfg.Mix[0], cfg.Mix[1], cfg.Mix[2])
	if err != nil {
		return SoakResult{}, err
	}
	tcfg := trace.Config{
		Profile:          profile,
		TIF:              4,
		FilesPerSubtrace: uint64(cfg.Files) / 4,
		MeanInterarrival: 2 * time.Millisecond,
		Seed:             cfg.Seed,
	}

	cluster, err := proto.Start(proto.Options{
		N:             cfg.N,
		M:             cfg.M,
		Mode:          mode,
		Node:          protoNodeConfig(cfg.Files*2, cfg.N),
		Seed:          cfg.Seed,
		DataDir:       cfg.DataDir,
		WALSync:       cfg.WALSync,
		SnapshotEvery: cfg.SnapshotEvery,
		// Idempotent RPCs retry through crash windows so most lookups ride
		// out an outage; mutations aimed at a dead daemon fail and are
		// counted as OpErrors.
		Retry: rpcnet.RetryPolicy{Attempts: 5, Backoff: 5 * time.Millisecond, MaxBackoff: 100 * time.Millisecond},
	})
	if err != nil {
		return SoakResult{}, err
	}
	defer cluster.Close()

	gen, err := trace.NewGenerator(tcfg)
	if err != nil {
		return SoakResult{}, err
	}
	var initial []string
	gen.EachInitialPath(func(p string) bool {
		initial = append(initial, p)
		return true
	})
	cluster.Populate(initial)

	res := SoakResult{Config: cfg, Ops: cfg.Ops, Kills: cfg.Kills}
	det := cluster.StartDetector(proto.DetectorOptions{
		Interval:     cfg.DetectorInterval,
		SuspectAfter: 2,
		DeadAfter:    4,
	})

	gens, err := trace.SplitGenerators(tcfg, cfg.Workers)
	if err != nil {
		det.Stop()
		return res, err
	}

	// Workload: each worker owns one lane of the split trace and tolerates
	// per-op errors — the point is to keep the cluster under load across
	// crash windows. Every dispatched path is recorded for the sweep.
	var (
		dispatched atomic.Int64
		opErrors   atomic.Int64
		lanePaths  = make([][]string, cfg.Workers)
		wg         sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		n := cfg.Ops / cfg.Workers
		if w < cfg.Ops%cfg.Workers {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := replayRNG(cfg.Seed, w)
			lane := gens[w]
			for i := 0; i < n; i++ {
				rec := lane.Next()
				lanePaths[w] = append(lanePaths[w], rec.Path)
				if _, err := cluster.ApplyWith(context.Background(), rng, rec); err != nil {
					opErrors.Add(1)
				}
				dispatched.Add(1)
			}
		}(w, n)
	}

	// Chaos: strike points are spread across the workload by dispatch
	// progress, so each kill lands mid-replay whatever the machine speed.
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		rng := rand.New(rand.NewSource(trace.DispatchSeed(cfg.Seed, 1<<20)))
		for k := 0; k < cfg.Kills; k++ {
			threshold := int64(cfg.Ops) * int64(k+1) / int64(cfg.Kills+1)
			for dispatched.Load() < threshold {
				time.Sleep(time.Millisecond)
			}
			ids := cluster.MDSIDs()
			victim := ids[rng.Intn(len(ids))]
			if err := cluster.KillMDS(victim); err != nil {
				res.ChaosErrors = append(res.ChaosErrors, fmt.Sprintf("kill %d: %v", k, err))
				continue
			}
			// The detector — not this harness — must notice the corpse and
			// run the failover.
			want := uint64(k + 1)
			deadline := time.Now().Add(30 * time.Second)
			for det.Failovers() < want && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if det.Failovers() < want {
				res.ChaosErrors = append(res.ChaosErrors,
					fmt.Sprintf("kill %d: detector never failed over MDS %d", k, victim))
				continue
			}
			rep, err := cluster.RestartMDS(context.Background(), victim)
			if err != nil {
				res.ChaosErrors = append(res.ChaosErrors, fmt.Sprintf("restart MDS %d: %v", victim, err))
				continue
			}
			res.Restarts = append(res.Restarts, rep)
		}
	}()

	wg.Wait()
	<-chaosDone
	det.Stop()
	res.Elapsed = time.Since(start)
	res.OpErrors = int(opErrors.Load())
	res.Failovers = det.Failovers()
	if err := cluster.Flush(context.Background()); err != nil {
		return res, fmt.Errorf("experiments: flushing after soak: %w", err)
	}

	// Verification sweep: ground truth versus a live lookup for every path
	// the run ever named. Fixed entry RNG, sorted order — reruns of a seed
	// ask the same questions in the same order.
	universe := make(map[string]struct{}, len(initial)+cfg.Ops)
	for _, p := range initial {
		universe[p] = struct{}{}
	}
	for _, lane := range lanePaths {
		for _, p := range lane {
			universe[p] = struct{}{}
		}
	}
	paths := make([]string, 0, len(universe))
	for p := range universe {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	res.PathsSwept = len(paths)
	sweepRNG := rand.New(rand.NewSource(trace.DispatchSeed(cfg.Seed, 1<<21)))
	for _, p := range paths {
		want := cluster.HomeOf(p)
		got, err := cluster.LookupWith(context.Background(), sweepRNG, p)
		if err != nil {
			res.SweepErrors++
			continue
		}
		switch {
		case want >= 0 && !got.Found:
			res.Lost++
		case want >= 0 && got.Home != want:
			res.WrongHome++
		case want < 0 && got.Found:
			res.Phantom++
		}
	}
	return res, nil
}

// FormatSoak renders the soak report like the figure banners.
func FormatSoak(r SoakResult) string {
	var b strings.Builder
	mode := r.Config.Mode
	if mode == "" {
		mode = "ghba"
	}
	fmt.Fprintf(&b, "Kill/restart soak — mode=%s N=%d M=%d files=%d ops=%d workers=%d kills=%d wal-sync=%s seed=%d\n",
		mode, r.Config.N, r.Config.M, r.Config.Files, r.Config.Ops,
		r.Config.Workers, r.Config.Kills, orDefault(r.Config.WALSync, "always"), r.Config.Seed)
	fmt.Fprintf(&b, "  workload       %d ops in %v (%d failed during crash windows)\n",
		r.Ops, r.Elapsed.Round(time.Millisecond), r.OpErrors)
	fmt.Fprintf(&b, "  failovers      %d detector-driven (kills injected: %d)\n", r.Failovers, r.Kills)
	for _, rep := range r.Restarts {
		fmt.Fprintf(&b, "  restart MDS %d  recovered %d files (%d replayed), reclaimed %d, dropped %d, tail lost %d\n",
			rep.ID, rep.Recovery.Files, rep.Recovery.Replayed, rep.FilesReclaimed, rep.FilesDropped, rep.TailLost)
	}
	for _, e := range r.ChaosErrors {
		fmt.Fprintf(&b, "  CHAOS ERROR    %s\n", e)
	}
	fmt.Fprintf(&b, "  sweep          %d paths: %d lost, %d wrong-home, %d phantom, %d errors\n",
		r.PathsSwept, r.Lost, r.WrongHome, r.Phantom, r.SweepErrors)
	if r.Clean() {
		fmt.Fprintf(&b, "  verdict        CLEAN\n")
	} else {
		fmt.Fprintf(&b, "  verdict        FAILED\n")
	}
	return b.String()
}

// orDefault substitutes def for an empty string.
func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
