package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"ghba/internal/core"
	"ghba/internal/simnet"
	"ghba/internal/trace"
)

// AblationL1Row compares G-HBA with and without the L1 LRU arrays.
type AblationL1Row struct {
	L1Enabled   bool
	MeanLatency time.Duration
	L1Share     float64 // fraction of queries served at L1
	GroupShare  float64 // fraction served within the group (≤L3)
}

// AblationL1 quantifies design choice 2 of DESIGN.md: how much of G-HBA's
// performance comes from the replicated LRU arrays exploiting temporal
// locality. Without L1, every lookup starts at the segment array and far
// more queries multicast.
func AblationL1(n, m, ops int, seed int64) ([]AblationL1Row, error) {
	rows := make([]AblationL1Row, 0, 2)
	for _, enabled := range []bool{true, false} {
		gen, err := trace.NewGenerator(trace.Config{
			Profile:          trace.HP(),
			TIF:              2,
			FilesPerSubtrace: 5_000,
			Seed:             seed,
		})
		if err != nil {
			return nil, err
		}
		cfg := clusterConfig(n, m, gen)
		cfg.Seed = seed
		cfg.DisableL1 = !enabled
		cluster, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := PopulateFromGenerator(coreSys{cluster}, gen); err != nil {
			return nil, err
		}
		points, err := Replay(context.Background(), coreSys{cluster}, gen, ops, ops)
		if err != nil {
			return nil, err
		}
		t := cluster.Tally()
		rows = append(rows, AblationL1Row{
			L1Enabled:   enabled,
			MeanLatency: points[len(points)-1].MeanLatency,
			L1Share:     t.Fraction(1),
			GroupShare:  t.CumulativeFraction(3),
		})
	}
	return rows, nil
}

// FormatAblationL1 renders the comparison.
func FormatAblationL1(rows []AblationL1Row) string {
	var b strings.Builder
	b.WriteString("Ablation — L1 LRU arrays on/off\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "L1=%-5v mean=%-12v L1-share=%.1f%% within-group=%.1f%%\n",
			r.L1Enabled, r.MeanLatency.Round(10*time.Microsecond),
			100*r.L1Share, 100*r.GroupShare)
	}
	return b.String()
}

// AblationUpdateRow reports the staleness/traffic tradeoff at one XOR-delta
// threshold.
type AblationUpdateRow struct {
	ThresholdBits  uint64
	UpdateMessages uint64
	L4Share        float64 // staleness symptom: queries escaping to L4
}

// AblationUpdateThreshold quantifies design choice 3 of DESIGN.md: the
// XOR-delta ship threshold trades replica-update traffic against staleness.
// A low threshold pushes updates eagerly (more messages, fewer stale
// replicas); a high threshold batches aggressively and lets recently created
// files fall through to the global multicast.
func AblationUpdateThreshold(n, m, ops int, thresholds []uint64, seed int64) ([]AblationUpdateRow, error) {
	rows := make([]AblationUpdateRow, 0, len(thresholds))
	for _, th := range thresholds {
		gen, err := trace.NewGenerator(trace.Config{
			Profile:          trace.HP(),
			TIF:              2,
			FilesPerSubtrace: 5_000,
			Seed:             seed,
		})
		if err != nil {
			return nil, err
		}
		cfg := clusterConfig(n, m, gen)
		cfg.Seed = seed
		cfg.UpdateThresholdBits = th
		cluster, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := PopulateFromGenerator(coreSys{cluster}, gen); err != nil {
			return nil, err
		}
		if _, err := Replay(context.Background(), coreSys{cluster}, gen, ops, ops); err != nil {
			return nil, err
		}
		rows = append(rows, AblationUpdateRow{
			ThresholdBits:  th,
			UpdateMessages: cluster.Messages().Get(simnet.MsgReplicaUpdate),
			L4Share:        cluster.Tally().Fraction(4),
		})
	}
	return rows, nil
}

// FormatAblationUpdate renders the sweep.
func FormatAblationUpdate(rows []AblationUpdateRow) string {
	var b strings.Builder
	b.WriteString("Ablation — XOR-delta update threshold\n")
	fmt.Fprintf(&b, "%12s  %14s  %8s\n", "threshold", "update msgs", "L4 share")
	for _, r := range rows {
		fmt.Fprintf(&b, "%12d  %14d  %7.2f%%\n", r.ThresholdBits, r.UpdateMessages, 100*r.L4Share)
	}
	return b.String()
}
