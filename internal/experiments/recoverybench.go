package experiments

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ghba/internal/proto"
	"ghba/internal/rpcnet"
	"ghba/internal/trace"
)

// RecoveryBenchConfig parameterizes the durability benchmark: how long a
// crashed daemon takes to recover as a function of its WAL tail length and
// snapshot cadence, and what a daemon restart does to the lookup tail
// latency of a cluster that keeps serving through it.
type RecoveryBenchConfig struct {
	// LogLens is the mutation counts whose recovery time is measured; each
	// is the WAL tail a killed daemon replays when compaction is disabled.
	LogLens []int
	// SnapshotEverys is the compaction cadences crossed with the longest
	// LogLen: a smaller cadence bounds the replayed tail, so recovery time
	// should flatten as the cadence shrinks. Values < 0 disable compaction.
	SnapshotEverys []int
	// N is the daemon count and M the group size for the p99-during-restart
	// phase; Files its namespace; Lookups its total lookup count; Workers
	// its client goroutines.
	N, M    int
	Files   int
	Lookups int
	Workers int
	// WALSync is the fsync policy for every phase ("always" default).
	WALSync string
	// DataDir roots the WAL directories; empty selects a temp dir that is
	// removed afterwards.
	DataDir string
	// Seed drives placement and entry choice.
	Seed int64
}

// DefaultRecoveryBenchConfig returns the configuration the checked-in
// BENCH_recovery.json records.
func DefaultRecoveryBenchConfig() RecoveryBenchConfig {
	return RecoveryBenchConfig{
		LogLens:        []int{1_000, 5_000, 20_000},
		SnapshotEverys: []int{-1, 4_096, 512},
		N:              6,
		M:              3,
		Files:          4_000,
		Lookups:        20_000,
		Workers:        4,
		Seed:           1,
	}
}

// RecoveryPoint is one (log length, snapshot cadence) → recovery time
// measurement.
type RecoveryPoint struct {
	// LogRecords is how many mutations the daemon logged before the kill;
	// SnapshotEvery its compaction cadence (< 0 disabled).
	LogRecords    int
	SnapshotEvery int
	// Replayed is how many records recovery actually replayed (bounded by
	// the cadence); Files the recovered file count.
	Replayed int
	Files    int
	// Recovery is the wall-clock RestartMDS duration: log replay, filter
	// rebuild, re-listen and replica rewiring.
	Recovery time.Duration
}

// RecoveryBenchResult carries both phases.
type RecoveryBenchResult struct {
	Config RecoveryBenchConfig
	// Points is the recovery-time series, in measurement order: LogLens
	// with compaction disabled first, then the longest LogLen across
	// SnapshotEverys.
	Points []RecoveryPoint
	// SteadyP50/SteadyP99 summarize lookup latency outside the restart
	// window; RestartP99 inside it (kill → recovery complete). Lookups
	// that failed despite retries are counted, not timed.
	SteadyP50, SteadyP99, RestartP99 time.Duration
	// RestartWindow is how long the daemon was down mid-run;
	// RestartRecovery the RestartMDS portion of it.
	RestartWindow   time.Duration
	RestartRecovery time.Duration
	// Lookups is the number of timed lookups; LookupErrors how many failed
	// (crash-window casualties the retry policy could not ride out).
	Lookups      int
	LookupErrors int
}

// RecoveryBench measures both phases. The reproduced relationship is the
// paper-adjacent durability story: recovery time grows with the replayed
// log and is bounded by the snapshot cadence, while the serving cluster's
// lookup p99 degrades only inside the restart window.
func RecoveryBench(cfg RecoveryBenchConfig) (RecoveryBenchResult, error) {
	if len(cfg.LogLens) == 0 || cfg.N < 2 || cfg.Lookups < 1 {
		return RecoveryBenchResult{}, fmt.Errorf("experiments: bad recovery bench config %+v", cfg)
	}
	root := cfg.DataDir
	if root == "" {
		dir, err := os.MkdirTemp("", "ghba-recovery-*")
		if err != nil {
			return RecoveryBenchResult{}, err
		}
		defer os.RemoveAll(dir)
		root = dir
	}
	out := RecoveryBenchResult{Config: cfg}

	// Phase 1: time-to-recover. One daemon pair per point (the victim plus
	// one survivor so the cluster outlives the kill), logLen logged
	// mutations, kill -9, timed restart.
	longest := 0
	for _, l := range cfg.LogLens {
		if l > longest {
			longest = l
		}
	}
	run := func(i, logLen, snapEvery int) error {
		p, err := recoveryPoint(fmt.Sprintf("%s/point-%d", root, i), logLen, snapEvery, cfg)
		if err != nil {
			return err
		}
		out.Points = append(out.Points, p)
		return nil
	}
	i := 0
	for _, logLen := range cfg.LogLens {
		if err := run(i, logLen, -1); err != nil {
			return out, err
		}
		i++
	}
	for _, snapEvery := range cfg.SnapshotEverys {
		if snapEvery < 0 {
			continue // the disabled cadence is the LogLens series above
		}
		if err := run(i, longest, snapEvery); err != nil {
			return out, err
		}
		i++
	}

	// Phase 2: lookup p99 while a daemon restarts under load.
	return out, restartLatency(&out, root+"/latency", cfg)
}

// recoveryPoint measures one timed recovery: a single daemon (so every
// create lands in its log and the log holds exactly logLen records) is
// loaded through the WAL-logged RPC path, crashed and timed through
// RestartMDS.
func recoveryPoint(dir string, logLen, snapEvery int, cfg RecoveryBenchConfig) (RecoveryPoint, error) {
	cluster, err := proto.Start(proto.Options{
		N:             1,
		M:             1,
		Mode:          proto.ModeGHBA,
		Node:          protoNodeConfig(logLen*2+16, 1),
		Seed:          cfg.Seed,
		DataDir:       dir,
		WALSync:       cfg.WALSync,
		SnapshotEvery: snapEvery,
	})
	if err != nil {
		return RecoveryPoint{}, err
	}
	defer cluster.Close()
	ctx := context.Background()
	for f := 0; f < logLen; f++ {
		if _, err := cluster.Apply(ctx, trace.Record{Op: trace.OpCreate, Path: fmt.Sprintf("/rec/f%d", f)}); err != nil {
			return RecoveryPoint{}, err
		}
	}
	victim := cluster.MDSIDs()[0]
	if err := cluster.KillMDS(victim); err != nil {
		return RecoveryPoint{}, err
	}
	start := time.Now()
	rep, err := cluster.RestartMDS(ctx, victim)
	if err != nil {
		return RecoveryPoint{}, err
	}
	return RecoveryPoint{
		LogRecords:    logLen,
		SnapshotEvery: snapEvery,
		Replayed:      rep.Recovery.Replayed,
		Files:         rep.Recovery.Files,
		Recovery:      time.Since(start),
	}, nil
}

// restartLatency runs the p99-during-restart phase.
func restartLatency(out *RecoveryBenchResult, dir string, cfg RecoveryBenchConfig) error {
	cluster, err := proto.Start(proto.Options{
		N:       cfg.N,
		M:       cfg.M,
		Mode:    proto.ModeGHBA,
		Node:    protoNodeConfig(cfg.Files*2, cfg.N),
		Seed:    cfg.Seed,
		DataDir: dir,
		WALSync: cfg.WALSync,
		Retry:   rpcnet.RetryPolicy{Attempts: 5, Backoff: 5 * time.Millisecond, MaxBackoff: 100 * time.Millisecond},
	})
	if err != nil {
		return err
	}
	defer cluster.Close()
	paths := make([]string, cfg.Files)
	for i := range paths {
		paths[i] = fmt.Sprintf("/lat/d%d/f%d", i%31, i)
	}
	cluster.Populate(paths)

	type sample struct {
		at      time.Duration // offset from phase start
		latency time.Duration
		err     bool
	}
	var (
		samples    = make([][]sample, cfg.Workers)
		dispatched atomic.Int64
		wg         sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		n := cfg.Lookups / cfg.Workers
		if w < cfg.Lookups%cfg.Workers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			rng := replayRNG(cfg.Seed, w)
			for i := 0; i < n; i++ {
				p := paths[rng.Intn(len(paths))]
				t0 := time.Now()
				_, err := cluster.LookupWith(context.Background(), rng, p)
				samples[w] = append(samples[w], sample{at: t0.Sub(start), latency: time.Since(t0), err: err != nil})
				dispatched.Add(1)
			}
		}(w, n)
	}

	// Mid-run, crash and restart one daemon in place. The restart window —
	// kill through recovery complete — brackets the degraded samples.
	var killAt, restoreAt time.Duration
	half := int64(cfg.Lookups) / 2
	for dispatched.Load() < half {
		time.Sleep(time.Millisecond)
	}
	victim := cluster.MDSIDs()[len(cluster.MDSIDs())/2]
	killAt = time.Since(start)
	if err := cluster.KillMDS(victim); err != nil {
		return err
	}
	r0 := time.Now()
	if _, err := cluster.RestartMDS(context.Background(), victim); err != nil {
		return err
	}
	out.RestartRecovery = time.Since(r0)
	restoreAt = time.Since(start)
	wg.Wait()

	out.RestartWindow = restoreAt - killAt
	var steady, window []time.Duration
	for _, lane := range samples {
		for _, s := range lane {
			out.Lookups++
			if s.err {
				out.LookupErrors++
				continue
			}
			if s.at >= killAt && s.at <= restoreAt {
				window = append(window, s.latency)
			} else {
				steady = append(steady, s.latency)
			}
		}
	}
	out.SteadyP50 = percentile(steady, 0.50)
	out.SteadyP99 = percentile(steady, 0.99)
	out.RestartP99 = percentile(window, 0.99)
	return nil
}

// percentile returns the q-quantile of ds (nearest-rank); zero when empty.
func percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// FormatRecoveryBench renders both phases.
func FormatRecoveryBench(r RecoveryBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Recovery — wal-sync=%s seed=%d\n", orDefault(r.Config.WALSync, "always"), r.Config.Seed)
	fmt.Fprintf(&b, "  %10s  %14s  %9s  %8s  %12s\n", "log records", "snapshot every", "replayed", "files", "recovery")
	for _, p := range r.Points {
		cadence := "off"
		if p.SnapshotEvery >= 0 {
			cadence = fmt.Sprintf("%d", p.SnapshotEvery)
		}
		fmt.Fprintf(&b, "  %10d  %14s  %9d  %8d  %12v\n",
			p.LogRecords, cadence, p.Replayed, p.Files, p.Recovery.Round(10*time.Microsecond))
	}
	fmt.Fprintf(&b, "  restart under load (N=%d, %d workers, %d lookups): window %v (recovery %v)\n",
		r.Config.N, r.Config.Workers, r.Lookups,
		r.RestartWindow.Round(time.Millisecond), r.RestartRecovery.Round(time.Millisecond))
	fmt.Fprintf(&b, "  lookup latency: steady p50 %v, steady p99 %v, restart-window p99 %v, %d errors\n",
		r.SteadyP50.Round(10*time.Microsecond), r.SteadyP99.Round(10*time.Microsecond),
		r.RestartP99.Round(10*time.Microsecond), r.LookupErrors)
	return b.String()
}
