package experiments

import (
	"context"
	"fmt"
	"strings"

	"ghba/internal/analysis"
	"ghba/internal/bfa"
	"ghba/internal/core"
	"ghba/internal/hashplace"
	"ghba/internal/hba"
	"ghba/internal/trace"
)

// Fig11Row is one system size's migration cost across the three schemes.
type Fig11Row struct {
	N int
	// HBA is the replicas migrated when one MDS joins an HBA system: all N.
	HBA int
	// Hash is the measured migration count under modular-hash placement
	// within one group.
	Hash int
	// GHBA is the measured migration count of a G-HBA join.
	GHBA int
}

// Fig11 measures the replica-migration cost of adding one MDS at each
// system size. HBA ships every replica to the newcomer; hash placement
// re-targets most of a group's replicas; G-HBA migrates only the newcomer's
// fair share (N−M′)/(M′+1).
func Fig11(ns []int, seed int64) ([]Fig11Row, error) {
	rows := make([]Fig11Row, 0, len(ns))
	for _, n := range ns {
		m := analysis.PaperOptimalM(n)

		// HBA: the newcomer receives all N existing replicas.
		hbaCfg := core.DefaultConfig(n, m)
		hbaCfg.Node.ExpectedFiles = 1_000
		hbaCfg.Seed = seed
		hc, err := hba.New(hbaCfg)
		if err != nil {
			return nil, err
		}
		_, hbaMigrated, _ := hc.AddMDS()

		// Hash placement: one group of M′ members holding N−M′ origins;
		// adding a member re-hashes the group.
		groupSize := m
		if groupSize > n {
			groupSize = n
		}
		members := make([]int, groupSize)
		for i := range members {
			members[i] = i
		}
		pl, err := hashplace.New(members)
		if err != nil {
			return nil, err
		}
		for o := groupSize; o < n; o++ {
			pl.AddOrigin(o)
		}
		hashMigrated := pl.AddMember(n)

		// G-HBA: measured from a real join. When N divides evenly into
		// groups of m, every group would be full and the join would
		// trigger a split; nudging the cap to m+1 keeps a slot open — the
		// paper's comparison point is the common light-weight join, not
		// the amortized-rare split (whose cost the prototype's Fig 15
		// covers).
		capM := m
		for ((n+capM-1)/capM)*capM == n {
			// Every group would sit exactly at the cap; widen until the
			// even partition leaves a slot somewhere.
			capM++
		}
		gCfg := core.DefaultConfig(n, capM)
		gCfg.Node.ExpectedFiles = 1_000
		gCfg.Seed = seed
		gc, err := core.New(gCfg)
		if err != nil {
			return nil, err
		}
		_, rep, err := gc.AddMDS()
		if err != nil {
			return nil, err
		}

		rows = append(rows, Fig11Row{N: n, HBA: hbaMigrated, Hash: hashMigrated, GHBA: rep.ReplicasMigrated})
	}
	return rows, nil
}

// FormatFig11 renders the migration comparison.
func FormatFig11(rows []Fig11Row) string {
	var b strings.Builder
	b.WriteString("Fig 11 — replicas migrated when one MDS joins\n")
	fmt.Fprintf(&b, "%6s  %6s  %6s  %6s\n", "N", "HBA", "hash", "G-HBA")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d  %6d  %6d  %6d\n", r.N, r.HBA, r.Hash, r.GHBA)
	}
	return b.String()
}

// Fig13Config parameterizes the per-level hit-rate study.
type Fig13Config struct {
	// Profile is the workload family.
	Profile trace.Profile
	// Ns are the system sizes (10..100 in the paper).
	Ns []int
	// Ops per system size.
	Ops int
	// TIF and FilesPerSubtrace size the workload.
	TIF              int
	FilesPerSubtrace uint64
	// Seed drives all randomness.
	Seed int64
}

// DefaultFig13Config returns bench defaults.
func DefaultFig13Config() Fig13Config {
	return Fig13Config{
		Profile:          trace.HP(),
		Ns:               []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
		Ops:              15_000,
		TIF:              2,
		FilesPerSubtrace: 5_000,
		Seed:             1,
	}
}

// Fig13Row is the per-level service share at one system size.
type Fig13Row struct {
	N  int
	L1 float64 // fraction served at L1
	L2 float64
	L3 float64
	L4 float64
}

// Fig13 replays the workload on G-HBA at each system size and reports which
// level served each query. Replica updates are throttled (high XOR-delta
// threshold) so staleness grows with system size, pushing a small share of
// queries to L4 as in the paper.
func Fig13(cfg Fig13Config) ([]Fig13Row, error) {
	rows := make([]Fig13Row, 0, len(cfg.Ns))
	for _, n := range cfg.Ns {
		gen, err := trace.NewGenerator(trace.Config{
			Profile:          cfg.Profile,
			TIF:              cfg.TIF,
			FilesPerSubtrace: cfg.FilesPerSubtrace,
			Seed:             cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		ccfg := clusterConfig(n, analysis.PaperOptimalM(n), gen)
		ccfg.Seed = cfg.Seed
		// Realistic staleness: updates propagate only after substantial
		// drift, so recently created files miss in remote replicas.
		ccfg.UpdateThresholdBits = 2048
		cluster, err := core.New(ccfg)
		if err != nil {
			return nil, err
		}
		if err := PopulateFromGenerator(coreSys{cluster}, gen); err != nil {
			return nil, err
		}
		if _, err := Replay(context.Background(), coreSys{cluster}, gen, cfg.Ops, cfg.Ops); err != nil {
			return nil, err
		}
		t := cluster.Tally()
		rows = append(rows, Fig13Row{
			N:  n,
			L1: t.Fraction(1),
			L2: t.Fraction(2),
			L3: t.Fraction(3),
			L4: t.Fraction(4),
		})
	}
	return rows, nil
}

// FormatFig13 renders the stacked percentages.
func FormatFig13(rows []Fig13Row) string {
	var b strings.Builder
	b.WriteString("Fig 13 — % of queries served per level\n")
	fmt.Fprintf(&b, "%6s  %7s  %7s  %7s  %7s  %9s\n", "N", "L1", "L2", "L3", "L4", "≤L3 cum")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d  %6.1f%%  %6.1f%%  %6.1f%%  %6.1f%%  %8.1f%%\n",
			r.N, 100*r.L1, 100*r.L2, 100*r.L3, 100*r.L4, 100*(r.L1+r.L2+r.L3))
	}
	return b.String()
}

// Table5Row is one measured row of the memory-overhead table.
type Table5Row struct {
	N        int
	BFA8     float64
	BFA16    float64
	HBA      float64
	GHBA     float64
	PaperRow analysis.Table5Row
}

// Table5 measures the per-MDS filter memory of the four schemes on small
// clusters, normalized to BFA8, alongside the paper's analytic values.
func Table5(ns []int, filesPerMDS uint64, seed int64) ([]Table5Row, error) {
	rows := make([]Table5Row, 0, len(ns))
	for _, n := range ns {
		m := analysis.PaperOptimalM(n)
		totalFiles := filesPerMDS * uint64(n)

		bfa8, err := bfa.New(n, filesPerMDS, 8, seed)
		if err != nil {
			return nil, err
		}
		bfa16, err := bfa.New(n, filesPerMDS, 16, seed)
		if err != nil {
			return nil, err
		}
		base := float64(bfa8.ArrayBytes(0))

		ccfg := core.DefaultConfig(n, m)
		ccfg.Node.ExpectedFiles = filesPerMDS
		ccfg.Node.BitsPerFile = 8
		ccfg.Node.LRUCapacity = filesPerMDS / 100
		if ccfg.Node.LRUCapacity == 0 {
			ccfg.Node.LRUCapacity = 16
		}
		ccfg.Seed = seed
		gc, err := core.New(ccfg)
		if err != nil {
			return nil, err
		}
		hc, err := hba.New(ccfg)
		if err != nil {
			return nil, err
		}
		populateN(coreSys{gc}, totalFiles)
		populateN(hbaSys{hc}, totalFiles)

		gf := gc.MeanFootprint()
		hf := hc.Footprint(0)
		rows = append(rows, Table5Row{
			N:        n,
			BFA8:     1,
			BFA16:    float64(bfa16.ArrayBytes(0)) / base,
			HBA:      float64(hf.Total()) / base,
			GHBA:     float64(gf.Total()) / base,
			PaperRow: analysis.Table5(n, m, 0.004),
		})
	}
	return rows, nil
}

// populateN fills a system with count synthetic paths.
func populateN(sys System, count uint64) {
	paths := make([]string, count)
	for i := range paths {
		paths[i] = fmt.Sprintf("/t5/f%d", i)
	}
	sys.CreateAll(context.Background(), paths)
}

// FormatTable5 renders measured-versus-paper overhead.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("Table 5 — relative memory overhead per MDS (normalized to BFA8)\n")
	fmt.Fprintf(&b, "%6s  %6s  %6s  %8s  %8s  %14s\n", "N", "BFA8", "BFA16", "HBA", "G-HBA", "paper G-HBA")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d  %6.2f  %6.2f  %8.4f  %8.4f  %14.4f\n",
			r.N, r.BFA8, r.BFA16, r.HBA, r.GHBA, r.PaperRow.GHBA)
	}
	return b.String()
}

// Tables34 renders the intensified trace statistics of Tables 3 and 4 from
// the analytic scaling (which reproduces the paper exactly) plus measured
// op-mix shares from a generated sample.
func Tables34(sampleOps int, seed int64) (string, error) {
	var b strings.Builder
	b.WriteString("Table 3 — scaled-up RES and INS traces\n")
	res := trace.RES().Scaled(trace.RES().PaperTIF)
	ins := trace.INS().Scaled(trace.INS().PaperTIF)
	fmt.Fprintf(&b, "%-16s  %12s  %12s\n", "", "RES (TIF=100)", "INS (TIF=30)")
	fmt.Fprintf(&b, "%-16s  %12d  %12d\n", "hosts", res.Hosts, ins.Hosts)
	fmt.Fprintf(&b, "%-16s  %12d  %12d\n", "users", res.Users, ins.Users)
	fmt.Fprintf(&b, "%-16s  %12.1f  %12.2f\n", "open (million)", res.OpenM, ins.OpenM)
	fmt.Fprintf(&b, "%-16s  %12.1f  %12.2f\n", "close (million)", res.CloseM, ins.CloseM)
	fmt.Fprintf(&b, "%-16s  %12.1f  %12.2f\n", "stat (million)", res.StatM, ins.StatM)

	b.WriteString("\nTable 4 — scaled-up HP traces\n")
	hp1 := trace.HP().Scaled(1)
	hp40 := trace.HP().Scaled(40)
	fmt.Fprintf(&b, "%-24s  %10s  %10s\n", "", "original", "TIF=40")
	fmt.Fprintf(&b, "%-24s  %10.1f  %10.0f\n", "requests (million)", hp1.RequestsM, hp40.RequestsM)
	fmt.Fprintf(&b, "%-24s  %10d  %10d\n", "active users", hp1.ActiveUsers, hp40.ActiveUsers)
	fmt.Fprintf(&b, "%-24s  %10d  %10d\n", "user accounts", hp1.UserAccounts, hp40.UserAccounts)
	fmt.Fprintf(&b, "%-24s  %10.3f  %10.2f\n", "active files (million)", hp1.ActiveFilesM, hp40.ActiveFilesM)
	fmt.Fprintf(&b, "%-24s  %10.1f  %10.1f\n", "total files (million)", hp1.TotalFilesM, hp40.TotalFilesM)

	b.WriteString("\nMeasured generator op mix (sampled)\n")
	for _, p := range trace.Profiles() {
		gen, err := trace.NewGenerator(trace.Config{Profile: p, TIF: 2, Seed: seed})
		if err != nil {
			return "", err
		}
		ms := trace.NewMeasuredStats()
		for i := 0; i < sampleOps; i++ {
			ms.Observe(gen.Next())
		}
		fmt.Fprintf(&b, "%-4s open=%.1f%% close=%.1f%% stat=%.1f%% create=%.1f%% delete=%.1f%%\n",
			p.Name,
			100*ms.OpFraction(trace.OpOpen), 100*ms.OpFraction(trace.OpClose),
			100*ms.OpFraction(trace.OpStat), 100*ms.OpFraction(trace.OpCreate),
			100*ms.OpFraction(trace.OpDelete))
	}
	return b.String(), nil
}
