package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"ghba/internal/analysis"
	"ghba/internal/core"
	"ghba/internal/hba"
	"ghba/internal/trace"
)

// LatencyFigConfig parameterizes Figs 8, 9 and 10: average lookup latency
// versus operation count for HBA and G-HBA across memory budgets.
type LatencyFigConfig struct {
	// Figure is 8 (HP), 9 (RES) or 10 (INS) — informational.
	Figure int
	// Profile is the workload family.
	Profile trace.Profile
	// N is the MDS count, M the G-HBA group size.
	N, M int
	// MemBudgetsMB are the per-MDS RAM budgets compared (the paper uses
	// {1200, 800, 500} for HP, {800, 500, 300} for RES, {900, 600, 400}
	// for INS).
	MemBudgetsMB []uint64
	// VirtualReplicaMB is the paper-scale accounted size of one replica.
	VirtualReplicaMB uint64
	// Ops and Interval shape the checkpoint series.
	Ops, Interval int
	// Warmup operations are replayed before measurement starts, so the
	// L1 arrays begin warm (the paper's traces are mid-stream snapshots,
	// not cold starts).
	Warmup int
	// TIF and FilesPerSubtrace size the workload.
	TIF              int
	FilesPerSubtrace uint64
	// MeanInterarrival sets the load.
	MeanInterarrival time.Duration
	// Seed drives all randomness.
	Seed int64
}

// DefaultLatencyFigConfig returns bench defaults for the given figure
// number (8, 9 or 10), using the paper's memory ladder for that trace.
func DefaultLatencyFigConfig(figure int) LatencyFigConfig {
	cfg := LatencyFigConfig{
		Figure:           figure,
		N:                60,
		M:                7, // the prototype's optimum at N=60
		VirtualReplicaMB: 16,
		Ops:              60_000,
		Interval:         10_000,
		Warmup:           15_000,
		TIF:              2,
		FilesPerSubtrace: 10_000,
		// Slightly above the service rate of a heavily spilled HBA array:
		// the smallest-memory HBA configuration saturates and its average
		// latency climbs with operation count, as in the paper's curves,
		// while the larger budgets and G-HBA stay comfortably stable.
		MeanInterarrival: 25 * time.Microsecond,
		Seed:             1,
	}
	switch figure {
	case 9:
		cfg.Profile = trace.RES()
		cfg.MemBudgetsMB = []uint64{800, 500, 300}
	case 10:
		cfg.Profile = trace.INS()
		cfg.MemBudgetsMB = []uint64{900, 600, 400}
	default:
		cfg.Figure = 8
		cfg.Profile = trace.HP()
		cfg.MemBudgetsMB = []uint64{1200, 800, 500}
	}
	return cfg
}

// LatencySeries is one scheme × memory-budget curve.
type LatencySeries struct {
	Scheme      string
	MemBudgetMB uint64
	Points      []Checkpoint
}

// Final returns the last checkpoint's mean latency (zero when empty).
func (s LatencySeries) Final() time.Duration {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].MeanLatency
}

// LatencyFig runs one of Figs 8–10: for every memory budget, both schemes
// replay the same intensified workload and report running mean latency.
func LatencyFig(cfg LatencyFigConfig) ([]LatencySeries, error) {
	var out []LatencySeries
	for _, memMB := range cfg.MemBudgetsMB {
		for _, scheme := range []string{"HBA", "G-HBA"} {
			gen, err := trace.NewGenerator(trace.Config{
				Profile:          cfg.Profile,
				TIF:              cfg.TIF,
				FilesPerSubtrace: cfg.FilesPerSubtrace,
				MeanInterarrival: cfg.MeanInterarrival,
				Seed:             cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			ccfg := clusterConfig(cfg.N, cfg.M, gen)
			ccfg.MemoryBudgetBytes = memMB << 20
			ccfg.VirtualReplicaBytes = cfg.VirtualReplicaMB << 20
			ccfg.Seed = cfg.Seed

			var sys System
			switch scheme {
			case "HBA":
				c, err := hba.New(ccfg)
				if err != nil {
					return nil, err
				}
				sys = hbaSys{c}
			default:
				c, err := core.New(ccfg)
				if err != nil {
					return nil, err
				}
				sys = coreSys{c}
			}
			if err := PopulateFromGenerator(sys, gen); err != nil {
				return nil, err
			}
			if cfg.Warmup > 0 {
				if _, err := Replay(context.Background(), sys, gen, cfg.Warmup, cfg.Warmup); err != nil {
					return nil, err
				}
			}
			points, err := Replay(context.Background(), sys, gen, cfg.Ops, cfg.Interval)
			if err != nil {
				return nil, err
			}
			out = append(out, LatencySeries{Scheme: scheme, MemBudgetMB: memMB, Points: points})
		}
	}
	return out, nil
}

// FormatLatencyFig renders the series like the paper's figure legends.
func FormatLatencyFig(cfg LatencyFigConfig, series []LatencySeries) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig %d — average latency vs operations (%s, N=%d, M=%d)\n",
		cfg.Figure, cfg.Profile.Name, cfg.N, cfg.M)
	for _, s := range series {
		fmt.Fprintf(&b, "%-6s (%4dMB): %s\n", s.Scheme, s.MemBudgetMB, formatSeries(s.Points))
	}
	return b.String()
}

// Fig12Config parameterizes the stale-replica update-latency comparison.
type Fig12Config struct {
	// Profile is the workload family.
	Profile trace.Profile
	// N is the MDS count, M the G-HBA group size.
	N, M int
	// Updates is the number of update requests measured.
	Updates int
	// MemBudgetMB and VirtualReplicaMB control apply-side disk costs.
	MemBudgetMB      uint64
	VirtualReplicaMB uint64
	// FilesPerSubtrace sizes the namespace.
	FilesPerSubtrace uint64
	// Seed drives all randomness.
	Seed int64
}

// DefaultFig12Config returns bench defaults for one (profile, N) cell of
// Fig 12, using the paper's per-N optimal group size.
func DefaultFig12Config(profile trace.Profile, n int) Fig12Config {
	return Fig12Config{
		Profile:          profile,
		N:                n,
		M:                analysis.PaperOptimalM(n),
		Updates:          90,
		MemBudgetMB:      500,
		VirtualReplicaMB: 16,
		FilesPerSubtrace: 5_000,
		Seed:             1,
	}
}

// Fig12Row is the measured mean update latency of one scheme.
type Fig12Row struct {
	Scheme      string
	Profile     string
	N, M        int
	MeanLatency time.Duration
}

// Fig12 measures the latency of updating stale replicas: each update
// mutates a home MDS's file set and pushes the fresh filter — to one holder
// per group in G-HBA, to every MDS in HBA.
func Fig12(cfg Fig12Config) ([]Fig12Row, error) {
	gen, err := trace.NewGenerator(trace.Config{
		Profile:          cfg.Profile,
		TIF:              1,
		FilesPerSubtrace: cfg.FilesPerSubtrace,
		Seed:             cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	ccfg := clusterConfig(cfg.N, cfg.M, gen)
	ccfg.MemoryBudgetBytes = cfg.MemBudgetMB << 20
	ccfg.VirtualReplicaBytes = cfg.VirtualReplicaMB << 20
	ccfg.UpdateThresholdBits = 1 << 30 // manual pushes only
	ccfg.Seed = cfg.Seed

	ghbaCluster, err := core.New(ccfg)
	if err != nil {
		return nil, err
	}
	hbaCluster, err := hba.New(ccfg)
	if err != nil {
		return nil, err
	}
	if err := PopulateFromGenerator(coreSys{ghbaCluster}, gen); err != nil {
		return nil, err
	}
	gen2, err := trace.NewGenerator(trace.Config{
		Profile:          cfg.Profile,
		TIF:              1,
		FilesPerSubtrace: cfg.FilesPerSubtrace,
		Seed:             cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if err := PopulateFromGenerator(hbaSys{hbaCluster}, gen2); err != nil {
		return nil, err
	}

	var ghbaSum, hbaSum time.Duration
	for i := 0; i < cfg.Updates; i++ {
		path := fmt.Sprintf("/updates/batch%d", i)
		gHome := ghbaCluster.Create(path)
		ghbaSum += ghbaCluster.PushUpdate(gHome)
		hHome := hbaCluster.Create(path)
		hbaSum += hbaCluster.PushUpdate(hHome)
	}
	n := time.Duration(cfg.Updates)
	return []Fig12Row{
		{Scheme: "HBA", Profile: cfg.Profile.Name, N: cfg.N, M: cfg.M, MeanLatency: hbaSum / n},
		{Scheme: "G-HBA", Profile: cfg.Profile.Name, N: cfg.N, M: cfg.M, MeanLatency: ghbaSum / n},
	}, nil
}

// FormatFig12 renders rows for several (profile, N) cells.
func FormatFig12(rows []Fig12Row) string {
	var b strings.Builder
	b.WriteString("Fig 12 — latency of updating stale replicas\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-4s N=%-4d M=%-3d mean=%v\n",
			r.Scheme, r.Profile, r.N, r.M, r.MeanLatency.Round(10*time.Microsecond))
	}
	return b.String()
}
