package experiments

import (
	"context"
	"fmt"
	"time"

	"ghba"
	"ghba/internal/analysis"
	"ghba/internal/trace"
)

// ReplayBenchConfig parameterizes the mixed-workload replay throughput
// benchmark: a G-HBA cluster replays a lookup:create:delete stream once
// serially and once through the parallel engine, and the driver reports
// both wall-clock throughputs. The Backend field selects the transport, so
// the identical workload runs against the in-process engine or a loopback
// TCP cluster.
type ReplayBenchConfig struct {
	// Backend selects the transport: "sim" (default) or "tcp".
	Backend string
	// N is the MDS count; M the group size (0 selects the paper optimum).
	N, M int
	// Files is the total initial namespace size.
	Files uint64
	// Ops is the number of replayed operations per run.
	Ops int
	// Workers is the parallel engine's goroutine count.
	Workers int
	// Mix is the lookup:create:delete weight ratio.
	Mix [3]float64
	// ShipBatch is the coalescing ship queue's drain batch (threshold
	// crossings per drain); 0 or 1 ships at every crossing.
	ShipBatch int
	// TIF is the number of sub-traces; 0 selects 4.
	TIF int
	// Seed drives all randomness.
	Seed int64
}

// DefaultReplayBenchConfig returns the 30-MDS / 20k-file mutation-heavy
// configuration the checked-in BENCH_replay.json records.
func DefaultReplayBenchConfig() ReplayBenchConfig {
	return ReplayBenchConfig{
		Backend:   "sim",
		N:         30,
		Files:     20_000,
		Ops:       100_000,
		Workers:   4,
		Mix:       [3]float64{70, 20, 10},
		ShipBatch: 64,
		TIF:       4,
		Seed:      1,
	}
}

// ReplayBenchResult carries both runs plus the headline comparison.
type ReplayBenchResult struct {
	Config   ReplayBenchConfig
	Serial   ReplayStats
	Parallel ReplayStats
	// Speedup is parallel ops/sec over serial ops/sec.
	Speedup float64
	// LevelShares is the parallel run's fraction of lookups served per
	// level (indices 1–4).
	LevelShares [5]float64
	// ReplicaUpdates counts replica-update messages of the parallel run —
	// the traffic the coalescing ship queue amortizes.
	ReplicaUpdates uint64
	// FileCount is the parallel cluster's namespace size after the replay.
	FileCount int
}

// replayBackend is the extra observability ReplayBench reads off a backend
// beyond the System dispatch surface.
type replayBackend interface {
	ghba.Backend
	ReplicaUpdates() uint64
}

// buildBackend boots one backend of the configured kind, populated with the
// generator's initial namespace.
func (cfg ReplayBenchConfig) buildBackend(tcfg trace.Config) (replayBackend, error) {
	gen, err := trace.NewGenerator(tcfg)
	if err != nil {
		return nil, err
	}
	gcfg := ghba.Config{
		NumMDS:              cfg.N,
		MaxGroupSize:        cfg.M,
		ExpectedFilesPerMDS: gen.InitialFileCount()/uint64(cfg.N)*2 + 16,
		// The sizing the pre-Backend replay bench used (clusterConfig), so
		// the checked-in perf trajectory stays comparable across PRs.
		LRUCapacity: 1_024,
		ShipBatch:   cfg.ShipBatch,
		Seed:        cfg.Seed,
	}
	var b replayBackend
	switch cfg.Backend {
	case "", "sim":
		b, err = ghba.New(gcfg)
	case "tcp":
		b, err = ghba.StartPrototype(ghba.PrototypeConfig{Config: gcfg})
	default:
		err = fmt.Errorf("experiments: unknown replay backend %q (want sim or tcp)", cfg.Backend)
	}
	if err != nil {
		return nil, err
	}
	if err := PopulateFromGenerator(b, gen); err != nil {
		b.Close()
		return nil, err
	}
	return b, nil
}

// ReplayBench runs the serial and parallel replays on identically built,
// identically populated clusters and returns the comparison. The serial
// run is the one-worker engine (the pre-parallel baseline); the parallel
// run uses cfg.Workers lanes over a split trace.
func ReplayBench(cfg ReplayBenchConfig) (ReplayBenchResult, error) {
	ctx := context.Background()
	if cfg.N < 1 || cfg.Ops < 1 {
		return ReplayBenchResult{}, fmt.Errorf("experiments: bad replay bench config N=%d ops=%d", cfg.N, cfg.Ops)
	}
	if cfg.M == 0 {
		cfg.M = analysis.PaperOptimalM(cfg.N)
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.TIF == 0 {
		cfg.TIF = 4
	}
	profile, err := trace.MixProfile(cfg.Mix[0], cfg.Mix[1], cfg.Mix[2])
	if err != nil {
		return ReplayBenchResult{}, err
	}
	tcfg := trace.Config{
		Profile:          profile,
		TIF:              cfg.TIF,
		FilesPerSubtrace: cfg.Files / uint64(cfg.TIF),
		// Keep the simulated open-loop model unsaturated: this benchmark
		// measures wall-clock dispatch throughput, and a flooded queue
		// model would report a meaningless simulated latency next to it.
		MeanInterarrival: 2 * time.Millisecond,
		Seed:             cfg.Seed,
	}

	var out ReplayBenchResult
	out.Config = cfg

	// Serial baseline: the one-worker engine over the unsplit stream.
	serial, err := cfg.buildBackend(tcfg)
	if err != nil {
		return out, err
	}
	defer serial.Close()
	out.Serial, err = ReplayParallel(ctx, serial, tcfg, cfg.Ops, 1)
	if err != nil {
		return out, err
	}

	// Parallel engine.
	parallel, err := cfg.buildBackend(tcfg)
	if err != nil {
		return out, err
	}
	defer parallel.Close()
	before := parallel.LevelCounts()
	out.Parallel, err = ReplayParallel(ctx, parallel, tcfg, cfg.Ops, cfg.Workers)
	if err != nil {
		return out, err
	}
	after := parallel.LevelCounts()
	if out.Parallel.Lookups > 0 {
		for l := 1; l <= 4; l++ {
			out.LevelShares[l] = float64(after[l]-before[l]) / float64(out.Parallel.Lookups)
		}
	}
	if out.Serial.OpsPerSec > 0 {
		out.Speedup = out.Parallel.OpsPerSec / out.Serial.OpsPerSec
	}
	out.ReplicaUpdates = parallel.ReplicaUpdates()
	out.FileCount = parallel.FileCount()
	return out, nil
}

// FormatReplayBench renders the comparison like the other figure banners.
func FormatReplayBench(r ReplayBenchResult) string {
	backend := r.Config.Backend
	if backend == "" {
		backend = "sim"
	}
	var b []byte
	b = fmt.Appendf(b, "Replay throughput — backend=%s N=%d M=%d files=%d ops=%d mix=%.0f:%.0f:%.0f shipbatch=%d seed=%d\n",
		backend, r.Config.N, r.Config.M, r.Config.Files, r.Config.Ops,
		r.Config.Mix[0], r.Config.Mix[1], r.Config.Mix[2], r.Config.ShipBatch, r.Config.Seed)
	b = fmt.Appendf(b, "  serial   (1 worker):  %9.0f ops/sec  (%v)\n",
		r.Serial.OpsPerSec, r.Serial.Elapsed.Round(time.Millisecond))
	b = fmt.Appendf(b, "  parallel (%d workers): %9.0f ops/sec  (%v)\n",
		r.Parallel.Workers, r.Parallel.OpsPerSec, r.Parallel.Elapsed.Round(time.Millisecond))
	b = fmt.Appendf(b, "  speedup        %.2fx\n", r.Speedup)
	// The mean comes from the serial run: the sim's open-loop queue model
	// is only meaningful under arrival-ordered dispatch.
	b = fmt.Appendf(b, "  lookups        %d (mean %v serial)  creates %d  deletes %d (+%d missed)\n",
		r.Parallel.Lookups, r.Serial.MeanLookupLatency.Round(time.Microsecond),
		r.Parallel.Creates, r.Parallel.Deletes, r.Parallel.DeleteMisses)
	b = fmt.Appendf(b, "  level shares   L1=%.3f L2=%.3f L3=%.3f L4=%.3f\n",
		r.LevelShares[1], r.LevelShares[2], r.LevelShares[3], r.LevelShares[4])
	b = fmt.Appendf(b, "  replica msgs   %d\n", r.ReplicaUpdates)
	return string(b)
}
