package experiments

import (
	"context"
	"fmt"
	"time"

	"ghba"
	"ghba/internal/analysis"
	"ghba/internal/trace"
)

// WireBenchConfig parameterizes the wire-protocol A/B benchmark: one mixed
// workload replayed against three identically built, identically populated
// TCP clusters — the classic call-per-RPC protocol (the pre-mux path, kept
// live behind Options.Transport), the multiplexed protocol dispatching per
// op, and the multiplexed protocol dispatching RPCBatch-op vectors through
// the batch RPCs. The deltas isolate what each layer buys: mux per-op
// measures framing and connection reuse, mux batched adds the
// RPC-amortization win.
type WireBenchConfig struct {
	// N is the MDS count; M the group size (0 selects the paper optimum).
	N, M int
	// Files is the total initial namespace size.
	Files uint64
	// Ops is the number of replayed operations per phase.
	Ops int
	// Workers is the replay engine's goroutine count (same in every phase).
	Workers int
	// Mix is the lookup:create:delete weight ratio.
	Mix [3]float64
	// ShipBatch is the coalescing ship queue's drain batch.
	ShipBatch int
	// TIF is the number of sub-traces; 0 selects 4.
	TIF int
	// Seed drives all randomness.
	Seed int64
	// RPCBatch is the ops-per-vector of the batched phase; 0 selects 1024.
	// Per-vector costs are dominated by the per-daemon fan of each level's
	// round, so throughput scales with the window until lane length divides
	// into too few windows to keep the workers busy.
	RPCBatch int
}

// DefaultWireBenchConfig returns the configuration the checked-in
// BENCH_wire.json records.
func DefaultWireBenchConfig() WireBenchConfig {
	return WireBenchConfig{
		N:         12,
		M:         6,
		Files:     5_000,
		Ops:       20_000,
		Workers:   4,
		Mix:       [3]float64{70, 20, 10},
		ShipBatch: 64,
		TIF:       4,
		Seed:      1,
		RPCBatch:  1024,
	}
}

// WirePhase is one protocol configuration's measured run.
type WirePhase struct {
	// Name labels the phase: "classic", "mux", "mux+batch".
	Name string
	// Transport is the wire protocol ("classic" or "mux"); RPCBatch is the
	// ops-per-vector (0 = per-op dispatch).
	Transport string
	RPCBatch  int
	// Stats is the replay run.
	Stats ReplayStats
	// RPCs is the number of coordinator RPCs the replay issued; RPCsPerOp
	// divides by the op count.
	RPCs      uint64
	RPCsPerOp float64
	// ByOpcode breaks the RPCs down per message type.
	ByOpcode map[string]uint64
	// Speedup is this phase's ops/sec over the classic phase's.
	Speedup float64
}

// WireBenchResult carries the three phases plus the headline comparisons.
type WireBenchResult struct {
	Config WireBenchConfig
	// Phases holds classic, mux, mux+batch in that order.
	Phases []WirePhase
	// MuxSpeedup is mux per-op over classic; BatchedSpeedup is mux batched
	// over classic — the number the ≥5× wire-protocol goal is scored on.
	MuxSpeedup     float64
	BatchedSpeedup float64
	// RPCReduction is classic RPCs-per-op over mux-batched RPCs-per-op.
	RPCReduction float64
}

// wireTraceConfig builds the workload shared by every phase.
func (cfg WireBenchConfig) wireTraceConfig() (trace.Config, error) {
	profile, err := trace.MixProfile(cfg.Mix[0], cfg.Mix[1], cfg.Mix[2])
	if err != nil {
		return trace.Config{}, err
	}
	return trace.Config{
		Profile:          profile,
		TIF:              cfg.TIF,
		FilesPerSubtrace: cfg.Files / uint64(cfg.TIF),
		MeanInterarrival: 2 * time.Millisecond,
		Seed:             cfg.Seed,
	}, nil
}

// runPhase boots one TCP cluster on the given transport, populates it from
// the shared generator config, replays the workload (batched when rpcBatch
// > 1), and reads the RPC counters back.
func (cfg WireBenchConfig) runPhase(ctx context.Context, tcfg trace.Config, name, transport string, rpcBatch int) (WirePhase, error) {
	phase := WirePhase{Name: name, Transport: transport, RPCBatch: rpcBatch}
	gen, err := trace.NewGenerator(tcfg)
	if err != nil {
		return phase, err
	}
	p, err := ghba.StartPrototype(ghba.PrototypeConfig{
		Config: ghba.Config{
			NumMDS:              cfg.N,
			MaxGroupSize:        cfg.M,
			ExpectedFilesPerMDS: gen.InitialFileCount()/uint64(cfg.N)*2 + 16,
			LRUCapacity:         1_024,
			ShipBatch:           cfg.ShipBatch,
			Seed:                cfg.Seed,
		},
		Transport: transport,
	})
	if err != nil {
		return phase, err
	}
	defer p.Close()
	if err := PopulateFromGenerator(p, gen); err != nil {
		return phase, err
	}
	cluster := p.Cluster()
	cluster.ResetMessages()
	cluster.ResetRPCCounts()
	phase.Stats, err = ReplayParallelBatched(ctx, p, tcfg, cfg.Ops, cfg.Workers, rpcBatch)
	if err != nil {
		return phase, fmt.Errorf("experiments: wire bench phase %s: %w", name, err)
	}
	phase.RPCs = cluster.Messages()
	phase.ByOpcode = cluster.RPCCounts()
	if cfg.Ops > 0 {
		phase.RPCsPerOp = float64(phase.RPCs) / float64(cfg.Ops)
	}
	return phase, nil
}

// WireBench runs the three-phase protocol comparison.
func WireBench(cfg WireBenchConfig) (WireBenchResult, error) {
	ctx := context.Background()
	if cfg.N < 1 || cfg.Ops < 1 {
		return WireBenchResult{}, fmt.Errorf("experiments: bad wire bench config N=%d ops=%d", cfg.N, cfg.Ops)
	}
	if cfg.M == 0 {
		cfg.M = analysis.PaperOptimalM(cfg.N)
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.TIF == 0 {
		cfg.TIF = 4
	}
	if cfg.RPCBatch == 0 {
		cfg.RPCBatch = 1024
	}
	tcfg, err := cfg.wireTraceConfig()
	if err != nil {
		return WireBenchResult{}, err
	}
	out := WireBenchResult{Config: cfg}
	specs := []struct {
		name      string
		transport string
		rpcBatch  int
	}{
		{"classic", "classic", 1},
		{"mux", "mux", 1},
		{"mux+batch", "mux", cfg.RPCBatch},
	}
	for _, spec := range specs {
		phase, err := cfg.runPhase(ctx, tcfg, spec.name, spec.transport, spec.rpcBatch)
		if err != nil {
			return out, err
		}
		out.Phases = append(out.Phases, phase)
	}
	classic := out.Phases[0]
	for i := range out.Phases {
		if classic.Stats.OpsPerSec > 0 {
			out.Phases[i].Speedup = out.Phases[i].Stats.OpsPerSec / classic.Stats.OpsPerSec
		}
	}
	out.MuxSpeedup = out.Phases[1].Speedup
	out.BatchedSpeedup = out.Phases[2].Speedup
	if batched := out.Phases[2]; batched.RPCsPerOp > 0 {
		out.RPCReduction = classic.RPCsPerOp / batched.RPCsPerOp
	}
	return out, nil
}

// FormatWireBench renders the comparison like the other figure banners.
func FormatWireBench(r WireBenchResult) string {
	var b []byte
	b = fmt.Appendf(b, "Wire protocol — N=%d M=%d files=%d ops=%d workers=%d mix=%.0f:%.0f:%.0f rpcbatch=%d seed=%d\n",
		r.Config.N, r.Config.M, r.Config.Files, r.Config.Ops, r.Config.Workers,
		r.Config.Mix[0], r.Config.Mix[1], r.Config.Mix[2], r.Config.RPCBatch, r.Config.Seed)
	for _, p := range r.Phases {
		b = fmt.Appendf(b, "  %-10s %9.0f ops/sec  (%v)  %8d RPCs  %5.2f RPCs/op  %5.2fx\n",
			p.Name, p.Stats.OpsPerSec, p.Stats.Elapsed.Round(time.Millisecond),
			p.RPCs, p.RPCsPerOp, p.Speedup)
	}
	b = fmt.Appendf(b, "  mux over classic      %.2fx\n", r.MuxSpeedup)
	b = fmt.Appendf(b, "  batched over classic  %.2fx  (RPCs/op reduced %.1fx)\n",
		r.BatchedSpeedup, r.RPCReduction)
	return string(b)
}
