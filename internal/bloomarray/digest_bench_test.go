package bloomarray

import (
	"fmt"
	"sort"
	"testing"

	"ghba/internal/bloom"
)

// benchArray builds a 16-replica segment array — the paper-scale L2 array a
// G-HBA server holds at N≈100, M≈6 — with every filter populated.
func benchArray(b *testing.B) (*Array, []string) {
	b.Helper()
	a := NewArray()
	var paths []string
	for r := 0; r < 16; r++ {
		f, err := bloom.NewForCapacity(10_000, 16)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 2_000; j++ {
			p := fmt.Sprintf("/bench/r%d/dir%d/file%d", r, j%37, j)
			f.AddString(p)
			if j%200 == 0 {
				paths = append(paths, p)
			}
		}
		a.Put(r, f)
	}
	return a, paths
}

// BenchmarkArrayQuery compares the hash-once probe against the seed
// implementation's cost model on a 16-replica array. The "perprobe-rehash"
// case replicates what Array.QueryString did before the digest pipeline:
// one []byte conversion per query, a full key hash plus k mod reductions
// per filter, a fresh hits slice, and a per-query sort. The "digest" case
// is the shipped path: hash once, k positions once, 16×k word loads, hits
// appended into a reused buffer in order.
func BenchmarkArrayQuery(b *testing.B) {
	a, paths := benchArray(b)

	b.Run("perprobe-rehash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			key := []byte(paths[i%len(paths)])
			var hits []int
			for _, e := range a.snapshot() {
				if e.f.Contains(key) {
					hits = append(hits, e.id)
				}
			}
			sort.Ints(hits)
			if len(hits) == 0 {
				b.Fatal("populated key missed")
			}
		}
	})

	b.Run("digest", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]int, 0, 16)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := bloom.NewDigestString(paths[i%len(paths)])
			r := a.QueryDigest(&d, buf)
			buf = r.Hits
			if len(r.Hits) == 0 {
				b.Fatal("populated key missed")
			}
		}
	})

	b.Run("query-string", func(b *testing.B) {
		// The compatibility entry point, now digest-backed internally.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if a.QueryString(paths[i%len(paths)]).Miss() {
				b.Fatal("populated key missed")
			}
		}
	})
}

// BenchmarkFilterContainsDigest isolates one replica probe: the digest case
// is k word loads against cached positions.
func BenchmarkFilterContainsDigest(b *testing.B) {
	f, err := bloom.NewForCapacity(50_000, 16)
	if err != nil {
		b.Fatal(err)
	}
	const key = "/bench/one/replica/probe.dat"
	f.AddString(key)

	b.Run("contains-rehash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !f.ContainsString(key) {
				b.Fatal("miss")
			}
		}
	})
	b.Run("digest", func(b *testing.B) {
		b.ReportAllocs()
		d := bloom.NewDigestString(key)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !f.ContainsDigest(&d) {
				b.Fatal("miss")
			}
		}
	})
}
