package bloomarray

import (
	"fmt"
	"slices"
	"sync"

	"ghba/internal/bloom"
)

// LRUArray is the L1 structure of G-HBA: one small Bloom filter per MDS
// recording the files recently confirmed to be homed at that MDS. Because a
// plain Bloom filter cannot evict, recency is approximated with the standard
// two-generation aging scheme: each entry keeps an active and an aged
// filter; inserts go to the active one, lookups consult both, and when the
// active filter has absorbed its capacity the generations rotate (the aged
// one is discarded). The effect is a sliding window covering between one and
// two capacities of the most recent insertions, which is exactly the "hot
// data" set the paper wants L1 to capture.
//
// The array is safe for concurrent use: lookups from parallel workers record
// confirmed homes (Observe) while other workers query, so every method takes
// the internal lock. Observe mutates filter generations and therefore needs
// the write lock even though queries dominate.
type LRUArray struct {
	mu          sync.RWMutex
	capacity    uint64  // insertions per generation, per MDS
	bitsPerItem float64 // filter ratio for each generation
	entries     map[int]*agingFilter
}

// agingFilter is a two-generation filter pair for one MDS.
type agingFilter struct {
	active *bloom.Filter
	aged   *bloom.Filter
}

// NewLRUArray creates an LRU array whose per-MDS generations hold capacity
// recent files at the given bits-per-item ratio.
func NewLRUArray(capacity uint64, bitsPerItem float64) (*LRUArray, error) {
	if capacity == 0 || bitsPerItem <= 0 {
		return nil, fmt.Errorf("%w: capacity=%d bits/item=%f",
			bloom.ErrInvalidGeometry, capacity, bitsPerItem)
	}
	return &LRUArray{
		capacity:    capacity,
		bitsPerItem: bitsPerItem,
		entries:     make(map[int]*agingFilter),
	}, nil
}

func (l *LRUArray) newGeneration() *bloom.Filter {
	f, err := bloom.NewForCapacity(l.capacity, l.bitsPerItem)
	if err != nil {
		// Geometry was validated in the constructor; reaching here means
		// internal corruption, not caller error.
		panic(fmt.Sprintf("bloomarray: invalid LRU generation geometry: %v", err))
	}
	return f
}

// Observe records that key was confirmed to live at homeMDS, rotating that
// MDS's generations if the active filter is full.
func (l *LRUArray) Observe(key []byte, homeMDS int) {
	d := bloom.NewDigest(key)
	l.ObserveDigest(&d, homeMDS)
}

// ObserveString records a string key.
func (l *LRUArray) ObserveString(key string, homeMDS int) {
	d := bloom.NewDigestString(key)
	l.ObserveDigest(&d, homeMDS)
}

// ObserveDigest records a pre-hashed confirmed (key → homeMDS) mapping. The
// key is hashed exactly once: the read-lock fast path and the write-path
// insert both consume the caller's digest.
//
// The hot case — re-observing a key already in the current generation — is
// answered under the read lock so parallel lookup workers hammering the same
// hot files do not serialize. Skipping the re-add leaves the filter bits
// unchanged but also leaves the generation's insertion counter where it was,
// so rotation is driven by (approximately) distinct recent files rather than
// raw observation count: a hot set smaller than capacity stays resident
// instead of being aged out by its own repetitions, which is the window the
// paper wants L1 to capture. Only new keys (and rotations) take the write
// lock.
func (l *LRUArray) ObserveDigest(d *bloom.Digest, homeMDS int) {
	l.mu.RLock()
	if e := l.entries[homeMDS]; e != nil &&
		e.active.Count() < l.capacity && e.active.ContainsDigest(d) {
		l.mu.RUnlock()
		return
	}
	l.mu.RUnlock()

	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entries[homeMDS]
	if e == nil {
		e = &agingFilter{active: l.newGeneration()}
		l.entries[homeMDS] = e
	}
	if e.active.Count() >= l.capacity {
		e.aged = e.active
		e.active = l.newGeneration()
	}
	e.active.AddDigest(d)
}

// Query returns every MDS whose recent-file window may contain key, with the
// same unique-hit contract as Array.Query.
func (l *LRUArray) Query(key []byte) Result {
	d := bloom.NewDigest(key)
	return l.QueryDigest(&d, nil)
}

// QueryString checks a string key.
func (l *LRUArray) QueryString(key string) Result {
	d := bloom.NewDigestString(key)
	return l.QueryDigest(&d, nil)
}

// QueryDigest checks a pre-hashed key against every entry, appending hits
// into buf (which may be nil). Both generations of an entry share the
// digest's cached probe positions, so each entry costs at most 2k word
// loads; with a reused buffer the query does not allocate.
func (l *LRUArray) QueryDigest(d *bloom.Digest, buf []int) Result {
	l.mu.RLock()
	defer l.mu.RUnlock()
	hits := buf[:0]
	for id, e := range l.entries {
		if e.active.ContainsDigest(d) || (e.aged != nil && e.aged.ContainsDigest(d)) {
			hits = append(hits, id)
		}
	}
	slices.Sort(hits)
	return Result{Hits: hits}
}

// Forget drops the entry for an MDS, used when that MDS leaves the system so
// stale L1 hits cannot route requests to a dead server.
func (l *LRUArray) Forget(mdsID int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.entries, mdsID)
}

// Reset clears every entry.
func (l *LRUArray) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = make(map[int]*agingFilter)
}

// Entries returns the number of MDSs currently tracked.
func (l *LRUArray) Entries() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// SizeBytes returns the memory footprint of all generations.
func (l *LRUArray) SizeBytes() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var total uint64
	for _, e := range l.entries {
		total += e.active.SizeBytes()
		if e.aged != nil {
			total += e.aged.SizeBytes()
		}
	}
	return total
}
