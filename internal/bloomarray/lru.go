package bloomarray

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"ghba/internal/bloom"
)

// LRUArray is the L1 structure of G-HBA: one small Bloom filter per MDS
// recording the files recently confirmed to be homed at that MDS. Because a
// plain Bloom filter cannot evict, recency is approximated with the standard
// two-generation aging scheme: each entry keeps an active and an aged
// filter; inserts go to the active one, lookups consult both, and when the
// active filter has absorbed its capacity the generations rotate (the aged
// one is discarded). The effect is a sliding window covering between one and
// two capacities of the most recent insertions, which is exactly the "hot
// data" set the paper wants L1 to capture.
//
// Concurrency follows the epoch-snapshot idiom of the rest of the read
// path: the entry map is immutable and published through an atomic pointer.
// Queries (and the Observe fast path for already-recorded hot keys) load the
// snapshot and probe filters with atomic word reads — no lock, ever.
// Structural writes — a new MDS entry, a generation rotation, Forget, Reset
// — serialize on an internal mutex, copy the map, and swap in the new
// version; an agingFilter value is never modified after publication, only
// replaced. Non-structural inserts (AddDigest into a published active
// filter) also run under the mutex and are safe against concurrent readers
// because filter bit-sets synchronize word-wise.
type LRUArray struct {
	mu          sync.Mutex // serializes writers; readers never take it
	capacity    uint64     // insertions per generation, per MDS
	bitsPerItem float64    // filter ratio for each generation
	layout      bloom.Layout
	entries     atomic.Pointer[map[int]*agingFilter]
}

// agingFilter is a two-generation filter pair for one MDS. Published values
// are immutable: rotation and entry creation replace the whole struct.
type agingFilter struct {
	active *bloom.Filter
	aged   *bloom.Filter
}

// NewLRUArray creates an LRU array whose per-MDS generations hold capacity
// recent files at the given bits-per-item ratio, using the classic filter
// layout.
func NewLRUArray(capacity uint64, bitsPerItem float64) (*LRUArray, error) {
	return NewLRUArrayLayout(capacity, bitsPerItem, bloom.LayoutClassic)
}

// NewLRUArrayLayout is NewLRUArray with an explicit filter layout; blocked
// generations answer each probe from a single cache line.
func NewLRUArrayLayout(capacity uint64, bitsPerItem float64, layout bloom.Layout) (*LRUArray, error) {
	if capacity == 0 || bitsPerItem <= 0 {
		return nil, fmt.Errorf("%w: capacity=%d bits/item=%f",
			bloom.ErrInvalidGeometry, capacity, bitsPerItem)
	}
	l := &LRUArray{
		capacity:    capacity,
		bitsPerItem: bitsPerItem,
		layout:      layout,
	}
	l.entries.Store(&map[int]*agingFilter{})
	return l, nil
}

// snapshot returns the current published entry map. The map is immutable;
// callers may range over it freely but must not modify it.
func (l *LRUArray) snapshot() map[int]*agingFilter {
	return *l.entries.Load()
}

func (l *LRUArray) newGeneration() *bloom.Filter {
	f, err := bloom.NewForCapacityLayout(l.capacity, l.bitsPerItem, l.layout)
	if err != nil {
		// Geometry was validated in the constructor; reaching here means
		// internal corruption, not caller error.
		panic(fmt.Sprintf("bloomarray: invalid LRU generation geometry: %v", err))
	}
	return f
}

// publishLocked copies the current map, applies mutate to the copy, and
// swaps it in. Requires l.mu.
func (l *LRUArray) publishLocked(mutate func(map[int]*agingFilter)) {
	cur := l.snapshot()
	next := make(map[int]*agingFilter, len(cur)+1)
	for id, e := range cur {
		next[id] = e
	}
	mutate(next)
	l.entries.Store(&next)
}

// Observe records that key was confirmed to live at homeMDS, rotating that
// MDS's generations if the active filter is full.
func (l *LRUArray) Observe(key []byte, homeMDS int) {
	d := bloom.NewDigest(key)
	l.ObserveDigest(&d, homeMDS)
}

// ObserveString records a string key.
func (l *LRUArray) ObserveString(key string, homeMDS int) {
	d := bloom.NewDigestString(key)
	l.ObserveDigest(&d, homeMDS)
}

// ObserveDigest records a pre-hashed confirmed (key → homeMDS) mapping. The
// key is hashed exactly once: the lock-free fast path and the write-path
// insert both consume the caller's digest.
//
// The hot case — re-observing a key already in the current generation — is
// answered from the published snapshot without any lock, so parallel lookup
// workers hammering the same hot files do not serialize. Skipping the re-add
// leaves the filter bits unchanged but also leaves the generation's
// insertion counter where it was, so rotation is driven by (approximately)
// distinct recent files rather than raw observation count: a hot set smaller
// than capacity stays resident instead of being aged out by its own
// repetitions, which is the window the paper wants L1 to capture. Only new
// keys (and rotations) take the write lock.
func (l *LRUArray) ObserveDigest(d *bloom.Digest, homeMDS int) {
	if e := l.snapshot()[homeMDS]; e != nil &&
		e.active.Count() < l.capacity && e.active.ContainsDigest(d) {
		return
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.snapshot()[homeMDS]
	switch {
	case e == nil:
		// First observation for this MDS: publish a fresh entry with the
		// key already inserted so no reader sees an empty active filter
		// that is about to change shape.
		fresh := &agingFilter{active: l.newGeneration()}
		fresh.active.AddDigest(d)
		l.publishLocked(func(m map[int]*agingFilter) { m[homeMDS] = fresh })
	case e.active.Count() >= l.capacity:
		// Rotate by replacement: the published agingFilter stays intact for
		// in-flight readers; the new version demotes the full generation.
		rotated := &agingFilter{active: l.newGeneration(), aged: e.active}
		rotated.active.AddDigest(d)
		l.publishLocked(func(m map[int]*agingFilter) { m[homeMDS] = rotated })
	default:
		// In-place insert into the published active generation: word-wise
		// atomic, safe against lock-free probes.
		e.active.AddDigest(d)
	}
}

// Query returns every MDS whose recent-file window may contain key, with the
// same unique-hit contract as Array.Query.
func (l *LRUArray) Query(key []byte) Result {
	d := bloom.NewDigest(key)
	return l.QueryDigest(&d, nil)
}

// QueryString checks a string key.
func (l *LRUArray) QueryString(key string) Result {
	d := bloom.NewDigestString(key)
	return l.QueryDigest(&d, nil)
}

// QueryDigest checks a pre-hashed key against every entry of the current
// snapshot, appending hits into buf (which may be nil). Both generations of
// an entry share the digest's cached probe positions, so each entry costs at
// most 2k word loads; with a reused buffer the query neither allocates nor
// locks.
//
//ghbavet:hotpath
func (l *LRUArray) QueryDigest(d *bloom.Digest, buf []int) Result {
	hits := buf[:0]
	for id, e := range l.snapshot() {
		if e.active.ContainsDigest(d) || (e.aged != nil && e.aged.ContainsDigest(d)) {
			hits = append(hits, id)
		}
	}
	slices.Sort(hits)
	return Result{Hits: hits}
}

// Forget drops the entry for an MDS, used when that MDS leaves the system so
// stale L1 hits cannot route requests to a dead server.
func (l *LRUArray) Forget(mdsID int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.publishLocked(func(m map[int]*agingFilter) { delete(m, mdsID) })
}

// Reset clears every entry.
func (l *LRUArray) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries.Store(&map[int]*agingFilter{})
}

// Entries returns the number of MDSs currently tracked.
func (l *LRUArray) Entries() int {
	return len(l.snapshot())
}

// SizeBytes returns the memory footprint of all generations.
func (l *LRUArray) SizeBytes() uint64 {
	var total uint64
	for _, e := range l.snapshot() {
		total += e.active.SizeBytes()
		if e.aged != nil {
			total += e.aged.SizeBytes()
		}
	}
	return total
}
