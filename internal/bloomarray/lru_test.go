package bloomarray

import (
	"strconv"
	"testing"
)

func TestNewLRUArrayValidation(t *testing.T) {
	if _, err := NewLRUArray(0, 8); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewLRUArray(10, 0); err == nil {
		t.Error("ratio 0 accepted")
	}
}

func TestLRUObserveQuery(t *testing.T) {
	l, err := NewLRUArray(100, 16)
	if err != nil {
		t.Fatal(err)
	}
	l.ObserveString("/a/file1", 3)
	l.ObserveString("/a/file2", 5)
	r := l.QueryString("/a/file1")
	if id, ok := r.Unique(); !ok || id != 3 {
		t.Errorf("Query(file1) = %v, want unique 3", r.Hits)
	}
	if !l.QueryString("/a/unseen").Miss() {
		t.Error("unseen key hit the LRU array")
	}
	if l.Entries() != 2 {
		t.Errorf("Entries = %d, want 2", l.Entries())
	}
}

func TestLRUAgingKeepsRecentDropsOld(t *testing.T) {
	const capacity = 50
	l, err := NewLRUArray(capacity, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Fill more than two generations for MDS 1.
	for i := 0; i < 3*capacity; i++ {
		l.ObserveString("old"+strconv.Itoa(i), 1)
	}
	// The most recent insertion must always be present.
	last := "old" + strconv.Itoa(3*capacity-1)
	if l.QueryString(last).Miss() {
		t.Error("most recent observation evicted")
	}
	// The very first insertions (older than two generations) must be gone,
	// modulo Bloom false positives; check a batch and require most missing.
	evicted := 0
	for i := 0; i < capacity; i++ {
		if l.QueryString("old" + strconv.Itoa(i)).Miss() {
			evicted++
		}
	}
	if evicted < capacity*9/10 {
		t.Errorf("only %d/%d oldest observations evicted", evicted, capacity)
	}
}

func TestLRUSlidingWindowRetainsPreviousGeneration(t *testing.T) {
	const capacity = 40
	l, err := NewLRUArray(capacity, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < capacity+5; i++ { // rotate once, 5 into new generation
		l.ObserveString("w"+strconv.Itoa(i), 2)
	}
	// Keys from the immediately previous generation are still queryable.
	for i := capacity - 5; i < capacity; i++ {
		if l.QueryString("w" + strconv.Itoa(i)).Miss() {
			t.Errorf("previous-generation key w%d already evicted", i)
		}
	}
}

func TestLRUForget(t *testing.T) {
	l, err := NewLRUArray(10, 16)
	if err != nil {
		t.Fatal(err)
	}
	l.ObserveString("f", 4)
	l.Forget(4)
	if !l.QueryString("f").Miss() {
		t.Error("Forget left entry queryable")
	}
	if l.Entries() != 0 {
		t.Errorf("Entries = %d after Forget, want 0", l.Entries())
	}
}

func TestLRUReset(t *testing.T) {
	l, err := NewLRUArray(10, 16)
	if err != nil {
		t.Fatal(err)
	}
	l.ObserveString("a", 1)
	l.ObserveString("b", 2)
	l.Reset()
	if l.Entries() != 0 || !l.QueryString("a").Miss() {
		t.Error("Reset did not clear entries")
	}
}

func TestLRUMultipleHitsAcrossMDSs(t *testing.T) {
	l, err := NewLRUArray(10, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Same file observed at two different homes (stale + fresh): both hit,
	// which must escalate rather than answer.
	l.ObserveString("moved", 1)
	l.ObserveString("moved", 2)
	r := l.QueryString("moved")
	if !r.Multiple() {
		t.Errorf("expected multiple hits, got %v", r.Hits)
	}
}

func TestLRUSizeBytesGrowsWithEntries(t *testing.T) {
	l, err := NewLRUArray(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if l.SizeBytes() != 0 {
		t.Error("empty LRU array non-zero size")
	}
	l.ObserveString("x", 1)
	s1 := l.SizeBytes()
	l.ObserveString("y", 2)
	if l.SizeBytes() <= s1 {
		t.Error("size did not grow with second MDS entry")
	}
}
