package bloomarray

import (
	"fmt"
	"slices"
	"strconv"

	"ghba/internal/bloom"
)

// IDBFA is the identification Bloom filter array of Section 2.4: every MDS
// in a group keeps one counting filter per group member, each recording the
// origin-MDS IDs of the replicas that member currently stores. Locating the
// holder of MDS j's replica is a membership query for "j" across the member
// filters; counting filters make revocation cheap when replicas migrate
// during reconfiguration.
//
// The array is tiny — the paper notes under 0.1 KB per MDS at N=100 — so it
// is always memory resident and cheap to multicast after changes.
type IDBFA struct {
	perMemberBits uint64
	hashes        uint32
	members       map[int]*bloom.CountingFilter
}

// DefaultIDBFABits is the size of one member's ID filter. Origin IDs are a
// few bytes, the population per filter is θ ≈ N/M, so 512 bits keeps the
// false-positive rate negligible at the scales the paper evaluates (N ≤ 200).
const DefaultIDBFABits = 512

// DefaultIDBFAHashes is the hash count for member ID filters.
const DefaultIDBFAHashes = 4

// NewIDBFA returns an empty IDBFA with the given per-member filter geometry.
func NewIDBFA(perMemberBits uint64, hashes uint32) (*IDBFA, error) {
	if perMemberBits == 0 || hashes == 0 {
		return nil, fmt.Errorf("%w: bits=%d hashes=%d",
			bloom.ErrInvalidGeometry, perMemberBits, hashes)
	}
	return &IDBFA{
		perMemberBits: perMemberBits,
		hashes:        hashes,
		members:       make(map[int]*bloom.CountingFilter),
	}, nil
}

// NewDefaultIDBFA returns an IDBFA with the default geometry.
func NewDefaultIDBFA() *IDBFA {
	a, err := NewIDBFA(DefaultIDBFABits, DefaultIDBFAHashes)
	if err != nil {
		panic(fmt.Sprintf("bloomarray: default IDBFA geometry invalid: %v", err))
	}
	return a
}

// originKey is the membership key for an origin MDS ID.
func originKey(originID int) []byte {
	return strconv.AppendInt(nil, int64(originID), 10)
}

// AddMember registers a group member with an empty ID filter. Adding an
// existing member is an error: it would silently discard grant history.
func (a *IDBFA) AddMember(memberID int) error {
	if _, ok := a.members[memberID]; ok {
		return fmt.Errorf("bloomarray: member %d already in IDBFA", memberID)
	}
	cf, err := bloom.NewCounting(a.perMemberBits, a.hashes)
	if err != nil {
		return fmt.Errorf("bloomarray: creating ID filter: %w", err)
	}
	a.members[memberID] = cf
	return nil
}

// RemoveMember drops a member and its filter, used on MDS departure.
func (a *IDBFA) RemoveMember(memberID int) {
	delete(a.members, memberID)
}

// HasMember reports whether the member is registered.
func (a *IDBFA) HasMember(memberID int) bool {
	_, ok := a.members[memberID]
	return ok
}

// Members returns all registered member IDs in ascending order.
func (a *IDBFA) Members() []int {
	ids := make([]int, 0, len(a.members))
	for id := range a.members {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// Grant records that member now stores the replica originating at origin.
func (a *IDBFA) Grant(memberID, originID int) error {
	cf, ok := a.members[memberID]
	if !ok {
		return fmt.Errorf("bloomarray: grant to unknown member %d", memberID)
	}
	cf.Add(originKey(originID))
	return nil
}

// Revoke records that member no longer stores origin's replica.
func (a *IDBFA) Revoke(memberID, originID int) error {
	cf, ok := a.members[memberID]
	if !ok {
		return fmt.Errorf("bloomarray: revoke from unknown member %d", memberID)
	}
	cf.Remove(originKey(originID))
	return nil
}

// Locate returns the members that may hold origin's replica, ascending. A
// single entry is the normal case; multiple entries are the light false-
// positive penalty the paper describes — the falsely identified member
// simply drops the request after failing to find the replica.
func (a *IDBFA) Locate(originID int) []int {
	var scratch [originKeyBuf]byte
	d := bloom.NewDigest(strconv.AppendInt(scratch[:0], int64(originID), 10))
	return a.LocateDigest(&d, nil)
}

// originKeyBuf comfortably holds the decimal digits of any int origin ID.
const originKeyBuf = 24

// LocateDigest is Locate for a pre-hashed origin key, appending hits into
// buf (which may be nil): the member filters all share one geometry, so the
// digest's probe positions are derived once and each member costs k counter
// loads. With a reused buffer the probe does not allocate.
func (a *IDBFA) LocateDigest(d *bloom.Digest, buf []int) []int {
	hits := buf[:0]
	for id, cf := range a.members {
		if cf.ContainsDigest(d) {
			hits = append(hits, id)
		}
	}
	slices.Sort(hits)
	return hits
}

// SizeBytes returns the total footprint of all member filters.
func (a *IDBFA) SizeBytes() uint64 {
	var total uint64
	for _, cf := range a.members {
		total += cf.SizeBytes()
	}
	return total
}

// Clone returns a deep copy, used when a new member receives the group's
// current IDBFA before the updated array is multicast.
func (a *IDBFA) Clone() *IDBFA {
	c := &IDBFA{
		perMemberBits: a.perMemberBits,
		hashes:        a.hashes,
		members:       make(map[int]*bloom.CountingFilter, len(a.members)),
	}
	for id, cf := range a.members {
		c.members[id] = cf.Clone()
	}
	return c
}
