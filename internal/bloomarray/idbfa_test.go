package bloomarray

import (
	"testing"
	"testing/quick"
)

func TestIDBFAValidation(t *testing.T) {
	if _, err := NewIDBFA(0, 4); err == nil {
		t.Error("zero bits accepted")
	}
	if _, err := NewIDBFA(64, 0); err == nil {
		t.Error("zero hashes accepted")
	}
}

func TestIDBFAMembers(t *testing.T) {
	a := NewDefaultIDBFA()
	if err := a.AddMember(2); err != nil {
		t.Fatal(err)
	}
	if err := a.AddMember(1); err != nil {
		t.Fatal(err)
	}
	if err := a.AddMember(2); err == nil {
		t.Error("duplicate member accepted")
	}
	if !a.HasMember(1) || a.HasMember(9) {
		t.Error("HasMember inconsistent")
	}
	ids := a.Members()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("Members = %v, want [1 2]", ids)
	}
	a.RemoveMember(1)
	if a.HasMember(1) {
		t.Error("RemoveMember failed")
	}
}

func TestIDBFAGrantLocateRevoke(t *testing.T) {
	a := NewDefaultIDBFA()
	for _, m := range []int{10, 11, 12} {
		if err := a.AddMember(m); err != nil {
			t.Fatal(err)
		}
	}
	// Member 11 holds replica of origin 77.
	if err := a.Grant(11, 77); err != nil {
		t.Fatal(err)
	}
	holders := a.Locate(77)
	if len(holders) != 1 || holders[0] != 11 {
		t.Fatalf("Locate(77) = %v, want [11]", holders)
	}
	// Migrate: revoke on 11, grant on 12.
	if err := a.Revoke(11, 77); err != nil {
		t.Fatal(err)
	}
	if err := a.Grant(12, 77); err != nil {
		t.Fatal(err)
	}
	holders = a.Locate(77)
	if len(holders) != 1 || holders[0] != 12 {
		t.Fatalf("Locate(77) after migration = %v, want [12]", holders)
	}
}

func TestIDBFAUnknownMemberErrors(t *testing.T) {
	a := NewDefaultIDBFA()
	if err := a.Grant(1, 5); err == nil {
		t.Error("grant to unknown member succeeded")
	}
	if err := a.Revoke(1, 5); err == nil {
		t.Error("revoke from unknown member succeeded")
	}
}

func TestIDBFALocateEmpty(t *testing.T) {
	a := NewDefaultIDBFA()
	if err := a.AddMember(1); err != nil {
		t.Fatal(err)
	}
	if hits := a.Locate(42); len(hits) != 0 {
		t.Errorf("Locate on empty filters = %v, want none", hits)
	}
}

func TestIDBFACloneIndependent(t *testing.T) {
	a := NewDefaultIDBFA()
	if err := a.AddMember(1); err != nil {
		t.Fatal(err)
	}
	if err := a.Grant(1, 9); err != nil {
		t.Fatal(err)
	}
	c := a.Clone()
	if err := c.Revoke(1, 9); err != nil {
		t.Fatal(err)
	}
	if len(a.Locate(9)) != 1 {
		t.Error("revoke on clone affected original")
	}
	if len(c.Locate(9)) != 0 {
		t.Error("clone did not apply revoke")
	}
}

func TestIDBFAMigrationProperty(t *testing.T) {
	// Property: after any sequence of grant/migrate operations, each origin
	// is located at exactly the member that last received it.
	err := quick.Check(func(moves []uint8) bool {
		a := NewDefaultIDBFA()
		members := []int{0, 1, 2, 3}
		for _, m := range members {
			if err := a.AddMember(m); err != nil {
				return false
			}
		}
		const origin = 500
		cur := 0
		if err := a.Grant(cur, origin); err != nil {
			return false
		}
		for _, mv := range moves {
			next := int(mv) % len(members)
			if next == cur {
				continue
			}
			if err := a.Revoke(cur, origin); err != nil {
				return false
			}
			if err := a.Grant(next, origin); err != nil {
				return false
			}
			cur = next
		}
		holders := a.Locate(origin)
		return len(holders) == 1 && holders[0] == cur
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Errorf("migration property violated: %v", err)
	}
}

func TestIDBFASizeBytes(t *testing.T) {
	a := NewDefaultIDBFA()
	if a.SizeBytes() != 0 {
		t.Error("empty IDBFA non-zero size")
	}
	if err := a.AddMember(1); err != nil {
		t.Fatal(err)
	}
	if a.SizeBytes() != DefaultIDBFABits {
		t.Errorf("SizeBytes = %d, want %d", a.SizeBytes(), DefaultIDBFABits)
	}
	// Paper's claim: at N=100 the IDBFA is under 0.1 KB per member filter —
	// with default geometry a whole 15-member group stays under 8 KB.
	for i := 2; i <= 15; i++ {
		if err := a.AddMember(i); err != nil {
			t.Fatal(err)
		}
	}
	if a.SizeBytes() > 8*1024 {
		t.Errorf("15-member IDBFA = %d bytes, want small", a.SizeBytes())
	}
}
