// Package bloomarray builds the three array structures G-HBA layers on top
// of plain Bloom filters:
//
//   - Array: an ordered set of (MDS id, filter) entries queried with the
//     paper's unique-hit semantics — an answer counts only when exactly one
//     filter responds positively; zero or multiple hits escalate the lookup
//     to the next level of the hierarchy.
//   - LRUArray (lru.go): the L1 structure capturing temporal locality with
//     per-MDS aging filters.
//   - IDBFA (idbfa.go): the counting-filter array each MDS keeps to locate
//     which group member currently stores which Bloom-filter replica.
package bloomarray

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ghba/internal/bloom"
)

// Result is the outcome of querying an array: the IDs of all filters that
// answered positively, in ascending order.
//
// Hits may alias a caller-provided scratch buffer (see QueryDigest); it is
// valid until that buffer's next reuse.
type Result struct {
	// Hits lists the MDS IDs whose filters responded positively.
	Hits []int
}

// Unique returns the single hit and true when exactly one filter responded,
// which is the only case the G-HBA query path treats as an answer. On a miss
// or a multi-hit it returns -1 — never a valid MDS ID — so a caller that
// drops the bool cannot silently route to MDS 0.
func (r Result) Unique() (int, bool) {
	if len(r.Hits) == 1 {
		return r.Hits[0], true
	}
	return -1, false
}

// InsertSorted inserts v into ascending xs unless present, preserving order
// and uniqueness — the shared primitive for folding an MDS ID into a sorted
// hit list (mds.QueryL2's own-ID insert, core's L3 hit union) without
// re-sorting.
//
//ghbavet:hotpath
func InsertSorted(xs []int, v int) []int {
	for i, x := range xs {
		if x == v {
			return xs
		}
		if x > v {
			xs = append(xs, 0)
			copy(xs[i+1:], xs[i:])
			xs[i] = v
			return xs
		}
	}
	return append(xs, v)
}

// Miss reports whether no filter responded.
func (r Result) Miss() bool { return len(r.Hits) == 0 }

// Multiple reports whether more than one filter responded, which forces the
// same escalation as a miss (the array cannot disambiguate).
func (r Result) Multiple() bool { return len(r.Hits) > 1 }

// entry pairs a replica with the ID of the MDS whose file set it summarizes.
type entry struct {
	id int
	f  *bloom.Filter
}

// Array is a collection of Bloom-filter replicas keyed by the ID of the MDS
// whose file set each filter summarizes. It is the representation of the L2
// segment array and, in the HBA baseline, of the full global replica array.
//
// Storage is an immutable slice sorted by MDS ID, published through an
// atomic pointer (copy-on-write): queries load the current snapshot with no
// lock acquisition and scan it — a cache-friendly linear pass that yields
// hits already in ascending order (no per-query sort, no map iteration),
// which is what lets QueryDigest run allocation- and lock-free. Writers
// (replica refreshes from coalescing shippers, reconfiguration moves)
// serialize on an internal mutex, build a new slice, and swap it in; a
// reader that loaded the previous snapshot finishes against it, which is
// indistinguishable from the reader having run just before the write.
//
// Filters handed to Put are stored by reference and must not be mutated
// afterwards; refreshes replace the pointer wholesale. That immutability is
// what makes the published snapshot safe to probe without synchronization.
type Array struct {
	mu      sync.Mutex // serializes writers; readers never take it
	entries atomic.Pointer[[]entry]
}

// NewArray returns an empty array.
func NewArray() *Array {
	a := &Array{}
	a.entries.Store(&[]entry{})
	return a
}

// snapshot returns the current published entry slice. The slice is immutable;
// callers may scan it freely but must not modify it.
func (a *Array) snapshot() []entry {
	return *a.entries.Load()
}

// search returns the position of mdsID in the sorted entry slice and whether
// it is present.
func search(entries []entry, mdsID int) (int, bool) {
	i := sort.Search(len(entries), func(i int) bool {
		return entries[i].id >= mdsID
	})
	return i, i < len(entries) && entries[i].id == mdsID
}

// insertEntry returns a fresh sorted slice equal to entries with the replica
// for mdsID installed or replaced.
func insertEntry(entries []entry, mdsID int, f *bloom.Filter) []entry {
	i, ok := search(entries, mdsID)
	if ok {
		out := make([]entry, len(entries))
		copy(out, entries)
		out[i].f = f
		return out
	}
	out := make([]entry, 0, len(entries)+1)
	out = append(out, entries[:i]...)
	out = append(out, entry{id: mdsID, f: f})
	return append(out, entries[i:]...)
}

// Put installs or replaces the replica for the given MDS ID.
func (a *Array) Put(mdsID int, f *bloom.Filter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	next := insertEntry(a.snapshot(), mdsID, f)
	a.entries.Store(&next)
}

// Get returns the replica for mdsID, or nil if absent.
func (a *Array) Get(mdsID int) *bloom.Filter {
	entries := a.snapshot()
	if i, ok := search(entries, mdsID); ok {
		return entries[i].f
	}
	return nil
}

// Remove deletes the replica for mdsID, returning it (nil if absent).
func (a *Array) Remove(mdsID int) *bloom.Filter {
	a.mu.Lock()
	defer a.mu.Unlock()
	entries := a.snapshot()
	i, ok := search(entries, mdsID)
	if !ok {
		return nil
	}
	f := entries[i].f
	next := make([]entry, 0, len(entries)-1)
	next = append(next, entries[:i]...)
	next = append(next, entries[i+1:]...)
	a.entries.Store(&next)
	return f
}

// Has reports whether the array holds a replica for mdsID.
func (a *Array) Has(mdsID int) bool {
	_, ok := search(a.snapshot(), mdsID)
	return ok
}

// Len returns the number of replicas held.
func (a *Array) Len() int {
	return len(a.snapshot())
}

// IDs returns the MDS IDs of all held replicas in ascending order.
func (a *Array) IDs() []int {
	entries := a.snapshot()
	ids := make([]int, len(entries))
	for i, e := range entries {
		ids[i] = e.id
	}
	return ids
}

// Query checks key against every filter and returns all positive responders.
func (a *Array) Query(key []byte) Result {
	d := bloom.NewDigest(key)
	return a.QueryDigest(&d, nil)
}

// QueryString checks a string key against every filter.
func (a *Array) QueryString(key string) Result {
	d := bloom.NewDigestString(key)
	return a.QueryDigest(&d, nil)
}

// QueryDigest checks a pre-hashed key against every filter: one atomic
// snapshot load, then a scan over the sorted entries at k word loads per
// filter (one cache line per filter for blocked layouts), hits appended into
// buf (which may be nil). Hits come out in ascending ID order by
// construction. Passing a reused buffer makes the query allocation-free; no
// lock is taken at any point.
//
//ghbavet:hotpath
func (a *Array) QueryDigest(d *bloom.Digest, buf []int) Result {
	entries := a.snapshot()
	hits := buf[:0]
	for i := range entries {
		if entries[i].f.ContainsDigest(d) {
			hits = append(hits, entries[i].id)
		}
	}
	return Result{Hits: hits}
}

// SizeBytes returns the total in-memory footprint of all held replicas; the
// memory model charges this against the per-MDS RAM budget.
func (a *Array) SizeBytes() uint64 {
	var total uint64
	for _, e := range a.snapshot() {
		total += e.f.SizeBytes()
	}
	return total
}

// Clone returns a deep copy of the array (each filter is cloned).
func (a *Array) Clone() *Array {
	entries := a.snapshot()
	next := make([]entry, len(entries))
	for i, e := range entries {
		next[i] = entry{id: e.id, f: e.f.Clone()}
	}
	c := &Array{}
	c.entries.Store(&next)
	return c
}

// PopRandom removes and returns count replicas in deterministic ascending-ID
// order, used when a group member offloads replicas to a newly joined MDS.
// The paper offloads "randomly"; a deterministic order preserves the same
// balance property while keeping simulations reproducible. It returns fewer
// than count entries when the array is smaller.
func (a *Array) PopRandom(count int) map[int]*bloom.Filter {
	a.mu.Lock()
	defer a.mu.Unlock()
	entries := a.snapshot()
	if count < 0 {
		count = 0
	}
	if count > len(entries) {
		count = len(entries)
	}
	out := make(map[int]*bloom.Filter, count)
	for _, e := range entries[:count] {
		out[e.id] = e.f
	}
	next := make([]entry, len(entries)-count)
	copy(next, entries[count:])
	a.entries.Store(&next)
	return out
}

// MergeFrom moves every replica of src into a, failing on duplicate IDs so
// that the "each replica resides exclusively on one MDS" invariant is caught
// at the point of violation. Merging only happens during reconfiguration,
// which holds the cluster-exclusive lock, so the fixed a-then-src lock order
// cannot deadlock against a concurrent merge of the reverse pair.
func (a *Array) MergeFrom(src *Array) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	src.mu.Lock()
	defer src.mu.Unlock()
	merged := a.snapshot()
	srcEntries := src.snapshot()
	for _, e := range srcEntries {
		if _, ok := search(merged, e.id); ok {
			return fmt.Errorf("bloomarray: duplicate replica for MDS %d during merge", e.id)
		}
	}
	for _, e := range srcEntries {
		merged = insertEntry(merged, e.id, e.f)
	}
	a.entries.Store(&merged)
	src.entries.Store(&[]entry{})
	return nil
}
