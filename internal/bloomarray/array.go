// Package bloomarray builds the three array structures G-HBA layers on top
// of plain Bloom filters:
//
//   - Array: an ordered set of (MDS id, filter) entries queried with the
//     paper's unique-hit semantics — an answer counts only when exactly one
//     filter responds positively; zero or multiple hits escalate the lookup
//     to the next level of the hierarchy.
//   - LRUArray (lru.go): the L1 structure capturing temporal locality with
//     per-MDS aging filters.
//   - IDBFA (idbfa.go): the counting-filter array each MDS keeps to locate
//     which group member currently stores which Bloom-filter replica.
package bloomarray

import (
	"fmt"
	"sort"
	"sync"

	"ghba/internal/bloom"
)

// Result is the outcome of querying an array: the IDs of all filters that
// answered positively, in ascending order.
//
// Hits may alias a caller-provided scratch buffer (see QueryDigest); it is
// valid until that buffer's next reuse.
type Result struct {
	// Hits lists the MDS IDs whose filters responded positively.
	Hits []int
}

// Unique returns the single hit and true when exactly one filter responded,
// which is the only case the G-HBA query path treats as an answer. On a miss
// or a multi-hit it returns -1 — never a valid MDS ID — so a caller that
// drops the bool cannot silently route to MDS 0.
func (r Result) Unique() (int, bool) {
	if len(r.Hits) == 1 {
		return r.Hits[0], true
	}
	return -1, false
}

// InsertSorted inserts v into ascending xs unless present, preserving order
// and uniqueness — the shared primitive for folding an MDS ID into a sorted
// hit list (mds.QueryL2's own-ID insert, core's L3 hit union) without
// re-sorting.
func InsertSorted(xs []int, v int) []int {
	for i, x := range xs {
		if x == v {
			return xs
		}
		if x > v {
			xs = append(xs, 0)
			copy(xs[i+1:], xs[i:])
			xs[i] = v
			return xs
		}
	}
	return append(xs, v)
}

// Miss reports whether no filter responded.
func (r Result) Miss() bool { return len(r.Hits) == 0 }

// Multiple reports whether more than one filter responded, which forces the
// same escalation as a miss (the array cannot disambiguate).
func (r Result) Multiple() bool { return len(r.Hits) > 1 }

// entry pairs a replica with the ID of the MDS whose file set it summarizes.
type entry struct {
	id int
	f  *bloom.Filter
}

// Array is a collection of Bloom-filter replicas keyed by the ID of the MDS
// whose file set each filter summarizes. It is the representation of the L2
// segment array and, in the HBA baseline, of the full global replica array.
//
// Storage is a slice sorted by MDS ID: queries are a cache-friendly linear
// scan that yields hits already in ascending order (no per-query sort, no
// map iteration), which is what lets QueryDigest run allocation-free.
//
// Array is safe for concurrent use: the sharded write path refreshes
// replicas (Put) from coalescing shippers while lookup workers probe
// (QueryDigest) the same array, so every method takes the internal lock.
// Filters handed to Put are stored by reference and must not be mutated
// afterwards; refreshes replace the pointer wholesale.
type Array struct {
	mu      sync.RWMutex
	entries []entry
}

// NewArray returns an empty array.
func NewArray() *Array {
	return &Array{}
}

// search returns the position of mdsID in the sorted entry slice and whether
// it is present. Requires a.mu (read suffices).
func (a *Array) search(mdsID int) (int, bool) {
	i := sort.Search(len(a.entries), func(i int) bool {
		return a.entries[i].id >= mdsID
	})
	return i, i < len(a.entries) && a.entries[i].id == mdsID
}

// putLocked installs or replaces the replica for mdsID. Requires a.mu.
func (a *Array) putLocked(mdsID int, f *bloom.Filter) {
	i, ok := a.search(mdsID)
	if ok {
		a.entries[i].f = f
		return
	}
	a.entries = append(a.entries, entry{})
	copy(a.entries[i+1:], a.entries[i:])
	a.entries[i] = entry{id: mdsID, f: f}
}

// Put installs or replaces the replica for the given MDS ID.
func (a *Array) Put(mdsID int, f *bloom.Filter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.putLocked(mdsID, f)
}

// Get returns the replica for mdsID, or nil if absent.
func (a *Array) Get(mdsID int) *bloom.Filter {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if i, ok := a.search(mdsID); ok {
		return a.entries[i].f
	}
	return nil
}

// Remove deletes the replica for mdsID, returning it (nil if absent).
func (a *Array) Remove(mdsID int) *bloom.Filter {
	a.mu.Lock()
	defer a.mu.Unlock()
	i, ok := a.search(mdsID)
	if !ok {
		return nil
	}
	f := a.entries[i].f
	a.entries = append(a.entries[:i], a.entries[i+1:]...)
	return f
}

// Has reports whether the array holds a replica for mdsID.
func (a *Array) Has(mdsID int) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	_, ok := a.search(mdsID)
	return ok
}

// Len returns the number of replicas held.
func (a *Array) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.entries)
}

// IDs returns the MDS IDs of all held replicas in ascending order.
func (a *Array) IDs() []int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	ids := make([]int, len(a.entries))
	for i, e := range a.entries {
		ids[i] = e.id
	}
	return ids
}

// Query checks key against every filter and returns all positive responders.
func (a *Array) Query(key []byte) Result {
	d := bloom.NewDigest(key)
	return a.QueryDigest(&d, nil)
}

// QueryString checks a string key against every filter.
func (a *Array) QueryString(key string) Result {
	d := bloom.NewDigestString(key)
	return a.QueryDigest(&d, nil)
}

// QueryDigest checks a pre-hashed key against every filter: one scan over
// the sorted entries, k word loads per filter, hits appended into buf (which
// may be nil). Hits come out in ascending ID order by construction. Passing
// a reused buffer makes the query allocation-free.
func (a *Array) QueryDigest(d *bloom.Digest, buf []int) Result {
	a.mu.RLock()
	defer a.mu.RUnlock()
	hits := buf[:0]
	for i := range a.entries {
		if a.entries[i].f.ContainsDigest(d) {
			hits = append(hits, a.entries[i].id)
		}
	}
	return Result{Hits: hits}
}

// SizeBytes returns the total in-memory footprint of all held replicas; the
// memory model charges this against the per-MDS RAM budget.
func (a *Array) SizeBytes() uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var total uint64
	for _, e := range a.entries {
		total += e.f.SizeBytes()
	}
	return total
}

// Clone returns a deep copy of the array (each filter is cloned).
func (a *Array) Clone() *Array {
	a.mu.RLock()
	defer a.mu.RUnlock()
	c := &Array{entries: make([]entry, len(a.entries))}
	for i, e := range a.entries {
		c.entries[i] = entry{id: e.id, f: e.f.Clone()}
	}
	return c
}

// PopRandom removes and returns count replicas in deterministic ascending-ID
// order, used when a group member offloads replicas to a newly joined MDS.
// The paper offloads "randomly"; a deterministic order preserves the same
// balance property while keeping simulations reproducible. It returns fewer
// than count entries when the array is smaller.
func (a *Array) PopRandom(count int) map[int]*bloom.Filter {
	a.mu.Lock()
	defer a.mu.Unlock()
	if count < 0 {
		count = 0
	}
	if count > len(a.entries) {
		count = len(a.entries)
	}
	out := make(map[int]*bloom.Filter, count)
	for _, e := range a.entries[:count] {
		out[e.id] = e.f
	}
	a.entries = a.entries[:copy(a.entries, a.entries[count:])]
	return out
}

// MergeFrom moves every replica of src into a, failing on duplicate IDs so
// that the "each replica resides exclusively on one MDS" invariant is caught
// at the point of violation. Merging only happens during reconfiguration,
// which holds the cluster-exclusive lock, so the fixed a-then-src lock order
// cannot deadlock against a concurrent merge of the reverse pair.
func (a *Array) MergeFrom(src *Array) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	src.mu.Lock()
	defer src.mu.Unlock()
	for _, e := range src.entries {
		if _, ok := a.search(e.id); ok {
			return fmt.Errorf("bloomarray: duplicate replica for MDS %d during merge", e.id)
		}
	}
	for _, e := range src.entries {
		a.putLocked(e.id, e.f)
	}
	src.entries = src.entries[:0]
	return nil
}
