// Package bloomarray builds the three array structures G-HBA layers on top
// of plain Bloom filters:
//
//   - Array: an ordered set of (MDS id, filter) entries queried with the
//     paper's unique-hit semantics — an answer counts only when exactly one
//     filter responds positively; zero or multiple hits escalate the lookup
//     to the next level of the hierarchy.
//   - LRUArray (lru.go): the L1 structure capturing temporal locality with
//     per-MDS aging filters.
//   - IDBFA (idbfa.go): the counting-filter array each MDS keeps to locate
//     which group member currently stores which Bloom-filter replica.
package bloomarray

import (
	"fmt"
	"sort"

	"ghba/internal/bloom"
)

// Result is the outcome of querying an array: the IDs of all filters that
// answered positively, in ascending order.
type Result struct {
	// Hits lists the MDS IDs whose filters responded positively.
	Hits []int
}

// Unique returns the single hit and true when exactly one filter responded,
// which is the only case the G-HBA query path treats as an answer.
func (r Result) Unique() (int, bool) {
	if len(r.Hits) == 1 {
		return r.Hits[0], true
	}
	return 0, false
}

// Miss reports whether no filter responded.
func (r Result) Miss() bool { return len(r.Hits) == 0 }

// Multiple reports whether more than one filter responded, which forces the
// same escalation as a miss (the array cannot disambiguate).
func (r Result) Multiple() bool { return len(r.Hits) > 1 }

// Array is a collection of Bloom-filter replicas keyed by the ID of the MDS
// whose file set each filter summarizes. It is the representation of the L2
// segment array and, in the HBA baseline, of the full global replica array.
//
// Array is not safe for concurrent use; the owning MDS serializes access.
type Array struct {
	filters map[int]*bloom.Filter
}

// NewArray returns an empty array.
func NewArray() *Array {
	return &Array{filters: make(map[int]*bloom.Filter)}
}

// Put installs or replaces the replica for the given MDS ID.
func (a *Array) Put(mdsID int, f *bloom.Filter) {
	a.filters[mdsID] = f
}

// Get returns the replica for mdsID, or nil if absent.
func (a *Array) Get(mdsID int) *bloom.Filter {
	return a.filters[mdsID]
}

// Remove deletes the replica for mdsID, returning it (nil if absent).
func (a *Array) Remove(mdsID int) *bloom.Filter {
	f := a.filters[mdsID]
	delete(a.filters, mdsID)
	return f
}

// Has reports whether the array holds a replica for mdsID.
func (a *Array) Has(mdsID int) bool {
	_, ok := a.filters[mdsID]
	return ok
}

// Len returns the number of replicas held.
func (a *Array) Len() int { return len(a.filters) }

// IDs returns the MDS IDs of all held replicas in ascending order.
func (a *Array) IDs() []int {
	ids := make([]int, 0, len(a.filters))
	for id := range a.filters {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Query checks key against every filter and returns all positive responders.
func (a *Array) Query(key []byte) Result {
	var hits []int
	for id, f := range a.filters {
		if f.Contains(key) {
			hits = append(hits, id)
		}
	}
	sort.Ints(hits)
	return Result{Hits: hits}
}

// QueryString checks a string key against every filter.
func (a *Array) QueryString(key string) Result { return a.Query([]byte(key)) }

// SizeBytes returns the total in-memory footprint of all held replicas; the
// memory model charges this against the per-MDS RAM budget.
func (a *Array) SizeBytes() uint64 {
	var total uint64
	for _, f := range a.filters {
		total += f.SizeBytes()
	}
	return total
}

// Clone returns a deep copy of the array (each filter is cloned).
func (a *Array) Clone() *Array {
	c := NewArray()
	for id, f := range a.filters {
		c.filters[id] = f.Clone()
	}
	return c
}

// PopRandom removes and returns count replicas in deterministic ascending-ID
// order, used when a group member offloads replicas to a newly joined MDS.
// The paper offloads "randomly"; a deterministic order preserves the same
// balance property while keeping simulations reproducible. It returns fewer
// than count entries when the array is smaller.
func (a *Array) PopRandom(count int) map[int]*bloom.Filter {
	out := make(map[int]*bloom.Filter, count)
	for _, id := range a.IDs() {
		if len(out) >= count {
			break
		}
		out[id] = a.Remove(id)
	}
	return out
}

// MergeFrom moves every replica of src into a, failing on duplicate IDs so
// that the "each replica resides exclusively on one MDS" invariant is caught
// at the point of violation.
func (a *Array) MergeFrom(src *Array) error {
	for _, id := range src.IDs() {
		if a.Has(id) {
			return fmt.Errorf("bloomarray: duplicate replica for MDS %d during merge", id)
		}
		a.Put(id, src.Remove(id))
	}
	return nil
}
