package bloomarray

import (
	"strconv"
	"testing"

	"ghba/internal/bloom"
)

func filterWith(t *testing.T, keys ...string) *bloom.Filter {
	t.Helper()
	f, err := bloom.NewForCapacity(1024, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		f.AddString(k)
	}
	return f
}

func TestResultUnique(t *testing.T) {
	// On miss and multi-hit the ID must be -1, never a valid MDS ID, so a
	// caller that drops the bool cannot silently route to MDS 0.
	if id, ok := (Result{}).Unique(); ok || id != -1 {
		t.Errorf("empty result Unique = (%d, %v), want (-1, false)", id, ok)
	}
	id, ok := (Result{Hits: []int{7}}).Unique()
	if !ok || id != 7 {
		t.Errorf("Unique = (%d, %v), want (7, true)", id, ok)
	}
	if id, ok := (Result{Hits: []int{1, 2}}).Unique(); ok || id != -1 {
		t.Errorf("two-hit result Unique = (%d, %v), want (-1, false)", id, ok)
	}
}

func TestInsertSorted(t *testing.T) {
	cases := []struct {
		in   []int
		v    int
		want []int
	}{
		{nil, 5, []int{5}},
		{[]int{1, 3}, 2, []int{1, 2, 3}},
		{[]int{1, 3}, 0, []int{0, 1, 3}},
		{[]int{1, 3}, 4, []int{1, 3, 4}},
		{[]int{1, 3}, 3, []int{1, 3}}, // dedup
	}
	for _, c := range cases {
		got := InsertSorted(append([]int(nil), c.in...), c.v)
		if len(got) != len(c.want) {
			t.Errorf("InsertSorted(%v, %d) = %v, want %v", c.in, c.v, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("InsertSorted(%v, %d) = %v, want %v", c.in, c.v, got, c.want)
				break
			}
		}
	}
}

func TestResultMissMultiple(t *testing.T) {
	if !(Result{}).Miss() {
		t.Error("empty result not a miss")
	}
	if (Result{Hits: []int{1}}).Miss() || (Result{Hits: []int{1}}).Multiple() {
		t.Error("single hit misclassified")
	}
	if !(Result{Hits: []int{1, 2}}).Multiple() {
		t.Error("two hits not multiple")
	}
}

func TestArrayPutGetRemove(t *testing.T) {
	a := NewArray()
	f := filterWith(t, "x")
	a.Put(3, f)
	if !a.Has(3) || a.Get(3) != f || a.Len() != 1 {
		t.Fatal("Put/Get/Has inconsistent")
	}
	if got := a.Remove(3); got != f {
		t.Error("Remove returned wrong filter")
	}
	if a.Has(3) || a.Len() != 0 {
		t.Error("Remove did not delete entry")
	}
	if a.Remove(99) != nil {
		t.Error("Remove of absent ID returned non-nil")
	}
}

func TestArrayQueryUniqueHit(t *testing.T) {
	a := NewArray()
	a.Put(1, filterWith(t, "/d/alpha"))
	a.Put(2, filterWith(t, "/d/beta"))
	a.Put(3, filterWith(t, "/d/gamma"))
	r := a.QueryString("/d/beta")
	id, ok := r.Unique()
	if !ok || id != 2 {
		t.Errorf("Query(/d/beta) = %v, want unique hit on 2", r.Hits)
	}
	if !a.QueryString("/d/nothere").Miss() {
		t.Error("absent key did not miss")
	}
}

func TestArrayQueryMultipleHits(t *testing.T) {
	a := NewArray()
	a.Put(1, filterWith(t, "shared"))
	a.Put(2, filterWith(t, "shared"))
	r := a.QueryString("shared")
	if !r.Multiple() {
		t.Errorf("Query(shared) = %v, want multiple", r.Hits)
	}
	if len(r.Hits) != 2 || r.Hits[0] != 1 || r.Hits[1] != 2 {
		t.Errorf("hits = %v, want [1 2] ascending", r.Hits)
	}
}

func TestArrayIDsSorted(t *testing.T) {
	a := NewArray()
	for _, id := range []int{9, 2, 5, 1} {
		a.Put(id, filterWith(t))
	}
	ids := a.IDs()
	want := []int{1, 2, 5, 9}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
}

func TestArraySizeBytes(t *testing.T) {
	a := NewArray()
	if a.SizeBytes() != 0 {
		t.Error("empty array has non-zero size")
	}
	f := filterWith(t)
	a.Put(1, f)
	a.Put(2, filterWith(t))
	if a.SizeBytes() != 2*f.SizeBytes() {
		t.Errorf("SizeBytes = %d, want %d", a.SizeBytes(), 2*f.SizeBytes())
	}
}

func TestArrayCloneDeep(t *testing.T) {
	a := NewArray()
	a.Put(1, filterWith(t, "orig"))
	c := a.Clone()
	c.Get(1).AddString("mutant")
	if a.Get(1).ContainsString("mutant") && a.Get(1).Count() > 1 {
		t.Error("clone shares filter with original")
	}
}

func TestArrayPopRandom(t *testing.T) {
	a := NewArray()
	for i := 0; i < 10; i++ {
		a.Put(i, filterWith(t, strconv.Itoa(i)))
	}
	popped := a.PopRandom(4)
	if len(popped) != 4 {
		t.Fatalf("popped %d replicas, want 4", len(popped))
	}
	if a.Len() != 6 {
		t.Errorf("array left with %d replicas, want 6", a.Len())
	}
	for id := range popped {
		if a.Has(id) {
			t.Errorf("popped replica %d still present", id)
		}
	}
	// Popping more than available returns what exists.
	rest := a.PopRandom(100)
	if len(rest) != 6 || a.Len() != 0 {
		t.Errorf("PopRandom(100) returned %d, array has %d", len(rest), a.Len())
	}
}

func TestArrayMergeFrom(t *testing.T) {
	dst := NewArray()
	dst.Put(1, filterWith(t))
	src := NewArray()
	src.Put(2, filterWith(t))
	src.Put(3, filterWith(t))
	if err := dst.MergeFrom(src); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 3 || src.Len() != 0 {
		t.Errorf("after merge dst=%d src=%d, want 3, 0", dst.Len(), src.Len())
	}
}

func TestArrayMergeFromDuplicate(t *testing.T) {
	dst := NewArray()
	dst.Put(1, filterWith(t))
	src := NewArray()
	src.Put(1, filterWith(t))
	if err := dst.MergeFrom(src); err == nil {
		t.Error("merge with duplicate ID succeeded, want error")
	}
}
