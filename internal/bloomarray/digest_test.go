package bloomarray

import (
	"fmt"
	"math/rand"
	"slices"
	"strconv"
	"testing"

	"ghba/internal/bloom"
)

// TestArrayQueryDigestEquivalence is the array-level property test: for
// random replica sets and random keys, QueryDigest with a reused buffer must
// return exactly the hits Query does, in the same (ascending) order.
func TestArrayQueryDigestEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		a := NewArray()
		replicas := 1 + rng.Intn(24)
		var paths []string
		for r := 0; r < replicas; r++ {
			f, err := bloom.NewForCapacity(256, 16)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 50; j++ {
				p := fmt.Sprintf("/t%d/r%d/f%d", trial, r, j)
				f.AddString(p)
				paths = append(paths, p)
			}
			a.Put(rng.Intn(1000), f) // random, possibly colliding IDs
		}
		buf := make([]int, 0, 4)
		for i := 0; i < 400; i++ {
			p := paths[rng.Intn(len(paths))]
			if i%5 == 0 {
				p = "/absent/" + strconv.Itoa(i)
			}
			want := a.QueryString(p)
			d := bloom.NewDigestString(p)
			got := a.QueryDigest(&d, buf)
			buf = got.Hits
			if !slices.Equal(got.Hits, want.Hits) {
				t.Fatalf("trial %d path %s: QueryDigest=%v Query=%v", trial, p, got.Hits, want.Hits)
			}
			if !slices.IsSorted(got.Hits) {
				t.Fatalf("trial %d path %s: hits not ascending: %v", trial, p, got.Hits)
			}
		}
	}
}

// TestLRUQueryDigestEquivalence checks the LRU array the same way, across
// generation rotations driven through the digest-based Observe.
func TestLRUQueryDigestEquivalence(t *testing.T) {
	l, err := NewLRUArray(32, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	var paths []string
	for i := 0; i < 400; i++ {
		p := "/lru/f" + strconv.Itoa(i)
		paths = append(paths, p)
		d := bloom.NewDigestString(p)
		l.ObserveDigest(&d, rng.Intn(8))
	}
	buf := make([]int, 0, 4)
	for i := 0; i < 600; i++ {
		p := paths[rng.Intn(len(paths))]
		if i%4 == 0 {
			p = "/lru/absent" + strconv.Itoa(i)
		}
		want := l.QueryString(p)
		d := bloom.NewDigestString(p)
		got := l.QueryDigest(&d, buf)
		buf = got.Hits
		if !slices.Equal(got.Hits, want.Hits) {
			t.Fatalf("path %s: QueryDigest=%v Query=%v", p, got.Hits, want.Hits)
		}
	}
}

// TestObserveDigestMatchesObserve checks that the digest-based Observe path
// leaves the array in exactly the state the key-based path would: same hits
// for every key, same rotation points.
func TestObserveDigestMatchesObserve(t *testing.T) {
	byKey, err := NewLRUArray(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	byDigest, err := NewLRUArray(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		p := "/obs/f" + strconv.Itoa(rng.Intn(100))
		home := rng.Intn(5)
		byKey.ObserveString(p, home)
		d := bloom.NewDigestString(p)
		byDigest.ObserveDigest(&d, home)
	}
	for i := 0; i < 100; i++ {
		p := "/obs/f" + strconv.Itoa(i)
		a, b := byKey.QueryString(p), byDigest.QueryString(p)
		if !slices.Equal(a.Hits, b.Hits) {
			t.Fatalf("path %s: key-observed=%v digest-observed=%v", p, a.Hits, b.Hits)
		}
	}
}

// TestIDBFALocateDigestEquivalence checks the replica-location array.
func TestIDBFALocateDigestEquivalence(t *testing.T) {
	a := NewDefaultIDBFA()
	for m := 0; m < 7; m++ {
		if err := a.AddMember(m); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 60; i++ {
		if err := a.Grant(rng.Intn(7), rng.Intn(40)); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]int, 0, 4)
	for origin := 0; origin < 40; origin++ {
		want := a.Locate(origin)
		d := bloom.NewDigestString(strconv.Itoa(origin))
		got := a.LocateDigest(&d, buf)
		buf = got
		if !slices.Equal(got, want) {
			t.Fatalf("origin %d: LocateDigest=%v Locate=%v", origin, got, want)
		}
	}
}

// TestArrayQueryDigestZeroAlloc pins the allocation contract of the segment
// array probe: with a reused buffer, a 16-replica query allocates nothing.
func TestArrayQueryDigestZeroAlloc(t *testing.T) {
	a := NewArray()
	for r := 0; r < 16; r++ {
		f, err := bloom.NewForCapacity(1_024, 16)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 100; j++ {
			f.AddString(fmt.Sprintf("/za/r%d/f%d", r, j))
		}
		a.Put(r, f)
	}
	d := bloom.NewDigestString("/za/r7/f42")
	buf := make([]int, 0, 16)
	if allocs := testing.AllocsPerRun(1_000, func() {
		r := a.QueryDigest(&d, buf)
		buf = r.Hits
	}); allocs != 0 {
		t.Errorf("QueryDigest allocates %.1f objects/op, want 0", allocs)
	}
}

// TestArraySliceStorage exercises the sorted-slice mutations around the
// query path: interleaved Put/Remove keeps IDs ordered and queries exact.
func TestArraySliceStorage(t *testing.T) {
	a := NewArray()
	live := map[int]bool{}
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < 500; i++ {
		id := rng.Intn(64)
		if live[id] && rng.Intn(2) == 0 {
			if a.Remove(id) == nil {
				t.Fatalf("Remove(%d) of live replica returned nil", id)
			}
			delete(live, id)
			continue
		}
		f, err := bloom.NewForCapacity(64, 8)
		if err != nil {
			t.Fatal(err)
		}
		f.AddString("/slice/" + strconv.Itoa(id))
		a.Put(id, f)
		live[id] = true
	}
	if !slices.IsSorted(a.IDs()) {
		t.Fatalf("IDs not sorted: %v", a.IDs())
	}
	if a.Len() != len(live) {
		t.Fatalf("Len=%d, want %d", a.Len(), len(live))
	}
	for id := range live {
		r := a.QueryString("/slice/" + strconv.Itoa(id))
		if !slices.Contains(r.Hits, id) {
			t.Errorf("replica %d missing from its own query: %v", id, r.Hits)
		}
	}
}
