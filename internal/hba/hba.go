// Package hba implements the paper's main comparator: Hierarchical Bloom
// filter Arrays (Zhu, Jiang, Wang 2004). Every MDS stores an LRU Bloom
// filter array plus a *global* array holding one replica of every other
// MDS's filter, so any server can answer any lookup locally — at the cost of
// O(N) replicas per server. At exabyte scale that array outgrows RAM, every
// probe of the spilled fraction pays a disk access, and replica updates
// require a system-wide multicast. Those two costs are exactly what G-HBA's
// grouping removes, and what Figs 8–12 and 14–15 chart.
package hba

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ghba/internal/bloom"
	"ghba/internal/bloomarray"
	"ghba/internal/core"
	"ghba/internal/mds"
	"ghba/internal/memmodel"
	"ghba/internal/metrics"
	"ghba/internal/simnet"
	"ghba/internal/trace"
)

// lookupScratch mirrors core's hash-once scratch: the path digest plus a
// reusable hit buffer. HBA's global array makes this matter even more than
// in G-HBA — a probe touches N−1 replicas, each of which would otherwise
// re-hash the path.
type lookupScratch struct {
	digest bloom.Digest
	hits   []int
}

var scratchPool = sync.Pool{
	New: func() any { return &lookupScratch{hits: make([]int, 0, 16)} },
}

// Cluster is a simulated HBA deployment. It reuses core.Config (group
// parameters are ignored) and produces core.LookupResult values so the
// experiment drivers treat both schemes uniformly.
type Cluster struct {
	cfg core.Config

	nodes map[int]*mds.Node
	homes map[string]int

	// lru models the replicated LRU Bloom filter arrays of L1 (see the
	// corresponding field in core.Cluster): one shared array standing in
	// for promptly propagated per-home LRU replicas.
	lru *bloomarray.LRUArray

	mem *memmodel.Model
	rng *rand.Rand

	msgs    *simnet.Counter
	tally   metrics.LevelTally
	overall metrics.LatencyStats

	queue map[int]time.Duration

	nextMDSID int
}

// New builds an HBA cluster with cfg.NumMDS servers, each holding replicas
// of all others.
func New(cfg core.Config) (*Cluster, error) {
	if cfg.NumMDS < 1 {
		return nil, fmt.Errorf("hba: NumMDS must be ≥ 1, got %d", cfg.NumMDS)
	}
	if err := cfg.Cost.Validate(); err != nil {
		return nil, err
	}
	lru, err := bloomarray.NewLRUArrayLayout(cfg.Node.LRUCapacity, cfg.Node.LRUBitsPerFile, cfg.Node.Layout)
	if err != nil {
		return nil, fmt.Errorf("hba: sizing LRU array: %w", err)
	}
	c := &Cluster{
		cfg:   cfg,
		nodes: make(map[int]*mds.Node),
		homes: make(map[string]int),
		lru:   lru,
		mem:   memModelFor(cfg),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		msgs:  simnet.NewCounter(),
		queue: make(map[int]time.Duration),
	}
	for i := 0; i < cfg.NumMDS; i++ {
		node, err := mds.NewNode(i, cfg.Node)
		if err != nil {
			return nil, fmt.Errorf("hba: creating MDS %d: %w", i, err)
		}
		c.nodes[i] = node
	}
	c.nextMDSID = cfg.NumMDS
	c.syncAll()
	return c, nil
}

func memModelFor(cfg core.Config) *memmodel.Model {
	if cfg.MemoryBudgetBytes == 0 {
		return memmodel.New(^uint64(0) >> 1)
	}
	return memmodel.New(cfg.MemoryBudgetBytes)
}

// syncAll installs a fresh replica of every MDS on every other MDS.
func (c *Cluster) syncAll() {
	for _, origin := range c.MDSIDs() {
		snap := c.nodes[origin].Ship()
		for _, id := range c.MDSIDs() {
			if id == origin {
				continue
			}
			c.nodes[id].InstallReplica(origin, snap.Clone())
		}
	}
}

// Name identifies the scheme in experiment output.
func (c *Cluster) Name() string { return "HBA" }

// NumMDS returns the number of servers.
func (c *Cluster) NumMDS() int { return len(c.nodes) }

// MDSIDs returns server IDs in ascending order.
func (c *Cluster) MDSIDs() []int {
	ids := make([]int, 0, len(c.nodes))
	for id := range c.nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Node returns one server, or nil.
func (c *Cluster) Node(id int) *mds.Node { return c.nodes[id] }

// Messages exposes the message counter.
func (c *Cluster) Messages() *simnet.Counter { return c.msgs }

// Tally exposes per-level hit counts (levels 1, 2 and 4 are used: HBA has
// no group level).
func (c *Cluster) Tally() *metrics.LevelTally { return &c.tally }

// OverallLatency returns latency statistics across all lookups.
func (c *Cluster) OverallLatency() *metrics.LatencyStats { return &c.overall }

// HomeOf returns the ground-truth home of a path (-1 when absent).
func (c *Cluster) HomeOf(path string) int {
	home, ok := c.homes[path]
	if !ok {
		return -1
	}
	return home
}

// FileCount returns the number of files in the system.
func (c *Cluster) FileCount() int { return len(c.homes) }

// RandomMDS returns a uniformly chosen server ID.
func (c *Cluster) RandomMDS() int {
	ids := c.MDSIDs()
	return ids[c.rng.Intn(len(ids))]
}

// Populate homes every path at a random MDS and synchronizes all replicas.
func (c *Cluster) Populate(each func(fn func(path string) bool)) {
	ids := c.MDSIDs()
	each(func(path string) bool {
		home := ids[c.rng.Intn(len(ids))]
		c.nodes[home].AddFile(path)
		c.homes[path] = home
		return true
	})
	c.syncAll()
}

// arrayProbeCost is the cost of probing the full global array (N−1 replicas
// plus the local filter) under the memory budget — the term that blows up
// when HBA outgrows RAM.
func (c *Cluster) arrayProbeCost(id int) time.Duration {
	node := c.nodes[id]
	total := node.ReplicaCount() + 1
	per := c.cfg.VirtualReplicaBytes
	if per == 0 {
		per = node.LocalFilter().SizeBytes()
	}
	return c.mem.ArrayProbeCost(total, uint64(total)*per,
		c.cfg.Cost.MemProbe, c.cfg.Cost.DiskRead, c.cfg.CacheHitRate)
}

func (c *Cluster) l1ProbeCost() time.Duration {
	entries := c.lru.Entries()
	if entries == 0 {
		entries = 1
	}
	return time.Duration(entries) * c.cfg.Cost.MemProbe
}

func (c *Cluster) verify(candidate int, path string) (bool, time.Duration) {
	c.msgs.Add(simnet.MsgQueryUnicast, 1)
	cost := c.cfg.Cost.UnicastRTT + c.cfg.Cost.MemProbe
	node := c.nodes[candidate]
	if node == nil {
		return false, cost
	}
	return node.HasFile(path), cost
}

// remoteWork mirrors core's queue-aware remote charging: multicast probes
// occupy the servers they land on when queued mode is active.
func (c *Cluster) remoteWork(id int, arrival, work time.Duration, queued bool) time.Duration {
	if !queued {
		return work
	}
	start := arrival
	if next := c.queue[id]; next > start {
		start = next
	}
	c.queue[id] = start + work
	return (start - arrival) + work
}

// Lookup resolves path starting at entry: L1 LRU array, then the global
// replica array, then a system-wide multicast as the last resort. Levels are
// tallied as 1 (LRU), 2 (global array) and 4 (multicast) so HBA and G-HBA
// tallies share a scale. Queueing effects are excluded; see LookupAt.
func (c *Cluster) Lookup(path string, entry int) core.LookupResult {
	return c.lookup(path, entry, 0, false)
}

func (c *Cluster) lookup(path string, entry int, arrival time.Duration, queued bool) core.LookupResult {
	node := c.nodes[entry]
	if node == nil {
		entry = c.RandomMDS()
		node = c.nodes[entry]
	}

	// Hash once per lookup; the L1 array, all N−1 global-array replicas,
	// the local filter, and the learning write replay the digest.
	s := scratchPool.Get().(*lookupScratch)
	defer scratchPool.Put(s)
	s.digest = bloom.NewDigestString(path)
	d := &s.digest

	latency := c.cfg.Cost.ClientRTT
	var server time.Duration

	finish := func(res core.LookupResult) core.LookupResult {
		if queued {
			start := arrival
			if next := c.queue[entry]; next > start {
				start = next
			}
			c.queue[entry] = start + server
			latency += start - arrival
		}
		res.Path = path
		res.Latency = latency
		res.ServerTime = server
		c.tally.Record(res.Level)
		c.overall.Observe(latency)
		if res.Found {
			c.lru.ObserveDigest(d, res.Home)
		}
		return res
	}

	// L1: the replicated LRU array (always memory resident).
	l1Cost := c.l1ProbeCost()
	latency += l1Cost
	server += l1Cost
	r1 := c.lru.QueryDigest(d, s.hits)
	s.hits = r1.Hits
	if home, ok := r1.Unique(); ok {
		ok2, cost := c.verify(home, path)
		latency += cost
		if ok2 {
			return finish(core.LookupResult{Home: home, Found: true, Level: 1})
		}
	}

	// L2: the global replica array.
	probe := c.arrayProbeCost(entry)
	latency += probe
	server += probe
	r2 := node.QueryL2Digest(d, s.hits)
	s.hits = r2.Hits
	if home, ok := r2.Unique(); ok {
		if home == entry {
			latency += c.cfg.Cost.MemProbe
			if node.HasFile(path) {
				return finish(core.LookupResult{Home: entry, Found: true, Level: 2})
			}
		} else {
			ok2, cost := c.verify(home, path)
			latency += cost
			if ok2 {
				return finish(core.LookupResult{Home: home, Found: true, Level: 2})
			}
		}
	}

	// Last resort: system-wide multicast with disk verification.
	others := len(c.nodes) - 1
	c.msgs.Add(simnet.MsgQueryMulticast, uint64(others))
	latency += c.cfg.Cost.Multicast(others)
	l4CPU := time.Duration(others) * c.cfg.Cost.MsgProc
	latency += l4CPU
	server += l4CPU
	var slowest time.Duration
	for _, id := range c.MDSIDs() {
		if id == entry {
			continue
		}
		resp := c.remoteWork(id, arrival, c.cfg.Cost.MsgProc+c.cfg.Cost.MemProbe, queued)
		if resp > slowest {
			slowest = resp
		}
	}
	latency += slowest + c.cfg.Cost.MemProbe + c.cfg.Cost.DiskRead
	if home, ok := c.homes[path]; ok {
		return finish(core.LookupResult{Home: home, Found: true, Level: 4})
	}
	return finish(core.LookupResult{Home: -1, Found: false, Level: 4})
}

// LookupAt is Lookup through the open-loop queuing model: the request waits
// for the entry MDS's queue, and multicast probes occupy the servers they
// land on.
func (c *Cluster) LookupAt(path string, entry int, arrival time.Duration) core.LookupResult {
	return c.lookup(path, entry, arrival, true)
}

// ResetQueues clears queuing state between runs.
func (c *Cluster) ResetQueues() {
	c.queue = make(map[int]time.Duration)
}

// Create homes a new file and pushes a replica update to all servers when
// the XOR-delta threshold trips.
func (c *Cluster) Create(path string) int {
	return c.createWith(c.rng, path)
}

// createWith is Create drawing the home from a caller-supplied RNG.
func (c *Cluster) createWith(r interface{ Intn(int) int }, path string) int {
	ids := c.MDSIDs()
	home := ids[r.Intn(len(ids))]
	c.nodes[home].AddFile(path)
	c.homes[path] = home
	if c.nodes[home].NeedsShip(c.cfg.UpdateThresholdBits) {
		c.PushUpdate(home)
	}
	return home
}

// Delete removes a file; the home filter stays stale until rebuilt.
// Reports whether the file existed.
func (c *Cluster) Delete(path string) bool {
	_, existed := c.deleteInner(path)
	return existed
}

// deleteInner removes path, returning its pre-delete home (-1 when absent)
// and whether it existed.
func (c *Cluster) deleteInner(path string) (int, bool) {
	home, ok := c.homes[path]
	if !ok {
		return -1, false
	}
	node := c.nodes[home]
	node.DeleteFile(path)
	delete(c.homes, path)
	if node.DeletesSinceRebuild() >= c.cfg.RebuildDeleteThreshold {
		node.Rebuild()
		c.PushUpdate(home)
	}
	return home, true
}

// PushUpdate multicasts origin's fresh filter to every other MDS — HBA's
// system-wide update, the cost Fig 12 compares against G-HBA's one-per-group
// update. Returns the update latency: the multicast plus the slowest apply.
func (c *Cluster) PushUpdate(origin int) time.Duration {
	node := c.nodes[origin]
	if node == nil {
		return 0
	}
	snap := node.Ship()
	var slowest time.Duration
	count := 0
	for _, id := range c.MDSIDs() {
		if id == origin {
			continue
		}
		c.nodes[id].InstallReplica(origin, snap.Clone())
		count++
		if a := c.applyCost(id); a > slowest {
			slowest = a
		}
	}
	c.msgs.Add(simnet.MsgReplicaUpdate, uint64(count))
	return c.cfg.Cost.Multicast(count) + slowest
}

// applyCost mirrors core's replica-write cost under memory pressure.
func (c *Cluster) applyCost(holder int) time.Duration {
	node := c.nodes[holder]
	total := node.ReplicaCount() + 1
	per := c.cfg.VirtualReplicaBytes
	if per == 0 {
		per = node.LocalFilter().SizeBytes()
	}
	spilled := c.mem.SpilledReplicas(total, uint64(total)*per)
	if spilled == 0 {
		return c.cfg.Cost.MemProbe
	}
	frac := float64(spilled) / float64(total)
	return c.cfg.Cost.MemProbe +
		time.Duration(frac*(1-c.cfg.CacheHitRate)*float64(c.cfg.Cost.DiskRead))
}

// AddMDS brings a new server in. HBA must (a) ship every existing replica to
// the newcomer and (b) multicast the newcomer's filter to everyone — the
// O(N) reconfiguration cost of Figs 11 and 15.
func (c *Cluster) AddMDS() (int, int, int) {
	id := c.nextMDSID
	node, err := mds.NewNode(id, c.cfg.Node)
	if err != nil {
		// Config was validated at New; this cannot fail for a fixed config.
		panic(fmt.Sprintf("hba: creating MDS %d: %v", id, err))
	}
	migrated, messages := 0, 0
	// Newcomer receives a replica of every existing server.
	for _, origin := range c.MDSIDs() {
		node.InstallReplica(origin, c.nodes[origin].Ship())
		migrated++
		messages++
	}
	// Everyone receives the newcomer's (empty) filter.
	snap := node.Ship()
	for _, other := range c.MDSIDs() {
		c.nodes[other].InstallReplica(id, snap.Clone())
		messages++
	}
	c.nodes[id] = node
	c.nextMDSID++
	c.msgs.Add(simnet.MsgReplicaMigration, uint64(migrated))
	c.msgs.Add(simnet.MsgMembership, uint64(messages-migrated))
	return id, migrated, messages
}

// Apply dispatches one trace record, mirroring core.Cluster.Apply. A
// delete's result reports the pre-delete home and whether the path existed.
func (c *Cluster) Apply(rec trace.Record) core.LookupResult {
	return c.applyRecord(c.rng, rec)
}

// ApplyWith is Apply drawing entry points and homes from a caller-supplied
// RNG, mirroring core.Cluster.ApplyWith. Unlike core's, HBA's cluster is a
// serial baseline: records must still be dispatched one at a time.
func (c *Cluster) ApplyWith(rng *rand.Rand, rec trace.Record) core.LookupResult {
	return c.applyRecord(rng, rec)
}

func (c *Cluster) applyRecord(r interface{ Intn(int) int }, rec trace.Record) core.LookupResult {
	switch rec.Op {
	case trace.OpCreate:
		// One draw either way: the home of a fresh path, or the entry
		// point when creating an existing path degenerates to an open.
		ids := c.MDSIDs()
		id := ids[r.Intn(len(ids))]
		if _, exists := c.homes[rec.Path]; exists {
			return c.LookupAt(rec.Path, id, rec.At)
		}
		c.nodes[id].AddFile(rec.Path)
		c.homes[rec.Path] = id
		if c.nodes[id].NeedsShip(c.cfg.UpdateThresholdBits) {
			c.PushUpdate(id)
		}
		return core.LookupResult{Path: rec.Path, Home: id, Found: true, Level: 0}
	case trace.OpDelete:
		home, existed := c.deleteInner(rec.Path)
		return core.LookupResult{Path: rec.Path, Home: home, Found: existed, Level: 0}
	default:
		ids := c.MDSIDs()
		return c.LookupAt(rec.Path, ids[r.Intn(len(ids))], rec.At)
	}
}

// Footprint returns one server's filter memory, for Table 5.
func (c *Cluster) Footprint(id int) core.MemoryFootprint {
	node := c.nodes[id]
	if node == nil {
		return core.MemoryFootprint{}
	}
	return core.MemoryFootprint{
		LocalFilterBytes: node.LocalFilter().SizeBytes(),
		ReplicaBytes:     node.Replicas().SizeBytes(),
		LRUBytes:         c.lru.SizeBytes(),
	}
}
