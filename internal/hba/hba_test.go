package hba

import (
	"strconv"
	"testing"

	"ghba/internal/core"
	"ghba/internal/mds"
	"ghba/internal/trace"
)

func smallConfig(n int) core.Config {
	cfg := core.DefaultConfig(n, 1) // group size unused by HBA
	cfg.Node = mds.Config{
		ExpectedFiles:  2_000,
		BitsPerFile:    16,
		LRUCapacity:    256,
		LRUBitsPerFile: 16,
	}
	return cfg
}

func newPopulated(t *testing.T, n, files int) *Cluster {
	t.Helper()
	c, err := New(smallConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	c.Populate(func(fn func(string) bool) {
		for i := 0; i < files; i++ {
			if !fn("/f" + strconv.Itoa(i)) {
				return
			}
		}
	})
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(smallConfig(0)); err == nil {
		t.Error("NumMDS 0 accepted")
	}
}

func TestEveryNodeHoldsAllReplicas(t *testing.T) {
	c := newPopulated(t, 8, 100)
	for _, id := range c.MDSIDs() {
		if rc := c.Node(id).ReplicaCount(); rc != 7 {
			t.Errorf("MDS %d holds %d replicas, want 7 (N−1)", id, rc)
		}
	}
}

func TestLookupFindsEveryFile(t *testing.T) {
	c := newPopulated(t, 8, 300)
	for i := 0; i < 300; i++ {
		path := "/f" + strconv.Itoa(i)
		res := c.Lookup(path, c.RandomMDS())
		if !res.Found || res.Home != c.HomeOf(path) {
			t.Fatalf("lookup %s = %+v (truth %d)", path, res, c.HomeOf(path))
		}
	}
	if c.FileCount() != 300 {
		t.Errorf("FileCount = %d", c.FileCount())
	}
}

func TestLookupResolvesLocallyWhenFresh(t *testing.T) {
	// With fresh replicas, HBA should answer almost everything at L1/L2 —
	// that is its whole selling point.
	c := newPopulated(t, 10, 400)
	for i := 0; i < 400; i++ {
		c.Lookup("/f"+strconv.Itoa(i), c.RandomMDS())
	}
	if frac := c.Tally().CumulativeFraction(2); frac < 0.95 {
		t.Errorf("only %.2f of lookups served locally, want ≥0.95", frac)
	}
}

func TestLookupMissing(t *testing.T) {
	c := newPopulated(t, 4, 50)
	res := c.Lookup("/ghost", c.RandomMDS())
	if res.Found || res.Level != 4 {
		t.Errorf("missing lookup = %+v", res)
	}
}

func TestCreateDeleteAndUpdatePropagation(t *testing.T) {
	cfg := smallConfig(6)
	cfg.UpdateThresholdBits = 1 << 30 // manual pushes
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Populate(func(fn func(string) bool) { fn("/seed") })
	home := c.Create("/new")
	if c.HomeOf("/new") != home {
		t.Error("create lost home")
	}
	d := c.PushUpdate(home)
	if d <= 0 {
		t.Error("push latency not positive")
	}
	// Every other node's replica of home must now contain the file.
	for _, id := range c.MDSIDs() {
		if id == home {
			continue
		}
		f := c.Node(id).Replicas().Get(home)
		if !f.ContainsString("/new") {
			t.Errorf("MDS %d replica of %d stale after push", id, home)
		}
	}
	if !c.Delete("/new") || c.Delete("/new") {
		t.Error("delete semantics wrong")
	}
}

func TestAddMDSCostIsLinear(t *testing.T) {
	c := newPopulated(t, 10, 100)
	id, migrated, messages := c.AddMDS()
	if id != 10 {
		t.Errorf("id = %d", id)
	}
	if migrated != 10 {
		t.Errorf("migrated = %d, want N=10 (all replicas to newcomer)", migrated)
	}
	if messages < 2*10 {
		t.Errorf("messages = %d, want ≥ 2N", messages)
	}
	if c.NumMDS() != 11 {
		t.Errorf("NumMDS = %d", c.NumMDS())
	}
	// Newcomer can serve lookups.
	if res := c.Lookup("/f5", id); !res.Found {
		t.Error("lookup via newcomer failed")
	}
}

func TestQueuingAccumulates(t *testing.T) {
	c := newPopulated(t, 4, 100)
	entry := c.MDSIDs()[0]
	r1 := c.LookupAt("/f1", entry, 0)
	r2 := c.LookupAt("/f2", entry, 0)
	if r2.Latency < r1.ServerTime {
		t.Error("no queueing delay on simultaneous arrivals")
	}
	c.ResetQueues()
}

func TestMemoryPressureSlowsHBA(t *testing.T) {
	// Same cluster, two budgets: constrained memory must produce strictly
	// slower array probes — the effect behind Figs 8–10.
	mk := func(budget uint64) *Cluster {
		cfg := smallConfig(8)
		cfg.MemoryBudgetBytes = budget
		cfg.VirtualReplicaBytes = 8 << 20 // 8 MB per replica at paper scale
		cfg.CacheHitRate = 0.5
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.Populate(func(fn func(string) bool) {
			for i := 0; i < 200; i++ {
				if !fn("/f" + strconv.Itoa(i)) {
					return
				}
			}
		})
		return c
	}
	big := mk(0)          // unlimited
	small := mk(16 << 20) // 16 MB: 2 of 8 replicas resident
	var bigLat, smallLat float64
	for i := 0; i < 200; i++ {
		path := "/f" + strconv.Itoa(i)
		bigLat += float64(big.Lookup(path, big.MDSIDs()[0]).Latency)
		smallLat += float64(small.Lookup(path, small.MDSIDs()[0]).Latency)
	}
	if smallLat <= bigLat*2 {
		t.Errorf("memory pressure barely visible: constrained %.0f vs unlimited %.0f", smallLat, bigLat)
	}
}

func TestApplyDispatch(t *testing.T) {
	c := newPopulated(t, 4, 50)
	res := c.Apply(traceRecord("/f1", 's'))
	if !res.Found {
		t.Error("stat record not found")
	}
	res = c.Apply(traceRecord("/brandnew", 'c'))
	if !res.Found || c.HomeOf("/brandnew") < 0 {
		t.Error("create record failed")
	}
	c.Apply(traceRecord("/brandnew", 'd'))
	if c.HomeOf("/brandnew") != -1 {
		t.Error("delete record failed")
	}
}

func TestFootprint(t *testing.T) {
	c := newPopulated(t, 5, 50)
	f := c.Footprint(0)
	if f.ReplicaBytes == 0 || f.LocalFilterBytes == 0 {
		t.Errorf("footprint = %+v", f)
	}
	if c.Footprint(99).Total() != 0 {
		t.Error("unknown footprint non-zero")
	}
	if c.Name() != "HBA" {
		t.Errorf("Name = %q", c.Name())
	}
}

// traceRecord builds a minimal record for dispatch tests: 's' stat,
// 'c' create, 'd' delete.
func traceRecord(path string, kind byte) trace.Record {
	op := trace.OpStat
	switch kind {
	case 'c':
		op = trace.OpCreate
	case 'd':
		op = trace.OpDelete
	}
	return trace.Record{Op: op, Path: path}
}
