package rpcnet

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestPoolCloseIdempotent pins the lifecycle contract: Close may be called
// any number of times, from any goroutine, without panicking or leaking.
func TestPoolCloseIdempotent(t *testing.T) {
	s := stallServer(t)
	p := NewPool(s.Addr(), PoolOptions{})
	if _, err := p.Call(1, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	if p.IdleConns() != 1 {
		t.Fatalf("idle = %d, want 1", p.IdleConns())
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Close()
		}()
	}
	wg.Wait()
	p.Close() // and once more, serially
	if p.IdleConns() != 0 {
		t.Errorf("idle after close = %d", p.IdleConns())
	}
}

// TestPoolGetAfterClose pins the checkout contract: Get on a closed pool
// fails with ErrPoolClosed (wrapped detection via errors.Is), and a
// connection checked out before Close can be returned afterwards without a
// panic — it is simply closed instead of retained.
func TestPoolGetAfterClose(t *testing.T) {
	s := stallServer(t)
	p := NewPool(s.Addr(), PoolOptions{})

	// Check one connection out while the pool is open.
	inFlight, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	p.Close()

	if _, err := p.Get(); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Get after Close = %v, want ErrPoolClosed", err)
	}
	if _, err := p.Call(1, []byte("x")); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Call after Close = %v, want ErrPoolClosed", err)
	}

	// The in-flight connection still completes its call and its return
	// must not panic or resurrect the idle list.
	resp, err := inFlight.Call(1, []byte("late"))
	if err != nil || !bytes.Equal(resp, []byte("late")) {
		t.Fatalf("in-flight call after pool close: %v %q", err, resp)
	}
	p.Put(inFlight)
	if p.IdleConns() != 0 {
		t.Errorf("closed pool retained a returned connection")
	}
	// The returned connection was closed by Put.
	if _, err := inFlight.Call(1, []byte("dead")); err == nil {
		t.Error("connection returned to a closed pool still usable")
	}
	p.Put(nil) // nil return is a no-op, not a panic
}

// TestCallContextCancellation pins the cancellation path: a context
// cancelled mid-call interrupts the blocked round trip, surfaces
// context.Canceled, and poisons the connection.
func TestCallContextCancellation(t *testing.T) {
	s := stallServer(t)
	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = cl.CallContext(ctx, opStall, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, call was not interrupted", elapsed)
	}
	// The stream position is unknown: the connection is poisoned.
	if _, err := cl.Call(1, []byte("x")); err == nil {
		t.Error("poisoned connection still usable")
	}
}

// TestCallContextDeadline pins the deadline merge: a context deadline
// tighter than the client's configured timeout wins, and expiry surfaces
// context.DeadlineExceeded.
func TestCallContextDeadline(t *testing.T) {
	s := stallServer(t)
	cl, err := DialTimeout(s.Addr(), time.Second, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cl.CallContext(ctx, opStall, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired call returned %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline honored the 30s client timeout instead: %v", elapsed)
	}
}

// TestCallContextPreCancelled pins the fail-fast path: an already-cancelled
// context never writes a frame, so the connection stays clean and usable.
func TestCallContextPreCancelled(t *testing.T) {
	s := stallServer(t)
	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.CallContext(ctx, 1, []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled call returned %v", err)
	}
	// No frame was written: the next call still works.
	resp, err := cl.Call(1, []byte("clean"))
	if err != nil || !bytes.Equal(resp, []byte("clean")) {
		t.Fatalf("connection dirtied by pre-cancelled call: %v %q", err, resp)
	}
}

// TestPoolCallContextDiscardsCancelled pins the pool-side behaviour: a
// cancelled call's connection is discarded, not returned to the idle list.
func TestPoolCallContextDiscardsCancelled(t *testing.T) {
	s := stallServer(t)
	p := NewPool(s.Addr(), PoolOptions{})
	t.Cleanup(p.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := p.CallContext(ctx, opStall, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled pooled call returned %v", err)
	}
	if p.IdleConns() != 0 {
		t.Errorf("cancelled connection returned to the pool")
	}
	// The pool dials fresh and recovers.
	resp, err := p.Call(1, []byte("next"))
	if err != nil || !bytes.Equal(resp, []byte("next")) {
		t.Fatalf("pool did not recover after cancellation: %v %q", err, resp)
	}
}
