package rpcnet

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrPoolClosed is returned by calls against a closed pool.
var ErrPoolClosed = errors.New("rpcnet: pool closed")

// PoolOptions configures a connection pool.
type PoolOptions struct {
	// DialTimeout bounds each dial; zero means no bound.
	DialTimeout time.Duration
	// CallTimeout is the per-call deadline applied to every connection;
	// zero disables deadlines.
	CallTimeout time.Duration
	// MaxIdle caps the connections retained between calls (default 8).
	// Demand beyond it still dials — surplus connections are simply closed
	// on return instead of retained.
	MaxIdle int
}

// Pool is a concurrency-safe pool of connections to one server. Callers
// invoke Call from any number of goroutines; each call checks out an idle
// connection (dialing when none is free), so independent calls proceed in
// parallel instead of serializing on a single socket. Connections that hit
// a transport error or timeout are discarded, and the next call dials
// fresh — one hung or crashed daemon costs failed calls, never a wedged
// pool.
type Pool struct {
	addr string
	opts PoolOptions

	mu     sync.Mutex
	idle   []*Client
	closed bool
}

// NewPool builds a pool for addr. No connection is dialed until the first
// Call.
func NewPool(addr string, opts PoolOptions) *Pool {
	if opts.MaxIdle <= 0 {
		opts.MaxIdle = 8
	}
	return &Pool{addr: addr, opts: opts}
}

// Addr returns the server address the pool dials.
func (p *Pool) Addr() string { return p.addr }

// Call checks out a connection, performs one RPC, and returns the
// connection to the pool. Application errors (*RemoteError) leave the
// connection reusable; transport errors discard it.
func (p *Pool) Call(msgType uint8, payload []byte) ([]byte, error) {
	return p.CallContext(context.Background(), msgType, payload)
}

// CallContext is Call with per-call cancellation and deadline control; see
// Client.CallContext for the deadline-merging and poisoning semantics. A
// cancelled call discards its connection, never returning it to the pool.
func (p *Pool) CallContext(ctx context.Context, msgType uint8, payload []byte) ([]byte, error) {
	cl, err := p.Get()
	if err != nil {
		return nil, err
	}
	resp, err := cl.CallContext(ctx, msgType, payload)
	var remote *RemoteError
	if err == nil || errors.As(err, &remote) {
		p.Put(cl)
	} else {
		cl.Close()
	}
	return resp, err
}

// Get checks a connection out of the pool, dialing when none is idle. After
// Close it returns ErrPoolClosed. Callers must hand the connection back with
// Put (or Close it after a transport error).
func (p *Pool) Get() (*Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if n := len(p.idle); n > 0 {
		cl := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return cl, nil
	}
	p.mu.Unlock()
	return DialTimeout(p.addr, p.opts.DialTimeout, p.opts.CallTimeout)
}

// Put returns a checked-out connection. Connections handed back after Close
// (in-flight calls racing a shutdown) or beyond the idle cap are closed
// instead of retained; both cases are safe, never a panic. A connection
// poisoned mid-call — by a transport error, a timeout, or a context
// cancellation that interrupted its round trip — is dropped, never retained:
// retaining it would hand a guaranteed-to-fail socket to a later caller.
func (p *Pool) Put(cl *Client) {
	if cl == nil {
		return
	}
	if cl.Broken() {
		cl.Close()
		return
	}
	p.mu.Lock()
	if !p.closed && len(p.idle) < p.opts.MaxIdle {
		p.idle = append(p.idle, cl)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	cl.Close()
}

// IdleConns reports the connections currently checked in.
func (p *Pool) IdleConns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// Close closes all idle connections and fails subsequent Gets with
// ErrPoolClosed. It is idempotent, and connections checked out by in-flight
// calls are closed as they return.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, cl := range idle {
		cl.Close()
	}
}
