package rpcnet

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// The multiplexed protocol ("mux") shares one socket among many concurrent
// logical calls: every frame carries a request ID, one writer goroutine and
// one reader goroutine own the socket's two directions, and an in-flight
// window bounds the requests awaiting responses. Responses may return in any
// order; the ID pairs them with their calls. A connection opens with a
// 4-byte magic so servers can keep speaking the classic one-call-per-frame
// protocol to old clients on the same port.
//
// Mux frame, big endian, both directions:
//
//	len uint32 | id uint64 | lead uint8 | payload
//
// where len covers everything after the length field (so len ≥ 9), lead is
// the request type client→server and the status byte (0 = OK, 1 =
// application error) server→client, and len is capped at MaxMessageBytes.
//
// Error semantics mirror the classic Client where the transport allows:
// application errors are clean frames and surface as *RemoteError; transport
// errors (resets, short reads, malformed frames, call timeouts against a
// hung server) poison the connection and fail every in-flight call. Context
// cancellation, however, no longer poisons: the frame boundary is owned by
// the writer goroutine, so an abandoned call just discards its response when
// it arrives and the connection keeps serving other calls.

// muxMagic opens every mux connection. As a classic frame it would declare a
// ~1.2 GB length — far beyond MaxMessageBytes — so sniffing it can never
// misread a legal classic request.
const muxMagic = "GMX1"

// DefaultWindow is the in-flight window applied when MuxOptions leaves
// Window zero: calls beyond it queue client-side until responses drain.
const DefaultWindow = 256

// muxFrameOverhead is the id+lead bytes covered by a mux frame's length.
const muxFrameOverhead = 9

// ErrConnClosed is returned by calls against a mux connection that was
// closed locally (as opposed to poisoned by a transport error, which fails
// calls with the poisoning error).
var ErrConnClosed = errors.New("rpcnet: connection closed")

// errCallTimeout marks a per-call deadline expiry against an unresponsive
// server; it poisons the connection like any transport fault.
type errCallTimeout struct{ d time.Duration }

func (e *errCallTimeout) Error() string {
	return fmt.Sprintf("rpcnet: call timed out after %v", e.d)
}

// Timeout and Temporary make *errCallTimeout satisfy net.Error, so callers
// testing nerr.Timeout() treat mux and classic timeouts alike.
func (e *errCallTimeout) Timeout() bool   { return true }
func (e *errCallTimeout) Temporary() bool { return true }

// errPayloadTooBig reports an oversized outbound mux payload. A value-typed
// error keeps the size check on the frame-write hot path free of fmt calls:
// the message is formatted only if a caller reads it, and the interface
// boxing happens on the failure return, never on the success path.
type errPayloadTooBig int

func (e errPayloadTooBig) Error() string {
	return fmt.Sprintf("rpcnet: payload %d bytes exceeds limit", int(e))
}

// writeMuxFrame appends one mux frame to w.
//
//ghbavet:hotpath
func writeMuxFrame(w io.Writer, id uint64, lead uint8, payload []byte) error {
	if len(payload)+muxFrameOverhead > MaxMessageBytes {
		return errPayloadTooBig(len(payload))
	}
	var hdr [4 + muxFrameOverhead]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+muxFrameOverhead))
	binary.BigEndian.PutUint64(hdr[4:12], id)
	hdr[12] = lead
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readMuxFrame reads one mux frame. The payload buffer grows as bytes
// actually arrive (1 MiB steps), so a malicious length prefix cannot force a
// MaxMessageBytes allocation out of a short stream.
func readMuxFrame(r io.Reader) (id uint64, lead uint8, payload []byte, err error) {
	var hdr [4 + muxFrameOverhead]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < muxFrameOverhead || n > MaxMessageBytes {
		return 0, 0, nil, fmt.Errorf("rpcnet: mux frame length %d out of range", n)
	}
	id = binary.BigEndian.Uint64(hdr[4:12])
	lead = hdr[12]
	body := int(n) - muxFrameOverhead
	const chunk = 1 << 20
	if body <= chunk {
		payload = make([]byte, body)
		if _, err := io.ReadFull(r, payload); err != nil {
			return 0, 0, nil, err
		}
		return id, lead, payload, nil
	}
	payload = make([]byte, 0, chunk)
	for len(payload) < body {
		step := body - len(payload)
		if step > chunk {
			step = chunk
		}
		off := len(payload)
		payload = append(payload, make([]byte, step)...)
		if _, err := io.ReadFull(r, payload[off:]); err != nil {
			return 0, 0, nil, err
		}
	}
	return id, lead, payload, nil
}

// muxServerConcurrency bounds the handler goroutines running per mux
// connection; requests beyond it queue in the read loop, applying
// backpressure through TCP.
const muxServerConcurrency = 64

// muxResponse is one handler result queued for a connection's writer.
type muxResponse struct {
	id      uint64
	status  uint8
	payload []byte
}

// serveMuxConn serves one multiplexed connection: the read loop dispatches
// each request frame to a handler goroutine (bounded by
// muxServerConcurrency), and a single writer goroutine streams responses
// back — out of order when handlers finish out of order — coalescing every
// response already waiting into one flush.
func (s *Server) serveMuxConn(conn net.Conn, br *bufio.Reader) {
	respCh := make(chan muxResponse, muxServerConcurrency)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriter(conn)
		broken := false
		// Each response carries an active-counter reference taken when its
		// request started; the writer releases it once the response frame is
		// flushed (or abandoned on a broken connection), so Drain's
		// zero-active condition means every answer actually left the buffer.
		unflushed := int64(0)
		write := func(r muxResponse) {
			if broken {
				s.active.Add(-1) // drain so handlers never block on a dead writer
				return
			}
			if writeMuxFrame(bw, r.id, r.status, r.payload) != nil {
				broken = true
				conn.Close()
				s.active.Add(-1)
				return
			}
			unflushed++
		}
		for resp := range respCh {
			write(resp)
			coalesce := true
			for coalesce {
				select {
				case more, ok := <-respCh:
					if !ok {
						bw.Flush()
						s.active.Add(-unflushed)
						return
					}
					write(more)
				default:
					coalesce = false
				}
			}
			if !broken && bw.Flush() != nil {
				broken = true
				conn.Close()
			}
			s.active.Add(-unflushed)
			unflushed = 0
		}
	}()
	sem := make(chan struct{}, muxServerConcurrency)
	var wg sync.WaitGroup
	for {
		id, msgType, payload, err := readMuxFrame(br)
		if err != nil {
			break // connection closed or malformed stream
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(id uint64, msgType uint8, payload []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			// The counter reference travels with the response into respCh;
			// the writer goroutine releases it after the flush.
			s.active.Add(1)
			resp, herr := s.handler(msgType, payload)
			status := uint8(0)
			if herr != nil {
				status = 1
				resp = []byte(herr.Error())
			}
			respCh <- muxResponse{id: id, status: status, payload: resp}
		}(id, msgType, payload)
	}
	wg.Wait()
	close(respCh)
	<-writerDone
}

// MuxOptions configures a multiplexed connection.
type MuxOptions struct {
	// DialTimeout bounds the dial (and the magic write); zero means none.
	DialTimeout time.Duration
	// CallTimeout is the per-call response deadline. A call that exceeds it
	// poisons the connection — an unresponsive daemon costs the in-flight
	// window, never a wedged client. Zero disables.
	CallTimeout time.Duration
	// Window caps the in-flight (sent, unanswered) calls sharing the
	// connection; zero selects DefaultWindow.
	Window int
}

func (o *MuxOptions) window() int {
	if o.Window <= 0 {
		return DefaultWindow
	}
	return o.Window
}

// muxReply is one response (or terminal failure) delivered to a waiter.
type muxReply struct {
	status  uint8
	payload []byte
	err     error
}

// muxRequest is one frame queued for the writer goroutine. The payload must
// not be mutated after submission.
type muxRequest struct {
	id      uint64
	msgType uint8
	payload []byte
}

// MuxConn is one multiplexed connection: many concurrent CallContexts share
// the socket, paired to responses by request ID. Transport errors poison the
// connection (every pending and future call fails); context cancellation
// abandons only the cancelled call. Use a MuxClient for automatic redial
// after poisoning.
type MuxConn struct {
	conn    net.Conn
	writeCh chan muxRequest
	window  chan struct{}
	timeout time.Duration

	mu      sync.Mutex
	pending map[uint64]chan muxReply
	nextID  uint64
	failure error // terminal; set once
	done    chan struct{}
}

// DialMux opens a multiplexed connection: it dials, sends the protocol
// magic, and starts the connection's writer and reader goroutines.
func DialMux(addr string, opts MuxOptions) (*MuxConn, error) {
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("rpcnet: dial %s: %w", addr, err)
	}
	if opts.DialTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(opts.DialTimeout))
	}
	if _, err := conn.Write([]byte(muxMagic)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("rpcnet: mux handshake with %s: %w", addr, err)
	}
	conn.SetWriteDeadline(time.Time{})
	w := opts.window()
	m := &MuxConn{
		conn:    conn,
		writeCh: make(chan muxRequest, w),
		window:  make(chan struct{}, w),
		timeout: opts.CallTimeout,
		pending: make(map[uint64]chan muxReply),
		done:    make(chan struct{}),
	}
	go m.writeLoop()
	go m.readLoop()
	return m, nil
}

// writeLoop is the connection's single writer: it drains queued requests,
// coalescing every frame already waiting into one buffered flush — many
// logical calls, one syscall.
func (m *MuxConn) writeLoop() {
	bw := bufio.NewWriter(m.conn)
	for {
		select {
		case <-m.done:
			return
		case req := <-m.writeCh:
			if err := writeMuxFrame(bw, req.id, req.msgType, req.payload); err != nil {
				m.fail(fmt.Errorf("rpcnet: write: %w", err))
				return
			}
			coalesce := true
			for coalesce {
				select {
				case req = <-m.writeCh:
					if err := writeMuxFrame(bw, req.id, req.msgType, req.payload); err != nil {
						m.fail(fmt.Errorf("rpcnet: write: %w", err))
						return
					}
				default:
					coalesce = false
				}
			}
			if err := bw.Flush(); err != nil {
				m.fail(fmt.Errorf("rpcnet: flush: %w", err))
				return
			}
		}
	}
}

// readLoop is the connection's single reader: it pairs every response frame
// with its pending call. A response for an abandoned (cancelled) call is
// discarded; an ID that was never issued is protocol corruption and poisons
// the connection.
func (m *MuxConn) readLoop() {
	br := bufio.NewReader(m.conn)
	for {
		id, status, payload, err := readMuxFrame(br)
		if err != nil {
			m.fail(fmt.Errorf("rpcnet: read: %w", err))
			return
		}
		m.mu.Lock()
		ch, ok := m.pending[id]
		if ok {
			delete(m.pending, id)
		} else if id >= m.nextID {
			m.mu.Unlock()
			m.fail(fmt.Errorf("rpcnet: response for request ID %d that was never sent", id))
			return
		}
		m.mu.Unlock()
		if ok {
			ch <- muxReply{status: status, payload: payload} // buffered; never blocks
		}
	}
}

// fail poisons the connection once: the terminal error is recorded, every
// pending call is failed, and the socket is closed (unblocking both loops).
func (m *MuxConn) fail(err error) {
	m.mu.Lock()
	if m.failure == nil {
		m.failure = err
		close(m.done)
		for id, ch := range m.pending {
			delete(m.pending, id)
			ch <- muxReply{err: err}
		}
	}
	m.mu.Unlock()
	m.conn.Close()
}

// Broken reports whether the connection has been poisoned or closed.
func (m *MuxConn) Broken() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failure != nil
}

// Close poisons the connection with ErrConnClosed: pending calls fail, the
// socket closes, and both goroutines exit. Idempotent.
func (m *MuxConn) Close() { m.fail(ErrConnClosed) }

// err returns the terminal failure (nil while healthy).
func (m *MuxConn) err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failure
}

// Call is CallContext with no cancellation.
func (m *MuxConn) Call(msgType uint8, payload []byte) ([]byte, error) {
	return m.CallContext(context.Background(), msgType, payload)
}

// CallContext issues one logical call over the shared socket: it acquires an
// in-flight window slot, queues the request frame, and waits for the
// matching response. The payload must not be mutated until the call returns.
// Application errors surface as *RemoteError and leave the connection
// usable. Cancelling the context abandons the call — the response, when it
// arrives, is discarded — and also leaves the connection usable. Exceeding
// the configured call timeout poisons the connection, as the server is
// presumed hung mid-stream.
func (m *MuxConn) CallContext(ctx context.Context, msgType uint8, payload []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case m.window <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-m.done:
		return nil, m.err()
	}
	defer func() { <-m.window }()

	m.mu.Lock()
	if m.failure != nil {
		err := m.failure
		m.mu.Unlock()
		return nil, err
	}
	id := m.nextID
	m.nextID++
	ch := make(chan muxReply, 1)
	m.pending[id] = ch
	m.mu.Unlock()

	select {
	case m.writeCh <- muxRequest{id: id, msgType: msgType, payload: payload}:
	case <-ctx.Done():
		m.abandon(id)
		return nil, ctx.Err()
	case <-m.done:
		m.abandon(id)
		return nil, m.err()
	}

	var timeoutC <-chan time.Time
	if m.timeout > 0 {
		t := time.NewTimer(m.timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case rep := <-ch:
		if rep.err != nil {
			return nil, rep.err
		}
		if rep.status != 0 {
			return nil, &RemoteError{Msg: string(rep.payload)}
		}
		return rep.payload, nil
	case <-ctx.Done():
		m.abandon(id)
		return nil, ctx.Err()
	case <-timeoutC:
		err := &errCallTimeout{d: m.timeout}
		m.fail(err)
		return nil, err
	}
}

// abandon withdraws a cancelled call's pending entry; a response already
// claimed by the reader lands in the call's buffered channel and is GC'd.
func (m *MuxConn) abandon(id uint64) {
	m.mu.Lock()
	delete(m.pending, id)
	m.mu.Unlock()
}

// MuxClient keeps one multiplexed connection to a server, redialing
// transparently after the connection is poisoned — the mux counterpart of a
// Pool, except that concurrency shares the single socket's in-flight window
// instead of checking out sockets.
type MuxClient struct {
	addr string
	opts MuxOptions

	mu     sync.Mutex
	conn   *MuxConn
	closed bool
}

// NewMuxClient builds a client for addr. No connection is dialed until the
// first call.
func NewMuxClient(addr string, opts MuxOptions) *MuxClient {
	return &MuxClient{addr: addr, opts: opts}
}

// Addr returns the server address the client dials.
func (c *MuxClient) Addr() string { return c.addr }

// current returns the live connection, dialing a fresh one if the previous
// was poisoned. Dials serialize on the client mutex so one daemon restart
// costs one redial, not a thundering herd.
func (c *MuxClient) current() (*MuxConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrPoolClosed
	}
	if c.conn != nil && !c.conn.Broken() {
		return c.conn, nil
	}
	conn, err := DialMux(c.addr, c.opts)
	if err != nil {
		return nil, err
	}
	c.conn = conn
	return conn, nil
}

// Call is CallContext with no cancellation.
func (c *MuxClient) Call(msgType uint8, payload []byte) ([]byte, error) {
	return c.CallContext(context.Background(), msgType, payload)
}

// CallContext issues one call over the shared multiplexed connection; see
// MuxConn.CallContext for the window, cancellation and poisoning semantics.
func (c *MuxClient) CallContext(ctx context.Context, msgType uint8, payload []byte) ([]byte, error) {
	conn, err := c.current()
	if err != nil {
		return nil, err
	}
	return conn.CallContext(ctx, msgType, payload)
}

// Close closes the live connection and fails subsequent calls. Idempotent.
func (c *MuxClient) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}
