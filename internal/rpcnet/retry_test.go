package rpcnet

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flakyCaller fails its first n calls with a transport-style error, then
// succeeds.
type flakyCaller struct {
	mu       sync.Mutex
	failures int
	calls    int
	err      error
}

func (f *flakyCaller) CallContext(ctx context.Context, msgType uint8, payload []byte) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.calls <= f.failures {
		return nil, f.err
	}
	return append([]byte{msgType}, payload...), nil
}

func TestCallRetryRecoversFromTransportErrors(t *testing.T) {
	f := &flakyCaller{failures: 2, err: errors.New("rpcnet: read: connection reset")}
	p := RetryPolicy{Attempts: 4, Backoff: time.Millisecond}
	resp, err := CallRetry(context.Background(), f, p, 7, []byte("x"))
	if err != nil {
		t.Fatalf("CallRetry: %v", err)
	}
	if string(resp) != "\x07x" {
		t.Fatalf("resp = %q", resp)
	}
	if f.calls != 3 {
		t.Fatalf("calls = %d, want 3", f.calls)
	}
}

func TestCallRetryExhaustsBudget(t *testing.T) {
	werr := errors.New("rpcnet: write: broken pipe")
	f := &flakyCaller{failures: 100, err: werr}
	p := RetryPolicy{Attempts: 3, Backoff: time.Millisecond}
	if _, err := CallRetry(context.Background(), f, p, 1, nil); !errors.Is(err, werr) {
		t.Fatalf("err = %v, want %v", err, werr)
	}
	if f.calls != 3 {
		t.Fatalf("calls = %d, want 3", f.calls)
	}
}

func TestCallRetryNeverRetriesRemoteErrors(t *testing.T) {
	f := &flakyCaller{failures: 100, err: &RemoteError{Msg: "no such replica"}}
	p := RetryPolicy{Attempts: 5, Backoff: time.Millisecond}
	_, err := CallRetry(context.Background(), f, p, 1, nil)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if f.calls != 1 {
		t.Fatalf("calls = %d: a clean application error was retried", f.calls)
	}
}

func TestCallRetryNeverRetriesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := &flakyCaller{failures: 100, err: context.Canceled}
	p := RetryPolicy{Attempts: 5, Backoff: time.Millisecond}
	if _, err := CallRetry(ctx, f, p, 1, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if f.calls > 1 {
		t.Fatalf("calls = %d: cancelled context was retried", f.calls)
	}
}

func TestCallRetryBackoffInterruptible(t *testing.T) {
	f := &flakyCaller{failures: 100, err: errors.New("transport down")}
	p := RetryPolicy{Attempts: 10, Backoff: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := CallRetry(ctx, f, p, 1, nil)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}

// TestCallRetryAcrossDaemonRestart is the scenario the policy exists for:
// a MuxClient whose server dies and comes back on the same address. The
// first attempt poisons the connection; a retry redials and lands.
func TestCallRetryAcrossDaemonRestart(t *testing.T) {
	echo := func(msgType uint8, payload []byte) ([]byte, error) {
		return payload, nil
	}
	srv, err := Serve("127.0.0.1:0", echo)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	client := NewMuxClient(addr, MuxOptions{DialTimeout: time.Second, CallTimeout: time.Second})
	defer client.Close()
	if _, err := client.Call(1, []byte("warm")); err != nil {
		t.Fatalf("warm call: %v", err)
	}

	srv.Close()
	// Restart on the same address; briefly racing the retry loop is the
	// point — backoff must ride it out.
	restarted := make(chan *Server, 1)
	go func() {
		for i := 0; i < 100; i++ {
			s, err := Serve(addr, echo)
			if err == nil {
				restarted <- s
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		restarted <- nil
	}()

	p := RetryPolicy{Attempts: 20, Backoff: 5 * time.Millisecond, MaxBackoff: 100 * time.Millisecond}
	resp, err := CallRetry(context.Background(), client, p, 1, []byte("again"))
	if err != nil {
		t.Fatalf("call across restart: %v", err)
	}
	if string(resp) != "again" {
		t.Fatalf("resp = %q", resp)
	}
	if s := <-restarted; s != nil {
		s.Close()
	} else {
		t.Fatal("could not rebind the daemon address")
	}
}

func TestDrainWaitsForInflight(t *testing.T) {
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	var completed atomic.Int32
	srv, err := Serve("127.0.0.1:0", func(msgType uint8, payload []byte) ([]byte, error) {
		started.Done()
		<-release
		completed.Add(1)
		return []byte("done"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	callDone := make(chan error, 1)
	go func() {
		_, err := client.Call(1, nil)
		callDone <- err
	}()
	started.Wait()
	if got := srv.ActiveRequests(); got != 1 {
		t.Fatalf("ActiveRequests = %d, want 1", got)
	}
	// Release the handler just after the drain starts waiting.
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	if err := srv.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if completed.Load() != 1 {
		t.Fatal("drain returned before the in-flight handler completed")
	}
	if err := <-callDone; err != nil {
		t.Fatalf("in-flight call failed across drain: %v", err)
	}
	// New connections must be refused once draining began.
	if _, err := net.DialTimeout("tcp", srv.Addr(), 100*time.Millisecond); err == nil {
		t.Fatal("dial succeeded against a drained server")
	}
}

func TestDrainTimesOutOnWedgedHandler(t *testing.T) {
	wedge := make(chan struct{})
	defer close(wedge)
	srv, err := Serve("127.0.0.1:0", func(msgType uint8, payload []byte) ([]byte, error) {
		<-wedge
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	go client.Call(1, nil) //nolint:errcheck // the call is cut by Close
	for srv.ActiveRequests() == 0 {
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	err = srv.Drain(50 * time.Millisecond)
	if err == nil {
		t.Fatal("Drain succeeded with a wedged handler")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Drain blocked %v past its bound", elapsed)
	}
}

func TestDrainCountsMuxRequests(t *testing.T) {
	release := make(chan struct{})
	srv, err := Serve("127.0.0.1:0", func(msgType uint8, payload []byte) ([]byte, error) {
		if msgType == 2 {
			<-release
		}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	client := NewMuxClient(srv.Addr(), MuxOptions{})
	defer client.Close()
	if _, err := client.Call(1, nil); err != nil {
		t.Fatal(err)
	}
	callDone := make(chan error, 1)
	go func() {
		_, err := client.Call(2, nil)
		callDone <- err
	}()
	for srv.ActiveRequests() == 0 {
		time.Sleep(time.Millisecond)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	if err := srv.Drain(5 * time.Second); err != nil {
		t.Fatalf("Drain over mux: %v", err)
	}
	if err := <-callDone; err != nil {
		t.Fatalf("mux call failed across drain: %v", err)
	}
}
