// Package rpcnet is the prototype's wire layer: a minimal length-prefixed
// binary request/response protocol over TCP. The paper's prototype runs one
// MDS per Linux node; here every MDS daemon listens on a loopback TCP port
// and peers exchange real socket traffic, so message counts (Fig 15) are
// exact and latencies (Fig 14) include genuine network stack costs.
//
// Wire format, big endian:
//
//	request:  len uint32 | type uint8 | payload
//	response: len uint32 | status uint8 | payload   (status 0 = OK,
//	          1 = application error, payload = message)
//
// where len covers everything after the length field.
package rpcnet

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// MaxMessageBytes bounds a single message (filters can be megabytes at
// paper scale, but the prototype's are far smaller).
const MaxMessageBytes = 64 << 20

// ErrServerClosed is returned by calls against a closed server.
var ErrServerClosed = errors.New("rpcnet: server closed")

// RemoteError is an application-level error returned by a server handler.
// The request/response frames completed cleanly, so the connection remains
// usable — pools keep the connection alive after one of these, unlike
// transport errors (timeouts, resets), which poison it.
type RemoteError struct {
	// Msg is the handler's error text as sent on the wire.
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "rpcnet: remote error: " + e.Msg }

// Handler processes one request and returns the response payload.
// Returning an error sends an application-error response; the connection
// stays usable.
type Handler func(msgType uint8, payload []byte) ([]byte, error)

// Server accepts connections and dispatches requests to its handler,
// serving each connection on its own goroutine.
type Server struct {
	ln      net.Listener
	handler Handler

	// active counts handler invocations in flight, across both protocols;
	// Drain waits on it so a shutdown never cuts a request mid-execution.
	active atomic.Int64

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// Serve starts a server on addr (use "127.0.0.1:0" for an ephemeral port).
func Serve(addr string, handler Handler) (*Server, error) {
	if handler == nil {
		return nil, errors.New("rpcnet: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpcnet: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: handler, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	// One port, two protocols: a mux client opens with a 4-byte magic that
	// can never be a legal classic length prefix, so the first bytes decide
	// which framing this connection speaks.
	if magic, err := br.Peek(len(muxMagic)); err == nil && string(magic) == muxMagic {
		br.Discard(len(muxMagic))
		s.serveMuxConn(conn, br)
		return
	}
	bw := bufio.NewWriter(conn)
	for {
		msgType, payload, err := readFrame(br)
		if err != nil {
			return // connection closed or malformed stream
		}
		// The request stays "active" until its response is flushed, so a
		// Drain that sees zero active requests knows every accepted call
		// got its answer, not just its handler run.
		s.active.Add(1)
		resp, herr := s.handler(msgType, payload)
		status := uint8(0)
		if herr != nil {
			status = 1
			resp = []byte(herr.Error())
		}
		werr := writeFrame(bw, status, resp)
		if werr == nil {
			werr = bw.Flush()
		}
		s.active.Add(-1)
		if werr != nil {
			return
		}
	}
}

// ActiveRequests returns the number of handler invocations in flight.
func (s *Server) ActiveRequests() int64 { return s.active.Load() }

// Drain shuts the server down without cutting requests mid-execution: it
// stops accepting new connections, waits up to timeout for every in-flight
// request (handler plus response write) to finish, then closes. Requests
// that arrive on existing connections while draining still execute; the
// bound covers them too. timeout ≤ 0 closes immediately.
//
// If the bound expires with requests still executing, Drain closes the
// listener and every connection — so clients fail fast — but does NOT wait
// for the wedged handlers: a goroutine blocked inside a handler cannot be
// interrupted, and waiting on it would turn a bounded shutdown into an
// unbounded one. The error reports how many requests were abandoned.
func (s *Server) Drain(timeout time.Duration) error {
	// Stop accepting; established connections keep serving until the close.
	s.ln.Close()
	deadline := time.Now().Add(timeout)
	for s.active.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if cut := s.active.Load(); cut > 0 {
		s.mu.Lock()
		s.closed = true // make the eventual Close a no-op: it must not wg.Wait on wedged handlers
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		return fmt.Errorf("rpcnet: drain timed out with %d requests in flight", cut)
	}
	s.Close()
	return nil
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

// readFrame reads one frame: the leading byte after the length prefix is
// returned separately (request type or response status).
func readFrame(r io.Reader) (uint8, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < 1 || n > MaxMessageBytes {
		return 0, nil, fmt.Errorf("rpcnet: frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// writeFrame writes one frame with the given lead byte.
func writeFrame(w io.Writer, lead uint8, payload []byte) error {
	if len(payload)+1 > MaxMessageBytes {
		return fmt.Errorf("rpcnet: payload %d bytes exceeds limit", len(payload))
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(payload)+1))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := w.Write([]byte{lead}); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Client is a synchronous RPC client over one TCP connection. Calls are
// serialized by a mutex; use a Pool (or one client per worker) for
// parallelism. A transport error — timeout, reset, short read — leaves the
// frame boundary unknown, so it poisons the connection: the client closes
// it and every later call fails fast. Application errors (RemoteError) are
// clean frames and leave the connection usable.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	timeout time.Duration
}

// Dial connects to a server with no call deadline.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 0, 0)
}

// DialTimeout connects with a bound on the dial itself and a per-call
// deadline covering each request/response round trip. Zero disables either
// bound. A call that exceeds callTimeout returns a net.Error whose
// Timeout() is true, and the connection is closed: a hung daemon costs one
// failed call, never a wedged client.
func DialTimeout(addr string, dialTimeout, callTimeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("rpcnet: dial %s: %w", addr, err)
	}
	return &Client{
		conn:    conn,
		br:      bufio.NewReader(conn),
		bw:      bufio.NewWriter(conn),
		timeout: callTimeout,
	}, nil
}

// Call sends one request and waits for its response. An application error
// from the handler is returned as a *RemoteError with the server's message;
// any other error means the connection is now closed.
func (c *Client) Call(msgType uint8, payload []byte) ([]byte, error) {
	return c.CallContext(context.Background(), msgType, payload)
}

// CallContext is Call with per-call cancellation and deadline control. The
// effective deadline is the earlier of the client's configured call timeout
// and the context's deadline; cancelling the context interrupts an in-flight
// round trip. Because interruption leaves the frame boundary unknown, a
// cancelled or expired call poisons the connection like any transport error,
// and the returned error wraps ctx.Err() so callers can test it with
// errors.Is(err, context.Canceled / context.DeadlineExceeded).
func (c *Client) CallContext(ctx context.Context, msgType uint8, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, ErrServerClosed
	}
	if err := ctx.Err(); err != nil {
		// Nothing was written: the connection is still clean, fail fast.
		return nil, err
	}
	var deadline time.Time
	ctxDeadline := false
	if c.timeout > 0 {
		deadline = time.Now().Add(c.timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
		ctxDeadline = true
	}
	// A zero deadline clears any bound left by a previous call.
	if err := c.conn.SetDeadline(deadline); err != nil {
		return nil, c.poisonLocked(fmt.Errorf("rpcnet: deadline: %w", err))
	}
	// Watch for cancellation: an immediate past deadline interrupts the
	// blocked read/write. The conn handle is captured because poisonLocked
	// may nil out c.conn while the watcher is live; net.Conn is safe for
	// concurrent SetDeadline, and setting one on a closed conn only errors.
	if done := ctx.Done(); done != nil {
		conn := c.conn
		stop := make(chan struct{})
		watched := make(chan struct{})
		go func() {
			defer close(watched)
			select {
			case <-done:
				conn.SetDeadline(time.Unix(1, 0))
			case <-stop:
			}
		}()
		defer func() { close(stop); <-watched }()
	}
	ctxErr := func(err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("%w (%v)", cerr, err)
		}
		// The connection deadline came from the context and fired a beat
		// before the context's own timer flipped: still the context's
		// deadline, report it as such.
		var nerr net.Error
		if ctxDeadline && errors.As(err, &nerr) && nerr.Timeout() {
			return fmt.Errorf("%w (%v)", context.DeadlineExceeded, err)
		}
		return err
	}
	if err := writeFrame(c.bw, msgType, payload); err != nil {
		return nil, c.poisonLocked(ctxErr(fmt.Errorf("rpcnet: write: %w", err)))
	}
	if err := c.bw.Flush(); err != nil {
		return nil, c.poisonLocked(ctxErr(fmt.Errorf("rpcnet: flush: %w", err)))
	}
	status, resp, err := readFrame(c.br)
	if err != nil {
		return nil, c.poisonLocked(ctxErr(fmt.Errorf("rpcnet: read: %w", err)))
	}
	if status != 0 {
		return nil, &RemoteError{Msg: string(resp)}
	}
	return resp, nil
}

// poisonLocked closes the connection after a transport error; the stream
// position is unknown, so it can never carry another frame.
func (c *Client) poisonLocked(err error) error {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	return err
}

// Broken reports whether the connection has been poisoned (by a transport
// error, a timeout, or a context cancellation mid-call) or closed. A broken
// client can never carry another call; pools use this to drop, rather than
// retain, connections handed back after such a failure.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn == nil
}

// Close closes the connection; subsequent calls fail.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}
