package rpcnet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// opStall is the request type stallServer blocks on.
const opStall uint8 = 9

// stallServer echoes every request except opStall, which blocks until the
// returned release function is called (registered as a cleanup, before the
// server's own Close so handlers unblock first).
func stallServer(t *testing.T) *Server {
	t.Helper()
	release := make(chan struct{})
	s, err := Serve("127.0.0.1:0", func(msgType uint8, payload []byte) ([]byte, error) {
		if msgType == opStall {
			<-release
		}
		if msgType == 2 {
			return nil, errors.New("boom")
		}
		return payload, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	t.Cleanup(func() { close(release) })
	return s
}

func TestCallDeadlineOnStalledServer(t *testing.T) {
	s := stallServer(t)
	c, err := DialTimeout(s.Addr(), time.Second, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Call(opStall, []byte("wedge me"))
	if err == nil {
		t.Fatal("call against stalled handler returned")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Errorf("err = %v, want net timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v, deadline was 100ms", elapsed)
	}
	// The stream position is unknown after a timeout: the connection is
	// poisoned and later calls fail fast instead of reading stale frames.
	if _, err := c.Call(1, []byte("after")); !errors.Is(err, ErrServerClosed) {
		t.Errorf("call on poisoned connection = %v, want ErrServerClosed", err)
	}
}

func TestClientWithoutTimeoutStillWorks(t *testing.T) {
	s := stallServer(t)
	c, err := DialTimeout(s.Addr(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(1, []byte("no deadline"))
	if err != nil || !bytes.Equal(resp, []byte("no deadline")) {
		t.Fatalf("call = %q, %v", resp, err)
	}
}

func TestPoolRecoversAfterTimeout(t *testing.T) {
	s := stallServer(t)
	p := NewPool(s.Addr(), PoolOptions{CallTimeout: 100 * time.Millisecond})
	defer p.Close()
	if _, err := p.Call(opStall, nil); err == nil {
		t.Fatal("stalled call returned")
	}
	// The timed-out connection was discarded; the next call dials fresh
	// and succeeds against the still-healthy server.
	resp, err := p.Call(1, []byte("alive"))
	if err != nil {
		t.Fatalf("pool did not recover: %v", err)
	}
	if !bytes.Equal(resp, []byte("alive")) {
		t.Errorf("recovered call = %q", resp)
	}
	if p.IdleConns() != 1 {
		t.Errorf("idle = %d, want 1 (bad conn discarded, good conn retained)", p.IdleConns())
	}
}

func TestPoolRemoteErrorKeepsConnection(t *testing.T) {
	s := stallServer(t)
	p := NewPool(s.Addr(), PoolOptions{CallTimeout: time.Second})
	defer p.Close()
	_, err := p.Call(2, nil)
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Msg != "boom" {
		t.Fatalf("err = %v, want RemoteError boom", err)
	}
	if p.IdleConns() != 1 {
		t.Errorf("idle = %d after app error, want 1 (connection kept)", p.IdleConns())
	}
	if _, err := p.Call(1, []byte("ok")); err != nil {
		t.Errorf("call after app error: %v", err)
	}
}

func TestPoolConcurrentCalls(t *testing.T) {
	s := stallServer(t)
	p := NewPool(s.Addr(), PoolOptions{CallTimeout: 5 * time.Second, MaxIdle: 4})
	defer p.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				msg := []byte(fmt.Sprintf("w%d-%d", w, i))
				resp, err := p.Call(1, msg)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp, msg) {
					errs <- fmt.Errorf("w%d: cross-talk: %q != %q", w, resp, msg)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if p.IdleConns() > 4 {
		t.Errorf("idle = %d, exceeds MaxIdle 4", p.IdleConns())
	}
}

// TestPoolPutDropsPoisonedConnection is the regression test for the
// reuse-then-fail bug: a caller using the exported Get/Put surface could
// hand back a connection poisoned by a context cancellation mid-call, and
// the pool would retain it for a later caller to fail on. Put must drop
// broken connections instead.
func TestPoolPutDropsPoisonedConnection(t *testing.T) {
	s := stallServer(t)
	p := NewPool(s.Addr(), PoolOptions{})
	defer p.Close()
	cl, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := cl.CallContext(ctx, opStall, []byte("wedge")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled call = %v, want DeadlineExceeded", err)
	}
	if !cl.Broken() {
		t.Fatal("cancelled mid-call connection not marked broken")
	}
	p.Put(cl)
	if p.IdleConns() != 0 {
		t.Fatalf("idle = %d after putting a poisoned connection, want 0", p.IdleConns())
	}
	// The next checkout dials fresh and works.
	resp, err := p.Call(1, []byte("fresh"))
	if err != nil {
		t.Fatalf("call after dropped poison: %v", err)
	}
	if !bytes.Equal(resp, []byte("fresh")) {
		t.Errorf("got %q", resp)
	}
}

func TestPoolCallAfterClose(t *testing.T) {
	s := stallServer(t)
	p := NewPool(s.Addr(), PoolOptions{})
	if _, err := p.Call(1, nil); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	if _, err := p.Call(1, nil); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("call after close = %v, want ErrPoolClosed", err)
	}
}
