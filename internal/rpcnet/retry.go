package rpcnet

import (
	"context"
	"errors"
	"time"
)

// RetryPolicy bounds the retry loop CallRetry runs around a transport
// failure. Retries are for idempotent requests only — the caller asserts
// idempotency by choosing CallRetry; the policy just shapes the loop.
type RetryPolicy struct {
	// Attempts is the total number of tries (first call included); values
	// below 1 behave as 1, i.e. no retry.
	Attempts int
	// Backoff is the sleep before the first retry; each further retry
	// doubles it. Zero selects 10ms.
	Backoff time.Duration
	// MaxBackoff caps the doubling. Zero selects 1s.
	MaxBackoff time.Duration
}

// Enabled reports whether the policy allows at least one retry.
func (p RetryPolicy) Enabled() bool { return p.Attempts > 1 }

func (p RetryPolicy) backoff() time.Duration {
	if p.Backoff <= 0 {
		return 10 * time.Millisecond
	}
	return p.Backoff
}

func (p RetryPolicy) maxBackoff() time.Duration {
	if p.MaxBackoff <= 0 {
		return time.Second
	}
	return p.MaxBackoff
}

// ContextCaller is the client surface CallRetry drives: Client, MuxConn,
// MuxClient and Pool all provide it. A MuxClient is the natural fit — it
// redials after poisoning, so the retry that follows a daemon restart lands
// on a fresh connection.
type ContextCaller interface {
	CallContext(ctx context.Context, msgType uint8, payload []byte) ([]byte, error)
}

// retriable decides whether an error is worth another attempt: transport
// faults (resets, timeouts, refused dials against a restarting daemon) are;
// application errors are clean frames from a healthy server and context
// cancellation/expiry is the caller giving up — retrying either would
// re-execute on purpose what already completed or was abandoned.
func retriable(err error) bool {
	var remote *RemoteError
	if errors.As(err, &remote) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// CallRetry issues an idempotent call with bounded retry-with-backoff:
// transport failures are retried up to the policy's attempt budget with
// exponentially growing, context-interruptible sleeps between tries. The
// caller is responsible for only routing idempotent requests here — a
// retried non-idempotent mutation could execute twice when the first
// attempt's response (not its execution) is what got lost.
func CallRetry(ctx context.Context, c ContextCaller, p RetryPolicy, msgType uint8, payload []byte) ([]byte, error) {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := p.backoff()
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
			if backoff *= 2; backoff > p.maxBackoff() {
				backoff = p.maxBackoff()
			}
		}
		var resp []byte
		resp, err = c.CallContext(ctx, msgType, payload)
		if err == nil {
			return resp, nil
		}
		if !retriable(err) {
			return nil, err
		}
	}
	return nil, err
}
