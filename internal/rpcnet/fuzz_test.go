package rpcnet

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzFrameRoundTrip hardens the mux frame codec against hostile streams:
// every write must read back bit-identical, and arbitrary bytes fed to the
// reader must either parse within the length caps or error — never panic,
// and never allocate anywhere near a declared-but-absent payload length.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint64(0), byte(1), []byte(nil))
	f.Add(uint64(1), byte(0), []byte("/usr/share/file"))
	f.Add(uint64(1<<40), byte(255), bytes.Repeat([]byte{0xAB}, 1000))
	f.Add(uint64(7), byte(2), []byte{0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, id uint64, lead byte, payload []byte) {
		// Round trip: write then read back, field for field.
		var buf bytes.Buffer
		if err := writeMuxFrame(&buf, id, lead, payload); err != nil {
			t.Fatalf("writeMuxFrame(%d, %d, %d bytes): %v", id, lead, len(payload), err)
		}
		wire := buf.Bytes()
		gotID, gotLead, gotPayload, err := readMuxFrame(bytes.NewReader(wire))
		if err != nil {
			t.Fatalf("readMuxFrame after clean write: %v", err)
		}
		if gotID != id || gotLead != lead || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("round trip mangled: id %d→%d lead %d→%d payload %d→%d bytes",
				id, gotID, lead, gotLead, len(payload), len(gotPayload))
		}

		// Every truncation of a valid frame must error, never hang or panic.
		for _, cut := range []int{0, 1, 4, 4 + muxFrameOverhead - 1, len(wire) - 1} {
			if cut >= len(wire) {
				continue
			}
			if _, _, _, err := readMuxFrame(bytes.NewReader(wire[:cut])); err == nil {
				t.Fatalf("truncated frame (%d of %d bytes) parsed cleanly", cut, len(wire))
			}
		}

		// The raw fuzz payload reinterpreted as a stream must parse or error
		// without overallocating: a stream of S bytes can never make the
		// reader retain much more than S bytes, whatever lengths it declares.
		if id, _, body, err := readMuxFrame(bytes.NewReader(payload)); err == nil {
			if len(body) > len(payload) {
				t.Fatalf("reader produced %d payload bytes from a %d-byte stream", len(body), len(payload))
			}
			_ = id
		}

		// A declared length beyond MaxMessageBytes must be rejected before
		// any body is read.
		var hostile [4 + muxFrameOverhead]byte
		binary.BigEndian.PutUint32(hostile[:4], uint32(MaxMessageBytes+1))
		if _, _, _, err := readMuxFrame(bytes.NewReader(hostile[:])); err == nil {
			t.Fatal("oversized frame length accepted")
		}
		// And one below the header overhead likewise (it cannot carry the
		// request ID and lead byte).
		binary.BigEndian.PutUint32(hostile[:4], uint32(muxFrameOverhead-1))
		if _, _, _, err := readMuxFrame(bytes.NewReader(hostile[:])); err == nil {
			t.Fatal("undersized frame length accepted")
		}
	})
}

// FuzzMuxReaderStream feeds arbitrary byte streams to the frame reader in a
// loop, the way the connection's read loop consumes a socket: every frame
// parsed must be well-formed, and the first malformed one must error out
// without panicking.
func FuzzMuxReaderStream(f *testing.F) {
	var seed bytes.Buffer
	writeMuxFrame(&seed, 3, 0, []byte("a"))
	writeMuxFrame(&seed, 4, 1, nil)
	f.Add(seed.Bytes())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte(muxMagic))
	f.Fuzz(func(t *testing.T, stream []byte) {
		r := bytes.NewReader(stream)
		for {
			_, _, payload, err := readMuxFrame(r)
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF && len(payload) != 0 {
					t.Fatalf("error %v returned alongside %d payload bytes", err, len(payload))
				}
				return
			}
		}
	})
}
