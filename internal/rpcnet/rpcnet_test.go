package rpcnet

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func echoServer(t *testing.T) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", func(msgType uint8, payload []byte) ([]byte, error) {
		switch msgType {
		case 1: // echo
			return payload, nil
		case 2: // fail
			return nil, errors.New("boom")
		case 3: // type+payload
			return append([]byte{msgType}, payload...), nil
		default:
			return nil, fmt.Errorf("unknown type %d", msgType)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestServeRejectsNilHandler(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestEchoRoundTrip(t *testing.T) {
	s := echoServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := []byte("/some/path with spaces and \x00 bytes")
	resp, err := c.Call(1, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, payload) {
		t.Errorf("echo = %q, want %q", resp, payload)
	}
}

func TestEmptyPayload(t *testing.T) {
	s := echoServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 0 {
		t.Errorf("empty echo = %q", resp)
	}
}

func TestApplicationError(t *testing.T) {
	s := echoServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(2, nil); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v, want remote boom", err)
	}
	// Connection survives application errors.
	if _, err := c.Call(1, []byte("still alive")); err != nil {
		t.Errorf("connection dead after app error: %v", err)
	}
}

func TestSequentialCallsOnOneConnection(t *testing.T) {
	s := echoServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 200; i++ {
		msg := []byte(fmt.Sprintf("msg-%d", i))
		resp, err := c.Call(3, msg)
		if err != nil {
			t.Fatal(err)
		}
		if resp[0] != 3 || !bytes.Equal(resp[1:], msg) {
			t.Fatalf("call %d response %q", i, resp)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	s := echoServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 100; i++ {
				msg := []byte(fmt.Sprintf("w%d-%d", w, i))
				resp, err := c.Call(1, msg)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp, msg) {
					errs <- fmt.Errorf("w%d: cross-talk: %q != %q", w, resp, msg)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestLargePayload(t *testing.T) {
	s := echoServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := make([]byte, 1<<20) // 1 MB, filter-replica scale
	for i := range big {
		big[i] = byte(i * 31)
	}
	resp, err := c.Call(1, big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, big) {
		t.Error("large payload corrupted")
	}
}

func TestCallAfterClientClose(t *testing.T) {
	s := echoServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Call(1, nil); err == nil {
		t.Error("call after close succeeded")
	}
	c.Close() // double close is safe
}

func TestCallAfterServerClose(t *testing.T) {
	s, err := Serve("127.0.0.1:0", func(uint8, []byte) ([]byte, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s.Close()
	s.Close() // idempotent
	if _, err := c.Call(1, nil); err == nil {
		t.Error("call against closed server succeeded")
	}
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}
