package rpcnet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func muxEchoServer(t *testing.T) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", func(msgType uint8, payload []byte) ([]byte, error) {
		switch msgType {
		case 1: // echo
			return payload, nil
		case 2: // fail
			return nil, errors.New("boom")
		case 4: // slow echo
			time.Sleep(50 * time.Millisecond)
			return payload, nil
		case 5: // hang until payload says otherwise
			time.Sleep(2 * time.Second)
			return payload, nil
		default:
			return nil, fmt.Errorf("unknown type %d", msgType)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestMuxRoundTrip(t *testing.T) {
	s := muxEchoServer(t)
	m, err := DialMux(s.Addr(), MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	payload := []byte("/some/path with spaces and \x00 bytes")
	resp, err := m.Call(1, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, payload) {
		t.Errorf("echo = %q, want %q", resp, payload)
	}
	// Empty payloads frame cleanly too.
	if resp, err := m.Call(1, nil); err != nil || len(resp) != 0 {
		t.Errorf("empty echo = %q, %v", resp, err)
	}
}

func TestMuxConcurrentCallsShareOneSocket(t *testing.T) {
	s := muxEchoServer(t)
	m, err := DialMux(s.Addr(), MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 64; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				msg := []byte(fmt.Sprintf("w%d-%d", w, i))
				resp, err := m.Call(1, msg)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp, msg) {
					errs <- fmt.Errorf("w%d: cross-talk: %q != %q", w, resp, msg)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMuxPipelining pins the point of the protocol: a slow response must not
// block a fast one issued after it on the same connection.
func TestMuxPipelining(t *testing.T) {
	s := muxEchoServer(t)
	m, err := DialMux(s.Addr(), MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		if _, err := m.Call(4, []byte("slow")); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(5 * time.Millisecond) // let the slow request hit the wire first
	start := time.Now()
	if _, err := m.Call(1, []byte("fast")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Errorf("fast call waited %v behind a slow one — no pipelining", d)
	}
	<-slowDone
}

func TestMuxRemoteErrorKeepsConnection(t *testing.T) {
	s := muxEchoServer(t)
	m, err := DialMux(s.Addr(), MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	_, err = m.Call(2, nil)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want *RemoteError", err)
	}
	if m.Broken() {
		t.Error("application error poisoned the connection")
	}
	if _, err := m.Call(1, []byte("still alive")); err != nil {
		t.Errorf("connection dead after app error: %v", err)
	}
}

// TestMuxCancellationDoesNotPoison pins the mux protocol's headline
// improvement over the classic client: abandoning one call leaves the
// connection serving every other call, because the late response is simply
// discarded by request ID.
func TestMuxCancellationDoesNotPoison(t *testing.T) {
	s := muxEchoServer(t)
	m, err := DialMux(s.Addr(), MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := m.CallContext(ctx, 4, []byte("will be abandoned")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if m.Broken() {
		t.Fatal("cancellation poisoned the connection")
	}
	// The abandoned call's response arrives later and must be discarded
	// without wedging the reader; follow-up calls keep working.
	for i := 0; i < 3; i++ {
		msg := []byte(fmt.Sprintf("after-%d", i))
		resp, err := m.Call(1, msg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp, msg) {
			t.Errorf("call %d: got %q", i, resp)
		}
	}
}

func TestMuxCallTimeoutPoisons(t *testing.T) {
	s := muxEchoServer(t)
	m, err := DialMux(s.Addr(), MuxOptions{CallTimeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	_, err = m.Call(5, []byte("hang"))
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err = %v, want a net.Error timeout", err)
	}
	if !m.Broken() {
		t.Error("call timeout did not poison the connection")
	}
	if _, err := m.Call(1, nil); err == nil {
		t.Error("call on poisoned connection succeeded")
	}
}

func TestMuxServerCloseFailsPendingCalls(t *testing.T) {
	s := muxEchoServer(t)
	m, err := DialMux(s.Addr(), MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	done := make(chan error, 1)
	go func() {
		_, err := m.Call(4, []byte("in flight at close"))
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("in-flight call survived server close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight call hung after server close")
	}
	if !m.Broken() {
		t.Error("server close did not poison the connection")
	}
}

func TestMuxWindowBoundsInFlight(t *testing.T) {
	var inFlight, maxInFlight atomic.Int64
	s, err := Serve("127.0.0.1:0", func(_ uint8, payload []byte) ([]byte, error) {
		cur := inFlight.Add(1)
		for {
			prev := maxInFlight.Load()
			if cur <= prev || maxInFlight.CompareAndSwap(prev, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return payload, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m, err := DialMux(s.Addr(), MuxOptions{Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := m.Call(1, []byte("x")); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := maxInFlight.Load(); got > 4 {
		t.Errorf("observed %d concurrent requests, window is 4", got)
	}
}

func TestMuxClientRedialsAfterPoison(t *testing.T) {
	s := muxEchoServer(t)
	c := NewMuxClient(s.Addr(), MuxOptions{CallTimeout: 20 * time.Millisecond})
	defer c.Close()
	if _, err := c.Call(1, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	// Poison the live connection with a hung call...
	if _, err := c.Call(5, []byte("hang")); err == nil {
		t.Fatal("hung call succeeded")
	}
	// ...and the next call rides a fresh dial.
	resp, err := c.Call(1, []byte("recovered"))
	if err != nil {
		t.Fatalf("call after poison: %v", err)
	}
	if string(resp) != "recovered" {
		t.Errorf("got %q", resp)
	}
}

func TestMuxClientCloseIsTerminal(t *testing.T) {
	s := muxEchoServer(t)
	c := NewMuxClient(s.Addr(), MuxOptions{})
	if _, err := c.Call(1, nil); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // idempotent
	if _, err := c.Call(1, nil); err == nil {
		t.Error("call after close succeeded")
	}
}

// TestClassicAndMuxShareOnePort pins the protocol negotiation: the same
// server socket serves an old-style client and a mux client concurrently.
func TestClassicAndMuxShareOnePort(t *testing.T) {
	s := muxEchoServer(t)
	classic, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer classic.Close()
	mux, err := DialMux(s.Addr(), MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer mux.Close()
	for i := 0; i < 20; i++ {
		msg := []byte(fmt.Sprintf("interleaved-%d", i))
		if resp, err := classic.Call(1, msg); err != nil || !bytes.Equal(resp, msg) {
			t.Fatalf("classic call %d: %q, %v", i, resp, err)
		}
		if resp, err := mux.Call(1, msg); err != nil || !bytes.Equal(resp, msg) {
			t.Fatalf("mux call %d: %q, %v", i, resp, err)
		}
	}
}

func TestMuxLargePayload(t *testing.T) {
	s := muxEchoServer(t)
	m, err := DialMux(s.Addr(), MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	big := make([]byte, 3<<20) // 3 MB: exercises the chunked frame reader
	for i := range big {
		big[i] = byte(i * 31)
	}
	resp, err := m.Call(1, big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, big) {
		t.Error("large payload corrupted")
	}
}

// TestMuxUnknownResponseIDPoisons pins the corruption check: a response ID
// the client never issued is a protocol violation, not a stray late reply.
func TestMuxUnknownResponseIDPoisons(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		magic := make([]byte, len(muxMagic))
		if _, err := io.ReadFull(conn, magic); err != nil {
			return
		}
		// Answer the first request with an ID from the far future.
		if _, _, _, err := readMuxFrame(conn); err != nil {
			return
		}
		writeMuxFrame(conn, 1<<40, 0, []byte("who asked"))
	}()
	m, err := DialMux(ln.Addr().String(), MuxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Call(1, []byte("hello")); err == nil {
		t.Error("call answered by never-issued ID succeeded")
	}
	if !m.Broken() {
		t.Error("never-issued response ID did not poison the connection")
	}
}
