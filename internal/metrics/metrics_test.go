package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestLatencyStatsEmpty(t *testing.T) {
	var s LatencyStats
	if s.Count() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.StdDev() != 0 {
		t.Error("empty stats not all zero")
	}
}

func TestLatencyStatsBasic(t *testing.T) {
	var s LatencyStats
	for _, d := range []time.Duration{10, 20, 30} {
		s.Observe(d * time.Millisecond)
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.Mean() != 20*time.Millisecond {
		t.Errorf("Mean = %v, want 20ms", s.Mean())
	}
	if s.Min() != 10*time.Millisecond || s.Max() != 30*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	// Sample stddev of {10,20,30} ms = 10 ms.
	if got := s.StdDev(); math.Abs(float64(got-10*time.Millisecond)) > float64(time.Microsecond) {
		t.Errorf("StdDev = %v, want 10ms", got)
	}
}

func TestLatencyStatsMerge(t *testing.T) {
	var a, b, all LatencyStats
	samples := []time.Duration{1, 5, 9, 13, 2, 8}
	for i, d := range samples {
		v := d * time.Millisecond
		all.Observe(v)
		if i < 3 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), all.Count())
	}
	if a.Mean() != all.Mean() {
		t.Errorf("merged mean %v, want %v", a.Mean(), all.Mean())
	}
	if math.Abs(float64(a.StdDev()-all.StdDev())) > float64(time.Microsecond) {
		t.Errorf("merged stddev %v, want %v", a.StdDev(), all.StdDev())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("merged min/max %v/%v, want %v/%v", a.Min(), a.Max(), all.Min(), all.Max())
	}
}

func TestLatencyStatsMergeEmptySides(t *testing.T) {
	var a, b LatencyStats
	b.Observe(time.Second)
	a.Merge(&b) // empty receiver
	if a.Count() != 1 || a.Mean() != time.Second {
		t.Error("merge into empty failed")
	}
	var c LatencyStats
	a.Merge(&c) // empty argument
	if a.Count() != 1 {
		t.Error("merge of empty changed stats")
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := NewHistogram([]time.Duration{5, 5}); err == nil {
		t.Error("non-ascending bounds accepted")
	}
	if _, err := NewHistogram([]time.Duration{10, 5}); err == nil {
		t.Error("descending bounds accepted")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, err := NewHistogram([]time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile non-zero")
	}
	// 100 samples at ~1.5ms (bucket (1ms, 2ms]).
	for i := 0; i < 100; i++ {
		h.Observe(1500 * time.Microsecond)
	}
	q50 := h.Quantile(0.5)
	if q50 < time.Millisecond || q50 > 2*time.Millisecond {
		t.Errorf("q50 = %v, want within (1ms, 2ms]", q50)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestHistogramQuantileClamps(t *testing.T) {
	h := DefaultLatencyHistogram()
	h.Observe(3 * time.Millisecond)
	if h.Quantile(-1) != h.Quantile(0) {
		t.Error("q<0 not clamped")
	}
	if h.Quantile(2) != h.Quantile(1) {
		t.Error("q>1 not clamped")
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h, err := NewHistogram([]time.Duration{time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(time.Hour) // overflow
	if got := h.Quantile(1); got != time.Millisecond {
		t.Errorf("overflow quantile = %v, want clamp to last bound", got)
	}
}

func TestHistogramOrderedQuantiles(t *testing.T) {
	h := DefaultLatencyHistogram()
	for _, d := range []time.Duration{
		5 * time.Microsecond, 50 * time.Microsecond, 500 * time.Microsecond,
		5 * time.Millisecond, 50 * time.Millisecond,
	} {
		for i := 0; i < 20; i++ {
			h.Observe(d)
		}
	}
	prev := time.Duration(-1)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("quantiles not monotone: q=%v → %v < %v", q, cur, prev)
		}
		prev = cur
	}
}

func TestLevelTally(t *testing.T) {
	var lt LevelTally
	for i := 0; i < 70; i++ {
		lt.Record(1)
	}
	for i := 0; i < 20; i++ {
		lt.Record(2)
	}
	for i := 0; i < 7; i++ {
		lt.Record(3)
	}
	for i := 0; i < 3; i++ {
		lt.Record(4)
	}
	lt.Record(0)  // ignored
	lt.Record(5)  // ignored
	lt.Record(-1) // ignored
	if lt.Total() != 100 {
		t.Fatalf("Total = %d, want 100", lt.Total())
	}
	if lt.Fraction(1) != 0.70 || lt.Fraction(4) != 0.03 {
		t.Errorf("fractions = %v, %v", lt.Fraction(1), lt.Fraction(4))
	}
	if lt.CumulativeFraction(2) != 0.90 {
		t.Errorf("cum(2) = %v, want 0.90", lt.CumulativeFraction(2))
	}
	if lt.CumulativeFraction(4) != 1.0 {
		t.Errorf("cum(4) = %v, want 1.0", lt.CumulativeFraction(4))
	}
	if lt.Count(3) != 7 || lt.Count(9) != 0 {
		t.Error("Count wrong")
	}
}

func TestLevelTallyEmpty(t *testing.T) {
	var lt LevelTally
	if lt.Fraction(1) != 0 || lt.CumulativeFraction(4) != 0 {
		t.Error("empty tally fractions non-zero")
	}
}

func TestLatencyStatsString(t *testing.T) {
	var s LatencyStats
	s.Observe(time.Millisecond)
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestConcurrentObserveAndRecord(t *testing.T) {
	var s LatencyStats
	var lt LevelTally
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Observe(time.Duration(i+1) * time.Microsecond)
				lt.Record(1 + (i+w)%4)
			}
		}(w)
	}
	wg.Wait()
	if s.Count() != workers*perWorker {
		t.Errorf("concurrent count = %d, want %d", s.Count(), workers*perWorker)
	}
	if lt.Total() != workers*perWorker {
		t.Errorf("concurrent tally = %d, want %d", lt.Total(), workers*perWorker)
	}
}

func TestConcurrentShardMerge(t *testing.T) {
	var total LatencyStats
	const workers, perWorker = 4, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var shard LatencyStats
			for i := 0; i < perWorker; i++ {
				shard.Observe(time.Millisecond)
			}
			total.Merge(&shard)
		}()
	}
	wg.Wait()
	if total.Count() != workers*perWorker {
		t.Errorf("merged count = %d, want %d", total.Count(), workers*perWorker)
	}
	if total.Mean() != time.Millisecond {
		t.Errorf("merged mean = %v", total.Mean())
	}
}
