// Package metrics provides the small statistical toolkit the experiment
// harness reports with: streaming mean/min/max (Welford), fixed-boundary
// latency histograms with percentile estimation, and per-level hit-rate
// tallies for the four-level query hierarchy.
//
// LatencyStats and LevelTally are safe for concurrent use so the parallel
// lookup engine can record observations from many workers; Histogram remains
// single-writer (it is only fed from serial experiment drivers).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyStats accumulates durations with O(1) memory. All methods are safe
// for concurrent use; the zero value is ready.
type LatencyStats struct {
	mu    sync.Mutex
	count uint64
	mean  float64 // nanoseconds
	m2    float64
	min   float64
	max   float64
}

// Observe adds one sample.
func (s *LatencyStats) Observe(d time.Duration) {
	x := float64(d)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	if s.count == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.count)
	s.m2 += delta * (x - s.mean)
}

// snapshot returns a consistent copy of the accumulator fields.
func (s *LatencyStats) snapshot() (count uint64, mean, m2, min, max float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count, s.mean, s.m2, s.min, s.max
}

// Count returns the number of samples.
func (s *LatencyStats) Count() uint64 {
	n, _, _, _, _ := s.snapshot()
	return n
}

// Mean returns the average duration (zero when empty).
func (s *LatencyStats) Mean() time.Duration {
	_, mean, _, _, _ := s.snapshot()
	return time.Duration(mean)
}

// Min returns the smallest sample (zero when empty).
func (s *LatencyStats) Min() time.Duration {
	n, _, _, min, _ := s.snapshot()
	if n == 0 {
		return 0
	}
	return time.Duration(min)
}

// Max returns the largest sample (zero when empty).
func (s *LatencyStats) Max() time.Duration {
	n, _, _, _, max := s.snapshot()
	if n == 0 {
		return 0
	}
	return time.Duration(max)
}

// StdDev returns the sample standard deviation (zero for <2 samples).
func (s *LatencyStats) StdDev() time.Duration {
	n, _, m2, _, _ := s.snapshot()
	if n < 2 {
		return 0
	}
	return time.Duration(math.Sqrt(m2 / float64(n-1)))
}

// Merge folds other into s, as if all of other's samples had been observed
// on s (Chan et al. parallel-variance combination). other is read under its
// own lock, so per-worker shards can merge into a shared total concurrently.
func (s *LatencyStats) Merge(other *LatencyStats) {
	n2u, mean2, m22, min2, max2 := other.snapshot()
	if n2u == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		s.count, s.mean, s.m2, s.min, s.max = n2u, mean2, m22, min2, max2
		return
	}
	n1, n2 := float64(s.count), float64(n2u)
	delta := mean2 - s.mean
	total := n1 + n2
	s.mean += delta * n2 / total
	s.m2 += m22 + delta*delta*n1*n2/total
	s.count += n2u
	if min2 < s.min {
		s.min = min2
	}
	if max2 > s.max {
		s.max = max2
	}
}

// String formats mean/min/max compactly.
func (s *LatencyStats) String() string {
	return fmt.Sprintf("n=%d mean=%v min=%v max=%v",
		s.Count(), s.Mean().Round(time.Microsecond),
		s.Min().Round(time.Microsecond), s.Max().Round(time.Microsecond))
}

// Histogram is a fixed-boundary latency histogram supporting percentile
// estimation by linear interpolation within buckets.
type Histogram struct {
	bounds []time.Duration // ascending upper bounds; implicit +Inf last bucket
	counts []uint64
	total  uint64
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds. An implicit overflow bucket catches samples beyond the last bound.
func NewHistogram(bounds []time.Duration) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("metrics: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("metrics: bounds not ascending at %d", i)
		}
	}
	b := make([]time.Duration, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(bounds)+1)}, nil
}

// DefaultLatencyHistogram covers 1 µs – 10 s in logarithmic steps, suitable
// for the mixed memory/disk/network latencies of the simulator.
func DefaultLatencyHistogram() *Histogram {
	var bounds []time.Duration
	for _, base := range []time.Duration{time.Microsecond, 10 * time.Microsecond,
		100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond,
		100 * time.Millisecond, time.Second} {
		for _, mult := range []time.Duration{1, 2, 5} {
			bounds = append(bounds, base*mult)
		}
	}
	bounds = append(bounds, 10*time.Second)
	h, err := NewHistogram(bounds)
	if err != nil {
		panic(fmt.Sprintf("metrics: default histogram invalid: %v", err))
	}
	return h
}

// Observe adds one sample.
func (h *Histogram) Observe(d time.Duration) {
	idx := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= d })
	h.counts[idx]++
	h.total++
}

// Count returns total samples.
func (h *Histogram) Count() uint64 { return h.total }

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation.
// Samples in the overflow bucket are attributed to the last finite bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.total)
	var cum float64
	for i, c := range h.counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			lo := time.Duration(0)
			if i > 0 {
				lo = h.bounds[min(i-1, len(h.bounds)-1)]
			}
			hi := h.bounds[min(i, len(h.bounds)-1)]
			if hi <= lo {
				return hi
			}
			frac := (target - cum) / float64(c)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// LevelTally counts which level of the four-level hierarchy served each
// query, the raw data behind Fig 13. Counters are atomic, so many lookup
// workers can record concurrently; the zero value is ready. A LevelTally
// must not be copied after first use.
type LevelTally struct {
	counts [5]atomic.Uint64 // index 1..4 = L1..L4
}

// Record notes a query served at level (1–4). Out-of-range levels are
// ignored.
func (t *LevelTally) Record(level int) {
	if level >= 1 && level <= 4 {
		t.counts[level].Add(1)
	}
}

// Total returns the number of recorded queries.
func (t *LevelTally) Total() uint64 {
	var sum uint64
	for l := 1; l <= 4; l++ {
		sum += t.counts[l].Load()
	}
	return sum
}

// Fraction returns the share of queries served at level, in [0,1].
func (t *LevelTally) Fraction(level int) float64 {
	total := t.Total()
	if total == 0 || level < 1 || level > 4 {
		return 0
	}
	return float64(t.counts[level].Load()) / float64(total)
}

// CumulativeFraction returns the share of queries served at or below level.
func (t *LevelTally) CumulativeFraction(level int) float64 {
	total := t.Total()
	if total == 0 {
		return 0
	}
	var sum uint64
	for l := 1; l <= level && l <= 4; l++ {
		sum += t.counts[l].Load()
	}
	return float64(sum) / float64(total)
}

// Count returns raw hits at one level.
func (t *LevelTally) Count(level int) uint64 {
	if level < 1 || level > 4 {
		return 0
	}
	return t.counts[level].Load()
}

// Reset zeroes all level counters.
func (t *LevelTally) Reset() {
	for l := range t.counts {
		t.counts[l].Store(0)
	}
}
