package group

import (
	"strconv"
	"testing"

	"ghba/internal/bloom"
	"ghba/internal/mds"
)

// testNode builds a small node for group tests.
func testNode(t *testing.T, id int) *mds.Node {
	t.Helper()
	cfg := mds.DefaultConfig()
	cfg.ExpectedFiles = 500
	cfg.LRUCapacity = 64
	n, err := mds.NewNode(id, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.AddFile("/node" + strconv.Itoa(id) + "/file")
	return n
}

// originFilter builds a replica filter for an external origin.
func originFilter(t *testing.T, origin int) *bloom.Filter {
	t.Helper()
	f, err := bloom.NewForCapacity(500, 16)
	if err != nil {
		t.Fatal(err)
	}
	f.AddString("/node" + strconv.Itoa(origin) + "/file")
	return f
}

// buildGroup creates a group with the given member IDs, registering all
// members in each other's IDBFAs.
func buildGroup(t *testing.T, groupID int, memberIDs ...int) *Group {
	t.Helper()
	g := New(groupID)
	for _, id := range memberIDs {
		node := testNode(t, id)
		g.members[id] = node
	}
	for _, n := range g.members {
		for _, id := range g.Members() {
			if err := n.IDBFA().AddMember(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

// install distributes replicas of the given origins into the group.
func install(t *testing.T, g *Group, origins ...int) {
	t.Helper()
	for _, o := range origins {
		if _, err := g.InstallReplica(o, originFilter(t, o)); err != nil {
			t.Fatalf("InstallReplica(%d): %v", o, err)
		}
	}
}

// allIDs builds the full population list: members of all groups + externals.
func allIDs(groups []*Group, externals []int) []int {
	var ids []int
	for _, g := range groups {
		ids = append(ids, g.Members()...)
	}
	return append(ids, externals...)
}

func TestGroupBasics(t *testing.T) {
	g := buildGroup(t, 1, 0, 1, 2)
	if g.ID() != 1 || g.Size() != 3 {
		t.Errorf("ID/Size = %d/%d", g.ID(), g.Size())
	}
	if !g.HasMember(1) || g.HasMember(9) {
		t.Error("HasMember wrong")
	}
	if g.Member(2) == nil || g.Member(9) != nil {
		t.Error("Member wrong")
	}
	if len(g.Nodes()) != 3 {
		t.Error("Nodes wrong")
	}
}

func TestInstallReplicaBalances(t *testing.T) {
	g := buildGroup(t, 1, 0, 1, 2)
	install(t, g, 10, 11, 12, 13, 14, 15)
	for _, id := range g.Members() {
		if c := g.Member(id).ReplicaCount(); c != 2 {
			t.Errorf("member %d holds %d replicas, want 2", id, c)
		}
	}
}

func TestInstallReplicaRejectsMemberAndDuplicate(t *testing.T) {
	g := buildGroup(t, 1, 0, 1)
	if _, err := g.InstallReplica(0, originFilter(t, 0)); err == nil {
		t.Error("replica of own member accepted")
	}
	install(t, g, 5)
	if _, err := g.InstallReplica(5, originFilter(t, 5)); err == nil {
		t.Error("duplicate origin accepted")
	}
}

func TestInstallReplicaEmptyGroup(t *testing.T) {
	g := New(9)
	if _, err := g.InstallReplica(3, originFilter(t, 3)); err == nil {
		t.Error("install into empty group succeeded")
	}
}

func TestHolderOfAndLocate(t *testing.T) {
	g := buildGroup(t, 1, 0, 1, 2)
	install(t, g, 10, 11, 12)
	holder := g.HolderOf(11)
	if holder < 0 {
		t.Fatal("HolderOf lost origin 11")
	}
	candidates := g.LocateViaIDBFA(11)
	found := false
	for _, c := range candidates {
		if c == holder {
			found = true
		}
	}
	if !found {
		t.Errorf("IDBFA candidates %v do not include true holder %d", candidates, holder)
	}
	if g.HolderOf(99) != -1 {
		t.Error("HolderOf of unknown origin != -1")
	}
}

func TestUpdateReplica(t *testing.T) {
	g := buildGroup(t, 1, 0, 1, 2)
	install(t, g, 10)
	fresh := originFilter(t, 10)
	fresh.AddString("/node10/newfile")
	rep, err := g.UpdateReplica(10, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Messages < 1 {
		t.Error("update cost no messages")
	}
	holder := g.Member(g.HolderOf(10))
	if !holder.Replicas().Get(10).ContainsString("/node10/newfile") {
		t.Error("update did not reach holder")
	}
	if _, err := g.UpdateReplica(99, fresh); err == nil {
		t.Error("update of unknown origin succeeded")
	}
}

func TestRemoveOrigin(t *testing.T) {
	g := buildGroup(t, 1, 0, 1, 2)
	install(t, g, 10, 11)
	rep := g.RemoveOrigin(10)
	if rep.Messages == 0 {
		t.Error("removal cost no messages")
	}
	if g.HolderOf(10) != -1 {
		t.Error("origin still held after removal")
	}
	if len(g.LocateViaIDBFA(10)) != 0 {
		t.Error("IDBFA still locates removed origin")
	}
	// Removing an unknown origin is a no-op.
	if rep := g.RemoveOrigin(42); rep.Messages != 0 || rep.ReplicasMigrated != 0 {
		t.Error("removal of unknown origin cost something")
	}
}

func TestCoverageError(t *testing.T) {
	g := buildGroup(t, 1, 0, 1, 2)
	install(t, g, 10, 11)
	ids := []int{0, 1, 2, 10, 11}
	if err := g.CoverageError(ids); err != nil {
		t.Errorf("coverage should hold: %v", err)
	}
	if err := g.CoverageError(append(ids, 99)); err == nil {
		t.Error("missing origin 99 not detected")
	}
	// Duplicate coverage: install origin 10 directly on a second member.
	g.Member(1).InstallReplica(10, originFilter(t, 10))
	if g.HolderOf(10) < 0 {
		t.Fatal("setup broken")
	}
	if err := g.CoverageError(ids); err == nil {
		t.Error("double coverage not detected")
	}
}

func TestJoinRebalancesReplicas(t *testing.T) {
	// 3 members, 12 external origins → 4 each. Newcomer joins (total 16
	// MDSs: 4 members + 12 external) → target ⌈12/4⌉ = 3 each.
	g := buildGroup(t, 1, 0, 1, 2)
	externals := []int{10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21}
	install(t, g, externals...)
	newcomer := testNode(t, 3)
	rep, err := g.Join(newcomer, 16)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 4 {
		t.Fatalf("Size = %d after join", g.Size())
	}
	if rep.ReplicasMigrated != 3 {
		t.Errorf("migrated %d replicas, want 3 (offload to newcomer)", rep.ReplicasMigrated)
	}
	if newcomer.ReplicaCount() != 3 {
		t.Errorf("newcomer holds %d, want 3", newcomer.ReplicaCount())
	}
	if err := g.CoverageError(allIDs([]*Group{g}, externals)); err != nil {
		t.Errorf("coverage broken after join: %v", err)
	}
	// IDBFA must locate every origin at its actual holder.
	for _, o := range externals {
		holder := g.HolderOf(o)
		cands := g.LocateViaIDBFA(o)
		ok := false
		for _, c := range cands {
			if c == holder {
				ok = true
			}
		}
		if !ok {
			t.Errorf("origin %d: IDBFA %v misses holder %d", o, cands, holder)
		}
	}
}

func TestJoinRejectsDuplicateAndNil(t *testing.T) {
	g := buildGroup(t, 1, 0, 1)
	if _, err := g.Join(nil, 10); err == nil {
		t.Error("nil node accepted")
	}
	if _, err := g.Join(g.Member(0), 10); err == nil {
		t.Error("existing member accepted")
	}
}

func TestLeaveMigratesReplicas(t *testing.T) {
	g := buildGroup(t, 1, 0, 1, 2)
	externals := []int{10, 11, 12, 13, 14, 15}
	install(t, g, externals...)
	leaving := g.Member(1)
	had := leaving.ReplicaCount()
	if had == 0 {
		t.Fatal("setup: leaving member holds nothing")
	}
	rep, err := g.Leave(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplicasMigrated != had {
		t.Errorf("migrated %d, want %d", rep.ReplicasMigrated, had)
	}
	if g.Size() != 2 {
		t.Errorf("Size = %d", g.Size())
	}
	// Coverage: remaining members + externals, minus departed member 1.
	ids := append([]int{0, 2}, externals...)
	if err := g.CoverageError(ids); err != nil {
		t.Errorf("coverage broken after leave: %v", err)
	}
	if _, err := g.Leave(42); err == nil {
		t.Error("leave of non-member succeeded")
	}
}

func TestLeaveLastMember(t *testing.T) {
	g := buildGroup(t, 1, 0)
	if _, err := g.Leave(0); err != nil {
		t.Fatal(err)
	}
	if g.Size() != 0 {
		t.Error("group not empty")
	}
}

func TestRebalanceEvensLoad(t *testing.T) {
	g := buildGroup(t, 1, 0, 1, 2)
	// Pile 9 replicas onto member 0 directly.
	for o := 10; o < 19; o++ {
		g.Member(0).InstallReplica(o, originFilter(t, o))
		g.grantAll(0, o)
	}
	rep := g.Rebalance()
	if rep.ReplicasMigrated == 0 {
		t.Fatal("rebalance moved nothing")
	}
	for _, id := range g.Members() {
		if c := g.Member(id).ReplicaCount(); c != 3 {
			t.Errorf("member %d holds %d, want 3", id, c)
		}
	}
	// IDBFA still consistent.
	for o := 10; o < 19; o++ {
		holder := g.HolderOf(o)
		ok := false
		for _, c := range g.LocateViaIDBFA(o) {
			if c == holder {
				ok = true
			}
		}
		if !ok {
			t.Errorf("IDBFA lost origin %d after rebalance", o)
		}
	}
}

func TestSplitMaintainsCoverage(t *testing.T) {
	const maxM = 5
	g := buildGroup(t, 1, 0, 1, 2, 3, 4)
	externals := []int{10, 11, 12, 13, 14, 15, 16}
	install(t, g, externals...)
	newcomer := testNode(t, 5)
	b, rep, err := g.Split(2, newcomer, maxM)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplicasMigrated == 0 || rep.Messages == 0 {
		t.Error("split reported no work")
	}
	// Sizes: A = M−⌊M/2⌋ = 3, B = ⌊M/2⌋+1 = 3.
	if g.Size() != 3 || b.Size() != 3 {
		t.Errorf("sizes = %d/%d, want 3/3", g.Size(), b.Size())
	}
	if !b.HasMember(5) {
		t.Error("newcomer not in new group")
	}
	// Both groups must cover the full population independently.
	population := allIDs([]*Group{g, b}, externals)
	if err := g.CoverageError(population); err != nil {
		t.Errorf("group A coverage: %v", err)
	}
	if err := b.CoverageError(population); err != nil {
		t.Errorf("group B coverage: %v", err)
	}
}

func TestSplitPreconditions(t *testing.T) {
	g := buildGroup(t, 1, 0, 1)
	if _, _, err := g.Split(2, nil, 5); err == nil {
		t.Error("nil newcomer accepted")
	}
	if _, _, err := g.Split(2, testNode(t, 9), 5); err == nil {
		t.Error("split below M accepted")
	}
	full := buildGroup(t, 3, 0, 1, 2, 3, 4)
	if _, _, err := full.Split(4, full.Member(0), 5); err == nil {
		t.Error("member as newcomer accepted")
	}
}

func TestMergeDeduplicatesAndCovers(t *testing.T) {
	// Two 2-member groups, each independently mirroring the other side and
	// the shared externals.
	a := buildGroup(t, 1, 0, 1)
	b := buildGroup(t, 2, 2, 3)
	externals := []int{10, 11, 12}
	install(t, a, externals...)
	install(t, b, externals...)
	install(t, a, 2, 3) // a mirrors b's members
	install(t, b, 0, 1) // b mirrors a's members
	population := []int{0, 1, 2, 3, 10, 11, 12}
	if err := a.CoverageError(population); err != nil {
		t.Fatalf("setup: %v", err)
	}

	rep, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 4 || b.Size() != 0 {
		t.Errorf("sizes after merge = %d/%d", a.Size(), b.Size())
	}
	if err := a.CoverageError(population); err != nil {
		t.Errorf("merged coverage: %v", err)
	}
	// Each external origin must be held exactly once; replicas of members
	// must be gone.
	for _, memberID := range []int{0, 1, 2, 3} {
		if a.HolderOf(memberID) != -1 {
			t.Errorf("replica of internal member %d survived merge", memberID)
		}
	}
	_ = rep
}

func TestMergeRejectsOverlapAndSelf(t *testing.T) {
	a := buildGroup(t, 1, 0, 1)
	if _, err := a.Merge(a); err == nil {
		t.Error("self-merge accepted")
	}
	if _, err := a.Merge(nil); err == nil {
		t.Error("nil merge accepted")
	}
	b := buildGroup(t, 2, 1, 2) // overlapping member 1
	if _, err := a.Merge(b); err == nil {
		t.Error("overlapping merge accepted")
	}
}

func TestReportAdd(t *testing.T) {
	r := Report{ReplicasMigrated: 1, Messages: 2}
	r.Add(Report{ReplicasMigrated: 3, Messages: 4})
	if r.ReplicasMigrated != 4 || r.Messages != 6 {
		t.Errorf("Add = %+v", r)
	}
}
