// Package group implements G-HBA's group layer: the assignment of
// Bloom-filter replicas to group members, the light-weight migration that
// rebalances replicas when an MDS joins or leaves (Section 3.1, Figs 3–4),
// and group splitting and merging (Section 3.2, Fig 5).
//
// The invariant every operation preserves is the paper's "global mirror
// image": the union of a group's member IDs and the origins of the replicas
// its members hold covers every MDS in the system, with each replica stored
// on exactly one member. Member IDBFAs stay consistent with the actual
// replica placement so updates can be routed to the right holder.
//
// Concurrency: membership operations (Join, Leave, Split, Merge,
// InstallReplica, RemoveOrigin) require external exclusive locking — the
// cluster layer serializes them behind its topology write lock. Replica
// refreshes (UpdateReplica) and reads (HolderOf, LocateViaIDBFA,
// ReplicaOrigins, CoverageError) may run concurrently from many shippers
// and lookup workers while membership is stable: the holder arrays they
// touch synchronize internally, and the IDBFAs are read-only between
// reconfigurations.
package group

import (
	"fmt"
	"sort"

	"ghba/internal/bloom"
	"ghba/internal/mds"
)

// Report tallies the cost of a reconfiguration operation in the units the
// paper charts: replicas moved over the network (Fig 11) and total messages
// exchanged (Fig 15).
type Report struct {
	// ReplicasMigrated counts Bloom-filter replicas that crossed the
	// network to a new holder.
	ReplicasMigrated int
	// Messages counts all protocol messages: migrations, IDBFA multicasts,
	// membership announcements, and replica distribution.
	Messages int
}

// Add folds another report into r.
func (r *Report) Add(other Report) {
	r.ReplicasMigrated += other.ReplicasMigrated
	r.Messages += other.Messages
}

// Group is one MDS group.
type Group struct {
	id      int
	members map[int]*mds.Node
}

// New creates an empty group.
func New(id int) *Group {
	return &Group{id: id, members: make(map[int]*mds.Node)}
}

// ID returns the group identifier.
func (g *Group) ID() int { return g.id }

// Size returns the number of members (the paper's M′).
func (g *Group) Size() int { return len(g.members) }

// Members returns member IDs in ascending order.
func (g *Group) Members() []int {
	ids := make([]int, 0, len(g.members))
	for id := range g.members {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Member returns the node with the given ID, or nil.
func (g *Group) Member(id int) *mds.Node { return g.members[id] }

// HasMember reports whether id is in the group.
func (g *Group) HasMember(id int) bool {
	_, ok := g.members[id]
	return ok
}

// Nodes returns the member nodes in ascending ID order.
func (g *Group) Nodes() []*mds.Node {
	out := make([]*mds.Node, 0, len(g.members))
	for _, id := range g.Members() {
		out = append(out, g.members[id])
	}
	return out
}

// lightestMember returns the member holding the fewest replicas, breaking
// ties by ascending ID for determinism. Nil when the group is empty.
func (g *Group) lightestMember() *mds.Node {
	var best *mds.Node
	for _, id := range g.Members() {
		n := g.members[id]
		if best == nil || n.ReplicaCount() < best.ReplicaCount() {
			best = n
		}
	}
	return best
}

// grantAll records on every member's IDBFA that holder stores origin's
// replica. Pure state maintenance: message accounting is done by the public
// operations, which batch IDBFA changes into one multicast as the paper
// describes.
func (g *Group) grantAll(holder, origin int) {
	for id, n := range g.members {
		if err := n.IDBFA().Grant(holder, origin); err != nil {
			panic(fmt.Sprintf("group %d: IDBFA grant(%d,%d) on member %d: %v",
				g.id, holder, origin, id, err))
		}
	}
}

// revokeAll removes the (holder, origin) entry from every member's IDBFA.
func (g *Group) revokeAll(holder, origin int) {
	for id, n := range g.members {
		if err := n.IDBFA().Revoke(holder, origin); err != nil {
			panic(fmt.Sprintf("group %d: IDBFA revoke(%d,%d) on member %d: %v",
				g.id, holder, origin, id, err))
		}
	}
}

// InstallReplica places origin's replica on the lightest member (Fig 3) and
// updates every member's IDBFA. It is an error to install a replica of a
// current member or a duplicate origin.
func (g *Group) InstallReplica(origin int, f *bloom.Filter) (Report, error) {
	var rep Report
	if g.HasMember(origin) {
		return rep, fmt.Errorf("group %d: refusing replica of own member %d", g.id, origin)
	}
	if holder := g.HolderOf(origin); holder >= 0 {
		return rep, fmt.Errorf("group %d: origin %d already held by member %d", g.id, origin, holder)
	}
	target := g.lightestMember()
	if target == nil {
		return rep, fmt.Errorf("group %d: empty group cannot hold replicas", g.id)
	}
	target.InstallReplica(origin, f)
	g.grantAll(target.ID(), origin)
	rep.Messages++               // the replica transfer itself
	rep.Messages += g.Size() - 1 // IDBFA multicast to the other members
	return rep, nil
}

// HolderOf returns the ID of the member holding origin's replica, or -1.
// It consults actual replica placement (ground truth), not the IDBFA.
func (g *Group) HolderOf(origin int) int {
	for _, id := range g.Members() {
		if g.members[id].Replicas().Has(origin) {
			return id
		}
	}
	return -1
}

// LocateViaIDBFA resolves origin's holder the way the protocol does: by
// querying a member's IDBFA. False positives may return extra candidates;
// the caller probes them in order and drops misses, paying one message per
// false candidate.
func (g *Group) LocateViaIDBFA(origin int) []int {
	for _, n := range g.members {
		return n.IDBFA().Locate(origin)
	}
	return nil
}

// UpdateReplica refreshes origin's replica in place via the IDBFA route,
// returning the messages spent (1 per candidate probed). Unknown origins are
// an error.
func (g *Group) UpdateReplica(origin int, f *bloom.Filter) (Report, error) {
	var rep Report
	for _, candidate := range g.LocateViaIDBFA(origin) {
		rep.Messages++
		n := g.members[candidate]
		if n == nil {
			continue
		}
		if old := n.Replicas().Get(origin); old != nil {
			n.InstallReplica(origin, f)
			return rep, nil
		}
		// False positive: candidate drops the request (light penalty).
	}
	return rep, fmt.Errorf("group %d: no member holds replica of origin %d", g.id, origin)
}

// RemoveOrigin drops origin's replica wherever it is held (used when that
// MDS leaves the system) and clears IDBFA entries.
func (g *Group) RemoveOrigin(origin int) Report {
	var rep Report
	holder := g.HolderOf(origin)
	if holder < 0 {
		return rep
	}
	g.members[holder].DropReplica(origin)
	g.revokeAll(holder, origin)
	rep.Messages++               // deletion request to the holder
	rep.Messages += g.Size() - 1 // IDBFA multicast to the other members
	return rep
}

// ReplicaOrigins returns the origins of all replicas held by the group, in
// ascending order.
func (g *Group) ReplicaOrigins() []int {
	var out []int
	for _, n := range g.members {
		out = append(out, n.Replicas().IDs()...)
	}
	sort.Ints(out)
	return out
}

// CoverageError verifies the global-mirror-image invariant against the full
// MDS population: every ID must be either a member or a held origin, exactly
// once. A nil return means the invariant holds.
func (g *Group) CoverageError(allIDs []int) error {
	seen := make(map[int]int)
	for _, id := range g.Members() {
		seen[id]++
	}
	for _, o := range g.ReplicaOrigins() {
		seen[o]++
	}
	for _, id := range allIDs {
		switch seen[id] {
		case 0:
			return fmt.Errorf("group %d: MDS %d not covered", g.id, id)
		case 1:
			// covered exactly once
		default:
			return fmt.Errorf("group %d: MDS %d covered %d times", g.id, id, seen[id])
		}
	}
	return nil
}
