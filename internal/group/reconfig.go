package group

import (
	"fmt"

	"ghba/internal/mds"
)

// Join adds node to the group, performing the light-weight migration of
// Section 3.1 (Fig 4a): each existing member offloads its excess over
// ⌈(external)/(M′+1)⌉ replicas to the newcomer, the IDs of migrated replicas
// move between ID filters, and the updated IDBFA is multicast to the group.
//
// totalMDSs is the system-wide MDS count after the join; it determines the
// per-member replica target (N−M′)/M′ of the paper. The caller (the cluster
// layer) is responsible for distributing the newcomer's own replica to the
// other groups and for seeding the newcomer's replicas of *their* members —
// within this group the newcomer only receives offloaded replicas.
func (g *Group) Join(node *mds.Node, totalMDSs int) (Report, error) {
	var rep Report
	if node == nil {
		return rep, fmt.Errorf("group %d: nil node", g.id)
	}
	if g.HasMember(node.ID()) {
		return rep, fmt.Errorf("group %d: MDS %d already a member", g.id, node.ID())
	}

	// Hand the newcomer the group's current IDBFA state, then register it
	// in every member's IDBFA (including its own copy).
	if existing := g.lightestMember(); existing != nil {
		*node.IDBFA() = *existing.IDBFA().Clone()
	}
	if !node.IDBFA().HasMember(node.ID()) {
		if err := node.IDBFA().AddMember(node.ID()); err != nil {
			return rep, fmt.Errorf("group %d: registering newcomer: %w", g.id, err)
		}
	}
	for _, n := range g.members {
		if !n.IDBFA().HasMember(node.ID()) {
			if err := n.IDBFA().AddMember(node.ID()); err != nil {
				return rep, fmt.Errorf("group %d: registering newcomer on %d: %w", g.id, n.ID(), err)
			}
		}
	}
	rep.Messages++ // IDBFA handoff to the newcomer

	newSize := g.Size() + 1
	external := totalMDSs - newSize
	if external < 0 {
		external = 0
	}
	// The newcomer's fair share is (N−M′)/(M′+1) replicas (Section 3.1);
	// they are taken one at a time from whichever member is currently
	// heaviest, which both balances the group and matches the paper's
	// migration count.
	share := external / newSize

	for i := 0; i < share; i++ {
		heaviest := g.heaviestMember()
		if heaviest == nil || heaviest.ReplicaCount() == 0 {
			break
		}
		for origin, f := range heaviest.Replicas().PopRandom(1) {
			node.InstallReplica(origin, f)
			g.revokeAll(heaviest.ID(), origin)
			g.grantAll(node.ID(), origin)
			// The newcomer is not yet in g.members; mirror the IDBFA
			// changes onto its own copy. Both calls can only fail for an
			// unregistered member, which Join registered above.
			if err := node.IDBFA().Revoke(heaviest.ID(), origin); err != nil {
				return rep, fmt.Errorf("group %d: newcomer IDBFA revoke: %w", g.id, err)
			}
			if err := node.IDBFA().Grant(node.ID(), origin); err != nil {
				return rep, fmt.Errorf("group %d: newcomer IDBFA grant: %w", g.id, err)
			}
			rep.ReplicasMigrated++
			rep.Messages++ // the replica transfer
		}
	}

	g.members[node.ID()] = node
	// One batched IDBFA multicast to the rest of the group.
	rep.Messages += g.Size() - 1
	return rep, nil
}

// Leave removes the member with the given ID (Fig 4b): its replicas migrate
// to the lightest remaining members, its ID filter is removed from every
// IDBFA, and the departing node's replica array is emptied. The caller
// removes the departed MDS's own replica from the *other* groups and
// redistributes responsibility for the files it homed.
func (g *Group) Leave(id int) (Report, error) {
	var rep Report
	node, ok := g.members[id]
	if !ok {
		return rep, fmt.Errorf("group %d: MDS %d is not a member", g.id, id)
	}
	delete(g.members, id)

	// Migrate the departing member's replicas to the lightest survivors.
	for origin, f := range node.Replicas().PopRandom(node.ReplicaCount()) {
		g.revokeAll(id, origin)
		target := g.lightestMember()
		if target == nil {
			// Last member leaving: replicas evaporate with the group.
			continue
		}
		target.InstallReplica(origin, f)
		g.grantAll(target.ID(), origin)
		rep.ReplicasMigrated++
		rep.Messages++
	}

	// Remove the departed member's ID filter from every survivor's IDBFA.
	for _, n := range g.members {
		n.IDBFA().RemoveMember(id)
	}
	if g.Size() > 0 {
		rep.Messages += g.Size() - 1 // batched IDBFA multicast
	}
	return rep, nil
}

// heaviestMember returns the member holding the most replicas, breaking
// ties by ascending ID. Nil when the group is empty.
func (g *Group) heaviestMember() *mds.Node {
	var best *mds.Node
	for _, id := range g.Members() {
		n := g.members[id]
		if best == nil || n.ReplicaCount() > best.ReplicaCount() {
			best = n
		}
	}
	return best
}
