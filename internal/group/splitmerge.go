package group

import (
	"fmt"
	"sort"

	"ghba/internal/mds"
)

// rebuildIDBFA reconstructs every member's IDBFA from the actual replica
// placement. Split and merge reshape placement wholesale; rebuilding is the
// simplest way to restore consistency, and corresponds to the paper's
// "multicast ID Bloom Filter Array" step.
func (g *Group) rebuildIDBFA() {
	for _, n := range g.members {
		fresh := n.IDBFA()
		// Reset in place by removing and re-adding members.
		for _, m := range fresh.Members() {
			fresh.RemoveMember(m)
		}
		for _, id := range g.Members() {
			if err := fresh.AddMember(id); err != nil {
				panic(fmt.Sprintf("group %d: rebuild IDBFA add member %d: %v", g.id, id, err))
			}
		}
		for _, holderID := range g.Members() {
			holder := g.members[holderID]
			for _, origin := range holder.Replicas().IDs() {
				if err := fresh.Grant(holderID, origin); err != nil {
					panic(fmt.Sprintf("group %d: rebuild IDBFA grant: %v", g.id, err))
				}
			}
		}
	}
}

// Rebalance evens replica counts across members by moving replicas from the
// heaviest to the lightest member until the spread is at most one. Returns
// the migration report.
func (g *Group) Rebalance() Report {
	var rep Report
	if g.Size() < 2 {
		return rep
	}
	for {
		ids := g.Members()
		sort.Slice(ids, func(i, j int) bool {
			ri := g.members[ids[i]].ReplicaCount()
			rj := g.members[ids[j]].ReplicaCount()
			if ri != rj {
				return ri < rj
			}
			return ids[i] < ids[j]
		})
		lightest, heaviest := g.members[ids[0]], g.members[ids[len(ids)-1]]
		if heaviest.ReplicaCount()-lightest.ReplicaCount() <= 1 {
			break
		}
		for origin, f := range heaviest.Replicas().PopRandom(1) {
			lightest.InstallReplica(origin, f)
			g.revokeAll(heaviest.ID(), origin)
			g.grantAll(lightest.ID(), origin)
			rep.ReplicasMigrated++
			rep.Messages++
		}
	}
	if rep.ReplicasMigrated > 0 {
		rep.Messages += g.Size() - 1 // batched IDBFA multicast
	}
	return rep
}

// Split handles the arrival of newcomer at a group that is already at the
// maximum size M (Section 3.2, Fig 5a): the group divides into itself
// (keeping M−⌊M/2⌋ members) and a new group (the ⌊M/2⌋ highest-ID members
// plus the newcomer). Replica copies are exchanged so that each side again
// holds a complete global mirror image:
//
//   - external origins held only by the other side are copied over,
//   - each side receives fresh replicas of the other side's members (they
//     ceased being groupmates and became external MDSs).
//
// Returns the new group and the migration report. The caller announces the
// new group to the rest of the system and distributes the newcomer's own
// replica to all other groups.
func (g *Group) Split(newGroupID int, newcomer *mds.Node, maxGroupSize int) (*Group, Report, error) {
	var rep Report
	if newcomer == nil {
		return nil, rep, fmt.Errorf("group %d: nil newcomer", g.id)
	}
	if g.Size() < maxGroupSize {
		return nil, rep, fmt.Errorf("group %d: split with %d < M=%d members", g.id, g.Size(), maxGroupSize)
	}
	if g.HasMember(newcomer.ID()) {
		return nil, rep, fmt.Errorf("group %d: newcomer %d already a member", g.id, newcomer.ID())
	}

	m := g.Size()
	moveCount := m / 2 // ⌊M/2⌋ members move to the new group
	ids := g.Members()
	moving := ids[len(ids)-moveCount:]

	b := New(newGroupID)
	b.members[newcomer.ID()] = newcomer
	for _, id := range moving {
		b.members[id] = g.members[id]
		delete(g.members, id)
	}

	// Exchange external-origin copies: whichever side lacks an origin both
	// groups must mirror copies it from the side that has it.
	for _, pair := range []struct{ dst, src *Group }{{g, b}, {b, g}} {
		for _, origin := range pair.src.ReplicaOrigins() {
			if pair.dst.HasMember(origin) || pair.dst.HolderOf(origin) >= 0 {
				continue
			}
			srcHolder := pair.src.members[pair.src.HolderOf(origin)]
			target := pair.dst.lightestMember()
			target.InstallReplica(origin, srcHolder.Replicas().Get(origin).Clone())
			rep.ReplicasMigrated++
			rep.Messages++
		}
	}

	// Each side needs replicas of the other side's members.
	for _, pair := range []struct{ dst, src *Group }{{g, b}, {b, g}} {
		for _, id := range pair.src.Members() {
			if pair.dst.HolderOf(id) >= 0 {
				continue
			}
			target := pair.dst.lightestMember()
			target.InstallReplica(id, pair.src.members[id].Ship())
			rep.ReplicasMigrated++
			rep.Messages++
		}
	}

	// Drop any replica whose origin ended up inside its own group (a moved
	// member's replica of a fellow mover is impossible by construction, but
	// external origins cannot alias members either; this is a guard).
	for _, grp := range []*Group{g, b} {
		for _, id := range grp.Members() {
			node := grp.members[id]
			for _, origin := range node.Replicas().IDs() {
				if grp.HasMember(origin) {
					node.DropReplica(origin)
				}
			}
		}
	}

	g.rebuildIDBFA()
	b.rebuildIDBFA()
	rep.Add(g.Rebalance())
	rep.Add(b.Rebalance())
	rep.Messages += g.Size() - 1 // IDBFA multicast in A
	rep.Messages += b.Size() - 1 // IDBFA multicast in B
	return b, rep, nil
}

// Merge absorbs other into g (Section 3.2, Fig 5b), used when departures
// shrink two groups enough that their union fits within M. Replicas of MDSs
// that are now groupmates are dropped, duplicate external replicas are
// deduplicated, IDBFAs are rebuilt, and replica counts rebalanced.
func (g *Group) Merge(other *Group) (Report, error) {
	var rep Report
	if other == nil || other == g {
		return rep, fmt.Errorf("group %d: invalid merge partner", g.id)
	}
	for _, id := range other.Members() {
		if g.HasMember(id) {
			return rep, fmt.Errorf("group %d: member %d present in both groups", g.id, id)
		}
		g.members[id] = other.members[id]
		delete(other.members, id)
	}

	// Drop replicas of now-internal origins and deduplicate external
	// origins (the union holds two copies of everything both sides
	// mirrored; keep the first holder in ID order).
	seen := make(map[int]int) // origin → holder
	for _, id := range g.Members() {
		node := g.members[id]
		for _, origin := range node.Replicas().IDs() {
			if g.HasMember(origin) {
				node.DropReplica(origin)
				continue
			}
			if _, dup := seen[origin]; dup {
				node.DropReplica(origin)
				continue
			}
			seen[origin] = id
		}
	}

	g.rebuildIDBFA()
	rep.Add(g.Rebalance())
	if g.Size() > 0 {
		rep.Messages += g.Size() - 1 // IDBFA multicast
	}
	return rep, nil
}
