package simnet

import (
	"sync"
	"testing"
	"time"
)

func TestDefaultCostModelValid(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatalf("default cost model invalid: %v", err)
	}
}

func TestValidateRejectsNonPositive(t *testing.T) {
	c := DefaultCostModel()
	c.MemProbe = 0
	if err := c.Validate(); err == nil {
		t.Error("zero MemProbe accepted")
	}
	c = DefaultCostModel()
	c.DiskRead = -time.Millisecond
	if err := c.Validate(); err == nil {
		t.Error("negative DiskRead accepted")
	}
}

func TestMulticastLatency(t *testing.T) {
	c := DefaultCostModel()
	if c.Multicast(0) != 0 {
		t.Error("zero fanout costs non-zero")
	}
	if c.Multicast(-3) != 0 {
		t.Error("negative fanout costs non-zero")
	}
	// One receiver: depth ⌈log2(2)⌉ = 1 → one RTT.
	if got := c.Multicast(1); got != c.UnicastRTT {
		t.Errorf("Multicast(1) = %v, want %v", got, c.UnicastRTT)
	}
	// Tree depth grows logarithmically, not linearly.
	d7, d100 := c.Multicast(7), c.Multicast(100)
	if d7 != 3*c.UnicastRTT {
		t.Errorf("Multicast(7) = %v, want %v", d7, 3*c.UnicastRTT)
	}
	if d100 != 7*c.UnicastRTT {
		t.Errorf("Multicast(100) = %v, want %v", d100, 7*c.UnicastRTT)
	}
	if d100 >= 100*c.UnicastRTT/2 {
		t.Error("multicast cost is not sublinear")
	}
}

func TestMulticastMonotonic(t *testing.T) {
	c := DefaultCostModel()
	prev := time.Duration(0)
	for fanout := 1; fanout <= 256; fanout *= 2 {
		cur := c.Multicast(fanout)
		if cur < prev {
			t.Fatalf("Multicast(%d) = %v < previous %v", fanout, cur, prev)
		}
		prev = cur
	}
}

func TestMsgTypeString(t *testing.T) {
	names := map[MsgType]string{
		MsgQueryUnicast:     "query-unicast",
		MsgQueryMulticast:   "query-multicast",
		MsgReplicaMigration: "replica-migration",
		MsgReplicaUpdate:    "replica-update",
		MsgIDBFAUpdate:      "idbfa-update",
		MsgMembership:       "membership",
	}
	for typ, want := range names {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
	if MsgType(99).String() == "" {
		t.Error("unknown type produced empty string")
	}
}

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	c.Add(MsgReplicaMigration, 5)
	c.Add(MsgReplicaMigration, 2)
	c.Add(MsgQueryUnicast, 1)
	if got := c.Get(MsgReplicaMigration); got != 7 {
		t.Errorf("Get = %d, want 7", got)
	}
	if got := c.Total(); got != 8 {
		t.Errorf("Total = %d, want 8", got)
	}
	snap := c.Snapshot()
	if len(snap) != 2 || snap[MsgReplicaMigration] != 7 {
		t.Errorf("Snapshot = %v", snap)
	}
	c.Reset()
	if c.Total() != 0 {
		t.Error("Reset left counts")
	}
}

func TestCounterIgnoresInvalidTypes(t *testing.T) {
	c := NewCounter()
	c.Add(MsgType(0), 3)
	c.Add(MsgType(1000), 3)
	if c.Total() != 0 {
		t.Error("invalid types were counted")
	}
	if c.Get(MsgType(0)) != 0 || c.Get(MsgType(1000)) != 0 {
		t.Error("Get of invalid type non-zero")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(MsgQueryMulticast, 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get(MsgQueryMulticast); got != workers*per {
		t.Errorf("concurrent count = %d, want %d", got, workers*per)
	}
}
