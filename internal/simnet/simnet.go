// Package simnet models the network and storage costs of the simulated MDS
// cluster: a parameterized latency model (memory probe, disk access, LAN
// round trip, tree multicast) and message accounting used to reproduce the
// paper's overhead figures (Figs 11, 12, 15).
//
// The absolute constants are stand-ins for the authors' 2007 testbed; every
// experiment in this repository reports relative behaviour (who wins, by what
// factor, where curves cross), which is insensitive to the constants within
// wide ranges. All parameters are exported so studies can sweep them.
package simnet

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// CostModel holds the latency parameters of the simulated environment.
type CostModel struct {
	// MemProbe is the cost of probing one memory-resident Bloom filter.
	MemProbe time.Duration
	// DiskRead is the cost of one random disk access: fetching a
	// disk-resident filter page or verifying metadata existence on disk.
	DiskRead time.Duration
	// UnicastRTT is one request/response round trip between two MDSs.
	UnicastRTT time.Duration
	// ClientRTT is the client-to-MDS round trip added to every lookup.
	ClientRTT time.Duration
	// MsgProc is the CPU cost of receiving, parsing and answering one
	// protocol message at a server. Multicasts consume this on every
	// receiver, which is why over-large groups hurt throughput: each
	// escalated query burns (M−1)·MsgProc of group service capacity.
	MsgProc time.Duration
}

// DefaultCostModel returns constants representative of a 2007-era gigabit
// LAN cluster with commodity disks: ~1 µs per in-memory filter probe, 5 ms
// random disk access, 200 µs node-to-node RTT.
func DefaultCostModel() CostModel {
	return CostModel{
		MemProbe:   200 * time.Nanosecond,
		DiskRead:   5 * time.Millisecond,
		UnicastRTT: 200 * time.Microsecond,
		ClientRTT:  200 * time.Microsecond,
		MsgProc:    50 * time.Microsecond,
	}
}

// Validate reports whether all parameters are positive.
func (c CostModel) Validate() error {
	if c.MemProbe <= 0 || c.DiskRead <= 0 || c.UnicastRTT <= 0 || c.ClientRTT <= 0 || c.MsgProc <= 0 {
		return fmt.Errorf("simnet: non-positive cost parameter: %+v", c)
	}
	return nil
}

// Multicast returns the latency of delivering a message to fanout receivers
// and collecting their answers, modeled as a binary distribution tree:
// RTT · ⌈log2(fanout+1)⌉. A fanout of zero costs nothing.
func (c CostModel) Multicast(fanout int) time.Duration {
	if fanout <= 0 {
		return 0
	}
	depth := math.Ceil(math.Log2(float64(fanout) + 1))
	return time.Duration(float64(c.UnicastRTT) * depth)
}

// MsgType labels counted message categories.
type MsgType int

// Message categories tracked by the simulator. They map onto the overheads
// the paper charts: replica migrations (Fig 11), update traffic (Fig 12),
// and reconfiguration messages (Fig 15).
const (
	MsgQueryUnicast MsgType = iota + 1
	MsgQueryMulticast
	MsgReplicaMigration
	MsgReplicaUpdate
	MsgIDBFAUpdate
	MsgMembership
	msgTypeCount // sentinel
)

// String returns a human-readable label.
func (m MsgType) String() string {
	switch m {
	case MsgQueryUnicast:
		return "query-unicast"
	case MsgQueryMulticast:
		return "query-multicast"
	case MsgReplicaMigration:
		return "replica-migration"
	case MsgReplicaUpdate:
		return "replica-update"
	case MsgIDBFAUpdate:
		return "idbfa-update"
	case MsgMembership:
		return "membership"
	default:
		return fmt.Sprintf("msgtype(%d)", int(m))
	}
}

// Counter tallies messages by type. It is safe for concurrent use so the
// prototype's parallel clients can share one instance.
type Counter struct {
	mu     sync.Mutex
	counts [msgTypeCount]uint64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{} }

// Add records n messages of the given type.
func (c *Counter) Add(t MsgType, n uint64) {
	if t <= 0 || t >= msgTypeCount {
		return
	}
	c.mu.Lock()
	c.counts[t] += n
	c.mu.Unlock()
}

// Get returns the count for one type.
func (c *Counter) Get(t MsgType) uint64 {
	if t <= 0 || t >= msgTypeCount {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[t]
}

// Total returns the count across all types.
func (c *Counter) Total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum uint64
	for _, v := range c.counts {
		sum += v
	}
	return sum
}

// Reset zeroes all counts.
func (c *Counter) Reset() {
	c.mu.Lock()
	for i := range c.counts {
		c.counts[i] = 0
	}
	c.mu.Unlock()
}

// Snapshot returns a copy of all non-zero counts keyed by type.
func (c *Counter) Snapshot() map[MsgType]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[MsgType]uint64)
	for i := MsgType(1); i < msgTypeCount; i++ {
		if c.counts[i] > 0 {
			out[i] = c.counts[i]
		}
	}
	return out
}
