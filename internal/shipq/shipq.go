// Package shipq provides the per-origin coalescing ship queue shared by the
// simulation engine (internal/core) and the TCP prototype (internal/proto).
// A create or rebuild that pushes a home MDS past the XOR-delta threshold
// does not ship the filter inline; instead the origin is marked dirty here.
// The queue drains — handing each dirty origin back exactly once, in
// ascending ID order — when the number of threshold crossings since the last
// drain reaches the configured batch, or when the owner explicitly drains.
// Repeated crossings by the same origin between drains coalesce into one
// pending entry, which is what amortizes the paper's stale-replica-per-group
// update across a burst of creates.
//
// With batch ≤ 1 every crossing drains immediately, reproducing the paper's
// ship-at-threshold protocol bit for bit on the serial path.
package shipq

import (
	"sort"
	"sync"
)

// Queue is a concurrency-safe coalescing ship queue.
type Queue struct {
	mu        sync.Mutex
	pending   map[int]struct{}
	crossings int
	batch     int
}

// New builds a queue draining every batch threshold crossings (minimum 1).
func New(batch int) *Queue {
	if batch < 1 {
		batch = 1
	}
	return &Queue{pending: make(map[int]struct{}), batch: batch}
}

// Note records a threshold crossing for origin. When the crossing count
// reaches the batch size it returns the sorted set of dirty origins to ship
// (clearing the queue); otherwise it returns nil.
func (q *Queue) Note(origin int) []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pending[origin] = struct{}{}
	q.crossings++
	if q.crossings < q.batch {
		return nil
	}
	return q.takeLocked()
}

// Drain returns every dirty origin in ascending order, clearing the queue.
func (q *Queue) Drain() []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.takeLocked()
}

// takeLocked empties the pending set. Requires q.mu.
func (q *Queue) takeLocked() []int {
	q.crossings = 0
	if len(q.pending) == 0 {
		return nil
	}
	out := make([]int, 0, len(q.pending))
	for origin := range q.pending {
		out = append(out, origin)
	}
	clear(q.pending)
	sort.Ints(out)
	return out
}

// Forget drops origin from the pending set: the origin was just shipped
// directly or has left the system.
func (q *Queue) Forget(origin int) {
	q.mu.Lock()
	delete(q.pending, origin)
	q.mu.Unlock()
}

// PendingCount returns the number of dirty origins awaiting a drain.
func (q *Queue) PendingCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}
