package trace

import (
	"math"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestOpTypeString(t *testing.T) {
	want := map[OpType]string{
		OpOpen: "open", OpClose: "close", OpStat: "stat",
		OpCreate: "create", OpDelete: "delete",
	}
	for op, name := range want {
		if op.String() != name {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), name)
		}
	}
	if !strings.Contains(OpType(99).String(), "99") {
		t.Error("unknown op string unhelpful")
	}
}

func TestIsMutation(t *testing.T) {
	if OpOpen.IsMutation() || OpStat.IsMutation() || OpClose.IsMutation() {
		t.Error("read ops classified as mutation")
	}
	if !OpCreate.IsMutation() || !OpDelete.IsMutation() {
		t.Error("create/delete not classified as mutation")
	}
}

func TestProfileWeightsNormalized(t *testing.T) {
	for _, p := range Profiles() {
		var sum float64
		for _, w := range p.Weights() {
			if w < 0 {
				t.Errorf("%s: negative weight", p.Name)
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: weights sum to %f", p.Name, sum)
		}
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"HP", "RES", "INS"} {
		p, err := ProfileByName(name)
		if err != nil || p.Name != name {
			t.Errorf("ProfileByName(%s) = %v, %v", name, p.Name, err)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

// TestScaledStatsTable3 verifies the generator's analytic scaling reproduces
// Table 3 of the paper: RES at TIF=100 and INS at TIF=30.
func TestScaledStatsTable3(t *testing.T) {
	res := RES().Scaled(100)
	if res.Hosts != 1300 || res.Users != 5000 {
		t.Errorf("RES hosts/users = %d/%d, want 1300/5000", res.Hosts, res.Users)
	}
	approx := func(got, want float64) bool { return math.Abs(got-want) < 0.5 }
	if !approx(res.OpenM, 497.2) || !approx(res.CloseM, 558.2) || !approx(res.StatM, 7983.9) {
		t.Errorf("RES ops = %.1f/%.1f/%.1f, want 497.2/558.2/7983.9",
			res.OpenM, res.CloseM, res.StatM)
	}
	ins := INS().Scaled(30)
	if ins.Hosts != 570 || ins.Users != 9780 {
		t.Errorf("INS hosts/users = %d/%d, want 570/9780", ins.Hosts, ins.Users)
	}
	if !approx(ins.OpenM, 1196.37) || !approx(ins.CloseM, 1215.33) || !approx(ins.StatM, 4076.58) {
		t.Errorf("INS ops = %.2f/%.2f/%.2f, want 1196.37/1215.33/4076.58",
			ins.OpenM, ins.CloseM, ins.StatM)
	}
}

// TestScaledStatsTable4 verifies Table 4: the HP trace at TIF=40.
func TestScaledStatsTable4(t *testing.T) {
	hp := HP().Scaled(40)
	approx := func(got, want float64) bool { return math.Abs(got-want) < 0.5 }
	if !approx(hp.RequestsM, 3788) {
		t.Errorf("HP requests = %.0fM, want 3788M", hp.RequestsM)
	}
	if hp.ActiveUsers != 1280 || hp.UserAccounts != 8280 {
		t.Errorf("HP users = %d/%d, want 1280/8280", hp.ActiveUsers, hp.UserAccounts)
	}
	if !approx(hp.ActiveFilesM, 38.76) || !approx(hp.TotalFilesM, 160.0) {
		t.Errorf("HP files = %.2f/%.1f, want 38.76/160.0", hp.ActiveFilesM, hp.TotalFilesM)
	}
}

func TestScaledClampsTIF(t *testing.T) {
	s := HP().Scaled(0)
	if s.TIF != 1 || s.RequestsM != 94.7 {
		t.Errorf("Scaled(0) = TIF %d, %.1fM", s.TIF, s.RequestsM)
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Config{TIF: 1}); err == nil {
		t.Error("missing profile accepted")
	}
	if _, err := NewGenerator(Config{Profile: HP(), TIF: 0}); err == nil {
		t.Error("TIF 0 accepted")
	}
}

func TestGeneratorDefaults(t *testing.T) {
	g, err := NewGenerator(Config{Profile: HP(), TIF: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := g.Config()
	if cfg.FilesPerSubtrace != DefaultFilesPerSubtrace {
		t.Errorf("FilesPerSubtrace = %d", cfg.FilesPerSubtrace)
	}
	if cfg.MeanInterarrival != DefaultMeanInterarrival {
		t.Errorf("MeanInterarrival = %v", cfg.MeanInterarrival)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	mk := func() []Record {
		g, err := NewGenerator(Config{Profile: RES(), TIF: 3, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return g.Take(500)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	g1, _ := NewGenerator(Config{Profile: RES(), TIF: 1, Seed: 1})
	g2, _ := NewGenerator(Config{Profile: RES(), TIF: 1, Seed: 2})
	same := 0
	a, b := g1.Take(200), g2.Take(200)
	for i := range a {
		if a[i].Path == b[i].Path && a[i].Op == b[i].Op {
			same++
		}
	}
	if same == 200 {
		t.Error("different seeds produced identical streams")
	}
}

func TestGeneratorMonotonicTimeAndSeq(t *testing.T) {
	g, _ := NewGenerator(Config{Profile: INS(), TIF: 2, Seed: 7})
	var prevAt time.Duration
	var prevSeq uint64
	for i := 0; i < 1000; i++ {
		r := g.Next()
		if r.At < prevAt {
			t.Fatalf("time went backwards at %d", i)
		}
		if r.Seq != prevSeq+1 {
			t.Fatalf("seq not consecutive at %d", i)
		}
		prevAt, prevSeq = r.At, r.Seq
	}
}

func TestGeneratorNamespacesDisjoint(t *testing.T) {
	g, _ := NewGenerator(Config{Profile: HP(), TIF: 4, Seed: 9, FilesPerSubtrace: 100})
	for _, r := range g.Take(2000) {
		if !strings.HasPrefix(r.Path, "/sub") {
			t.Fatalf("path %q lacks subtrace prefix", r.Path)
		}
		var sub int
		if _, err := fscan(r.Path, &sub); err != nil {
			t.Fatalf("unparseable path %q", r.Path)
		}
		if sub != r.Subtrace {
			t.Fatalf("path %q not in subtrace %d namespace", r.Path, r.Subtrace)
		}
	}
}

// fscan extracts the subtrace number from a /subN/... path.
func fscan(path string, sub *int) (int, error) {
	rest := strings.TrimPrefix(path, "/sub")
	idx := strings.IndexByte(rest, '/')
	if idx < 0 {
		return 0, errBadPath
	}
	n := 0
	for _, c := range rest[:idx] {
		if c < '0' || c > '9' {
			return 0, errBadPath
		}
		n = n*10 + int(c-'0')
	}
	*sub = n
	return 1, nil
}

var errBadPath = &badPathError{}

type badPathError struct{}

func (*badPathError) Error() string { return "bad path" }

func TestGeneratorHostUserDisjointAcrossSubtraces(t *testing.T) {
	g, _ := NewGenerator(Config{Profile: RES(), TIF: 3, Seed: 11})
	base := RES().Base
	for _, r := range g.Take(3000) {
		if r.Host/base.Hosts != r.Subtrace {
			t.Fatalf("host %d not in subtrace %d's range", r.Host, r.Subtrace)
		}
		if r.User/base.Users != r.Subtrace {
			t.Fatalf("user %d not in subtrace %d's range", r.User, r.Subtrace)
		}
	}
}

func TestGeneratorOpMixMatchesProfile(t *testing.T) {
	for _, p := range Profiles() {
		g, err := NewGenerator(Config{Profile: p, TIF: 2, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		ms := NewMeasuredStats()
		for i := 0; i < 50000; i++ {
			ms.Observe(g.Next())
		}
		w := p.Weights()
		for i, op := range []OpType{OpOpen, OpClose, OpStat, OpCreate, OpDelete} {
			got := ms.OpFraction(op)
			if math.Abs(got-w[i]) > 0.02 {
				t.Errorf("%s %s fraction = %.3f, want %.3f ± 0.02", p.Name, op, got, w[i])
			}
		}
	}
}

func TestGeneratorTemporalLocality(t *testing.T) {
	// With RepeatProb 0.7 the stream must revisit files far more often than
	// a uniform draw over 50k files would.
	g, _ := NewGenerator(Config{Profile: RES(), TIF: 1, Seed: 3})
	seen := make(map[string]int)
	repeats := 0
	const n = 20000
	for i := 0; i < n; i++ {
		r := g.Next()
		if seen[r.Path] > 0 {
			repeats++
		}
		seen[r.Path]++
	}
	if frac := float64(repeats) / n; frac < 0.5 {
		t.Errorf("repeat fraction %.2f, want ≥ 0.5 (locality broken)", frac)
	}
}

func TestGeneratorPopularitySkewed(t *testing.T) {
	g, _ := NewGenerator(Config{Profile: HP(), TIF: 1, Seed: 8})
	counts := make(map[string]int)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[g.Next().Path]++
	}
	// Top 10% of touched files should absorb well over half the accesses.
	var freqs []int
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	top := len(freqs) / 10
	if top == 0 {
		top = 1
	}
	topSum := 0
	for _, c := range freqs[:top] {
		topSum += c
	}
	if frac := float64(topSum) / n; frac < 0.5 {
		t.Errorf("top-decile access share %.2f, want ≥ 0.5 (skew broken)", frac)
	}
}

func TestPathForDeterministicAndUnique(t *testing.T) {
	if PathFor(1, 5) != PathFor(1, 5) {
		t.Error("PathFor not deterministic")
	}
	seen := make(map[string]bool)
	for f := uint64(0); f < 5000; f++ {
		p := PathFor(0, f)
		if seen[p] {
			t.Fatalf("duplicate path %q", p)
		}
		seen[p] = true
	}
	if PathFor(0, 1) == PathFor(1, 1) {
		t.Error("subtrace namespaces collide")
	}
}

func TestEachInitialPathCount(t *testing.T) {
	g, _ := NewGenerator(Config{Profile: HP(), TIF: 3, Seed: 1, FilesPerSubtrace: 250})
	count := uint64(0)
	g.EachInitialPath(func(string) bool {
		count++
		return true
	})
	if count != g.InitialFileCount() || count != 750 {
		t.Errorf("enumerated %d paths, want %d", count, g.InitialFileCount())
	}
}

func TestEachInitialPathEarlyStop(t *testing.T) {
	g, _ := NewGenerator(Config{Profile: HP(), TIF: 2, Seed: 1, FilesPerSubtrace: 100})
	count := 0
	g.EachInitialPath(func(string) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("early stop visited %d, want 10", count)
	}
}

func TestMeasuredStatsReport(t *testing.T) {
	g, _ := NewGenerator(Config{Profile: INS(), TIF: 2, Seed: 4})
	ms := NewMeasuredStats()
	for i := 0; i < 1000; i++ {
		ms.Observe(g.Next())
	}
	if ms.Total() != 1000 {
		t.Errorf("Total = %d", ms.Total())
	}
	if ms.Subtraces() != 2 {
		t.Errorf("Subtraces = %d, want 2", ms.Subtraces())
	}
	if ms.UniqueFiles() == 0 || ms.UniqueHosts() == 0 || ms.UniqueUsers() == 0 {
		t.Error("unique counters empty")
	}
	if ms.Duration() <= 0 {
		t.Error("no time span")
	}
	s := ms.String()
	for _, want := range []string{"records=1000", "stat", "open"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}
