// Package trace is the workload substrate standing in for the HP, RES and
// INS file-system traces the paper replays (Section 4, Tables 3–4). The real
// traces are not redistributable, so this package generates synthetic
// streams that preserve the properties the G-HBA experiments depend on:
//
//   - the published operation mix (open/close/stat ratios of each trace),
//   - Zipf-skewed file popularity,
//   - strong temporal locality (a working-set re-reference process) that the
//     L1 LRU arrays can capture,
//   - the paper's own TIF intensification: TIF sub-traces with disjoint
//     namespaces, host IDs and user IDs, replayed concurrently from the same
//     start time.
//
// Generators are fully deterministic given a seed, so every experiment in
// this repository is reproducible bit for bit.
package trace

import (
	"fmt"
	"time"
)

// OpType identifies a metadata operation. Data-path reads and writes are
// filtered out, as in the paper ("we filter out requests, such as read and
// write, that are not related to the metadata operations").
type OpType uint8

// Metadata operation kinds.
const (
	OpOpen OpType = iota + 1
	OpClose
	OpStat
	OpCreate
	OpDelete
)

// String returns the conventional syscall name.
func (o OpType) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpClose:
		return "close"
	case OpStat:
		return "stat"
	case OpCreate:
		return "create"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// IsMutation reports whether the operation changes the file set and hence
// the home MDS's Bloom filter (the trigger for replica-update traffic).
func (o OpType) IsMutation() bool {
	return o == OpCreate || o == OpDelete
}

// Record is one trace event.
type Record struct {
	// Seq is the global sequence number within the merged stream.
	Seq uint64
	// At is the arrival time offset from the start of the replay.
	At time.Duration
	// Op is the operation kind.
	Op OpType
	// Path is the full file path, including the subtrace prefix that keeps
	// intensified namespaces disjoint.
	Path string
	// Subtrace identifies which of the TIF concurrent sub-traces emitted
	// the record.
	Subtrace int
	// Host and User carry the per-subtrace-offset host and user IDs, kept
	// disjoint across subtraces as in the paper's scaling methodology.
	Host int
	User int
}
