package trace

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"time"
)

// Config parameterizes a Generator.
type Config struct {
	// Profile selects the workload family.
	Profile Profile
	// TIF is the trace-intensifying factor: the number of disjoint
	// sub-traces replayed concurrently. Must be ≥ 1.
	TIF int
	// FilesPerSubtrace is the number of distinct files in each sub-trace's
	// namespace. Experiments size this to keep simulations laptop scale;
	// it defaults to 50 000 when zero.
	FilesPerSubtrace uint64
	// MeanInterarrival is the average gap between consecutive requests of
	// the merged stream (exponentially distributed). Defaults to 100 µs —
	// an aggregate arrival rate of 10 000 req/s.
	MeanInterarrival time.Duration
	// Seed makes the stream deterministic.
	Seed int64
}

// DefaultFilesPerSubtrace is used when Config.FilesPerSubtrace is zero.
const DefaultFilesPerSubtrace = 50_000

// DefaultMeanInterarrival is used when Config.MeanInterarrival is zero.
const DefaultMeanInterarrival = 100 * time.Microsecond

func (c *Config) applyDefaults() error {
	if c.Profile.Name == "" {
		return fmt.Errorf("trace: config has no profile")
	}
	if c.TIF < 1 {
		return fmt.Errorf("trace: TIF must be ≥ 1, got %d", c.TIF)
	}
	if c.FilesPerSubtrace == 0 {
		c.FilesPerSubtrace = DefaultFilesPerSubtrace
	}
	if c.MeanInterarrival <= 0 {
		c.MeanInterarrival = DefaultMeanInterarrival
	}
	return nil
}

// Generator produces a deterministic infinite stream of trace records,
// merging TIF concurrent sub-traces with disjoint namespaces.
//
// A generator can be one lane of an n-way split (see SplitGenerators):
// create allocation is then strided so concurrent lanes never mint the same
// fresh path. A plain NewGenerator is the 1-way split (offset 0, stride 1).
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
	subs []*subtrace
	seq  uint64
	now  time.Duration

	// createStride is the gap between consecutive fresh file indices this
	// lane allocates; 1 for a serial generator.
	createStride uint64
}

// subtrace holds the per-sub-trace locality state: a ring buffer of recently
// accessed file indices that the repeat process re-references, and the
// allocator for freshly created files.
type subtrace struct {
	recent  []uint64
	head    int
	filled  int
	nextNew uint64   // next unused file index (starts past the initial namespace)
	created []uint64 // recently created, not yet deleted files (temp-file pool)
}

// NewGenerator builds a generator for cfg.
func NewGenerator(cfg Config) (*Generator, error) {
	return newLaneGenerator(cfg, 0, 1)
}

// newLaneGenerator builds lane `offset` of a `stride`-way split: fresh file
// indices start at FilesPerSubtrace+offset and advance by stride, keeping
// concurrently replayed lanes' created namespaces disjoint.
func newLaneGenerator(cfg Config, offset, stride uint64) (*Generator, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ws := cfg.Profile.WorkingSet
	if ws <= 0 {
		ws = 1024
	}
	g := &Generator{
		cfg:          cfg,
		rng:          rng,
		zipf:         rand.NewZipf(rng, cfg.Profile.ZipfS, 1, cfg.FilesPerSubtrace-1),
		subs:         make([]*subtrace, cfg.TIF),
		createStride: stride,
	}
	for i := range g.subs {
		g.subs[i] = &subtrace{
			recent:  make([]uint64, ws),
			nextNew: cfg.FilesPerSubtrace + offset,
		}
	}
	return g, nil
}

// SplitSeed derives the seed of one lane of an n-way split. Lane 0 keeps
// the base seed, so a 1-way split replays exactly the serial stream — the
// contract the parallel replay engine's single-worker reproducibility
// rests on. Other lanes get SplitMix64-style spacing to stay uncorrelated.
func SplitSeed(seed int64, lane int) int64 {
	if lane == 0 {
		return seed
	}
	const golden = uint64(0x9E3779B97F4A7C15)
	return seed ^ int64(uint64(lane)*golden)
}

// DispatchSeed derives worker w's record-dispatch RNG seed — the stream
// that picks entry MDSes and home placements during a replay. It is the
// single derivation every parallel driver (the facade's worker pools, the
// replay engine) must share: the serial engine is worker 0 by definition,
// so any two call sites that disagree silently break the pinned
// single-worker ≡ serial equivalence tests. The salt keeps dispatch seeds
// disjoint from SplitSeed's lane seeds, so a worker's dispatch RNG can
// never replay a neighbouring lane's generator stream.
func DispatchSeed(seed int64, worker int) int64 {
	const (
		golden       = uint64(0x9E3779B97F4A7C15)
		dispatchSalt = int64(-6148914691236517206) // 0xAAAA…AAAA: flips alternate bits
	)
	return seed ^ int64(uint64(worker+1)*golden) ^ dispatchSalt
}

// SplitGenerators returns n generators whose merged output stands in for
// the serial stream of cfg: each lane draws operations and file popularity
// from its own seeded RNG over the shared initial namespace, while created
// paths come from disjoint strided index ranges so concurrent lanes never
// collide on a fresh file. Lane inter-arrivals are stretched by n — the
// standard thinning of a Poisson process — so the lanes' merged arrival
// rate matches the serial stream's and queue-model latencies stay
// comparable across worker counts. A 1-way split is bit-for-bit the serial
// generator.
func SplitGenerators(cfg Config, n int) ([]*Generator, error) {
	if n < 1 {
		return nil, fmt.Errorf("trace: split count must be ≥ 1, got %d", n)
	}
	interarrival := cfg.MeanInterarrival
	if interarrival <= 0 {
		interarrival = DefaultMeanInterarrival
	}
	out := make([]*Generator, n)
	for w := 0; w < n; w++ {
		c := cfg
		c.Seed = SplitSeed(cfg.Seed, w)
		c.MeanInterarrival = interarrival * time.Duration(n)
		g, err := newLaneGenerator(c, uint64(w), uint64(n))
		if err != nil {
			return nil, err
		}
		out[w] = g
	}
	return out, nil
}

// Config returns the effective configuration after defaulting.
func (g *Generator) Config() Config { return g.cfg }

// PathFor returns the deterministic path of file index within a sub-trace.
// The layout spreads files over a two-level directory tree so path strings
// resemble a real namespace: /subS/dD1/dD2/fF.
func PathFor(sub int, file uint64) string {
	d1 := file % 97
	d2 := (file / 97) % 89
	var b []byte
	b = append(b, "/sub"...)
	b = strconv.AppendInt(b, int64(sub), 10)
	b = append(b, "/d"...)
	b = strconv.AppendUint(b, d1, 10)
	b = append(b, "/d"...)
	b = strconv.AppendUint(b, d2, 10)
	b = append(b, "/f"...)
	b = strconv.AppendUint(b, file, 10)
	return string(b)
}

// EachInitialPath calls fn for every path in the initial namespace (all
// sub-traces), in deterministic order, until fn returns false. Simulations
// use this to pre-populate MDSs ("all MDSs are initially populated
// randomly") without materializing the namespace in memory.
func (g *Generator) EachInitialPath(fn func(path string) bool) {
	for sub := 0; sub < g.cfg.TIF; sub++ {
		for f := uint64(0); f < g.cfg.FilesPerSubtrace; f++ {
			if !fn(PathFor(sub, f)) {
				return
			}
		}
	}
}

// InitialFileCount returns the total number of files across all sub-traces.
func (g *Generator) InitialFileCount() uint64 {
	return uint64(g.cfg.TIF) * g.cfg.FilesPerSubtrace
}

// pickOp draws an operation from the profile mix.
func (g *Generator) pickOp() OpType {
	w := g.cfg.Profile.weights
	x := g.rng.Float64()
	for i, p := range w {
		if x < p {
			return OpType(i + 1)
		}
		x -= p
	}
	return OpStat
}

// pickFile draws a file index for a sub-trace, re-referencing the working
// set with the profile's repeat probability.
func (g *Generator) pickFile(st *subtrace) uint64 {
	if st.filled > 0 && g.rng.Float64() < g.cfg.Profile.RepeatProb {
		return st.recent[g.rng.Intn(st.filled)]
	}
	f := g.zipf.Uint64()
	g.remember(st, f)
	return f
}

// remember pushes a file index into the working-set ring.
func (g *Generator) remember(st *subtrace, f uint64) {
	st.recent[st.head] = f
	st.head = (st.head + 1) % len(st.recent)
	if st.filled < len(st.recent) {
		st.filled++
	}
}

// createdPoolCap bounds the temp-file pool; beyond it, the oldest creations
// are considered permanent and no longer deletion candidates.
const createdPoolCap = 512

// pickCreate allocates a fresh, never-used file index, so creates never
// collide with existing files. The new file joins the working set — exactly
// the access pattern that makes freshly created files the staleness
// stress case for remote Bloom-filter replicas — and the temp-file pool
// that deletes draw from.
func (g *Generator) pickCreate(st *subtrace) uint64 {
	f := st.nextNew
	st.nextNew += g.createStride
	g.remember(st, f)
	if len(st.created) < createdPoolCap {
		st.created = append(st.created, f)
	}
	return f
}

// pickDelete removes a recently created file (temp-file lifecycle: created,
// used briefly, unlinked). Deleting files from the hot read set would be
// unrealistic — real workloads do not keep stat-ing unlinked files — and
// would turn the Zipf head into a stream of global-multicast misses. When no
// created file is available the delete targets a fresh index: a no-op unlink
// of a nonexistent file.
func (g *Generator) pickDelete(st *subtrace) uint64 {
	if len(st.created) == 0 {
		f := st.nextNew
		st.nextNew += g.createStride
		return f
	}
	f := st.created[len(st.created)-1]
	st.created = st.created[:len(st.created)-1]
	return f
}

// Next returns the next record of the merged stream. The stream is infinite;
// callers decide how many operations to replay.
func (g *Generator) Next() Record {
	sub := g.rng.Intn(g.cfg.TIF)
	st := g.subs[sub]
	op := g.pickOp()
	var file uint64
	switch op {
	case OpCreate:
		file = g.pickCreate(st)
	case OpDelete:
		file = g.pickDelete(st)
	default:
		file = g.pickFile(st)
	}
	// Exponential inter-arrival: the merged stream is the superposition of
	// TIF Poisson sub-streams, itself Poisson at the aggregate rate.
	gap := time.Duration(-math.Log(1-g.rng.Float64()) * float64(g.cfg.MeanInterarrival))
	g.now += gap
	g.seq++

	hostsPerSub := g.cfg.Profile.Base.Hosts
	if hostsPerSub <= 0 {
		hostsPerSub = 32 // HP reports no host count; use its active-user scale
	}
	usersPerSub := g.cfg.Profile.Base.Users
	if usersPerSub <= 0 {
		usersPerSub = g.cfg.Profile.Base.ActiveUsers
		if usersPerSub <= 0 {
			usersPerSub = 16
		}
	}
	return Record{
		Seq:      g.seq,
		At:       g.now,
		Op:       op,
		Path:     PathFor(sub, file),
		Subtrace: sub,
		Host:     sub*hostsPerSub + g.rng.Intn(hostsPerSub),
		User:     sub*usersPerSub + g.rng.Intn(usersPerSub),
	}
}

// Take returns the next n records as a slice; a convenience for tests and
// small experiments.
func (g *Generator) Take(n int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
