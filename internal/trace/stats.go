package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// MeasuredStats accumulates observed statistics over a generated stream, the
// measured counterpart to the analytic ScaledStats. Tests use it to verify
// that the generator actually produces the mix and locality the profile
// promises.
type MeasuredStats struct {
	ops       map[OpType]uint64
	uniques   map[string]struct{}
	hosts     map[int]struct{}
	users     map[int]struct{}
	subtraces map[int]struct{}
	total     uint64
	lastAt    time.Duration
}

// NewMeasuredStats returns an empty accumulator.
func NewMeasuredStats() *MeasuredStats {
	return &MeasuredStats{
		ops:       make(map[OpType]uint64),
		uniques:   make(map[string]struct{}),
		hosts:     make(map[int]struct{}),
		users:     make(map[int]struct{}),
		subtraces: make(map[int]struct{}),
	}
}

// Observe folds one record into the statistics.
func (m *MeasuredStats) Observe(r Record) {
	m.ops[r.Op]++
	m.uniques[r.Path] = struct{}{}
	m.hosts[r.Host] = struct{}{}
	m.users[r.User] = struct{}{}
	m.subtraces[r.Subtrace] = struct{}{}
	m.total++
	m.lastAt = r.At
}

// Total returns the number of observed records.
func (m *MeasuredStats) Total() uint64 { return m.total }

// OpCount returns the count of one operation type.
func (m *MeasuredStats) OpCount(op OpType) uint64 { return m.ops[op] }

// OpFraction returns the observed share of one operation type.
func (m *MeasuredStats) OpFraction(op OpType) float64 {
	if m.total == 0 {
		return 0
	}
	return float64(m.ops[op]) / float64(m.total)
}

// UniqueFiles returns the number of distinct paths touched — the trace's
// active-file count.
func (m *MeasuredStats) UniqueFiles() int { return len(m.uniques) }

// UniqueHosts returns the number of distinct host IDs seen.
func (m *MeasuredStats) UniqueHosts() int { return len(m.hosts) }

// UniqueUsers returns the number of distinct user IDs seen.
func (m *MeasuredStats) UniqueUsers() int { return len(m.users) }

// Subtraces returns how many distinct sub-traces contributed records.
func (m *MeasuredStats) Subtraces() int { return len(m.subtraces) }

// Duration returns the arrival-time span of the observed stream.
func (m *MeasuredStats) Duration() time.Duration { return m.lastAt }

// String renders a compact multi-line report.
func (m *MeasuredStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "records=%d files=%d hosts=%d users=%d subtraces=%d span=%v\n",
		m.total, m.UniqueFiles(), m.UniqueHosts(), m.UniqueUsers(), m.Subtraces(),
		m.lastAt.Round(time.Millisecond))
	ops := make([]OpType, 0, len(m.ops))
	for op := range m.ops {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		fmt.Fprintf(&b, "  %-7s %10d (%.1f%%)\n", op, m.ops[op], 100*m.OpFraction(op))
	}
	return b.String()
}
