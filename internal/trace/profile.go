package trace

import "fmt"

// BaseStats carries the per-trace statistics published in the paper at
// TIF=1 (derived by dividing the Table 3/4 values by their TIF). Fields that
// a given trace does not report are zero.
type BaseStats struct {
	// Hosts and Users are the machine and user populations (RES/INS).
	Hosts int
	Users int
	// OpenM, CloseM and StatM are millions of operations (RES/INS).
	OpenM  float64
	CloseM float64
	StatM  float64
	// RequestsM is millions of total requests (HP).
	RequestsM float64
	// ActiveUsers and UserAccounts describe the HP population.
	ActiveUsers  int
	UserAccounts int
	// ActiveFilesM and TotalFilesM are millions of files (HP).
	ActiveFilesM float64
	TotalFilesM  float64
}

// Profile describes one workload family and its generator parameters.
type Profile struct {
	// Name is "HP", "RES" or "INS".
	Name string
	// Base holds the published TIF=1 statistics.
	Base BaseStats
	// PaperTIF is the intensification factor the paper evaluates the trace
	// at (Tables 3–4): HP=40, RES=100, INS=30.
	PaperTIF int
	// weights is the op mix (open, close, stat, create, delete), summing
	// to 1.
	weights [5]float64
	// ZipfS is the Zipf skew parameter for file popularity (>1).
	ZipfS float64
	// RepeatProb is the probability an access re-references the recent
	// working set instead of drawing a fresh file — the temporal-locality
	// knob that feeds the L1 arrays.
	RepeatProb float64
	// WorkingSet is the size of the re-reference window, in files.
	WorkingSet int
}

// Weights returns the operation mix in OpType order (open, close, stat,
// create, delete).
func (p Profile) Weights() [5]float64 { return p.weights }

// mix builds a normalized weight vector from open/close/stat counts, carving
// out small create/delete fractions so the stream exercises Bloom-filter
// mutation (replica-update traffic needs it).
func mix(open, close, stat float64) [5]float64 {
	const createFrac, deleteFrac = 0.006, 0.004
	total := open + close + stat
	scale := (1 - createFrac - deleteFrac) / total
	return [5]float64{open * scale, close * scale, stat * scale, createFrac, deleteFrac}
}

// HP returns the HP file-system trace profile (Riedel et al., 10 days, 500
// GB; Table 4). The published table does not break requests down by
// operation, so the mix follows the stat-heavy metadata profile reported for
// workstation traces in Roselli et al., which the paper cites for the claim
// that metadata transactions exceed 50% of operations.
func HP() Profile {
	return Profile{
		Name: "HP",
		Base: BaseStats{
			RequestsM:    94.7,
			ActiveUsers:  32,
			UserAccounts: 207,
			ActiveFilesM: 0.969,
			TotalFilesM:  4.0,
		},
		PaperTIF:   40,
		weights:    mix(25, 22, 53),
		ZipfS:      1.15,
		RepeatProb: 0.65,
		WorkingSet: 4096,
	}
}

// RES returns the Research Workload profile (Roselli et al.; Table 3,
// TIF=100): open 4.972M, close 5.582M, stat 79.839M at base intensity — a
// heavily stat-dominated stream.
func RES() Profile {
	return Profile{
		Name: "RES",
		Base: BaseStats{
			Hosts:  13,
			Users:  50,
			OpenM:  4.972,
			CloseM: 5.582,
			StatM:  79.839,
		},
		PaperTIF:   100,
		weights:    mix(4.972, 5.582, 79.839),
		ZipfS:      1.25,
		RepeatProb: 0.7,
		WorkingSet: 2048,
	}
}

// INS returns the Instructional Workload profile (Roselli et al.; Table 3,
// TIF=30): open 39.879M, close 40.511M, stat 135.886M at base intensity.
func INS() Profile {
	return Profile{
		Name: "INS",
		Base: BaseStats{
			Hosts:  19,
			Users:  326,
			OpenM:  39.879,
			CloseM: 40.511,
			StatM:  135.886,
		},
		PaperTIF:   30,
		weights:    mix(39.879, 40.511, 135.886),
		ZipfS:      1.1,
		RepeatProb: 0.6,
		WorkingSet: 8192,
	}
}

// Profiles returns the three workload families in the order the paper
// charts them.
func Profiles() []Profile {
	return []Profile{HP(), RES(), INS()}
}

// MixProfile builds a synthetic profile with an explicit
// lookup:create:delete operation ratio — the mutation-heavy mixes the
// replay benchmark sweeps, where the published traces' sub-1% mutation
// share would leave the write path idle. Lookups are emitted as stats (all
// non-mutating operations traverse the same query hierarchy); locality
// parameters match the HP profile so L1 behaviour stays comparable.
func MixProfile(lookup, create, del float64) (Profile, error) {
	if lookup < 0 || create < 0 || del < 0 {
		return Profile{}, fmt.Errorf("trace: negative mix weight %v:%v:%v", lookup, create, del)
	}
	total := lookup + create + del
	if total <= 0 {
		return Profile{}, fmt.Errorf("trace: empty mix")
	}
	return Profile{
		Name:       "MIX",
		PaperTIF:   1,
		weights:    [5]float64{0, 0, lookup / total, create / total, del / total},
		ZipfS:      1.15,
		RepeatProb: 0.65,
		WorkingSet: 4096,
	}, nil
}

// MustMixProfile is MixProfile for literal weights; it panics on invalid
// input.
func MustMixProfile(lookup, create, del float64) Profile {
	p, err := MixProfile(lookup, create, del)
	if err != nil {
		panic(err)
	}
	return p
}

// ProfileByName looks a profile up by its name (case sensitive).
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown profile %q", name)
}

// ScaledStats is one trace's statistics after TIF intensification. Spatial
// scale-up multiplies populations; temporal scale-up multiplies operation
// volume — both by TIF, because the merged trace is TIF disjoint sub-traces
// replayed concurrently.
type ScaledStats struct {
	Name         string
	TIF          int
	Hosts        int
	Users        int
	OpenM        float64
	CloseM       float64
	StatM        float64
	RequestsM    float64
	ActiveUsers  int
	UserAccounts int
	ActiveFilesM float64
	TotalFilesM  float64
}

// Scaled returns the profile's statistics at the given TIF. With the
// paper's TIF values this reproduces Tables 3 and 4 exactly.
func (p Profile) Scaled(tif int) ScaledStats {
	if tif < 1 {
		tif = 1
	}
	f := float64(tif)
	return ScaledStats{
		Name:         p.Name,
		TIF:          tif,
		Hosts:        p.Base.Hosts * tif,
		Users:        p.Base.Users * tif,
		OpenM:        p.Base.OpenM * f,
		CloseM:       p.Base.CloseM * f,
		StatM:        p.Base.StatM * f,
		RequestsM:    p.Base.RequestsM * f,
		ActiveUsers:  p.Base.ActiveUsers * tif,
		UserAccounts: p.Base.UserAccounts * tif,
		ActiveFilesM: p.Base.ActiveFilesM * f,
		TotalFilesM:  p.Base.TotalFilesM * f,
	}
}
