package trace

import (
	"reflect"
	"strings"
	"testing"
)

func splitTestConfig() Config {
	return Config{
		Profile:          MustMixProfile(50, 35, 15),
		TIF:              2,
		FilesPerSubtrace: 1_000,
		Seed:             7,
	}
}

// TestSplitOneLaneMatchesSerial pins the splittable generator's base
// contract: a 1-way split is bit-for-bit the serial generator.
func TestSplitOneLaneMatchesSerial(t *testing.T) {
	cfg := splitTestConfig()
	serial, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lanes, err := SplitGenerators(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := serial.Take(2_000), lanes[0].Take(2_000)
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("record %d diverged: %+v vs %+v", i, a[i], b[i])
			}
		}
	}
}

// TestSplitLanesCreateDisjointPaths verifies the strided allocation: no two
// lanes of a split ever mint the same fresh path, so parallel replays never
// collide on a create.
func TestSplitLanesCreateDisjointPaths(t *testing.T) {
	cfg := splitTestConfig()
	const n = 4
	lanes, err := SplitGenerators(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for w, lane := range lanes {
		for i := 0; i < 3_000; i++ {
			rec := lane.Next()
			if rec.Op != OpCreate {
				continue
			}
			if prev, dup := seen[rec.Path]; dup {
				t.Fatalf("lanes %d and %d both created %s", prev, w, rec.Path)
			}
			seen[rec.Path] = w
		}
	}
	if len(seen) == 0 {
		t.Fatal("no creates generated")
	}
}

// TestSplitLanesAreDeterministic checks that rebuilding the same split
// reproduces every lane exactly, and that distinct lanes draw distinct
// streams.
func TestSplitLanesAreDeterministic(t *testing.T) {
	cfg := splitTestConfig()
	a, err := SplitGenerators(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SplitGenerators(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for w := range a {
		ra, rb := a[w].Take(500), b[w].Take(500)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("lane %d not reproducible", w)
		}
	}
	if reflect.DeepEqual(a[0].Take(100), a[1].Take(100)) {
		t.Error("lanes 0 and 1 drew identical streams")
	}
}

// TestSplitRejectsBadCount covers the error path.
func TestSplitRejectsBadCount(t *testing.T) {
	if _, err := SplitGenerators(splitTestConfig(), 0); err == nil {
		t.Error("0-way split accepted")
	}
}

// TestMixProfileWeights checks the normalized mix and its validation.
func TestMixProfileWeights(t *testing.T) {
	p, err := MixProfile(70, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Weights()
	if w[2] != 0.7 || w[3] != 0.2 || w[4] != 0.1 {
		t.Errorf("weights = %v", w)
	}
	var sum float64
	for _, x := range w {
		sum += x
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("weights sum to %f", sum)
	}
	if _, err := MixProfile(0, 0, 0); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := MixProfile(-1, 1, 1); err == nil {
		t.Error("negative mix accepted")
	}
	if !strings.Contains(p.Name, "MIX") {
		t.Errorf("profile name %q", p.Name)
	}
}
