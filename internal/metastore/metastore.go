// Package metastore is the per-MDS metadata repository: the authoritative
// record of which files are homed at one server, with the attribute payload
// a real file system would keep (size, mode, timestamps). Positive Bloom
// answers at L4 are verified against this store; in the simulator that
// verification charges a disk read, in the prototype it is an actual map
// lookup behind the RPC boundary.
package metastore

import (
	"sort"
	"sync"
	"time"
)

// Metadata is the attribute record of one file, the payload a successful
// metadata lookup returns to the client.
type Metadata struct {
	// Path is the full file path, the lookup key.
	Path string
	// Size is the file size in bytes.
	Size uint64
	// Mode is the POSIX permission/type bits.
	Mode uint32
	// UID and GID identify the owner.
	UID uint32
	GID uint32
	// MTime is the last-modification time.
	MTime time.Time
	// InodeID is the server-local inode number.
	InodeID uint64
}

// Store holds the metadata of all files homed at one MDS. It is safe for
// concurrent use; the prototype serves RPCs against it from many goroutines.
type Store struct {
	mu      sync.RWMutex
	files   map[string]Metadata
	nextIno uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{files: make(map[string]Metadata)}
}

// Put inserts or replaces metadata for md.Path, assigning an inode number on
// first insertion.
func (s *Store) Put(md Metadata) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.files[md.Path]; ok {
		md.InodeID = old.InodeID
	} else {
		s.nextIno++
		md.InodeID = s.nextIno
	}
	s.files[md.Path] = md
}

// PutPath inserts a minimal record for path; convenience for trace replay
// where only existence matters.
func (s *Store) PutPath(path string) {
	s.Put(Metadata{Path: path, Mode: 0o644})
}

// Get returns the metadata for path and whether it exists.
func (s *Store) Get(path string) (Metadata, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	md, ok := s.files[path]
	return md, ok
}

// Has reports whether path is homed here.
func (s *Store) Has(path string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.files[path]
	return ok
}

// Delete removes path, reporting whether it was present.
func (s *Store) Delete(path string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.files[path]
	delete(s.files, path)
	return ok
}

// Len returns the number of files homed here.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.files)
}

// Paths returns all homed paths in sorted order. Intended for tests and
// migration tooling, not the query path.
func (s *Store) Paths() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.files))
	for p := range s.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Range calls fn for every record until fn returns false. The store is
// read-locked for the duration; fn must not call back into the store.
func (s *Store) Range(fn func(Metadata) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, md := range s.files {
		if !fn(md) {
			return
		}
	}
}

// Snapshot is a point-in-time copy of a store's full state, including the
// inode counter — restoring it must never let a later Put reuse an inode
// number an earlier life of the store already handed out.
type Snapshot struct {
	// NextIno is the last inode number assigned.
	NextIno uint64
	// Files holds every record, sorted by Path for deterministic encoding.
	Files []Metadata
}

// Snapshot captures the store's state for durable serialization.
func (s *Store) Snapshot() Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	files := make([]Metadata, 0, len(s.files))
	for _, md := range s.files {
		files = append(files, md)
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Path < files[j].Path })
	return Snapshot{NextIno: s.nextIno, Files: files}
}

// Restore replaces the store's state with the snapshot, inode counter
// included. The counter is additionally bumped above every restored
// record's inode so a snapshot from a buggy or older writer still cannot
// make Put reissue a live inode number.
func (s *Store) Restore(snap Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files = make(map[string]Metadata, len(snap.Files))
	s.nextIno = snap.NextIno
	for _, md := range snap.Files {
		s.files[md.Path] = md
		if md.InodeID > s.nextIno {
			s.nextIno = md.InodeID
		}
	}
}
