package metastore

import (
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestPutGet(t *testing.T) {
	s := NewStore()
	md := Metadata{Path: "/a/b", Size: 123, Mode: 0o755, UID: 10, GID: 20, MTime: time.Unix(1e9, 0)}
	s.Put(md)
	got, ok := s.Get("/a/b")
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if got.Size != 123 || got.Mode != 0o755 || got.UID != 10 {
		t.Errorf("Get = %+v", got)
	}
	if got.InodeID == 0 {
		t.Error("inode not assigned")
	}
}

func TestInodeStableAcrossUpdates(t *testing.T) {
	s := NewStore()
	s.Put(Metadata{Path: "/f"})
	first, _ := s.Get("/f")
	s.Put(Metadata{Path: "/f", Size: 999})
	second, _ := s.Get("/f")
	if first.InodeID != second.InodeID {
		t.Errorf("inode changed on update: %d → %d", first.InodeID, second.InodeID)
	}
	if second.Size != 999 {
		t.Error("update did not apply")
	}
}

func TestInodesUnique(t *testing.T) {
	s := NewStore()
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		p := "/f" + strconv.Itoa(i)
		s.PutPath(p)
		md, _ := s.Get(p)
		if seen[md.InodeID] {
			t.Fatalf("duplicate inode %d", md.InodeID)
		}
		seen[md.InodeID] = true
	}
}

func TestHasDeleteLen(t *testing.T) {
	s := NewStore()
	s.PutPath("/x")
	if !s.Has("/x") || s.Has("/y") {
		t.Error("Has inconsistent")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if !s.Delete("/x") {
		t.Error("Delete of present path returned false")
	}
	if s.Delete("/x") {
		t.Error("Delete of absent path returned true")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after delete, want 0", s.Len())
	}
}

func TestPathsSorted(t *testing.T) {
	s := NewStore()
	for _, p := range []string{"/c", "/a", "/b"} {
		s.PutPath(p)
	}
	got := s.Paths()
	want := []string{"/a", "/b", "/c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Paths = %v, want %v", got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		s.PutPath("/f" + strconv.Itoa(i))
	}
	visits := 0
	s.Range(func(Metadata) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Errorf("Range visited %d, want 3", visits)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p := "/w" + strconv.Itoa(w) + "/f" + strconv.Itoa(i)
				s.PutPath(p)
				if !s.Has(p) {
					t.Errorf("lost %s", p)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 2000 {
		t.Errorf("Len = %d, want 2000", s.Len())
	}
}
