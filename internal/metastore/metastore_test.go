package metastore

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestPutGet(t *testing.T) {
	s := NewStore()
	md := Metadata{Path: "/a/b", Size: 123, Mode: 0o755, UID: 10, GID: 20, MTime: time.Unix(1e9, 0)}
	s.Put(md)
	got, ok := s.Get("/a/b")
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if got.Size != 123 || got.Mode != 0o755 || got.UID != 10 {
		t.Errorf("Get = %+v", got)
	}
	if got.InodeID == 0 {
		t.Error("inode not assigned")
	}
}

func TestInodeStableAcrossUpdates(t *testing.T) {
	s := NewStore()
	s.Put(Metadata{Path: "/f"})
	first, _ := s.Get("/f")
	s.Put(Metadata{Path: "/f", Size: 999})
	second, _ := s.Get("/f")
	if first.InodeID != second.InodeID {
		t.Errorf("inode changed on update: %d → %d", first.InodeID, second.InodeID)
	}
	if second.Size != 999 {
		t.Error("update did not apply")
	}
}

func TestInodesUnique(t *testing.T) {
	s := NewStore()
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		p := "/f" + strconv.Itoa(i)
		s.PutPath(p)
		md, _ := s.Get(p)
		if seen[md.InodeID] {
			t.Fatalf("duplicate inode %d", md.InodeID)
		}
		seen[md.InodeID] = true
	}
}

func TestHasDeleteLen(t *testing.T) {
	s := NewStore()
	s.PutPath("/x")
	if !s.Has("/x") || s.Has("/y") {
		t.Error("Has inconsistent")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if !s.Delete("/x") {
		t.Error("Delete of present path returned false")
	}
	if s.Delete("/x") {
		t.Error("Delete of absent path returned true")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after delete, want 0", s.Len())
	}
}

func TestPathsSorted(t *testing.T) {
	s := NewStore()
	for _, p := range []string{"/c", "/a", "/b"} {
		s.PutPath(p)
	}
	got := s.Paths()
	want := []string{"/a", "/b", "/c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Paths = %v, want %v", got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		s.PutPath("/f" + strconv.Itoa(i))
	}
	visits := 0
	s.Range(func(Metadata) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Errorf("Range visited %d, want 3", visits)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p := "/w" + strconv.Itoa(w) + "/f" + strconv.Itoa(i)
				s.PutPath(p)
				if !s.Has(p) {
					t.Errorf("lost %s", p)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 2000 {
		t.Errorf("Len = %d, want 2000", s.Len())
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := NewStore()
	s.Put(Metadata{Path: "/a", Size: 1, Mode: 0o600, UID: 3, GID: 4, MTime: time.Unix(5, 6)})
	s.Put(Metadata{Path: "/b", Size: 2})
	s.Delete("/a") // counter stays advanced past the deleted inode

	snap := s.Snapshot()
	if snap.NextIno != 2 {
		t.Fatalf("NextIno = %d, want 2", snap.NextIno)
	}
	if len(snap.Files) != 1 || snap.Files[0].Path != "/b" {
		t.Fatalf("Files = %+v", snap.Files)
	}

	fresh := NewStore()
	fresh.Restore(snap)
	got, ok := fresh.Get("/b")
	if !ok || got.Size != 2 || got.InodeID != 2 {
		t.Fatalf("restored /b = (%+v, %v)", got, ok)
	}
	if fresh.Len() != 1 {
		t.Fatalf("Len = %d", fresh.Len())
	}
}

func TestSnapshotFilesSorted(t *testing.T) {
	s := NewStore()
	for _, p := range []string{"/z", "/m", "/a"} {
		s.PutPath(p)
	}
	snap := s.Snapshot()
	for i := 1; i < len(snap.Files); i++ {
		if snap.Files[i-1].Path >= snap.Files[i].Path {
			t.Fatalf("snapshot files not sorted: %v before %v", snap.Files[i-1].Path, snap.Files[i].Path)
		}
	}
}

// TestPutAfterRestoreNeverReusesInode is the property the snapshot format
// exists to protect: across an arbitrary sequence of puts, deletes, a
// snapshot/restore cycle, and more puts, no inode number is ever issued
// twice. A reused inode would let a recovered daemon alias two files.
func TestPutAfterRestoreNeverReusesInode(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		s := NewStore()
		issued := make(map[uint64]string) // inode → path it was issued for
		note := func(p string) {
			md, _ := s.Get(p)
			if prev, ok := issued[md.InodeID]; ok && prev != p {
				t.Fatalf("trial %d: inode %d issued to %q and %q", trial, md.InodeID, prev, p)
			}
			issued[md.InodeID] = p
		}
		n := 0
		newPath := func() string { n++; return "/t/" + strconv.Itoa(n) }
		live := []string{}
		for step := 0; step < 200; step++ {
			switch {
			case len(live) > 0 && rng.Intn(3) == 0:
				i := rng.Intn(len(live))
				s.Delete(live[i])
				live = append(live[:i], live[i+1:]...)
			default:
				p := newPath()
				s.PutPath(p)
				note(p)
				live = append(live, p)
			}
			if rng.Intn(20) == 0 {
				fresh := NewStore()
				fresh.Restore(s.Snapshot())
				s = fresh
			}
		}
		// Final burst of puts after the last restore.
		for i := 0; i < 50; i++ {
			p := newPath()
			s.PutPath(p)
			note(p)
		}
	}
}

// TestRestoreClampsCounter pins the defensive bump: a snapshot whose
// counter lags its own records (hand-built or from a broken writer) must
// not make Put reissue a live inode.
func TestRestoreClampsCounter(t *testing.T) {
	s := NewStore()
	s.Restore(Snapshot{NextIno: 1, Files: []Metadata{{Path: "/big", InodeID: 90}}})
	s.PutPath("/next")
	md, _ := s.Get("/next")
	if md.InodeID <= 90 {
		t.Fatalf("inode %d not clamped above restored max 90", md.InodeID)
	}
}
