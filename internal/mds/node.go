// Package mds implements the state and level-local behaviour of one metadata
// server: its authoritative metadata store, the Bloom filter summarizing its
// local files, the L1 LRU array, the replica array (the L2 segment array in
// G-HBA, the global array in the HBA baseline), the IDBFA, and the
// XOR-delta update protocol of Section 3.4.
//
// A Node answers the "what do you know locally" half of every query level;
// the routing between nodes — multicasts, forwards, verification — belongs
// to the scheme layers (internal/core, internal/hba) that own the topology.
package mds

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ghba/internal/bloom"
	"ghba/internal/bloomarray"
	"ghba/internal/metastore"
)

// Config sizes a node's filter structures.
type Config struct {
	// ExpectedFiles sizes the local Bloom filter (files homed per MDS).
	ExpectedFiles uint64
	// BitsPerFile is the filter ratio m/n. G-HBA "can afford to increase
	// the number of bits per file" thanks to its memory savings; 16 is the
	// default, 8 matches the BFA8 baseline of Table 5.
	BitsPerFile float64
	// LRUCapacity is the per-home-MDS generation size of the L1 array.
	LRUCapacity uint64
	// LRUBitsPerFile is the filter ratio of L1 generations.
	LRUBitsPerFile float64
	// Layout selects the bit layout for every filter the node creates (the
	// local filter and L1 generations — and, transitively, every replica
	// shipped from it). The zero value is the classic layout, which keeps
	// existing snapshots, wire traffic, and fixed-seed runs byte-identical;
	// LayoutBlocked answers each filter probe from one cache line.
	Layout bloom.Layout
}

// DefaultConfig returns the sizing used throughout the experiments.
func DefaultConfig() Config {
	return Config{
		ExpectedFiles:  50_000,
		BitsPerFile:    16,
		LRUCapacity:    2_048,
		LRUBitsPerFile: 16,
	}
}

func (c Config) validate() error {
	if c.ExpectedFiles == 0 || c.BitsPerFile <= 0 {
		return fmt.Errorf("mds: invalid filter sizing: files=%d bits=%f",
			c.ExpectedFiles, c.BitsPerFile)
	}
	if c.LRUCapacity == 0 || c.LRUBitsPerFile <= 0 {
		return fmt.Errorf("mds: invalid LRU sizing: cap=%d bits=%f",
			c.LRUCapacity, c.LRUBitsPerFile)
	}
	return nil
}

// Node is one metadata server.
//
// Concurrency model: the sharded cluster write path mutates different nodes
// from different goroutines while lookup workers probe them, so each node
// carries its own lock — but only for writers. The query path is lock-free:
// the local filter is published through an atomic pointer (Rebuild swaps in
// a freshly built filter rather than clearing in place, so readers never
// observe a half-rebuilt filter), in-place inserts synchronize word-wise
// inside bloom.Filter, and the LRU and replica arrays publish copy-on-write
// snapshots. mu serializes the mutators of the local filter and guards the
// last-shipped snapshot and the deletion counter — the state the
// create/delete/ship protocol reads and writes. The store synchronizes
// internally; the IDBFA is only mutated during reconfiguration, which the
// cluster layer serializes exclusively against all node traffic.
type Node struct {
	id  int
	cfg Config

	mu sync.RWMutex

	store *metastore.Store
	local atomic.Pointer[bloom.Filter]

	lru      *bloomarray.LRUArray
	replicas *bloomarray.Array
	idbfa    *bloomarray.IDBFA

	// lastShipped is the snapshot of the local filter most recently
	// distributed to remote replica holders; the XOR delta against it
	// drives the update protocol.
	lastShipped *bloom.Filter

	// deletesSinceRebuild counts deletions whose bits are still set in the
	// local filter; Rebuild clears them.
	deletesSinceRebuild uint64
}

// NewNode creates a node with the given ID and sizing.
func NewNode(id int, cfg Config) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	local, err := bloom.NewForCapacityLayout(cfg.ExpectedFiles, cfg.BitsPerFile, cfg.Layout)
	if err != nil {
		return nil, fmt.Errorf("mds: sizing local filter: %w", err)
	}
	lru, err := bloomarray.NewLRUArrayLayout(cfg.LRUCapacity, cfg.LRUBitsPerFile, cfg.Layout)
	if err != nil {
		return nil, fmt.Errorf("mds: sizing LRU array: %w", err)
	}
	n := &Node{
		id:          id,
		cfg:         cfg,
		store:       metastore.NewStore(),
		lru:         lru,
		replicas:    bloomarray.NewArray(),
		idbfa:       bloomarray.NewDefaultIDBFA(),
		lastShipped: local.Clone(),
	}
	n.local.Store(local)
	return n, nil
}

// ID returns the node's MDS identifier.
func (n *Node) ID() int { return n.id }

// Store exposes the authoritative metadata store.
func (n *Node) Store() *metastore.Store { return n.store }

// LRU exposes the L1 array.
func (n *Node) LRU() *bloomarray.LRUArray { return n.lru }

// Replicas exposes the replica array (segment array in G-HBA).
func (n *Node) Replicas() *bloomarray.Array { return n.replicas }

// IDBFA exposes the replica-location array.
func (n *Node) IDBFA() *bloomarray.IDBFA { return n.idbfa }

// LocalFilter returns the currently published filter over locally homed
// files. Callers must not mutate it; use AddFile/DeleteFile. Probing it is
// safe at any time (filter reads are word-wise atomic), but the pointer is a
// snapshot: a concurrent Rebuild publishes a replacement, after which the
// returned filter no longer receives inserts.
func (n *Node) LocalFilter() *bloom.Filter { return n.local.Load() }

// FileCount returns the number of files homed here.
func (n *Node) FileCount() int { return n.store.Len() }

// AddFile homes a file at this node: metadata is stored and the local filter
// updated.
func (n *Node) AddFile(path string) {
	n.store.PutPath(path)
	n.mu.Lock()
	n.local.Load().AddString(path)
	n.mu.Unlock()
}

// AddFileMeta homes a file with full attributes.
func (n *Node) AddFileMeta(md metastore.Metadata) {
	n.store.Put(md)
	n.mu.Lock()
	n.local.Load().AddString(md.Path)
	n.mu.Unlock()
}

// DeleteFile removes a file from this node. The local Bloom filter cannot
// unset bits, so the filter goes stale until Rebuild; the store answer stays
// authoritative. Reports whether the file was homed here.
func (n *Node) DeleteFile(path string) bool {
	ok := n.store.Delete(path)
	if ok {
		n.mu.Lock()
		n.deletesSinceRebuild++
		n.mu.Unlock()
	}
	return ok
}

// HasFile reports authoritatively whether the file is homed here (the "disk
// verify" behind a positive L4 answer; the caller charges the disk cost).
func (n *Node) HasFile(path string) bool { return n.store.Has(path) }

// LocalPositive reports whether the local filter answers positively — the
// memory-speed part of an L4 check. A negative is definitive (no false
// negatives for undeleted files); a positive requires verification. Lock-free.
func (n *Node) LocalPositive(path string) bool {
	return n.local.Load().ContainsString(path)
}

// LocalPositiveDigest is LocalPositive for a pre-hashed path: k word loads
// against the published filter, no lock, no hashing.
//
//ghbavet:hotpath
func (n *Node) LocalPositiveDigest(d *bloom.Digest) bool {
	return n.local.Load().ContainsDigest(d)
}

// DeletesSinceRebuild returns how many deletions the local filter has not
// yet absorbed; schemes use it to schedule rebuilds.
func (n *Node) DeletesSinceRebuild() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.deletesSinceRebuild
}

// Rebuild regenerates the local filter from the store, clearing stale bits
// left by deletions. The caller charges the appropriate cost.
func (n *Node) Rebuild() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rebuildLocked()
}

// rebuildLocked builds a fresh filter from the store and publishes it with a
// pointer swap. Building aside (rather than Clear + re-add in place) keeps
// the rebuild invisible to lock-free readers: they probe either the old
// filter (stale bits and all) or the complete new one, never a transiently
// empty vector that would produce false negatives. Requires n.mu.
func (n *Node) rebuildLocked() {
	fresh, err := bloom.NewForCapacityLayout(n.cfg.ExpectedFiles, n.cfg.BitsPerFile, n.cfg.Layout)
	if err != nil {
		// Geometry was validated in NewNode; reaching here means internal
		// corruption, not caller error.
		panic(fmt.Sprintf("mds: invalid rebuild geometry: %v", err))
	}
	n.store.Range(func(md metastore.Metadata) bool {
		fresh.AddString(md.Path)
		return true
	})
	n.local.Store(fresh)
	n.deletesSinceRebuild = 0
}

// RebuildIfStale rebuilds the local filter when at least threshold deletions
// have accumulated since the last rebuild, reporting whether it did. The
// check and the rebuild happen under one lock acquisition so concurrent
// deleters on the same node cannot both trigger a rebuild for the same
// batch of stale bits.
func (n *Node) RebuildIfStale(threshold uint64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.deletesSinceRebuild < threshold {
		return false
	}
	n.rebuildLocked()
	return true
}

// DeltaBits returns the Hamming distance between the local filter and the
// snapshot last shipped to replica holders — the staleness measure of the
// XOR-delta protocol.
func (n *Node) DeltaBits() uint64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.deltaBitsLocked()
}

func (n *Node) deltaBitsLocked() uint64 {
	d, err := n.local.Load().XorBits(n.lastShipped)
	if err != nil {
		// local and lastShipped are created from the same geometry and
		// only ever replaced together; a mismatch is internal corruption.
		panic(fmt.Sprintf("mds: local/lastShipped geometry diverged: %v", err))
	}
	return d
}

// NeedsShip reports whether the local filter drifted at least thresholdBits
// from the last shipped snapshot.
func (n *Node) NeedsShip(thresholdBits uint64) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.deltaBitsLocked() >= thresholdBits
}

// Ship returns a snapshot of the local filter and records it as the last
// shipped one. The caller distributes the snapshot and charges message
// costs. The snapshot is shared with the node's own staleness tracking and
// may be installed at several holders, so it must be treated as immutable.
func (n *Node) Ship() *bloom.Filter {
	n.mu.Lock()
	defer n.mu.Unlock()
	snap := n.local.Load().Clone()
	n.lastShipped = snap
	return snap
}

// InstallReplica stores (or refreshes) the replica of origin's filter.
func (n *Node) InstallReplica(origin int, f *bloom.Filter) {
	n.replicas.Put(origin, f)
}

// DropReplica removes origin's replica, returning it (nil if absent).
func (n *Node) DropReplica(origin int) *bloom.Filter {
	return n.replicas.Remove(origin)
}

// ReplicaCount returns how many remote replicas this node stores.
func (n *Node) ReplicaCount() int { return n.replicas.Len() }

// QueryL1 runs the L1 check: the LRU array.
func (n *Node) QueryL1(path string) bloomarray.Result {
	return n.lru.QueryString(path)
}

// QueryL1Digest is QueryL1 for a pre-hashed path, appending hits into buf
// (which may be nil).
func (n *Node) QueryL1Digest(d *bloom.Digest, buf []int) bloomarray.Result {
	return n.lru.QueryDigest(d, buf)
}

// QueryL2 runs the L2 check: the replica array plus the node's own filter
// (the node is knowledgeable about its own files at memory speed). The
// node's own ID participates like any replica.
func (n *Node) QueryL2(path string) bloomarray.Result {
	d := bloom.NewDigestString(path)
	return n.QueryL2Digest(&d, nil)
}

// QueryL2Digest is QueryL2 for a pre-hashed path: the path is hashed zero
// times here — the segment array probe and the own-filter probe both replay
// the digest's cached bit positions. Hits are appended into buf (which may
// be nil) and returned in ascending order. The whole check is lock-free:
// one COW-snapshot scan plus one published-pointer probe.
//
//ghbavet:hotpath
func (n *Node) QueryL2Digest(d *bloom.Digest, buf []int) bloomarray.Result {
	r := n.replicas.QueryDigest(d, buf)
	if n.LocalPositiveDigest(d) {
		r.Hits = bloomarray.InsertSorted(r.Hits, n.id)
	}
	return r
}

// ObserveHit feeds a confirmed (path → home) mapping into the L1 array.
func (n *Node) ObserveHit(path string, home int) {
	n.lru.ObserveString(path, home)
}

// ObserveHitDigest feeds a pre-hashed confirmed mapping into the L1 array.
func (n *Node) ObserveHitDigest(d *bloom.Digest, home int) {
	n.lru.ObserveDigest(d, home)
}
