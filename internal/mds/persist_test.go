package mds

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ghba/internal/metastore"
	"ghba/internal/wal"
)

func testConfig() Config {
	return Config{ExpectedFiles: 1000, BitsPerFile: 8, LRUCapacity: 64, LRUBitsPerFile: 8}
}

func TestSnapshotRoundTrip(t *testing.T) {
	n, err := NewNode(3, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.AddFileMeta(metastore.Metadata{Path: "/full", Size: 42, Mode: 0o755, UID: 7, GID: 8, MTime: time.Unix(100, 200)})
	for i := 0; i < 50; i++ {
		n.AddFile(fmt.Sprintf("/f/%d", i))
	}
	n.DeleteFile("/f/10")
	n.Ship() // make lastShipped differ from a fresh filter

	blob, err := n.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	back, err := NewNode(3, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := back.UnmarshalSnapshot(blob); err != nil {
		t.Fatalf("UnmarshalSnapshot: %v", err)
	}
	if back.FileCount() != n.FileCount() {
		t.Fatalf("file count %d, want %d", back.FileCount(), n.FileCount())
	}
	md, ok := back.Store().Get("/full")
	if !ok || md.Size != 42 || md.Mode != 0o755 || md.UID != 7 || !md.MTime.Equal(time.Unix(100, 200)) {
		t.Fatalf("metadata lost: (%+v, %v)", md, ok)
	}
	orig, _ := n.Store().Get("/full")
	if md.InodeID != orig.InodeID {
		t.Fatalf("inode changed: %d → %d", orig.InodeID, md.InodeID)
	}
	if back.DeletesSinceRebuild() != n.DeletesSinceRebuild() {
		t.Fatalf("delete counter %d, want %d", back.DeletesSinceRebuild(), n.DeletesSinceRebuild())
	}
	// The deleted path's bits are still in the filter (no rebuild yet) but
	// the store is authoritative either way.
	if back.HasFile("/f/10") {
		t.Fatal("deleted file resurrected")
	}
	if !back.LocalPositive("/f/11") {
		t.Fatal("restored filter lost a live path")
	}
	// Drift tracking must survive: shipped == local at snapshot time.
	if back.DeltaBits() != n.DeltaBits() {
		t.Fatalf("delta bits %d, want %d", back.DeltaBits(), n.DeltaBits())
	}
	// Put after restore must extend, not reuse, the inode sequence.
	back.AddFile("/new")
	nmd, _ := back.Store().Get("/new")
	if nmd.InodeID <= md.InodeID {
		t.Fatalf("inode %d reused after restore (existing max ≥ %d)", nmd.InodeID, md.InodeID)
	}
}

func TestSnapshotRejectsWrongID(t *testing.T) {
	n, _ := NewNode(1, testConfig())
	blob, err := n.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	other, _ := NewNode(2, testConfig())
	if err := other.UnmarshalSnapshot(blob); err == nil {
		t.Fatal("snapshot for MDS 1 loaded into MDS 2")
	}
}

func TestSnapshotRejectsDamage(t *testing.T) {
	n, _ := NewNode(1, testConfig())
	n.AddFile("/a")
	blob, err := n.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() *Node { m, _ := NewNode(1, testConfig()); return m }
	for cut := 0; cut < len(blob); cut += 7 {
		if err := fresh().UnmarshalSnapshot(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if err := fresh().UnmarshalSnapshot(append(append([]byte{}, blob...), 0xff)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestRecoverFreshDir(t *testing.T) {
	n, l, info, err := Recover(5, testConfig(), t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if info.Files != 0 || info.Replayed != 0 || info.SnapshotSeq != 0 {
		t.Fatalf("fresh dir recovery: %+v", info)
	}
	if n.ID() != 5 {
		t.Fatalf("id = %d", n.ID())
	}
}

func TestRecoverReplaysLogOverSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()

	// Life 1: create files, snapshot mid-stream, keep mutating, crash.
	n, l, _, err := Recover(2, cfg, dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	apply := func(r wal.Record) {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		if r.Op == wal.OpCreate {
			n.AddFile(r.Path)
		} else {
			n.DeleteFile(r.Path)
		}
	}
	for i := 0; i < 30; i++ {
		apply(wal.Record{Op: wal.OpCreate, Path: fmt.Sprintf("/pre/%d", i)})
	}
	apply(wal.Record{Op: wal.OpDelete, Path: "/pre/4"})
	blob, err := n.MarshalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(blob); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		apply(wal.Record{Op: wal.OpCreate, Path: fmt.Sprintf("/post/%d", i)})
	}
	apply(wal.Record{Op: wal.OpDelete, Path: "/pre/7"})
	wantFiles := n.FileCount()
	if err := l.Abandon(); err != nil { // crash, no clean close
		t.Fatal(err)
	}

	// Life 2: recover and verify the merged state.
	n2, l2, info, err := Recover(2, cfg, dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if info.SnapshotSeq != 1 || info.Replayed != 11 {
		t.Fatalf("recovery info: %+v", info)
	}
	if info.Files != wantFiles || n2.FileCount() != wantFiles {
		t.Fatalf("recovered %d files, want %d", n2.FileCount(), wantFiles)
	}
	for _, probe := range []struct {
		path string
		want bool
	}{
		{"/pre/0", true}, {"/pre/4", false}, {"/pre/7", false},
		{"/post/9", true}, {"/never", false},
	} {
		if n2.HasFile(probe.path) != probe.want {
			t.Errorf("HasFile(%s) = %v, want %v", probe.path, !probe.want, probe.want)
		}
	}
	// Inode continuity across the crash: 41 creates happened in life 1.
	n2.AddFile("/life2")
	md, _ := n2.Store().Get("/life2")
	if md.InodeID <= 40 {
		t.Fatalf("inode %d regressed across recovery", md.InodeID)
	}
}

func TestRecoverRejectsForeignSnapshot(t *testing.T) {
	dir := t.TempDir()
	n, l, _, err := Recover(1, testConfig(), dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := n.MarshalSnapshot()
	if err := l.Snapshot(blob); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, _, _, err := Recover(9, testConfig(), dir, wal.Options{}); err == nil ||
		!strings.Contains(err.Error(), "belongs to MDS 1") {
		t.Fatalf("foreign snapshot: err = %v", err)
	}
}

// FuzzSnapshotUnmarshal hammers the decoder: arbitrary bytes must never
// panic, and any blob a node accepts must re-marshal to an equal state.
func FuzzSnapshotUnmarshal(f *testing.F) {
	n, _ := NewNode(1, Config{ExpectedFiles: 10, BitsPerFile: 8, LRUCapacity: 8, LRUBitsPerFile: 8})
	n.AddFile("/seed")
	blob, _ := n.MarshalSnapshot()
	f.Add(blob)
	f.Add([]byte{})
	f.Add(blob[:len(blob)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		m, _ := NewNode(1, Config{ExpectedFiles: 10, BitsPerFile: 8, LRUCapacity: 8, LRUBitsPerFile: 8})
		if err := m.UnmarshalSnapshot(data); err != nil {
			return
		}
		again, err := m.MarshalSnapshot()
		if err != nil {
			t.Fatalf("accepted blob does not re-marshal: %v", err)
		}
		m2, _ := NewNode(1, Config{ExpectedFiles: 10, BitsPerFile: 8, LRUCapacity: 8, LRUBitsPerFile: 8})
		if err := m2.UnmarshalSnapshot(again); err != nil {
			t.Fatalf("re-marshalled blob rejected: %v", err)
		}
	})
}
