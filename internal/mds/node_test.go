package mds

import (
	"strconv"
	"testing"

	"ghba/internal/bloom"
	"ghba/internal/metastore"
)

func newTestNode(t *testing.T, id int) *Node {
	t.Helper()
	cfg := DefaultConfig()
	cfg.ExpectedFiles = 2000
	n, err := NewNode(id, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewNodeValidation(t *testing.T) {
	bad := []Config{
		{ExpectedFiles: 0, BitsPerFile: 16, LRUCapacity: 10, LRUBitsPerFile: 16},
		{ExpectedFiles: 10, BitsPerFile: 0, LRUCapacity: 10, LRUBitsPerFile: 16},
		{ExpectedFiles: 10, BitsPerFile: 16, LRUCapacity: 0, LRUBitsPerFile: 16},
		{ExpectedFiles: 10, BitsPerFile: 16, LRUCapacity: 10, LRUBitsPerFile: 0},
	}
	for i, cfg := range bad {
		if _, err := NewNode(1, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestAddDeleteFile(t *testing.T) {
	n := newTestNode(t, 1)
	n.AddFile("/a")
	if !n.HasFile("/a") || !n.LocalPositive("/a") {
		t.Error("added file not visible")
	}
	if n.FileCount() != 1 {
		t.Errorf("FileCount = %d", n.FileCount())
	}
	if !n.DeleteFile("/a") {
		t.Error("DeleteFile returned false")
	}
	if n.HasFile("/a") {
		t.Error("deleted file still authoritative")
	}
	// Filter is stale (bits cannot be unset) until rebuild.
	if n.DeletesSinceRebuild() != 1 {
		t.Errorf("DeletesSinceRebuild = %d", n.DeletesSinceRebuild())
	}
	if n.DeleteFile("/never") {
		t.Error("deleting absent file returned true")
	}
}

func TestAddFileMeta(t *testing.T) {
	n := newTestNode(t, 1)
	n.AddFileMeta(metastore.Metadata{Path: "/m", Size: 42})
	md, ok := n.Store().Get("/m")
	if !ok || md.Size != 42 {
		t.Error("metadata not stored")
	}
	if !n.LocalPositive("/m") {
		t.Error("filter not updated by AddFileMeta")
	}
}

func TestRebuildClearsStaleBits(t *testing.T) {
	n := newTestNode(t, 1)
	for i := 0; i < 100; i++ {
		n.AddFile("/keep" + strconv.Itoa(i))
	}
	for i := 0; i < 100; i++ {
		n.AddFile("/drop" + strconv.Itoa(i))
	}
	for i := 0; i < 100; i++ {
		n.DeleteFile("/drop" + strconv.Itoa(i))
	}
	n.Rebuild()
	if n.DeletesSinceRebuild() != 0 {
		t.Error("rebuild did not reset delete counter")
	}
	for i := 0; i < 100; i++ {
		if !n.LocalPositive("/keep" + strconv.Itoa(i)) {
			t.Fatalf("rebuild lost kept file %d", i)
		}
	}
	// Most dropped files must now answer negatively (allow Bloom FPs).
	stale := 0
	for i := 0; i < 100; i++ {
		if n.LocalPositive("/drop" + strconv.Itoa(i)) {
			stale++
		}
	}
	if stale > 10 {
		t.Errorf("%d/100 deleted files still positive after rebuild", stale)
	}
}

func TestShipAndDeltaBits(t *testing.T) {
	n := newTestNode(t, 1)
	if n.DeltaBits() != 0 {
		t.Errorf("fresh node delta = %d", n.DeltaBits())
	}
	n.AddFile("/x")
	if n.DeltaBits() == 0 {
		t.Error("delta zero after mutation")
	}
	if !n.NeedsShip(1) {
		t.Error("NeedsShip(1) false after mutation")
	}
	snap := n.Ship()
	if !snap.ContainsString("/x") {
		t.Error("shipped snapshot missing file")
	}
	if n.DeltaBits() != 0 {
		t.Error("delta non-zero immediately after ship")
	}
	if n.NeedsShip(1) {
		t.Error("NeedsShip true after ship")
	}
	// Shipped snapshot is independent of future mutations.
	n.AddFile("/y")
	if snap.ContainsString("/y") && snap.Count() > 1 {
		t.Error("snapshot aliases live filter")
	}
}

func TestReplicaManagement(t *testing.T) {
	n := newTestNode(t, 1)
	f, err := bloom.NewForCapacity(100, 16)
	if err != nil {
		t.Fatal(err)
	}
	f.AddString("/remote/file")
	n.InstallReplica(7, f)
	if n.ReplicaCount() != 1 {
		t.Errorf("ReplicaCount = %d", n.ReplicaCount())
	}
	r := n.QueryL2("/remote/file")
	if id, ok := r.Unique(); !ok || id != 7 {
		t.Errorf("QueryL2 = %v, want unique 7", r.Hits)
	}
	if got := n.DropReplica(7); got != f {
		t.Error("DropReplica returned wrong filter")
	}
	if n.ReplicaCount() != 0 {
		t.Error("replica not dropped")
	}
	if n.DropReplica(7) != nil {
		t.Error("double drop returned non-nil")
	}
}

func TestQueryL2IncludesSelf(t *testing.T) {
	n := newTestNode(t, 5)
	n.AddFile("/mine")
	r := n.QueryL2("/mine")
	if id, ok := r.Unique(); !ok || id != 5 {
		t.Errorf("QueryL2 for own file = %v, want unique 5", r.Hits)
	}
}

func TestQueryL2SelfAndReplicaMultiHit(t *testing.T) {
	n := newTestNode(t, 5)
	n.AddFile("/dup")
	f, err := bloom.NewForCapacity(100, 16)
	if err != nil {
		t.Fatal(err)
	}
	f.AddString("/dup")
	n.InstallReplica(2, f)
	r := n.QueryL2("/dup")
	if !r.Multiple() {
		t.Fatalf("QueryL2 = %v, want multiple", r.Hits)
	}
	if r.Hits[0] != 2 || r.Hits[1] != 5 {
		t.Errorf("hits = %v, want [2 5]", r.Hits)
	}
}

func TestL1ObserveAndQuery(t *testing.T) {
	n := newTestNode(t, 1)
	if !n.QueryL1("/f").Miss() {
		t.Error("cold L1 hit")
	}
	n.ObserveHit("/f", 9)
	if id, ok := n.QueryL1("/f").Unique(); !ok || id != 9 {
		t.Error("L1 did not learn observation")
	}
}

func TestNodeAccessors(t *testing.T) {
	n := newTestNode(t, 42)
	if n.ID() != 42 {
		t.Errorf("ID = %d", n.ID())
	}
	if n.Store() == nil || n.LRU() == nil || n.Replicas() == nil || n.IDBFA() == nil || n.LocalFilter() == nil {
		t.Error("nil accessor")
	}
}
