package mds

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"ghba/internal/bloom"
	"ghba/internal/metastore"
	"ghba/internal/wal"
)

// Snapshot wire format: everything a daemon must retain across a restart.
// The replica array, IDBFA and L1 cache are deliberately absent — replicas
// are re-fetched from their origins during rejoin (the origins stay
// authoritative), and the L1 array is a cache that re-warms from traffic.
//
//	magic   uint32  0x6D645331 ("mdS1")
//	version uint8   1
//	id      uint32  owning MDS id (sanity-checked on load)
//	deletes uint64  deletesSinceRebuild
//	local   uint32 len | bloom filter bytes (bloom marshal format)
//	shipped uint32 len | bloom filter bytes (lastShipped)
//	nextIno uint64  metastore inode counter
//	count   uint32  file records, each:
//	  pathLen uint16 | path | size uint64 | mode uint32 | uid uint32 |
//	  gid uint32 | mtime int64 unix-nanos (MinInt64 = zero time) | ino uint64
const (
	snapshotMagic   uint32 = 0x6D645331
	snapshotVersion uint8  = 1
	// mtimeZero marks a zero time.Time, whose UnixNano is otherwise
	// undefined.
	mtimeZero int64 = math.MinInt64
)

// ErrBadSnapshot marks a snapshot blob that fails structural validation.
var ErrBadSnapshot = errors.New("mds: bad snapshot")

// MarshalSnapshot serializes the node's durable state. Safe to call
// concurrently with queries; callers that need the snapshot to match a WAL
// position exactly must hold off mutations themselves (the proto layer
// snapshots under its per-daemon request mutex).
func (n *Node) MarshalSnapshot() ([]byte, error) {
	n.mu.RLock()
	localBytes, err := n.local.Load().MarshalBinary()
	if err != nil {
		n.mu.RUnlock()
		return nil, fmt.Errorf("mds: marshal local filter: %w", err)
	}
	shippedBytes, err := n.lastShipped.MarshalBinary()
	if err != nil {
		n.mu.RUnlock()
		return nil, fmt.Errorf("mds: marshal shipped filter: %w", err)
	}
	deletes := n.deletesSinceRebuild
	n.mu.RUnlock()

	snap := n.store.Snapshot()

	size := 4 + 1 + 4 + 8 + 4 + len(localBytes) + 4 + len(shippedBytes) + 8 + 4
	for _, md := range snap.Files {
		size += 2 + len(md.Path) + 8 + 4 + 4 + 4 + 8 + 8
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint32(buf, snapshotMagic)
	buf = append(buf, snapshotVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(n.id))
	buf = binary.BigEndian.AppendUint64(buf, deletes)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(localBytes)))
	buf = append(buf, localBytes...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(shippedBytes)))
	buf = append(buf, shippedBytes...)
	buf = binary.BigEndian.AppendUint64(buf, snap.NextIno)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(snap.Files)))
	for _, md := range snap.Files {
		if len(md.Path) > math.MaxUint16 {
			return nil, fmt.Errorf("mds: path %d bytes exceeds snapshot limit", len(md.Path))
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(md.Path)))
		buf = append(buf, md.Path...)
		buf = binary.BigEndian.AppendUint64(buf, md.Size)
		buf = binary.BigEndian.AppendUint32(buf, md.Mode)
		buf = binary.BigEndian.AppendUint32(buf, md.UID)
		buf = binary.BigEndian.AppendUint32(buf, md.GID)
		mt := mtimeZero
		if !md.MTime.IsZero() {
			mt = md.MTime.UnixNano()
		}
		buf = binary.BigEndian.AppendUint64(buf, uint64(mt))
		buf = binary.BigEndian.AppendUint64(buf, md.InodeID)
	}
	return buf, nil
}

// UnmarshalSnapshot replaces the node's store, local filter, shipped
// snapshot and deletion counter with the snapshot's state. The node must be
// quiescent (freshly constructed, before serving).
func (n *Node) UnmarshalSnapshot(data []byte) error {
	r := snapReader{data: data}
	if r.u32() != snapshotMagic {
		return fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if v := r.u8(); v != snapshotVersion {
		return fmt.Errorf("%w: unknown version %d", ErrBadSnapshot, v)
	}
	if id := int(r.u32()); id != n.id && !r.failed {
		return fmt.Errorf("%w: snapshot belongs to MDS %d, not %d", ErrBadSnapshot, id, n.id)
	}
	deletes := r.u64()

	var local, shipped bloom.Filter
	if err := local.UnmarshalBinary(r.bytes(int(r.u32()))); err != nil && !r.failed {
		return fmt.Errorf("%w: local filter: %v", ErrBadSnapshot, err)
	}
	if err := shipped.UnmarshalBinary(r.bytes(int(r.u32()))); err != nil && !r.failed {
		return fmt.Errorf("%w: shipped filter: %v", ErrBadSnapshot, err)
	}

	nextIno := r.u64()
	count := r.u32()
	files := make([]metastore.Metadata, 0, count)
	for i := uint32(0); i < count && !r.failed; i++ {
		md := metastore.Metadata{Path: string(r.bytes(int(r.u16())))}
		md.Size = r.u64()
		md.Mode = r.u32()
		md.UID = r.u32()
		md.GID = r.u32()
		if mt := int64(r.u64()); mt != mtimeZero {
			md.MTime = time.Unix(0, mt)
		}
		md.InodeID = r.u64()
		files = append(files, md)
	}
	if r.failed {
		return fmt.Errorf("%w: truncated at byte %d", ErrBadSnapshot, r.off)
	}
	if r.off != len(r.data) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(r.data)-r.off)
	}

	n.store.Restore(metastore.Snapshot{NextIno: nextIno, Files: files})
	n.mu.Lock()
	n.local.Store(&local)
	n.lastShipped = &shipped
	n.deletesSinceRebuild = deletes
	n.mu.Unlock()
	return nil
}

// snapReader cursors over a snapshot blob; out-of-bounds reads set failed
// and return zeros, so decode loops check one flag instead of every read.
type snapReader struct {
	data   []byte
	off    int
	failed bool
}

func (r *snapReader) bytes(n int) []byte {
	if r.failed || n < 0 || len(r.data)-r.off < n {
		r.failed = true
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *snapReader) u8() uint8 {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *snapReader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *snapReader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *snapReader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// RecoveryInfo summarizes what Recover reconstructed.
type RecoveryInfo struct {
	// SnapshotSeq is the WAL sequence the loaded snapshot covered (0 when
	// the daemon started from an empty or snapshot-less directory).
	SnapshotSeq uint64
	// Replayed is the number of log records applied after the snapshot.
	Replayed int
	// Torn reports the WAL had a torn tail that was truncated away.
	Torn bool
	// Files is the number of files homed here after recovery.
	Files int
}

// Recover builds a node from a WAL directory: the latest valid snapshot is
// loaded and the log tail replayed on top, then the log is left open for
// the daemon's subsequent appends. An empty or absent directory yields a
// fresh node and a fresh log — first boot and recovery are the same path.
func Recover(id int, cfg Config, dir string, opts wal.Options) (*Node, *wal.Log, RecoveryInfo, error) {
	n, err := NewNode(id, cfg)
	if err != nil {
		return nil, nil, RecoveryInfo{}, err
	}
	l, rec, err := wal.Open(dir, opts)
	if err != nil {
		return nil, nil, RecoveryInfo{}, fmt.Errorf("mds: opening WAL for MDS %d: %w", id, err)
	}
	if rec.Snapshot != nil {
		if err := n.UnmarshalSnapshot(rec.Snapshot); err != nil {
			l.Close()
			return nil, nil, RecoveryInfo{}, fmt.Errorf("mds: loading snapshot for MDS %d: %w", id, err)
		}
	}
	for _, r := range rec.Records {
		switch r.Op {
		case wal.OpCreate:
			n.AddFile(r.Path)
		case wal.OpDelete:
			n.DeleteFile(r.Path)
		}
	}
	info := RecoveryInfo{
		SnapshotSeq: rec.SnapshotSeq,
		Replayed:    len(rec.Records),
		Torn:        rec.Torn,
		Files:       n.FileCount(),
	}
	return n, l, info, nil
}
