package bfa

import (
	"strconv"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 100, 8, 1); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := New(3, 0, 8, 1); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestLookupAfterSync(t *testing.T) {
	c, err := New(5, 1000, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		c.AddFile("/f" + strconv.Itoa(i))
	}
	c.Sync()
	correct := 0
	for i := 0; i < 200; i++ {
		path := "/f" + strconv.Itoa(i)
		r := c.Lookup(path, c.MDSIDs()[i%5])
		if home, ok := r.Unique(); ok && home == c.HomeOf(path) {
			correct++
		}
	}
	// At 16 bits/file false positives are rare; expect near-total accuracy.
	if correct < 190 {
		t.Errorf("only %d/200 unique-correct lookups", correct)
	}
}

func TestLookupUnknownEntry(t *testing.T) {
	c, err := New(2, 100, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Lookup("/x", 99).Miss() {
		t.Error("unknown entry produced hits")
	}
}

func TestHomeOfAbsent(t *testing.T) {
	c, err := New(2, 100, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.HomeOf("/none") != -1 {
		t.Error("absent home != -1")
	}
}

// TestArrayBytesRatio anchors Table 5: a BFA16 array is exactly twice a
// BFA8 array for the same capacity and population.
func TestArrayBytesRatio(t *testing.T) {
	c8, err := New(4, 10_000, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	c16, err := New(4, 10_000, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	b8, b16 := c8.ArrayBytes(0), c16.ArrayBytes(0)
	if b8 == 0 || b16 != 2*b8 {
		t.Errorf("BFA16/BFA8 = %d/%d, want exactly 2x", b16, b8)
	}
	if c8.BitsPerFile() != 8 || c16.BitsPerFile() != 16 {
		t.Error("BitsPerFile wrong")
	}
	if c8.ArrayBytes(99) != 0 {
		t.Error("unknown MDS array bytes non-zero")
	}
}

// TestArrayBytesGrowLinearlyWithN is the scalability weakness Table 5
// exposes: per-MDS memory grows linearly in the server count.
func TestArrayBytesGrowLinearlyWithN(t *testing.T) {
	small, err := New(5, 10_000, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	large, err := New(20, 10_000, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if large.ArrayBytes(0) != 4*small.ArrayBytes(0) {
		t.Errorf("array bytes %d vs %d, want exactly 4x", large.ArrayBytes(0), small.ArrayBytes(0))
	}
	if small.NumMDS() != 5 || large.NumMDS() != 20 {
		t.Error("NumMDS wrong")
	}
}
