// Package bfa implements the plain Bloom Filter Array baseline of Table 5:
// each MDS keeps one filter per server (its own plus N−1 replicas) at a
// fixed bit/file ratio, with no LRU front end and no grouping. It exists to
// anchor the memory-overhead comparison (BFA8 is the normalization unit of
// Table 5) and as the simplest possible probabilistic lookup scheme.
package bfa

import (
	"fmt"
	"math/rand"
	"sort"

	"ghba/internal/bloom"
	"ghba/internal/bloomarray"
)

// Cluster is a plain-BFA deployment.
type Cluster struct {
	bitsPerFile   float64
	expectedFiles uint64

	locals map[int]*bloom.Filter
	arrays map[int]*bloomarray.Array
	homes  map[string]int
	rng    *rand.Rand
}

// New builds a BFA cluster of n servers with filters sized for
// expectedFiles at bitsPerFile (8 for BFA8, 16 for BFA16).
func New(n int, expectedFiles uint64, bitsPerFile float64, seed int64) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("bfa: need at least one MDS, got %d", n)
	}
	c := &Cluster{
		bitsPerFile:   bitsPerFile,
		expectedFiles: expectedFiles,
		locals:        make(map[int]*bloom.Filter, n),
		arrays:        make(map[int]*bloomarray.Array, n),
		homes:         make(map[string]int),
		rng:           rand.New(rand.NewSource(seed)),
	}
	for i := 0; i < n; i++ {
		f, err := bloom.NewForCapacity(expectedFiles, bitsPerFile)
		if err != nil {
			return nil, fmt.Errorf("bfa: sizing filter: %w", err)
		}
		c.locals[i] = f
		c.arrays[i] = bloomarray.NewArray()
	}
	c.syncAll()
	return c, nil
}

func (c *Cluster) syncAll() {
	for origin, f := range c.locals {
		for id, arr := range c.arrays {
			_ = id
			arr.Put(origin, f.Clone())
		}
	}
}

// NumMDS returns the number of servers.
func (c *Cluster) NumMDS() int { return len(c.locals) }

// MDSIDs returns server IDs ascending.
func (c *Cluster) MDSIDs() []int {
	ids := make([]int, 0, len(c.locals))
	for id := range c.locals {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// AddFile homes a file at a random server.
func (c *Cluster) AddFile(path string) int {
	ids := c.MDSIDs()
	home := ids[c.rng.Intn(len(ids))]
	c.locals[home].AddString(path)
	c.homes[path] = home
	return home
}

// Sync refreshes every array from the current local filters.
func (c *Cluster) Sync() { c.syncAll() }

// Lookup queries one server's array, returning the candidate home MDSs.
func (c *Cluster) Lookup(path string, entry int) bloomarray.Result {
	arr := c.arrays[entry]
	if arr == nil {
		return bloomarray.Result{}
	}
	return arr.QueryString(path)
}

// HomeOf returns the ground-truth home (-1 when absent).
func (c *Cluster) HomeOf(path string) int {
	home, ok := c.homes[path]
	if !ok {
		return -1
	}
	return home
}

// ArrayBytes returns the per-MDS array footprint: N filters at the
// configured ratio — the quantity Table 5 normalizes against.
func (c *Cluster) ArrayBytes(id int) uint64 {
	arr := c.arrays[id]
	if arr == nil {
		return 0
	}
	return arr.SizeBytes()
}

// BitsPerFile returns the configured filter ratio.
func (c *Cluster) BitsPerFile() float64 { return c.bitsPerFile }
