package proto

import (
	"fmt"

	"ghba/internal/mds"
)

// AddMDS brings a new daemon into the running prototype, performing the
// reconfiguration over real RPCs and returning the new ID and the number of
// messages the operation cost — the quantity Fig 15 charts per scheme.
//
// HBA: the newcomer fetches a replica from every existing server and every
// server receives the newcomer's filter — 2N messages.
//
// G-HBA: the newcomer joins a group with room (offload migrations + IDBFA
// multicast) or splits a full group (replica-copy exchange), then its filter
// goes to one member of each other group.
func (c *Cluster) AddMDS() (int, int, error) {
	c.mu.Lock()
	id := c.nextID
	c.nextID++
	c.mu.Unlock()

	node, err := mds.NewNode(id, c.opts.Node)
	if err != nil {
		return 0, 0, fmt.Errorf("proto: node %d: %w", id, err)
	}
	ns, err := StartNode(node, "127.0.0.1:0", c.opts.ResidentReplicaLimit, c.opts.DiskPenalty)
	if err != nil {
		return 0, 0, err
	}
	c.mu.Lock()
	c.servers[id] = ns
	c.mu.Unlock()

	before := c.messages.Load()
	switch c.opts.Mode {
	case ModeHBA:
		err = c.addHBA(id)
	case ModeGHBA:
		err = c.addGHBA(id)
	}
	if err != nil {
		return 0, 0, err
	}
	return id, int(c.messages.Load() - before), nil
}

// addHBA: full replica exchange with every existing server.
func (c *Cluster) addHBA(id int) error {
	for _, other := range c.sortedIDs() {
		if other == id {
			continue
		}
		// Fetch the peer's filter and install it on the newcomer.
		snap, err := c.call(other, opShipFilter, nil)
		if err != nil {
			return err
		}
		if _, err := c.call(id, opInstallReplica, encodeOriginPayload(other, snap)); err != nil {
			return err
		}
	}
	// Distribute the newcomer's filter to everyone.
	snap, err := c.call(id, opShipFilter, nil)
	if err != nil {
		return err
	}
	for _, other := range c.sortedIDs() {
		if other == id {
			continue
		}
		if _, err := c.call(other, opInstallReplica, encodeOriginPayload(id, snap)); err != nil {
			return err
		}
	}
	return nil
}

// addGHBA: join-with-room or split, then replica distribution.
func (c *Cluster) addGHBA(id int) error {
	gi := c.pickGroupWithRoom()
	if gi >= 0 {
		if err := c.joinGroup(gi, id); err != nil {
			return err
		}
	} else {
		if err := c.splitGroup(id); err != nil {
			return err
		}
	}
	// Distribute the newcomer's filter to one member of each other group.
	ownGroup := c.groupOf(id)
	snap, err := c.call(id, opShipFilter, nil)
	if err != nil {
		return err
	}
	for gi, members := range c.groups {
		if gi == ownGroup || len(members) == 0 {
			continue
		}
		target := c.lightestMember(gi)
		if _, err := c.call(target, opInstallReplica, encodeOriginPayload(id, snap)); err != nil {
			return err
		}
		c.holders[gi][id] = target
	}
	return nil
}

func (c *Cluster) pickGroupWithRoom() int {
	best, bestSize := -1, c.opts.M
	for gi, members := range c.groups {
		if len(members) < bestSize {
			best, bestSize = gi, len(members)
		}
	}
	return best
}

// lightestMember returns the member of group gi holding the fewest
// replicas, by ascending ID on ties.
func (c *Cluster) lightestMember(gi int) int {
	counts := make(map[int]int)
	for origin, holder := range c.holders[gi] {
		_ = origin
		counts[holder]++
	}
	members := append([]int(nil), c.groups[gi]...)
	best := members[0]
	for _, m := range members[1:] {
		if counts[m] < counts[best] || (counts[m] == counts[best] && m < best) {
			best = m
		}
	}
	return best
}

// joinGroup performs the light-weight migration: members above the target
// replica count offload their excess to the newcomer over RPC, then the
// updated IDBFA is multicast (a ping per member).
func (c *Cluster) joinGroup(gi, id int) error {
	members := c.groups[gi]
	newSize := len(members) + 1
	external := len(c.servers) - newSize
	target := (external + newSize - 1) / newSize
	counts := make(map[int][]int) // holder → origins
	for origin, holder := range c.holders[gi] {
		counts[holder] = append(counts[holder], origin)
	}
	for _, m := range members {
		origins := counts[m]
		excess := len(origins) - target
		for i := 0; i < excess; i++ {
			origin := origins[i]
			// Fetch-and-drop from the current holder, install on newcomer.
			snap, err := c.call(m, opDropReplica, encodeOriginPayload(origin, nil))
			if err != nil {
				return err
			}
			if _, err := c.call(id, opInstallReplica, encodeOriginPayload(origin, snap)); err != nil {
				return err
			}
			c.holders[gi][origin] = id
		}
	}
	// Batched IDBFA multicast to the existing members.
	for _, m := range members {
		if _, err := c.call(m, opPing, nil); err != nil {
			return err
		}
	}
	c.groups[gi] = append(members, id)
	return nil
}

// splitGroup divides the first full group into two halves, the newcomer
// joining the second, with replica-copy exchange so both halves keep a
// global mirror image.
func (c *Cluster) splitGroup(id int) error {
	// Deterministic victim: lowest group index.
	victim := -1
	for gi := range c.groups {
		if victim < 0 || gi < victim {
			victim = gi
		}
	}
	members := c.groups[victim]
	move := len(members) / 2
	moving := append([]int(nil), members[len(members)-move:]...)
	staying := append([]int(nil), members[:len(members)-move]...)

	newGi := len(c.groups)
	c.groups[victim] = staying
	c.groups[newGi] = append(moving, id)
	c.holders[newGi] = make(map[int]int)

	// Carry moved holders' replicas into the new group's bookkeeping.
	movingSet := make(map[int]bool, len(moving))
	for _, m := range moving {
		movingSet[m] = true
	}
	for origin, holder := range c.holders[victim] {
		if movingSet[holder] {
			c.holders[newGi][origin] = holder
			delete(c.holders[victim], origin)
		}
	}

	inGroup := func(gi, mdsID int) bool {
		for _, m := range c.groups[gi] {
			if m == mdsID {
				return true
			}
		}
		return false
	}
	// Each side copies the external origins it now lacks from the other
	// side, and fetches fresh filters of the other side's members.
	for _, pair := range []struct{ dst, src int }{{victim, newGi}, {newGi, victim}} {
		for origin := range c.holders[pair.src] {
			if inGroup(pair.dst, origin) {
				continue
			}
			if _, ok := c.holders[pair.dst][origin]; ok {
				continue
			}
			// Fetch a fresh filter from the origin itself (alive in the
			// prototype); copying the other side's replica bytes would be
			// equivalent but staler.
			snap, err := c.call(origin, opShipFilter, nil)
			if err != nil {
				return err
			}
			target := c.lightestMember(pair.dst)
			if _, err := c.call(target, opInstallReplica, encodeOriginPayload(origin, snap)); err != nil {
				return err
			}
			c.holders[pair.dst][origin] = target
		}
		for _, member := range c.groups[pair.src] {
			if _, ok := c.holders[pair.dst][member]; ok {
				continue
			}
			snap, err := c.call(member, opShipFilter, nil)
			if err != nil {
				return err
			}
			target := c.lightestMember(pair.dst)
			if _, err := c.call(target, opInstallReplica, encodeOriginPayload(member, snap)); err != nil {
				return err
			}
			c.holders[pair.dst][member] = target
		}
	}
	// IDBFA multicast within both halves.
	for _, gi := range []int{victim, newGi} {
		for _, m := range c.groups[gi] {
			if _, err := c.call(m, opPing, nil); err != nil {
				return err
			}
		}
	}
	return nil
}
