package proto

import (
	"context"
	"sort"
	"sync/atomic"
)

// AddMDS brings a new daemon into the running prototype, performing the
// reconfiguration over real RPCs and returning the new ID and the number of
// messages the operation cost — the quantity Fig 15 charts per scheme.
//
// HBA: the newcomer fetches a replica from every existing server and every
// server receives the newcomer's filter — 2N messages.
//
// G-HBA: the newcomer joins a group with room (offload migrations + IDBFA
// multicast) or splits a full group (replica-copy exchange), then its filter
// goes to one member of each other group.
//
// AddMDS is an exclusive writer: it holds the membership write lock for the
// whole reconfiguration, so concurrent lookups either ran against the old
// membership (snapshotted before the lock) or wait and see the fully wired
// newcomer. The newcomer enters the member set only after reconfiguration
// completes — a lookup can never select a half-wired daemon as its entry
// and probe an empty node. The operation's message count is tracked
// per-operation, so concurrent lookup traffic does not pollute it.
func (c *Cluster) AddMDS(ctx context.Context) (int, int, error) {
	// Build and launch the daemon before taking the write lock; only the
	// reconfiguration itself excludes readers.
	c.mu.Lock()
	id := c.nextID
	c.nextID++
	c.mu.Unlock()

	ns, _, err := c.launchNode(id)
	if err != nil {
		return 0, 0, err
	}
	// The connection pool registers early — reconfiguration RPCs must
	// reach the newcomer — but the membership index does not.
	c.conns.register(id, ns.Addr())

	var msgs atomic.Int64
	c.mu.Lock()
	defer c.mu.Unlock()
	groupsBak, holdersBak := copyGroups(c.groups), copyHolders(c.holders)
	switch c.opts.Mode {
	case ModeHBA:
		err = c.addHBA(ctx, id, &msgs)
	case ModeGHBA:
		err = c.addGHBALocked(ctx, id, &msgs)
	}
	if err != nil {
		// Roll the coordinator's bookkeeping back to the pre-join state so
		// no group or holder entry references the abandoned daemon (a
		// lookup hitting such an entry would fail with "unknown MDS", and
		// refreshReplicas would panic on the missing server). Replicas
		// already migrated onto the newcomer cost affected lookups an L4
		// fallback until the next Populate re-ships them — correctness is
		// preserved either way.
		c.groups, c.holders = groupsBak, holdersBak
		ns.Close()
		c.conns.unregister(id)
		return 0, 0, err
	}
	c.servers[id] = ns
	c.rebuildIndexLocked()
	return id, int(msgs.Load()), nil
}

// addHBA: full replica exchange with every existing server. The newcomer is
// not yet in c.ids, so "every existing server" is simply the cached list.
func (c *Cluster) addHBA(ctx context.Context, id int, msgs *atomic.Int64) error {
	for _, other := range c.ids {
		// Fetch the peer's filter and install it on the newcomer.
		snap, err := c.call(ctx, other, opShipFilter, nil, msgs)
		if err != nil {
			return err
		}
		if _, err := c.call(ctx, id, opInstallReplica, encodeOriginPayload(other, snap), msgs); err != nil {
			return err
		}
	}
	// Distribute the newcomer's filter to everyone.
	snap, err := c.call(ctx, id, opShipFilter, nil, msgs)
	if err != nil {
		return err
	}
	for _, other := range c.ids {
		if _, err := c.call(ctx, other, opInstallReplica, encodeOriginPayload(id, snap), msgs); err != nil {
			return err
		}
	}
	return nil
}

// addGHBALocked: join-with-room or split, then replica distribution.
func (c *Cluster) addGHBALocked(ctx context.Context, id int, msgs *atomic.Int64) error {
	gi := c.pickGroupWithRoom()
	if gi >= 0 {
		if err := c.joinGroup(ctx, gi, id, msgs); err != nil {
			return err
		}
	} else {
		if err := c.splitGroup(ctx, id, msgs); err != nil {
			return err
		}
	}
	// Distribute the newcomer's filter to one member of each other group.
	ownGroup := c.groupOfLocked(id)
	snap, err := c.call(ctx, id, opShipFilter, nil, msgs)
	if err != nil {
		return err
	}
	gis := make([]int, 0, len(c.groups))
	for gi := range c.groups {
		gis = append(gis, gi)
	}
	sort.Ints(gis)
	for _, gi := range gis {
		if gi == ownGroup || len(c.groups[gi]) == 0 {
			continue
		}
		target := c.lightestMember(gi)
		if _, err := c.call(ctx, target, opInstallReplica, encodeOriginPayload(id, snap), msgs); err != nil {
			return err
		}
		c.holders[gi][id] = target
	}
	return nil
}

// groupOfLocked returns the group index containing id (G-HBA), or -1. It
// scans c.groups directly because reconfiguration mutates groups mid-flight
// and the cached groupIdx is only rebuilt afterwards. Callers hold c.mu.
func (c *Cluster) groupOfLocked(id int) int {
	for gi, members := range c.groups {
		for _, m := range members {
			if m == id {
				return gi
			}
		}
	}
	return -1
}

func (c *Cluster) pickGroupWithRoom() int {
	best, bestSize := -1, c.opts.M
	for gi, members := range c.groups {
		if len(members) < bestSize {
			best, bestSize = gi, len(members)
		}
	}
	return best
}

// lightestMember returns the member of group gi holding the fewest
// replicas, by ascending ID on ties.
func (c *Cluster) lightestMember(gi int) int {
	counts := make(map[int]int)
	for _, holder := range c.holders[gi] {
		counts[holder]++
	}
	members := append([]int(nil), c.groups[gi]...)
	best := members[0]
	for _, m := range members[1:] {
		if counts[m] < counts[best] || (counts[m] == counts[best] && m < best) {
			best = m
		}
	}
	return best
}

// joinGroup performs the light-weight migration: members above the target
// replica count offload their excess to the newcomer over RPC, then the
// updated IDBFA is multicast (a ping per member).
func (c *Cluster) joinGroup(ctx context.Context, gi, id int, msgs *atomic.Int64) error {
	members := c.groups[gi]
	newSize := len(members) + 1
	// The newcomer is not yet registered in c.servers, hence the +1.
	external := len(c.servers) + 1 - newSize
	target := (external + newSize - 1) / newSize
	counts := make(map[int][]int) // holder → origins
	for origin, holder := range c.holders[gi] {
		counts[holder] = append(counts[holder], origin)
	}
	// Map iteration order must not pick which replicas migrate: sort each
	// holder's origins so the reconfiguration message flow is identical
	// run-to-run under a fixed seed.
	for _, origins := range counts {
		sort.Ints(origins)
	}
	for _, m := range members {
		origins := counts[m]
		excess := len(origins) - target
		for i := 0; i < excess; i++ {
			origin := origins[i]
			// Fetch-and-drop from the current holder, install on newcomer.
			snap, err := c.call(ctx, m, opDropReplica, encodeOriginPayload(origin, nil), msgs)
			if err != nil {
				return err
			}
			if _, err := c.call(ctx, id, opInstallReplica, encodeOriginPayload(origin, snap), msgs); err != nil {
				return err
			}
			c.holders[gi][origin] = id
		}
	}
	// Batched IDBFA multicast to the existing members.
	for _, m := range members {
		if _, err := c.call(ctx, m, opPing, nil, msgs); err != nil {
			return err
		}
	}
	c.groups[gi] = append(append([]int(nil), members...), id)
	return nil
}

// splitGroup divides the first full group into two halves, the newcomer
// joining the second, with replica-copy exchange so both halves keep a
// global mirror image.
func (c *Cluster) splitGroup(ctx context.Context, id int, msgs *atomic.Int64) error {
	// Deterministic victim: lowest group index.
	victim := -1
	for gi := range c.groups {
		if victim < 0 || gi < victim {
			victim = gi
		}
	}
	members := c.groups[victim]
	move := len(members) / 2
	moving := append([]int(nil), members[len(members)-move:]...)
	staying := append([]int(nil), members[:len(members)-move]...)

	newGi := len(c.groups)
	c.groups[victim] = staying
	c.groups[newGi] = append(moving, id)
	c.holders[newGi] = make(map[int]int)

	// Carry moved holders' replicas into the new group's bookkeeping.
	movingSet := make(map[int]bool, len(moving))
	for _, m := range moving {
		movingSet[m] = true
	}
	for origin, holder := range c.holders[victim] {
		if movingSet[holder] {
			c.holders[newGi][origin] = holder
			delete(c.holders[victim], origin)
		}
	}

	inGroup := func(gi, mdsID int) bool {
		for _, m := range c.groups[gi] {
			if m == mdsID {
				return true
			}
		}
		return false
	}
	// Each side copies the external origins it now lacks from the other
	// side, and fetches fresh filters of the other side's members. Origins
	// are visited in sorted order so the message flow is deterministic.
	for _, pair := range []struct{ dst, src int }{{victim, newGi}, {newGi, victim}} {
		for _, origin := range sortedKeys(c.holders[pair.src]) {
			if inGroup(pair.dst, origin) {
				continue
			}
			if _, ok := c.holders[pair.dst][origin]; ok {
				continue
			}
			// Fetch a fresh filter from the origin itself (alive in the
			// prototype); copying the other side's replica bytes would be
			// equivalent but staler.
			snap, err := c.call(ctx, origin, opShipFilter, nil, msgs)
			if err != nil {
				return err
			}
			target := c.lightestMember(pair.dst)
			if _, err := c.call(ctx, target, opInstallReplica, encodeOriginPayload(origin, snap), msgs); err != nil {
				return err
			}
			c.holders[pair.dst][origin] = target
		}
		for _, member := range c.groups[pair.src] {
			if _, ok := c.holders[pair.dst][member]; ok {
				continue
			}
			snap, err := c.call(ctx, member, opShipFilter, nil, msgs)
			if err != nil {
				return err
			}
			target := c.lightestMember(pair.dst)
			if _, err := c.call(ctx, target, opInstallReplica, encodeOriginPayload(member, snap), msgs); err != nil {
				return err
			}
			c.holders[pair.dst][member] = target
		}
	}
	// IDBFA multicast within both halves.
	for _, gi := range []int{victim, newGi} {
		for _, m := range c.groups[gi] {
			if _, err := c.call(ctx, m, opPing, nil, msgs); err != nil {
				return err
			}
		}
	}
	return nil
}

// sortedKeys returns a map's keys in ascending order.
func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// copyGroups deep-copies the group membership map for rollback.
func copyGroups(groups map[int][]int) map[int][]int {
	out := make(map[int][]int, len(groups))
	for gi, members := range groups {
		out[gi] = append([]int(nil), members...)
	}
	return out
}

// copyHolders deep-copies the replica-holder map for rollback.
func copyHolders(holders map[int]map[int]int) map[int]map[int]int {
	out := make(map[int]map[int]int, len(holders))
	for gi, m := range holders {
		cp := make(map[int]int, len(m))
		for origin, holder := range m {
			cp[origin] = holder
		}
		out[gi] = cp
	}
	return out
}
