package proto

import (
	"bytes"
	"reflect"
	"testing"
)

// TestWireRoundTrip pins every opcode's wire format: each entry encodes the
// request payload the client sends for that op and decodes the response body
// the daemon returns, using the same codec helpers both sides use, and
// asserts the decode inverts the encode. The table must cover every opcode —
// ghbavet's wireguard analyzer fails the build when a new opcode ships
// without an entry here.
func TestWireRoundTrip(t *testing.T) {
	samplePaths := []string{"", "/a", "/usr/share/dict/words", string(bytes.Repeat([]byte{0xff}, 300))}
	sampleHits := [][]int{{}, {0}, {3, 1, 4, 1, 5}, {1 << 30}}

	hitsTrip := func(t *testing.T, lists [][]int) {
		var wire []byte
		for _, hits := range lists {
			wire = append(wire, encodeHits(hits)...)
		}
		got, err := decodeHitsVec(wire, len(lists))
		if err != nil {
			t.Fatalf("decodeHitsVec: %v", err)
		}
		for i, hits := range lists {
			want := hits
			if len(want) == 0 {
				want = []int{}
			}
			if !reflect.DeepEqual(got[i], want) {
				t.Fatalf("hit list %d: got %v, want %v", i, got[i], want)
			}
		}
	}
	pathsTrip := func(t *testing.T) []string {
		got, err := decodePaths(encodePaths(samplePaths))
		if err != nil {
			t.Fatalf("decodePaths: %v", err)
		}
		if !reflect.DeepEqual(got, samplePaths) {
			t.Fatalf("paths: got %q, want %q", got, samplePaths)
		}
		return got
	}
	boolsTrip := func(t *testing.T) {
		answers := []bool{true, false, false, true}
		got, err := decodeBools(encodeBools(answers), len(answers))
		if err != nil {
			t.Fatalf("decodeBools: %v", err)
		}
		if !reflect.DeepEqual(got, answers) {
			t.Fatalf("bools: got %v, want %v", got, answers)
		}
	}
	boolTrip := func(t *testing.T) {
		for _, b := range []bool{true, false} {
			if byteBool(boolByte(b)) != b {
				t.Fatalf("bool %v did not round-trip", b)
			}
		}
	}
	originTrip := func(t *testing.T, origin int, body []byte) {
		gotOrigin, gotBody, err := decodeOriginPayload(encodeOriginPayload(origin, body))
		if err != nil {
			t.Fatalf("decodeOriginPayload: %v", err)
		}
		if gotOrigin != origin || !bytes.Equal(gotBody, body) {
			t.Fatalf("origin payload: got (%d, %q), want (%d, %q)", gotOrigin, gotBody, origin, body)
		}
	}

	cases := []struct {
		op   uint8
		trip func(t *testing.T)
	}{
		{opQueryEntry, func(t *testing.T) {
			// Request is the raw path; response is two hit lists (L1, L2)
			// back to back.
			hitsTrip(t, [][]int{sampleHits[2], sampleHits[1]})
		}},
		{opQueryMember, func(t *testing.T) {
			hitsTrip(t, [][]int{sampleHits[2]})
		}},
		{opVerify, boolTrip},
		{opHasLocal, boolTrip},
		{opAddFile, func(t *testing.T) {
			// Raw path request, empty ack — nothing to decode, but the path
			// must survive the string/[]byte boundary byte-for-byte.
			for _, p := range samplePaths {
				if string([]byte(p)) != p {
					t.Fatalf("path %q did not round-trip", p)
				}
			}
		}},
		{opInstallReplica, func(t *testing.T) {
			originTrip(t, 7, []byte{0xde, 0xad, 0xbe, 0xef})
		}},
		{opDropReplica, func(t *testing.T) {
			originTrip(t, 0, nil)
		}},
		{opShipFilter, func(t *testing.T) {
			// Empty request; the response is a marshalled filter, covered by
			// the bloom package's own MarshalBinary round-trip tests. The
			// wire layer adds nothing beyond the opcode frame.
		}},
		{opObserve, func(t *testing.T) {
			originTrip(t, 3, []byte("/observed/path"))
		}},
		{opObserveBatch, func(t *testing.T) {
			obs := []observation{{home: 2, path: "/a"}, {home: 9, path: ""}, {home: 1 << 20, path: "/b/c"}}
			got, err := decodeObservations(encodeObservations(obs))
			if err != nil {
				t.Fatalf("decodeObservations: %v", err)
			}
			if !reflect.DeepEqual(got, obs) {
				t.Fatalf("observations: got %v, want %v", got, obs)
			}
		}},
		{opPing, func(t *testing.T) {
			// Empty request, empty ack: the round trip is the frame itself,
			// covered by rpcnet's FuzzFrameRoundTrip.
		}},
		{opCreateFile, func(t *testing.T) {
			for _, crossed := range []bool{true, false} {
				got, err := decodeCreateResp(boolByte(crossed))
				if err != nil {
					t.Fatalf("decodeCreateResp: %v", err)
				}
				if got != crossed {
					t.Fatalf("crossed %v did not round-trip", crossed)
				}
			}
		}},
		{opDeleteFile, func(t *testing.T) {
			for _, existed := range []bool{true, false} {
				for _, rebuilt := range []bool{true, false} {
					resp := append(boolByte(existed), boolByte(rebuilt)...)
					gotExisted, gotRebuilt, err := decodeDeleteResp(resp)
					if err != nil {
						t.Fatalf("decodeDeleteResp: %v", err)
					}
					if gotExisted != existed || gotRebuilt != rebuilt {
						t.Fatalf("delete resp (%v, %v) decoded as (%v, %v)", existed, rebuilt, gotExisted, gotRebuilt)
					}
				}
			}
		}},
		{opLookupBatch, func(t *testing.T) {
			paths := pathsTrip(t)
			// Response: two hit lists per path (L1 then L2).
			var lists [][]int
			for range paths {
				lists = append(lists, sampleHits[2], sampleHits[0])
			}
			hitsTrip(t, lists)
		}},
		{opQueryMemberBatch, func(t *testing.T) {
			paths := pathsTrip(t)
			lists := make([][]int, len(paths))
			for i := range paths {
				lists[i] = sampleHits[i%len(sampleHits)]
			}
			hitsTrip(t, lists)
		}},
		{opVerifyBatch, func(t *testing.T) {
			pathsTrip(t)
			boolsTrip(t)
		}},
		{opHasLocalBatch, func(t *testing.T) {
			pathsTrip(t)
			boolsTrip(t)
		}},
		{opCreateBatch, func(t *testing.T) {
			pathsTrip(t)
			if crossed, err := decodeCreateResp(boolByte(true)); err != nil || !crossed {
				t.Fatalf("batch create resp: got (%v, %v)", crossed, err)
			}
		}},
		{opDeleteBatch, func(t *testing.T) {
			paths := pathsTrip(t)
			// Response: one existed byte per path, then one rebuilt byte.
			resp := make([]byte, len(paths)+1)
			resp[0], resp[len(paths)] = 1, 1
			if len(resp) != len(paths)+1 {
				t.Fatalf("delete batch resp wants %d bytes, got %d", len(paths)+1, len(resp))
			}
			if resp[0] != 1 || resp[1] != 0 || resp[len(paths)] != 1 {
				t.Fatal("delete batch existed/rebuilt bytes misplaced")
			}
		}},
		{opHeartbeat, func(t *testing.T) {
			// Empty request; the response is a fixed-width health report.
			for _, info := range []HeartbeatInfo{
				{},
				{ID: 7, Files: 123, WALRecords: 456},
				{ID: 1 << 30, Files: 1 << 60, WALRecords: 1},
			} {
				got, err := decodeHeartbeatResp(encodeHeartbeatResp(info))
				if err != nil {
					t.Fatalf("decodeHeartbeatResp: %v", err)
				}
				if got != info {
					t.Fatalf("heartbeat %+v decoded as %+v", info, got)
				}
			}
			if _, err := decodeHeartbeatResp([]byte{1, 2, 3}); err == nil {
				t.Fatal("truncated heartbeat response accepted")
			}
		}},
	}

	seen := make(map[uint8]bool)
	for _, tc := range cases {
		if seen[tc.op] {
			t.Fatalf("opcode %s appears twice in the round-trip table", opName(tc.op))
		}
		seen[tc.op] = true
		t.Run(opName(tc.op), func(t *testing.T) {
			if opName(tc.op) == "" || opName(tc.op)[:3] == "op_" {
				t.Fatalf("opcode %d missing from opNames", tc.op)
			}
			tc.trip(t)
		})
	}
	// Every slot in opNames must have a table entry above; a hole here means
	// an opcode shipped without a pinned wire format.
	for op := 1; op < len(opNames); op++ {
		if opNames[op] != "" && !seen[uint8(op)] {
			t.Errorf("opcode %s has no round-trip case", opNames[op])
		}
	}
}

// FuzzPathVectorRoundTrip drives the batch path codec both ways: arbitrary
// bytes must never panic the decoder, and any vector the decoder accepts
// must re-encode to a decodable equal vector.
func FuzzPathVectorRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodePaths(nil))
	f.Add(encodePaths([]string{"", "/a", "/b/c"}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		paths, err := decodePaths(data)
		if err != nil {
			return
		}
		again, err := decodePaths(encodePaths(paths))
		if err != nil {
			t.Fatalf("re-decode of accepted vector failed: %v", err)
		}
		if !reflect.DeepEqual(again, paths) {
			t.Fatalf("vector changed across re-encode: %q != %q", again, paths)
		}
	})
}
