package proto

import (
	"context"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"ghba/internal/trace"
)

// TestCreateDeleteOverRealSockets drives the networked mutation pipeline:
// creates home files at daemons over RPC, lookups find them, deletes unlink
// them, and ground truth stays consistent throughout.
func TestCreateDeleteOverRealSockets(t *testing.T) {
	ctx := context.Background()
	c := startPopulated(t, 6, 3, ModeGHBA, 100)

	created := make(map[string]int)
	for i := 0; i < 60; i++ {
		path := "/new/f" + strconv.Itoa(i)
		home, err := c.Create(ctx, path)
		if err != nil {
			t.Fatal(err)
		}
		if home < 0 || c.HomeOf(path) != home {
			t.Fatalf("create %s homed at %d, truth %d", path, home, c.HomeOf(path))
		}
		created[path] = home
	}
	if got, want := c.FileCount(), 160; got != want {
		t.Fatalf("FileCount = %d, want %d", got, want)
	}
	for path, home := range created {
		res, err := c.Lookup(ctx, path)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Home != home {
			t.Fatalf("lookup of created %s = %+v, want home %d", path, res, home)
		}
	}
	for path := range created {
		existed, err := c.Delete(ctx, path)
		if err != nil {
			t.Fatal(err)
		}
		if !existed {
			t.Fatalf("delete of %s reported missing", path)
		}
	}
	if existed, err := c.Delete(ctx, "/new/f0"); err != nil || existed {
		t.Fatalf("double delete = (%v, %v)", existed, err)
	}
	// Deleted files are authoritatively gone even though the home's filter
	// is stale until rebuild.
	res, err := c.Lookup(ctx, "/new/f1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("deleted file still found: %+v", res)
	}
}

// TestCreateShipsReplicaUpdates pins the threshold-crossing protocol: enough
// creates on a cluster with ShipBatch 1 must push filters past the XOR-delta
// threshold and ship replica installs over the wire, and the shipped
// replicas then serve the new files at L2/L3 from other groups' entries.
func TestCreateShipsReplicaUpdates(t *testing.T) {
	ctx := context.Background()
	opts := testOptions(6, 3, ModeGHBA)
	opts.ShipBatch = 1
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	// ~17 bits set per create at 16 bits/file sizing crosses the 64-bit
	// default threshold within a handful of creates per daemon.
	for i := 0; i < 120; i++ {
		if _, err := c.Create(ctx, "/ship/f"+strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.ReplicaUpdates() == 0 {
		t.Fatal("120 creates shipped no replica updates")
	}
	if c.PendingShips() != 0 && opts.ShipBatch == 1 {
		t.Errorf("ship-at-every-crossing left %d pending", c.PendingShips())
	}
}

// TestShipBatchCoalesces pins the coalescing queue semantics on the wire:
// with a large batch, crossings accumulate without shipping until Flush
// drains them.
func TestShipBatchCoalesces(t *testing.T) {
	ctx := context.Background()
	opts := testOptions(6, 3, ModeGHBA)
	opts.ShipBatch = 1 << 20
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	for i := 0; i < 120; i++ {
		if _, err := c.Create(ctx, "/coal/f"+strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.ReplicaUpdates() != 0 {
		t.Fatalf("coalescing queue shipped %d updates before flush", c.ReplicaUpdates())
	}
	if c.PendingShips() == 0 {
		t.Fatal("no origins marked dirty after 120 creates")
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if c.ReplicaUpdates() == 0 {
		t.Fatal("flush shipped nothing")
	}
	if c.PendingShips() != 0 {
		t.Errorf("flush left %d pending", c.PendingShips())
	}
}

// TestApplyWithMixedWorkload pins Apply's record semantics over RPC: creates
// report Level 0 with the chosen home, creates of existing paths degenerate
// to lookups, deletes report the pre-delete home, absent deletes miss.
func TestApplyWithMixedWorkload(t *testing.T) {
	ctx := context.Background()
	c := startPopulated(t, 6, 3, ModeGHBA, 100)
	rng := rand.New(rand.NewSource(1))

	res, err := c.ApplyWith(ctx, rng, trace.Record{Op: trace.OpCreate, Path: "/mix/a"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Level != 0 || res.Home != c.HomeOf("/mix/a") {
		t.Fatalf("create = %+v (truth %d)", res, c.HomeOf("/mix/a"))
	}

	// Creating an existing path degenerates to a lookup of it.
	res, err = c.ApplyWith(ctx, rng, trace.Record{Op: trace.OpCreate, Path: "/mix/a"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Level == 0 || res.Home != c.HomeOf("/mix/a") {
		t.Fatalf("degenerate create = %+v", res)
	}

	home := c.HomeOf("/mix/a")
	res, err = c.ApplyWith(ctx, rng, trace.Record{Op: trace.OpDelete, Path: "/mix/a"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Home != home || res.Level != 0 {
		t.Fatalf("delete = %+v, want pre-delete home %d", res, home)
	}

	res, err = c.ApplyWith(ctx, rng, trace.Record{Op: trace.OpDelete, Path: "/mix/never"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || res.Home != -1 {
		t.Fatalf("absent delete = %+v", res)
	}

	res, err = c.ApplyWith(ctx, rng, trace.Record{Op: trace.OpStat, Path: "/p/f3"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Level < 1 || res.Level > 4 {
		t.Fatalf("stat = %+v", res)
	}
}

// TestConcurrentMutationsAndLookups is the networked write path's race
// stress: parallel workers create, delete and look up disjoint paths over
// real sockets while ships coalesce. Run under -race.
func TestConcurrentMutationsAndLookups(t *testing.T) {
	ctx := context.Background()
	opts := testOptions(6, 3, ModeGHBA)
	opts.ShipBatch = 8
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	paths := make([]string, 120)
	for i := range paths {
		paths[i] = "/p/f" + strconv.Itoa(i)
	}
	c.Populate(paths)

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed(7, w)))
			for i := 0; i < 50; i++ {
				var rec trace.Record
				switch i % 3 {
				case 0:
					rec = trace.Record{Op: trace.OpCreate, Path: "/w" + strconv.Itoa(w) + "/c" + strconv.Itoa(i)}
				case 1:
					rec = trace.Record{Op: trace.OpDelete, Path: "/w" + strconv.Itoa(w) + "/c" + strconv.Itoa(i-1)}
				default:
					rec = trace.Record{Op: trace.OpStat, Path: paths[(w*31+i)%len(paths)]}
				}
				if _, err := c.ApplyWith(ctx, rng, rec); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if c.PendingShips() != 0 {
		t.Error("pending ships after flush")
	}
}
