// Package proto implements the paper's Section 5 prototype: metadata
// servers as real TCP daemons (one rpcnet server each, loopback in tests and
// examples, any address in cmd/mdsd), exchanging genuine socket traffic for
// queries, verification, replica installation and reconfiguration. Message
// counts are therefore exact (Fig 15) and lookup latencies include the real
// network stack (Fig 14).
//
// The coordinator (Cluster) drives the multi-level query on behalf of the
// entry MDS — the same messages a server-driven implementation would send,
// issued from the client side for simplicity — and tracks replica placement
// the way member IDBFAs do in the simulator.
package proto

import (
	"encoding/binary"
	"fmt"
)

// RPC message types.
const (
	opQueryEntry     uint8 = iota + 1 // path → L1 hits + L2 hits
	opQueryMember                     // path → L2 hits (group multicast leg)
	opVerify                          // path → 1/0 authoritative answer
	opHasLocal                        // path → 1/0 local-filter + store check (L4 leg)
	opAddFile                         // path → ack
	opInstallReplica                  // origin + filter → ack
	opDropReplica                     // origin → filter bytes
	opShipFilter                      // (empty) → origin's current filter
	opObserve                         // home + path → ack (L1 learning)
	opObserveBatch                    // batched L1 observations → ack
	opPing                            // membership/IDBFA-update stand-in → ack
	opCreateFile                      // path → 1 byte: filter crossed the XOR-delta ship threshold
	opDeleteFile                      // path → 2 bytes: existed, local filter rebuilt

	// Batch RPCs: one frame carries a vector of paths, amortizing syscalls,
	// frame headers and digest computation across the whole vector. They
	// ride the mux transport's pipelining, but are legal (if pointless) over
	// the classic protocol too.
	opLookupBatch      // paths → per path: L1 hits + L2 hits (entry leg)
	opQueryMemberBatch // paths → per path: L2 hits (group multicast leg)
	opVerifyBatch      // paths → per path: 1/0 authoritative answer
	opHasLocalBatch    // paths → per path: 1/0 local-filter + store check
	opCreateBatch      // paths → 1 byte: filter crossed the ship threshold after the batch
	opDeleteBatch      // paths → per path existed byte, then 1 rebuilt byte

	// opHeartbeat is the failure detector's liveness probe. Unlike opPing
	// (the reconfiguration protocol's IDBFA-update stand-in) the response
	// carries a health report — id, homed files, WAL position — so a probe
	// that reaches the wrong daemon after an address reuse is detectable.
	opHeartbeat // (empty) → id uint32 | files uint64 | walRecords uint64
)

// opNames labels each RPC type for the per-op counters the wire bench
// reports; index = opcode.
var opNames = [...]string{
	opQueryEntry:       "query_entry",
	opQueryMember:      "query_member",
	opVerify:           "verify",
	opHasLocal:         "has_local",
	opAddFile:          "add_file",
	opInstallReplica:   "install_replica",
	opDropReplica:      "drop_replica",
	opShipFilter:       "ship_filter",
	opObserve:          "observe",
	opObserveBatch:     "observe_batch",
	opPing:             "ping",
	opCreateFile:       "create_file",
	opDeleteFile:       "delete_file",
	opLookupBatch:      "lookup_batch",
	opQueryMemberBatch: "query_member_batch",
	opVerifyBatch:      "verify_batch",
	opHasLocalBatch:    "has_local_batch",
	opCreateBatch:      "create_batch",
	opDeleteBatch:      "delete_batch",
	opHeartbeat:        "heartbeat",
}

// opName returns the label of one RPC type.
func opName(op uint8) string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op_%d", op)
}

// encodePaths serializes a path vector: count uint32, then per path
// len uint16 | bytes.
func encodePaths(paths []string) []byte {
	size := 4
	for _, p := range paths {
		size += 2 + len(p)
	}
	buf := make([]byte, 0, size)
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(paths)))
	buf = append(buf, tmp[:4]...)
	for _, p := range paths {
		binary.BigEndian.PutUint16(tmp[:2], uint16(len(p)))
		buf = append(buf, tmp[:2]...)
		buf = append(buf, p...)
	}
	return buf
}

// decodePaths parses a path vector.
func decodePaths(data []byte) ([]string, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("proto: truncated path vector")
	}
	n := int(binary.BigEndian.Uint32(data))
	data = data[4:]
	// Each path costs at least its 2-byte length prefix; reject counts the
	// remaining bytes cannot possibly carry before allocating for them.
	if n > len(data)/2 {
		return nil, fmt.Errorf("proto: path vector declares %d paths in %d bytes", n, len(data))
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if len(data) < 2 {
			return nil, fmt.Errorf("proto: truncated path %d", i)
		}
		plen := int(binary.BigEndian.Uint16(data))
		data = data[2:]
		if len(data) < plen {
			return nil, fmt.Errorf("proto: truncated path %d body", i)
		}
		out = append(out, string(data[:plen]))
		data = data[plen:]
	}
	return out, nil
}

// decodeHitsVec parses n consecutive hit lists (the lookup/member batch
// response bodies).
func decodeHitsVec(data []byte, n int) ([][]int, error) {
	out := make([][]int, n)
	var err error
	for i := 0; i < n; i++ {
		if out[i], data, err = decodeHits(data); err != nil {
			return nil, fmt.Errorf("proto: hit list %d: %w", i, err)
		}
	}
	return out, nil
}

// encodeBools packs one byte per answer.
func encodeBools(bs []bool) []byte {
	out := make([]byte, len(bs))
	for i, b := range bs {
		if b {
			out[i] = 1
		}
	}
	return out
}

// decodeBools parses an n-answer bool vector.
func decodeBools(data []byte, n int) ([]bool, error) {
	if len(data) != n {
		return nil, fmt.Errorf("proto: bool vector wants %d bytes, got %d", n, len(data))
	}
	out := make([]bool, n)
	for i, b := range data {
		out[i] = b == 1
	}
	return out, nil
}

// decodeCreateResp parses an opCreateFile response: whether the origin's
// filter drifted past the XOR-delta threshold and should ship.
func decodeCreateResp(data []byte) (crossed bool, err error) {
	if len(data) != 1 {
		return false, fmt.Errorf("proto: create response wants 1 byte, got %d", len(data))
	}
	return data[0] == 1, nil
}

// decodeDeleteResp parses an opDeleteFile response: whether the file was
// homed at the daemon, and whether the deletion triggered a local-filter
// rebuild (which replaces the filter wholesale and must ship).
func decodeDeleteResp(data []byte) (existed, rebuilt bool, err error) {
	if len(data) != 2 {
		return false, false, fmt.Errorf("proto: delete response wants 2 bytes, got %d", len(data))
	}
	return data[0] == 1, data[1] == 1, nil
}

// HeartbeatInfo is the health report an opHeartbeat response carries.
type HeartbeatInfo struct {
	// ID is the responding daemon's MDS identifier, echoed so the detector
	// can spot a probe answered by a stranger on a reused address.
	ID int
	// Files is the number of files homed at the daemon.
	Files uint64
	// WALRecords is the daemon's WAL append count since its last snapshot
	// (zero when the daemon runs without a WAL).
	WALRecords uint64
}

// encodeHeartbeatResp serializes a health report.
func encodeHeartbeatResp(info HeartbeatInfo) []byte {
	buf := make([]byte, 0, 20)
	buf = binary.BigEndian.AppendUint32(buf, uint32(info.ID))
	buf = binary.BigEndian.AppendUint64(buf, info.Files)
	buf = binary.BigEndian.AppendUint64(buf, info.WALRecords)
	return buf
}

// decodeHeartbeatResp parses a health report.
func decodeHeartbeatResp(data []byte) (HeartbeatInfo, error) {
	if len(data) != 20 {
		return HeartbeatInfo{}, fmt.Errorf("proto: heartbeat response wants 20 bytes, got %d", len(data))
	}
	return HeartbeatInfo{
		ID:         int(binary.BigEndian.Uint32(data)),
		Files:      binary.BigEndian.Uint64(data[4:]),
		WALRecords: binary.BigEndian.Uint64(data[12:]),
	}, nil
}

// observation is one (home, path) L1 learning record.
type observation struct {
	home int
	path string
}

// encodeObservations serializes a batch: count uint16, then per record
// origin uint32 | pathLen uint16 | path.
func encodeObservations(obs []observation) []byte {
	size := 2
	for _, o := range obs {
		size += 4 + 2 + len(o.path)
	}
	buf := make([]byte, 0, size)
	var tmp [4]byte
	binary.BigEndian.PutUint16(tmp[:2], uint16(len(obs)))
	buf = append(buf, tmp[:2]...)
	for _, o := range obs {
		binary.BigEndian.PutUint32(tmp[:4], uint32(o.home))
		buf = append(buf, tmp[:4]...)
		binary.BigEndian.PutUint16(tmp[:2], uint16(len(o.path)))
		buf = append(buf, tmp[:2]...)
		buf = append(buf, o.path...)
	}
	return buf
}

// decodeObservations parses a batch.
func decodeObservations(data []byte) ([]observation, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("proto: truncated observation batch")
	}
	n := int(binary.BigEndian.Uint16(data))
	data = data[2:]
	out := make([]observation, 0, n)
	for i := 0; i < n; i++ {
		if len(data) < 6 {
			return nil, fmt.Errorf("proto: truncated observation %d", i)
		}
		home := int(binary.BigEndian.Uint32(data))
		plen := int(binary.BigEndian.Uint16(data[4:]))
		data = data[6:]
		if len(data) < plen {
			return nil, fmt.Errorf("proto: truncated path in observation %d", i)
		}
		out = append(out, observation{home: home, path: string(data[:plen])})
		data = data[plen:]
	}
	return out, nil
}

// encodeHits serializes an MDS-ID hit list.
func encodeHits(hits []int) []byte {
	buf := make([]byte, 2+4*len(hits))
	binary.BigEndian.PutUint16(buf, uint16(len(hits)))
	for i, h := range hits {
		binary.BigEndian.PutUint32(buf[2+4*i:], uint32(h))
	}
	return buf
}

// decodeHits parses a hit list, returning the remaining bytes.
func decodeHits(data []byte) ([]int, []byte, error) {
	if len(data) < 2 {
		return nil, nil, fmt.Errorf("proto: truncated hit list")
	}
	n := int(binary.BigEndian.Uint16(data))
	if len(data) < 2+4*n {
		return nil, nil, fmt.Errorf("proto: hit list wants %d entries, have %d bytes", n, len(data)-2)
	}
	hits := make([]int, n)
	for i := range hits {
		hits[i] = int(binary.BigEndian.Uint32(data[2+4*i:]))
	}
	return hits, data[2+4*n:], nil
}

// encodeOriginPayload prefixes a payload with an origin MDS ID.
func encodeOriginPayload(origin int, payload []byte) []byte {
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(origin))
	copy(buf[4:], payload)
	return buf
}

// decodeOriginPayload splits an origin-prefixed payload.
func decodeOriginPayload(data []byte) (int, []byte, error) {
	if len(data) < 4 {
		return 0, nil, fmt.Errorf("proto: truncated origin prefix")
	}
	return int(binary.BigEndian.Uint32(data)), data[4:], nil
}

// boolByte encodes a boolean answer.
func boolByte(b bool) []byte {
	if b {
		return []byte{1}
	}
	return []byte{0}
}

// byteBool decodes a boolean answer.
func byteBool(data []byte) bool {
	return len(data) == 1 && data[0] == 1
}
