package proto

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestLookupParallelSingleWorkerMatchesSerial pins the prototype's
// reproducibility contract: a single-worker parallel run issues exactly the
// serial Lookup path's RPC sequence, driven by worker 0's RNG. Two
// identically built clusters — one through LookupParallel(batch, 1), one
// serially through LookupWith with the same derived RNG — must agree on
// every home, level, and per-lookup message count. (Latency is wall-clock
// over real sockets, so it is the one field excluded.)
func TestLookupParallelSingleWorkerMatchesSerial(t *testing.T) {
	a := startPopulated(t, 6, 3, ModeGHBA, 200)
	b := startPopulated(t, 6, 3, ModeGHBA, 200)
	batch := make([]string, 150)
	for i := range batch {
		batch[i] = "/p/f" + strconv.Itoa((i*7)%200)
	}

	parallel, err := a.LookupParallel(context.Background(), batch, 1)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(workerSeed(b.opts.Seed, 0)))
	for i, p := range batch {
		serial, err := b.LookupWith(context.Background(), rng, p)
		if err != nil {
			t.Fatal(err)
		}
		got, want := parallel[i], serial
		got.Latency, want.Latency = 0, 0
		if got != want {
			t.Fatalf("lookup %d (%s) diverged: parallel %+v, serial %+v", i, p, got, want)
		}
	}
}

// TestLookupParallelManyWorkers checks correctness (not determinism) under
// real concurrency: every result present, found, and matching ground truth.
func TestLookupParallelManyWorkers(t *testing.T) {
	c := startPopulated(t, 6, 3, ModeGHBA, 300)
	batch := make([]string, 400)
	for i := range batch {
		batch[i] = "/p/f" + strconv.Itoa(i%300)
	}
	results, err := c.LookupParallel(context.Background(), batch, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(batch) {
		t.Fatalf("got %d results for %d paths", len(results), len(batch))
	}
	for i, res := range results {
		if !res.Found || res.Home != c.HomeOf(batch[i]) {
			t.Fatalf("lookup %d (%s) = %+v (truth %d)", i, batch[i], res, c.HomeOf(batch[i]))
		}
		if res.Messages < 1 {
			t.Fatalf("lookup %d counted %d messages", i, res.Messages)
		}
	}
}

// TestParallelLookupsDuringAddMDSChurn is the race stress test: parallel
// lookup workers run flat out while a writer goroutine grows the cluster,
// exercising the read/write split on membership state, the connection
// pools, and registration-after-reconfiguration. Run under -race.
func TestParallelLookupsDuringAddMDSChurn(t *testing.T) {
	c := startPopulated(t, 6, 3, ModeGHBA, 300)

	var wg sync.WaitGroup
	errs := make(chan error, 5)

	// Churn writer: three joins with lookup traffic in flight throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, _, err := c.AddMDS(context.Background()); err != nil {
				errs <- fmt.Errorf("AddMDS %d: %w", i, err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed(99, w)))
			for i := 0; i < 60; i++ {
				path := "/p/f" + strconv.Itoa((w*97+i)%300)
				res, err := c.LookupWith(context.Background(), rng, path)
				if err != nil {
					errs <- fmt.Errorf("worker %d lookup %s: %w", w, path, err)
					return
				}
				if !res.Found {
					errs <- fmt.Errorf("worker %d lost %s during churn", w, path)
					return
				}
			}
		}(w)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := c.NumMDS(); n != 9 {
		t.Errorf("NumMDS after churn = %d, want 9", n)
	}
	// The grown cluster still resolves everything.
	for i := 0; i < 300; i += 17 {
		path := "/p/f" + strconv.Itoa(i)
		res, err := c.Lookup(context.Background(), path)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Home != c.HomeOf(path) {
			t.Fatalf("post-churn lookup %s = %+v", path, res)
		}
	}
}

// TestAddMDSDeterministicReplicaOffload pins the joinGroup fix: two
// identically seeded clusters performing the same join must end with
// identical replica placement and identical message counts — map iteration
// order must not pick which replicas migrate.
func TestAddMDSDeterministicReplicaOffload(t *testing.T) {
	// 7 servers, M=4 → groups of 4 and 3; the join lands in the second
	// with replica offload.
	a := startPopulated(t, 7, 4, ModeGHBA, 100)
	b := startPopulated(t, 7, 4, ModeGHBA, 100)
	_, aMsgs, err := a.AddMDS(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, bMsgs, err := b.AddMDS(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if aMsgs != bMsgs {
		t.Errorf("join message counts diverged: %d vs %d", aMsgs, bMsgs)
	}
	if !reflect.DeepEqual(a.groups, b.groups) {
		t.Errorf("groups diverged:\n a: %v\n b: %v", a.groups, b.groups)
	}
	if !reflect.DeepEqual(a.holders, b.holders) {
		t.Errorf("replica placement diverged:\n a: %v\n b: %v", a.holders, b.holders)
	}
}

// TestAddMDSFailureRollsBackCoordinatorState pins the error-path contract:
// when reconfiguration fails mid-flight (here: a group member died, so its
// replica offload RPC fails), the newcomer must not linger in any group or
// holder entry — otherwise later lookups would multicast to an unknown MDS
// and Populate would panic on the missing server.
func TestAddMDSFailureRollsBackCoordinatorState(t *testing.T) {
	c := startPopulated(t, 7, 4, ModeGHBA, 100)
	// Groups are {0,1,2,3} and {4,5,6}; the join lands in the second,
	// whose member 4 must offload replicas to the newcomer. Kill 4 so
	// that opDropReplica fails.
	c.servers[4].Close()
	if _, _, err := c.AddMDS(context.Background()); err == nil {
		t.Fatal("AddMDS against a dead group member succeeded")
	}
	if n := c.NumMDS(); n != 7 {
		t.Errorf("NumMDS after failed join = %d, want 7", n)
	}
	c.mu.RLock()
	if gi := c.groupOfLocked(7); gi != -1 {
		t.Errorf("abandoned newcomer still in group %d", gi)
	}
	for gi, m := range c.holders {
		for origin, holder := range m {
			if origin == 7 || holder == 7 {
				t.Errorf("holders[%d] still references abandoned newcomer: %d→%d", gi, origin, holder)
			}
		}
	}
	c.mu.RUnlock()
	// Lookups that stay inside the healthy group still resolve. Stay
	// under c.obsBatch total so the observation flush (which would
	// multicast into the dead daemon) never fires here.
	checked := 0
	for i := 0; i < 100 && checked < c.obsBatch-1; i++ {
		p := "/p/f" + strconv.Itoa(i)
		if home := c.HomeOf(p); home >= 0 && home <= 3 {
			checked++
			res, err := c.LookupVia(context.Background(), p, 0)
			if err != nil {
				t.Fatalf("post-rollback lookup %s: %v", p, err)
			}
			if !res.Found || res.Home != home {
				t.Fatalf("post-rollback lookup %s = %+v (truth %d)", p, res, home)
			}
		}
	}
}

// TestObserveBatchSurvivesDeadDaemon pins the multicast-failure fix: when
// one daemon is unreachable at flush time, the LRU observation batch still
// reaches every other daemon (their next lookups answer at L1) and the
// failure is reported rather than silently dropping the batch.
func TestObserveBatchSurvivesDeadDaemon(t *testing.T) {
	c := startPopulated(t, 4, 2, ModeGHBA, 80)
	// Pick a path homed anywhere but daemon 3, and kill daemon 3. Groups
	// are {0,1} and {2,3}, so lookups entering at 0 never consult 3
	// before resolving at L2/L3.
	hot := ""
	for i := 0; i < 80; i++ {
		p := "/p/f" + strconv.Itoa(i)
		if c.HomeOf(p) != 3 {
			hot = p
			break
		}
	}
	if hot == "" {
		t.Fatal("all files homed at daemon 3")
	}
	c.servers[3].Close()

	var flushErr error
	for i := 0; i < c.obsBatch; i++ {
		res, err := c.LookupVia(context.Background(), hot, 0)
		if err != nil {
			flushErr = err
		}
		if !res.Found {
			t.Fatalf("lookup %d of %s not found", i, hot)
		}
	}
	if flushErr == nil {
		t.Fatal("flush against dead daemon reported no error")
	}
	if !strings.Contains(flushErr.Error(), "MDS 3") {
		t.Errorf("flush error does not name the dead daemon: %v", flushErr)
	}
	// The surviving daemons received the batch despite the failure.
	res, err := c.LookupVia(context.Background(), hot, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != 1 {
		t.Errorf("post-flush lookup served at level %d, want 1 (batch lost?)", res.Level)
	}
}
