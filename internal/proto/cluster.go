package proto

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ghba/internal/mds"
	"ghba/internal/rpcnet"
)

// Mode selects the scheme the prototype runs.
type Mode int

// Prototype modes.
const (
	// ModeGHBA runs grouped servers with segment arrays (θ replicas each).
	ModeGHBA Mode = iota + 1
	// ModeHBA runs the baseline: every server mirrors every other.
	ModeHBA
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeGHBA:
		return "G-HBA"
	case ModeHBA:
		return "HBA"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// DefaultCallTimeout is the per-RPC deadline applied when Options leaves
// CallTimeout zero: long enough for megabyte filter ships on loopback,
// short enough that a hung daemon fails a lookup instead of wedging the
// coordinator.
const DefaultCallTimeout = 10 * time.Second

// Options configures a prototype cluster.
type Options struct {
	// N is the number of MDS daemons.
	N int
	// M is the maximum group size (G-HBA mode; the paper's prototype uses
	// M=7 on its 60-node cluster).
	M int
	// Mode selects G-HBA or HBA.
	Mode Mode
	// Node sizes each daemon's filter structures.
	Node mds.Config
	// ResidentReplicaLimit is how many replicas fit in one daemon's RAM;
	// holdings beyond it pay DiskPenalty per query. Zero disables.
	ResidentReplicaLimit int
	// DiskPenalty is the emulated disk cost for over-RAM replica arrays.
	DiskPenalty time.Duration
	// Seed drives placement and entry selection.
	Seed int64
	// CallTimeout is the per-RPC deadline. Zero selects
	// DefaultCallTimeout; negative disables deadlines entirely.
	CallTimeout time.Duration
}

func (o *Options) validate() error {
	if o.N < 1 {
		return fmt.Errorf("proto: N must be ≥ 1, got %d", o.N)
	}
	if o.Mode == ModeGHBA && o.M < 1 {
		return fmt.Errorf("proto: M must be ≥ 1 in G-HBA mode, got %d", o.M)
	}
	if o.Mode != ModeGHBA && o.Mode != ModeHBA {
		return fmt.Errorf("proto: unknown mode %d", int(o.Mode))
	}
	return nil
}

// Cluster is a running prototype: N daemons plus the coordinator state that
// drives queries and reconfiguration against them.
//
// The coordinator follows the same single-writer / many-reader discipline
// as the simulator's core engine: membership, group, holder, and home state
// live behind an RWMutex, lookups are readers that snapshot what they need
// and issue RPCs without holding the lock, and Populate/AddMDS are
// exclusive writers. RPC connections are pooled per daemon (connSet), so
// concurrent lookups against one daemon ride parallel sockets rather than
// serializing on a shared connection.
type Cluster struct {
	opts Options

	mu       sync.RWMutex
	servers  map[int]*NodeServer
	groups   map[int][]int       // group index → member IDs (G-HBA)
	holders  map[int]map[int]int // group index → origin → holding member
	homes    map[string]int
	ids      []int       // sorted member IDs; rebuilt on mutation, never mutated in place
	groupIdx map[int]int // member ID → group index; rebuilt with ids
	nextID   int

	conns *connSet

	// rng drives the serial Lookup path's entry selection; parallel
	// workers carry their own seeded RNGs and never touch it.
	rngMu sync.Mutex
	rng   *rand.Rand

	// pendingObs accumulates confirmed (path → home) mappings; every
	// obsBatchSize lookups the batch is multicast to all daemons,
	// refreshing their replicated LRU arrays the way HBA piggybacks LRU
	// replica updates.
	obsMu      sync.Mutex
	pendingObs []observation

	messages atomic.Uint64
}

// obsBatchSize is how many confirmed lookups accumulate before the LRU
// observation batch is multicast to every daemon.
const obsBatchSize = 64

// connSet owns the coordinator's per-daemon connection pools. It is
// deliberately independent of Cluster.mu so reconfiguration can issue RPCs
// to a daemon (including a half-joined newcomer) while holding the
// membership write lock.
type connSet struct {
	callTimeout time.Duration // ≤ 0 disables per-call deadlines

	mu    sync.Mutex
	pools map[int]*rpcnet.Pool
}

func newConnSet(callTimeout time.Duration) *connSet {
	return &connSet{callTimeout: callTimeout, pools: make(map[int]*rpcnet.Pool)}
}

// register creates (or replaces) the pool for a daemon.
func (cs *connSet) register(id int, addr string) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.pools == nil {
		return // closed
	}
	if old, ok := cs.pools[id]; ok {
		old.Close()
	}
	timeout := cs.callTimeout
	if timeout < 0 {
		timeout = 0
	}
	cs.pools[id] = rpcnet.NewPool(addr, rpcnet.PoolOptions{
		DialTimeout: timeout,
		CallTimeout: timeout,
	})
}

// unregister drops a daemon's pool (failed join, removal).
func (cs *connSet) unregister(id int) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if p, ok := cs.pools[id]; ok {
		p.Close()
		delete(cs.pools, id)
	}
}

func (cs *connSet) pool(id int) (*rpcnet.Pool, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	p, ok := cs.pools[id]
	if !ok {
		return nil, fmt.Errorf("proto: unknown MDS %d", id)
	}
	return p, nil
}

func (cs *connSet) closeAll() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for _, p := range cs.pools {
		p.Close()
	}
	cs.pools = nil
}

// Start builds, populates and launches a prototype cluster on loopback
// ports. Callers must Close it.
func Start(opts Options) (*Cluster, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	callTimeout := opts.CallTimeout
	if callTimeout == 0 {
		callTimeout = DefaultCallTimeout
	}
	c := &Cluster{
		opts:    opts,
		servers: make(map[int]*NodeServer),
		groups:  make(map[int][]int),
		holders: make(map[int]map[int]int),
		homes:   make(map[string]int),
		conns:   newConnSet(callTimeout),
		rng:     rand.New(rand.NewSource(opts.Seed)),
		nextID:  opts.N,
	}
	for i := 0; i < opts.N; i++ {
		node, err := mds.NewNode(i, opts.Node)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("proto: node %d: %w", i, err)
		}
		ns, err := StartNode(node, "127.0.0.1:0", opts.ResidentReplicaLimit, opts.DiskPenalty)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.servers[i] = ns
		c.conns.register(i, ns.Addr())
	}
	// Group layout (G-HBA) or flat (HBA).
	if opts.Mode == ModeGHBA {
		gi := 0
		for start := 0; start < opts.N; start += opts.M {
			end := start + opts.M
			if end > opts.N {
				end = opts.N
			}
			var members []int
			for id := start; id < end; id++ {
				members = append(members, id)
			}
			c.groups[gi] = members
			c.holders[gi] = make(map[int]int)
			gi++
		}
	}
	c.rebuildIndexLocked()
	c.seedReplicas()
	return c, nil
}

// rebuildIndexLocked recomputes the sorted-ID cache and the member → group
// index. Callers must hold c.mu exclusively (or be pre-concurrency in
// Start). Both structures are allocated fresh so snapshots handed to
// readers stay valid after the next rebuild.
func (c *Cluster) rebuildIndexLocked() {
	ids := make([]int, 0, len(c.servers))
	for id := range c.servers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	c.ids = ids
	idx := make(map[int]int, len(c.servers))
	for gi, members := range c.groups {
		for _, m := range members {
			idx[m] = gi
		}
	}
	c.groupIdx = idx
}

// seedReplicas distributes initial (empty) replicas directly, before any
// measurement traffic.
func (c *Cluster) seedReplicas() {
	switch c.opts.Mode {
	case ModeHBA:
		for origin, src := range c.servers {
			snap := src.ShipDirect()
			for id, dst := range c.servers {
				if id != origin {
					dst.InstallReplicaDirect(origin, snap.Clone())
				}
			}
		}
	case ModeGHBA:
		for gi, members := range c.groups {
			inGroup := make(map[int]bool, len(members))
			for _, id := range members {
				inGroup[id] = true
			}
			slot := 0
			for _, origin := range c.ids {
				if inGroup[origin] {
					continue
				}
				target := members[slot%len(members)]
				slot++
				c.servers[target].InstallReplicaDirect(origin, c.servers[origin].ShipDirect())
				c.holders[gi][origin] = target
			}
		}
	}
}

// snapshotIDs returns the current sorted member IDs. The slice is rebuilt
// (never mutated) on membership change, so it is safe to use after the
// lock is released.
func (c *Cluster) snapshotIDs() []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ids
}

// groupMembers returns a copy of the group containing id (G-HBA), or nil.
func (c *Cluster) groupMembers(id int) []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	gi, ok := c.groupIdx[id]
	if !ok {
		return nil
	}
	return append([]int(nil), c.groups[gi]...)
}

// NumMDS returns the daemon count.
func (c *Cluster) NumMDS() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.servers)
}

// Mode returns the running scheme.
func (c *Cluster) Mode() Mode { return c.opts.Mode }

// Messages returns the total RPC messages issued by the coordinator.
func (c *Cluster) Messages() uint64 { return c.messages.Load() }

// ResetMessages zeroes the message counter between experiment phases.
func (c *Cluster) ResetMessages() { c.messages.Store(0) }

// Close shuts down all daemons and connections.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.conns.closeAll()
	for _, s := range c.servers {
		s.Close()
	}
}

// call issues one counted RPC through the daemon's connection pool. ctr,
// when non-nil, additionally charges the message to one lookup or
// reconfiguration, keeping per-operation counts exact even while other
// operations are in flight.
func (c *Cluster) call(id int, msgType uint8, payload []byte, ctr *atomic.Int64) ([]byte, error) {
	pool, err := c.conns.pool(id)
	if err != nil {
		return nil, err
	}
	c.messages.Add(1)
	if ctr != nil {
		ctr.Add(1)
	}
	return pool.Call(msgType, payload)
}

// Populate homes paths at random daemons (direct, unmeasured) and refreshes
// replicas. It is an exclusive writer against the coordinator's home map
// and RNG; note that a lookup which snapshotted membership before the lock
// was taken may still have RPCs in flight while daemon stores update —
// each NodeServer serializes its own state, so such a lookup sees each
// daemon either before or after its update, never a torn one.
func (c *Cluster) Populate(paths []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := c.ids
	c.rngMu.Lock()
	for _, p := range paths {
		home := ids[c.rng.Intn(len(ids))]
		c.servers[home].AddFileDirect(p)
		c.homes[p] = home
	}
	c.rngMu.Unlock()
	c.refreshReplicas()
}

// refreshReplicas re-ships every filter to its current holders (direct).
// Callers must hold c.mu exclusively.
func (c *Cluster) refreshReplicas() {
	switch c.opts.Mode {
	case ModeHBA:
		for origin, src := range c.servers {
			snap := src.ShipDirect()
			for id, dst := range c.servers {
				if id != origin {
					dst.InstallReplicaDirect(origin, snap.Clone())
				}
			}
		}
	case ModeGHBA:
		for gi := range c.groups {
			for origin, holder := range c.holders[gi] {
				c.servers[holder].InstallReplicaDirect(origin, c.servers[origin].ShipDirect())
			}
		}
	}
}

// HomeOf returns the ground-truth home (-1 when absent).
func (c *Cluster) HomeOf(path string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	home, ok := c.homes[path]
	if !ok {
		return -1
	}
	return home
}

// LookupResult reports one prototype lookup.
type LookupResult struct {
	// Home is the resolved MDS (-1 when not found).
	Home int
	// Found reports existence.
	Found bool
	// Level is the hierarchy level that answered (1, 2, 3 or 4).
	Level int
	// Latency is the measured wall-clock duration.
	Latency time.Duration
	// Messages is the number of RPCs this lookup issued.
	Messages int
}

// Lookup resolves path through real RPCs, starting at a random entry MDS
// drawn from the cluster's own RNG. Safe for concurrent use, though
// concurrent callers contend on that RNG — parallel drivers should prefer
// LookupParallel or LookupWith with per-worker RNGs.
func (c *Cluster) Lookup(path string) (LookupResult, error) {
	ids := c.snapshotIDs()
	c.rngMu.Lock()
	entry := ids[c.rng.Intn(len(ids))]
	c.rngMu.Unlock()
	return c.LookupVia(path, entry)
}

// LookupWith resolves path with the entry MDS drawn from the caller's RNG,
// the prototype's reproducible-concurrency hook: each worker owns an RNG,
// so runs are deterministic for a fixed (seed, paths, workers) triple.
func (c *Cluster) LookupWith(rng *rand.Rand, path string) (LookupResult, error) {
	ids := c.snapshotIDs()
	entry := ids[rng.Intn(len(ids))]
	return c.LookupVia(path, entry)
}

// LookupVia resolves path with the given entry MDS.
func (c *Cluster) LookupVia(path string, entry int) (LookupResult, error) {
	start := time.Now()
	var msgs atomic.Int64
	res, err := c.lookup(path, entry, &msgs)
	if err != nil {
		return LookupResult{}, err
	}
	res.Latency = time.Since(start)
	res.Messages = int(msgs.Load())
	if res.Found {
		if err := c.observe(path, res.Home); err != nil {
			return res, err
		}
	}
	return res, nil
}

// workerSeed derives a deterministic per-worker RNG seed (SplitMix64-style
// spacing keeps neighbouring workers' streams uncorrelated; same formula as
// the simulator facade, so prototype and simulation runs line up).
func workerSeed(seed int64, worker int) int64 {
	const golden = uint64(0x9E3779B97F4A7C15)
	return seed ^ int64(uint64(worker+1)*golden)
}

// LookupParallel resolves every path over real sockets using the given
// number of worker goroutines and returns the results in path order. Each
// worker enters the hierarchy at daemons drawn from its own seeded RNG, so
// entry sequences are deterministic for a fixed (seed, paths, workers)
// triple, and a single-worker run issues exactly the RPCs the serial
// Lookup path would with worker 0's RNG. workers < 1 selects GOMAXPROCS.
// The first error stops that worker's chunk; other workers finish theirs,
// and all errors are joined.
func (c *Cluster) LookupParallel(paths []string, workers int) ([]LookupResult, error) {
	if len(paths) == 0 {
		return nil, nil
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(paths) {
		workers = len(paths)
	}
	results := make([]LookupResult, len(paths))
	errs := make([]error, workers)
	chunk := (len(paths) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(paths) {
			break
		}
		hi := lo + chunk
		if hi > len(paths) {
			hi = len(paths)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed(c.opts.Seed, w)))
			for i := lo; i < hi; i++ {
				res, err := c.LookupWith(rng, paths[i])
				if err != nil {
					errs[w] = fmt.Errorf("worker %d, lookup %q: %w", w, paths[i], err)
					return
				}
				results[i] = res
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// observe queues one L1 learning record and multicasts the batch to every
// daemon once it is full. Batching amortizes the replication cost of the
// LRU arrays to a fraction of a message per lookup. A daemon that fails
// its delivery does not cost the others theirs: the batch still reaches
// every reachable daemon and the failures are reported joined.
func (c *Cluster) observe(path string, home int) error {
	c.obsMu.Lock()
	c.pendingObs = append(c.pendingObs, observation{home: home, path: path})
	if len(c.pendingObs) < obsBatchSize {
		c.obsMu.Unlock()
		return nil
	}
	batch := c.pendingObs
	c.pendingObs = nil
	c.obsMu.Unlock()
	payload := encodeObservations(batch)
	// Multicast in parallel, like the query fan-outs: the flushing lookup
	// pays one round-trip time, not N sequential ones.
	ids := c.snapshotIDs()
	errCh := make(chan error, len(ids))
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if _, err := c.call(id, opObserveBatch, payload, nil); err != nil {
				errCh <- fmt.Errorf("observe batch to MDS %d: %w", id, err)
			}
		}(id)
	}
	wg.Wait()
	close(errCh)
	var errs []error
	for err := range errCh {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

func (c *Cluster) lookup(path string, entry int, ctr *atomic.Int64) (LookupResult, error) {
	// Entry query: L1 + L2 in one RPC.
	resp, err := c.call(entry, opQueryEntry, []byte(path), ctr)
	if err != nil {
		return LookupResult{}, err
	}
	l1Hits, rest, err := decodeHits(resp)
	if err != nil {
		return LookupResult{}, err
	}
	l2Hits, _, err := decodeHits(rest)
	if err != nil {
		return LookupResult{}, err
	}

	if len(l1Hits) == 1 {
		if ok, err := c.verify(l1Hits[0], path, ctr); err != nil {
			return LookupResult{}, err
		} else if ok {
			return LookupResult{Home: l1Hits[0], Found: true, Level: 1}, nil
		}
	}
	if len(l2Hits) == 1 {
		if ok, err := c.verify(l2Hits[0], path, ctr); err != nil {
			return LookupResult{}, err
		} else if ok {
			return LookupResult{Home: l2Hits[0], Found: true, Level: 2}, nil
		}
	}

	// L3 (G-HBA only): parallel multicast to the entry's groupmates.
	if c.opts.Mode == ModeGHBA {
		if members := c.groupMembers(entry); members != nil {
			hits, err := c.multicastQuery(members, entry, opQueryMember, path, ctr)
			if err != nil {
				return LookupResult{}, err
			}
			for _, h := range l2Hits {
				hits[h] = struct{}{}
			}
			if len(hits) == 1 {
				var home int
				for h := range hits {
					home = h
				}
				if ok, err := c.verify(home, path, ctr); err != nil {
					return LookupResult{}, err
				} else if ok {
					return LookupResult{Home: home, Found: true, Level: 3}, nil
				}
			}
		}
	}

	// L4: global multicast; every daemon checks its local filter + store.
	home, err := c.globalSearch(path, entry, ctr)
	if err != nil {
		return LookupResult{}, err
	}
	if home >= 0 {
		return LookupResult{Home: home, Found: true, Level: 4}, nil
	}
	return LookupResult{Home: -1, Found: false, Level: 4}, nil
}

func (c *Cluster) verify(id int, path string, ctr *atomic.Int64) (bool, error) {
	resp, err := c.call(id, opVerify, []byte(path), ctr)
	if err != nil {
		return false, err
	}
	return byteBool(resp), nil
}

// multicastQuery fans a query out to members (minus the entry) in parallel
// and returns the union of their hits.
func (c *Cluster) multicastQuery(members []int, entry int, msgType uint8, path string, ctr *atomic.Int64) (map[int]struct{}, error) {
	type answer struct {
		hits []int
		err  error
	}
	var wg sync.WaitGroup
	answers := make(chan answer, len(members))
	for _, id := range members {
		if id == entry {
			continue
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			resp, err := c.call(id, msgType, []byte(path), ctr)
			if err != nil {
				answers <- answer{err: err}
				return
			}
			hits, _, err := decodeHits(resp)
			answers <- answer{hits: hits, err: err}
		}(id)
	}
	wg.Wait()
	close(answers)
	union := make(map[int]struct{})
	for a := range answers {
		if a.err != nil {
			return nil, a.err
		}
		for _, h := range a.hits {
			union[h] = struct{}{}
		}
	}
	return union, nil
}

// globalSearch asks every daemon (minus the entry) whether it homes path.
func (c *Cluster) globalSearch(path string, entry int, ctr *atomic.Int64) (int, error) {
	ids := c.snapshotIDs()
	type answer struct {
		id  int
		has bool
		err error
	}
	var wg sync.WaitGroup
	answers := make(chan answer, len(ids))
	for _, id := range ids {
		if id == entry {
			continue
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			resp, err := c.call(id, opHasLocal, []byte(path), ctr)
			answers <- answer{id: id, has: err == nil && byteBool(resp), err: err}
		}(id)
	}
	// The entry checks itself locally too (no extra message: it is the
	// server driving the query; count one self-check call for symmetry
	// with the simulator's accounting).
	selfResp, selfErr := c.call(entry, opHasLocal, []byte(path), ctr)
	wg.Wait()
	close(answers)
	if selfErr == nil && byteBool(selfResp) {
		return entry, nil
	}
	for a := range answers {
		if a.err != nil {
			return -1, a.err
		}
		if a.has {
			return a.id, nil
		}
	}
	return -1, nil
}
