package proto

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ghba/internal/mds"
	"ghba/internal/rpcnet"
)

// Mode selects the scheme the prototype runs.
type Mode int

// Prototype modes.
const (
	// ModeGHBA runs grouped servers with segment arrays (θ replicas each).
	ModeGHBA Mode = iota + 1
	// ModeHBA runs the baseline: every server mirrors every other.
	ModeHBA
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeGHBA:
		return "G-HBA"
	case ModeHBA:
		return "HBA"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Options configures a prototype cluster.
type Options struct {
	// N is the number of MDS daemons.
	N int
	// M is the maximum group size (G-HBA mode; the paper's prototype uses
	// M=7 on its 60-node cluster).
	M int
	// Mode selects G-HBA or HBA.
	Mode Mode
	// Node sizes each daemon's filter structures.
	Node mds.Config
	// ResidentReplicaLimit is how many replicas fit in one daemon's RAM;
	// holdings beyond it pay DiskPenalty per query. Zero disables.
	ResidentReplicaLimit int
	// DiskPenalty is the emulated disk cost for over-RAM replica arrays.
	DiskPenalty time.Duration
	// Seed drives placement and entry selection.
	Seed int64
}

func (o *Options) validate() error {
	if o.N < 1 {
		return fmt.Errorf("proto: N must be ≥ 1, got %d", o.N)
	}
	if o.Mode == ModeGHBA && o.M < 1 {
		return fmt.Errorf("proto: M must be ≥ 1 in G-HBA mode, got %d", o.M)
	}
	if o.Mode != ModeGHBA && o.Mode != ModeHBA {
		return fmt.Errorf("proto: unknown mode %d", int(o.Mode))
	}
	return nil
}

// Cluster is a running prototype: N daemons plus the coordinator state that
// drives queries and reconfiguration against them.
type Cluster struct {
	opts Options

	mu      sync.Mutex
	servers map[int]*NodeServer
	clients map[int]*rpcnet.Client
	groups  map[int][]int       // group index → member IDs (G-HBA)
	holders map[int]map[int]int // group index → origin → holding member
	homes   map[string]int
	rng     *rand.Rand
	nextID  int

	// pendingObs accumulates confirmed (path → home) mappings; every
	// obsBatchSize lookups the batch is multicast to all daemons,
	// refreshing their replicated LRU arrays the way HBA piggybacks LRU
	// replica updates.
	pendingObs []observation

	messages atomic.Uint64
}

// obsBatchSize is how many confirmed lookups accumulate before the LRU
// observation batch is multicast to every daemon.
const obsBatchSize = 64

// Start builds, populates and launches a prototype cluster on loopback
// ports. Callers must Close it.
func Start(opts Options) (*Cluster, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		opts:    opts,
		servers: make(map[int]*NodeServer),
		clients: make(map[int]*rpcnet.Client),
		groups:  make(map[int][]int),
		holders: make(map[int]map[int]int),
		homes:   make(map[string]int),
		rng:     rand.New(rand.NewSource(opts.Seed)),
		nextID:  opts.N,
	}
	for i := 0; i < opts.N; i++ {
		node, err := mds.NewNode(i, opts.Node)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("proto: node %d: %w", i, err)
		}
		ns, err := StartNode(node, "127.0.0.1:0", opts.ResidentReplicaLimit, opts.DiskPenalty)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.servers[i] = ns
	}
	// Group layout (G-HBA) or flat (HBA).
	if opts.Mode == ModeGHBA {
		gi := 0
		for start := 0; start < opts.N; start += opts.M {
			end := start + opts.M
			if end > opts.N {
				end = opts.N
			}
			var members []int
			for id := start; id < end; id++ {
				members = append(members, id)
			}
			c.groups[gi] = members
			c.holders[gi] = make(map[int]int)
			gi++
		}
	}
	c.seedReplicas()
	return c, nil
}

// seedReplicas distributes initial (empty) replicas directly, before any
// measurement traffic.
func (c *Cluster) seedReplicas() {
	switch c.opts.Mode {
	case ModeHBA:
		for origin, src := range c.servers {
			snap := src.ShipDirect()
			for id, dst := range c.servers {
				if id != origin {
					dst.InstallReplicaDirect(origin, snap.Clone())
				}
			}
		}
	case ModeGHBA:
		for gi, members := range c.groups {
			inGroup := make(map[int]bool, len(members))
			for _, id := range members {
				inGroup[id] = true
			}
			slot := 0
			for _, origin := range c.sortedIDs() {
				if inGroup[origin] {
					continue
				}
				target := members[slot%len(members)]
				slot++
				c.servers[target].InstallReplicaDirect(origin, c.servers[origin].ShipDirect())
				c.holders[gi][origin] = target
			}
		}
	}
}

func (c *Cluster) sortedIDs() []int {
	ids := make([]int, 0, len(c.servers))
	for id := range c.servers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// NumMDS returns the daemon count.
func (c *Cluster) NumMDS() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.servers)
}

// Mode returns the running scheme.
func (c *Cluster) Mode() Mode { return c.opts.Mode }

// Messages returns the total RPC messages issued by the coordinator.
func (c *Cluster) Messages() uint64 { return c.messages.Load() }

// ResetMessages zeroes the message counter between experiment phases.
func (c *Cluster) ResetMessages() { c.messages.Store(0) }

// Close shuts down all daemons and connections.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cl := range c.clients {
		cl.Close()
	}
	c.clients = make(map[int]*rpcnet.Client)
	for _, s := range c.servers {
		s.Close()
	}
}

// client returns (dialing lazily) the coordinator's connection to an MDS.
func (c *Cluster) client(id int) (*rpcnet.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clientLocked(id)
}

func (c *Cluster) clientLocked(id int) (*rpcnet.Client, error) {
	if cl, ok := c.clients[id]; ok {
		return cl, nil
	}
	srv, ok := c.servers[id]
	if !ok {
		return nil, fmt.Errorf("proto: unknown MDS %d", id)
	}
	cl, err := rpcnet.Dial(srv.Addr())
	if err != nil {
		return nil, err
	}
	c.clients[id] = cl
	return cl, nil
}

// call issues one counted RPC.
func (c *Cluster) call(id int, msgType uint8, payload []byte) ([]byte, error) {
	cl, err := c.client(id)
	if err != nil {
		return nil, err
	}
	c.messages.Add(1)
	return cl.Call(msgType, payload)
}

// Populate homes paths at random daemons (direct, unmeasured) and refreshes
// replicas.
func (c *Cluster) Populate(paths []string) {
	ids := c.sortedIDs()
	for _, p := range paths {
		home := ids[c.rng.Intn(len(ids))]
		c.servers[home].AddFileDirect(p)
		c.homes[p] = home
	}
	c.refreshReplicas()
}

// refreshReplicas re-ships every filter to its current holders (direct).
func (c *Cluster) refreshReplicas() {
	switch c.opts.Mode {
	case ModeHBA:
		for origin, src := range c.servers {
			snap := src.ShipDirect()
			for id, dst := range c.servers {
				if id != origin {
					dst.InstallReplicaDirect(origin, snap.Clone())
				}
			}
		}
	case ModeGHBA:
		for gi := range c.groups {
			for origin, holder := range c.holders[gi] {
				c.servers[holder].InstallReplicaDirect(origin, c.servers[origin].ShipDirect())
			}
		}
	}
}

// HomeOf returns the ground-truth home (-1 when absent).
func (c *Cluster) HomeOf(path string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	home, ok := c.homes[path]
	if !ok {
		return -1
	}
	return home
}

// groupOf returns the group index containing id (G-HBA), or -1.
func (c *Cluster) groupOf(id int) int {
	for gi, members := range c.groups {
		for _, m := range members {
			if m == id {
				return gi
			}
		}
	}
	return -1
}

// LookupResult reports one prototype lookup.
type LookupResult struct {
	// Home is the resolved MDS (-1 when not found).
	Home int
	// Found reports existence.
	Found bool
	// Level is the hierarchy level that answered (1, 2, 3 or 4).
	Level int
	// Latency is the measured wall-clock duration.
	Latency time.Duration
	// Messages is the number of RPCs this lookup issued.
	Messages int
}

// Lookup resolves path through real RPCs, starting at a random entry MDS.
func (c *Cluster) Lookup(path string) (LookupResult, error) {
	ids := c.sortedIDs()
	c.mu.Lock()
	entry := ids[c.rng.Intn(len(ids))]
	c.mu.Unlock()
	return c.LookupVia(path, entry)
}

// LookupVia resolves path with the given entry MDS.
func (c *Cluster) LookupVia(path string, entry int) (LookupResult, error) {
	start := time.Now()
	msgsBefore := c.messages.Load()
	res, err := c.lookup(path, entry)
	if err != nil {
		return LookupResult{}, err
	}
	res.Latency = time.Since(start)
	res.Messages = int(c.messages.Load() - msgsBefore)
	if res.Found {
		if err := c.observe(path, res.Home); err != nil {
			return res, err
		}
	}
	return res, nil
}

// observe queues one L1 learning record and multicasts the batch to every
// daemon once it is full. Batching amortizes the replication cost of the
// LRU arrays to a fraction of a message per lookup.
func (c *Cluster) observe(path string, home int) error {
	c.mu.Lock()
	c.pendingObs = append(c.pendingObs, observation{home: home, path: path})
	if len(c.pendingObs) < obsBatchSize {
		c.mu.Unlock()
		return nil
	}
	batch := c.pendingObs
	c.pendingObs = nil
	c.mu.Unlock()
	payload := encodeObservations(batch)
	for _, id := range c.sortedIDs() {
		if _, err := c.call(id, opObserveBatch, payload); err != nil {
			return err
		}
	}
	return nil
}

func (c *Cluster) lookup(path string, entry int) (LookupResult, error) {
	// Entry query: L1 + L2 in one RPC.
	resp, err := c.call(entry, opQueryEntry, []byte(path))
	if err != nil {
		return LookupResult{}, err
	}
	l1Hits, rest, err := decodeHits(resp)
	if err != nil {
		return LookupResult{}, err
	}
	l2Hits, _, err := decodeHits(rest)
	if err != nil {
		return LookupResult{}, err
	}

	if len(l1Hits) == 1 {
		if ok, err := c.verify(l1Hits[0], path); err != nil {
			return LookupResult{}, err
		} else if ok {
			return LookupResult{Home: l1Hits[0], Found: true, Level: 1}, nil
		}
	}
	if len(l2Hits) == 1 {
		if ok, err := c.verify(l2Hits[0], path); err != nil {
			return LookupResult{}, err
		} else if ok {
			return LookupResult{Home: l2Hits[0], Found: true, Level: 2}, nil
		}
	}

	// L3 (G-HBA only): parallel multicast to the entry's groupmates.
	if c.opts.Mode == ModeGHBA {
		gi := c.groupOf(entry)
		if gi >= 0 {
			hits, err := c.multicastQuery(c.groups[gi], entry, opQueryMember, path)
			if err != nil {
				return LookupResult{}, err
			}
			for _, h := range l2Hits {
				hits[h] = struct{}{}
			}
			if len(hits) == 1 {
				var home int
				for h := range hits {
					home = h
				}
				if ok, err := c.verify(home, path); err != nil {
					return LookupResult{}, err
				} else if ok {
					return LookupResult{Home: home, Found: true, Level: 3}, nil
				}
			}
		}
	}

	// L4: global multicast; every daemon checks its local filter + store.
	home, err := c.globalSearch(path, entry)
	if err != nil {
		return LookupResult{}, err
	}
	if home >= 0 {
		return LookupResult{Home: home, Found: true, Level: 4}, nil
	}
	return LookupResult{Home: -1, Found: false, Level: 4}, nil
}

func (c *Cluster) verify(id int, path string) (bool, error) {
	resp, err := c.call(id, opVerify, []byte(path))
	if err != nil {
		return false, err
	}
	return byteBool(resp), nil
}

// multicastQuery fans a query out to members (minus the entry) in parallel
// and returns the union of their hits.
func (c *Cluster) multicastQuery(members []int, entry int, msgType uint8, path string) (map[int]struct{}, error) {
	type answer struct {
		hits []int
		err  error
	}
	var wg sync.WaitGroup
	answers := make(chan answer, len(members))
	for _, id := range members {
		if id == entry {
			continue
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			resp, err := c.call(id, msgType, []byte(path))
			if err != nil {
				answers <- answer{err: err}
				return
			}
			hits, _, err := decodeHits(resp)
			answers <- answer{hits: hits, err: err}
		}(id)
	}
	wg.Wait()
	close(answers)
	union := make(map[int]struct{})
	for a := range answers {
		if a.err != nil {
			return nil, a.err
		}
		for _, h := range a.hits {
			union[h] = struct{}{}
		}
	}
	return union, nil
}

// globalSearch asks every daemon (minus the entry) whether it homes path.
func (c *Cluster) globalSearch(path string, entry int) (int, error) {
	ids := c.sortedIDs()
	type answer struct {
		id  int
		has bool
		err error
	}
	var wg sync.WaitGroup
	answers := make(chan answer, len(ids))
	for _, id := range ids {
		if id == entry {
			continue
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			resp, err := c.call(id, opHasLocal, []byte(path))
			answers <- answer{id: id, has: err == nil && byteBool(resp), err: err}
		}(id)
	}
	// The entry checks itself locally too (no extra message: it is the
	// server driving the query; count one self-check call for symmetry
	// with the simulator's accounting).
	selfResp, selfErr := c.call(entry, opHasLocal, []byte(path))
	wg.Wait()
	close(answers)
	if selfErr == nil && byteBool(selfResp) {
		return entry, nil
	}
	for a := range answers {
		if a.err != nil {
			return -1, a.err
		}
		if a.has {
			return a.id, nil
		}
	}
	return -1, nil
}
