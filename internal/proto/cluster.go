package proto

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ghba/internal/mds"
	"ghba/internal/metrics"
	"ghba/internal/rpcnet"
	"ghba/internal/shipq"
	"ghba/internal/trace"
	"ghba/internal/wal"
)

// Mode selects the scheme the prototype runs.
type Mode int

// Prototype modes.
const (
	// ModeGHBA runs grouped servers with segment arrays (θ replicas each).
	ModeGHBA Mode = iota + 1
	// ModeHBA runs the baseline: every server mirrors every other.
	ModeHBA
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeGHBA:
		return "G-HBA"
	case ModeHBA:
		return "HBA"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// DefaultCallTimeout is the per-RPC deadline applied when Options leaves
// CallTimeout zero: long enough for megabyte filter ships on loopback,
// short enough that a hung daemon fails a lookup instead of wedging the
// coordinator.
const DefaultCallTimeout = 10 * time.Second

// Transport names for Options.Transport.
const (
	// TransportMux (the default) multiplexes every RPC to a daemon over one
	// shared socket: request-ID-tagged frames, a single writer and reader
	// goroutine per connection, and an in-flight window that pipelines calls
	// instead of serializing them.
	TransportMux = "mux"
	// TransportClassic is the original call-per-connection protocol behind a
	// per-daemon pool — kept selectable so the wire bench can measure the
	// pre-mux path live.
	TransportClassic = "classic"
)

// Options configures a prototype cluster.
type Options struct {
	// N is the number of MDS daemons.
	N int
	// M is the maximum group size (G-HBA mode; the paper's prototype uses
	// M=7 on its 60-node cluster).
	M int
	// Mode selects G-HBA or HBA.
	Mode Mode
	// Node sizes each daemon's filter structures.
	Node mds.Config
	// ResidentReplicaLimit is how many replicas fit in one daemon's RAM;
	// holdings beyond it pay DiskPenalty per query. Zero disables.
	ResidentReplicaLimit int
	// DiskPenalty is the emulated disk cost for over-RAM replica arrays.
	DiskPenalty time.Duration
	// Seed drives placement and entry selection.
	Seed int64
	// CallTimeout is the per-RPC deadline. Zero selects
	// DefaultCallTimeout; negative disables deadlines entirely.
	CallTimeout time.Duration
	// UpdateThresholdBits is the XOR-delta staleness threshold: a daemon
	// whose local filter drifted this many bits from the last shipped
	// snapshot reports a crossing on its create response, feeding the
	// coordinator's coalescing ship queue. Zero selects the simulator's
	// default of 64.
	UpdateThresholdBits uint64
	// RebuildDeleteThreshold triggers a daemon-local filter rebuild after
	// this many deletions. Zero selects the simulator's default of 10 000.
	RebuildDeleteThreshold uint64
	// ShipBatch is the coalescing ship queue's drain batch: threshold
	// crossings absorbed before dirty origins' replicas ship over the
	// wire. 0 or 1 ships at every crossing (the paper's protocol).
	ShipBatch int
	// ObserveBatch is how many confirmed lookups accumulate before the L1
	// observation batch is multicast to every daemon. Zero selects 64; 1
	// multicasts immediately, matching the simulator's per-lookup L1
	// learning (the cross-backend equivalence tests rely on this).
	ObserveBatch int
	// Transport selects the wire protocol: TransportMux (default when
	// empty) or TransportClassic.
	Transport string
	// DataDir, when non-empty, makes every daemon durable: MDS i write-ahead
	// logs its mutations under DataDir/mds-<i> and compacts the log into
	// snapshots, so KillMDS/RestartMDS (and a standalone cmd/mdsd -data)
	// can crash and recover it. Start refuses directories with existing
	// state — the coordinator's ground-truth home map cannot be rebuilt from
	// per-daemon logs, so cold recovery belongs to cmd/mdsd, and in-lifetime
	// recovery to RestartMDS.
	DataDir string
	// WALSync selects the fsync policy for daemon WALs: "always" (default),
	// "interval" or "never". See wal.ParseSyncPolicy.
	WALSync string
	// WALSyncInterval bounds the data-loss window under WALSync "interval".
	// Zero selects the wal package default (100ms).
	WALSyncInterval time.Duration
	// SnapshotEvery is the WAL record count between snapshot compactions at
	// each daemon. Zero selects 4096; negative disables automatic
	// compaction.
	SnapshotEvery int
	// Retry bounds retry-with-backoff for idempotent RPCs (queries, probes,
	// filter ships — never mutations). The zero policy disables retries;
	// enable it when daemons may restart mid-run so lookups ride through
	// the outage instead of failing on the first reset.
	Retry rpcnet.RetryPolicy
}

func (o *Options) validate() error {
	if o.N < 1 {
		return fmt.Errorf("proto: N must be ≥ 1, got %d", o.N)
	}
	if o.Mode == ModeGHBA && o.M < 1 {
		return fmt.Errorf("proto: M must be ≥ 1 in G-HBA mode, got %d", o.M)
	}
	if o.Mode != ModeGHBA && o.Mode != ModeHBA {
		return fmt.Errorf("proto: unknown mode %d", int(o.Mode))
	}
	if o.Transport != "" && o.Transport != TransportMux && o.Transport != TransportClassic {
		return fmt.Errorf("proto: unknown transport %q", o.Transport)
	}
	if _, err := wal.ParseSyncPolicy(o.WALSync); err != nil {
		return fmt.Errorf("proto: %w", err)
	}
	return nil
}

// walOptions maps the cluster's durability knobs onto one daemon's WAL.
// Options.validate vetted WALSync, so the parse cannot fail here.
func (o *Options) walOptions() wal.Options {
	pol, _ := wal.ParseSyncPolicy(o.WALSync)
	return wal.Options{Sync: pol, SyncEvery: o.WALSyncInterval}
}

// walDir is the WAL directory of one daemon under DataDir.
func (o *Options) walDir(id int) string {
	return filepath.Join(o.DataDir, fmt.Sprintf("mds-%d", id))
}

// Cluster is a running prototype: N daemons plus the coordinator state that
// drives queries, mutations and reconfiguration against them.
//
// The coordinator follows the same discipline as the simulator's core
// engine: membership, group and holder state live behind an RWMutex,
// lookups and mutations are readers that snapshot what they need and issue
// RPCs without holding the lock, and AddMDS is the exclusive writer. The
// ground-truth home map synchronizes on its own mutex so creates and
// deletes on different paths never contend on the membership lock. RPC
// connections are pooled per daemon (connSet), so concurrent operations
// against one daemon ride parallel sockets rather than serializing on a
// shared connection.
type Cluster struct {
	opts Options

	mu       sync.RWMutex
	servers  map[int]*NodeServer
	groups   map[int][]int       // group index → member IDs (G-HBA)
	holders  map[int]map[int]int // group index → origin → holding member
	ids      []int               // sorted member IDs; rebuilt on mutation, never mutated in place
	groupIdx map[int]int         // member ID → group index; rebuilt with ids
	nextID   int

	// index is the published immutable membership snapshot the query path
	// navigates by without touching mu: rebuildIndexLocked swaps it in as
	// the final step of every membership mutation, so a lookup either sees
	// the old consistent topology or the new one, never a half-rebuilt
	// index.
	index atomic.Pointer[topo]

	// homes is the coordinator's ground-truth path → home map, the
	// linearization point of create and delete (claim-then-RPC, exactly as
	// core's sharded homes map commits the claim with the node update).
	homesMu sync.Mutex
	homes   map[string]int

	// ships coalesces XOR-delta threshold crossings per origin; shipStripes
	// serialize ships of the same origin so two racing shippers cannot
	// install an older snapshot over a newer one.
	ships       *shipq.Queue
	shipStripes [16]sync.Mutex

	conns *connSet

	// rng drives the serial Lookup/Apply paths' entry and placement draws;
	// parallel workers carry their own seeded RNGs and never touch it.
	rngMu sync.Mutex
	rng   *rand.Rand

	// pendingObs accumulates confirmed (path → home) mappings; every
	// obsBatch lookups the batch is multicast to all daemons, refreshing
	// their replicated LRU arrays the way HBA piggybacks LRU replica
	// updates.
	obsMu      sync.Mutex
	pendingObs []observation
	obsBatch   int

	// useMux is true when the cluster rides the multiplexed transport; the
	// L4 scatter-gather cancels losing probes only then, because abandoning
	// a classic pooled call poisons its connection.
	useMux bool

	// retry is the idempotent-RPC retry policy; zero disables retries.
	retry rpcnet.RetryPolicy

	tally        metrics.LevelTally
	messages     atomic.Uint64
	replicaShips atomic.Uint64
	rpcByOp      [len(opNames)]atomic.Uint64
}

// caller is the per-daemon connection surface the coordinator drives: the
// classic per-call connection pool and the multiplexed client both satisfy
// it, which is all the transport switch amounts to above the rpcnet layer.
type caller interface {
	CallContext(ctx context.Context, msgType uint8, payload []byte) ([]byte, error)
	Close()
}

// connSet owns the coordinator's per-daemon connections. It is
// deliberately independent of Cluster.mu so reconfiguration can issue RPCs
// to a daemon (including a half-joined newcomer) while holding the
// membership write lock.
type connSet struct {
	callTimeout time.Duration // ≤ 0 disables per-call deadlines
	mux         bool

	mu    sync.Mutex
	conns map[int]caller
}

func newConnSet(callTimeout time.Duration, mux bool) *connSet {
	return &connSet{callTimeout: callTimeout, mux: mux, conns: make(map[int]caller)}
}

// register creates (or replaces) the connection for a daemon.
func (cs *connSet) register(id int, addr string) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.conns == nil {
		return // closed
	}
	if old, ok := cs.conns[id]; ok {
		old.Close()
	}
	timeout := cs.callTimeout
	if timeout < 0 {
		timeout = 0
	}
	if cs.mux {
		cs.conns[id] = rpcnet.NewMuxClient(addr, rpcnet.MuxOptions{
			DialTimeout: timeout,
			CallTimeout: timeout,
		})
	} else {
		cs.conns[id] = rpcnet.NewPool(addr, rpcnet.PoolOptions{
			DialTimeout: timeout,
			CallTimeout: timeout,
		})
	}
}

// unregister drops a daemon's connection (failed join, removal).
func (cs *connSet) unregister(id int) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if p, ok := cs.conns[id]; ok {
		p.Close()
		delete(cs.conns, id)
	}
}

func (cs *connSet) conn(id int) (caller, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	p, ok := cs.conns[id]
	if !ok {
		return nil, fmt.Errorf("proto: unknown MDS %d", id)
	}
	return p, nil
}

func (cs *connSet) closeAll() {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for _, p := range cs.conns {
		p.Close()
	}
	cs.conns = nil
}

// nodeServerOptions maps cluster options onto one daemon's.
func (o *Options) nodeServerOptions() NodeServerOptions {
	return NodeServerOptions{
		ResidentReplicaLimit:   o.ResidentReplicaLimit,
		DiskPenalty:            o.DiskPenalty,
		UpdateThresholdBits:    o.UpdateThresholdBits,
		RebuildDeleteThreshold: o.RebuildDeleteThreshold,
	}
}

// Start builds, populates and launches a prototype cluster on loopback
// ports. Callers must Close it.
func Start(opts Options) (*Cluster, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	callTimeout := opts.CallTimeout
	if callTimeout == 0 {
		callTimeout = DefaultCallTimeout
	}
	obsBatch := opts.ObserveBatch
	if obsBatch <= 0 {
		obsBatch = 64
	}
	useMux := opts.Transport != TransportClassic
	c := &Cluster{
		opts:     opts,
		servers:  make(map[int]*NodeServer),
		groups:   make(map[int][]int),
		holders:  make(map[int]map[int]int),
		homes:    make(map[string]int),
		ships:    shipq.New(opts.ShipBatch),
		conns:    newConnSet(callTimeout, useMux),
		rng:      rand.New(rand.NewSource(opts.Seed)),
		obsBatch: obsBatch,
		nextID:   opts.N,
		useMux:   useMux,
		retry:    opts.Retry,
	}
	for i := 0; i < opts.N; i++ {
		ns, _, err := c.launchNode(i)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.servers[i] = ns
		c.conns.register(i, ns.Addr())
	}
	// Group layout (G-HBA) or flat (HBA). The partition matches the
	// simulator's: ⌈N/M⌉ groups with sizes as even as possible, so a sim
	// and a prototype built from the same (N, M) agree on membership.
	if opts.Mode == ModeGHBA {
		numGroups := (opts.N + opts.M - 1) / opts.M
		base := opts.N / numGroups
		extra := opts.N % numGroups
		next := 0
		for gi := 0; gi < numGroups; gi++ {
			size := base
			if gi < extra {
				size++
			}
			members := make([]int, 0, size)
			for id := next; id < next+size; id++ {
				members = append(members, id)
			}
			next += size
			c.groups[gi] = members
			c.holders[gi] = make(map[int]int)
		}
	}
	c.rebuildIndexLocked()
	c.seedReplicas()
	return c, nil
}

// launchNode builds and launches daemon id on a fresh loopback port. With
// DataDir set the daemon gets a write-ahead log; an id whose directory
// already holds state is refused, because only the recovery paths
// (RestartMDS in-lifetime, cmd/mdsd standalone) reconcile recovered files
// with the coordinator's ground-truth home map.
func (c *Cluster) launchNode(id int) (*NodeServer, mds.RecoveryInfo, error) {
	if c.opts.DataDir == "" {
		node, err := mds.NewNode(id, c.opts.Node)
		if err != nil {
			return nil, mds.RecoveryInfo{}, fmt.Errorf("proto: node %d: %w", id, err)
		}
		ns, err := StartNode(node, "127.0.0.1:0", c.opts.nodeServerOptions())
		return ns, mds.RecoveryInfo{}, err
	}
	ns, info, err := c.recoverNode(id)
	if err != nil {
		return nil, info, err
	}
	if info.Files > 0 || info.Replayed > 0 || info.SnapshotSeq > 0 {
		ns.Close()
		return nil, info, fmt.Errorf("proto: MDS %d: %s already holds state (snapshot seq %d, %d files); recover it with RestartMDS or cmd/mdsd instead of relaunching fresh",
			id, c.opts.walDir(id), info.SnapshotSeq, info.Files)
	}
	return ns, info, nil
}

// recoverNode rebuilds daemon id from its WAL directory and launches it on
// a fresh loopback port, leaving the log open for the daemon's appends.
func (c *Cluster) recoverNode(id int) (*NodeServer, mds.RecoveryInfo, error) {
	node, l, info, err := mds.Recover(id, c.opts.Node, c.opts.walDir(id), c.opts.walOptions())
	if err != nil {
		return nil, info, err
	}
	nso := c.opts.nodeServerOptions()
	nso.WAL = l
	nso.SnapshotEvery = c.opts.SnapshotEvery
	ns, err := StartNode(node, "127.0.0.1:0", nso)
	if err != nil {
		_ = l.Close()
		return nil, info, err
	}
	return ns, info, nil
}

// topo is one immutable membership snapshot: sorted daemon IDs plus each
// member's group, frozen at a reconfiguration boundary. Nothing in a topo is
// mutated after publication — rebuildIndexLocked builds a replacement and
// swaps the cluster's pointer — so the query path reads it lock-free.
type topo struct {
	ids     []int
	members map[int][]int // member ID → sorted member IDs of its group
}

// rebuildIndexLocked recomputes the sorted-ID cache and the member → group
// index, then publishes the new membership snapshot for the lock-free query
// path. Callers must hold c.mu exclusively (or be pre-concurrency in
// Start). Every structure is allocated fresh so snapshots handed to readers
// stay valid after the next rebuild — including the per-group member slices,
// which joinGroup appends to in place under the write lock.
func (c *Cluster) rebuildIndexLocked() {
	ids := make([]int, 0, len(c.servers))
	for id := range c.servers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	c.ids = ids
	idx := make(map[int]int, len(c.servers))
	t := &topo{ids: ids, members: make(map[int][]int, len(c.servers))}
	for gi, members := range c.groups {
		frozen := append([]int(nil), members...)
		sort.Ints(frozen)
		for _, m := range members {
			idx[m] = gi
			t.members[m] = frozen
		}
	}
	c.groupIdx = idx
	c.index.Store(t)
}

// seedReplicas distributes initial (empty) replicas directly, before any
// measurement traffic. Holder assignment round-robins each group's members
// in ascending member order over ascending external origins — the same
// placement the simulator's lightest-member rule produces on a fresh
// cluster.
func (c *Cluster) seedReplicas() {
	switch c.opts.Mode {
	case ModeHBA:
		for origin, src := range c.servers {
			snap := src.ShipDirect()
			for id, dst := range c.servers {
				if id != origin {
					dst.InstallReplicaDirect(origin, snap.Clone())
				}
			}
		}
	case ModeGHBA:
		for gi, members := range c.groups {
			inGroup := make(map[int]bool, len(members))
			for _, id := range members {
				inGroup[id] = true
			}
			slot := 0
			for _, origin := range c.ids {
				if inGroup[origin] {
					continue
				}
				target := members[slot%len(members)]
				slot++
				c.servers[target].InstallReplicaDirect(origin, c.servers[origin].ShipDirect())
				c.holders[gi][origin] = target
			}
		}
	}
}

// snapshotIDs returns the current sorted member IDs from the published
// membership snapshot — no lock. The slice is immutable (rebuilt, never
// mutated, on membership change), so it stays valid indefinitely.
func (c *Cluster) snapshotIDs() []int {
	return c.index.Load().ids
}

// memberOf reports whether id is in a sorted membership snapshot.
func memberOf(ids []int, id int) bool {
	i := sort.SearchInts(ids, id)
	return i < len(ids) && ids[i] == id
}

// groupMembers returns the sorted members of the group containing id
// (G-HBA), or nil — read lock-free from the published membership snapshot.
// The slice is immutable and shared; callers must not modify it.
func (c *Cluster) groupMembers(id int) []int {
	return c.index.Load().members[id]
}

// NumMDS returns the daemon count.
func (c *Cluster) NumMDS() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.servers)
}

// MDSIDs returns the current daemon IDs in ascending order.
func (c *Cluster) MDSIDs() []int {
	return append([]int(nil), c.snapshotIDs()...)
}

// FileCount returns the number of files in the namespace.
func (c *Cluster) FileCount() int {
	c.homesMu.Lock()
	defer c.homesMu.Unlock()
	return len(c.homes)
}

// Mode returns the running scheme.
func (c *Cluster) Mode() Mode { return c.opts.Mode }

// Seed returns the seed the cluster's own RNG was built from.
func (c *Cluster) Seed() int64 { return c.opts.Seed }

// Transport returns the wire protocol in use (TransportMux or
// TransportClassic).
func (c *Cluster) Transport() string {
	if c.useMux {
		return TransportMux
	}
	return TransportClassic
}

// Messages returns the total RPC messages issued by the coordinator.
func (c *Cluster) Messages() uint64 { return c.messages.Load() }

// ResetMessages zeroes the message counter between experiment phases.
func (c *Cluster) ResetMessages() { c.messages.Store(0) }

// RPCCounts returns the cumulative RPCs issued per message type, keyed by
// wire name — the per-opcode evidence behind the wire bench's
// RPCs-per-operation numbers. Types never issued are omitted.
func (c *Cluster) RPCCounts() map[string]uint64 {
	out := make(map[string]uint64)
	for op := range c.rpcByOp {
		if n := c.rpcByOp[op].Load(); n > 0 {
			out[opName(uint8(op))] = n
		}
	}
	return out
}

// ResetRPCCounts zeroes the per-opcode counters between experiment phases.
func (c *Cluster) ResetRPCCounts() {
	for op := range c.rpcByOp {
		c.rpcByOp[op].Store(0)
	}
}

// ReplicaUpdates returns the number of replica-install messages the
// XOR-delta ship path has sent — the traffic the coalescing queue
// amortizes (initial seeding is direct and uncounted).
func (c *Cluster) ReplicaUpdates() uint64 { return c.replicaShips.Load() }

// Tally exposes the per-level hit counters.
func (c *Cluster) Tally() *metrics.LevelTally { return &c.tally }

// LevelCounts returns the cumulative number of lookups served at each level
// (indices 1–4; index 0 unused).
func (c *Cluster) LevelCounts() [5]uint64 {
	var out [5]uint64
	for l := 1; l <= 4; l++ {
		out[l] = c.tally.Count(l)
	}
	return out
}

// Close shuts down all daemons and connections.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.conns.closeAll()
	for _, s := range c.servers {
		s.Close()
	}
}

// call issues one counted RPC through the daemon's connection pool. ctr,
// when non-nil, additionally charges the message to one lookup or
// reconfiguration, keeping per-operation counts exact even while other
// operations are in flight. Idempotent message types ride the cluster's
// retry policy (if enabled): transport failures — a daemon restarting
// under the detector's nose — are retried with backoff, and every attempt
// is real wire traffic, so each one is counted.
func (c *Cluster) call(ctx context.Context, id int, msgType uint8, payload []byte, ctr *atomic.Int64) ([]byte, error) {
	conn, err := c.conns.conn(id)
	if err != nil {
		return nil, err
	}
	counted := countedCaller{conn: conn, c: c, msgType: msgType, ctr: ctr}
	if c.retry.Enabled() && isIdempotent(msgType) {
		return rpcnet.CallRetry(ctx, counted, c.retry, msgType, payload)
	}
	return counted.CallContext(ctx, msgType, payload)
}

// countedCaller charges each attempt to the cluster's message counters
// before handing it to the transport; retries therefore count like the
// distinct messages they are on the wire.
type countedCaller struct {
	conn    caller
	c       *Cluster
	msgType uint8
	ctr     *atomic.Int64
}

func (w countedCaller) CallContext(ctx context.Context, msgType uint8, payload []byte) ([]byte, error) {
	w.c.messages.Add(1)
	if int(w.msgType) < len(w.c.rpcByOp) {
		w.c.rpcByOp[w.msgType].Add(1)
	}
	if w.ctr != nil {
		w.ctr.Add(1)
	}
	return w.conn.CallContext(ctx, msgType, payload)
}

// isIdempotent reports whether an RPC may be retried after a transport
// failure: re-asking a question or re-shipping a filter snapshot is safe,
// re-running a create/delete/install whose first response (not execution)
// was lost is not.
func isIdempotent(op uint8) bool {
	switch op {
	case opQueryEntry, opQueryMember, opVerify, opHasLocal, opShipFilter,
		opObserve, opObserveBatch, opPing, opHeartbeat,
		opLookupBatch, opQueryMemberBatch, opVerifyBatch, opHasLocalBatch:
		return true
	}
	return false
}

// Heartbeat probes daemon id for liveness, returning its health report.
// The failure detector drives this on a cadence; it is also a cheap way
// for tests to ask a daemon how much un-snapshotted WAL it carries.
func (c *Cluster) Heartbeat(ctx context.Context, id int) (HeartbeatInfo, error) {
	resp, err := c.call(ctx, id, opHeartbeat, nil, nil)
	if err != nil {
		return HeartbeatInfo{}, err
	}
	info, err := decodeHeartbeatResp(resp)
	if err != nil {
		return HeartbeatInfo{}, err
	}
	if info.ID != id {
		return info, fmt.Errorf("proto: heartbeat to MDS %d answered by MDS %d", id, info.ID)
	}
	return info, nil
}

// Populate homes paths at random daemons (direct, unmeasured) and refreshes
// replicas — the bulk-load path behind the Backend's CreateAll. It is an
// exclusive writer against the coordinator's membership and RNG; note that
// a lookup which snapshotted membership before the lock was taken may still
// have RPCs in flight while daemon stores update — each NodeServer
// serializes its own state, so such a lookup sees each daemon either before
// or after its update, never a torn one.
func (c *Cluster) Populate(paths []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := c.ids
	c.rngMu.Lock()
	c.homesMu.Lock()
	for _, p := range paths {
		home := ids[c.rng.Intn(len(ids))]
		c.servers[home].AddFileDirect(p)
		c.homes[p] = home
	}
	c.homesMu.Unlock()
	c.rngMu.Unlock()
	c.refreshReplicas()
	// Bulk loads bypass the WAL (logging-and-fsyncing per direct write would
	// make population crawl); one snapshot per daemon captures the whole
	// load atomically instead.
	if c.opts.DataDir != "" {
		for _, ns := range c.servers {
			if err := ns.SnapshotNow(); err != nil {
				panic(fmt.Sprintf("proto: snapshot after populate: %v", err))
			}
		}
	}
}

// refreshReplicas re-ships every filter to its current holders (direct).
// Callers must hold c.mu exclusively.
func (c *Cluster) refreshReplicas() {
	switch c.opts.Mode {
	case ModeHBA:
		for origin, src := range c.servers {
			snap := src.ShipDirect()
			for id, dst := range c.servers {
				if id != origin {
					dst.InstallReplicaDirect(origin, snap.Clone())
				}
			}
		}
	case ModeGHBA:
		for gi := range c.groups {
			for origin, holder := range c.holders[gi] {
				c.servers[holder].InstallReplicaDirect(origin, c.servers[origin].ShipDirect())
			}
		}
	}
	// Everything just shipped; nothing is left to coalesce.
	c.ships.Drain()
}

// HomeOf returns the ground-truth home (-1 when absent).
func (c *Cluster) HomeOf(path string) int {
	c.homesMu.Lock()
	defer c.homesMu.Unlock()
	home, ok := c.homes[path]
	if !ok {
		return -1
	}
	return home
}

// LookupResult reports one prototype lookup.
type LookupResult struct {
	// Home is the resolved MDS (-1 when not found).
	Home int
	// Found reports existence.
	Found bool
	// Level is the hierarchy level that answered (1, 2, 3 or 4), or 0 for
	// a pure mutation dispatched through Apply.
	Level int
	// Latency is the measured wall-clock duration.
	Latency time.Duration
	// Messages is the number of RPCs this lookup issued.
	Messages int
}

// Lookup resolves path through real RPCs, starting at a random entry MDS
// drawn from the cluster's own RNG. Safe for concurrent use, though
// concurrent callers contend on that RNG — parallel drivers should prefer
// LookupParallel or LookupWith with per-worker RNGs.
func (c *Cluster) Lookup(ctx context.Context, path string) (LookupResult, error) {
	ids := c.snapshotIDs()
	c.rngMu.Lock()
	entry := ids[c.rng.Intn(len(ids))]
	c.rngMu.Unlock()
	return c.LookupVia(ctx, path, entry)
}

// LookupWith resolves path with the entry MDS drawn from the caller's RNG,
// the prototype's reproducible-concurrency hook: each worker owns an RNG,
// so runs are deterministic for a fixed (seed, paths, workers) triple.
func (c *Cluster) LookupWith(ctx context.Context, rng *rand.Rand, path string) (LookupResult, error) {
	ids := c.snapshotIDs()
	entry := ids[rng.Intn(len(ids))]
	return c.LookupVia(ctx, path, entry)
}

// LookupVia resolves path with the given entry MDS.
func (c *Cluster) LookupVia(ctx context.Context, path string, entry int) (LookupResult, error) {
	start := time.Now()
	var msgs atomic.Int64
	res, err := c.lookup(ctx, path, entry, &msgs)
	if err != nil {
		return LookupResult{}, err
	}
	res.Latency = time.Since(start)
	res.Messages = int(msgs.Load())
	c.tally.Record(res.Level)
	if res.Found {
		if err := c.observe(ctx, path, res.Home); err != nil {
			return res, err
		}
	}
	return res, nil
}

// workerSeed derives a deterministic per-worker RNG seed; the shared
// derivation lives in trace.DispatchSeed so every parallel driver — the
// facade's backend pools, the replay engine, this one — agrees on it.
func workerSeed(seed int64, worker int) int64 {
	return trace.DispatchSeed(seed, worker)
}

// LookupParallel resolves every path over real sockets using the given
// number of worker goroutines and returns the results in path order. Each
// worker enters the hierarchy at daemons drawn from its own seeded RNG, so
// entry sequences are deterministic for a fixed (seed, paths, workers)
// triple, and a single-worker run issues exactly the RPCs a serial
// LookupWith loop would with worker 0's RNG. workers < 1 selects
// GOMAXPROCS. The first error stops that worker's chunk; other workers
// finish theirs, and all errors are joined.
func (c *Cluster) LookupParallel(ctx context.Context, paths []string, workers int) ([]LookupResult, error) {
	if len(paths) == 0 {
		return nil, nil
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(paths) {
		workers = len(paths)
	}
	results := make([]LookupResult, len(paths))
	errs := make([]error, workers)
	chunk := (len(paths) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(paths) {
			break
		}
		hi := lo + chunk
		if hi > len(paths) {
			hi = len(paths)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(workerSeed(c.opts.Seed, w)))
			for i := lo; i < hi; i++ {
				res, err := c.LookupWith(ctx, rng, paths[i])
				if err != nil {
					errs[w] = fmt.Errorf("worker %d, lookup %q: %w", w, paths[i], err)
					return
				}
				results[i] = res
			}
		}(w, lo, hi)
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// observe queues one L1 learning record and multicasts the batch to every
// daemon once it is full. Batching amortizes the replication cost of the
// LRU arrays to a fraction of a message per lookup. A daemon that fails
// its delivery does not cost the others theirs: the batch still reaches
// every reachable daemon and the failures are reported joined.
func (c *Cluster) observe(ctx context.Context, path string, home int) error {
	return c.observeMany(ctx, []observation{{home: home, path: path}})
}

// observeMany bulk-appends a vector's worth of L1 learning records and
// multicasts at most once: however far past ObserveBatch the append lands,
// the whole accumulation flushes as a single batch, so a large lookup
// vector pays one multicast instead of one per ObserveBatch lookups.
func (c *Cluster) observeMany(ctx context.Context, obs []observation) error {
	if len(obs) == 0 {
		return nil
	}
	c.obsMu.Lock()
	c.pendingObs = append(c.pendingObs, obs...)
	if len(c.pendingObs) < c.obsBatch {
		c.obsMu.Unlock()
		return nil
	}
	batch := c.pendingObs
	c.pendingObs = nil
	c.obsMu.Unlock()
	payload := encodeObservations(batch)
	// Multicast in parallel, like the query fan-outs: the flushing lookup
	// pays one round-trip time, not N sequential ones.
	ids := c.snapshotIDs()
	errCh := make(chan error, len(ids))
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if _, err := c.call(ctx, id, opObserveBatch, payload, nil); err != nil {
				errCh <- fmt.Errorf("observe batch to MDS %d: %w", id, err)
			}
		}(id)
	}
	wg.Wait()
	close(errCh)
	var errs []error
	for err := range errCh {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

func (c *Cluster) lookup(ctx context.Context, path string, entry int, ctr *atomic.Int64) (LookupResult, error) {
	// Failover leaves traces of a removed daemon in L1 generations and
	// replica bits until caches age out; a verify against a dead member
	// would fail the lookup, so hits are filtered against live membership.
	ids := c.snapshotIDs()
	// Entry query: L1 + L2 in one RPC.
	resp, err := c.call(ctx, entry, opQueryEntry, []byte(path), ctr)
	if err != nil {
		return LookupResult{}, err
	}
	l1Hits, rest, err := decodeHits(resp)
	if err != nil {
		return LookupResult{}, err
	}
	l2Hits, _, err := decodeHits(rest)
	if err != nil {
		return LookupResult{}, err
	}

	if len(l1Hits) == 1 && memberOf(ids, l1Hits[0]) {
		if ok, err := c.verify(ctx, l1Hits[0], path, ctr); err != nil {
			return LookupResult{}, err
		} else if ok {
			return LookupResult{Home: l1Hits[0], Found: true, Level: 1}, nil
		}
	}
	if len(l2Hits) == 1 && memberOf(ids, l2Hits[0]) {
		if ok, err := c.verify(ctx, l2Hits[0], path, ctr); err != nil {
			return LookupResult{}, err
		} else if ok {
			return LookupResult{Home: l2Hits[0], Found: true, Level: 2}, nil
		}
	}

	// L3 (G-HBA only): parallel multicast to the entry's groupmates. The
	// union covers the groupmates' arrays only — the entry's own L2 hits
	// already had their chance above, and folding them back in would
	// resolve at L3 what the simulator sends to L4.
	if c.opts.Mode == ModeGHBA {
		if members := c.groupMembers(entry); members != nil {
			hits, err := c.multicastQuery(ctx, members, entry, opQueryMember, path, ctr)
			if err != nil {
				return LookupResult{}, err
			}
			if len(hits) == 1 {
				var home int
				for h := range hits {
					home = h
				}
				if memberOf(ids, home) {
					if ok, err := c.verify(ctx, home, path, ctr); err != nil {
						return LookupResult{}, err
					} else if ok {
						return LookupResult{Home: home, Found: true, Level: 3}, nil
					}
				}
			}
		}
	}

	// L4: global multicast; every daemon checks its local filter + store.
	home, err := c.globalSearch(ctx, path, entry, ctr)
	if err != nil {
		return LookupResult{}, err
	}
	if home >= 0 {
		return LookupResult{Home: home, Found: true, Level: 4}, nil
	}
	return LookupResult{Home: -1, Found: false, Level: 4}, nil
}

func (c *Cluster) verify(ctx context.Context, id int, path string, ctr *atomic.Int64) (bool, error) {
	resp, err := c.call(ctx, id, opVerify, []byte(path), ctr)
	if err != nil {
		return false, err
	}
	return byteBool(resp), nil
}

// multicastQuery fans a query out to members (minus the entry) in parallel
// and returns the union of their hits.
func (c *Cluster) multicastQuery(ctx context.Context, members []int, entry int, msgType uint8, path string, ctr *atomic.Int64) (map[int]struct{}, error) {
	type answer struct {
		hits []int
		err  error
	}
	var wg sync.WaitGroup
	answers := make(chan answer, len(members))
	for _, id := range members {
		if id == entry {
			continue
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			resp, err := c.call(ctx, id, msgType, []byte(path), ctr)
			if err != nil {
				answers <- answer{err: err}
				return
			}
			hits, _, err := decodeHits(resp)
			answers <- answer{hits: hits, err: err}
		}(id)
	}
	wg.Wait()
	close(answers)
	union := make(map[int]struct{})
	for a := range answers {
		if a.err != nil {
			return nil, a.err
		}
		for _, h := range a.hits {
			union[h] = struct{}{}
		}
	}
	return union, nil
}

// globalSearch asks every daemon (minus the entry) whether it homes path.
//
// On the mux transport the fan-out is a true scatter-gather round: exactly
// one daemon — the path's home — can answer positive (an opHasLocal positive
// is an authoritative store check, not a filter guess), so the first
// positive is decisive and cancels the remaining probes. An abandoned mux
// call is discarded by request ID without harming the shared connection;
// the classic transport poisons a cancelled pooled connection, so there the
// gather runs to completion instead.
func (c *Cluster) globalSearch(ctx context.Context, path string, entry int, ctr *atomic.Int64) (int, error) {
	ids := c.snapshotIDs()
	searchCtx := ctx
	cancelRest := func() {}
	if c.useMux {
		var cancel context.CancelFunc
		searchCtx, cancel = context.WithCancel(ctx)
		defer cancel()
		cancelRest = cancel
	}
	type answer struct {
		id  int
		has bool
		err error
	}
	var wg sync.WaitGroup
	answers := make(chan answer, len(ids))
	for _, id := range ids {
		if id == entry {
			continue
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			resp, err := c.call(searchCtx, id, opHasLocal, []byte(path), ctr)
			has := err == nil && byteBool(resp)
			if has {
				cancelRest()
			}
			answers <- answer{id: id, has: has, err: err}
		}(id)
	}
	// The entry checks itself locally too (no extra message: it is the
	// server driving the query; count one self-check call for symmetry
	// with the simulator's accounting).
	selfResp, selfErr := c.call(ctx, entry, opHasLocal, []byte(path), ctr)
	if selfErr == nil && byteBool(selfResp) {
		cancelRest()
	}
	wg.Wait()
	close(answers)
	if selfErr == nil && byteBool(selfResp) {
		return entry, nil
	}
	home := -1
	var firstErr error
	for a := range answers {
		if a.has {
			home = a.id
		} else if a.err != nil && firstErr == nil {
			firstErr = a.err
		}
	}
	if home >= 0 {
		// Losing probes cancelled by the winner are expected, not failures.
		return home, nil
	}
	if selfErr != nil {
		return -1, selfErr
	}
	return -1, firstErr
}
