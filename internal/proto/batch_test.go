package proto

import (
	"context"
	"math/rand"
	"strconv"
	"testing"

	"ghba/internal/trace"
)

// mixedRecords builds a deterministic record vector exercising every run
// kind and the tricky orderings: duplicate creates (degenerate opens),
// delete-then-recreate, deletes of absent paths, and reads of both live and
// dead paths.
func mixedRecords(existing, n int) []trace.Record {
	recs := make([]trace.Record, 0, n)
	for i := 0; i < n; i++ {
		switch i % 10 {
		case 0, 1:
			recs = append(recs, trace.Record{Op: trace.OpCreate, Path: "/new/f" + strconv.Itoa(i)})
		case 2:
			// Duplicate create: degenerates to an open.
			recs = append(recs, trace.Record{Op: trace.OpCreate, Path: "/p/f" + strconv.Itoa(i%existing)})
		case 3:
			recs = append(recs, trace.Record{Op: trace.OpDelete, Path: "/p/f" + strconv.Itoa((i*7)%existing)})
		case 4:
			// Delete of a path that may already be gone.
			recs = append(recs, trace.Record{Op: trace.OpDelete, Path: "/p/f" + strconv.Itoa((i*7)%existing)})
		case 5:
			// Recreate a likely-deleted path: cross-kind ordering matters.
			recs = append(recs, trace.Record{Op: trace.OpCreate, Path: "/p/f" + strconv.Itoa(((i-14)*7)%existing)})
		default:
			recs = append(recs, trace.Record{Op: trace.OpOpen, Path: "/p/f" + strconv.Itoa((i*3)%existing)})
		}
	}
	return recs
}

func TestLookupBatchFindsEveryFile(t *testing.T) {
	c := startPopulated(t, 6, 3, ModeGHBA, 200)
	paths := make([]string, 0, 60)
	for i := 0; i < 50; i++ {
		paths = append(paths, "/p/f"+strconv.Itoa(i*3%200))
	}
	for i := 0; i < 10; i++ {
		paths = append(paths, "/ghost/f"+strconv.Itoa(i))
	}
	rng := rand.New(rand.NewSource(7))
	results, err := c.LookupBatch(context.Background(), rng, paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(paths) {
		t.Fatalf("got %d results for %d paths", len(results), len(paths))
	}
	for i, res := range results {
		truth := c.HomeOf(paths[i])
		if truth >= 0 {
			if !res.Found || res.Home != truth {
				t.Errorf("%s = %+v, truth home %d", paths[i], res, truth)
			}
			if res.Level < 1 || res.Level > 4 {
				t.Errorf("%s found at level %d", paths[i], res.Level)
			}
		} else if res.Found || res.Level != 4 {
			t.Errorf("ghost %s = %+v", paths[i], res)
		}
	}
}

// TestApplyBatchMatchesSerialReplay is the batch path's determinism
// contract: a fixed-seed record vector dispatched through ApplyBatch homes
// every file exactly where a serial ApplyWith loop with an equal RNG does,
// and every per-record outcome (home, existence) matches.
func TestApplyBatchMatchesSerialReplay(t *testing.T) {
	serial := startPopulated(t, 6, 3, ModeGHBA, 100)
	batched := startPopulated(t, 6, 3, ModeGHBA, 100)
	recs := mixedRecords(100, 300)

	ctx := context.Background()
	rngA := rand.New(rand.NewSource(99))
	serialRes := make([]LookupResult, len(recs))
	for i, rec := range recs {
		res, err := serial.ApplyWith(ctx, rngA, rec)
		if err != nil {
			t.Fatalf("serial op %d: %v", i, err)
		}
		serialRes[i] = res
	}

	rngB := rand.New(rand.NewSource(99))
	batchRes, err := batched.ApplyBatch(ctx, rngB, recs)
	if err != nil {
		t.Fatal(err)
	}

	for i := range recs {
		s, b := serialRes[i], batchRes[i]
		if s.Found != b.Found || s.Home != b.Home {
			t.Errorf("op %d (%v %s): serial {home %d found %v lvl %d}, batch {home %d found %v lvl %d}",
				i, recs[i].Op, recs[i].Path, s.Home, s.Found, s.Level, b.Home, b.Found, b.Level)
		}
	}
	if sc, bc := serial.FileCount(), batched.FileCount(); sc != bc {
		t.Errorf("file counts diverge: serial %d, batch %d", sc, bc)
	}
	// Ground truth agrees path by path.
	for _, rec := range recs {
		if sh, bh := serial.HomeOf(rec.Path), batched.HomeOf(rec.Path); sh != bh {
			t.Errorf("HomeOf(%s): serial %d, batch %d", rec.Path, sh, bh)
		}
	}
}

// TestApplyBatchOverClassicTransport pins that the batch RPCs are legal
// over the classic call-per-connection protocol too.
func TestApplyBatchOverClassicTransport(t *testing.T) {
	opts := testOptions(4, 2, ModeGHBA)
	opts.Transport = TransportClassic
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if c.Transport() != TransportClassic {
		t.Fatalf("Transport() = %q", c.Transport())
	}
	paths := make([]string, 50)
	for i := range paths {
		paths[i] = "/p/f" + strconv.Itoa(i)
	}
	c.Populate(paths)
	rng := rand.New(rand.NewSource(3))
	results, err := c.ApplyBatch(context.Background(), rng, mixedRecords(50, 80))
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Level > 0 && res.Found && res.Home < 0 {
			t.Errorf("op %d: found with no home: %+v", i, res)
		}
	}
}

func TestTransportValidationAndDefault(t *testing.T) {
	opts := testOptions(2, 2, ModeGHBA)
	opts.Transport = "carrier-pigeon"
	if _, err := Start(opts); err == nil {
		t.Error("unknown transport accepted")
	}
	c := startPopulated(t, 2, 2, ModeGHBA, 10)
	if c.Transport() != TransportMux {
		t.Errorf("default transport = %q, want %q", c.Transport(), TransportMux)
	}
}

func TestRPCCountsPerOpcode(t *testing.T) {
	c := startPopulated(t, 4, 2, ModeGHBA, 50)
	c.ResetRPCCounts()
	c.ResetMessages()
	rng := rand.New(rand.NewSource(1))
	paths := []string{"/p/f1", "/p/f2", "/p/f3", "/p/f4"}
	if _, err := c.LookupBatch(context.Background(), rng, paths); err != nil {
		t.Fatal(err)
	}
	counts := c.RPCCounts()
	if counts["lookup_batch"] == 0 {
		t.Errorf("no lookup_batch RPCs counted: %v", counts)
	}
	if counts["query_entry"] != 0 {
		t.Errorf("batch lookup issued per-op query_entry RPCs: %v", counts)
	}
	var total uint64
	for _, n := range counts {
		total += n
	}
	if total != c.Messages() {
		t.Errorf("per-opcode counts sum to %d, Messages() = %d", total, c.Messages())
	}
	c.ResetRPCCounts()
	if len(c.RPCCounts()) != 0 {
		t.Error("reset left residual counts")
	}
}
